#!/usr/bin/env python3
"""CI gate over BENCH_faults.json (chaos-scheduled fault campaigns).

Discovers which (personality, campaign) pairs the bench ran from the
faults_<personality>_<campaign>_error_rate records, requires every pair to
carry the full metric set with finite values, and enforces the self-healing
contract on the *outage* campaigns: with f=1 and one cloud down, the
cloud-of-clouds data plane must mask the fault completely —

  - no client-visible errors beyond the fault-free baseline (a quorum of
    3/4 clouds always answers; baselines are 0 for read-heavy
    personalities, so this degenerates to "error rate exactly 0" there —
    write-heavy mixes carry a few workload-intrinsic lock races that are
    not the outage's doing),
  - whole-run p99 within MAX_OUTAGE_P99_INFLATION of the fault-free
    baseline (the dead cloud fails fast; the breaker routes around it),
  - a recovery time was measured (the tail returned to <= 1.5x baseline
    after the window closed).

Non-outage campaigns are reported but only sanity-checked (finite metrics,
error rate within a loose margin of the baseline) — transient bursts at
p=0.5 may lose an occasional op race without invalidating the run. Stdlib
only, like tools/check_bench_scenarios.py.

Also gates the stripe-repair drill (stripe_repair_* records): a striped
large file must ride out a single-cloud outage with zero client-visible
errors, and after the outage wipes that cloud's stored objects, one
scrubber pass must rebuild every lost object (no repair failures), leave
the manifest fully redundant, and the file must read back byte-identical.

Usage: check_bench_faults.py [path-to-BENCH_faults.json]
"""

import json
import math
import sys

MAX_OUTAGE_P99_INFLATION = 2.0
# Loose margin over the fault-free baseline for the non-gated campaigns:
# excess beyond this means the data plane stopped masking faults entirely,
# not statistical noise.
MAX_EXCESS_ERROR_RATE = 0.05

REQUIRED = [
    "error_rate", "errors", "dropped", "p99_ms", "baseline_p99_ms",
    "p99_inflation_x", "fault_window_p99_ms", "fault_goodput_ops_s",
    "goodput_ratio", "recovery_ms", "retries", "deadline_expiries",
    "hedged_reads", "breaker_trips", "storage_read_retries",
]


def fail(msg: str) -> int:
    print(f"FAIL: {msg}")
    return 1


def finite(value) -> bool:
    return isinstance(value, (int, float)) and math.isfinite(value)


def main() -> int:
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_faults.json"
    with open(path) as f:
        records = json.load(f)
    metrics = {}
    for record in records:
        if not finite(record.get("value")):
            return fail(f"{record.get('name')} has non-finite value "
                        f"{record.get('value')!r}")
        metrics[record["name"]] = record["value"]

    pairs = sorted(
        name[len("faults_"):-len("_error_rate")]
        for name in metrics
        if name.startswith("faults_") and name.endswith("_error_rate")
        and not name.endswith("_baseline_error_rate")
    )
    if not pairs:
        return fail(f"{path} contains no faults_<pair>_error_rate records")

    rc = 0
    outage_pairs = 0
    for pair in pairs:
        prefix = f"faults_{pair}_"
        missing = [k for k in REQUIRED if prefix + k not in metrics]
        if missing:
            rc |= fail(f"{pair}: missing metrics {missing}")
            continue
        error_rate = metrics[prefix + "error_rate"]
        inflation = metrics[prefix + "p99_inflation_x"]
        recovery = metrics[prefix + "recovery_ms"]
        goodput = metrics[prefix + "fault_goodput_ops_s"]
        # The campaign name is the last _-separated segment; everything
        # before it is the personality, whose fault-free control run sets
        # the error-rate baseline.
        personality = pair.rsplit("_", 1)[0]
        baseline_errors = metrics.get(
            f"faults_{personality}_baseline_error_rate", 0.0)
        print(f"{pair}: error rate {error_rate:.4f}, "
              f"p99 inflation {inflation:.2f}x, "
              f"fault goodput {goodput:.1f} ops/s, "
              f"recovery {recovery:.0f} ms, "
              f"{metrics[prefix + 'retries']:.0f} retries / "
              f"{metrics[prefix + 'hedged_reads']:.0f} hedges / "
              f"{metrics[prefix + 'breaker_trips']:.0f} trips")

        is_outage = pair.endswith("_outage")
        if is_outage:
            outage_pairs += 1
            if error_rate > baseline_errors:
                rc |= fail(f"{pair}: error rate {error_rate:.4f} > fault-free "
                           f"baseline {baseline_errors:.4f} — an f=1 "
                           "single-cloud outage must be fully masked")
            if inflation >= MAX_OUTAGE_P99_INFLATION:
                rc |= fail(f"{pair}: p99 inflation {inflation:.2f}x >= "
                           f"{MAX_OUTAGE_P99_INFLATION}x — the dead cloud is "
                           "stalling the data plane instead of failing fast")
            if recovery < 0:
                rc |= fail(f"{pair}: no recovery time measured (tail never "
                           "returned to 1.5x baseline after the window)")
            if metrics[prefix + "dropped"] != 0:
                rc |= fail(f"{pair}: {metrics[prefix + 'dropped']:.0f} ops "
                           "dropped at drain")
        else:
            if error_rate > baseline_errors + MAX_EXCESS_ERROR_RATE:
                rc |= fail(f"{pair}: error rate {error_rate:.4f} exceeds "
                           f"baseline {baseline_errors:.4f} by more than "
                           f"{MAX_EXCESS_ERROR_RATE} — faults are reaching "
                           "clients")

    if outage_pairs == 0:
        rc |= fail("no outage campaign in the run — the gated scenario "
                   "(single-cloud outage, f=1) is missing")

    rc |= check_stripe_repair(metrics)

    if rc == 0:
        print(f"OK: {len(pairs)} campaign runs, {outage_pairs} outage "
              "campaigns gated, stripe-repair drill gated")
    return rc


STRIPE_REPAIR_REQUIRED = [
    "units", "reads_during_outage", "client_errors", "objects_wiped",
    "objects_missing", "objects_repaired", "objects_relocated", "failures",
    "pass_ms", "mb_s", "fully_redundant", "verify_ok",
]


def check_stripe_repair(metrics) -> int:
    missing = [k for k in STRIPE_REPAIR_REQUIRED
               if "stripe_repair_" + k not in metrics]
    if missing:
        return fail(f"stripe repair drill: missing metrics {missing}")
    m = {k: metrics["stripe_repair_" + k] for k in STRIPE_REPAIR_REQUIRED}
    print(f"stripe_repair: {m['units']:.0f} units, "
          f"{m['reads_during_outage']:.0f} reads during outage "
          f"({m['client_errors']:.0f} errors), "
          f"{m['objects_wiped']:.0f} wiped -> "
          f"{m['objects_repaired']:.0f} repaired "
          f"at {m['mb_s']:.0f} MB/s")

    rc = 0
    if m["objects_wiped"] <= 0:
        rc |= fail("stripe repair drill wiped no objects — the outage "
                   "injected no data loss, so the pass gated nothing")
    if m["client_errors"] != 0:
        rc |= fail(f"stripe repair drill: {m['client_errors']:.0f} client "
                   "errors during the outage — an f=1 single-cloud outage "
                   "must be fully masked for striped reads too")
    if m["objects_missing"] < m["objects_wiped"]:
        rc |= fail(f"stripe repair drill: scrub found only "
                   f"{m['objects_missing']:.0f} of {m['objects_wiped']:.0f} "
                   "wiped objects missing — the probe is not covering every "
                   "recorded holder")
    if m["objects_repaired"] < m["objects_missing"]:
        rc |= fail(f"stripe repair drill: {m['objects_repaired']:.0f} of "
                   f"{m['objects_missing']:.0f} missing objects repaired — "
                   "in-place rebuild failed with the holder back up")
    if m["failures"] != 0:
        rc |= fail(f"stripe repair drill: {m['failures']:.0f} repair "
                   "failures")
    if m["fully_redundant"] != 1:
        rc |= fail("stripe repair drill: manifest not fully redundant after "
                   "the repair pass")
    if m["verify_ok"] != 1:
        rc |= fail("stripe repair drill: file did not read back "
                   "byte-identical after repair")
    return rc


if __name__ == "__main__":
    sys.exit(main())
