#!/usr/bin/env python3
"""CI gate over BENCH_coord.json's partition sweep and elastic split demo.

The sharded coordination plane exists to multiply ordered throughput; if the
4-partition aggregate ever drops below the 1-partition baseline, the router
is costing more than the partitions buy and the job must fail. The elastic
split demo must show the load-aware controller actually firing under skew,
the post-split plane recovering at least 80% of a statically balanced
3-partition deployment, and the migration moving every key exactly once
(zero lost, zero duplicated). Stdlib only, like tools/check_markdown_links.py.

Usage: check_bench_coord.py [path-to-BENCH_coord.json]
"""

import json
import sys


def main() -> int:
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_coord.json"
    with open(path) as f:
        metrics = {record["name"]: record["value"] for record in json.load(f)}

    required = (
        "coord_part1_ordered_agg",
        "coord_part4_ordered_agg",
        "coord_split_fired",
        "coord_split_recovery_ratio",
        "coord_split_lost_keys",
        "coord_split_dup_keys",
    )
    missing = [name for name in required if name not in metrics]
    if missing:
        print(f"FAIL: {path} lacks required metrics: {missing}")
        return 1

    failed = False

    part1 = metrics["coord_part1_ordered_agg"]
    part4 = metrics["coord_part4_ordered_agg"]
    ratio = part4 / part1 if part1 > 0 else 0.0
    print(
        f"partition sweep: 1 partition {part1:.1f} ops/s, "
        f"4 partitions {part4:.1f} ops/s ({ratio:.2f}x)"
    )
    if part1 <= 0:
        # A zero baseline means the sweep measured nothing (a wedged
        # cluster or broken elapsed-time accounting) — that must not read
        # as "no regression".
        print("FAIL: 1-partition baseline throughput is zero")
        failed = True
    elif part4 < part1:
        print(
            "FAIL: 4-partition aggregate ordered throughput regressed below "
            "the 1-partition baseline"
        )
        failed = True

    fired = metrics["coord_split_fired"]
    recovery = metrics["coord_split_recovery_ratio"]
    lost = metrics["coord_split_lost_keys"]
    dup = metrics["coord_split_dup_keys"]
    print(
        f"elastic split: fired={int(fired)} recovery={recovery:.2f}x "
        f"lost={int(lost)} dup={int(dup)}"
    )
    if fired != 1:
        print(
            "FAIL: the load-aware controller never split the hot partition "
            "under the skewed workload"
        )
        failed = True
    if recovery < 0.8:
        print(
            "FAIL: post-split aggregate throughput recovered less than 0.8x "
            "of the statically balanced 3-partition deployment"
        )
        failed = True
    if lost != 0 or dup != 0:
        print(
            "FAIL: the range migration lost or duplicated keys "
            f"(lost={int(lost)}, dup={int(dup)}); exactly-once is violated"
        )
        failed = True

    if failed:
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
