#!/usr/bin/env python3
"""CI gate over BENCH_coord.json's partition sweep.

The sharded coordination plane exists to multiply ordered throughput; if the
4-partition aggregate ever drops below the 1-partition baseline, the router
is costing more than the partitions buy and the job must fail. Stdlib only,
like tools/check_markdown_links.py.

Usage: check_bench_coord.py [path-to-BENCH_coord.json]
"""

import json
import sys


def main() -> int:
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_coord.json"
    with open(path) as f:
        metrics = {record["name"]: record["value"] for record in json.load(f)}

    missing = [
        name
        for name in ("coord_part1_ordered_agg", "coord_part4_ordered_agg")
        if name not in metrics
    ]
    if missing:
        print(f"FAIL: {path} lacks partition-sweep metrics: {missing}")
        return 1

    part1 = metrics["coord_part1_ordered_agg"]
    part4 = metrics["coord_part4_ordered_agg"]
    ratio = part4 / part1 if part1 > 0 else 0.0
    print(
        f"partition sweep: 1 partition {part1:.1f} ops/s, "
        f"4 partitions {part4:.1f} ops/s ({ratio:.2f}x)"
    )
    if part1 <= 0:
        # A zero baseline means the sweep measured nothing (a wedged
        # cluster or broken elapsed-time accounting) — that must not read
        # as "no regression".
        print("FAIL: 1-partition baseline throughput is zero")
        return 1
    if part4 < part1:
        print(
            "FAIL: 4-partition aggregate ordered throughput regressed below "
            "the 1-partition baseline"
        )
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
