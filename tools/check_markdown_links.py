#!/usr/bin/env python3
"""Offline markdown link checker for this repository.

Scans every *.md file (skipping build trees) and verifies that

  - relative link targets exist on disk, and
  - fragment anchors (#heading) resolve to a heading in the target file,
    using GitHub's heading-slug rules.

External links (http/https/mailto) are deliberately not fetched: CI must
not flake on the network. Exit status is non-zero when any link is broken,
with one report line per offense.

Usage: python3 tools/check_markdown_links.py [root]
"""

import os
import re
import sys

SKIP_DIRS = {".git", "node_modules", "__pycache__"}
INLINE_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
EXTERNAL = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:")  # http:, mailto:, etc.


def markdown_files(root):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [
            d for d in dirnames
            if d not in SKIP_DIRS and not d.startswith("build")
        ]
        for name in sorted(filenames):
            if name.endswith(".md"):
                yield os.path.join(dirpath, name)


def strip_code_spans(line):
    return re.sub(r"`[^`]*`", "", line)


def github_slug(heading):
    """GitHub's anchor slug: lowercase, drop punctuation, spaces to dashes."""
    heading = re.sub(r"`([^`]*)`", r"\1", heading)  # unwrap code spans
    heading = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", heading)  # unwrap links
    heading = heading.lower()
    heading = re.sub(r"[^\w\- ]", "", heading)
    return heading.replace(" ", "-")


def heading_slugs(path):
    slugs = set()
    counts = {}
    in_fence = False
    with open(path, encoding="utf-8") as f:
        for line in f:
            if line.lstrip().startswith("```"):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            match = HEADING.match(line)
            if not match:
                continue
            slug = github_slug(match.group(2))
            n = counts.get(slug, 0)
            counts[slug] = n + 1
            slugs.add(slug if n == 0 else "%s-%d" % (slug, n))
    return slugs


def iter_links(path):
    in_fence = False
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            if line.lstrip().startswith("```"):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for match in INLINE_LINK.finditer(strip_code_spans(line)):
                yield lineno, match.group(1)


def check(root):
    errors = []
    slug_cache = {}
    for md in markdown_files(root):
        for lineno, target in iter_links(md):
            if EXTERNAL.match(target):
                continue  # external: not fetched by design
            target_path, _, fragment = target.partition("#")
            if target_path:
                resolved = os.path.normpath(
                    os.path.join(os.path.dirname(md), target_path))
            else:
                resolved = md  # same-file anchor
            rel = os.path.relpath(md, root)
            if not os.path.exists(resolved):
                errors.append("%s:%d: broken link: %s (no such file)" %
                              (rel, lineno, target))
                continue
            if fragment and resolved.endswith(".md"):
                if resolved not in slug_cache:
                    slug_cache[resolved] = heading_slugs(resolved)
                if fragment.lower() not in slug_cache[resolved]:
                    errors.append("%s:%d: broken anchor: %s (no heading "
                                  "slug '%s' in %s)" %
                                  (rel, lineno, target, fragment,
                                   os.path.relpath(resolved, root)))
    return errors


def main():
    root = os.path.abspath(sys.argv[1] if len(sys.argv) > 1 else
                           os.path.join(os.path.dirname(__file__), ".."))
    errors = check(root)
    for error in errors:
        print(error)
    if errors:
        print("%d broken markdown link(s)" % len(errors))
        return 1
    print("markdown links OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
