#!/usr/bin/env python3
"""CI gate over BENCH_scenarios.json (the open-loop scenario engine).

Discovers which personalities the bench ran from the scenario_<name>_clients
records, then requires every one of them to have produced a coherent sweep:
a knee, a positive saturation throughput, ordered tail percentiles
(p50 <= p99 <= p99.9) at the knee point, and coordination-work attribution.
If the Zipfian skew demo ran, the skewed variant's p99 must exceed the
uniform variant's by the demo's design margin — the hot partition exists to
be measurably slower. Stdlib only, like tools/check_bench_coord.py.

Usage: check_bench_scenarios.py [path-to-BENCH_scenarios.json]
"""

import json
import math
import sys

# The skew demo saturates one partition of a capacity-bound coordination
# pipeline; anything under 1.2x means the hot partition never became the
# bottleneck (the demo regressed, not the percentiles).
MIN_SKEW_INFLATION = 1.2

# The lease demo runs the webserver personality with metadata leases off and
# on at the same offered rate; leases must cut coordination messages per
# successful op by at least this factor (the ISSUE's >= 5x target — the
# design estimate is ~8-9x: read leases on the never-mutated fileset, plus
# lingering write locks collapsing the append's lock/unlock rounds).
MIN_LEASE_MSGS_RATIO = 5.0


def fail(msg: str) -> int:
    print(f"FAIL: {msg}")
    return 1


def finite(value) -> bool:
    return isinstance(value, (int, float)) and math.isfinite(value)


def main() -> int:
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_scenarios.json"
    with open(path) as f:
        records = json.load(f)
    metrics = {}
    for record in records:
        if not finite(record.get("value")):
            return fail(f"{record.get('name')} has non-finite value "
                        f"{record.get('value')!r}")
        metrics[record["name"]] = record["value"]

    personalities = sorted(
        name[len("scenario_"):-len("_clients")]
        for name in metrics
        if name.startswith("scenario_")
        and name.endswith("_clients")
        and not name.startswith("scenario_zipf_")
    )
    if not personalities:
        return fail(f"{path} contains no scenario_<name>_clients records")

    rc = 0
    for p in personalities:
        prefix = f"scenario_{p}_"
        required = [
            "clients", "knee_offered_ops_s", "saturation_ops_s",
            "achieved_ops_s", "p50_ms", "p90_ms", "p99_ms", "p999_ms",
            "errors", "dropped", "coord_msgs_per_op", "ordered_per_op",
            "fast_reads_per_op",
        ]
        missing = [k for k in required if prefix + k not in metrics]
        if missing:
            rc |= fail(f"{p}: missing metrics {missing}")
            continue
        knee = metrics[prefix + "knee_offered_ops_s"]
        saturation = metrics[prefix + "saturation_ops_s"]
        p50 = metrics[prefix + "p50_ms"]
        p99 = metrics[prefix + "p99_ms"]
        p999 = metrics[prefix + "p999_ms"]
        print(f"{p}: {metrics[prefix + 'clients']:.0f} clients, "
              f"knee {knee:.0f} ops/s, saturation {saturation:.1f} ops/s, "
              f"p50/p99/p99.9 {p50:.0f}/{p99:.0f}/{p999:.0f} ms, "
              f"{metrics[prefix + 'coord_msgs_per_op']:.1f} coord msgs/op")
        if knee <= 0:
            rc |= fail(f"{p}: no knee found (arrival queue never stayed "
                       "bounded at any offered rate)")
        if saturation <= 0:
            rc |= fail(f"{p}: saturation throughput is {saturation}")
        if p50 <= 0:
            rc |= fail(f"{p}: p50 is {p50} ms (nothing was measured)")
        if not (p50 <= p99 <= p999):
            rc |= fail(f"{p}: percentiles are not ordered: "
                       f"p50 {p50} / p99 {p99} / p99.9 {p999}")

    zipf_keys = [k for k in metrics if k.startswith("scenario_zipf_")]
    if zipf_keys:
        required = [
            "scenario_zipf_uniform_p99_ms", "scenario_zipf_uniform_hot_share",
            "scenario_zipf_skewed_p99_ms", "scenario_zipf_skewed_hot_share",
            "scenario_zipf_p99_inflation",
        ]
        missing = [k for k in required if k not in metrics]
        if missing:
            rc |= fail(f"skew demo: missing metrics {missing}")
        else:
            inflation = metrics["scenario_zipf_p99_inflation"]
            uniform_share = metrics["scenario_zipf_uniform_hot_share"]
            skewed_share = metrics["scenario_zipf_skewed_hot_share"]
            print(f"skew demo: hot share {uniform_share:.2f} -> "
                  f"{skewed_share:.2f}, p99 inflation {inflation:.2f}x")
            if inflation < MIN_SKEW_INFLATION:
                rc |= fail(f"skew demo: p99 inflation {inflation:.2f}x < "
                           f"{MIN_SKEW_INFLATION}x — the hot partition did "
                           "not become the bottleneck")
            if skewed_share <= uniform_share:
                rc |= fail("skew demo: skewed hot share "
                           f"{skewed_share:.2f} <= uniform "
                           f"{uniform_share:.2f} — Zipf routing is broken")

    lease_keys = [k for k in metrics if k.startswith("scenario_webserver_lease_")]
    if lease_keys:
        required = [
            "scenario_webserver_lease_off_msgs_per_op",
            "scenario_webserver_lease_on_msgs_per_op",
            "scenario_webserver_lease_msgs_ratio",
            "scenario_webserver_lease_on_grants",
            "scenario_webserver_lease_on_local_hits",
            "scenario_webserver_lease_on_hit_share",
        ]
        missing = [k for k in required if k not in metrics]
        if missing:
            rc |= fail(f"lease demo: missing metrics {missing}")
        else:
            off = metrics["scenario_webserver_lease_off_msgs_per_op"]
            on = metrics["scenario_webserver_lease_on_msgs_per_op"]
            ratio = metrics["scenario_webserver_lease_msgs_ratio"]
            grants = metrics["scenario_webserver_lease_on_grants"]
            hits = metrics["scenario_webserver_lease_on_local_hits"]
            print(f"lease demo: coord msgs/op {off:.2f} -> {on:.2f} "
                  f"({ratio:.1f}x), {grants:.0f} grants, "
                  f"{hits:.0f} local hits")
            if ratio < MIN_LEASE_MSGS_RATIO:
                rc |= fail(f"lease demo: msgs/op reduction {ratio:.2f}x < "
                           f"{MIN_LEASE_MSGS_RATIO}x — lease-delegated "
                           "caching is not absorbing the metadata plane")
            if grants <= 0 or hits <= 0:
                rc |= fail("lease demo: lease-on run recorded no grants or "
                           "no local hits — leases never engaged")

    if rc == 0:
        print(f"OK: {len(personalities)} personalities"
              + (", skew demo" if zipf_keys else "")
              + (", lease demo" if lease_keys else ""))
    return rc


if __name__ == "__main__":
    sys.exit(main())
