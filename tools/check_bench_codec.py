#!/usr/bin/env python3
"""CI gate over BENCH_codec.json (data-plane codec + striped pipeline).

Two families of checks, both hardware-portable by construction:

1. Codec speedups. Every optimized kernel is benchmarked against the
   seed implementation *in the same run*, so the speedup ratios cancel
   out the host's absolute speed. A ratio collapsing below its floor
   means an optimization regressed (e.g. the GF(256) table path fell
   back to scalar), not that CI got a slower machine.

2. The striped large-file pipeline. depsky_put_striped /
   depsky_get_striped are measured against the monolithic single-object
   path on the same file in the same run. The floor is deliberately
   below the ~1.3x PUT / ~1.2x GET measured on a 1-core host, where the
   whole gain is cache locality: each 4 MB unit's
   encrypt→hash→erasure-code→hash chain runs while the unit is still
   resident, instead of three full-file passes through DRAM. The
   stripe window auto-scales to the core count (DepSkyConfig
   stripe_inflight = 0), so multi-core hosts add parallel-unit scaling
   on top — the issue's headline targets (PUT >= 2x mono, ~1 GB/s)
   need >= 4 cores, and single-core CI must not flap on them. What the
   gate catches is the striped path losing its advantage entirely:
   striping going slower than mono means the unit pipeline is paying
   for its fan-out instead of profiting from it.

Absolute floors are last-resort sanity bounds (an order of magnitude
below a dev host) that catch a bench running debug-build code or a
kernel silently running the seed path; they are far too loose to flap
on slow CI runners.

Quick mode (--quick, matching the bench's --quick) relaxes the striped
ratios: the 32 MB quick-mode file fits entirely in a large L3, which
erases most of mono's DRAM penalty and compresses the striped advantage
toward 1x, so quick only enforces "not materially slower than mono".

Stdlib only, like tools/check_bench_faults.py.

Usage: check_bench_codec.py [--quick] [path-to-BENCH_codec.json]
"""

import json
import math
import sys

# (metric, floor): same-run speedup ratios of optimized vs seed kernels.
# Floors sit well below steady-state measurements (see BENCH_codec.json)
# but far above "the optimization stopped working" (ratio ~1).
SPEEDUP_FLOORS = [
    ("gf_muladd_row_speedup", 4.0),    # measured ~20x (table vs scalar)
    ("rs_encode_4_2_speedup", 3.0),    # measured ~10x
    ("rs_encode_7_3_speedup", 2.0),    # measured ~6x
    ("rs_encode_10_4_speedup", 2.0),   # measured ~7x
    ("rs_decode_4_2_speedup", 2.0),    # measured ~7x
    ("chacha20_speedup", 2.0),         # measured ~5x
    ("sha256_speedup", 2.0),           # measured ~6x
    ("depsky_put_speedup", 2.0),       # measured ~7x
    ("depsky_get_speedup", 2.0),       # measured ~6x
]

# Full-run striped-vs-mono ratios (256 MB file, DRAM-resident for mono).
FULL_STRIPED_PUT_RATIO = 1.10   # measured 1.32x on 1 core
FULL_STRIPED_GET_RATIO = 1.05   # measured 1.24x on 1 core
# Quick-run (32 MB fits L3): only guard against striping being a loss.
QUICK_STRIPED_PUT_RATIO = 0.90
QUICK_STRIPED_GET_RATIO = 0.85

# Debug-build / seed-fallback tripwires, not perf targets.
ABSOLUTE_FLOORS = [
    ("gf_muladd_row_table", 1000.0),
    ("chacha20_inplace", 200.0),
    ("sha256_dispatched", 200.0),
    ("depsky_put_zero_copy", 50.0),
    ("depsky_put_striped", 25.0),
    ("depsky_get_striped", 25.0),
]


def fail(msg: str) -> int:
    print(f"FAIL: {msg}")
    return 1


def finite(value) -> bool:
    return isinstance(value, (int, float)) and math.isfinite(value)


def main() -> int:
    quick = False
    path = "BENCH_codec.json"
    for arg in sys.argv[1:]:
        if arg == "--quick":
            quick = True
        else:
            path = arg
    with open(path) as f:
        records = json.load(f)
    metrics = {}
    for record in records:
        if not finite(record.get("value")):
            return fail(f"{record.get('name')} has non-finite value "
                        f"{record.get('value')!r}")
        metrics[record["name"]] = record["value"]

    rc = 0

    required = ([name for name, _ in SPEEDUP_FLOORS] +
                [name for name, _ in ABSOLUTE_FLOORS] +
                ["depsky_put_mono_large", "depsky_put_striped",
                 "depsky_put_striped_speedup", "depsky_get_mono_large",
                 "depsky_get_striped", "depsky_get_striped_speedup",
                 "arena_pool_hits", "arena_pool_misses"])
    missing = [name for name in required if name not in metrics]
    if missing:
        return fail(f"{path} is missing metrics {missing}")

    for name, floor in SPEEDUP_FLOORS:
        if metrics[name] < floor:
            rc |= fail(f"{name} = {metrics[name]:.2f}x < {floor}x — the "
                       "optimized kernel has regressed toward the seed "
                       "implementation")

    for name, floor in ABSOLUTE_FLOORS:
        if metrics[name] < floor:
            rc |= fail(f"{name} = {metrics[name]:.1f} MB/s < {floor} MB/s — "
                       "looks like a debug build or a silent fallback to the "
                       "seed path")

    put_ratio = metrics["depsky_put_striped_speedup"]
    get_ratio = metrics["depsky_get_striped_speedup"]
    put_floor = QUICK_STRIPED_PUT_RATIO if quick else FULL_STRIPED_PUT_RATIO
    get_floor = QUICK_STRIPED_GET_RATIO if quick else FULL_STRIPED_GET_RATIO
    mode = "quick" if quick else "full"
    print(f"striped-vs-mono ({mode}): "
          f"PUT {metrics['depsky_put_striped']:.0f} MB/s "
          f"({put_ratio:.2f}x mono, floor {put_floor}x), "
          f"GET {metrics['depsky_get_striped']:.0f} MB/s "
          f"({get_ratio:.2f}x mono, floor {get_floor}x)")
    if put_ratio < put_floor:
        rc |= fail(f"depsky_put_striped_speedup = {put_ratio:.2f}x < "
                   f"{put_floor}x — the striped unit pipeline lost its "
                   "edge over the monolithic path (same run, same file)")
    if get_ratio < get_floor:
        rc |= fail(f"depsky_get_striped_speedup = {get_ratio:.2f}x < "
                   f"{get_floor}x — striped GET lost its edge over the "
                   "monolithic path (same run, same file)")

    hits = metrics["arena_pool_hits"]
    misses = metrics["arena_pool_misses"]
    if hits <= misses:
        rc |= fail(f"arena pool: {hits:.0f} hits vs {misses:.0f} misses — "
                   "the striped pipeline is allocating a fresh arena per "
                   "unit instead of recycling the pool")

    if rc == 0:
        print(f"OK: {len(SPEEDUP_FLOORS)} codec speedups, "
              f"{len(ABSOLUTE_FLOORS)} absolute floors, striped "
              f"{mode}-mode ratios, arena pooling")
    return rc


if __name__ == "__main__":
    sys.exit(main())
