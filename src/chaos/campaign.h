// ChaosRunner: drives a declarative FaultSchedule against a live deployment.
//
// The runner turns a schedule's fault windows into a sorted edge list
// (apply / clear) and walks it on one background thread using the shared
// virtual clock, so fault timing composes with whatever workload is running
// — the scenario engine's open-loop fleets, a test, an example. Cloud edges
// flip the target SimulatedCloud's FaultInjector; replica edges call the
// coordination plane's CrashReplica/RestartReplica through a hook.
//
// Overlapping windows of the same kind on the same cloud are handled by
// recomputing the target's state from the set of currently-active events at
// every edge (max of active transient probabilities, max of active extra
// latencies, any-active for the boolean fault classes), so a window ending
// never clears a fault another window still asserts.

#ifndef SCFS_CHAOS_CAMPAIGN_H_
#define SCFS_CHAOS_CAMPAIGN_H_

#include <functional>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/cloud/simulated_cloud.h"
#include "src/sim/environment.h"
#include "src/sim/fault_schedule.h"

namespace scfs {

class Deployment;

struct ChaosTargets {
  std::vector<SimulatedCloud*> clouds;
  // Called with (replica, up): up=false crashes the replica, up=true
  // restarts it. May be null if the schedule has no replica events.
  std::function<void(unsigned replica, bool up)> replica_hook;
  // Called with suspended=true when a lease_expiry window opens (the lease
  // plane invalidates all delegated rights and declines new grants) and
  // false when the last such window closes. May be null if the schedule has
  // no lease events; a no-op on deployments with leases disabled.
  std::function<void(bool suspended)> lease_hook;
};

class ChaosRunner {
 public:
  ChaosRunner(Environment* env, FaultSchedule schedule, ChaosTargets targets);
  ~ChaosRunner();  // joins; any still-active fault is cleared

  // Validates the schedule against the targets and starts the campaign
  // thread; event times are relative to the virtual clock at this call.
  Status Start();

  // Blocks until every edge has been applied (i.e. all faults cleared).
  void Join();

  // Virtual time of Start(); 0 before Start.
  VirtualTime origin() const { return origin_; }
  const FaultSchedule& schedule() const { return schedule_; }

  // Merged [start, end) spans of possible degradation in *absolute* virtual
  // time (schedule windows shifted by origin). Valid after Start().
  std::vector<std::pair<VirtualTime, VirtualTime>> FaultWindows() const;

  // Human-readable log of applied edges, for tests and --verbose benches.
  std::vector<std::string> log() const;

 private:
  struct Edge {
    VirtualTime at = 0;   // relative to origin
    size_t event = 0;     // index into schedule_.events
    bool begin = false;   // true = window opens, false = window closes
  };

  void RunLoop();
  void ApplyEdge(const Edge& edge);
  // Re-derives the fault state of schedule_.events[changed].target (a cloud)
  // from the currently-active event set.
  void ReapplyCloudState(unsigned cloud);

  Environment* env_;
  FaultSchedule schedule_;
  ChaosTargets targets_;
  std::vector<Edge> edges_;
  std::set<size_t> active_;  // indices of events whose window is open
  VirtualTime origin_ = 0;
  std::thread thread_;
  bool started_ = false;
  mutable std::mutex log_mu_;
  std::vector<std::string> log_;
};

// Builds targets for a Deployment: all its clouds, plus a replica hook that
// crashes/restarts replica r of the replicated coordination plane (for
// partitioned deployments, replica r of *every* partition — replica index
// maps to a computing cloud, and a computing-cloud outage takes down its
// replica in each partition). Null replica hook for kAws / zero-latency
// deployments, which have no replicated coordination.
ChaosTargets TargetsFor(Deployment* deployment);

}  // namespace scfs

#endif  // SCFS_CHAOS_CAMPAIGN_H_
