#include "src/chaos/campaign.h"

#include <algorithm>

#include "src/scfs/deployment.h"

namespace scfs {

namespace {

bool IsCloudKind(FaultKind kind) {
  return kind != FaultKind::kReplicaRestart &&
         kind != FaultKind::kLeaseExpiry;
}

std::string FormatMs(VirtualTime t) {
  return std::to_string(t / kMillisecond) + "ms";
}

}  // namespace

ChaosRunner::ChaosRunner(Environment* env, FaultSchedule schedule,
                         ChaosTargets targets)
    : env_(env), schedule_(std::move(schedule)), targets_(std::move(targets)) {}

ChaosRunner::~ChaosRunner() {
  Join();
}

Status ChaosRunner::Start() {
  if (started_) {
    return FailedPreconditionError("chaos campaign already started");
  }
  for (const auto& event : schedule_.events) {
    if (IsCloudKind(event.kind)) {
      if (event.target >= targets_.clouds.size()) {
        return InvalidArgumentError(
            "chaos campaign: cloud " + std::to_string(event.target) +
            " out of range (deployment has " +
            std::to_string(targets_.clouds.size()) + ")");
      }
    } else if (event.kind == FaultKind::kReplicaRestart &&
               !targets_.replica_hook) {
      return InvalidArgumentError(
          "chaos campaign: schedule has replica events but the deployment "
          "has no replicated coordination");
    } else if (event.kind == FaultKind::kLeaseExpiry &&
               !targets_.lease_hook) {
      return InvalidArgumentError(
          "chaos campaign: schedule has lease events but the targets carry "
          "no lease hook");
    }
  }

  edges_.clear();
  for (size_t i = 0; i < schedule_.events.size(); ++i) {
    edges_.push_back(Edge{schedule_.events[i].at, i, true});
    edges_.push_back(Edge{schedule_.events[i].end(), i, false});
  }
  // Stable tiebreak on (time, closes-before-opens, event index) so replays
  // apply edges in one deterministic order.
  std::sort(edges_.begin(), edges_.end(), [](const Edge& a, const Edge& b) {
    if (a.at != b.at) return a.at < b.at;
    if (a.begin != b.begin) return !a.begin;  // close before open
    return a.event < b.event;
  });

  origin_ = env_->Now();
  started_ = true;
  thread_ = std::thread([this] { RunLoop(); });
  return OkStatus();
}

void ChaosRunner::Join() {
  if (thread_.joinable()) {
    thread_.join();
  }
}

std::vector<std::pair<VirtualTime, VirtualTime>> ChaosRunner::FaultWindows()
    const {
  std::vector<std::pair<VirtualTime, VirtualTime>> windows =
      schedule_.MergedWindows();
  for (auto& window : windows) {
    window.first += origin_;
    window.second += origin_;
  }
  return windows;
}

std::vector<std::string> ChaosRunner::log() const {
  std::lock_guard<std::mutex> lock(log_mu_);
  return log_;
}

void ChaosRunner::RunLoop() {
  for (const Edge& edge : edges_) {
    VirtualTime due = origin_ + edge.at;
    VirtualTime now = env_->Now();
    if (due > now) {
      env_->Sleep(due - now);
    }
    ApplyEdge(edge);
  }
}

void ChaosRunner::ApplyEdge(const Edge& edge) {
  const FaultEvent& event = schedule_.events[edge.event];
  if (edge.begin) {
    active_.insert(edge.event);
  } else {
    active_.erase(edge.event);
  }

  if (IsCloudKind(event.kind)) {
    ReapplyCloudState(event.target);
  } else if (event.kind == FaultKind::kLeaseExpiry) {
    // Suspended while ANY lease window is open: a window closing must not
    // re-enable grants another still-open window suspends.
    bool any_active = false;
    for (size_t index : active_) {
      any_active |= schedule_.events[index].kind == FaultKind::kLeaseExpiry;
    }
    if (targets_.lease_hook) {
      targets_.lease_hook(any_active);
    }
  } else if (targets_.replica_hook) {
    targets_.replica_hook(event.target, /*up=*/!edge.begin);
  }

  std::lock_guard<std::mutex> lock(log_mu_);
  log_.push_back(std::string(edge.begin ? "apply " : "clear ") +
                 FaultKindName(event.kind) + " target=" +
                 std::to_string(event.target) + " t=" + FormatMs(edge.at));
}

void ChaosRunner::ReapplyCloudState(unsigned cloud) {
  bool unavailable = false;
  bool corrupt = false;
  bool byzantine = false;
  double transient_p = 0;
  VirtualDuration extra_latency = 0;
  for (size_t index : active_) {
    const FaultEvent& event = schedule_.events[index];
    if (!IsCloudKind(event.kind) || event.target != cloud) {
      continue;
    }
    switch (event.kind) {
      case FaultKind::kOutage:
        unavailable = true;
        break;
      case FaultKind::kLatency:
        extra_latency = std::max(extra_latency, event.extra_latency);
        break;
      case FaultKind::kTransient:
        transient_p = std::max(transient_p, event.probability);
        break;
      case FaultKind::kCorrupt:
        corrupt = true;
        break;
      case FaultKind::kByzantine:
        byzantine = true;
        break;
      case FaultKind::kReplicaRestart:
      case FaultKind::kLeaseExpiry:
        break;
    }
  }
  FaultInjector& faults = targets_.clouds[cloud]->faults();
  faults.SetUnavailable(unavailable);
  faults.SetCorruptAllReads(corrupt);
  faults.SetByzantine(byzantine);
  faults.SetTransientFailureProbability(transient_p);
  faults.SetLatencyDegradation(extra_latency);
}

ChaosTargets TargetsFor(Deployment* deployment) {
  ChaosTargets targets;
  for (unsigned i = 0; i < deployment->cloud_count(); ++i) {
    targets.clouds.push_back(deployment->cloud(i));
  }
  LeaseManager* leases = deployment->lease_manager();
  targets.lease_hook = [leases](bool suspended) {
    leases->SetGrantsSuspended(suspended);
  };
  if (auto* replicated = deployment->replicated_coord()) {
    targets.replica_hook = [replicated](unsigned replica, bool up) {
      if (up) {
        replicated->cluster().RestartReplica(replica);
      } else {
        replicated->cluster().CrashReplica(replica);
      }
    };
  } else if (auto* partitioned = deployment->partitioned_coord()) {
    targets.replica_hook = [partitioned](unsigned replica, bool up) {
      for (unsigned p = 0; p < partitioned->partition_count(); ++p) {
        if (up) {
          partitioned->cluster(p).RestartReplica(replica);
        } else {
          partitioned->cluster(p).CrashReplica(replica);
        }
      }
    };
  }
  return targets;
}

}  // namespace scfs
