#include "src/scfs/metadata_service.h"

#include "src/common/logging.h"
#include "src/common/path.h"
#include "src/crypto/sha1.h"

namespace scfs {

namespace {
constexpr VirtualDuration kPnsLockLease = 600 * kSecond;
}  // namespace

MetadataService::MetadataService(Environment* env, CoordinationService* coord,
                                 StorageService* storage, std::string user,
                                 MetadataServiceOptions options)
    : env_(env),
      coord_(coord),
      storage_(storage),
      user_(std::move(user)),
      options_(options) {}

Status MetadataService::Mount() {
  if (options_.session.empty()) {
    options_.session = user_;
  }
  if (!using_pns()) {
    return OkStatus();
  }
  // Lock the PNS against a second session logged in as the same user, then
  // fetch the PNS object from the cloud (paper §2.7).
  std::string pns_hash;
  if (coord_ != nullptr) {
    ASSIGN_OR_RETURN(CoordLock lock,
                     coord_->TryLock(options_.session,
                                     LockKey(PnsTupleKey(user_)),
                                     kPnsLockLease));
    pns_lock_token_ = lock.token;
    auto tuple = coord_->Read(user_, PnsTupleKey(user_));
    if (tuple.ok()) {
      pns_hash = ToString(tuple->value);
    } else if (tuple.status().code() != ErrorCode::kNotFound) {
      return tuple.status();
    }
  }

  Result<Bytes> blob = NotFoundError("no pns yet");
  if (!pns_hash.empty()) {
    blob = storage_->Fetch(PnsObjectId(), pns_hash);
  } else if (options_.non_sharing) {
    // Non-sharing mode has no coordination service to anchor the PNS hash;
    // read the newest visible PNS object directly (S3QL-style).
    blob = storage_->backend().ReadLatest(PnsObjectId());
  }
  if (blob.ok()) {
    ASSIGN_OR_RETURN(PrivateNameSpace pns, PrivateNameSpace::Decode(*blob));
    std::lock_guard<std::mutex> lock(mu_);
    pns_ = std::move(pns);
  } else if (blob.status().code() != ErrorCode::kNotFound &&
             blob.status().code() != ErrorCode::kTimeout) {
    return blob.status();
  }
  pns_loaded_ = true;
  return OkStatus();
}

Status MetadataService::Unmount() {
  if (!using_pns()) {
    return OkStatus();
  }
  Status flush = FlushPns();
  if (coord_ != nullptr && pns_lock_token_ != 0) {
    (void)coord_->Unlock(options_.session, LockKey(PnsTupleKey(user_)),
                         pns_lock_token_);
  }
  return flush;
}

Status MetadataService::FlushPns() {
  // Serialized end to end: a close's stage-1 Put lands in pns_.entries
  // before its stage-2 flush, so of two serialized flushes the later one
  // always snapshots a superset — the last tuple write can never point at a
  // snapshot missing a completed close.
  std::lock_guard<std::mutex> flush_lock(flush_mu_);
  Bytes encoded;
  {
    std::lock_guard<std::mutex> lock(mu_);
    encoded = pns_.Encode();
  }
  const std::string hash = HexEncode(Sha1::Hash(encoded));
  // The session-lock renewal commutes with both the storage push and the
  // tuple write (different keys), so its coordination round overlaps the
  // cloud upload instead of serializing after it. Joined before returning:
  // Unmount's Unlock must never race an in-flight renewal.
  Future<Status> renewed;
  if (coord_ != nullptr) {
    renewed = coord_->RenewLockAsync(options_.session,
                                     LockKey(PnsTupleKey(user_)),
                                     pns_lock_token_, kPnsLockLease);
  }
  Status pushed = storage_->Push(PnsObjectId(), hash, encoded, {});
  if (!pushed.ok()) {
    if (renewed.valid()) {
      renewed.Join();
    }
    return pushed;
  }
  if (coord_ != nullptr) {
    // The tuple write is anchored after the push; only the renewal overlaps.
    Status written =
        coord_->WriteAsync(user_, PnsTupleKey(user_), ToBytes(hash)).Get();
    renewed.Join();
    RETURN_IF_ERROR(written);
  }
  return OkStatus();
}

bool MetadataService::InPns(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  return pns_.entries.count(path) > 0;
}

Result<FileMetadata> MetadataService::GetFromCoord(const std::string& path) {
  if (coord_ == nullptr) {
    return NotFoundError(path);
  }
  ASSIGN_OR_RETURN(CoordEntry entry, coord_->Read(user_, MetadataKey(path)));
  ++coord_reads_;
  ASSIGN_OR_RETURN(FileMetadata md, FileMetadata::Decode(entry.value));
  md.path = path;  // the key is authoritative (rename triggers move keys)
  return md;
}

Result<FileMetadata> MetadataService::Get(const std::string& path) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    // 1. This agent's in-flight close updates: authoritative until their
    // background publish completes, so they outrank the TTL cache — an
    // older chain's publish refreshes the cache with its (stale) version
    // while a newer close's override is still pending.
    auto override_it = local_overrides_.find(path);
    if (override_it != local_overrides_.end()) {
      return override_it->second;
    }
    // 2. Short-term cache.
    auto it = cache_.find(path);
    if (it != cache_.end()) {
      if (env_->Now() - it->second.fetched_at <= options_.cache_ttl) {
        ++cache_hits_;
        return it->second.metadata;
      }
      cache_.erase(it);
    }
    // 3. PNS (always authoritative for private files — we hold its lock).
    auto pns_it = pns_.entries.find(path);
    if (pns_it != pns_.entries.end()) {
      return pns_it->second;
    }
  }
  // 4. Coordination service.
  ASSIGN_OR_RETURN(FileMetadata md, GetFromCoord(path));
  std::lock_guard<std::mutex> lock(mu_);
  cache_[path] = CachedEntry{md, env_->Now()};
  return md;
}

Status MetadataService::Put(const FileMetadata& metadata) {
  // An entry goes to the PNS iff it is private: already there, or not shared
  // while PNS is enabled. Everything goes there in non-sharing mode.
  const bool in_pns = InPns(metadata.path);
  bool goes_to_pns =
      options_.non_sharing ||
      (options_.use_pns && (in_pns || !metadata.IsShared()));

  if (goes_to_pns && !in_pns && coord_ != nullptr && !options_.non_sharing) {
    // Unknown entry with PNS enabled: it may exist as a shared coordination
    // tuple (e.g. created by another client and opened here). Prefer the
    // coordination service if it already has it.
    auto existing = coord_->Read(user_, MetadataKey(metadata.path));
    if (existing.ok()) {
      goes_to_pns = false;
    }
  }

  if (goes_to_pns) {
    std::lock_guard<std::mutex> lock(mu_);
    pns_.entries[metadata.path] = metadata;
    cache_[metadata.path] = CachedEntry{metadata, env_->Now()};
    return OkStatus();
  }

  RETURN_IF_ERROR(
      coord_->Write(user_, MetadataKey(metadata.path), metadata.Encode()));
  std::lock_guard<std::mutex> lock(mu_);
  cache_[metadata.path] = CachedEntry{metadata, env_->Now()};
  // The coordination service is now at least as fresh as any pending local
  // override this Put was published for.
  auto override_it = local_overrides_.find(metadata.path);
  if (override_it != local_overrides_.end() &&
      override_it->second.version <= metadata.version) {
    local_overrides_.erase(override_it);
  }
  return OkStatus();
}

Status MetadataService::Create(const FileMetadata& metadata) {
  if (options_.non_sharing || options_.use_pns) {
    // New files are born private: existence is checked in the local PNS only
    // (private namespaces are per-user, so private files of different users
    // never collide — §2.7).
    std::lock_guard<std::mutex> lock(mu_);
    if (pns_.entries.count(metadata.path) > 0) {
      return AlreadyExistsError(metadata.path);
    }
    pns_.entries[metadata.path] = metadata;
    cache_[metadata.path] = CachedEntry{metadata, env_->Now()};
    return OkStatus();
  }

  RETURN_IF_ERROR(coord_->ConditionalCreate(user_, MetadataKey(metadata.path),
                                            metadata.Encode()));
  std::lock_guard<std::mutex> lock(mu_);
  cache_[metadata.path] = CachedEntry{metadata, env_->Now()};
  return OkStatus();
}

Status MetadataService::Remove(const std::string& path) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    cache_.erase(path);
    local_overrides_.erase(path);
    auto it = pns_.entries.find(path);
    if (it != pns_.entries.end()) {
      pns_.entries.erase(it);
      return OkStatus();
    }
  }
  if (coord_ == nullptr) {
    return NotFoundError(path);
  }
  return coord_->Remove(user_, MetadataKey(path));
}

Result<std::vector<FileMetadata>> MetadataService::ListDir(
    const std::string& path) {
  std::vector<FileMetadata> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [entry_path, md] : pns_.entries) {
      if (ParentPath(entry_path) == path && entry_path != path) {
        out.push_back(md);
      }
    }
  }
  if (coord_ != nullptr && !options_.non_sharing) {
    const std::string prefix = (path == "/") ? "m:/" : "m:" + path + "/";
    ASSIGN_OR_RETURN(std::vector<CoordEntryView> entries,
                     coord_->ReadPrefix(user_, prefix));
    for (const auto& entry : entries) {
      auto md = FileMetadata::Decode(entry.value);
      if (!md.ok()) {
        continue;
      }
      // Key layout is "m:<path>/"; recover the path and keep only children.
      std::string entry_path = entry.key.substr(2);
      if (!entry_path.empty() && entry_path.back() == '/') {
        entry_path.pop_back();
      }
      if (ParentPath(entry_path) != path || entry_path == path) {
        continue;
      }
      md->path = entry_path;
      out.push_back(std::move(*md));
    }
  }
  return out;
}

Status MetadataService::RenameSubtree(const std::string& from,
                                      const std::string& to) {
  bool renamed_any = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::pair<std::string, FileMetadata>> moved;
    for (auto it = pns_.entries.begin(); it != pns_.entries.end();) {
      if (PathIsWithin(it->first, from)) {
        std::string new_path = to + it->first.substr(from.size());
        FileMetadata md = std::move(it->second);
        md.path = new_path;
        moved.emplace_back(std::move(new_path), std::move(md));
        it = pns_.entries.erase(it);
        renamed_any = true;
      } else {
        ++it;
      }
    }
    for (auto& [new_path, md] : moved) {
      pns_.entries[new_path] = std::move(md);
    }
    cache_.clear();
  }
  if (coord_ != nullptr && !options_.non_sharing) {
    // One atomic server-side trigger (the DepSpace extension the paper added
    // for rename): "m:<from>/" covers the entry itself and every descendant.
    Status s = coord_->RenamePrefix(user_, "m:" + from + "/", "m:" + to + "/");
    if (s.ok()) {
      renamed_any = true;
    } else if (s.code() != ErrorCode::kNotFound) {
      return s;
    }
  }
  return renamed_any ? OkStatus() : NotFoundError(from);
}

Status MetadataService::AddTombstone(const std::string& object_id) {
  if (using_pns()) {
    std::lock_guard<std::mutex> lock(mu_);
    pns_.tombstones.push_back(object_id);
    return OkStatus();
  }
  return coord_->Write(user_, TombstoneKey(user_, object_id), {});
}

Result<std::vector<std::string>> MetadataService::ListTombstones() {
  std::vector<std::string> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out = pns_.tombstones;
  }
  if (coord_ != nullptr && !options_.non_sharing) {
    const std::string prefix = "t:" + user_ + ":";
    ASSIGN_OR_RETURN(std::vector<CoordEntryView> entries,
                     coord_->ReadPrefix(user_, prefix));
    for (const auto& entry : entries) {
      out.push_back(entry.key.substr(prefix.size()));
    }
  }
  return out;
}

Status MetadataService::RemoveTombstone(const std::string& object_id) {
  return RemoveTombstoneAsync(object_id).Get();
}

Future<Status> MetadataService::RemoveTombstoneAsync(
    const std::string& object_id) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = std::find(pns_.tombstones.begin(), pns_.tombstones.end(),
                        object_id);
    if (it != pns_.tombstones.end()) {
      pns_.tombstones.erase(it);
      return Future<Status>::Ready(OkStatus());
    }
  }
  if (coord_ == nullptr) {
    return Future<Status>::Ready(NotFoundError(object_id));
  }
  return coord_->RemoveAsync(user_, TombstoneKey(user_, object_id));
}

Status MetadataService::PromoteToShared(const FileMetadata& metadata) {
  if (!options_.use_pns || coord_ == nullptr) {
    return Put(metadata);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    pns_.entries.erase(metadata.path);
  }
  RETURN_IF_ERROR(
      coord_->Write(user_, MetadataKey(metadata.path), metadata.Encode()));
  std::lock_guard<std::mutex> lock(mu_);
  cache_[metadata.path] = CachedEntry{metadata, env_->Now()};
  return OkStatus();
}

Status MetadataService::DemoteToPrivate(const FileMetadata& metadata) {
  if (!options_.use_pns || coord_ == nullptr) {
    return Put(metadata);
  }
  RETURN_IF_ERROR(coord_->Remove(user_, MetadataKey(metadata.path)));
  std::lock_guard<std::mutex> lock(mu_);
  pns_.entries[metadata.path] = metadata;
  cache_[metadata.path] = CachedEntry{metadata, env_->Now()};
  return OkStatus();
}

Status MetadataService::GrantEntry(const std::string& path,
                                   const std::string& grantee, bool read,
                                   bool write) {
  if (coord_ == nullptr) {
    return NotSupportedError("no coordination service in non-sharing mode");
  }
  return coord_->GrantEntryAccess(user_, MetadataKey(path), grantee, read,
                                  write);
}

void MetadataService::InvalidateCache(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  cache_.erase(path);
}

bool MetadataService::IsPrivateEntry(const FileMetadata& metadata) {
  if (options_.non_sharing) {
    return true;
  }
  return options_.use_pns && !metadata.IsShared() && InPns(metadata.path);
}

void MetadataService::CacheLocally(const FileMetadata& metadata) {
  std::lock_guard<std::mutex> lock(mu_);
  cache_[metadata.path] = CachedEntry{metadata, env_->Now()};
  local_overrides_[metadata.path] = metadata;
}

std::vector<FileMetadata> MetadataService::PnsEntries() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<FileMetadata> out;
  out.reserve(pns_.entries.size());
  for (const auto& [path, md] : pns_.entries) {
    out.push_back(md);
  }
  return out;
}

}  // namespace scfs
