#include "src/scfs/metadata_service.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/common/path.h"
#include "src/crypto/sha1.h"

namespace scfs {

namespace {
constexpr VirtualDuration kPnsLockLease = 600 * kSecond;
}  // namespace

MetadataService::MetadataService(Environment* env, CoordinationService* coord,
                                 StorageService* storage, std::string user,
                                 MetadataServiceOptions options)
    : env_(env),
      coord_(coord),
      storage_(storage),
      user_(std::move(user)),
      options_(options) {
  if (LeasesEnabled()) {
    lease_holder_id_ = options_.leases->RegisterHolder(
        [this](const std::string& prefix) { OnLeaseRevoked(prefix); });
  }
}

MetadataService::~MetadataService() {
  if (lease_holder_id_ != 0) {
    options_.leases->UnregisterHolder(lease_holder_id_);
  }
}

std::string MetadataService::LeasePrefixFor(const std::string& path) {
  const std::string dir = ParentPath(path);
  return dir == "/" ? "m:/" : "m:" + dir + "/";
}

MetadataService::LeasedPrefix* MetadataService::FindCoveringLease(
    const std::string& mkey) {
  const VirtualTime now = env_->Now();
  for (auto it = leases_.begin(); it != leases_.end();) {
    if (it->second.expires_at <= now) {
      // Same expiry rule as the state machine: at `expires_at` the replicas
      // consider the lease dead and mutations stop notifying, so the client
      // must already have stopped serving from it.
      it = leases_.erase(it);
      continue;
    }
    if (mkey.compare(0, it->first.size(), it->first) == 0) {
      it->second.last_used = now;
      return &it->second;
    }
    ++it;
  }
  return nullptr;
}

void MetadataService::OnLeaseRevoked(const std::string& prefix) {
  std::lock_guard<std::mutex> lock(mu_);
  ++lease_revocation_gen_;
  lease_revocation_log_.emplace_back(lease_revocation_gen_, prefix);
  if (lease_revocation_log_.size() > 64) {
    lease_revocation_log_.pop_front();
  }
  bool lost = false;
  for (auto it = leases_.begin(); it != leases_.end();) {
    // Overlap in either direction (the empty prefix — InvalidateAll —
    // covers every lease).
    const size_t n = std::min(prefix.size(), it->first.size());
    if (prefix.compare(0, n, it->first, 0, n) == 0) {
      it = leases_.erase(it);
      lost = true;
    } else {
      ++it;
    }
  }
  // A grant in flight for an overlapping prefix is about to be discarded by
  // the race check — that wasted round counts as a loss too.
  for (const auto& in_flight : lease_grants_in_flight_) {
    const size_t n = std::min(prefix.size(), in_flight.size());
    if (prefix.compare(0, n, in_flight, 0, n) == 0) {
      lost = true;
      break;
    }
  }
  // Drop covered TTL-cache entries too: the revocation proves a mutation is
  // about to ack, so a fresh read should not resurrect the old value for up
  // to cache_ttl.
  for (auto it = cache_.begin(); it != cache_.end();) {
    if (prefix.empty() ||
        MetadataKey(it->first).compare(0, prefix.size(), prefix) == 0) {
      it = cache_.erase(it);
    } else {
      ++it;
    }
  }
  // Penalize the prefix only when this client actually lost something — a
  // live lease or an in-flight grant. Revocation notices also reach clients
  // that hold nothing under the prefix (the manager fans every notice to all
  // registered holders); escalating on those would let one writer's burst
  // blacklist the prefix for every bystander long after the writes stop.
  if (!prefix.empty()) {
    const VirtualTime now = env_->Now();
    if (lost) {
      LeaseHoldoff& holdoff = lease_holdoff_[prefix];
      if (holdoff.until != 0 && now > holdoff.until + options_.lease_ttl) {
        holdoff.penalty = 1;  // the prefix has been quiet; forget the history
      }
      holdoff.until = now + options_.lease_holdoff * holdoff.penalty;
      // Cap the escalation at 4x the base holdoff: a persistently write-hot
      // prefix keeps losing its lease and so keeps refreshing the holdoff
      // anyway (at most one wasted grant round per cap period), while a
      // prefix whose write burst just ended (e.g. fileset setup) recovers
      // within a few seconds instead of staying banned for a multiple of
      // the TTL.
      if (holdoff.penalty < 4) {
        holdoff.penalty *= 2;
      }
    } else {
      // Bystander refresh: someone else's lease on this prefix just died
      // to a mutation. If we are already backing off the prefix, extend the
      // window without escalating — their loss is the probe we would have
      // wasted a grant round on. A prefix whose holdoff already expired is
      // NOT re-penalized: it has earned its next probe.
      auto it = lease_holdoff_.find(prefix);
      if (it != lease_holdoff_.end() && now < it->second.until) {
        it->second.until =
            std::max(it->second.until,
                     now + options_.lease_holdoff * it->second.penalty);
      }
    }
  }
}

Status MetadataService::AcquireLeaseFor(const std::string& prefix) {
  if (!options_.leases->AllowsGrants()) {
    return UnavailableError("lease grants suspended");
  }
  uint64_t gen_before = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto holdoff = lease_holdoff_.find(prefix);
    if (holdoff != lease_holdoff_.end() &&
        env_->Now() < holdoff->second.until) {
      return BusyError("lease holdoff " + prefix);
    }
    if (!lease_grants_in_flight_.insert(prefix).second) {
      return BusyError("lease grant already in flight " + prefix);
    }
    gen_before = lease_revocation_gen_;
  }
  Result<LeaseGrant> granted =
      coord_->AcquireLease(user_, options_.session, prefix,
                           options_.lease_ttl);
  std::lock_guard<std::mutex> lock(mu_);
  lease_grants_in_flight_.erase(prefix);
  if (!granted.ok()) {
    return granted.status();
  }
  LeaseGrant& grant = *granted;
  if (lease_revocation_gen_ != gen_before) {
    // Revocation notices landed while the grant was in flight; if any of
    // them overlaps this prefix the grant may have been ordered before the
    // revoking mutation. Discard it then — the server-side lease record it
    // created just expires. Non-overlapping revocations (a busy unrelated
    // directory) don't invalidate this grant.
    bool overlapping =
        !lease_revocation_log_.empty() &&
        lease_revocation_log_.front().first > gen_before + 1;  // log pruned
    for (const auto& entry : lease_revocation_log_) {
      if (entry.first <= gen_before || overlapping) {
        continue;
      }
      const std::string& revoked = entry.second;
      const size_t n = std::min(revoked.size(), prefix.size());
      overlapping = revoked.compare(0, n, prefix, 0, n) == 0;
    }
    if (overlapping) {
      return BusyError("lease grant raced a revocation " + prefix);
    }
  }
  if (leases_.size() >= options_.lease_max_prefixes &&
      leases_.count(prefix) == 0) {
    auto lru = leases_.begin();
    for (auto it = leases_.begin(); it != leases_.end(); ++it) {
      if (it->second.last_used < lru->second.last_used) {
        lru = it;
      }
    }
    leases_.erase(lru);
  }
  LeasedPrefix lease;
  lease.epoch = grant.epoch;
  lease.expires_at = grant.expires_at;
  lease.last_used = env_->Now();
  for (const auto& entry : grant.entries) {
    auto md = FileMetadata::Decode(entry.value);
    if (!md.ok()) {
      continue;  // non-metadata tuple under the prefix (none today)
    }
    std::string entry_path = entry.key.substr(2);  // strip "m:"
    if (!entry_path.empty() && entry_path.back() == '/') {
      entry_path.pop_back();
    }
    md->path = entry_path;
    lease.entries.emplace(std::move(entry_path), std::move(*md));
  }
  leases_[prefix] = std::move(lease);
  ++lease_grants_;
  options_.leases->RecordGrant();
  return OkStatus();
}

Status MetadataService::Mount() {
  if (options_.session.empty()) {
    options_.session = user_;
  }
  if (UsesPartitionedCoord()) {
    // Finish any cross-partition rename a crashed session left behind
    // before serving metadata: a half-moved subtree must converge to the
    // rename's destination, not stay split across partitions.
    RETURN_IF_ERROR(ReplayRenameIntents());
  }
  if (!using_pns()) {
    return OkStatus();
  }
  // Lock the PNS against a second session logged in as the same user, then
  // fetch the PNS object from the cloud (paper §2.7).
  std::string pns_hash;
  if (coord_ != nullptr) {
    ASSIGN_OR_RETURN(CoordLock lock,
                     coord_->TryLock(options_.session,
                                     LockKey(PnsTupleKey(user_)),
                                     kPnsLockLease));
    pns_lock_token_ = lock.token;
    auto tuple = coord_->Read(user_, PnsTupleKey(user_));
    if (tuple.ok()) {
      pns_hash = ToString(tuple->value);
    } else if (tuple.status().code() != ErrorCode::kNotFound) {
      return tuple.status();
    }
  }

  Result<Bytes> blob = NotFoundError("no pns yet");
  if (!pns_hash.empty()) {
    blob = storage_->Fetch(PnsObjectId(), pns_hash);
  } else if (options_.non_sharing) {
    // Non-sharing mode has no coordination service to anchor the PNS hash;
    // read the newest visible PNS object directly (S3QL-style).
    blob = storage_->backend().ReadLatest(PnsObjectId());
  }
  if (blob.ok()) {
    ASSIGN_OR_RETURN(PrivateNameSpace pns, PrivateNameSpace::Decode(*blob));
    std::lock_guard<std::mutex> lock(mu_);
    pns_ = std::move(pns);
  } else if (blob.status().code() != ErrorCode::kNotFound &&
             blob.status().code() != ErrorCode::kTimeout) {
    return blob.status();
  }
  pns_loaded_ = true;
  return OkStatus();
}

Status MetadataService::Unmount() {
  if (!using_pns()) {
    return OkStatus();
  }
  Status flush = FlushPns();
  if (coord_ != nullptr && pns_lock_token_ != 0) {
    (void)coord_->Unlock(options_.session, LockKey(PnsTupleKey(user_)),
                         pns_lock_token_);
  }
  return flush;
}

Status MetadataService::FlushPns() {
  // Serialized end to end: a close's stage-1 Put lands in pns_.entries
  // before its stage-2 flush, so of two serialized flushes the later one
  // always snapshots a superset — the last tuple write can never point at a
  // snapshot missing a completed close.
  std::lock_guard<std::mutex> flush_lock(flush_mu_);
  Bytes encoded;
  {
    std::lock_guard<std::mutex> lock(mu_);
    encoded = pns_.Encode();
  }
  const std::string hash = HexEncode(Sha1::Hash(encoded));
  // The session-lock renewal commutes with both the storage push and the
  // tuple write (different keys), so its coordination round overlaps the
  // cloud upload instead of serializing after it. Joined before returning:
  // Unmount's Unlock must never race an in-flight renewal.
  Future<Status> renewed;
  if (coord_ != nullptr) {
    renewed = coord_->RenewLockAsync(options_.session,
                                     LockKey(PnsTupleKey(user_)),
                                     pns_lock_token_, kPnsLockLease);
  }
  Status pushed = storage_->Push(PnsObjectId(), hash, encoded, {});
  if (!pushed.ok()) {
    if (renewed.valid()) {
      renewed.Join();
    }
    return pushed;
  }
  if (coord_ != nullptr) {
    // The tuple write is anchored after the push; only the renewal overlaps.
    Status written =
        coord_->WriteAsync(user_, PnsTupleKey(user_), ToBytes(hash)).Get();
    renewed.Join();
    RETURN_IF_ERROR(written);
  }
  return OkStatus();
}

bool MetadataService::InPns(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  return pns_.entries.count(path) > 0;
}

Result<FileMetadata> MetadataService::GetFromCoord(const std::string& path) {
  if (coord_ == nullptr) {
    return NotFoundError(path);
  }
  ASSIGN_OR_RETURN(CoordEntry entry, coord_->Read(user_, MetadataKey(path)));
  ++coord_reads_;
  ASSIGN_OR_RETURN(FileMetadata md, FileMetadata::Decode(entry.value));
  md.path = path;  // the key is authoritative (rename triggers move keys)
  return md;
}

Result<FileMetadata> MetadataService::Get(const std::string& path) {
  const std::string mkey = MetadataKey(path);
  {
    std::lock_guard<std::mutex> lock(mu_);
    // 1. This agent's in-flight close updates: authoritative until their
    // background publish completes, so they outrank the TTL cache — an
    // older chain's publish refreshes the cache with its (stale) version
    // while a newer close's override is still pending.
    auto override_it = local_overrides_.find(path);
    if (override_it != local_overrides_.end()) {
      return override_it->second;
    }
    // 1b. Write-credit pin: we hold the path's write lock, so our own last
    // publish is the newest committed version — serve it with zero
    // coordination messages until the lock's lease bound.
    auto pinned_it = pinned_.find(path);
    if (pinned_it != pinned_.end()) {
      if (env_->Now() < pinned_it->second.valid_until) {
        ++pinned_hits_;
        if (options_.leases != nullptr) {
          options_.leases->RecordLocalHit();
        }
        return pinned_it->second.metadata;
      }
      pinned_.erase(pinned_it);
    }
    // 2. A live lease covering the path: the grant snapshot is the
    // coordination service's state as of the grant, kept honest by
    // revocation notices, so it outranks the TTL cache — and a covered path
    // absent from it is authoritatively absent from the coordination
    // service (negative caching; it may still be private in the PNS).
    if (LeasedPrefix* lease = FindCoveringLease(mkey)) {
      ++lease_hits_;
      options_.leases->RecordLocalHit();
      auto entry_it = lease->entries.find(path);
      if (entry_it != lease->entries.end()) {
        return entry_it->second;
      }
      auto pns_it = pns_.entries.find(path);
      if (pns_it != pns_.entries.end()) {
        return pns_it->second;
      }
      return NotFoundError(path);
    }
    // 3. Short-term cache.
    auto it = cache_.find(path);
    if (it != cache_.end()) {
      if (env_->Now() - it->second.fetched_at <= options_.cache_ttl) {
        ++cache_hits_;
        return it->second.metadata;
      }
      cache_.erase(it);
    }
    // 4. PNS (always authoritative for private files — we hold its lock).
    auto pns_it = pns_.entries.find(path);
    if (pns_it != pns_.entries.end()) {
      return pns_it->second;
    }
  }
  // 5. Acquire a lease on the parent directory: one ordered command whose
  // grant snapshot answers this read and every following read under the
  // directory until a mutation revokes it.
  if (LeasesEnabled()) {
    const std::string prefix = LeasePrefixFor(path);
    if (AcquireLeaseFor(prefix).ok()) {
      std::lock_guard<std::mutex> lock(mu_);
      if (LeasedPrefix* lease = FindCoveringLease(mkey)) {
        auto entry_it = lease->entries.find(path);
        if (entry_it != lease->entries.end()) {
          return entry_it->second;
        }
        auto pns_it = pns_.entries.find(path);
        if (pns_it != pns_.entries.end()) {
          return pns_it->second;
        }
        return NotFoundError(path);
      }
      // Revoked between install and this lookup: fall through to the
      // anchored read.
    }
  }
  // 6. Coordination service (the anchored path).
  ASSIGN_OR_RETURN(FileMetadata md, GetFromCoord(path));
  std::lock_guard<std::mutex> lock(mu_);
  cache_[path] = CachedEntry{md, env_->Now()};
  return md;
}

Status MetadataService::Put(const FileMetadata& metadata) {
  // An entry goes to the PNS iff it is private: already there, or not shared
  // while PNS is enabled. Everything goes there in non-sharing mode.
  const bool in_pns = InPns(metadata.path);
  bool goes_to_pns =
      options_.non_sharing ||
      (options_.use_pns && (in_pns || !metadata.IsShared()));

  if (goes_to_pns && !in_pns && coord_ != nullptr && !options_.non_sharing) {
    // Unknown entry with PNS enabled: it may exist as a shared coordination
    // tuple (e.g. created by another client and opened here). Prefer the
    // coordination service if it already has it.
    auto existing = coord_->Read(user_, MetadataKey(metadata.path));
    if (existing.ok()) {
      goes_to_pns = false;
    }
  }

  if (goes_to_pns) {
    std::lock_guard<std::mutex> lock(mu_);
    pns_.entries[metadata.path] = metadata;
    cache_[metadata.path] = CachedEntry{metadata, env_->Now()};
    return OkStatus();
  }

  RETURN_IF_ERROR(
      coord_->Write(user_, MetadataKey(metadata.path), metadata.Encode()));
  std::lock_guard<std::mutex> lock(mu_);
  cache_[metadata.path] = CachedEntry{metadata, env_->Now()};
  // The coordination service is now at least as fresh as any pending local
  // override this Put was published for.
  auto override_it = local_overrides_.find(metadata.path);
  if (override_it != local_overrides_.end() &&
      override_it->second.version <= metadata.version) {
    local_overrides_.erase(override_it);
  }
  return OkStatus();
}

Status MetadataService::Create(const FileMetadata& metadata) {
  if (options_.non_sharing || options_.use_pns) {
    // New files are born private: existence is checked in the local PNS only
    // (private namespaces are per-user, so private files of different users
    // never collide — §2.7).
    std::lock_guard<std::mutex> lock(mu_);
    if (pns_.entries.count(metadata.path) > 0) {
      return AlreadyExistsError(metadata.path);
    }
    pns_.entries[metadata.path] = metadata;
    cache_[metadata.path] = CachedEntry{metadata, env_->Now()};
    return OkStatus();
  }

  RETURN_IF_ERROR(coord_->ConditionalCreate(user_, MetadataKey(metadata.path),
                                            metadata.Encode()));
  std::lock_guard<std::mutex> lock(mu_);
  cache_[metadata.path] = CachedEntry{metadata, env_->Now()};
  return OkStatus();
}

Status MetadataService::Remove(const std::string& path) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    cache_.erase(path);
    local_overrides_.erase(path);
    pinned_.erase(path);
    auto it = pns_.entries.find(path);
    if (it != pns_.entries.end()) {
      pns_.entries.erase(it);
      return OkStatus();
    }
  }
  if (coord_ == nullptr) {
    return NotFoundError(path);
  }
  return coord_->Remove(user_, MetadataKey(path));
}

Result<std::vector<FileMetadata>> MetadataService::ListDir(
    const std::string& path) {
  std::vector<FileMetadata> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [entry_path, md] : pns_.entries) {
      if (ParentPath(entry_path) == path && entry_path != path) {
        out.push_back(md);
      }
    }
  }
  if (coord_ != nullptr && !options_.non_sharing) {
    const std::string prefix = (path == "/") ? "m:/" : "m:" + path + "/";
    // A live lease on exactly this directory's prefix answers the listing
    // from the grant snapshot — the common readdir costs no messages.
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto lease_it = leases_.find(prefix);
      if (lease_it != leases_.end() &&
          env_->Now() < lease_it->second.expires_at) {
        lease_it->second.last_used = env_->Now();
        ++lease_hits_;
        options_.leases->RecordLocalHit();
        for (const auto& [entry_path, md] : lease_it->second.entries) {
          if (ParentPath(entry_path) == path && entry_path != path) {
            out.push_back(md);
          }
        }
        return out;
      }
    }
    if (LeasesEnabled() && AcquireLeaseFor(prefix).ok()) {
      std::lock_guard<std::mutex> lock(mu_);
      auto lease_it = leases_.find(prefix);
      if (lease_it != leases_.end()) {
        for (const auto& [entry_path, md] : lease_it->second.entries) {
          if (ParentPath(entry_path) == path && entry_path != path) {
            out.push_back(md);
          }
        }
        return out;
      }
    }
    ASSIGN_OR_RETURN(std::vector<CoordEntryView> entries,
                     coord_->ReadPrefix(user_, prefix));
    for (const auto& entry : entries) {
      auto md = FileMetadata::Decode(entry.value);
      if (!md.ok()) {
        continue;
      }
      // Key layout is "m:<path>/"; recover the path and keep only children.
      std::string entry_path = entry.key.substr(2);
      if (!entry_path.empty() && entry_path.back() == '/') {
        entry_path.pop_back();
      }
      if (ParentPath(entry_path) != path || entry_path == path) {
        continue;
      }
      md->path = entry_path;
      out.push_back(std::move(*md));
    }
  }
  return out;
}

Status MetadataService::RenameSubtree(const std::string& from,
                                      const std::string& to) {
  bool renamed_any = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::pair<std::string, FileMetadata>> moved;
    for (auto it = pns_.entries.begin(); it != pns_.entries.end();) {
      if (PathIsWithin(it->first, from)) {
        std::string new_path = to + it->first.substr(from.size());
        FileMetadata md = std::move(it->second);
        md.path = new_path;
        moved.emplace_back(std::move(new_path), std::move(md));
        it = pns_.entries.erase(it);
        renamed_any = true;
      } else {
        ++it;
      }
    }
    for (auto& [new_path, md] : moved) {
      pns_.entries[new_path] = std::move(md);
    }
    cache_.clear();
    // A rename moves whole subtrees under other keys; pinned copies of the
    // old paths must not survive it.
    for (auto it = pinned_.begin(); it != pinned_.end();) {
      if (PathIsWithin(it->first, from) || PathIsWithin(it->first, to)) {
        it = pinned_.erase(it);
      } else {
        ++it;
      }
    }
  }
  if (coord_ != nullptr && !options_.non_sharing) {
    Status s;
    if (coord_->partition_count() > 1) {
      // The subtree's tuples hash across partitions, out of reach of the
      // single-partition trigger: run the intent-record protocol.
      s = CrossPartitionRename(from, to);
    } else {
      // One atomic server-side trigger (the DepSpace extension the paper
      // added for rename): "m:<from>/" covers the entry itself and every
      // descendant.
      s = coord_->RenamePrefix(user_, "m:" + from + "/", "m:" + to + "/");
    }
    if (s.ok()) {
      renamed_any = true;
    } else if (s.code() != ErrorCode::kNotFound) {
      return s;
    }
  }
  return renamed_any ? OkStatus() : NotFoundError(from);
}

Status MetadataService::CrossPartitionRename(const std::string& from,
                                             const std::string& to) {
  const std::string intent_key = RenameIntentKey(from);
  const Bytes intent = EncodeRenameIntent(from, to);
  // Prepare: the intent record, durably ordered on the source subtree's
  // partition. ConditionalCreate makes a concurrent rename of the same
  // subtree (or a crashed one's leftover) visible as kAlreadyExists.
  Status created = coord_->ConditionalCreate(user_, intent_key, intent);
  if (created.code() == ErrorCode::kAlreadyExists) {
    // A crashed rename of this same source is outstanding: finish it, then
    // claim the key for ours.
    ASSIGN_OR_RETURN(CoordEntry stale, coord_->Read(user_, intent_key));
    auto decoded = DecodeRenameIntent(stale.value);
    if (decoded.ok()) {
      Status replay = ExecuteRenameIntent(decoded->from, decoded->to);
      if (!replay.ok() && replay.code() != ErrorCode::kNotFound) {
        return replay;
      }
    }
    RETURN_IF_ERROR(coord_->Remove(user_, intent_key));
    created = coord_->ConditionalCreate(user_, intent_key, intent);
  }
  RETURN_IF_ERROR(created);
  bool mutated = false;
  Status moved = ExecuteRenameIntent(from, to, &mutated);
  if (moved.ok() || moved.code() == ErrorCode::kNotFound ||
      (!mutated && moved.code() == ErrorCode::kPermissionDenied)) {
    // Done, nothing to move, or refused before anything moved (the
    // export's permission check runs ahead of all imports): the prepare
    // record is dead either way. A failure after the first import — even
    // a permission one, e.g. an unwritable pre-existing destination entry
    // — keeps the record so Mount can replay (or an operator can fix the
    // ACL and remount); dropping it would strand a half-moved subtree.
    (void)coord_->Remove(user_, intent_key);
  }
  return moved;
}

Status MetadataService::ExecuteRenameIntent(const std::string& from,
                                            const std::string& to,
                                            bool* mutated) {
  const std::string src_prefix = MetadataKey(from);
  const std::string dst_prefix = MetadataKey(to);
  const std::string commit_key = RenameCommitKey(to);

  // Phase detection. Only a commit marker recording THIS rename's
  // (from, to) proves our imports completed; a leftover marker from a
  // crashed rename of a *different* source into the same destination must
  // not make us skip our import phase (we would delete sources that were
  // never installed). Such a foreign marker is resolved first: finish the
  // crashed rename it records — its marker proves its own imports are
  // done, so that is just its remaining deletes — and retire its records.
  bool committed = false;
  auto marker = coord_->Read(user_, commit_key);
  if (marker.ok()) {
    auto recorded = DecodeRenameIntent(marker->value);
    if (recorded.ok() && recorded->from == from && recorded->to == to) {
      committed = true;
    } else if (recorded.ok()) {
      RETURN_IF_ERROR(ExecuteRenameIntent(recorded->from, recorded->to));
      (void)coord_->Remove(user_, RenameIntentKey(recorded->from));
    } else {
      (void)coord_->Remove(user_, commit_key);  // unreplayable garbage
    }
  }

  // The source entries still in place — on a replay, the not-yet-retired
  // remainder. Export checks write permission on every entry (the same
  // demand RenamePrefix makes) before anything moves.
  ASSIGN_OR_RETURN(std::vector<CoordEntryView> exported,
                   coord_->ExportPrefix(user_, src_prefix));
  if (exported.empty() && !committed) {
    return NotFoundError(from);
  }
  if (!committed) {
    // Import: install every entry at its destination key, each routed to
    // its own partition. ImportEntry derives the new version from the
    // exported payload, so a replayed import rewrites identical state —
    // crashing between any two of these and re-running is harmless. The
    // imports commute (distinct keys): fan out and join.
    if (mutated != nullptr) {
      *mutated = true;
    }
    std::vector<Future<Status>> imports;
    imports.reserve(exported.size());
    for (const auto& entry : exported) {
      std::string new_key = dst_prefix + entry.key.substr(src_prefix.size());
      imports.push_back(
          coord_->ImportEntryAsync(user_, std::move(new_key), entry.value));
    }
    for (const Status& s : WhenAll(std::move(imports)).Get()) {
      RETURN_IF_ERROR(s);
    }
    // Commit: the marker on the destination's partition. From here the
    // move is decided; a crash leaves only source-side deletes.
    Status mark = coord_->ConditionalCreate(user_, commit_key,
                                            EncodeRenameIntent(from, to));
    if (!mark.ok() && mark.code() != ErrorCode::kAlreadyExists) {
      return mark;
    }
  }
  // Retire the source keys (kNotFound = a replay finding work already
  // done), then the commit marker; the caller retires the intent record.
  if (mutated != nullptr) {
    *mutated = true;
  }
  std::vector<Future<Status>> removals;
  removals.reserve(exported.size());
  for (const auto& entry : exported) {
    removals.push_back(coord_->RemoveAsync(user_, entry.key));
  }
  for (const Status& s : WhenAll(std::move(removals)).Get()) {
    if (!s.ok() && s.code() != ErrorCode::kNotFound) {
      return s;
    }
  }
  Status unmark = coord_->Remove(user_, commit_key);
  if (!unmark.ok() && unmark.code() != ErrorCode::kNotFound) {
    return unmark;
  }
  return OkStatus();
}

Status MetadataService::ReplayRenameIntents() {
  ASSIGN_OR_RETURN(std::vector<CoordEntryView> intents,
                   coord_->ReadPrefix(user_, kRenameIntentPrefix));
  for (const auto& record : intents) {
    auto intent = DecodeRenameIntent(record.value);
    if (!intent.ok()) {
      // Unreplayable garbage; keeping it would wedge every future rename
      // of the same source.
      (void)coord_->Remove(user_, record.key);
      continue;
    }
    Status replayed = ExecuteRenameIntent(intent->from, intent->to);
    if (replayed.ok() || replayed.code() == ErrorCode::kNotFound) {
      (void)coord_->Remove(user_, record.key);
    } else {
      // Leave the intent for the next mount rather than failing this one:
      // the half-moved subtree is still replayable, and per-key operations
      // remain correct meanwhile.
      SCFS_LOG(Warning) << "rename intent replay " << intent->from << " -> "
                        << intent->to << " failed: " << replayed.message();
    }
  }
  return OkStatus();
}

Status MetadataService::AddTombstone(const std::string& object_id) {
  if (using_pns()) {
    std::lock_guard<std::mutex> lock(mu_);
    pns_.tombstones.push_back(object_id);
    return OkStatus();
  }
  return coord_->Write(user_, TombstoneKey(user_, object_id), {});
}

Result<std::vector<std::string>> MetadataService::ListTombstones() {
  std::vector<std::string> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out = pns_.tombstones;
  }
  if (coord_ != nullptr && !options_.non_sharing) {
    const std::string prefix = "t:" + user_ + ":";
    ASSIGN_OR_RETURN(std::vector<CoordEntryView> entries,
                     coord_->ReadPrefix(user_, prefix));
    for (const auto& entry : entries) {
      out.push_back(entry.key.substr(prefix.size()));
    }
  }
  return out;
}

Status MetadataService::RemoveTombstone(const std::string& object_id) {
  return RemoveTombstoneAsync(object_id).Get();
}

Future<Status> MetadataService::RemoveTombstoneAsync(
    const std::string& object_id) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = std::find(pns_.tombstones.begin(), pns_.tombstones.end(),
                        object_id);
    if (it != pns_.tombstones.end()) {
      pns_.tombstones.erase(it);
      return Future<Status>::Ready(OkStatus());
    }
  }
  if (coord_ == nullptr) {
    return Future<Status>::Ready(NotFoundError(object_id));
  }
  return coord_->RemoveAsync(user_, TombstoneKey(user_, object_id));
}

Status MetadataService::PromoteToShared(const FileMetadata& metadata) {
  if (!options_.use_pns || coord_ == nullptr) {
    return Put(metadata);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    pns_.entries.erase(metadata.path);
  }
  RETURN_IF_ERROR(
      coord_->Write(user_, MetadataKey(metadata.path), metadata.Encode()));
  std::lock_guard<std::mutex> lock(mu_);
  cache_[metadata.path] = CachedEntry{metadata, env_->Now()};
  return OkStatus();
}

Status MetadataService::DemoteToPrivate(const FileMetadata& metadata) {
  if (!options_.use_pns || coord_ == nullptr) {
    return Put(metadata);
  }
  RETURN_IF_ERROR(coord_->Remove(user_, MetadataKey(metadata.path)));
  std::lock_guard<std::mutex> lock(mu_);
  pns_.entries[metadata.path] = metadata;
  cache_[metadata.path] = CachedEntry{metadata, env_->Now()};
  return OkStatus();
}

Status MetadataService::GrantEntry(const std::string& path,
                                   const std::string& grantee, bool read,
                                   bool write) {
  if (coord_ == nullptr) {
    return NotSupportedError("no coordination service in non-sharing mode");
  }
  return coord_->GrantEntryAccess(user_, MetadataKey(path), grantee, read,
                                  write);
}

void MetadataService::InvalidateCache(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  cache_.erase(path);
  pinned_.erase(path);
}

void MetadataService::PinOwned(const FileMetadata& metadata,
                               VirtualTime valid_until) {
  if (valid_until == 0) {
    return;  // lock not actually held (e.g. non-sharing mode)
  }
  std::lock_guard<std::mutex> lock(mu_);
  pinned_[metadata.path] = PinnedEntry{metadata, valid_until};
}

void MetadataService::UnpinOwned(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  pinned_.erase(path);
}

bool MetadataService::IsPrivateEntry(const FileMetadata& metadata) {
  if (options_.non_sharing) {
    return true;
  }
  return options_.use_pns && !metadata.IsShared() && InPns(metadata.path);
}

void MetadataService::CacheLocally(const FileMetadata& metadata) {
  std::lock_guard<std::mutex> lock(mu_);
  cache_[metadata.path] = CachedEntry{metadata, env_->Now()};
  local_overrides_[metadata.path] = metadata;
}

std::vector<FileMetadata> MetadataService::PnsEntries() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<FileMetadata> out;
  out.reserve(pns_.entries.size());
  for (const auto& [path, md] : pns_.entries) {
    out.push_back(md);
  }
  return out;
}

}  // namespace scfs
