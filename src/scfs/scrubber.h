// BackgroundScrubber: client-transparent redundancy repair for the striped
// data plane (DESIGN.md "Striped data plane", repair protocol).
//
// A cloud outage or data-loss event leaves stored objects missing or corrupt
// while reads keep succeeding off the surviving quorum — redundancy has
// silently degraded from n holders to as few as k. The scrubber walks the
// tracked data units in the background and asks the backend to probe and
// repair each one (BlobBackend::ScrubUnit → DepSkyClient::ScrubUnit for the
// cloud-of-clouds): lost shards are rebuilt byte-identically from k
// survivors and re-uploaded, unreachable holders are relocated to spare
// clouds. Clients never participate — repair traffic rides the same
// robust-call envelope as regular I/O and no read ever blocks on a pass.
//
// Passes ride a (serialized) BackgroundUploader lane, the same bounded
// pipeline that carries non-blocking uploads, so scrub work is subject to
// the same backpressure and drain discipline as every other background
// stage.

#ifndef SCFS_SCFS_SCRUBBER_H_
#define SCFS_SCFS_SCRUBBER_H_

#include <mutex>
#include <set>
#include <string>

#include "src/common/future.h"
#include "src/common/status.h"
#include "src/scfs/background.h"
#include "src/scfs/blob_backend.h"

namespace scfs {

class BackgroundScrubber {
 public:
  // Aggregate over all completed passes.
  struct Stats {
    uint64_t passes = 0;
    uint64_t units_scrubbed = 0;
    uint64_t versions_checked = 0;
    uint64_t objects_checked = 0;
    uint64_t objects_missing = 0;
    uint64_t objects_repaired = 0;
    uint64_t objects_relocated = 0;
    uint64_t repair_failures = 0;
  };

  // `backend` and `uploader` must outlive the scrubber. The uploader should
  // be a serialized lane so passes never overlap (overlapping passes would
  // race their relocation metadata pushes).
  BackgroundScrubber(BlobBackend* backend, BackgroundUploader* uploader)
      : backend_(backend), uploader_(uploader) {}

  // Registers a data unit for scrubbing (idempotent). SCFS tracks every file
  // id it has written through the backend.
  void Track(const std::string& id);
  void Untrack(const std::string& id);
  size_t tracked() const;

  // Enqueues one pass over all tracked units on the uploader lane. The
  // returned future completes when the pass has finished; its status is the
  // first backend error (individual repair failures are counted in stats,
  // not surfaced as errors — the pass continues).
  Future<Status> SchedulePass();

  // Runs one pass synchronously on the caller (tests and fault drills);
  // returns the report aggregated over this pass only.
  Result<DepSkyScrubReport> RunPassNow();

  Stats stats() const;

 private:
  DepSkyScrubReport ScrubTracked(Status* first_error);

  BlobBackend* backend_;
  BackgroundUploader* uploader_;
  mutable std::mutex mu_;
  std::set<std::string> units_;
  Stats stats_;
};

}  // namespace scfs

#endif  // SCFS_SCFS_SCRUBBER_H_
