// SCFS file-system metadata (paper §2.5.1, metadata service).
//
// Each file system object is represented by a metadata tuple holding: name,
// type, parent (implicit in the hierarchical path key), object metadata
// (size, dates, owner, ACLs), the opaque identifier of the data unit in the
// storage backend, and the collision-resistant hash of the current content —
// the last two being exactly the (id, hash) pair of the consistency anchor.

#ifndef SCFS_SCFS_METADATA_H_
#define SCFS_SCFS_METADATA_H_

#include <map>
#include <string>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/status.h"
#include "src/fsapi/file_system.h"

namespace scfs {

struct FileMetadata {
  std::string path;  // normalized absolute path — the namespace key
  FileType type = FileType::kFile;
  uint64_t size = 0;
  VirtualTime mtime = 0;
  VirtualTime ctime = 0;
  std::string owner;        // SCFS user name
  std::string object_id;    // data unit id in the storage backend (files)
  std::string content_hash; // hex SHA-1 of current content ("" = empty file)
  uint64_t version = 0;     // bumps on every completed close-with-update
  // user -> permission bits (1 = read, 2 = write). The owner is implicit.
  std::map<std::string, uint8_t> acl;

  bool AllowsRead(const std::string& user) const;
  bool AllowsWrite(const std::string& user) const;
  bool IsShared() const { return !acl.empty(); }

  FileStat ToStat() const;

  Bytes Encode() const;
  static Result<FileMetadata> Decode(const Bytes& data);
};

// A Private Name Space (paper §2.7): the serialized metadata of all
// non-shared files of one user, stored as a single object in the cloud
// storage instead of one coordination-service tuple per file. Tombstones
// remember data units of deleted private files until the garbage collector
// reclaims them.
struct PrivateNameSpace {
  std::map<std::string, FileMetadata> entries;  // path -> metadata
  std::vector<std::string> tombstones;          // orphaned object ids

  Bytes Encode() const;
  static Result<PrivateNameSpace> Decode(const Bytes& data);
};

// Coordination-service key naming scheme.
std::string MetadataKey(const std::string& path);           // "m:<path>"
std::string LockKey(const std::string& path);               // "lk:<path>"
std::string PnsTupleKey(const std::string& user);           // "pns:<user>"
std::string UserRegistryKey(const std::string& user);       // "user:<user>"
std::string TombstoneKey(const std::string& user, const std::string& object_id);

// Cross-partition rename records (see DESIGN.md "Partitioned
// coordination"). Both prefixes are co-location prefixes for the
// partitioned router (PartitionRoutingKey): the intent record lives on the
// partition of the source subtree ("prepare on the source partition"), the
// commit marker on the destination's.
inline constexpr char kRenameIntentPrefix[] = "ri:";
inline constexpr char kRenameCommitPrefix[] = "rc:";
std::string RenameIntentKey(const std::string& from_path);  // "ri:m:<from>/"
std::string RenameCommitKey(const std::string& to_path);    // "rc:m:<to>/"
// The record value: the (from, to) paths, so any session of the user can
// replay a crashed rename from the record alone.
Bytes EncodeRenameIntent(const std::string& from, const std::string& to);
struct RenameIntent {
  std::string from;
  std::string to;
};
Result<RenameIntent> DecodeRenameIntent(const Bytes& data);

}  // namespace scfs

#endif  // SCFS_SCFS_METADATA_H_
