#include "src/scfs/consistency_anchor.h"

#include "src/crypto/sha1.h"

namespace scfs {

std::string AnchoredStorage::AnchorHash(ConstByteSpan value) {
  return HexEncode(Sha1::Hash(value));
}

Status AnchoredStorage::Write(const std::string& id, ConstByteSpan value) {
  // w1: hash; w2: store the data under id|h; w3: anchor the hash.
  const std::string hash = AnchorHash(value);
  RETURN_IF_ERROR(storage_->WriteVersion(id, hash, value, {}));
  return anchor_->Write(client_, "anchor:" + id, ToBytes(hash));
}

Result<Bytes> AnchoredStorage::ReadWithHash(const std::string& id,
                                            const std::string& hash) {
  // r2: loop until the version becomes visible in the eventually-consistent
  // store; r3: integrity check against the anchored hash.
  for (int attempt = 0; attempt < options_.max_retries; ++attempt) {
    auto value = storage_->ReadByHash(id, hash);
    if (value.ok()) {
      if (AnchorHash(*value) != hash) {
        return CorruptionError("anchored hash mismatch for " + id);
      }
      return value;
    }
    if (value.status().code() != ErrorCode::kNotFound) {
      return value.status();
    }
    env_->Sleep(options_.retry_delay);
  }
  return TimeoutError("version " + hash + " never became visible");
}

Result<Bytes> AnchoredStorage::Read(const std::string& id) {
  // r1: fetch the anchored hash from the strongly consistent store.
  ASSIGN_OR_RETURN(CoordEntry entry, anchor_->Read(client_, "anchor:" + id));
  return ReadWithHash(id, ToString(entry.value));
}

}  // namespace scfs
