#include "src/scfs/consistency_anchor.h"

#include "src/crypto/sha1.h"

namespace scfs {

std::string AnchoredStorage::AnchorHash(ConstByteSpan value) {
  return HexEncode(Sha1::Hash(value));
}

Status AnchoredStorage::Write(const std::string& id, ConstByteSpan value) {
  // w1: hash; w2: store the data under id|h; w3: anchor the hash.
  const std::string hash = AnchorHash(value);
  RETURN_IF_ERROR(storage_->WriteVersion(id, hash, value, {}));
  return anchor_->Write(client_, "anchor:" + id, ToBytes(hash));
}

Result<Bytes> AnchoredStorage::ReadWithHash(const std::string& id,
                                            const std::string& hash) {
  // r2: loop until the version becomes visible in the eventually-consistent
  // store; r3: integrity check against the anchored hash.
  for (int attempt = 0; attempt < options_.max_retries; ++attempt) {
    auto value = storage_->ReadByHash(id, hash);
    if (value.ok()) {
      if (AnchorHash(*value) != hash) {
        return CorruptionError("anchored hash mismatch for " + id);
      }
      return value;
    }
    if (value.status().code() != ErrorCode::kNotFound) {
      return value.status();
    }
    env_->Sleep(options_.retry_delay);
  }
  return TimeoutError("version " + hash + " never became visible");
}

Result<Bytes> AnchoredStorage::Read(const std::string& id) {
  // r1: fetch the anchored hash from the strongly consistent store.
  ASSIGN_OR_RETURN(CoordEntry entry, anchor_->Read(client_, "anchor:" + id));
  return ReadWithHash(id, ToString(entry.value));
}

Future<Status> AnchoredStorage::WriteAsync(const std::string& id,
                                           ConstByteSpan value) {
  auto owned = std::make_shared<Bytes>(CopyToBytes(value));
  // Stage 1 on the executor: hash + the SS write (all the storage-side
  // work, off the caller's thread). Stage 2 chains the CA publish through
  // the coordination service's own async path, so the hash is anchored
  // strictly after the data is durable.
  Promise<Status> done;
  inflight_.Add();
  DefaultExecutor().Post([this, id, owned, done] {
    Environment::ResetThreadCharged();
    const std::string hash = AnchorHash(*owned);
    Status stored = storage_->WriteVersion(id, hash, *owned, {});
    if (!stored.ok()) {
      VirtualDuration charge = Environment::ThreadCharged();
      done.Set(std::move(stored), charge);
      inflight_.Done();
      return;
    }
    VirtualDuration ss_charge = Environment::ThreadCharged();
    anchor_->WriteAsync(client_, "anchor:" + id, ToBytes(hash))
        .OnReady([this, done, ss_charge](const Status& published,
                                         VirtualDuration ca_charge) {
          done.Set(published, ss_charge + ca_charge);
          inflight_.Done();
        });
  });
  return done.future();
}

Future<Result<Bytes>> AnchoredStorage::ReadAsync(const std::string& id) {
  Promise<Result<Bytes>> done;
  inflight_.Add();
  // r1 rides the coordination service's async path; the SS read loop (r2/r3)
  // then runs on the executor so the retry sleeps never block the caller.
  anchor_->ReadAsync(client_, "anchor:" + id)
      .OnReady([this, id, done](const Result<CoordEntry>& entry,
                                VirtualDuration ca_charge) {
        if (!entry.ok()) {
          done.Set(entry.status(), ca_charge);
          inflight_.Done();
          return;
        }
        const std::string hash = ToString(entry->value);
        DefaultExecutor().Post([this, id, hash, done, ca_charge] {
          Environment::ResetThreadCharged();
          Result<Bytes> value = ReadWithHash(id, hash);
          done.Set(std::move(value),
                   ca_charge + Environment::ThreadCharged());
          inflight_.Done();
        });
      });
  return done.future();
}

}  // namespace scfs
