#include "src/scfs/blob_backend.h"

#include <algorithm>

namespace scfs {

// ---------------------------------------------------------------------------
// Default async adapters
// ---------------------------------------------------------------------------

Future<Status> BlobBackend::WriteVersionAsync(
    const std::string& id, const std::string& content_hash, Bytes data,
    const std::vector<BackendGrant>& grants) {
  return SubmitTracked(
      &async_ops_, [this, id, content_hash, data = std::move(data), grants] {
        return WriteVersion(id, content_hash, data, grants);
      });
}

Future<Result<Bytes>> BlobBackend::ReadByHashAsync(
    const std::string& id, const std::string& content_hash) {
  return SubmitTracked(&async_ops_, [this, id, content_hash] {
    return ReadByHash(id, content_hash);
  });
}

Result<Bytes> BlobBackend::ReadAt(const std::string& id,
                                  const std::string& content_hash,
                                  uint64_t offset, size_t length) {
  ASSIGN_OR_RETURN(Bytes all, ReadByHash(id, content_hash));
  if (offset >= all.size() || length == 0) {
    return Bytes{};
  }
  length = std::min<uint64_t>(length, all.size() - offset);
  return Bytes(all.begin() + offset, all.begin() + offset + length);
}

// ---------------------------------------------------------------------------
// SingleCloudBackend (SCFS-AWS)
// ---------------------------------------------------------------------------

Status SingleCloudBackend::WriteVersion(
    const std::string& id, const std::string& content_hash, ConstByteSpan data,
    const std::vector<BackendGrant>& grants) {
  const std::string key = VersionKey(id, content_hash);
  // The store takes ownership of what it keeps; this is the single
  // materialization on the single-cloud write path.
  RETURN_IF_ERROR(store_->Put(creds_, key, CopyToBytes(data)));
  for (const auto& grant : grants) {
    if (grant.cloud_ids.empty() || grant.cloud_ids[0].empty()) {
      continue;
    }
    ObjectPermissions perms;
    perms.read = grant.read;
    perms.write = grant.write;
    (void)store_->SetAcl(creds_, key, grant.cloud_ids[0], perms);
  }
  return OkStatus();
}

Result<Bytes> SingleCloudBackend::ReadByHash(const std::string& id,
                                             const std::string& content_hash) {
  return store_->Get(creds_, VersionKey(id, content_hash));
}

Result<Bytes> SingleCloudBackend::ReadLatest(const std::string& id) {
  ASSIGN_OR_RETURN(std::vector<BlobVersionInfo> versions, ListVersions(id));
  if (versions.empty()) {
    return NotFoundError("no versions of " + id);
  }
  return ReadByHash(id, versions.back().content_hash);
}

Result<std::vector<BlobVersionInfo>> SingleCloudBackend::ListVersions(
    const std::string& id) {
  ASSIGN_OR_RETURN(std::vector<ObjectInfo> objects,
                   store_->List(creds_, Prefix(id)));
  std::sort(objects.begin(), objects.end(),
            [](const ObjectInfo& a, const ObjectInfo& b) {
              return a.created < b.created;
            });
  std::vector<BlobVersionInfo> out;
  out.reserve(objects.size());
  const size_t prefix_size = Prefix(id).size();
  for (const auto& object : objects) {
    BlobVersionInfo info;
    info.content_hash = object.key.substr(prefix_size);
    info.size = object.size;
    out.push_back(std::move(info));
  }
  return out;
}

Status SingleCloudBackend::DeleteVersionByHash(
    const std::string& id, const std::string& content_hash) {
  return store_->Delete(creds_, VersionKey(id, content_hash));
}

Status SingleCloudBackend::DeleteUnit(const std::string& id) {
  ASSIGN_OR_RETURN(std::vector<ObjectInfo> objects,
                   store_->List(creds_, Prefix(id)));
  for (const auto& object : objects) {
    (void)store_->Delete(creds_, object.key);
  }
  return OkStatus();
}

Status SingleCloudBackend::SetGrant(const std::string& id,
                                    const BackendGrant& grant) {
  if (grant.cloud_ids.empty() || grant.cloud_ids[0].empty()) {
    return InvalidArgumentError("grant without cloud id");
  }
  ObjectPermissions perms;
  perms.read = grant.read;
  perms.write = grant.write;
  ASSIGN_OR_RETURN(std::vector<ObjectInfo> objects,
                   store_->List(creds_, Prefix(id)));
  for (const auto& object : objects) {
    (void)store_->SetAcl(creds_, object.key, grant.cloud_ids[0], perms);
  }
  return OkStatus();
}

// ---------------------------------------------------------------------------
// DepSkyBackend (SCFS-CoC)
// ---------------------------------------------------------------------------

namespace {
DepSkyGrant ToDepSkyGrant(const BackendGrant& grant) {
  DepSkyGrant out;
  out.cloud_ids = grant.cloud_ids;
  out.read = grant.read;
  out.write = grant.write;
  return out;
}
}  // namespace

Status DepSkyBackend::WriteVersion(const std::string& id,
                                   const std::string& content_hash,
                                   ConstByteSpan data,
                                   const std::vector<BackendGrant>& grants) {
  std::vector<DepSkyGrant> merged;
  merged.reserve(grants.size());
  for (const auto& grant : grants) {
    merged.push_back(ToDepSkyGrant(grant));
  }
  ASSIGN_OR_RETURN(uint64_t version,
                   client_->WriteVersion(id, content_hash, data,
                                         merged.empty() ? nullptr : &merged));
  (void)version;
  return OkStatus();
}

Result<Bytes> DepSkyBackend::ReadByHash(const std::string& id,
                                        const std::string& content_hash) {
  return client_->ReadByHash(id, content_hash);
}

Result<Bytes> DepSkyBackend::ReadLatest(const std::string& id) {
  return client_->ReadLatest(id);
}

Result<std::vector<BlobVersionInfo>> DepSkyBackend::ListVersions(
    const std::string& id) {
  ASSIGN_OR_RETURN(DepSkyMetadata md, client_->ReadMetadata(id));
  std::vector<BlobVersionInfo> out;
  out.reserve(md.versions.size());
  for (const auto& version : md.versions) {
    out.push_back(BlobVersionInfo{version.content_hash, version.size});
  }
  return out;
}

Status DepSkyBackend::DeleteVersionByHash(const std::string& id,
                                          const std::string& content_hash) {
  ASSIGN_OR_RETURN(DepSkyMetadata md, client_->ReadMetadata(id));
  for (const auto& version : md.versions) {
    if (version.content_hash == content_hash) {
      return client_->DeleteVersion(id, version.version);
    }
  }
  return NotFoundError("version not found");
}

Status DepSkyBackend::DeleteUnit(const std::string& id) {
  return client_->DeleteUnit(id);
}

Status DepSkyBackend::SetGrant(const std::string& id,
                               const BackendGrant& grant) {
  return client_->SetGrant(id, ToDepSkyGrant(grant));
}

Result<Bytes> DepSkyBackend::ReadAt(const std::string& id,
                                    const std::string& content_hash,
                                    uint64_t offset, size_t length) {
  // Striped versions fetch only the overlapping stripe units; monolithic
  // versions fall back to fetch-and-slice inside the client.
  return client_->ReadAt(id, content_hash, offset, length);
}

Result<DepSkyScrubReport> DepSkyBackend::ScrubUnit(const std::string& id) {
  return client_->ScrubUnit(id);
}

}  // namespace scfs
