#include "src/scfs/metadata.h"

namespace scfs {

bool FileMetadata::AllowsRead(const std::string& user) const {
  if (user == owner) {
    return true;
  }
  auto it = acl.find(user);
  return it != acl.end() && (it->second & 1) != 0;
}

bool FileMetadata::AllowsWrite(const std::string& user) const {
  if (user == owner) {
    return true;
  }
  auto it = acl.find(user);
  return it != acl.end() && (it->second & 2) != 0;
}

FileStat FileMetadata::ToStat() const {
  FileStat stat;
  stat.type = type;
  stat.size = size;
  stat.mtime = mtime;
  stat.ctime = ctime;
  stat.owner = owner;
  stat.version = version;
  return stat;
}

Bytes FileMetadata::Encode() const {
  Bytes out;
  AppendString(&out, path);
  out.push_back(static_cast<uint8_t>(type));
  AppendU64(&out, size);
  AppendU64(&out, static_cast<uint64_t>(mtime));
  AppendU64(&out, static_cast<uint64_t>(ctime));
  AppendString(&out, owner);
  AppendString(&out, object_id);
  AppendString(&out, content_hash);
  AppendU64(&out, version);
  AppendU32(&out, static_cast<uint32_t>(acl.size()));
  for (const auto& [user, bits] : acl) {
    AppendString(&out, user);
    out.push_back(bits);
  }
  return out;
}

Result<FileMetadata> FileMetadata::Decode(const Bytes& data) {
  FileMetadata md;
  ByteReader reader(data);
  uint8_t type = 0;
  uint64_t mtime = 0;
  uint64_t ctime = 0;
  uint32_t acl_count = 0;
  if (!reader.ReadString(&md.path) || !reader.ReadU8(&type) ||
      !reader.ReadU64(&md.size) || !reader.ReadU64(&mtime) ||
      !reader.ReadU64(&ctime) || !reader.ReadString(&md.owner) ||
      !reader.ReadString(&md.object_id) ||
      !reader.ReadString(&md.content_hash) || !reader.ReadU64(&md.version) ||
      !reader.ReadU32(&acl_count)) {
    return CorruptionError("bad file metadata");
  }
  md.type = static_cast<FileType>(type);
  md.mtime = static_cast<VirtualTime>(mtime);
  md.ctime = static_cast<VirtualTime>(ctime);
  for (uint32_t i = 0; i < acl_count; ++i) {
    std::string user;
    uint8_t bits = 0;
    if (!reader.ReadString(&user) || !reader.ReadU8(&bits)) {
      return CorruptionError("bad file metadata acl");
    }
    md.acl[user] = bits;
  }
  return md;
}

Bytes PrivateNameSpace::Encode() const {
  Bytes out;
  AppendU32(&out, static_cast<uint32_t>(entries.size()));
  for (const auto& [path, md] : entries) {
    AppendBytes(&out, md.Encode());
  }
  AppendU32(&out, static_cast<uint32_t>(tombstones.size()));
  for (const auto& id : tombstones) {
    AppendString(&out, id);
  }
  return out;
}

Result<PrivateNameSpace> PrivateNameSpace::Decode(const Bytes& data) {
  PrivateNameSpace pns;
  ByteReader reader(data);
  uint32_t entry_count = 0;
  if (!reader.ReadU32(&entry_count)) {
    return CorruptionError("bad pns header");
  }
  for (uint32_t i = 0; i < entry_count; ++i) {
    Bytes blob;
    if (!reader.ReadBytes(&blob)) {
      return CorruptionError("bad pns entry");
    }
    ASSIGN_OR_RETURN(FileMetadata md, FileMetadata::Decode(blob));
    std::string path = md.path;
    pns.entries.emplace(std::move(path), std::move(md));
  }
  uint32_t tombstone_count = 0;
  if (!reader.ReadU32(&tombstone_count)) {
    return CorruptionError("bad pns tombstones");
  }
  pns.tombstones.resize(tombstone_count);
  for (auto& id : pns.tombstones) {
    if (!reader.ReadString(&id)) {
      return CorruptionError("bad pns tombstone");
    }
  }
  return pns;
}

// Trailing slash so that the prefix "m:<dir>/" covers the directory's own
// entry plus its whole subtree and nothing else (e.g. not "/ab" when renaming
// "/a") — this is what makes rename a single atomic RenamePrefix trigger.
std::string MetadataKey(const std::string& path) { return "m:" + path + "/"; }
std::string LockKey(const std::string& path) { return "lk:" + path; }
std::string PnsTupleKey(const std::string& user) { return "pns:" + user; }
std::string UserRegistryKey(const std::string& user) { return "user:" + user; }
std::string TombstoneKey(const std::string& user,
                         const std::string& object_id) {
  return "t:" + user + ":" + object_id;
}

std::string RenameIntentKey(const std::string& from_path) {
  return kRenameIntentPrefix + MetadataKey(from_path);
}

std::string RenameCommitKey(const std::string& to_path) {
  return kRenameCommitPrefix + MetadataKey(to_path);
}

Bytes EncodeRenameIntent(const std::string& from, const std::string& to) {
  Bytes out;
  AppendString(&out, from);
  AppendString(&out, to);
  return out;
}

Result<RenameIntent> DecodeRenameIntent(const Bytes& data) {
  ByteReader reader(data);
  RenameIntent intent;
  if (!reader.ReadString(&intent.from) || !reader.ReadString(&intent.to) ||
      !reader.AtEnd()) {
    return CorruptionError("bad rename intent");
  }
  return intent;
}

}  // namespace scfs
