#include "src/scfs/file_system.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/common/path.h"
#include "src/crypto/sha1.h"

namespace scfs {

namespace {
// Registry tuples: the per-user list of cloud canonical ids (paper §2.6).
Bytes EncodeCloudIds(const std::vector<CanonicalId>& ids) {
  Bytes out;
  AppendU32(&out, static_cast<uint32_t>(ids.size()));
  for (const auto& id : ids) {
    AppendString(&out, id);
  }
  return out;
}

Result<std::vector<CanonicalId>> DecodeCloudIds(const Bytes& data) {
  ByteReader reader(data);
  uint32_t count = 0;
  if (!reader.ReadU32(&count)) {
    return CorruptionError("bad user registry tuple");
  }
  std::vector<CanonicalId> ids(count);
  for (auto& id : ids) {
    if (!reader.ReadString(&id)) {
      return CorruptionError("bad user registry tuple");
    }
  }
  return ids;
}
}  // namespace

ScfsFileSystem::ScfsFileSystem(Environment* env, CoordinationService* coord,
                               BlobBackend* backend, ScfsOptions options)
    : env_(env),
      coord_(options.mode == ScfsMode::kNonSharing ? nullptr : coord),
      options_(std::move(options)),
      backend_(backend),
      rng_(std::hash<std::string>{}(options_.user) ^ 0x5cf5ULL ^
           GlobalRng().NextU64()) {
  storage_ = std::make_unique<StorageService>(env_, backend_, options_.storage);
  // Locks are owned by this agent session, not by the user: two machines
  // logged in as the same user must still exclude each other.
  const std::string session = options_.user + "@" + rng_.RandomName(8);
  MetadataServiceOptions md_options;
  md_options.cache_ttl = options_.metadata_cache_ttl;
  md_options.use_pns = options_.use_pns;
  md_options.non_sharing = options_.mode == ScfsMode::kNonSharing;
  md_options.session = session;
  if (options_.leases != nullptr && options_.lease_ttl > 0) {
    md_options.leases = options_.leases;
    md_options.lease_ttl = options_.lease_ttl;
    md_options.lease_max_prefixes = options_.lease_max_prefixes;
  }
  metadata_ = std::make_unique<MetadataService>(env_, coord_, storage_.get(),
                                                options_.user, md_options);
  LockServiceOptions lock_options = options_.locks;
  if (options_.leases != nullptr && options_.lease_ttl > 0) {
    lock_options.leases = options_.leases;
    lock_options.linger = true;
  }
  // Write-credit pins are only valid while the lock is held; tear them down
  // the moment the hold ends for real (before a contender can acquire).
  lock_options.on_release = [this](const std::string& path) {
    metadata_->UnpinOwned(path);
  };
  locks_ = std::make_unique<LockService>(env_, coord_, session, lock_options);
  uploader_ = std::make_unique<BackgroundUploader>();
  // GC passes must not overlap each other: single-lane FIFO.
  BackgroundUploaderOptions gc_options;
  gc_options.serialize = true;
  gc_worker_ = std::make_unique<BackgroundUploader>(gc_options);
}

ScfsFileSystem::~ScfsFileSystem() {
  if (mounted_) {
    (void)Unmount();
  } else {
    // Drain before member destruction even when never mounted (or mount
    // failed): an in-flight close chain's callbacks touch fs_mu_ and
    // close_chains_, which die before the uploader member would.
    DrainBackground();
  }
}

Status ScfsFileSystem::Mount() {
  RETURN_IF_ERROR(metadata_->Mount());
  if (coord_ != nullptr) {
    // Publish this user's cloud canonical ids (world-readable so other
    // owners can grant this user access — §2.6).
    RETURN_IF_ERROR(coord_->Write(options_.user,
                                  UserRegistryKey(options_.user),
                                  EncodeCloudIds(options_.user_cloud_ids)));
    RETURN_IF_ERROR(coord_->GrantEntryAccess(
        options_.user, UserRegistryKey(options_.user), "*", true, false));
  }
  mounted_ = true;
  return OkStatus();
}

Status ScfsFileSystem::Unmount() {
  DrainBackground();
  Status s = metadata_->Unmount();
  mounted_ = false;
  return s;
}

void ScfsFileSystem::DrainBackground() {
  uploader_->Drain();
  gc_worker_->Drain();
}

Status ScfsFileSystem::SyncBarrier() {
  DrainBackground();
  return OkStatus();
}

void ScfsFileSystem::WaitForCloseChains(const std::string& path) {
  std::vector<Future<Status>> tails;
  {
    std::lock_guard<std::mutex> lock(fs_mu_);
    for (const auto& [chain_path, chain] : close_chains_) {
      if (PathIsWithin(chain_path, path)) {
        tails.push_back(chain.publish);
      }
    }
  }
  // Like Drain(), the barrier itself is not charged to the caller.
  for (const auto& tail : tails) {
    tail.Wait();
  }
}

std::string ScfsFileSystem::NewObjectId() {
  std::lock_guard<std::mutex> lock(fs_mu_);
  return options_.user + "-" + rng_.RandomName(16);
}

Status ScfsFileSystem::CheckParentDirectory(const std::string& path) {
  const std::string parent = ParentPath(path);
  if (parent == "/") {
    return OkStatus();
  }
  ASSIGN_OR_RETURN(FileMetadata md, metadata_->Get(parent));
  if (md.type != FileType::kDirectory) {
    return NotDirectoryError(parent);
  }
  return OkStatus();
}

Result<FileMetadata> ScfsFileSystem::ResolveForOpen(const std::string& path,
                                                    uint32_t flags,
                                                    bool* created) {
  *created = false;
  auto existing = metadata_->Get(path);
  if (existing.ok()) {
    return existing;
  }
  if (existing.status().code() != ErrorCode::kNotFound ||
      (flags & kOpenCreate) == 0) {
    return existing.status();
  }
  RETURN_IF_ERROR(CheckParentDirectory(path));
  FileMetadata md;
  md.path = path;
  md.type = FileType::kFile;
  md.owner = options_.user;
  md.object_id = NewObjectId();
  md.ctime = env_->Now();
  md.mtime = md.ctime;
  RETURN_IF_ERROR(metadata_->Create(md));
  *created = true;
  return md;
}

Result<FileHandle> ScfsFileSystem::Open(const std::string& path,
                                        uint32_t flags) {
  const std::string normalized = NormalizePath(path);
  if (normalized.empty() || normalized == "/") {
    return InvalidArgumentError("bad path: " + path);
  }
  const bool write_mode = (flags & kOpenWrite) != 0;

  // Step (ii) of the open protocol (Figure 4): opening for writing locks the
  // file before anything else so a losing racer fails fast with BUSY.
  // (Creation also takes the lock: the created entry is immediately
  // write-opened.)
  if (write_mode) {
    RETURN_IF_ERROR(locks_->Acquire(normalized));
  }

  bool created = false;
  auto metadata = ResolveForOpen(normalized, flags, &created);
  if (!metadata.ok()) {
    if (write_mode) {
      (void)locks_->Release(normalized);
    }
    return metadata.status();
  }
  auto fail = [&](Status status) -> Result<FileHandle> {
    if (write_mode) {
      (void)locks_->Release(normalized);
    }
    return status;
  };

  if (metadata->type == FileType::kDirectory) {
    return fail(IsDirectoryError(normalized));
  }
  if (write_mode && !metadata->AllowsWrite(options_.user)) {
    return fail(PermissionDeniedError(normalized));
  }
  if (!write_mode && !metadata->AllowsRead(options_.user)) {
    return fail(PermissionDeniedError(normalized));
  }

  // Step (iii): bring the file data into the memory cache — locally when the
  // cached copy matches the anchored hash, from the cloud otherwise.
  OpenFile open_file;
  open_file.metadata = std::move(*metadata);
  open_file.write_mode = write_mode;
  if ((flags & kOpenTruncate) != 0) {
    open_file.dirty = open_file.metadata.size > 0;
    open_file.metadata.size = 0;
    open_file.metadata.content_hash.clear();
  } else {
    auto data = storage_->Fetch(open_file.metadata.object_id,
                                open_file.metadata.content_hash);
    if (!data.ok()) {
      return fail(data.status());
    }
    open_file.data = std::move(*data);
  }

  FileHandle handle = next_handle_.fetch_add(1);
  {
    std::lock_guard<std::mutex> lock(fs_mu_);
    open_files_.emplace(handle, std::move(open_file));
  }
  return handle;
}

Result<Bytes> ScfsFileSystem::Read(FileHandle handle, uint64_t offset,
                                   size_t size) {
  std::lock_guard<std::mutex> lock(fs_mu_);
  auto it = open_files_.find(handle);
  if (it == open_files_.end()) {
    return InvalidArgumentError("bad handle");
  }
  const Bytes& data = it->second.data;
  if (offset >= data.size()) {
    return Bytes{};
  }
  size_t n = std::min<size_t>(size, data.size() - offset);
  return Bytes(data.begin() + static_cast<ptrdiff_t>(offset),
               data.begin() + static_cast<ptrdiff_t>(offset + n));
}

Status ScfsFileSystem::Write(FileHandle handle, uint64_t offset,
                             const Bytes& data) {
  std::lock_guard<std::mutex> lock(fs_mu_);
  auto it = open_files_.find(handle);
  if (it == open_files_.end()) {
    return InvalidArgumentError("bad handle");
  }
  OpenFile& file = it->second;
  if (!file.write_mode) {
    return PermissionDeniedError("file not open for writing");
  }
  if (offset + data.size() > file.data.size()) {
    file.data.resize(offset + data.size(), 0);
  }
  std::copy(data.begin(), data.end(),
            file.data.begin() + static_cast<ptrdiff_t>(offset));
  file.dirty = true;
  file.metadata.size = file.data.size();
  file.metadata.mtime = env_->Now();
  return OkStatus();
}

Status ScfsFileSystem::Truncate(FileHandle handle, uint64_t size) {
  std::lock_guard<std::mutex> lock(fs_mu_);
  auto it = open_files_.find(handle);
  if (it == open_files_.end()) {
    return InvalidArgumentError("bad handle");
  }
  OpenFile& file = it->second;
  if (!file.write_mode) {
    return PermissionDeniedError("file not open for writing");
  }
  file.data.resize(size, 0);
  file.dirty = true;
  file.metadata.size = size;
  file.metadata.mtime = env_->Now();
  return OkStatus();
}

Status ScfsFileSystem::Fsync(FileHandle handle) {
  Bytes data;
  std::string object_id;
  {
    std::lock_guard<std::mutex> lock(fs_mu_);
    auto it = open_files_.find(handle);
    if (it == open_files_.end()) {
      return InvalidArgumentError("bad handle");
    }
    if (!it->second.dirty) {
      return OkStatus();
    }
    data = it->second.data;
    object_id = it->second.metadata.object_id;
  }
  // Durability level 1: the local disk survives a process/system crash.
  const std::string hash = HexEncode(Sha1::Hash(data));
  return storage_->FlushToDisk(object_id, hash, data);
}

std::vector<BackendGrant> ScfsFileSystem::BuildGrants(
    const FileMetadata& metadata) {
  std::vector<BackendGrant> grants;
  // When a grantee writes, the cloud objects it creates belong to the
  // grantee's accounts; the file owner must be granted access back.
  if (metadata.owner != options_.user) {
    auto owner_ids = LookupUserCloudIds(metadata.owner);
    if (owner_ids.ok()) {
      BackendGrant grant;
      grant.cloud_ids = std::move(*owner_ids);
      grant.read = true;
      grant.write = true;
      grants.push_back(std::move(grant));
    }
  }
  for (const auto& [user, bits] : metadata.acl) {
    auto ids = LookupUserCloudIds(user);
    if (!ids.ok()) {
      SCFS_LOG(Warning) << "no cloud ids registered for " << user;
      continue;
    }
    BackendGrant grant;
    grant.cloud_ids = std::move(*ids);
    grant.read = (bits & 1) != 0;
    grant.write = (bits & 2) != 0;
    grants.push_back(std::move(grant));
  }
  return grants;
}

Result<std::vector<CanonicalId>> ScfsFileSystem::LookupUserCloudIds(
    const std::string& user) {
  {
    std::lock_guard<std::mutex> lock(fs_mu_);
    auto it = registry_cache_.find(user);
    if (it != registry_cache_.end()) {
      return it->second;
    }
  }
  if (user == options_.user) {
    return options_.user_cloud_ids;
  }
  if (coord_ == nullptr) {
    return NotSupportedError("no registry in non-sharing mode");
  }
  ASSIGN_OR_RETURN(CoordEntry entry,
                   coord_->Read(options_.user, UserRegistryKey(user)));
  ASSIGN_OR_RETURN(std::vector<CanonicalId> ids, DecodeCloudIds(entry.value));
  std::lock_guard<std::mutex> lock(fs_mu_);
  registry_cache_[user] = ids;
  return ids;
}

// Close-time synchronization (Figure 4 close path + §3.1 modes), as a
// future pipeline.
Future<Status> ScfsFileSystem::SynchronizeOnCloseAsync(OpenFile&& file) {
  FileMetadata md = std::move(file.metadata);
  auto data = std::make_shared<const Bytes>(std::move(file.data));
  const std::string hash =
      data->empty() ? "" : HexEncode(Sha1::Hash(*data));
  md.content_hash = hash;
  md.size = data->size();
  md.version++;
  std::vector<BackendGrant> grants = BuildGrants(md);
  const std::string path = md.path;
  const uint64_t written = data->size();

  // Queue capacity is acquired BEFORE this close registers itself as a
  // dependency of later same-path closes: once its placeholder tails are
  // visible in close_chains_, its stages already hold their slots and can
  // always be enqueued, so every tail a queued stage waits on belongs to an
  // admitted chain and eventually resolves. (Reserving after registering
  // would let later closes fill the queue with stages gated on a tail whose
  // producer is still blocked in Reserve — a circular wait.) Reserving the
  // whole chain atomically also means the producer never holds one stage's
  // slot while blocking for another's, and the pending count covers the
  // chain from the first enqueue, so a concurrent Unlink's barrier cannot
  // slip between the stages.
  uploader_->Reserve(options_.mode == ScfsMode::kBlocking ? 1 : 2);

  // Per-file ordering: a close of a re-opened file must apply its path-keyed
  // metadata updates only after the previous close of the same path (the
  // lock service is re-entrant, so the reopen is legal while the chain is in
  // flight). Stage 1 orders on the previous stage 1 (a disk flush, never the
  // previous cloud upload); stage 2 orders on the previous publish. The new
  // tails are registered as placeholders under the same lock that reads the
  // previous ones, so two concurrent closes of the same path (two write
  // handles) cannot fork the chain.
  Future<Status> dep_level1;
  Future<Status> dep_publish;
  uint64_t gen;
  Promise<Status> level1_tail;
  Promise<Status> publish_tail;
  {
    std::lock_guard<std::mutex> lock(fs_mu_);
    auto it = close_chains_.find(path);
    if (it != close_chains_.end()) {
      dep_level1 = it->second.level1;
      dep_publish = it->second.publish;
    }
    gen = ++close_chain_gen_;
    close_chains_[path] =
        CloseChainTails{gen, level1_tail.future(), publish_tail.future()};
  }

  Future<Status> result;     // what the caller waits on
  Future<Status> chain_end;  // completion of the whole chain

  if (options_.mode == ScfsMode::kBlocking) {
    // Level 2/3 before the future completes: data to disk + cloud, metadata
    // to the coordination service, then unlock. A failed push still releases
    // the file lock — a failed write must not leave the file locked. The
    // stage's charge reaches the foreground waiter through the future, so
    // it is excluded from the uploader's background accounting.
    auto task = [this, md, data, hash, grants, path, written] {
      // Extend the file lock's lease up front: the renewal's coordination
      // round overlaps the cloud push instead of risking a mid-push expiry.
      // Joined before Release (renew/unlock on the same path must not race).
      Future<Status> lease = locks_->RenewAsync(path);
      auto fail = [&](Status status) {
        lease.Join();
        (void)locks_->Release(path);
        return status;
      };
      if (!hash.empty()) {
        Status s = storage_->Push(md.object_id, hash, *data, grants);
        if (!s.ok()) {
          return fail(s);
        }
      }
      Status s = metadata_->Put(md);
      if (!s.ok()) {
        return fail(s);
      }
      // Write credit: while this agent holds the lock (the release below may
      // linger it), nobody else can publish, so our own publish stays the
      // newest — serve reads of it locally until the lock lease bound.
      metadata_->PinOwned(md, locks_->HeldUntil(path));
      lease.Join();
      s = locks_->Release(path);
      MaybeTriggerGc(written);
      return s;
    };
    result = dep_publish.valid()
                 ? uploader_->EnqueueAfterReserved(dep_publish, std::move(task),
                                                   /*account_charge=*/false)
                 : uploader_->EnqueueReserved(std::move(task),
                                              /*account_charge=*/false);
    chain_end = result;
  } else {
    // Non-blocking / non-sharing. Stage 1 — durability level 1 plus the
    // local visibility updates, which happen only once the flush succeeded
    // (a failed close must not become visible as the new version). Its
    // charge reaches a foreground Close() through the future, so it is
    // excluded from the uploader's background accounting.
    const bool private_entry = metadata_->IsPrivateEntry(md);
    auto level1_status = std::make_shared<Status>();

    // Stage 2 — upload, then metadata, then unlock: strictly after this
    // close's stage 1 AND the previous chain's publish (gated on the
    // stage-1 placeholder).
    Future<Status> stage2_gate =
        dep_publish.valid()
            ? AsCompletion(
                  WhenAll<Status>({level1_tail.future(), dep_publish}))
            : level1_tail.future();
    chain_end = uploader_->EnqueueAfterReserved(
        stage2_gate, [this, md, data, hash, grants, path, private_entry,
                      level1_status] {
          if (!level1_status->ok()) {
            // Level 1 failed: nothing was published; just release the lock
            // so a failed write doesn't leave the file locked.
            (void)locks_->Release(path);
            return *level1_status;
          }
          // Lease renewal overlaps the cloud upload (see blocking mode);
          // joined before Release.
          Future<Status> lease = locks_->RenewAsync(path);
          if (!hash.empty()) {
            Status s = storage_->backend().WriteVersion(md.object_id, hash,
                                                        *data, grants);
            if (!s.ok()) {
              SCFS_LOG(Warning) << "background upload failed: "
                                << s.ToString();
            }
          }
          if (private_entry) {
            Status s = metadata_->FlushPns();
            if (!s.ok()) {
              SCFS_LOG(Warning) << "background pns flush failed: "
                                << s.ToString();
            }
          } else {
            Status s = metadata_->Put(md);
            if (!s.ok()) {
              SCFS_LOG(Warning) << "background metadata update failed: "
                                << s.ToString();
            } else {
              // Write credit (see blocking mode): the lock — still held
              // until the release below, lingering after — excludes other
              // publishers, so our publish stays authoritative.
              metadata_->PinOwned(md, locks_->HeldUntil(path));
            }
          }
          lease.Join();
          return locks_->Release(path);
        });

    // Stage 1, ordered on the previous close's stage 1 only: the path-keyed
    // local metadata update must apply in close order, but a reopened
    // file's Close() costs a disk flush, never the previous cloud upload.
    auto stage1 = [this, md, data, hash, private_entry, level1_status] {
      if (!hash.empty()) {
        Status s = storage_->FlushToDisk(md.object_id, hash, *data);
        if (!s.ok()) {
          *level1_status = s;
          return s;
        }
        storage_->PutMemory(md.object_id, hash, *data);
      }
      if (private_entry) {
        // PNS entries are local structures: update now (cheap), persist
        // the PNS object in stage 2.
        Status s = metadata_->Put(md);
        if (!s.ok()) {
          *level1_status = s;
          return s;
        }
      } else {
        // Shared entries: the coordination tuple is only updated after
        // the data reaches the clouds, but this agent sees its own
        // close as soon as level 1 completes.
        metadata_->CacheLocally(md);
      }
      return OkStatus();
    };
    result = uploader_->EnqueueAfterReserved(dep_level1, std::move(stage1),
                                             /*account_charge=*/false);
    MaybeTriggerGc(written);
  }

  // Resolve the registered tail placeholders as the chain progresses, and
  // prune the map entry unless a newer chain already replaced it.
  result.OnReady([level1_tail](const Status& status, VirtualDuration charge) {
    level1_tail.Set(status, charge);
  });
  chain_end.OnReady(
      [publish_tail](const Status& status, VirtualDuration charge) {
        publish_tail.Set(status, charge);
      });
  publish_tail.future().OnReady([this, path, gen](const Status&,
                                                  VirtualDuration) {
    std::lock_guard<std::mutex> lock(fs_mu_);
    auto it = close_chains_.find(path);
    if (it != close_chains_.end() && it->second.gen == gen) {
      close_chains_.erase(it);
    }
  });
  return result;
}

Status ScfsFileSystem::Close(FileHandle handle) {
  return CloseAsync(handle).Get();
}

Future<Status> ScfsFileSystem::CloseAsync(FileHandle handle) {
  OpenFile file;
  {
    std::lock_guard<std::mutex> lock(fs_mu_);
    auto it = open_files_.find(handle);
    if (it == open_files_.end()) {
      return Future<Status>::Ready(InvalidArgumentError("bad handle"));
    }
    file = std::move(it->second);
    open_files_.erase(it);
  }

  if (!file.write_mode) {
    return Future<Status>::Ready(OkStatus());
  }
  if (!file.dirty) {
    return Future<Status>::Ready(locks_->Release(file.metadata.path));
  }
  return SynchronizeOnCloseAsync(std::move(file));
}

Status ScfsFileSystem::Mkdir(const std::string& path) {
  const std::string normalized = NormalizePath(path);
  if (normalized.empty() || normalized == "/") {
    return InvalidArgumentError("bad path: " + path);
  }
  RETURN_IF_ERROR(CheckParentDirectory(normalized));
  if (metadata_->Get(normalized).ok()) {
    return AlreadyExistsError(normalized);
  }
  FileMetadata md;
  md.path = normalized;
  md.type = FileType::kDirectory;
  md.owner = options_.user;
  md.ctime = env_->Now();
  md.mtime = md.ctime;
  return metadata_->Create(md);
}

Status ScfsFileSystem::Rmdir(const std::string& path) {
  const std::string normalized = NormalizePath(path);
  ASSIGN_OR_RETURN(FileMetadata md, metadata_->Get(normalized));
  if (md.type != FileType::kDirectory) {
    return NotDirectoryError(normalized);
  }
  ASSIGN_OR_RETURN(std::vector<FileMetadata> children,
                   metadata_->ListDir(normalized));
  if (!children.empty()) {
    return NotEmptyError(normalized);
  }
  return metadata_->Remove(normalized);
}

Status ScfsFileSystem::Unlink(const std::string& path) {
  const std::string normalized = NormalizePath(path);
  // Serialize with this path's queued close-publications: a pending
  // background metadata update must not resurrect the file after its
  // removal. (Every mode: blocking-mode CloseAsync also publishes through
  // the uploader.)
  WaitForCloseChains(normalized);
  ASSIGN_OR_RETURN(FileMetadata md, metadata_->Get(normalized));
  if (md.type == FileType::kDirectory) {
    return IsDirectoryError(normalized);
  }
  if (!md.AllowsWrite(options_.user)) {
    return PermissionDeniedError(normalized);
  }
  // Take the file's write lock: removal is a write, and it must exclude a
  // concurrent writer on another mount — that writer's in-flight publish
  // (and its write-credit pin, valid while it holds the lock) would
  // otherwise resurrect the file after the unlink acks.
  const bool shared_entry = !metadata_->IsPrivateEntry(md);
  if (shared_entry) {
    RETURN_IF_ERROR(locks_->Acquire(normalized));
  }
  Status removed = metadata_->Remove(normalized);
  metadata_->InvalidateCache(normalized);
  if (shared_entry) {
    Status released = locks_->Release(normalized);
    if (removed.ok() && !released.ok()) {
      removed = released;
    }
  }
  RETURN_IF_ERROR(removed);
  if (!md.object_id.empty() && !md.content_hash.empty()) {
    // Versions stay in the cloud until the garbage collector reclaims them
    // (multi-versioning: removed files can be recovered until then).
    (void)metadata_->AddTombstone(md.object_id);
  }
  return OkStatus();
}

Status ScfsFileSystem::Rename(const std::string& from, const std::string& to) {
  const std::string src = NormalizePath(from);
  const std::string dst = NormalizePath(to);
  if (src.empty() || dst.empty() || src == "/" || dst == "/") {
    return InvalidArgumentError("bad rename");
  }
  if (PathIsWithin(dst, src)) {
    return InvalidArgumentError("cannot rename into own subtree");
  }
  // As in Unlink: queued publications under either endpoint must land before
  // the namespace moves, or a background metadata write would re-create the
  // source path (or overwrite the destination with a stale version).
  WaitForCloseChains(src);
  WaitForCloseChains(dst);
  RETURN_IF_ERROR(CheckParentDirectory(dst));
  if (metadata_->Get(dst).ok()) {
    return AlreadyExistsError(dst);
  }
  RETURN_IF_ERROR(metadata_->RenameSubtree(src, dst));
  metadata_->InvalidateCache(src);
  return OkStatus();
}

Result<FileStat> ScfsFileSystem::Stat(const std::string& path) {
  const std::string normalized = NormalizePath(path);
  if (normalized == "/") {
    FileStat root;
    root.type = FileType::kDirectory;
    root.owner = options_.user;
    return root;
  }
  ASSIGN_OR_RETURN(FileMetadata md, metadata_->Get(normalized));
  if (md.type == FileType::kFile && !md.AllowsRead(options_.user)) {
    return PermissionDeniedError(normalized);
  }
  return md.ToStat();
}

Result<std::vector<DirEntry>> ScfsFileSystem::ReadDir(const std::string& path) {
  const std::string normalized = NormalizePath(path);
  if (normalized != "/") {
    ASSIGN_OR_RETURN(FileMetadata md, metadata_->Get(normalized));
    if (md.type != FileType::kDirectory) {
      return NotDirectoryError(normalized);
    }
  }
  ASSIGN_OR_RETURN(std::vector<FileMetadata> children,
                   metadata_->ListDir(normalized));
  std::vector<DirEntry> out;
  out.reserve(children.size());
  for (const auto& child : children) {
    out.push_back(DirEntry{Basename(child.path), child.type});
  }
  std::sort(out.begin(), out.end(),
            [](const DirEntry& a, const DirEntry& b) { return a.name < b.name; });
  return out;
}

Status ScfsFileSystem::SetFacl(const std::string& path, const std::string& user,
                               bool read, bool write) {
  if (coord_ == nullptr) {
    return NotSupportedError("sharing disabled in non-sharing mode");
  }
  const std::string normalized = NormalizePath(path);
  ASSIGN_OR_RETURN(FileMetadata md, metadata_->Get(normalized));
  if (md.owner != options_.user) {
    return PermissionDeniedError("only the owner may change ACLs");
  }

  // Step (i) — paper §2.6: update the ACLs of the cloud objects holding the
  // file data, using the grantee's registered canonical ids.
  ASSIGN_OR_RETURN(std::vector<CanonicalId> ids, LookupUserCloudIds(user));
  BackendGrant grant;
  grant.cloud_ids = std::move(ids);
  grant.read = read;
  grant.write = write;
  if (md.type == FileType::kFile && !md.content_hash.empty()) {
    RETURN_IF_ERROR(backend_->SetGrant(md.object_id, grant));
  }

  const bool was_shared = md.IsShared();
  uint8_t bits = (read ? 1 : 0) | (write ? 2 : 0);
  if (bits == 0) {
    md.acl.erase(user);
  } else {
    md.acl[user] = bits;
  }

  // Step (ii): update the metadata tuple's ACL in the coordination service —
  // moving the entry out of (or back into) the PNS as its shared status
  // changes (§2.7).
  if (!was_shared && md.IsShared()) {
    RETURN_IF_ERROR(metadata_->PromoteToShared(md));
  } else if (was_shared && !md.IsShared()) {
    RETURN_IF_ERROR(metadata_->DemoteToPrivate(md));
  } else {
    RETURN_IF_ERROR(metadata_->Put(md));
  }
  if (md.IsShared()) {
    RETURN_IF_ERROR(metadata_->GrantEntry(normalized, user, read, write));
  }
  return OkStatus();
}

Result<std::vector<AclEntry>> ScfsFileSystem::GetFacl(const std::string& path) {
  ASSIGN_OR_RETURN(FileMetadata md, metadata_->Get(NormalizePath(path)));
  std::vector<AclEntry> out;
  for (const auto& [user, bits] : md.acl) {
    out.push_back(AclEntry{user, (bits & 1) != 0, (bits & 2) != 0});
  }
  return out;
}

// ---------------------------------------------------------------------------
// Garbage collection (paper §2.5.3)
// ---------------------------------------------------------------------------

void ScfsFileSystem::MaybeTriggerGc(uint64_t written_bytes) {
  if (!options_.gc.enabled) {
    return;
  }
  uint64_t total = bytes_written_since_gc_.fetch_add(written_bytes) +
                   written_bytes;
  if (total < options_.gc.written_bytes_threshold) {
    return;
  }
  bytes_written_since_gc_.store(0);
  // "...it starts the garbage collector as a separated thread that runs in
  // parallel with the rest of the system."
  gc_worker_->Enqueue([this] { return RunGarbageCollection(); });
}

Status ScfsFileSystem::GcCollectFile(const FileMetadata& metadata) {
  if (metadata.type != FileType::kFile || metadata.object_id.empty()) {
    return OkStatus();
  }
  ASSIGN_OR_RETURN(std::vector<BlobVersionInfo> versions,
                   backend_->ListVersions(metadata.object_id));
  if (versions.size() <= options_.gc.versions_to_keep) {
    return OkStatus();
  }
  size_t to_delete = versions.size() - options_.gc.versions_to_keep;
  for (size_t i = 0; i < to_delete; ++i) {
    // Never delete the currently anchored version, whatever its age.
    if (versions[i].content_hash == metadata.content_hash) {
      continue;
    }
    (void)backend_->DeleteVersionByHash(metadata.object_id,
                                        versions[i].content_hash);
  }
  return OkStatus();
}

Status ScfsFileSystem::RunGarbageCollection() {
  // Old versions of live files owned by this user.
  std::vector<FileMetadata> files;
  if (coord_ != nullptr) {
    auto entries = coord_->ReadPrefix(options_.user, "m:/");
    if (entries.ok()) {
      for (const auto& entry : *entries) {
        auto md = FileMetadata::Decode(entry.value);
        if (md.ok() && md->owner == options_.user) {
          files.push_back(std::move(*md));
        }
      }
    }
  }
  for (const auto& md : metadata_->PnsEntries()) {
    files.push_back(md);
  }
  for (const auto& md : files) {
    (void)GcCollectFile(md);
  }

  // Deleted files: drop entire data units and their tombstones. Each
  // object's tombstone removal (a coordination round) is fired
  // asynchronously so it overlaps the next object's cloud deletes —
  // per-object order (delete before tombstone removal) is preserved,
  // different objects are independent. The fan-out is joined in bounded
  // windows: one client's in-flight set must stay well inside the SMR's
  // per-client reply table, or a retransmission could outlive its cached
  // reply and re-execute.
  constexpr size_t kGcRemovalWindow = 64;
  ASSIGN_OR_RETURN(std::vector<std::string> tombstones,
                   metadata_->ListTombstones());
  std::vector<Future<Status>> removals;
  removals.reserve(std::min(tombstones.size(), kGcRemovalWindow));
  for (const auto& object_id : tombstones) {
    (void)backend_->DeleteUnit(object_id);
    removals.push_back(metadata_->RemoveTombstoneAsync(object_id));
    if (removals.size() >= kGcRemovalWindow) {
      for (const auto& removal : removals) {
        removal.Join();
      }
      removals.clear();
    }
  }
  for (const auto& removal : removals) {
    removal.Join();
  }
  return OkStatus();
}

}  // namespace scfs
