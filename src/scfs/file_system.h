// ScfsFileSystem: the SCFS Agent (paper §2.3, §2.5) — the file system client
// that composes the metadata, storage and lock services into a POSIX-like
// file system with consistency-on-close semantics.
//
// Modes of operation (paper §3.1, Table 2):
//   kBlocking     close() returns after data reaches the cloud(s) and the
//                 metadata/lock updates complete (durability level 2/3).
//   kNonBlocking  close() returns once the file is durable on the local disk;
//                 upload, metadata update and unlock run in background, in
//                 that order, so mutual exclusion is preserved.
//   kNonSharing   no coordination service at all; all metadata lives in a
//                 Private Name Space object (an S3QL-like design, but capable
//                 of using a cloud-of-clouds backend).

#ifndef SCFS_SCFS_FILE_SYSTEM_H_
#define SCFS_SCFS_FILE_SYSTEM_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/coord/coordination_service.h"
#include "src/fsapi/file_system.h"
#include "src/scfs/background.h"
#include "src/scfs/blob_backend.h"
#include "src/scfs/lock_service.h"
#include "src/scfs/metadata.h"
#include "src/scfs/metadata_service.h"
#include "src/scfs/storage_service.h"

namespace scfs {

enum class ScfsMode { kBlocking, kNonBlocking, kNonSharing };

struct GcOptions {
  bool enabled = true;
  uint64_t written_bytes_threshold = 64ull * 1024 * 1024;  // W
  unsigned versions_to_keep = 2;                           // V
};

struct ScfsOptions {
  ScfsMode mode = ScfsMode::kBlocking;
  std::string user;
  // This user's canonical account id at each backend cloud, registered in the
  // coordination service so other clients can grant it access (§2.6).
  std::vector<CanonicalId> user_cloud_ids;
  VirtualDuration metadata_cache_ttl = FromMillis(500);
  bool use_pns = false;
  StorageServiceOptions storage;
  LockServiceOptions locks;
  GcOptions gc;
  // Lease-delegated caching (DESIGN.md): set by Deployment::Mount when the
  // deployment enables leases. A null manager or zero TTL disables both the
  // metadata read leases and the lock linger.
  LeaseManager* leases = nullptr;
  VirtualDuration lease_ttl = 0;
  size_t lease_max_prefixes = 16;
};

class ScfsFileSystem : public FileSystem {
 public:
  // `coord` must be null iff mode == kNonSharing.
  ScfsFileSystem(Environment* env, CoordinationService* coord,
                 BlobBackend* backend, ScfsOptions options);
  ~ScfsFileSystem() override;

  // Loads the PNS, locks it, and publishes this user's cloud account ids.
  Status Mount();
  // Drains background uploads and flushes the PNS.
  Status Unmount();

  // fsapi::FileSystem
  Result<FileHandle> Open(const std::string& path, uint32_t flags) override;
  Result<Bytes> Read(FileHandle handle, uint64_t offset, size_t size) override;
  Status Write(FileHandle handle, uint64_t offset, const Bytes& data) override;
  Status Truncate(FileHandle handle, uint64_t size) override;
  Status Fsync(FileHandle handle) override;
  Status Close(FileHandle handle) override;
  // Non-blocking mode: retires the handle immediately and returns a future
  // that completes at durability level 1 (local disk); the upload ->
  // metadata -> unlock chain continues in background, strictly in that
  // order. Blocking mode: the future completes at durability level 2/3.
  // Close() is CloseAsync().Get().
  Future<Status> CloseAsync(FileHandle handle) override;
  // Waits until every close issued so far is fully synchronized (uploads
  // done, metadata published, locks released).
  Status SyncBarrier() override;
  Status Mkdir(const std::string& path) override;
  Status Rmdir(const std::string& path) override;
  Status Unlink(const std::string& path) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Result<FileStat> Stat(const std::string& path) override;
  Result<std::vector<DirEntry>> ReadDir(const std::string& path) override;
  Status SetFacl(const std::string& path, const std::string& user, bool read,
                 bool write) override;
  Result<std::vector<AclEntry>> GetFacl(const std::string& path) override;

  // Forces all queued uploads to complete (tests, experiments).
  void DrainBackground();
  // Runs one garbage-collection pass synchronously.
  Status RunGarbageCollection();

  MetadataService& metadata_service() { return *metadata_; }
  StorageService& storage_service() { return *storage_; }
  LockService& lock_service() { return *locks_; }
  BackgroundUploader& uploader() { return *uploader_; }
  const ScfsOptions& options() const { return options_; }

 private:
  struct OpenFile {
    FileMetadata metadata;
    Bytes data;
    bool write_mode = false;
    bool dirty = false;
  };

  std::string NewObjectId();
  Result<FileMetadata> ResolveForOpen(const std::string& path, uint32_t flags,
                                      bool* created);
  Status CheckParentDirectory(const std::string& path);
  std::vector<BackendGrant> BuildGrants(const FileMetadata& metadata);
  Result<std::vector<CanonicalId>> LookupUserCloudIds(const std::string& user);
  Future<Status> SynchronizeOnCloseAsync(OpenFile&& file);
  // Blocks until every in-flight close chain publishing at `path` or below
  // it has completed. Namespace operations use this instead of a full
  // Drain(): the resurrection hazard they guard against is path-keyed, so
  // an unlink or rename must not barrier behind unrelated files' uploads.
  void WaitForCloseChains(const std::string& path);
  void MaybeTriggerGc(uint64_t written_bytes);
  Status GcCollectFile(const FileMetadata& metadata);

  Environment* env_;
  CoordinationService* coord_;
  ScfsOptions options_;

  std::unique_ptr<StorageService> storage_;
  std::unique_ptr<MetadataService> metadata_;
  std::unique_ptr<LockService> locks_;
  std::unique_ptr<BackgroundUploader> uploader_;
  std::unique_ptr<BackgroundUploader> gc_worker_;
  BlobBackend* backend_;

  std::mutex fs_mu_;  // open-file table + registry cache + close chains
  std::map<FileHandle, OpenFile> open_files_;
  std::atomic<uint64_t> next_handle_{1};
  std::map<std::string, std::vector<CanonicalId>> registry_cache_;
  Rng rng_;

  // Tails of the in-flight close chain per path: a re-opened file (the lock
  // service is re-entrant precisely to allow reopening while the previous
  // close is still uploading) must apply its path-keyed metadata updates in
  // close order, or a stale write could overwrite a newer one. Two tails:
  // `level1` (local flush + local metadata — the next close's stage 1 waits
  // only for this, a disk flush, never the previous cloud upload) and
  // `publish` (upload + coordination metadata + unlock — gates the next
  // stage 2). Entries are pruned when the chain completes; the generation
  // counter guards against pruning a newer chain that reused the path.
  struct CloseChainTails {
    uint64_t gen = 0;
    Future<Status> level1;
    Future<Status> publish;
  };
  std::map<std::string, CloseChainTails> close_chains_;
  uint64_t close_chain_gen_ = 0;

  std::atomic<uint64_t> bytes_written_since_gc_{0};
  bool mounted_ = false;
};

}  // namespace scfs

#endif  // SCFS_SCFS_FILE_SYSTEM_H_
