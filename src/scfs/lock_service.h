// LockService (paper §2.5.1): write-write conflict avoidance built on the
// coordination service's ephemeral lock recipe. Locks carry leases so a
// crashed client's files unlock automatically; an agent that keeps a file
// open re-extends the lease on demand. Opening for reading never locks —
// read-write conflicts are handled by the consistency anchor and whole-file
// upload/download, which guarantee the newest closed version is read.
//
// Write-credit delegation (DESIGN.md "Lease-delegated caching"): with a
// LeaseManager wired in and linger enabled, the last local release keeps the
// coordination lock "lingering" instead of unlocking — the next Acquire of
// the same path reclaims it with ZERO coordination messages, and renewal
// rounds are issued only when less than half the lease remains. A contender
// in the same deployment that finds the lock busy asks the manager to have
// the lingering holder release for real; a crashed holder's linger simply
// expires with the server-side lease (the 120 s backstop).

#ifndef SCFS_SCFS_LOCK_SERVICE_H_
#define SCFS_SCFS_LOCK_SERVICE_H_

#include <functional>
#include <map>
#include <mutex>
#include <string>

#include "src/common/future.h"
#include "src/coord/coordination_service.h"
#include "src/coord/lease.h"
#include "src/scfs/metadata.h"
#include "src/sim/environment.h"

namespace scfs {

struct LockServiceOptions {
  VirtualDuration lease = 120 * kSecond;
  // Non-null manager + linger=true enable write-credit delegation.
  LeaseManager* leases = nullptr;
  bool linger = false;
  // Fired (outside the service's mutex) whenever this agent stops holding a
  // path's coordination lock for real — an unlock round, a lingering lock
  // handed to a contender, or a failed reacquisition. Anything whose
  // validity is backed by holding the lock (the metadata service's pinned
  // own-publish entries) must be torn down here.
  std::function<void(const std::string& path)> on_release;
};

class LockService {
 public:
  // `coord` may be null (non-sharing mode): every lock trivially succeeds —
  // there is a single client per namespace. `env` may be null only then.
  LockService(Environment* env, CoordinationService* coord, std::string user,
              LockServiceOptions options = {})
      : env_(env), coord_(coord), user_(std::move(user)), options_(options) {}

  // BUSY if another client holds the file. Re-entrant within this agent:
  // acquisitions are refcounted (the non-blocking mode may re-open a file
  // whose previous close is still uploading; the lock must survive until the
  // last release).
  Status Acquire(const std::string& path);
  Status Release(const std::string& path);
  // Extends the lease of a lock held by this service.
  Status Renew(const std::string& path);
  // Asynchronous lease extension: fired at the start of a background upload
  // so the coordination round overlaps the cloud transfer (a long upload
  // must not lose its file lock mid-chain). Renewing commutes with
  // everything except releasing the same path — join the future before
  // Release. A renewal that loses that race fails benignly (kNotFound).
  // With more than half the lease remaining this is a ready no-op round
  // (renew-on-demand).
  Future<Status> RenewAsync(const std::string& path);
  bool Holds(const std::string& path);
  // Conservative client-side bound on how long this agent's hold on the
  // path's lock (including a lingering one) is guaranteed by the server
  // lease. 0 when the lock is not held. The write-credit metadata pin
  // (MetadataService::PinOwned) uses this as its validity horizon.
  VirtualTime HeldUntil(const std::string& path);

  // Experiment counters: acquisitions served by reclaiming a lingering or
  // held lock without any coordination round.
  uint64_t reclaim_hits() const {
    std::lock_guard<std::mutex> guard(mu_);
    return reclaim_hits_;
  }

 private:
  struct Held {
    uint64_t token = 0;
    int refcount = 0;
    // Conservative client-side view of the server lease (set from the same
    // virtual clock the state machine expires with).
    VirtualTime expires_at = 0;
    bool lingering = false;
  };

  bool LingerEnabled() const {
    return options_.leases != nullptr && options_.linger;
  }
  // The broker-side release of a lingering lock; returns true if the lock
  // was released (or already gone), false if it was reclaimed meanwhile.
  bool TryReleaseLingering(const std::string& path);

  Environment* env_;
  CoordinationService* coord_;
  std::string user_;
  LockServiceOptions options_;
  mutable std::mutex mu_;
  std::map<std::string, Held> held_;
  uint64_t reclaim_hits_ = 0;
};

}  // namespace scfs

#endif  // SCFS_SCFS_LOCK_SERVICE_H_
