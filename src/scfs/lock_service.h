// LockService (paper §2.5.1): write-write conflict avoidance built on the
// coordination service's ephemeral lock recipe. Locks carry leases so a
// crashed client's files unlock automatically; an agent that keeps a file
// open re-extends the lease on demand. Opening for reading never locks —
// read-write conflicts are handled by the consistency anchor and whole-file
// upload/download, which guarantee the newest closed version is read.

#ifndef SCFS_SCFS_LOCK_SERVICE_H_
#define SCFS_SCFS_LOCK_SERVICE_H_

#include <map>
#include <mutex>
#include <string>

#include "src/common/future.h"
#include "src/coord/coordination_service.h"
#include "src/scfs/metadata.h"

namespace scfs {

struct LockServiceOptions {
  VirtualDuration lease = 120 * kSecond;
};

class LockService {
 public:
  // `coord` may be null (non-sharing mode): every lock trivially succeeds —
  // there is a single client per namespace.
  LockService(CoordinationService* coord, std::string user,
              LockServiceOptions options = {})
      : coord_(coord), user_(std::move(user)), options_(options) {}

  // BUSY if another client holds the file. Re-entrant within this agent:
  // acquisitions are refcounted (the non-blocking mode may re-open a file
  // whose previous close is still uploading; the lock must survive until the
  // last release).
  Status Acquire(const std::string& path);
  Status Release(const std::string& path);
  // Extends the lease of a lock held by this service.
  Status Renew(const std::string& path);
  // Asynchronous lease extension: fired at the start of a background upload
  // so the coordination round overlaps the cloud transfer (a long upload
  // must not lose its file lock mid-chain). Renewing commutes with
  // everything except releasing the same path — join the future before
  // Release. A renewal that loses that race fails benignly (kNotFound).
  Future<Status> RenewAsync(const std::string& path);
  bool Holds(const std::string& path);

 private:
  struct Held {
    uint64_t token = 0;
    int refcount = 0;
  };

  CoordinationService* coord_;
  std::string user_;
  LockServiceOptions options_;
  std::mutex mu_;
  std::map<std::string, Held> held_;
};

}  // namespace scfs

#endif  // SCFS_SCFS_LOCK_SERVICE_H_
