// BackgroundUploader: the pipeline behind SCFS's non-blocking mode (paper
// §3.1), rebuilt as a bounded-depth pipeline of futures on the shared
// executor.
//
// Each close contributes a chain of stages — local flush (durability level
// 1), then cloud upload → metadata update → unlock, strictly in that order
// per file, so mutual exclusion is preserved: "the file metadata is updated
// and the associated lock released only after the file contents are updated
// to the clouds". Chains for *different* files run concurrently (the paper's
// uploads are independent cloud PUTs), which is what lets a burst of closes
// overlap their disk flushes and uploads instead of queueing behind one
// worker thread.
//
// Depth is bounded: Enqueue applies backpressure once `max_depth` stages are
// pending, so a writer that outruns the clouds blocks instead of growing the
// queue without limit. A serialize option restores strict FIFO across tasks
// (used by the garbage-collection worker, whose passes must not overlap).

#ifndef SCFS_SCFS_BACKGROUND_H_
#define SCFS_SCFS_BACKGROUND_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <mutex>

#include "src/common/future.h"
#include "src/common/status.h"
#include "src/sim/time.h"

namespace scfs {

struct BackgroundUploaderOptions {
  // Maximum stages pending at once; Enqueue blocks beyond this.
  size_t max_depth = 256;
  // Chain every task after the previous one (single-lane FIFO).
  bool serialize = false;
};

class BackgroundUploader {
 public:
  explicit BackgroundUploader(BackgroundUploaderOptions options = {});
  ~BackgroundUploader();

  BackgroundUploader(const BackgroundUploader&) = delete;
  BackgroundUploader& operator=(const BackgroundUploader&) = delete;

  // Schedules one stage; returns a future completing with the stage's
  // status. Stages enqueued here are mutually independent unless the
  // uploader serializes. When `account_charge` is false the stage's modelled
  // time is excluded from total_charged() — used for stages whose charge is
  // delivered to a foreground waiter through the returned future instead
  // (the level-1 flush a Close() blocks on), so it is never counted twice.
  Future<Status> Enqueue(std::function<Status()> task,
                         bool account_charge = true);

  // Schedules `task` to start only after `dep` completes (regardless of its
  // status) — the per-file upload -> metadata -> unlock chain.
  Future<Status> EnqueueAfter(Future<Status> dep, std::function<Status()> task,
                              bool account_charge = true);

  // Atomically reserves `count` pending slots, blocking while fewer are
  // free. A producer scheduling a multi-stage chain reserves the whole
  // chain up front, then enqueues each stage with the *Reserved variants —
  // it never holds one stage's slot while blocking for another's (the
  // hold-and-wait shape that deadlocks bounded queues). Counts larger than
  // max_depth are admitted once the queue is empty.
  void Reserve(size_t count);
  Future<Status> EnqueueReserved(std::function<Status()> task,
                                 bool account_charge = true);
  Future<Status> EnqueueAfterReserved(Future<Status> dep,
                                      std::function<Status()> task,
                                      bool account_charge = true);

  // Blocks until every stage enqueued so far has completed. Used by tests,
  // unmount, and namespace operations that must not race queued publishes.
  void Drain();

  size_t pending() const;

  // Total modelled (charged) virtual time spent executing accounted stages.
  // Experiments use deltas of this to attribute background upload latency
  // (Figure 9's non-blocking sharing latency includes the in-flight upload).
  VirtualDuration total_charged() const;

 private:
  Future<Status> Schedule(Future<Status> dep, std::function<Status()> task,
                          bool account_charge, bool reserved);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  size_t pending_ = 0;
  Future<Status> tail_;  // last scheduled stage (serialize mode)
  BackgroundUploaderOptions options_;
  std::atomic<int64_t> total_charged_{0};
};

}  // namespace scfs

#endif  // SCFS_SCFS_BACKGROUND_H_
