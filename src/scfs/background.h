// BackgroundUploader: the worker behind SCFS's non-blocking mode (paper
// §3.1). close() returns once the file is durable locally; the upload, the
// metadata update and the unlock happen here, strictly in that order per
// task, so mutual exclusion is preserved: "the file metadata is updated and
// the associated lock released only after the file contents are updated to
// the clouds".

#ifndef SCFS_SCFS_BACKGROUND_H_
#define SCFS_SCFS_BACKGROUND_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>

#include "src/common/status.h"
#include "src/sim/time.h"

namespace scfs {

class BackgroundUploader {
 public:
  BackgroundUploader();
  ~BackgroundUploader();

  BackgroundUploader(const BackgroundUploader&) = delete;
  BackgroundUploader& operator=(const BackgroundUploader&) = delete;

  // Enqueues one task; tasks run in FIFO order on a single worker.
  void Enqueue(std::function<void()> task);

  // Blocks until every task enqueued so far has completed. Used by tests and
  // by unmount.
  void Drain();

  size_t pending() const;

  // Total modelled (charged) virtual time spent executing tasks. Experiments
  // use deltas of this to attribute background upload latency (Figure 9's
  // non-blocking sharing latency includes the in-flight upload).
  VirtualDuration total_charged() const;

 private:
  void Loop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable drained_cv_;
  std::deque<std::function<void()>> queue_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
  std::atomic<int64_t> total_charged_{0};
  std::thread worker_;
};

}  // namespace scfs

#endif  // SCFS_SCFS_BACKGROUND_H_
