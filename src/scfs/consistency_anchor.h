// Consistency anchor (paper §2.4, Figure 3) — the key innovation of SCFS,
// decoupled from the file system.
//
// Two stores compose into one: a small strongly-consistent store (the CA —
// here, the coordination service) anchors the consistency of a large
// eventually-consistent one (the SS — a storage cloud). The composite
// inherits the CA's consistency even though the bulk data lives in the SS:
//
//   WRITE(id, v):  h <- Hash(v); SS.write(id|h, v); CA.write(id, h)
//   READ(id):      h <- CA.read(id); loop v <- SS.read(id|h) until v != null;
//                  return Hash(v) == h ? v : fail
//
// The read loop absorbs the SS's eventual consistency: after a write, the new
// hash is immediately visible in the CA, while the data becomes visible in
// the SS only eventually.

#ifndef SCFS_SCFS_CONSISTENCY_ANCHOR_H_
#define SCFS_SCFS_CONSISTENCY_ANCHOR_H_

#include <string>

#include "src/common/executor.h"
#include "src/common/future.h"
#include "src/coord/coordination_service.h"
#include "src/scfs/blob_backend.h"
#include "src/sim/environment.h"

namespace scfs {

struct AnchorOptions {
  VirtualDuration retry_delay = FromMillis(100);  // SS read-loop backoff
  int max_retries = 100;
};

class AnchoredStorage {
 public:
  AnchoredStorage(Environment* env, CoordinationService* anchor,
                  std::string client, BlobBackend* storage,
                  AnchorOptions options = {})
      : env_(env),
        anchor_(anchor),
        client_(std::move(client)),
        storage_(storage),
        options_(options) {}

  // Figure 3, WRITE: every write creates a new version in the SS, then
  // publishes its hash in the CA.
  Status Write(const std::string& id, ConstByteSpan value);

  // Figure 3, READ: returns the version whose hash the CA currently anchors.
  Result<Bytes> Read(const std::string& id);

  // Asynchronous variants. The anchored order (SS before CA on write, CA
  // before SS on read) is preserved inside the chain; what the futures buy
  // is the caller's ability to overlap whole anchored operations with other
  // storage work. The write's CA publish rides the coordination service's
  // SubmitAsync, so the SS->CA handoff never parks an executor worker on a
  // coordination round. `value` is copied into the chain (the caller's
  // buffer may die before the SS write runs).
  Future<Status> WriteAsync(const std::string& id, ConstByteSpan value);
  Future<Result<Bytes>> ReadAsync(const std::string& id);

  // Computes the anchor hash of a value (hex SHA-1, as in SCFS).
  static std::string AnchorHash(ConstByteSpan value);

  // Retries SS.read(id|h) until the version is visible — usable directly by
  // callers that obtained `h` some other way (SCFS's metadata service).
  Result<Bytes> ReadWithHash(const std::string& id, const std::string& hash);

 private:
  Environment* env_;
  CoordinationService* anchor_;
  std::string client_;
  BlobBackend* storage_;
  AnchorOptions options_;
  // Last member: destroyed first, waiting out in-flight async chains.
  InFlightTracker inflight_;
};

}  // namespace scfs

#endif  // SCFS_SCFS_CONSISTENCY_ANCHOR_H_
