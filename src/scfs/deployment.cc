#include "src/scfs/deployment.h"

namespace scfs {

namespace {
Bytes DeploymentAuthKey() { return ToBytes("scfs-deployment-auth-key"); }
}  // namespace

Deployment::~Deployment() = default;

std::unique_ptr<Deployment> Deployment::Create(Environment* env,
                                               DeploymentOptions options) {
  auto deployment = std::unique_ptr<Deployment>(new Deployment());
  deployment->env_ = env;
  deployment->options_ = options;

  if (options.backend == ScfsBackendKind::kAws) {
    CloudProfile profile = ProviderProfile(ProviderId::kAmazonS3);
    if (options.zero_latency) {
      profile.read_latency = LatencyModel::None();
      profile.write_latency = LatencyModel::None();
      profile.control_latency = LatencyModel::None();
      profile.consistency_window_base = 0;
      profile.consistency_window_jitter = 0;
    }
    deployment->clouds_.push_back(
        std::make_unique<SimulatedCloud>(profile, env, options.seed));
  } else {
    auto profiles = CocStorageProfiles();
    for (unsigned i = 0; i < profiles.size(); ++i) {
      if (options.zero_latency) {
        profiles[i].read_latency = LatencyModel::None();
        profiles[i].write_latency = LatencyModel::None();
        profiles[i].control_latency = LatencyModel::None();
        profiles[i].consistency_window_base = 0;
        profiles[i].consistency_window_jitter = 0;
      }
      deployment->clouds_.push_back(std::make_unique<SimulatedCloud>(
          profiles[i], env, options.seed + i));
    }
  }

  if (options.zero_latency) {
    auto coord = std::make_unique<LocalCoordination>(env, LatencyModel::None(),
                                                     options.seed);
    deployment->local_coord_ = coord.get();
    deployment->coord_ = std::move(coord);
  } else if (options.backend == ScfsBackendKind::kAws) {
    // One DepSpace server on an EC2 VM in Ireland: ~30-50 ms one-way, 60-100
    // ms per coordination access, as the paper reports.
    auto coord = std::make_unique<LocalCoordination>(
        env, CoordinationLinkLatency(0), options.seed);
    deployment->local_coord_ = coord.get();
    deployment->coord_ = std::move(coord);
  } else {
    SmrConfig config;
    config.f = options.f;
    config.byzantine = true;
    config.client_links.clear();
    for (unsigned i = 0; i < config.replica_count(); ++i) {
      config.client_links.push_back(CoordinationLinkLatency(i));
    }
    // Replicas sit in different European computing clouds: ~10 ms apart.
    config.replica_link = LatencyModel::WideArea(FromMillis(9), FromMillis(5), 16.0);
    // Benchmarks run at aggressive time scales where real scheduling noise
    // maps to large virtual delays; keep failure detection timeouts generous
    // so no spurious view changes fire (fault experiments build their own
    // SmrConfig).
    config.client_timeout = 20 * kSecond;
    config.order_timeout = 8 * kSecond;
    // Fallback cooldown (off in SmrConfig's default): a deployment's read
    // path must not pay one fast_read_timeout per read while a fault
    // persists — one per window is the contract.
    config.fast_read_fallback_cooldown = 5 * kSecond;
    if (options.coord_max_batch > 0) {
      config.max_batch = options.coord_max_batch;
    }
    if (options.coord_max_inflight_instances > 0) {
      config.max_inflight_instances = options.coord_max_inflight_instances;
    }
    if (options.coord_batch_accumulation_delay > 0) {
      config.enable_batching = true;
      config.batch_accumulation_delay = options.coord_batch_accumulation_delay;
    }
    if (options.coord_replica_link_one_way > 0) {
      config.replica_link =
          LatencyModel::Fixed(options.coord_replica_link_one_way);
    }
    if (options.coord_partitions > 1) {
      PartitionedCoordinationConfig pconfig;
      pconfig.partitions = options.coord_partitions;
      pconfig.smr = config;
      pconfig.spare_partitions = options.coord_spare_partitions;
      pconfig.auto_split = options.coord_auto_split;
      pconfig.split_hot_share = options.coord_split_hot_share;
      pconfig.split_window = options.coord_split_window;
      pconfig.split_min_total_ops_s = options.coord_split_min_total_ops_s;
      pconfig.merge_cold_share = options.coord_merge_cold_share;
      // A committed migration revokes delegated caches on the moved keys
      // through the deployment's lease manager: the controller executes
      // below the LeasedCoordination decorator, so the piggybacked
      // revocation path never sees the migration's mutations.
      LeaseManager* leases = &deployment->lease_manager_;
      pconfig.on_migration_commit =
          [leases](const std::vector<LeaseRevocation>& revoked) {
            leases->NotifyRevocations(revoked);
          };
      auto coord = std::make_unique<PartitionedCoordination>(env, pconfig,
                                                             options.seed);
      deployment->partitioned_coord_ = coord.get();
      deployment->coord_ = std::move(coord);
    } else {
      auto coord =
          std::make_unique<ReplicatedCoordination>(env, config, options.seed);
      deployment->replicated_coord_ = coord.get();
      deployment->coord_ = std::move(coord);
    }
  }
  if (options.lease_ttl > 0) {
    // Wrap the coordination stub so every mutation reply's revocation
    // notices reach the lease holders before the mutation acks. The raw
    // introspection pointers (local_coord_, replicated_coord_,
    // partitioned_coord_) keep pointing at the inner implementation.
    deployment->coord_ = std::make_unique<LeasedCoordination>(
        std::move(deployment->coord_), &deployment->lease_manager_);
  }
  return deployment;
}

Status Deployment::SplitPartition(unsigned src) {
  if (partitioned_coord_ == nullptr) {
    return NotSupportedError(
        "elastic repartitioning needs a partitioned coordination plane");
  }
  return partitioned_coord_->SplitPartition(src);
}

Status Deployment::MergePartitions(unsigned src, unsigned dst) {
  if (partitioned_coord_ == nullptr) {
    return NotSupportedError(
        "elastic repartitioning needs a partitioned coordination plane");
  }
  return partitioned_coord_->MergePartitions(src, dst);
}

uint64_t Deployment::CoordReplyBytes() const {
  if (local_coord_ != nullptr) {
    return local_coord_->reply_bytes_out();
  }
  if (replicated_coord_ != nullptr) {
    return replicated_coord_->cluster().reply_bytes_out();
  }
  if (partitioned_coord_ != nullptr) {
    return partitioned_coord_->reply_bytes_out();
  }
  return 0;
}

std::vector<CanonicalId> Deployment::CloudIdsFor(
    const std::string& user) const {
  std::vector<CanonicalId> ids;
  ids.reserve(clouds_.size());
  for (const auto& cloud : clouds_) {
    ids.push_back(cloud->provider_name() + ":" + user);
  }
  return ids;
}

Result<std::unique_ptr<ScfsFileSystem>> Deployment::Mount(
    const std::string& user, ScfsOptions options) {
  options.user = user;
  options.user_cloud_ids = CloudIdsFor(user);
  if (options_.lease_ttl > 0) {
    options.leases = &lease_manager_;
    options.lease_ttl = options_.lease_ttl;
    options.lease_max_prefixes = options_.lease_max_prefixes;
  }

  BlobBackend* backend = nullptr;
  if (options_.backend == ScfsBackendKind::kAws) {
    auto owned = std::make_unique<SingleCloudBackend>(
        clouds_[0].get(), CloudCredentials{options.user_cloud_ids[0]});
    backend = owned.get();
    backends_.push_back(std::move(owned));
  } else {
    DepSkyConfig config;
    config.f = options_.f;
    config.mode = DepSkyMode::kSecretSharing;
    config.preferred_quorums = true;
    config.auth_key = DeploymentAuthKey();
    if (options_.stripe_threshold != 0) {
      config.stripe_threshold = options_.stripe_threshold;
    }
    if (options_.stripe_unit_size != 0) {
      config.stripe_unit_size = options_.stripe_unit_size;
    }
    if (options_.stripe_inflight != 0) {
      config.stripe_inflight = options_.stripe_inflight;
    }
    std::vector<DepSkyCloud> set;
    for (unsigned i = 0; i < clouds_.size(); ++i) {
      set.push_back(DepSkyCloud{clouds_[i].get(),
                                CloudCredentials{options.user_cloud_ids[i]}});
    }
    auto client = std::make_shared<DepSkyClient>(
        env_, std::move(set), config,
        options_.seed ^ std::hash<std::string>{}(user));
    depsky_clients_.push_back(client);
    auto owned = std::make_unique<DepSkyBackend>(std::move(client));
    backend = owned.get();
    backends_.push_back(std::move(owned));
  }

  auto fs = std::make_unique<ScfsFileSystem>(env_, coord_.get(), backend,
                                             std::move(options));
  RETURN_IF_ERROR(fs->Mount());
  return fs;
}

UsageTotals Deployment::CloudUsage(const std::string& user) const {
  UsageTotals out;
  for (unsigned i = 0; i < clouds_.size(); ++i) {
    UsageTotals u =
        clouds_[i]->costs().Totals(clouds_[i]->provider_name() + ":" + user);
    out.outbound_cost += u.outbound_cost;
    out.inbound_cost += u.inbound_cost;
    out.request_cost += u.request_cost;
    out.bytes_out += u.bytes_out;
    out.bytes_in += u.bytes_in;
    out.puts += u.puts;
    out.gets += u.gets;
    out.lists += u.lists;
    out.deletes += u.deletes;
  }
  return out;
}

uint64_t Deployment::StoredBytes(const std::string& user) const {
  uint64_t out = 0;
  for (const auto& cloud : clouds_) {
    out += cloud->costs().StoredBytes(cloud->provider_name() + ":" + user);
  }
  return out;
}

}  // namespace scfs
