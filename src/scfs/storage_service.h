// StorageService: the SCFS agent's local service for file data (paper
// §2.5.1), implementing the "always write / avoid reading" principle over two
// cache levels:
//
//   level 0  main-memory LRU of open/recent files (hundreds of MB),
//   level 1  local-disk LRU (GBs) — evictions from memory spill to disk,
//   level 2/3  the cloud backend (single cloud or cloud-of-clouds).
//
// Caches are content-addressed by (object id, anchor hash), so validation
// against the metadata service is a key comparison: a cached entry with the
// anchored hash *is* the current version. Reads resolve locally whenever the
// hash matches; writes always go to the cloud (uploads are free).

#ifndef SCFS_SCFS_STORAGE_SERVICE_H_
#define SCFS_SCFS_STORAGE_SERVICE_H_

#include <filesystem>
#include <mutex>
#include <string>

#include "src/common/backoff.h"
#include "src/common/executor.h"
#include "src/common/future.h"
#include "src/common/lru_cache.h"
#include "src/common/rng.h"
#include "src/scfs/blob_backend.h"
#include "src/sim/environment.h"

namespace scfs {

struct StorageServiceOptions {
  size_t memory_cache_bytes = 256ull * 1024 * 1024;
  size_t disk_cache_bytes = 4ull * 1024 * 1024 * 1024;
  std::filesystem::path disk_cache_dir;  // empty => unique temp directory
  VirtualDuration disk_write_latency = FromMillis(5);  // 15K RPM SCSI-ish
  VirtualDuration disk_read_latency = FromMillis(2);
  // Consistency-anchor read loop: capped exponential backoff with jitter
  // between attempts (replaces the old fixed 100 ms delay). The cap keeps
  // the wait bounded once the consistency window is clearly being ridden
  // out; the jitter de-synchronizes agents re-reading the same anchor.
  BackoffPolicy read_backoff{FromMillis(25), FromMillis(1000), 2.0, 0.5};
  int max_read_retries = 100;
};

class StorageService {
 public:
  StorageService(Environment* env, BlobBackend* backend,
                 StorageServiceOptions options);
  ~StorageService();

  // Fetches the version `hash` of `id`: memory -> disk -> cloud (with the
  // consistency-anchor read loop). The result is cached at both levels.
  Result<Bytes> Fetch(const std::string& id, const std::string& hash);

  // True if the version is available locally (memory or disk) — the paper's
  // "local file version compared with the metadata service" check reduces to
  // this because caches are content-addressed.
  bool HasLocal(const std::string& id, const std::string& hash);

  // Installs data into the memory cache only (durability level 0).
  void PutMemory(const std::string& id, const std::string& hash, Bytes data);

  // Flushes one version to the local disk cache (fsync — durability level 1).
  Status FlushToDisk(const std::string& id, const std::string& hash,
                     ConstByteSpan data);

  // Synchronously pushes to local disk AND the cloud backend (close in
  // blocking mode — durability level 2/3). `data` is a borrowed view; the
  // only copy made here is the one the memory cache keeps.
  Status Push(const std::string& id, const std::string& hash,
              ConstByteSpan data, const std::vector<BackendGrant>& grants);

  // Asynchronous variants, dispatched on the shared executor. The service
  // is internally locked, so any number may be in flight; the destructor
  // waits for stragglers. PushAsync completes at durability level 2/3;
  // PrefetchAsync warms both cache levels ahead of an open (and returns the
  // data, so it doubles as an async Fetch).
  Future<Status> PushAsync(const std::string& id, const std::string& hash,
                           Bytes data, std::vector<BackendGrant> grants);
  Future<Result<Bytes>> PrefetchAsync(const std::string& id,
                                      const std::string& hash);

  BlobBackend& backend() { return *backend_; }
  const std::filesystem::path& disk_dir() const { return disk_dir_; }

  // Counters for experiments.
  uint64_t memory_hits() const { return memory_hits_; }
  uint64_t disk_hits() const { return disk_hits_; }
  uint64_t cloud_reads() const { return cloud_reads_; }
  // Backend reads that had to loop on NOT_FOUND (consistency-anchor waits).
  uint64_t read_retries() const { return read_retries_; }

 private:
  std::string CacheKey(const std::string& id, const std::string& hash) const {
    return id + ":" + hash;
  }
  std::filesystem::path DiskPath(const std::string& id,
                                 const std::string& hash) const;
  void SpillToDisk(const std::string& key, Bytes&& data);
  Result<Bytes> ReadFromDisk(const std::string& id, const std::string& hash);
  void WriteToDisk(const std::string& id, const std::string& hash,
                   ConstByteSpan data);

  Environment* env_;
  BlobBackend* backend_;
  StorageServiceOptions options_;
  std::filesystem::path disk_dir_;
  bool owns_disk_dir_ = false;

  std::mutex mu_;
  LruCache<std::string, Bytes> memory_;
  LruCache<std::string, uint64_t> disk_index_;  // key -> size on disk

  uint64_t memory_hits_ = 0;
  uint64_t disk_hits_ = 0;
  uint64_t cloud_reads_ = 0;
  uint64_t read_retries_ = 0;
  Rng retry_rng_{0x5cf5u};  // jitter only; fixed seed keeps runs replayable

  InFlightTracker async_ops_;
};

}  // namespace scfs

#endif  // SCFS_SCFS_STORAGE_SERVICE_H_
