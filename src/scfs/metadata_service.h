// MetadataService: the SCFS agent's local service for file metadata (paper
// §2.5.1) with two features central to the evaluation:
//
//   * a short-term metadata cache (default 500 ms expiration) absorbing the
//     bursts of stat/getattr calls applications issue per high-level action
//     (Figure 10a shows the system collapsing without it);
//   * Private Name Spaces (§2.7): metadata of non-shared files lives in one
//     cloud-stored object per user instead of one coordination tuple per
//     file, shrinking coordination-service state and traffic (Figure 10b).
//
// Shared entries live in the coordination service (the consistency anchor for
// both metadata and, via the content hash they carry, file data).

#ifndef SCFS_SCFS_METADATA_SERVICE_H_
#define SCFS_SCFS_METADATA_SERVICE_H_

#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "src/common/future.h"
#include "src/coord/coordination_service.h"
#include "src/coord/lease.h"
#include "src/scfs/metadata.h"
#include "src/scfs/storage_service.h"
#include "src/sim/environment.h"

namespace scfs {

struct MetadataServiceOptions {
  VirtualDuration cache_ttl = FromMillis(500);
  bool use_pns = false;        // Private Name Spaces enabled
  bool non_sharing = false;    // no coordination service at all (SCFS-*-NS)
  // Lock-owner identity of this agent session. Locks must be per-session —
  // two machines logged in as the same user still conflict (the PNS lock
  // exists precisely for that case). Defaults to the user name if empty.
  std::string session;
  // Lease-delegated caching (DESIGN.md "Lease-delegated caching"): with a
  // non-null manager and a nonzero TTL, metadata reads acquire ordered read
  // leases on parent-directory prefixes and serve stat/open/readdir from the
  // grant snapshot with zero coordination messages until the lease expires
  // or a mutation revokes it.
  LeaseManager* leases = nullptr;
  VirtualDuration lease_ttl = 0;
  // At most this many leased prefixes per agent; beyond it the least
  // recently used lease is dropped locally (the server copy just expires).
  size_t lease_max_prefixes = 16;
  // After a revocation, leave the prefix on the anchored path this long —
  // write-hot directories would otherwise thrash grant/revoke.
  VirtualDuration lease_holdoff = FromMillis(1000);
};

class MetadataService {
 public:
  // `coord` may be null only in non-sharing mode. `storage` persists the PNS
  // object (it is file data as far as the cloud is concerned).
  MetadataService(Environment* env, CoordinationService* coord,
                  StorageService* storage, std::string user,
                  MetadataServiceOptions options);
  ~MetadataService();

  // Loads the PNS at mount time (locks it against a second session of the
  // same user when a coordination service is available).
  Status Mount();
  Status Unmount();

  Result<FileMetadata> Get(const std::string& path);
  Status Put(const FileMetadata& metadata);
  Status Create(const FileMetadata& metadata);  // fails if the path exists
  Status Remove(const std::string& path);
  Result<std::vector<FileMetadata>> ListDir(const std::string& path);
  Status RenameSubtree(const std::string& from, const std::string& to);

  // Tombstones: data units orphaned by unlink, awaiting garbage collection.
  Status AddTombstone(const std::string& object_id);
  Result<std::vector<std::string>> ListTombstones();
  Status RemoveTombstone(const std::string& object_id);
  // Asynchronous variant: the garbage collector overlaps one object's
  // tombstone-removal coordination round with the next object's cloud
  // deletes. PNS-local tombstones complete inline (ready future).
  Future<Status> RemoveTombstoneAsync(const std::string& object_id);

  // Moves a PNS entry into the coordination service when a file becomes
  // shared (and back when all grants are revoked). No-ops without PNS.
  Status PromoteToShared(const FileMetadata& metadata);
  Status DemoteToPrivate(const FileMetadata& metadata);

  // Grants/revokes coordination-level access to a shared entry.
  Status GrantEntry(const std::string& path, const std::string& grantee,
                    bool read, bool write);

  // Drops expired cache entries; exposed so tests can force expiration.
  void InvalidateCache(const std::string& path);

  // Snapshot of all PNS entries (garbage collector input).
  std::vector<FileMetadata> PnsEntries();

  // Persists the PNS object to the cloud and refreshes the PNS tuple. Called
  // by the agent's background uploader after private-file updates. Flushes
  // are serialized: concurrent close chains each flush the whole (global)
  // PNS, and the tuple write is last-writer-wins, so an unserialized slow
  // flush could land after a newer one and regress the durable PNS.
  Status FlushPns();

  // True if this entry is (or would be) stored privately in the PNS.
  bool IsPrivateEntry(const FileMetadata& metadata);

  // Refreshes only the local short-term cache (used by the non-blocking mode
  // so the writer observes its own close immediately, before the background
  // coordination update completes).
  void CacheLocally(const FileMetadata& metadata);

  // Write-credit serving (DESIGN.md "Lease-delegated caching"): while this
  // agent holds the path's write lock — including a lingering hold — no
  // other client can commit a write, so the agent's own last published
  // metadata is the newest and reads of it need no coordination round.
  // `valid_until` is the lock's conservative lease bound (LockService::
  // HeldUntil, same virtual clock the server expires with); past it the pin
  // stops serving. The lock service's on_release hook must call UnpinOwned
  // the moment the hold ends for real.
  void PinOwned(const FileMetadata& metadata, VirtualTime valid_until);
  void UnpinOwned(const std::string& path);

  bool using_pns() const { return options_.use_pns || options_.non_sharing; }
  const std::string& user() const { return user_; }

  // Experiment counters.
  uint64_t coord_reads() const { return coord_reads_; }
  uint64_t cache_hits() const { return cache_hits_; }
  uint64_t lease_hits() const { return lease_hits_; }
  uint64_t lease_grants() const { return lease_grants_; }
  uint64_t pinned_hits() const { return pinned_hits_; }

 private:
  struct CachedEntry {
    FileMetadata metadata;
    VirtualTime fetched_at = 0;
  };

  // A granted read lease: the snapshot of every coordination entry under
  // `entries`'s prefix, served locally until expiry or revocation. A path
  // covered by a live lease but absent from the snapshot is authoritatively
  // absent from the coordination service (negative caching) — the grant
  // returned the whole prefix.
  struct LeasedPrefix {
    uint64_t epoch = 0;
    VirtualTime expires_at = 0;
    VirtualTime last_used = 0;
    std::map<std::string, FileMetadata> entries;  // keyed by path
  };

  bool InPns(const std::string& path);
  Result<FileMetadata> GetFromCoord(const std::string& path);
  std::string PnsObjectId() const { return "pns-" + user_; }

  bool LeasesEnabled() const {
    return options_.leases != nullptr && options_.lease_ttl > 0 &&
           coord_ != nullptr && !options_.non_sharing;
  }
  // The prefix a lease for `path`'s parent directory covers ("m:<dir>/").
  static std::string LeasePrefixFor(const std::string& path);
  // Requires mu_. Returns the live lease covering metadata key `mkey`
  // (touching its LRU stamp), or nullptr.
  LeasedPrefix* FindCoveringLease(const std::string& mkey);
  // Acquires (or renews) the lease for `prefix` through the ordered path and
  // installs the grant snapshot. Fails without side effects if a revocation
  // raced the grant, if grants are suspended (chaos window) or if the prefix
  // is in post-revocation holdoff.
  Status AcquireLeaseFor(const std::string& prefix);
  // LeaseManager revocation sink (runs before the revoking mutation acks).
  void OnLeaseRevoked(const std::string& prefix);

  // Cross-partition rename (partitioned coordination plane). A subtree's
  // metadata tuples hash across partitions, so the atomic single-partition
  // rename trigger cannot move them; instead the move commits through
  // durable records in the coordination service itself:
  //
  //   1. prepare  — intent record (from, to) on the SOURCE subtree's
  //                 partition; any session of the user can replay from it.
  //   2. import   — every exported source entry (value+version+ACL) is
  //                 installed at its destination key, idempotently.
  //   3. commit   — marker on the DESTINATION's partition: the move is
  //                 decided; only source-side deletes remain.
  //   4. retire   — delete source keys, the commit marker, the intent.
  //
  // A crash at any point leaves a replayable state: before the commit
  // marker every source entry is still exported and re-imported (imports
  // are idempotent); after it, only the remaining deletes run. Mount()
  // replays this user's outstanding intents.
  Status CrossPartitionRename(const std::string& from, const std::string& to);
  // Phases 2-4 (everything after the prepare record): shared by the fresh
  // rename and crash-recovery replay. kNotFound = nothing to move. When
  // `mutated` is non-null it is set once the protocol has issued any
  // mutating command — a failure before that point left nothing to replay.
  Status ExecuteRenameIntent(const std::string& from, const std::string& to,
                             bool* mutated = nullptr);
  Status ReplayRenameIntents();
  bool UsesPartitionedCoord() const {
    return coord_ != nullptr && !options_.non_sharing &&
           coord_->partition_count() > 1;
  }

  Environment* env_;
  CoordinationService* coord_;
  StorageService* storage_;
  std::string user_;
  MetadataServiceOptions options_;

  std::mutex mu_;
  // Held across a whole FlushPns (snapshot -> cloud push -> tuple write);
  // acquired before mu_, never the other way around.
  std::mutex flush_mu_;
  std::map<std::string, CachedEntry> cache_;
  // The agent's own in-flight close updates (non-blocking mode): authoritative
  // until the background coordination update completes, unlike the TTL cache.
  std::map<std::string, FileMetadata> local_overrides_;
  // Write-credit pins (PinOwned): published-while-locked entries, served
  // locally until the lock's conservative lease bound or UnpinOwned.
  struct PinnedEntry {
    FileMetadata metadata;
    VirtualTime valid_until = 0;
  };
  std::map<std::string, PinnedEntry> pinned_;
  PrivateNameSpace pns_;
  bool pns_loaded_ = false;
  uint64_t pns_lock_token_ = 0;

  // Post-revocation backoff for one prefix. A write-hot directory (e.g. a
  // log directory under steady appends) revokes every lease granted on it
  // almost immediately; re-granting at a fixed cadence turns the lease plane
  // into pure overhead (each grant is an ordered round, scattered across
  // every partition). The penalty doubles on each revocation that cost this
  // client a live lease or an in-flight grant — 1x, 2x, 4x the base holdoff,
  // capped at 4x — so a mutation-heavy prefix quickly stops being leased
  // (its continuing losses keep the holdoff refreshed), yet recovers within
  // a few base periods of the writes stopping. The penalty resets once the
  // prefix has been quiet for a lease TTL past the last holdoff.
  struct LeaseHoldoff {
    VirtualTime until = 0;
    uint32_t penalty = 1;
  };

  // Lease-delegated caching state (all under mu_ except the counters).
  std::map<std::string, LeasedPrefix> leases_;          // by key prefix
  std::map<std::string, LeaseHoldoff> lease_holdoff_;   // prefix -> backoff
  // Prefixes with a grant round in flight: concurrent misses on the same
  // prefix fall through to the anchored read instead of stacking duplicate
  // ordered grant commands.
  std::set<std::string> lease_grants_in_flight_;
  // Bumped by every revocation notice. A grant in flight across a bump is
  // discarded (it may predate the revoking mutation) — but only if one of
  // the logged revocations overlaps the granted prefix; a busy unrelated
  // prefix must not starve grants elsewhere. The log is bounded: when it no
  // longer reaches back to the grant's start, the check is conservative
  // (discard).
  uint64_t lease_revocation_gen_ = 0;
  std::deque<std::pair<uint64_t, std::string>> lease_revocation_log_;
  uint64_t lease_holder_id_ = 0;

  uint64_t coord_reads_ = 0;
  uint64_t cache_hits_ = 0;
  uint64_t lease_hits_ = 0;
  uint64_t lease_grants_ = 0;
  uint64_t pinned_hits_ = 0;
};

}  // namespace scfs

#endif  // SCFS_SCFS_METADATA_SERVICE_H_
