// MetadataService: the SCFS agent's local service for file metadata (paper
// §2.5.1) with two features central to the evaluation:
//
//   * a short-term metadata cache (default 500 ms expiration) absorbing the
//     bursts of stat/getattr calls applications issue per high-level action
//     (Figure 10a shows the system collapsing without it);
//   * Private Name Spaces (§2.7): metadata of non-shared files lives in one
//     cloud-stored object per user instead of one coordination tuple per
//     file, shrinking coordination-service state and traffic (Figure 10b).
//
// Shared entries live in the coordination service (the consistency anchor for
// both metadata and, via the content hash they carry, file data).

#ifndef SCFS_SCFS_METADATA_SERVICE_H_
#define SCFS_SCFS_METADATA_SERVICE_H_

#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "src/common/future.h"
#include "src/coord/coordination_service.h"
#include "src/scfs/metadata.h"
#include "src/scfs/storage_service.h"
#include "src/sim/environment.h"

namespace scfs {

struct MetadataServiceOptions {
  VirtualDuration cache_ttl = FromMillis(500);
  bool use_pns = false;        // Private Name Spaces enabled
  bool non_sharing = false;    // no coordination service at all (SCFS-*-NS)
  // Lock-owner identity of this agent session. Locks must be per-session —
  // two machines logged in as the same user still conflict (the PNS lock
  // exists precisely for that case). Defaults to the user name if empty.
  std::string session;
};

class MetadataService {
 public:
  // `coord` may be null only in non-sharing mode. `storage` persists the PNS
  // object (it is file data as far as the cloud is concerned).
  MetadataService(Environment* env, CoordinationService* coord,
                  StorageService* storage, std::string user,
                  MetadataServiceOptions options);

  // Loads the PNS at mount time (locks it against a second session of the
  // same user when a coordination service is available).
  Status Mount();
  Status Unmount();

  Result<FileMetadata> Get(const std::string& path);
  Status Put(const FileMetadata& metadata);
  Status Create(const FileMetadata& metadata);  // fails if the path exists
  Status Remove(const std::string& path);
  Result<std::vector<FileMetadata>> ListDir(const std::string& path);
  Status RenameSubtree(const std::string& from, const std::string& to);

  // Tombstones: data units orphaned by unlink, awaiting garbage collection.
  Status AddTombstone(const std::string& object_id);
  Result<std::vector<std::string>> ListTombstones();
  Status RemoveTombstone(const std::string& object_id);
  // Asynchronous variant: the garbage collector overlaps one object's
  // tombstone-removal coordination round with the next object's cloud
  // deletes. PNS-local tombstones complete inline (ready future).
  Future<Status> RemoveTombstoneAsync(const std::string& object_id);

  // Moves a PNS entry into the coordination service when a file becomes
  // shared (and back when all grants are revoked). No-ops without PNS.
  Status PromoteToShared(const FileMetadata& metadata);
  Status DemoteToPrivate(const FileMetadata& metadata);

  // Grants/revokes coordination-level access to a shared entry.
  Status GrantEntry(const std::string& path, const std::string& grantee,
                    bool read, bool write);

  // Drops expired cache entries; exposed so tests can force expiration.
  void InvalidateCache(const std::string& path);

  // Snapshot of all PNS entries (garbage collector input).
  std::vector<FileMetadata> PnsEntries();

  // Persists the PNS object to the cloud and refreshes the PNS tuple. Called
  // by the agent's background uploader after private-file updates. Flushes
  // are serialized: concurrent close chains each flush the whole (global)
  // PNS, and the tuple write is last-writer-wins, so an unserialized slow
  // flush could land after a newer one and regress the durable PNS.
  Status FlushPns();

  // True if this entry is (or would be) stored privately in the PNS.
  bool IsPrivateEntry(const FileMetadata& metadata);

  // Refreshes only the local short-term cache (used by the non-blocking mode
  // so the writer observes its own close immediately, before the background
  // coordination update completes).
  void CacheLocally(const FileMetadata& metadata);

  bool using_pns() const { return options_.use_pns || options_.non_sharing; }
  const std::string& user() const { return user_; }

  // Experiment counters.
  uint64_t coord_reads() const { return coord_reads_; }
  uint64_t cache_hits() const { return cache_hits_; }

 private:
  struct CachedEntry {
    FileMetadata metadata;
    VirtualTime fetched_at = 0;
  };

  bool InPns(const std::string& path);
  Result<FileMetadata> GetFromCoord(const std::string& path);
  std::string PnsObjectId() const { return "pns-" + user_; }

  // Cross-partition rename (partitioned coordination plane). A subtree's
  // metadata tuples hash across partitions, so the atomic single-partition
  // rename trigger cannot move them; instead the move commits through
  // durable records in the coordination service itself:
  //
  //   1. prepare  — intent record (from, to) on the SOURCE subtree's
  //                 partition; any session of the user can replay from it.
  //   2. import   — every exported source entry (value+version+ACL) is
  //                 installed at its destination key, idempotently.
  //   3. commit   — marker on the DESTINATION's partition: the move is
  //                 decided; only source-side deletes remain.
  //   4. retire   — delete source keys, the commit marker, the intent.
  //
  // A crash at any point leaves a replayable state: before the commit
  // marker every source entry is still exported and re-imported (imports
  // are idempotent); after it, only the remaining deletes run. Mount()
  // replays this user's outstanding intents.
  Status CrossPartitionRename(const std::string& from, const std::string& to);
  // Phases 2-4 (everything after the prepare record): shared by the fresh
  // rename and crash-recovery replay. kNotFound = nothing to move. When
  // `mutated` is non-null it is set once the protocol has issued any
  // mutating command — a failure before that point left nothing to replay.
  Status ExecuteRenameIntent(const std::string& from, const std::string& to,
                             bool* mutated = nullptr);
  Status ReplayRenameIntents();
  bool UsesPartitionedCoord() const {
    return coord_ != nullptr && !options_.non_sharing &&
           coord_->partition_count() > 1;
  }

  Environment* env_;
  CoordinationService* coord_;
  StorageService* storage_;
  std::string user_;
  MetadataServiceOptions options_;

  std::mutex mu_;
  // Held across a whole FlushPns (snapshot -> cloud push -> tuple write);
  // acquired before mu_, never the other way around.
  std::mutex flush_mu_;
  std::map<std::string, CachedEntry> cache_;
  // The agent's own in-flight close updates (non-blocking mode): authoritative
  // until the background coordination update completes, unlike the TTL cache.
  std::map<std::string, FileMetadata> local_overrides_;
  PrivateNameSpace pns_;
  bool pns_loaded_ = false;
  uint64_t pns_lock_token_ = 0;

  uint64_t coord_reads_ = 0;
  uint64_t cache_hits_ = 0;
};

}  // namespace scfs

#endif  // SCFS_SCFS_METADATA_SERVICE_H_
