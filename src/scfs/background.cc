#include "src/scfs/background.h"

#include "src/sim/environment.h"

namespace scfs {

BackgroundUploader::BackgroundUploader() : worker_([this] { Loop(); }) {}

BackgroundUploader::~BackgroundUploader() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  if (worker_.joinable()) {
    worker_.join();
  }
}

void BackgroundUploader::Enqueue(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void BackgroundUploader::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  drained_cv_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

size_t BackgroundUploader::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size() + in_flight_;
}

VirtualDuration BackgroundUploader::total_charged() const {
  return total_charged_.load(std::memory_order_relaxed);
}

void BackgroundUploader::Loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // shutdown with empty queue
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    Environment::ResetThreadCharged();
    task();
    total_charged_.fetch_add(Environment::ThreadCharged(),
                             std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
    }
    drained_cv_.notify_all();
  }
}

}  // namespace scfs
