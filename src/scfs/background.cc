#include "src/scfs/background.h"

#include "src/common/executor.h"
#include "src/sim/environment.h"

namespace scfs {

BackgroundUploader::BackgroundUploader(BackgroundUploaderOptions options)
    : options_(options) {}

BackgroundUploader::~BackgroundUploader() { Drain(); }

Future<Status> BackgroundUploader::Enqueue(std::function<Status()> task,
                                           bool account_charge) {
  return Schedule(Future<Status>(), std::move(task), account_charge,
                  /*reserved=*/false);
}

Future<Status> BackgroundUploader::EnqueueAfter(Future<Status> dep,
                                                std::function<Status()> task,
                                                bool account_charge) {
  return Schedule(std::move(dep), std::move(task), account_charge,
                  /*reserved=*/false);
}

void BackgroundUploader::Reserve(size_t count) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this, count] {
    return pending_ + count <= options_.max_depth || pending_ == 0;
  });
  pending_ += count;
}

Future<Status> BackgroundUploader::EnqueueReserved(std::function<Status()> task,
                                                   bool account_charge) {
  return Schedule(Future<Status>(), std::move(task), account_charge,
                  /*reserved=*/true);
}

Future<Status> BackgroundUploader::EnqueueAfterReserved(
    Future<Status> dep, std::function<Status()> task, bool account_charge) {
  return Schedule(std::move(dep), std::move(task), account_charge,
                  /*reserved=*/true);
}

Future<Status> BackgroundUploader::Schedule(Future<Status> dep,
                                            std::function<Status()> task,
                                            bool account_charge,
                                            bool reserved) {
  Promise<Status> promise;
  Future<Status> future = promise.future();
  {
    // Bounded depth: block the producer, not the queue (reserved stages
    // were counted by Reserve already). In serialize mode the previous tail
    // becomes this stage's dependency atomically, so concurrent producers
    // cannot fork the chain.
    std::unique_lock<std::mutex> lock(mu_);
    if (!reserved) {
      cv_.wait(lock, [this] { return pending_ < options_.max_depth; });
      ++pending_;
    }
    if (options_.serialize) {
      if (!dep.valid()) {
        dep = tail_;
      } else if (tail_.valid()) {
        // An explicit dep must not fork the single FIFO lane: gate on both
        // the dep and the previous tail.
        dep = AsCompletion(WhenAll<Status>({dep, tail_}));
      }
      tail_ = future;
    }
  }

  auto run = [this, task = std::move(task), promise, account_charge] {
    Environment::ResetThreadCharged();
    Status status = task();
    VirtualDuration charged = Environment::ThreadCharged();
    if (account_charge) {
      total_charged_.fetch_add(charged, std::memory_order_relaxed);
    }
    promise.Set(std::move(status), charged);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --pending_;
      cv_.notify_all();
    }
  };

  if (!dep.valid()) {
    DefaultExecutor().Post(std::move(run));
  } else {
    // Start the stage once its predecessor finishes, whatever its status —
    // a failed upload still publishes metadata and releases the lock, as
    // the sequential worker did.
    dep.OnReady([run = std::move(run)](const Status&, VirtualDuration) {
      DefaultExecutor().Post(run);
    });
  }
  return future;
}

void BackgroundUploader::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return pending_ == 0; });
}

size_t BackgroundUploader::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_;
}

VirtualDuration BackgroundUploader::total_charged() const {
  return total_charged_.load(std::memory_order_relaxed);
}

}  // namespace scfs
