// BlobBackend: the pluggable storage backplane of the SCFS agent.
//
// The agent's storage service talks to one of these; the two provided
// implementations are the paper's two backends (Figure 5):
//   - SingleCloudBackend: Amazon S3-style single provider (SCFS-AWS). Value
//     objects are keyed id|hash, exactly as the consistency-anchor write
//     algorithm prescribes, so they are never overwritten and eventual
//     consistency only affects freshly created keys.
//   - DepSkyBackend: the cloud-of-clouds (SCFS-CoC), tolerating f arbitrary
//     provider faults with encryption, erasure codes and secret sharing.

#ifndef SCFS_SCFS_BLOB_BACKEND_H_
#define SCFS_SCFS_BLOB_BACKEND_H_

#include <memory>
#include <string>
#include <vector>

#include "src/cloud/object_store.h"
#include "src/common/bytes.h"
#include "src/common/executor.h"
#include "src/common/future.h"
#include "src/common/status.h"
#include "src/depsky/depsky.h"

namespace scfs {

// A grantee's accounts across the backend's clouds (one entry for a single
// cloud backend; one per provider for the CoC).
struct BackendGrant {
  std::vector<CanonicalId> cloud_ids;
  bool read = false;
  bool write = false;
};

struct BlobVersionInfo {
  std::string content_hash;
  uint64_t size = 0;
};

class BlobBackend {
 public:
  virtual ~BlobBackend() = default;

  // Stores a new immutable version of data unit `id` under `content_hash`
  // (hex SHA-1 of `data`), applying `grants` to the created objects. `data`
  // is a borrowed view, valid only for the duration of the call; the backend
  // copies it exactly where the wire format demands ownership.
  virtual Status WriteVersion(const std::string& id,
                              const std::string& content_hash,
                              ConstByteSpan data,
                              const std::vector<BackendGrant>& grants) = 0;

  // Reads the version with the given hash; NOT_FOUND while the version is not
  // yet visible (the consistency-anchor read loop retries).
  virtual Result<Bytes> ReadByHash(const std::string& id,
                                   const std::string& content_hash) = 0;

  // Reads the newest visible version (used only by private name spaces and
  // the non-sharing mode, which have no consistency anchor).
  virtual Result<Bytes> ReadLatest(const std::string& id) = 0;

  // Range read of a version. The default fetches the whole version and
  // slices; backends with a striped data plane (DepSkyBackend) fetch only the
  // stripe units overlapping the range. Reads past EOF are clamped.
  virtual Result<Bytes> ReadAt(const std::string& id,
                               const std::string& content_hash,
                               uint64_t offset, size_t length);

  // Probes and repairs the stored redundancy of one unit (see
  // DepSkyClient::ScrubUnit). Backends without background repair return a
  // default (all-healthy) report.
  virtual Result<DepSkyScrubReport> ScrubUnit(const std::string& id) {
    (void)id;
    return DepSkyScrubReport{};
  }

  // Versions oldest-to-newest (for the garbage collector's keep-last-V).
  virtual Result<std::vector<BlobVersionInfo>> ListVersions(
      const std::string& id) = 0;
  virtual Status DeleteVersionByHash(const std::string& id,
                                     const std::string& content_hash) = 0;
  virtual Status DeleteUnit(const std::string& id) = 0;

  // Applies a grant to all existing objects of the unit (setfacl step (i) of
  // paper §2.6).
  virtual Status SetGrant(const std::string& id,
                          const BackendGrant& grant) = 0;

  // Durability level of a completed cloud write (Table 1): 2 for a single
  // cloud, 3 for the cloud-of-clouds.
  virtual int durability_level() const = 0;

  // Number of clouds (for building BackendGrant::cloud_ids).
  virtual unsigned cloud_count() const = 0;

  // -- Asynchronous variants ------------------------------------------------
  //
  // The default adapters dispatch the blocking virtual on the shared
  // executor (both provided backends are internally locked, so concurrent
  // calls are safe); the returned future carries the producer's modelled
  // charge. Inside DepSkyBackend the call itself fans out shard PUTs and
  // quorum metadata reads through the async ObjectStore API, so a single
  // WriteVersionAsync overlaps across clouds *and* with the caller.
  //
  // Concrete backends must call async_ops_.AwaitIdle() first thing in their
  // destructor: the base subobject (and this tracker) is destroyed after the
  // derived members an in-flight task may still be using.

  // Takes the data by value: the asynchronous task must own the bytes it
  // uploads after the caller returns (callers that already hold an owning
  // buffer move it in; no extra copy happens).
  virtual Future<Status> WriteVersionAsync(
      const std::string& id, const std::string& content_hash, Bytes data,
      const std::vector<BackendGrant>& grants);
  virtual Future<Result<Bytes>> ReadByHashAsync(const std::string& id,
                                                const std::string& content_hash);

 protected:
  InFlightTracker async_ops_;
};

// ---------------------------------------------------------------------------

class SingleCloudBackend : public BlobBackend {
 public:
  SingleCloudBackend(ObjectStore* store, CloudCredentials creds)
      : store_(store), creds_(std::move(creds)) {}
  ~SingleCloudBackend() override { async_ops_.AwaitIdle(); }

  Status WriteVersion(const std::string& id, const std::string& content_hash,
                      ConstByteSpan data,
                      const std::vector<BackendGrant>& grants) override;
  Result<Bytes> ReadByHash(const std::string& id,
                           const std::string& content_hash) override;
  Result<Bytes> ReadLatest(const std::string& id) override;
  Result<std::vector<BlobVersionInfo>> ListVersions(
      const std::string& id) override;
  Status DeleteVersionByHash(const std::string& id,
                             const std::string& content_hash) override;
  Status DeleteUnit(const std::string& id) override;
  Status SetGrant(const std::string& id, const BackendGrant& grant) override;
  int durability_level() const override { return 2; }
  unsigned cloud_count() const override { return 1; }

 private:
  // Key layout: "du/<id>/<hash>" — value objects are keyed id|hash exactly as
  // the consistency-anchor write prescribes, so they are never overwritten.
  std::string Prefix(const std::string& id) const { return "du/" + id + "/"; }
  std::string VersionKey(const std::string& id, const std::string& hash) const {
    return Prefix(id) + hash;
  }

  ObjectStore* store_;
  CloudCredentials creds_;
};

class DepSkyBackend : public BlobBackend {
 public:
  explicit DepSkyBackend(std::shared_ptr<DepSkyClient> client)
      : client_(std::move(client)) {}
  ~DepSkyBackend() override { async_ops_.AwaitIdle(); }

  Status WriteVersion(const std::string& id, const std::string& content_hash,
                      ConstByteSpan data,
                      const std::vector<BackendGrant>& grants) override;
  Result<Bytes> ReadByHash(const std::string& id,
                           const std::string& content_hash) override;
  Result<Bytes> ReadLatest(const std::string& id) override;
  Result<std::vector<BlobVersionInfo>> ListVersions(
      const std::string& id) override;
  Status DeleteVersionByHash(const std::string& id,
                             const std::string& content_hash) override;
  Status DeleteUnit(const std::string& id) override;
  Status SetGrant(const std::string& id, const BackendGrant& grant) override;
  Result<Bytes> ReadAt(const std::string& id, const std::string& content_hash,
                       uint64_t offset, size_t length) override;
  Result<DepSkyScrubReport> ScrubUnit(const std::string& id) override;
  int durability_level() const override { return 3; }
  unsigned cloud_count() const override { return client_->cloud_count(); }

 private:
  std::shared_ptr<DepSkyClient> client_;
};

}  // namespace scfs

#endif  // SCFS_SCFS_BLOB_BACKEND_H_
