#include "src/scfs/lock_service.h"

namespace scfs {

Status LockService::Acquire(const std::string& path) {
  if (coord_ == nullptr) {
    return OkStatus();
  }
  // The coordination-service lock is re-entrant per client, so re-acquiring
  // refreshes the lease and returns the same token.
  ASSIGN_OR_RETURN(CoordLock lock,
                   coord_->TryLock(user_, LockKey(path), options_.lease));
  std::lock_guard<std::mutex> guard(mu_);
  Held& held = held_[path];
  held.token = lock.token;
  held.refcount++;
  return OkStatus();
}

Status LockService::Release(const std::string& path) {
  if (coord_ == nullptr) {
    return OkStatus();
  }
  uint64_t token = 0;
  {
    std::lock_guard<std::mutex> guard(mu_);
    auto it = held_.find(path);
    if (it == held_.end()) {
      return NotFoundError("lock not held: " + path);
    }
    if (--it->second.refcount > 0) {
      return OkStatus();  // still referenced by an in-flight upload/open
    }
    token = it->second.token;
    held_.erase(it);
  }
  Status status = coord_->Unlock(user_, LockKey(path), token);
  if (status.code() == ErrorCode::kNotFound) {
    // The ephemeral lease already expired (exactly what leases are for when
    // a client disappears); releasing an expired lock is benign.
    return OkStatus();
  }
  return status;
}

Status LockService::Renew(const std::string& path) {
  if (coord_ == nullptr) {
    return OkStatus();
  }
  uint64_t token = 0;
  {
    std::lock_guard<std::mutex> guard(mu_);
    auto it = held_.find(path);
    if (it == held_.end()) {
      return NotFoundError("lock not held: " + path);
    }
    token = it->second.token;
  }
  return coord_->RenewLock(user_, LockKey(path), token, options_.lease);
}

Future<Status> LockService::RenewAsync(const std::string& path) {
  if (coord_ == nullptr) {
    return Future<Status>::Ready(OkStatus());
  }
  uint64_t token = 0;
  {
    std::lock_guard<std::mutex> guard(mu_);
    auto it = held_.find(path);
    if (it == held_.end()) {
      return Future<Status>::Ready(NotFoundError("lock not held: " + path));
    }
    token = it->second.token;
  }
  return coord_->RenewLockAsync(user_, LockKey(path), token, options_.lease);
}

bool LockService::Holds(const std::string& path) {
  std::lock_guard<std::mutex> guard(mu_);
  return held_.count(path) > 0;
}

}  // namespace scfs
