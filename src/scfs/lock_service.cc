#include "src/scfs/lock_service.h"

namespace scfs {

Status LockService::Acquire(const std::string& path) {
  if (coord_ == nullptr) {
    return OkStatus();
  }
  const std::string key = LockKey(path);
  uint64_t token = 0;
  bool reclaimed = false;
  bool was_lingering = false;
  bool need_renew = false;
  {
    std::lock_guard<std::mutex> guard(mu_);
    auto it = held_.find(path);
    if (it != held_.end()) {
      was_lingering = it->second.lingering;
      it->second.lingering = false;
      it->second.refcount++;
      token = it->second.token;
      reclaimed = true;
      // Renew-on-demand: only when less than half the lease remains. The
      // steady-state reclaim costs zero coordination messages.
      need_renew = it->second.expires_at <
                   env_->Now() + options_.lease / 2;
      if (!need_renew) {
        ++reclaim_hits_;
      }
    }
  }
  if (reclaimed) {
    if (was_lingering && LingerEnabled()) {
      // Stop offering the lock to contenders; a racing RequestLockRelease
      // that already popped the broker entry sees refcount > 0 and declines.
      options_.leases->UnregisterLingering(key);
    }
    if (!need_renew) {
      return OkStatus();
    }
    Status renewed = coord_->RenewLock(user_, key, token, options_.lease);
    if (renewed.ok()) {
      std::lock_guard<std::mutex> guard(mu_);
      auto it = held_.find(path);
      if (it != held_.end()) {
        it->second.expires_at = env_->Now() + options_.lease;
      }
      return OkStatus();
    }
    // kNotFound: the server lease expired while the lock lingered (the
    // crash backstop); fall through to a fresh TryLock, keeping the
    // refcount this Acquire already took.
    if (renewed.code() != ErrorCode::kNotFound) {
      bool dropped = false;
      {
        std::lock_guard<std::mutex> guard(mu_);
        auto it = held_.find(path);
        if (it != held_.end() && --it->second.refcount <= 0) {
          held_.erase(it);
          dropped = true;
        }
      }
      if (dropped && options_.on_release) {
        options_.on_release(path);
      }
      return renewed;
    }
  }
  auto lock = coord_->TryLock(user_, key, options_.lease);
  if (!lock.ok() && lock.status().code() == ErrorCode::kBusy &&
      LingerEnabled()) {
    // The holder may be another mount in this deployment lingering on the
    // lock; ask it to release for real and retry once.
    if (options_.leases->RequestLockRelease(key)) {
      lock = coord_->TryLock(user_, key, options_.lease);
    }
  }
  if (!lock.ok()) {
    bool dropped = false;
    if (reclaimed) {
      std::lock_guard<std::mutex> guard(mu_);
      auto it = held_.find(path);
      if (it != held_.end() && --it->second.refcount <= 0) {
        held_.erase(it);
        dropped = true;
      }
    }
    if (dropped && options_.on_release) {
      options_.on_release(path);
    }
    return lock.status();
  }
  std::lock_guard<std::mutex> guard(mu_);
  Held& held = held_[path];
  held.token = lock->token;
  if (!reclaimed) {
    held.refcount++;
  }
  held.lingering = false;
  held.expires_at = env_->Now() + options_.lease;
  return OkStatus();
}

Status LockService::Release(const std::string& path) {
  if (coord_ == nullptr) {
    return OkStatus();
  }
  uint64_t token = 0;
  {
    std::lock_guard<std::mutex> guard(mu_);
    auto it = held_.find(path);
    if (it == held_.end()) {
      return NotFoundError("lock not held: " + path);
    }
    if (--it->second.refcount > 0) {
      return OkStatus();  // still referenced by an in-flight upload/open
    }
    if (LingerEnabled()) {
      // Keep the coordination lock: the next Acquire reclaims it for free.
      // The server-side lease is the backstop if this agent disappears.
      it->second.lingering = true;
      token = 0;
    } else {
      token = it->second.token;
      held_.erase(it);
    }
  }
  if (LingerEnabled()) {
    options_.leases->RegisterLingering(
        LockKey(path), [this, path] { return TryReleaseLingering(path); });
    return OkStatus();
  }
  Status status = coord_->Unlock(user_, LockKey(path), token);
  if (options_.on_release) {
    options_.on_release(path);
  }
  if (status.code() == ErrorCode::kNotFound) {
    // The ephemeral lease already expired (exactly what leases are for when
    // a client disappears); releasing an expired lock is benign.
    return OkStatus();
  }
  return status;
}

bool LockService::TryReleaseLingering(const std::string& path) {
  uint64_t token = 0;
  {
    std::lock_guard<std::mutex> guard(mu_);
    auto it = held_.find(path);
    if (it == held_.end()) {
      return true;  // already gone (server lease expired and entry dropped)
    }
    if (!it->second.lingering || it->second.refcount > 0) {
      return false;  // reclaimed by a local Acquire since the offer
    }
    token = it->second.token;
    held_.erase(it);
  }
  // Tear down lock-backed local state BEFORE the contender can acquire: once
  // the unlock commits, the next writer may publish immediately, and a pin
  // still serving our last publish would violate read-after-ack.
  if (options_.on_release) {
    options_.on_release(path);
  }
  Status status = coord_->Unlock(user_, LockKey(path), token);
  return status.ok() || status.code() == ErrorCode::kNotFound;
}

Status LockService::Renew(const std::string& path) {
  return RenewAsync(path).Get();
}

Future<Status> LockService::RenewAsync(const std::string& path) {
  if (coord_ == nullptr) {
    return Future<Status>::Ready(OkStatus());
  }
  uint64_t token = 0;
  {
    std::lock_guard<std::mutex> guard(mu_);
    auto it = held_.find(path);
    if (it == held_.end()) {
      return Future<Status>::Ready(NotFoundError("lock not held: " + path));
    }
    token = it->second.token;
    if (LingerEnabled() &&
        it->second.expires_at >= env_->Now() + options_.lease / 2) {
      // Renew-on-demand: more than half the lease remains, skip the round.
      return Future<Status>::Ready(OkStatus());
    }
  }
  Promise<Status> promise;
  coord_->RenewLockAsync(user_, LockKey(path), token, options_.lease)
      .OnReady([this, promise, path](const Status& status,
                                     VirtualDuration charge) {
        if (status.ok()) {
          std::lock_guard<std::mutex> guard(mu_);
          auto it = held_.find(path);
          if (it != held_.end()) {
            it->second.expires_at = env_->Now() + options_.lease;
          }
        }
        promise.Set(status, charge);
      });
  return promise.future();
}

bool LockService::Holds(const std::string& path) {
  std::lock_guard<std::mutex> guard(mu_);
  auto it = held_.find(path);
  return it != held_.end() && !it->second.lingering;
}

VirtualTime LockService::HeldUntil(const std::string& path) {
  if (coord_ == nullptr) {
    return 0;
  }
  std::lock_guard<std::mutex> guard(mu_);
  auto it = held_.find(path);
  return it != held_.end() ? it->second.expires_at : 0;
}

}  // namespace scfs
