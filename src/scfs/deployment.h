// Deployment: wires up a complete SCFS installation — the simulated storage
// clouds, the coordination service and per-user SCFS agents — for the two
// backends of the paper (Figure 5):
//
//   kAws  Amazon S3 as storage + DepSpace on one EC2 VM as coordination
//   kCoc  four storage clouds behind DepSky + DepSpace replicated with
//         BFT-SMaRt over four computing clouds (f = 1 byzantine)
//
// This is the top-level public API: examples and benchmarks create a
// Deployment, mount agents for users, and use the returned fsapi::FileSystem.

#ifndef SCFS_SCFS_DEPLOYMENT_H_
#define SCFS_SCFS_DEPLOYMENT_H_

#include <memory>
#include <string>
#include <vector>

#include "src/cloud/providers.h"
#include "src/coord/lease.h"
#include "src/coord/local_coordination.h"
#include "src/depsky/depsky.h"
#include "src/coord/partitioned_coordination.h"
#include "src/coord/smr.h"
#include "src/scfs/file_system.h"

namespace scfs {

enum class ScfsBackendKind { kAws, kCoc };

struct DeploymentOptions {
  ScfsBackendKind backend = ScfsBackendKind::kCoc;
  // Zero latency, zero consistency windows, single-replica coordination —
  // for semantic tests where timing is irrelevant.
  bool zero_latency = false;
  unsigned f = 1;
  // Coordination-plane partitions (kCoc only). 1 constructs the single
  // SmrCluster exactly as before — byte-identical behavior to the
  // unsharded deployment; N > 1 shards the tuple keys over N independent
  // SMR clusters behind PartitionedCoordination (metadata renames then use
  // the cross-partition intent-record protocol). Ignored for kAws and
  // zero-latency deployments, which run a single local server.
  unsigned coord_partitions = 1;
  // Ordering-pipeline bounds for the (replicated/partitioned) coordination
  // plane; 0 keeps the SmrConfig defaults. Real BFT deployments cap both
  // the consensus window and the per-instance batch (crypto budget), and
  // saturation experiments — the scenario engine's knee sweeps and the
  // hot-partition skew demo — need a finite per-partition capacity to push
  // against; the default deep pipeline never saturates at benchable client
  // counts. Ignored for kAws and zero-latency deployments.
  unsigned coord_max_batch = 0;
  unsigned coord_max_inflight_instances = 0;
  // Leader batch-accumulation delay (0 keeps the SmrConfig default of
  // proposing immediately): partial batches are held up to this long so
  // concurrent requests ride one consensus instance. Ignored for kAws and
  // zero-latency deployments.
  VirtualDuration coord_batch_accumulation_delay = 0;
  // Fixed one-way replica<->replica link latency override (0 keeps the
  // default ~10 ms wide-area model). With coord_max_inflight_instances=1
  // this pins the ordering capacity of a partition to
  // ~max_batch/(2*link) commands per second on the virtual clock —
  // independent of host CPU — which is what the scenario engine's
  // hot-partition skew demo pushes against. Ignored for kAws and
  // zero-latency deployments.
  VirtualDuration coord_replica_link_one_way = 0;
  // Elastic coordination plane (kCoc with coord_partitions > 1 only; see
  // DESIGN.md "Elastic partitioning" and OPERATIONS.md). Spare partitions
  // are extra SMR clusters owning no hash range — the split controller's
  // migration targets. coord_auto_split starts the load-aware controller:
  // every coord_split_window it folds windowed per-partition ops/s deltas
  // into EWMAs and splits the hot partition's range onto a spare once its
  // share exceeds coord_split_hot_share (manual Deployment::SplitPartition
  // and MergePartitions work either way). coord_merge_cold_share > 0
  // additionally merges a cooled partition back once the plane grew past
  // its initial size. Lease revocation on migrated keys is wired to the
  // deployment's LeaseManager automatically.
  unsigned coord_spare_partitions = 0;
  bool coord_auto_split = false;
  double coord_split_hot_share = 0.5;
  VirtualDuration coord_split_window = 2 * kSecond;
  double coord_split_min_total_ops_s = 1.0;
  double coord_merge_cold_share = 0.0;
  // Striped large-file data plane (kCoc only, see OPERATIONS.md): writes
  // larger than stripe_threshold are cut into stripe_unit_size units with at
  // most stripe_inflight units in flight. 0 keeps the DepSkyConfig defaults;
  // stripe_threshold = SIZE_MAX effectively disables striping.
  size_t stripe_threshold = 0;
  size_t stripe_unit_size = 0;
  unsigned stripe_inflight = 0;
  // Lease-delegated metadata caching (DESIGN.md "Lease-delegated caching",
  // OPERATIONS.md knobs). lease_ttl > 0 wraps the coordination service in
  // LeasedCoordination and hands every mounted agent read leases on
  // directory prefixes plus lingering write locks; 0 disables the layer
  // entirely (byte-identical behavior to a pre-lease deployment).
  VirtualDuration lease_ttl = 0;
  size_t lease_max_prefixes = 16;
  uint64_t seed = 42;
};

class Deployment {
 public:
  static std::unique_ptr<Deployment> Create(Environment* env,
                                            DeploymentOptions options);
  ~Deployment();

  // Creates, mounts and returns an SCFS agent for `user`. Fields of
  // `options` that identify the user/backend are filled in by Mount.
  Result<std::unique_ptr<ScfsFileSystem>> Mount(const std::string& user,
                                                ScfsOptions options);

  // Per-user canonical account ids, in cloud order.
  std::vector<CanonicalId> CloudIdsFor(const std::string& user) const;

  SimulatedCloud* cloud(unsigned index) { return clouds_[index].get(); }
  unsigned cloud_count() const { return static_cast<unsigned>(clouds_.size()); }
  // Per-mount DepSky clients (kCoc backends only, in mount order) — the
  // fault benches aggregate their self-healing telemetry.
  const std::vector<std::shared_ptr<DepSkyClient>>& depsky_clients() const {
    return depsky_clients_;
  }
  CoordinationService* coord() { return coord_.get(); }
  LocalCoordination* local_coord() { return local_coord_; }
  ReplicatedCoordination* replicated_coord() { return replicated_coord_; }
  PartitionedCoordination* partitioned_coord() { return partitioned_coord_; }
  // Always present; only consulted by agents when lease_ttl > 0. The chaos
  // plane's lease-expiry fault windows suspend grants through it.
  LeaseManager* lease_manager() { return &lease_manager_; }

  // Manual elastic repartitioning (coord_partitions > 1 only;
  // kNotSupported otherwise). Operators split a hot partition's range onto
  // a spare cluster or fold a cooled partition back without remounting;
  // the automatic controller uses exactly the same entry points.
  Status SplitPartition(unsigned src);
  Status MergePartitions(unsigned src, unsigned dst);

  // Bytes shipped from the coordination service to clients so far (drives
  // the coordination share of Figure 11(b) costs).
  uint64_t CoordReplyBytes() const;
  const DeploymentOptions& options() const { return options_; }
  Environment* env() { return env_; }

  // Aggregate usage cost (USD) across all clouds for one user.
  UsageTotals CloudUsage(const std::string& user) const;
  uint64_t StoredBytes(const std::string& user) const;

 private:
  Deployment() = default;

  Environment* env_ = nullptr;
  DeploymentOptions options_;
  std::vector<std::unique_ptr<SimulatedCloud>> clouds_;
  LeaseManager lease_manager_;
  std::unique_ptr<CoordinationService> coord_;
  LocalCoordination* local_coord_ = nullptr;  // set for kAws / zero-latency
  ReplicatedCoordination* replicated_coord_ = nullptr;  // kCoc, 1 partition
  PartitionedCoordination* partitioned_coord_ = nullptr;  // kCoc, N > 1
  // Backends must outlive the agents that use them.
  std::vector<std::unique_ptr<BlobBackend>> backends_;
  std::vector<std::shared_ptr<DepSkyClient>> depsky_clients_;
};

}  // namespace scfs

#endif  // SCFS_SCFS_DEPLOYMENT_H_
