#include "src/scfs/scrubber.h"

#include <vector>

namespace scfs {

void BackgroundScrubber::Track(const std::string& id) {
  std::lock_guard<std::mutex> lock(mu_);
  units_.insert(id);
}

void BackgroundScrubber::Untrack(const std::string& id) {
  std::lock_guard<std::mutex> lock(mu_);
  units_.erase(id);
}

size_t BackgroundScrubber::tracked() const {
  std::lock_guard<std::mutex> lock(mu_);
  return units_.size();
}

DepSkyScrubReport BackgroundScrubber::ScrubTracked(Status* first_error) {
  // Snapshot the unit set: Track/Untrack during a pass affect the next one.
  std::vector<std::string> units;
  {
    std::lock_guard<std::mutex> lock(mu_);
    units.assign(units_.begin(), units_.end());
  }

  DepSkyScrubReport pass;
  uint64_t scrubbed = 0;
  for (const auto& id : units) {
    Result<DepSkyScrubReport> report = backend_->ScrubUnit(id);
    if (!report.ok()) {
      // A unit deleted between snapshot and scrub is not an error; anything
      // else is recorded once but does not stop the pass — the remaining
      // units still deserve repair.
      if (report.status().code() != ErrorCode::kNotFound &&
          first_error->ok()) {
        *first_error = report.status();
      }
      continue;
    }
    ++scrubbed;
    pass.versions_checked += report->versions_checked;
    pass.objects_checked += report->objects_checked;
    pass.objects_missing += report->objects_missing;
    pass.objects_repaired += report->objects_repaired;
    pass.objects_relocated += report->objects_relocated;
    pass.repair_failures += report->repair_failures;
    pass.fully_redundant = pass.fully_redundant && report->fully_redundant;
  }

  std::lock_guard<std::mutex> lock(mu_);
  stats_.passes++;
  stats_.units_scrubbed += scrubbed;
  stats_.versions_checked += pass.versions_checked;
  stats_.objects_checked += pass.objects_checked;
  stats_.objects_missing += pass.objects_missing;
  stats_.objects_repaired += pass.objects_repaired;
  stats_.objects_relocated += pass.objects_relocated;
  stats_.repair_failures += pass.repair_failures;
  return pass;
}

Future<Status> BackgroundScrubber::SchedulePass() {
  return uploader_->Enqueue([this]() {
    Status first_error = OkStatus();
    (void)ScrubTracked(&first_error);
    return first_error;
  });
}

Result<DepSkyScrubReport> BackgroundScrubber::RunPassNow() {
  Status first_error = OkStatus();
  DepSkyScrubReport pass = ScrubTracked(&first_error);
  RETURN_IF_ERROR(first_error);
  return pass;
}

BackgroundScrubber::Stats BackgroundScrubber::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace scfs
