#include "src/scfs/storage_service.h"

#include <fstream>

#include "src/common/logging.h"
#include "src/common/rng.h"

namespace scfs {

namespace {
std::string SanitizeForFilename(const std::string& key) {
  std::string out;
  out.reserve(key.size());
  for (char c : key) {
    out.push_back((std::isalnum(static_cast<unsigned char>(c)) != 0 ||
                   c == '-' || c == '.')
                      ? c
                      : '_');
  }
  return out;
}
}  // namespace

StorageService::StorageService(Environment* env, BlobBackend* backend,
                               StorageServiceOptions options)
    : env_(env),
      backend_(backend),
      options_(options),
      memory_(options.memory_cache_bytes,
              [](const Bytes& data) { return data.size(); },
              [this](const std::string& key, Bytes&& data) {
                SpillToDisk(key, std::move(data));
              }),
      disk_index_(options.disk_cache_bytes, nullptr,
                  [this](const std::string& key, uint64_t&&) {
                    std::error_code ec;
                    std::filesystem::remove(
                        disk_dir_ / SanitizeForFilename(key), ec);
                  }) {
  if (options_.disk_cache_dir.empty()) {
    disk_dir_ = std::filesystem::temp_directory_path() /
                ("scfs-cache-" +
                 std::to_string(GlobalRng().NextU64() & 0xffffffffULL));
    owns_disk_dir_ = true;
  } else {
    disk_dir_ = options_.disk_cache_dir;
  }
  std::error_code ec;
  std::filesystem::create_directories(disk_dir_, ec);
}

StorageService::~StorageService() {
  async_ops_.AwaitIdle();
  if (owns_disk_dir_) {
    std::error_code ec;
    std::filesystem::remove_all(disk_dir_, ec);
  }
}

std::filesystem::path StorageService::DiskPath(const std::string& id,
                                               const std::string& hash) const {
  return disk_dir_ / SanitizeForFilename(CacheKey(id, hash));
}

// Eviction callback from the memory cache: the disk becomes a cache
// extension, as in the paper's open() path.
void StorageService::SpillToDisk(const std::string& key, Bytes&& data) {
  // key is id:hash; recover the halves for the disk path.
  size_t sep = key.rfind(':');
  if (sep == std::string::npos) {
    return;
  }
  WriteToDisk(key.substr(0, sep), key.substr(sep + 1), data);
}

void StorageService::WriteToDisk(const std::string& id,
                                 const std::string& hash, ConstByteSpan data) {
  std::ofstream out(DiskPath(id, hash), std::ios::binary | std::ios::trunc);
  if (!out) {
    SCFS_LOG(Warning) << "disk cache write failed for " << id;
    return;
  }
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  out.close();
  disk_index_.Put(CacheKey(id, hash), data.size());
}

Result<Bytes> StorageService::ReadFromDisk(const std::string& id,
                                           const std::string& hash) {
  if (!disk_index_.Contains(CacheKey(id, hash))) {
    return NotFoundError("not in disk cache");
  }
  std::ifstream in(DiskPath(id, hash), std::ios::binary | std::ios::ate);
  if (!in) {
    disk_index_.Erase(CacheKey(id, hash));
    return NotFoundError("disk cache entry vanished");
  }
  std::streamsize size = in.tellg();
  in.seekg(0);
  Bytes data(static_cast<size_t>(size));
  in.read(reinterpret_cast<char*>(data.data()), size);
  return data;
}

bool StorageService::HasLocal(const std::string& id, const std::string& hash) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string key = CacheKey(id, hash);
  return memory_.Contains(key) || disk_index_.Contains(key);
}

void StorageService::PutMemory(const std::string& id, const std::string& hash,
                               Bytes data) {
  std::lock_guard<std::mutex> lock(mu_);
  memory_.Put(CacheKey(id, hash), std::move(data));
}

Status StorageService::FlushToDisk(const std::string& id,
                                   const std::string& hash,
                                   ConstByteSpan data) {
  env_->Sleep(options_.disk_write_latency);
  std::lock_guard<std::mutex> lock(mu_);
  WriteToDisk(id, hash, data);
  return OkStatus();
}

Result<Bytes> StorageService::Fetch(const std::string& id,
                                    const std::string& hash) {
  if (hash.empty()) {
    return Bytes{};  // a never-written file is empty
  }
  const std::string key = CacheKey(id, hash);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto hit = memory_.Get(key);
    if (hit.has_value()) {
      ++memory_hits_;
      return std::move(*hit);
    }
    auto from_disk = ReadFromDisk(id, hash);
    if (from_disk.ok()) {
      ++disk_hits_;
      memory_.Put(key, *from_disk);
      env_->Sleep(options_.disk_read_latency);
      return from_disk;
    }
  }

  // Consistency-anchor read loop (Figure 3, r2): keep asking the eventually
  // consistent backend until the anchored version becomes visible.
  for (int attempt = 0; attempt < options_.max_read_retries; ++attempt) {
    auto data = backend_->ReadByHash(id, hash);
    if (data.ok()) {
      std::lock_guard<std::mutex> lock(mu_);
      ++cloud_reads_;
      WriteToDisk(id, hash, *data);
      memory_.Put(key, *data);
      return data;
    }
    if (data.status().code() != ErrorCode::kNotFound) {
      return data.status();
    }
    VirtualDuration delay;
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++read_retries_;
      delay = options_.read_backoff.Delay(attempt, retry_rng_);
    }
    env_->Sleep(delay);
  }
  return TimeoutError("version " + hash + " of " + id +
                      " never became visible");
}

Status StorageService::Push(const std::string& id, const std::string& hash,
                            ConstByteSpan data,
                            const std::vector<BackendGrant>& grants) {
  // Local disk first (cheap), then the cloud. A completed Push gives
  // durability level 2 (single cloud) or 3 (cloud-of-clouds).
  RETURN_IF_ERROR(FlushToDisk(id, hash, data));
  {
    std::lock_guard<std::mutex> lock(mu_);
    memory_.Put(CacheKey(id, hash), CopyToBytes(data));
  }
  return backend_->WriteVersion(id, hash, data, grants);
}

Future<Status> StorageService::PushAsync(const std::string& id,
                                         const std::string& hash, Bytes data,
                                         std::vector<BackendGrant> grants) {
  return SubmitTracked(
      &async_ops_,
      [this, id, hash, data = std::move(data), grants = std::move(grants)] {
        return Push(id, hash, data, grants);
      });
}

Future<Result<Bytes>> StorageService::PrefetchAsync(const std::string& id,
                                                    const std::string& hash) {
  return SubmitTracked(&async_ops_,
                       [this, id, hash] { return Fetch(id, hash); });
}

}  // namespace scfs
