// Systematic Reed-Solomon erasure coding over GF(2^8).
//
// RS(n, k): data is split into k shards; n-k parity shards are derived; any k
// of the n shards reconstruct the data. DepSky uses this with n = 3f+1 clouds
// and k = f+1, so each cloud stores ~|F|/(f+1) bytes instead of |F|.

#ifndef SCFS_CODEC_REED_SOLOMON_H_
#define SCFS_CODEC_REED_SOLOMON_H_

#include <optional>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/status.h"
#include "src/math/matrix.h"

namespace scfs {

class ReedSolomon {
 public:
  // n = total shards, k = data shards; 1 <= k <= n <= 255.
  ReedSolomon(unsigned n, unsigned k);

  unsigned n() const { return n_; }
  unsigned k() const { return k_; }

  // Encodes equally-sized data shards into n shards (the first k are the
  // inputs verbatim; systematic code). All shards share the input size.
  Result<std::vector<Bytes>> EncodeShards(
      const std::vector<Bytes>& data_shards) const;

  // Reconstructs the k data shards from any subset of >= k shards. `shards`
  // has n slots; missing shards are nullopt.
  Result<std::vector<Bytes>> DecodeShards(
      const std::vector<std::optional<Bytes>>& shards) const;

 private:
  unsigned n_;
  unsigned k_;
  GfMatrix encode_matrix_;
};

// File-level convenience API: pads and splits a byte string into k equal
// shards (with an embedded length header), then erasure-codes to n shards.
class ErasureCodec {
 public:
  ErasureCodec(unsigned n, unsigned k) : rs_(n, k) {}

  Result<std::vector<Bytes>> Encode(const Bytes& data) const;
  // Any k of the n shards (others nullopt) reproduce the original bytes.
  Result<Bytes> Decode(const std::vector<std::optional<Bytes>>& shards) const;

  unsigned n() const { return rs_.n(); }
  unsigned k() const { return rs_.k(); }

  // Size of each shard for a payload of `data_size` bytes.
  size_t ShardSize(size_t data_size) const;

 private:
  ReedSolomon rs_;
};

}  // namespace scfs

#endif  // SCFS_CODEC_REED_SOLOMON_H_
