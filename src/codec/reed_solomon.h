// Systematic Reed-Solomon erasure coding over GF(2^8).
//
// RS(n, k): data is split into k shards; n-k parity shards are derived; any k
// of the n shards reconstruct the data. DepSky uses this with n = 3f+1 clouds
// and k = f+1, so each cloud stores ~|F|/(f+1) bytes instead of |F|.
//
// The encode/decode cores are span-based and striped: all n shards of one
// encode live in a single contiguous ShardArena (the k systematic shards
// alias the framed payload — they are never sliced out or copied), and the
// GF(2^8) row kernels walk the encode matrix once per cache-resident stripe
// with per-entry nibble tables built once per matrix row.

#ifndef SCFS_CODEC_REED_SOLOMON_H_
#define SCFS_CODEC_REED_SOLOMON_H_

#include <atomic>
#include <mutex>
#include <optional>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/status.h"
#include "src/math/matrix.h"

namespace scfs {

// One contiguous buffer holding all n shards of an encode, laid out
// [shard 0 | shard 1 | ... | shard n-1]. The first k shards are the framed
// payload (8-byte length header + payload + zero padding): systematic shards
// are views into that frame, so building them costs nothing.
class ShardArena {
 public:
  ShardArena() = default;
  ShardArena(unsigned n, unsigned k, size_t shard_size, size_t payload_size)
      : buffer_(static_cast<size_t>(n) * shard_size, 0),
        n_(n),
        k_(k),
        shard_size_(shard_size),
        payload_size_(payload_size) {}

  // Rebinds a recycled buffer (ArenaPool reuse) to a new geometry. The buffer
  // grows if needed, but recycled bytes are NOT re-zeroed — the pool-aware
  // ErasureCodec::PrepareArena re-zeroes only what the framing depends on.
  ShardArena(Bytes buffer, unsigned n, unsigned k, size_t shard_size,
             size_t payload_size)
      : buffer_(std::move(buffer)),
        n_(n),
        k_(k),
        shard_size_(shard_size),
        payload_size_(payload_size) {
    buffer_.resize(static_cast<size_t>(n) * shard_size);
  }

  // Surrenders the underlying buffer for recycling; leaves the arena empty.
  Bytes TakeBuffer() {
    n_ = 0;
    k_ = 0;
    shard_size_ = 0;
    payload_size_ = 0;
    return std::move(buffer_);
  }

  unsigned n() const { return n_; }
  unsigned k() const { return k_; }
  size_t shard_size() const { return shard_size_; }
  size_t payload_size() const { return payload_size_; }

  ConstByteSpan shard(unsigned i) const {
    return ConstByteSpan(buffer_.data() + static_cast<size_t>(i) * shard_size_,
                         shard_size_);
  }
  ByteSpan mutable_shard(unsigned i) {
    return ByteSpan(buffer_.data() + static_cast<size_t>(i) * shard_size_,
                    shard_size_);
  }

  // The k data shards as one contiguous region (the frame).
  ConstByteSpan data_region() const {
    return ConstByteSpan(buffer_.data(), static_cast<size_t>(k_) * shard_size_);
  }
  ByteSpan mutable_data_region() {
    return ByteSpan(buffer_.data(), static_cast<size_t>(k_) * shard_size_);
  }
  // The payload bytes inside the frame (after the 8-byte length header).
  ByteSpan payload() {
    return ByteSpan(buffer_.data() + 8, payload_size_);
  }
  // The n-k parity shards as one contiguous region.
  ByteSpan parity_region() {
    return ByteSpan(buffer_.data() + static_cast<size_t>(k_) * shard_size_,
                    static_cast<size_t>(n_ - k_) * shard_size_);
  }

 private:
  Bytes buffer_;
  unsigned n_ = 0;
  unsigned k_ = 0;
  size_t shard_size_ = 0;
  size_t payload_size_ = 0;
};

// Thread-safe recycler of ShardArena buffers. A monolithic 256 MB PUT
// allocates (and page-faults in) a fresh 512 MB zeroed arena every call; the
// striped write path instead cycles `stripe_inflight` pooled arenas of one
// unit each, so steady-state encode touches only cache-warm memory. Acquire
// reshapes a retired buffer to the requested geometry; only the framing
// padding is re-zeroed (by the pool-aware PrepareArena), since payload and
// parity are fully overwritten by the producer and EncodeParity.
class ArenaPool {
 public:
  explicit ArenaPool(size_t max_retained = 8) : max_retained_(max_retained) {}

  ShardArena Acquire(unsigned n, unsigned k, size_t shard_size,
                     size_t payload_size);
  // Retires an arena's buffer for reuse; beyond max_retained it is freed.
  void Release(ShardArena&& arena);

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  size_t retained() const;

 private:
  const size_t max_retained_;
  mutable std::mutex mu_;
  std::vector<Bytes> free_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
};

class ReedSolomon {
 public:
  // n = total shards, k = data shards; 1 <= k <= n <= 255.
  ReedSolomon(unsigned n, unsigned k);

  unsigned n() const { return n_; }
  unsigned k() const { return k_; }

  // Core encode: derives the n-k parity shards from k contiguous data shards.
  // `data` holds k * shard_size bytes (shard i at offset i * shard_size);
  // `parity` holds (n-k) * shard_size bytes and is overwritten.
  void EncodeParity(ConstByteSpan data, size_t shard_size,
                    ByteSpan parity) const;

  // Core decode: reconstructs the k data shards into `out` (k * shard_size
  // contiguous bytes). `shards` has n slots (missing ones empty); surviving
  // systematic shards are copied into place once, missing rows are rebuilt by
  // striped accumulation reading the survivors' spans in place.
  Status DecodeInto(const std::vector<std::optional<ConstByteSpan>>& shards,
                    size_t shard_size, ByteSpan out) const;

  // Encodes equally-sized data shards into n shards (the first k are the
  // inputs verbatim; systematic code). All shards share the input size.
  Result<std::vector<Bytes>> EncodeShards(
      const std::vector<Bytes>& data_shards) const;

  // Reconstructs the k data shards from any subset of >= k shards. `shards`
  // has n slots; missing shards are nullopt.
  Result<std::vector<Bytes>> DecodeShards(
      const std::vector<std::optional<Bytes>>& shards) const;

 private:
  unsigned n_;
  unsigned k_;
  GfMatrix encode_matrix_;
};

// File-level convenience API: frames a byte string (8-byte length header +
// padding) into k equal shards, then erasure-codes to n shards.
class ErasureCodec {
 public:
  ErasureCodec(unsigned n, unsigned k) : rs_(n, k) {}

  // Zero-copy encode pipeline, in two steps so producers (e.g. a stream
  // cipher) can write the payload straight into the frame:
  //   ShardArena arena = codec.PrepareArena(size);   // header+padding done
  //   fill arena.payload();                          // producer writes here
  //   codec.ComputeParity(&arena);                   // derive parity shards
  ShardArena PrepareArena(size_t payload_size) const;
  // Pool-aware variant: draws the buffer from `pool` (fresh allocation on
  // miss) and zeroes only the frame's padding tail instead of the whole
  // region. Null pool falls back to the plain variant.
  ShardArena PrepareArena(size_t payload_size, ArenaPool* pool) const;
  void ComputeParity(ShardArena* arena) const;

  // One-step arena encode for payloads that already exist contiguously
  // (copies the payload into the frame once, then computes parity).
  ShardArena EncodeToArena(ConstByteSpan data) const;

  // Legacy owning API: materializes each shard as its own buffer.
  Result<std::vector<Bytes>> Encode(const Bytes& data) const;

  // Any k of the n shards (others nullopt) reproduce the original bytes.
  // Reassembles into a single preallocated buffer; surviving systematic
  // shards are read in place (aliased), not staged through copies.
  Result<Bytes> Decode(const std::vector<std::optional<Bytes>>& shards) const;

  unsigned n() const { return rs_.n(); }
  unsigned k() const { return rs_.k(); }

  // Size of each shard for a payload of `data_size` bytes.
  size_t ShardSize(size_t data_size) const;

 private:
  ReedSolomon rs_;
};

}  // namespace scfs

#endif  // SCFS_CODEC_REED_SOLOMON_H_
