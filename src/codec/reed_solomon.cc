#include "src/codec/reed_solomon.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "src/math/gf256.h"

namespace scfs {

namespace {

// Stripe length for the multi-row accumulation kernels: inputs and outputs
// of one stripe stay cache-resident while every matrix entry is applied, so
// the payload streams through the cache hierarchy once per encode instead of
// once per matrix row.
constexpr size_t kStripeBytes = 16 * 1024;

// rows x cols matrix application: out[r] ^= sum_c matrix[r][c] * in[c], all
// rows/cols walked stripe by stripe. Nibble tables are built once per matrix
// entry, not per stripe. Outputs must be zeroed (or hold a partial sum the
// caller wants to accumulate onto).
void MulAddMatrixStriped(const uint8_t* const* inputs, uint8_t* const* outputs,
                         const uint8_t* matrix, unsigned rows, unsigned cols,
                         size_t shard_size) {
  std::vector<Gf256::MulTable> tables(static_cast<size_t>(rows) * cols);
  for (unsigned r = 0; r < rows; ++r) {
    for (unsigned c = 0; c < cols; ++c) {
      uint8_t scalar = matrix[r * cols + c];
      if (scalar > 1) {
        tables[r * cols + c] = Gf256::BuildMulTable(scalar);
      }
    }
  }
  for (size_t offset = 0; offset < shard_size; offset += kStripeBytes) {
    const size_t chunk = std::min(kStripeBytes, shard_size - offset);
    for (unsigned r = 0; r < rows; ++r) {
      uint8_t* out = outputs[r] + offset;
      for (unsigned c = 0; c < cols; ++c) {
        const uint8_t scalar = matrix[r * cols + c];
        if (scalar == 0) {
          continue;
        }
        const uint8_t* in = inputs[c] + offset;
        if (scalar == 1) {
          Gf256::AddRow(out, in, chunk);
        } else {
          Gf256::MulAddRow(out, in, tables[r * cols + c], chunk);
        }
      }
    }
  }
}

// Builds zero-copy views of the present shards and records the shard size
// (from the first present shard; DecodeInto validates the rest against it).
// Returns false if no shard is present.
bool BuildShardViews(const std::vector<std::optional<Bytes>>& shards,
                     size_t* shard_size,
                     std::vector<std::optional<ConstByteSpan>>* views) {
  *shard_size = 0;
  views->assign(shards.size(), std::nullopt);
  bool found = false;
  for (size_t i = 0; i < shards.size(); ++i) {
    if (shards[i].has_value()) {
      if (!found) {
        *shard_size = shards[i]->size();
        found = true;
      }
      (*views)[i] = ConstByteSpan(*shards[i]);
    }
  }
  return found;
}

}  // namespace

ShardArena ArenaPool::Acquire(unsigned n, unsigned k, size_t shard_size,
                              size_t payload_size) {
  Bytes buffer;
  bool reused = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!free_.empty()) {
      buffer = std::move(free_.back());
      free_.pop_back();
      reused = true;
    }
  }
  if (reused) {
    hits_.fetch_add(1, std::memory_order_relaxed);
  } else {
    misses_.fetch_add(1, std::memory_order_relaxed);
  }
  return ShardArena(std::move(buffer), n, k, shard_size, payload_size);
}

void ArenaPool::Release(ShardArena&& arena) {
  Bytes buffer = arena.TakeBuffer();
  if (buffer.empty()) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (free_.size() < max_retained_) {
    free_.push_back(std::move(buffer));
  }
}

size_t ArenaPool::retained() const {
  std::lock_guard<std::mutex> lock(mu_);
  return free_.size();
}

ReedSolomon::ReedSolomon(unsigned n, unsigned k)
    : n_(n), k_(k), encode_matrix_(GfMatrix::SystematicVandermonde(n, k)) {
  assert(k >= 1 && k <= n && n <= 255);
}

void ReedSolomon::EncodeParity(ConstByteSpan data, size_t shard_size,
                               ByteSpan parity) const {
  const unsigned parity_rows = n_ - k_;
  if (parity_rows == 0 || shard_size == 0) {
    return;
  }
  assert(data.size() == static_cast<size_t>(k_) * shard_size);
  assert(parity.size() == static_cast<size_t>(parity_rows) * shard_size);
  std::memset(parity.data(), 0, parity.size());

  std::vector<const uint8_t*> inputs(k_);
  for (unsigned c = 0; c < k_; ++c) {
    inputs[c] = data.data() + static_cast<size_t>(c) * shard_size;
  }
  std::vector<uint8_t*> outputs(parity_rows);
  for (unsigned r = 0; r < parity_rows; ++r) {
    outputs[r] = parity.data() + static_cast<size_t>(r) * shard_size;
  }
  // The parity block of the systematic encode matrix, rows k..n-1.
  MulAddMatrixStriped(inputs.data(), outputs.data(), encode_matrix_.Row(k_),
                      parity_rows, k_, shard_size);
}

Result<std::vector<Bytes>> ReedSolomon::EncodeShards(
    const std::vector<Bytes>& data_shards) const {
  if (data_shards.size() != k_) {
    return InvalidArgumentError("expected k data shards");
  }
  const size_t shard_size = data_shards[0].size();
  for (const auto& shard : data_shards) {
    if (shard.size() != shard_size) {
      return InvalidArgumentError("data shards must be equally sized");
    }
  }
  std::vector<Bytes> out(n_);
  std::vector<const uint8_t*> inputs(k_);
  for (unsigned i = 0; i < k_; ++i) {
    out[i] = data_shards[i];  // systematic
    inputs[i] = data_shards[i].data();
  }
  std::vector<uint8_t*> outputs(n_ - k_);
  for (unsigned r = k_; r < n_; ++r) {
    out[r].assign(shard_size, 0);
    outputs[r - k_] = out[r].data();
  }
  if (n_ > k_ && shard_size > 0) {
    MulAddMatrixStriped(inputs.data(), outputs.data(), encode_matrix_.Row(k_),
                        n_ - k_, k_, shard_size);
  }
  return out;
}

Status ReedSolomon::DecodeInto(
    const std::vector<std::optional<ConstByteSpan>>& shards, size_t shard_size,
    ByteSpan out) const {
  if (shards.size() != n_) {
    return InvalidArgumentError("expected n shard slots");
  }
  if (out.size() != static_cast<size_t>(k_) * shard_size) {
    return InvalidArgumentError("output buffer must hold k shards");
  }
  // Choose the k survivors with the lowest indices; every present systematic
  // shard sorts before any parity shard, so all of them get used.
  std::vector<unsigned> present;
  for (unsigned i = 0; i < n_ && present.size() < k_; ++i) {
    if (shards[i].has_value()) {
      if (shards[i]->size() != shard_size) {
        return InvalidArgumentError("shard size mismatch");
      }
      present.push_back(i);
    }
  }
  if (present.size() < k_) {
    return FailedPreconditionError("not enough shards to decode");
  }

  // Surviving systematic shards land in place with a single copy; collect the
  // rows that actually need reconstruction.
  std::vector<unsigned> missing;
  for (unsigned r = 0; r < k_; ++r) {
    if (shards[r].has_value()) {
      std::memcpy(out.data() + static_cast<size_t>(r) * shard_size,
                  shards[r]->data(), shard_size);
    } else {
      missing.push_back(r);
    }
  }
  if (missing.empty() || shard_size == 0) {
    return OkStatus();
  }

  GfMatrix sub = encode_matrix_.SelectRows(present);
  GfMatrix inverse(k_, k_);
  if (!sub.Invert(&inverse)) {
    return InternalError("encode submatrix singular");
  }

  // Missing rows only: out[r] = sum_c inverse[r][c] * survivor[c], reading
  // the survivors' bytes where they already are.
  std::vector<const uint8_t*> inputs(k_);
  for (unsigned c = 0; c < k_; ++c) {
    inputs[c] = shards[present[c]]->data();
  }
  std::vector<uint8_t*> outputs(missing.size());
  std::vector<uint8_t> matrix(missing.size() * k_);
  for (size_t m = 0; m < missing.size(); ++m) {
    outputs[m] = out.data() + static_cast<size_t>(missing[m]) * shard_size;
    std::memset(outputs[m], 0, shard_size);
    for (unsigned c = 0; c < k_; ++c) {
      matrix[m * k_ + c] = inverse.At(missing[m], c);
    }
  }
  MulAddMatrixStriped(inputs.data(), outputs.data(), matrix.data(),
                      static_cast<unsigned>(missing.size()), k_, shard_size);
  return OkStatus();
}

Result<std::vector<Bytes>> ReedSolomon::DecodeShards(
    const std::vector<std::optional<Bytes>>& shards) const {
  if (shards.size() != n_) {
    return InvalidArgumentError("expected n shard slots");
  }
  size_t shard_size = 0;
  std::vector<std::optional<ConstByteSpan>> views;
  if (!BuildShardViews(shards, &shard_size, &views)) {
    return FailedPreconditionError("not enough shards to decode");
  }
  Bytes flat(static_cast<size_t>(k_) * shard_size);
  RETURN_IF_ERROR(DecodeInto(views, shard_size, ByteSpan(flat)));
  std::vector<Bytes> data(k_);
  for (unsigned r = 0; r < k_; ++r) {
    const uint8_t* begin = flat.data() + static_cast<size_t>(r) * shard_size;
    data[r].assign(begin, begin + shard_size);
  }
  return data;
}

size_t ErasureCodec::ShardSize(size_t data_size) const {
  // 8-byte length header, then padded to a multiple of k.
  size_t padded = data_size + 8;
  size_t k = rs_.k();
  size_t per_shard = (padded + k - 1) / k;
  return per_shard;
}

namespace {
// Frame header: big-endian payload length, written through the whole data
// region (for tiny payloads a single shard can be shorter than the header).
void WriteFrameHeader(ByteSpan frame, size_t payload_size) {
  uint64_t size = payload_size;
  for (int shift = 56, i = 0; shift >= 0; shift -= 8, ++i) {
    frame[static_cast<size_t>(i)] = static_cast<uint8_t>(size >> shift);
  }
}
}  // namespace

ShardArena ErasureCodec::PrepareArena(size_t payload_size) const {
  ShardArena arena(rs_.n(), rs_.k(), ShardSize(payload_size), payload_size);
  // Padding is already zero (fresh zero-filled buffer).
  WriteFrameHeader(arena.mutable_data_region(), payload_size);
  return arena;
}

ShardArena ErasureCodec::PrepareArena(size_t payload_size,
                                      ArenaPool* pool) const {
  if (pool == nullptr) {
    return PrepareArena(payload_size);
  }
  ShardArena arena =
      pool->Acquire(rs_.n(), rs_.k(), ShardSize(payload_size), payload_size);
  ByteSpan frame = arena.mutable_data_region();
  WriteFrameHeader(frame, payload_size);
  // A recycled buffer holds stale bytes: re-zero the frame's padding tail
  // (the only region the producer does not overwrite — payload is filled by
  // the caller, parity by EncodeParity).
  const size_t pad_begin = 8 + payload_size;
  if (pad_begin < frame.size()) {
    std::memset(frame.data() + pad_begin, 0, frame.size() - pad_begin);
  }
  return arena;
}

void ErasureCodec::ComputeParity(ShardArena* arena) const {
  rs_.EncodeParity(arena->data_region(), arena->shard_size(),
                   arena->parity_region());
}

ShardArena ErasureCodec::EncodeToArena(ConstByteSpan data) const {
  ShardArena arena = PrepareArena(data.size());
  if (!data.empty()) {
    std::memcpy(arena.payload().data(), data.data(), data.size());
  }
  ComputeParity(&arena);
  return arena;
}

Result<std::vector<Bytes>> ErasureCodec::Encode(const Bytes& data) const {
  ShardArena arena = EncodeToArena(data);
  std::vector<Bytes> out(arena.n());
  for (unsigned i = 0; i < arena.n(); ++i) {
    out[i] = CopyToBytes(arena.shard(i));
  }
  return out;
}

Result<Bytes> ErasureCodec::Decode(
    const std::vector<std::optional<Bytes>>& shards) const {
  if (shards.size() != rs_.n()) {
    return InvalidArgumentError("expected n shard slots");
  }
  size_t shard_size = 0;
  std::vector<std::optional<ConstByteSpan>> views;
  if (!BuildShardViews(shards, &shard_size, &views)) {
    return FailedPreconditionError("not enough shards to decode");
  }

  // Reassemble straight into one buffer: [header | payload | padding].
  Bytes framed(static_cast<size_t>(rs_.k()) * shard_size);
  RETURN_IF_ERROR(rs_.DecodeInto(views, shard_size, ByteSpan(framed)));

  ByteReader reader{ConstByteSpan(framed)};
  uint64_t size = 0;
  if (!reader.ReadU64(&size) || size > framed.size() - 8) {
    return CorruptionError("bad erasure frame header");
  }
  // Drop the header in place (memmove, no reallocation) and trim the padding.
  framed.erase(framed.begin(), framed.begin() + 8);
  framed.resize(size);
  return framed;
}

}  // namespace scfs
