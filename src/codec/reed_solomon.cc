#include "src/codec/reed_solomon.h"

#include <cassert>

#include "src/math/gf256.h"

namespace scfs {

ReedSolomon::ReedSolomon(unsigned n, unsigned k)
    : n_(n), k_(k), encode_matrix_(GfMatrix::SystematicVandermonde(n, k)) {
  assert(k >= 1 && k <= n && n <= 255);
}

Result<std::vector<Bytes>> ReedSolomon::EncodeShards(
    const std::vector<Bytes>& data_shards) const {
  if (data_shards.size() != k_) {
    return InvalidArgumentError("expected k data shards");
  }
  const size_t shard_size = data_shards[0].size();
  for (const auto& shard : data_shards) {
    if (shard.size() != shard_size) {
      return InvalidArgumentError("data shards must be equally sized");
    }
  }
  std::vector<Bytes> out(n_);
  for (unsigned row = 0; row < n_; ++row) {
    if (row < k_) {
      out[row] = data_shards[row];  // systematic
      continue;
    }
    out[row].assign(shard_size, 0);
    for (unsigned col = 0; col < k_; ++col) {
      Gf256::MulAddRow(out[row].data(), data_shards[col].data(),
                       encode_matrix_.At(row, col),
                       static_cast<unsigned>(shard_size));
    }
  }
  return out;
}

Result<std::vector<Bytes>> ReedSolomon::DecodeShards(
    const std::vector<std::optional<Bytes>>& shards) const {
  if (shards.size() != n_) {
    return InvalidArgumentError("expected n shard slots");
  }
  std::vector<unsigned> present;
  size_t shard_size = 0;
  for (unsigned i = 0; i < n_; ++i) {
    if (shards[i].has_value()) {
      if (present.empty()) {
        shard_size = shards[i]->size();
      } else if (shards[i]->size() != shard_size) {
        return InvalidArgumentError("shard size mismatch");
      }
      present.push_back(i);
      if (present.size() == k_) {
        break;
      }
    }
  }
  if (present.size() < k_) {
    return FailedPreconditionError("not enough shards to decode");
  }

  // Fast path: all k data shards survive.
  bool all_data = true;
  for (unsigned i = 0; i < k_; ++i) {
    if (present[i] != i) {
      all_data = false;
      break;
    }
  }
  std::vector<Bytes> data(k_);
  if (all_data) {
    for (unsigned i = 0; i < k_; ++i) {
      data[i] = *shards[i];
    }
    return data;
  }

  GfMatrix sub = encode_matrix_.SelectRows(present);
  GfMatrix inverse(k_, k_);
  if (!sub.Invert(&inverse)) {
    return InternalError("encode submatrix singular");
  }
  for (unsigned row = 0; row < k_; ++row) {
    data[row].assign(shard_size, 0);
    for (unsigned col = 0; col < k_; ++col) {
      Gf256::MulAddRow(data[row].data(), shards[present[col]]->data(),
                       inverse.At(row, col),
                       static_cast<unsigned>(shard_size));
    }
  }
  return data;
}

size_t ErasureCodec::ShardSize(size_t data_size) const {
  // 8-byte length header, then padded to a multiple of k.
  size_t padded = data_size + 8;
  size_t k = rs_.k();
  size_t per_shard = (padded + k - 1) / k;
  return per_shard;
}

Result<std::vector<Bytes>> ErasureCodec::Encode(const Bytes& data) const {
  const unsigned k = rs_.k();
  Bytes framed;
  framed.reserve(data.size() + 8);
  AppendU64(&framed, data.size());
  framed.insert(framed.end(), data.begin(), data.end());
  const size_t per_shard = ShardSize(data.size());
  framed.resize(per_shard * k, 0);

  std::vector<Bytes> data_shards(k);
  for (unsigned i = 0; i < k; ++i) {
    data_shards[i].assign(framed.begin() + i * per_shard,
                          framed.begin() + (i + 1) * per_shard);
  }
  return rs_.EncodeShards(data_shards);
}

Result<Bytes> ErasureCodec::Decode(
    const std::vector<std::optional<Bytes>>& shards) const {
  ASSIGN_OR_RETURN(std::vector<Bytes> data_shards, rs_.DecodeShards(shards));
  Bytes framed;
  for (const auto& shard : data_shards) {
    framed.insert(framed.end(), shard.begin(), shard.end());
  }
  ByteReader reader(framed);
  uint64_t size = 0;
  if (!reader.ReadU64(&size) || size > framed.size() - 8) {
    return CorruptionError("bad erasure frame header");
  }
  return Bytes(framed.begin() + 8, framed.begin() + 8 + size);
}

}  // namespace scfs
