// Arithmetic over GF(2^8) with the primitive polynomial x^8+x^4+x^3+x^2+1
// (0x11d), the field used by both the Reed-Solomon erasure coder and the
// Shamir secret-sharing scheme.
//
// The row kernels are the data plane's innermost loop: RS encode/decode runs
// them once per (matrix entry, stripe). `MulAddRow` is table-driven — two
// 16-entry nibble tables per scalar (product = lo[x & 0xf] ^ hi[x >> 4]),
// built once per matrix row and applied branchlessly in word-wide strides;
// on x86 the same tables feed a PSHUFB (SSSE3/AVX2) kernel selected once at
// startup. The seed byte-at-a-time exp/log kernel is retained as
// `MulAddRowReference` so tests can assert byte-identical output and the
// benchmark can measure the speedup against it.

#ifndef SCFS_MATH_GF256_H_
#define SCFS_MATH_GF256_H_

#include <cstddef>
#include <cstdint>

namespace scfs {

class Gf256 {
 public:
  static uint8_t Add(uint8_t a, uint8_t b) { return a ^ b; }
  static uint8_t Sub(uint8_t a, uint8_t b) { return a ^ b; }
  static uint8_t Mul(uint8_t a, uint8_t b);
  static uint8_t Div(uint8_t a, uint8_t b);  // b must be non-zero
  static uint8_t Inv(uint8_t a);             // a must be non-zero
  static uint8_t Pow(uint8_t a, unsigned e);
  // Generator element (2) raised to the i-th power, i in [0, 254].
  static uint8_t Exp(unsigned i);
  static unsigned Log(uint8_t a);  // a must be non-zero

  // Per-scalar multiplication table: scalar * x = lo[x & 0xf] ^ hi[x >> 4].
  // 32 bytes — two cache lines at most, L1-resident for a whole encode row.
  struct MulTable {
    uint8_t lo[16];
    uint8_t hi[16];
  };
  static MulTable BuildMulTable(uint8_t scalar);

  // out[i] ^= scalar * in[i] over GF(2^8). The scalar variant builds the
  // nibble table itself; callers applying one scalar to many stripes (the RS
  // striped kernels) build the table once and use the MulTable overload.
  static void MulAddRow(uint8_t* out, const uint8_t* in, uint8_t scalar,
                        size_t len);
  static void MulAddRow(uint8_t* out, const uint8_t* in, const MulTable& table,
                        size_t len);

  // out[i] ^= in[i]: the scalar == 1 fast path, XORed in 8-byte words.
  static void AddRow(uint8_t* out, const uint8_t* in, size_t len);

  // Seed kernel (byte-at-a-time exp/log lookups with a per-byte branch).
  // Kept as the correctness oracle and benchmark baseline; not used on the
  // data plane.
  static void MulAddRowReference(uint8_t* out, const uint8_t* in,
                                 uint8_t scalar, size_t len);
};

}  // namespace scfs

#endif  // SCFS_MATH_GF256_H_
