// Arithmetic over GF(2^8) with the primitive polynomial x^8+x^4+x^3+x^2+1
// (0x11d), the field used by both the Reed-Solomon erasure coder and the
// Shamir secret-sharing scheme.

#ifndef SCFS_MATH_GF256_H_
#define SCFS_MATH_GF256_H_

#include <cstdint>

namespace scfs {

class Gf256 {
 public:
  static uint8_t Add(uint8_t a, uint8_t b) { return a ^ b; }
  static uint8_t Sub(uint8_t a, uint8_t b) { return a ^ b; }
  static uint8_t Mul(uint8_t a, uint8_t b);
  static uint8_t Div(uint8_t a, uint8_t b);  // b must be non-zero
  static uint8_t Inv(uint8_t a);             // a must be non-zero
  static uint8_t Pow(uint8_t a, unsigned e);
  // Generator element (2) raised to the i-th power, i in [0, 254].
  static uint8_t Exp(unsigned i);
  static unsigned Log(uint8_t a);  // a must be non-zero

  // out[i] += scalar * in[i] over GF(2^8), vectorizable hot loop for RS.
  static void MulAddRow(uint8_t* out, const uint8_t* in, uint8_t scalar,
                        unsigned len);
};

}  // namespace scfs

#endif  // SCFS_MATH_GF256_H_
