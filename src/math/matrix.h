// Small dense matrices over GF(2^8): construction, multiplication and
// Gaussian-elimination inversion. Used by the Reed-Solomon decoder and by
// Lagrange-free Shamir reconstruction tests.

#ifndef SCFS_MATH_MATRIX_H_
#define SCFS_MATH_MATRIX_H_

#include <cstdint>
#include <vector>

namespace scfs {

class GfMatrix {
 public:
  GfMatrix(unsigned rows, unsigned cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0) {}

  static GfMatrix Identity(unsigned n);
  // Systematic Vandermonde-derived encoding matrix for RS(n, k): the first k
  // rows form the identity, so data shards equal the original data.
  static GfMatrix SystematicVandermonde(unsigned n, unsigned k);

  uint8_t At(unsigned r, unsigned c) const { return data_[r * cols_ + c]; }
  void Set(unsigned r, unsigned c, uint8_t v) { data_[r * cols_ + c] = v; }

  unsigned rows() const { return rows_; }
  unsigned cols() const { return cols_; }

  GfMatrix Mul(const GfMatrix& other) const;
  // Returns the submatrix made of the given rows.
  GfMatrix SelectRows(const std::vector<unsigned>& rows) const;
  // Gauss-Jordan inversion; returns false if singular.
  bool Invert(GfMatrix* out) const;

  const uint8_t* Row(unsigned r) const { return &data_[r * cols_]; }

 private:
  unsigned rows_;
  unsigned cols_;
  std::vector<uint8_t> data_;
};

}  // namespace scfs

#endif  // SCFS_MATH_MATRIX_H_
