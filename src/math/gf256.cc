#include "src/math/gf256.h"

#include <cassert>

#if defined(__x86_64__) || defined(__i386__)
#define SCFS_GF256_X86 1
#include <immintrin.h>
#endif

namespace scfs {

namespace {
struct Tables {
  uint8_t exp[512];   // doubled so Mul can skip a modulo
  unsigned log[256];

  Tables() {
    unsigned x = 1;
    for (unsigned i = 0; i < 255; ++i) {
      exp[i] = static_cast<uint8_t>(x);
      log[x] = i;
      x <<= 1;
      if (x & 0x100) {
        x ^= 0x11d;
      }
    }
    for (unsigned i = 255; i < 512; ++i) {
      exp[i] = exp[i - 255];
    }
    log[0] = 0;  // never read; keeps the table defined
  }
};

const Tables& T() {
  static const Tables tables;
  return tables;
}
}  // namespace

uint8_t Gf256::Mul(uint8_t a, uint8_t b) {
  if (a == 0 || b == 0) {
    return 0;
  }
  return T().exp[T().log[a] + T().log[b]];
}

uint8_t Gf256::Div(uint8_t a, uint8_t b) {
  assert(b != 0);
  if (a == 0) {
    return 0;
  }
  return T().exp[T().log[a] + 255 - T().log[b]];
}

uint8_t Gf256::Inv(uint8_t a) {
  assert(a != 0);
  return T().exp[255 - T().log[a]];
}

uint8_t Gf256::Pow(uint8_t a, unsigned e) {
  if (e == 0) {
    return 1;
  }
  if (a == 0) {
    return 0;
  }
  // The multiplicative group has order 255, so reduce the exponent first;
  // log[a] * e would wrap for e within a factor ~2^24 of UINT_MAX.
  return T().exp[(T().log[a] * (e % 255u)) % 255u];
}

uint8_t Gf256::Exp(unsigned i) { return T().exp[i % 255]; }

unsigned Gf256::Log(uint8_t a) {
  assert(a != 0);
  return T().log[a];
}

Gf256::MulTable Gf256::BuildMulTable(uint8_t scalar) {
  MulTable t;
  for (unsigned x = 0; x < 16; ++x) {
    t.lo[x] = Mul(scalar, static_cast<uint8_t>(x));
    t.hi[x] = Mul(scalar, static_cast<uint8_t>(x << 4));
  }
  return t;
}

namespace {

using RowKernel = void (*)(uint8_t*, const uint8_t*, const Gf256::MulTable&,
                           size_t);

void MulAddRowPortable(uint8_t* out, const uint8_t* in,
                       const Gf256::MulTable& t, size_t len) {
  size_t i = 0;
  for (; i + 8 <= len; i += 8) {
    out[i + 0] ^= t.lo[in[i + 0] & 0x0f] ^ t.hi[in[i + 0] >> 4];
    out[i + 1] ^= t.lo[in[i + 1] & 0x0f] ^ t.hi[in[i + 1] >> 4];
    out[i + 2] ^= t.lo[in[i + 2] & 0x0f] ^ t.hi[in[i + 2] >> 4];
    out[i + 3] ^= t.lo[in[i + 3] & 0x0f] ^ t.hi[in[i + 3] >> 4];
    out[i + 4] ^= t.lo[in[i + 4] & 0x0f] ^ t.hi[in[i + 4] >> 4];
    out[i + 5] ^= t.lo[in[i + 5] & 0x0f] ^ t.hi[in[i + 5] >> 4];
    out[i + 6] ^= t.lo[in[i + 6] & 0x0f] ^ t.hi[in[i + 6] >> 4];
    out[i + 7] ^= t.lo[in[i + 7] & 0x0f] ^ t.hi[in[i + 7] >> 4];
  }
  for (; i < len; ++i) {
    out[i] ^= t.lo[in[i] & 0x0f] ^ t.hi[in[i] >> 4];
  }
}

#ifdef SCFS_GF256_X86

__attribute__((target("ssse3"))) void MulAddRowSsse3(
    uint8_t* out, const uint8_t* in, const Gf256::MulTable& t, size_t len) {
  const __m128i lo = _mm_loadu_si128(reinterpret_cast<const __m128i*>(t.lo));
  const __m128i hi = _mm_loadu_si128(reinterpret_cast<const __m128i*>(t.hi));
  const __m128i mask = _mm_set1_epi8(0x0f);
  size_t i = 0;
  for (; i + 16 <= len; i += 16) {
    __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + i));
    __m128i lon = _mm_and_si128(v, mask);
    __m128i hin = _mm_and_si128(_mm_srli_epi64(v, 4), mask);
    __m128i prod =
        _mm_xor_si128(_mm_shuffle_epi8(lo, lon), _mm_shuffle_epi8(hi, hin));
    __m128i o = _mm_loadu_si128(reinterpret_cast<const __m128i*>(out + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i),
                     _mm_xor_si128(o, prod));
  }
  if (i < len) {
    MulAddRowPortable(out + i, in + i, t, len - i);
  }
}

__attribute__((target("avx2"))) void MulAddRowAvx2(uint8_t* out,
                                                   const uint8_t* in,
                                                   const Gf256::MulTable& t,
                                                   size_t len) {
  const __m256i lo = _mm256_broadcastsi128_si256(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(t.lo)));
  const __m256i hi = _mm256_broadcastsi128_si256(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(t.hi)));
  const __m256i mask = _mm256_set1_epi8(0x0f);
  size_t i = 0;
  for (; i + 32 <= len; i += 32) {
    __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in + i));
    __m256i lon = _mm256_and_si256(v, mask);
    __m256i hin = _mm256_and_si256(_mm256_srli_epi64(v, 4), mask);
    __m256i prod = _mm256_xor_si256(_mm256_shuffle_epi8(lo, lon),
                                    _mm256_shuffle_epi8(hi, hin));
    __m256i o = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(out + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        _mm256_xor_si256(o, prod));
  }
  if (i < len) {
    MulAddRowPortable(out + i, in + i, t, len - i);
  }
}

#endif  // SCFS_GF256_X86

RowKernel PickRowKernel() {
#ifdef SCFS_GF256_X86
  if (__builtin_cpu_supports("avx2")) {
    return MulAddRowAvx2;
  }
  if (__builtin_cpu_supports("ssse3")) {
    return MulAddRowSsse3;
  }
#endif
  return MulAddRowPortable;
}

RowKernel CurrentRowKernel() {
  static const RowKernel kernel = PickRowKernel();
  return kernel;
}

}  // namespace

void Gf256::MulAddRow(uint8_t* out, const uint8_t* in, const MulTable& table,
                      size_t len) {
  CurrentRowKernel()(out, in, table, len);
}

void Gf256::MulAddRow(uint8_t* out, const uint8_t* in, uint8_t scalar,
                      size_t len) {
  if (scalar == 0) {
    return;
  }
  if (scalar == 1) {
    AddRow(out, in, len);
    return;
  }
  const MulTable table = BuildMulTable(scalar);
  CurrentRowKernel()(out, in, table, len);
}

void Gf256::AddRow(uint8_t* out, const uint8_t* in, size_t len) {
  size_t i = 0;
  for (; i + 8 <= len; i += 8) {
    uint64_t a;
    uint64_t b;
    __builtin_memcpy(&a, out + i, 8);
    __builtin_memcpy(&b, in + i, 8);
    a ^= b;
    __builtin_memcpy(out + i, &a, 8);
  }
  for (; i < len; ++i) {
    out[i] ^= in[i];
  }
}

void Gf256::MulAddRowReference(uint8_t* out, const uint8_t* in, uint8_t scalar,
                               size_t len) {
  if (scalar == 0) {
    return;
  }
  const unsigned ls = T().log[scalar];
  const uint8_t* exp = T().exp;
  const unsigned* log = T().log;
  for (size_t i = 0; i < len; ++i) {
    if (in[i] != 0) {
      out[i] ^= exp[ls + log[in[i]]];
    }
  }
}

}  // namespace scfs
