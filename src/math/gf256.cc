#include "src/math/gf256.h"

#include <cassert>

namespace scfs {

namespace {
struct Tables {
  uint8_t exp[512];   // doubled so Mul can skip a modulo
  unsigned log[256];

  Tables() {
    unsigned x = 1;
    for (unsigned i = 0; i < 255; ++i) {
      exp[i] = static_cast<uint8_t>(x);
      log[x] = i;
      x <<= 1;
      if (x & 0x100) {
        x ^= 0x11d;
      }
    }
    for (unsigned i = 255; i < 512; ++i) {
      exp[i] = exp[i - 255];
    }
    log[0] = 0;  // never read; keeps the table defined
  }
};

const Tables& T() {
  static const Tables tables;
  return tables;
}
}  // namespace

uint8_t Gf256::Mul(uint8_t a, uint8_t b) {
  if (a == 0 || b == 0) {
    return 0;
  }
  return T().exp[T().log[a] + T().log[b]];
}

uint8_t Gf256::Div(uint8_t a, uint8_t b) {
  assert(b != 0);
  if (a == 0) {
    return 0;
  }
  return T().exp[T().log[a] + 255 - T().log[b]];
}

uint8_t Gf256::Inv(uint8_t a) {
  assert(a != 0);
  return T().exp[255 - T().log[a]];
}

uint8_t Gf256::Pow(uint8_t a, unsigned e) {
  if (e == 0) {
    return 1;
  }
  if (a == 0) {
    return 0;
  }
  return T().exp[(T().log[a] * e) % 255];
}

uint8_t Gf256::Exp(unsigned i) { return T().exp[i % 255]; }

unsigned Gf256::Log(uint8_t a) {
  assert(a != 0);
  return T().log[a];
}

void Gf256::MulAddRow(uint8_t* out, const uint8_t* in, uint8_t scalar,
                      unsigned len) {
  if (scalar == 0) {
    return;
  }
  const unsigned ls = T().log[scalar];
  const uint8_t* exp = T().exp;
  const unsigned* log = T().log;
  for (unsigned i = 0; i < len; ++i) {
    if (in[i] != 0) {
      out[i] ^= exp[ls + log[in[i]]];
    }
  }
}

}  // namespace scfs
