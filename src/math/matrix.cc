#include "src/math/matrix.h"

#include <cassert>

#include "src/math/gf256.h"

namespace scfs {

GfMatrix GfMatrix::Identity(unsigned n) {
  GfMatrix m(n, n);
  for (unsigned i = 0; i < n; ++i) {
    m.Set(i, i, 1);
  }
  return m;
}

GfMatrix GfMatrix::SystematicVandermonde(unsigned n, unsigned k) {
  assert(n >= k && k > 0 && n <= 255);
  // Build the n x k Vandermonde matrix V[i][j] = (i+1)^j, then normalize its
  // top k x k block to the identity by multiplying with its inverse. The
  // result is systematic and any k rows remain linearly independent.
  GfMatrix vandermonde(n, k);
  for (unsigned i = 0; i < n; ++i) {
    for (unsigned j = 0; j < k; ++j) {
      vandermonde.Set(i, j, Gf256::Pow(static_cast<uint8_t>(i + 1), j));
    }
  }
  std::vector<unsigned> top(k);
  for (unsigned i = 0; i < k; ++i) {
    top[i] = i;
  }
  GfMatrix top_block = vandermonde.SelectRows(top);
  GfMatrix top_inverse(k, k);
  bool invertible = top_block.Invert(&top_inverse);
  assert(invertible);
  (void)invertible;
  return vandermonde.Mul(top_inverse);
}

GfMatrix GfMatrix::Mul(const GfMatrix& other) const {
  assert(cols_ == other.rows_);
  GfMatrix out(rows_, other.cols_);
  for (unsigned i = 0; i < rows_; ++i) {
    for (unsigned j = 0; j < other.cols_; ++j) {
      uint8_t acc = 0;
      for (unsigned k = 0; k < cols_; ++k) {
        acc ^= Gf256::Mul(At(i, k), other.At(k, j));
      }
      out.Set(i, j, acc);
    }
  }
  return out;
}

GfMatrix GfMatrix::SelectRows(const std::vector<unsigned>& rows) const {
  GfMatrix out(static_cast<unsigned>(rows.size()), cols_);
  for (unsigned i = 0; i < rows.size(); ++i) {
    assert(rows[i] < rows_);
    for (unsigned j = 0; j < cols_; ++j) {
      out.Set(i, j, At(rows[i], j));
    }
  }
  return out;
}

bool GfMatrix::Invert(GfMatrix* out) const {
  assert(rows_ == cols_);
  const unsigned n = rows_;
  GfMatrix work = *this;
  GfMatrix inverse = Identity(n);

  for (unsigned col = 0; col < n; ++col) {
    // Find a pivot.
    unsigned pivot = col;
    while (pivot < n && work.At(pivot, col) == 0) {
      ++pivot;
    }
    if (pivot == n) {
      return false;
    }
    if (pivot != col) {
      for (unsigned j = 0; j < n; ++j) {
        uint8_t tmp = work.At(col, j);
        work.Set(col, j, work.At(pivot, j));
        work.Set(pivot, j, tmp);
        tmp = inverse.At(col, j);
        inverse.Set(col, j, inverse.At(pivot, j));
        inverse.Set(pivot, j, tmp);
      }
    }
    // Scale the pivot row to 1.
    uint8_t inv_pivot = Gf256::Inv(work.At(col, col));
    for (unsigned j = 0; j < n; ++j) {
      work.Set(col, j, Gf256::Mul(work.At(col, j), inv_pivot));
      inverse.Set(col, j, Gf256::Mul(inverse.At(col, j), inv_pivot));
    }
    // Eliminate the column from all other rows.
    for (unsigned r = 0; r < n; ++r) {
      if (r == col || work.At(r, col) == 0) {
        continue;
      }
      uint8_t factor = work.At(r, col);
      for (unsigned j = 0; j < n; ++j) {
        work.Set(r, j,
                 Gf256::Add(work.At(r, j), Gf256::Mul(factor, work.At(col, j))));
        inverse.Set(
            r, j,
            Gf256::Add(inverse.At(r, j), Gf256::Mul(factor, inverse.At(col, j))));
      }
    }
  }
  *out = inverse;
  return true;
}

}  // namespace scfs
