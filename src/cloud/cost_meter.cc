#include "src/cloud/cost_meter.h"

namespace scfs {

namespace {
constexpr double kGb = 1024.0 * 1024.0 * 1024.0;
}  // namespace

PriceBook PriceBook::AmazonS3() {
  PriceBook p;
  p.outbound_per_gb = 0.12;
  p.storage_per_gb_month = 0.09;
  p.put_per_10k = 0.05;
  p.get_per_10k = 0.004;
  return p;
}

PriceBook PriceBook::GoogleStorage() {
  PriceBook p;
  p.outbound_per_gb = 0.12;
  p.storage_per_gb_month = 0.085;
  p.put_per_10k = 0.10;
  p.get_per_10k = 0.01;
  return p;
}

PriceBook PriceBook::AzureBlob() {
  PriceBook p;
  p.outbound_per_gb = 0.12;
  p.storage_per_gb_month = 0.095;
  p.put_per_10k = 0.0005;
  p.get_per_10k = 0.0005;
  return p;
}

PriceBook PriceBook::RackspaceFiles() {
  PriceBook p;
  p.outbound_per_gb = 0.12;
  p.storage_per_gb_month = 0.10;
  p.put_per_10k = 0.0;
  p.get_per_10k = 0.0;
  return p;
}

void CostMeter::RecordPut(const CanonicalId& account, uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  UsageTotals& u = usage_[account];
  u.puts++;
  u.bytes_in += bytes;
  u.inbound_cost += static_cast<double>(bytes) / kGb * prices_.inbound_per_gb;
  u.request_cost += prices_.put_per_10k / 10000.0;
}

void CostMeter::RecordGet(const CanonicalId& account, uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  UsageTotals& u = usage_[account];
  u.gets++;
  u.bytes_out += bytes;
  u.outbound_cost += static_cast<double>(bytes) / kGb * prices_.outbound_per_gb;
  u.request_cost += prices_.get_per_10k / 10000.0;
}

void CostMeter::RecordList(const CanonicalId& account) {
  std::lock_guard<std::mutex> lock(mu_);
  UsageTotals& u = usage_[account];
  u.lists++;
  u.request_cost += prices_.put_per_10k / 10000.0;  // LIST billed like PUT
}

void CostMeter::RecordDelete(const CanonicalId& account) {
  std::lock_guard<std::mutex> lock(mu_);
  UsageTotals& u = usage_[account];
  u.deletes++;
  u.request_cost += prices_.delete_per_10k / 10000.0;
}

void CostMeter::AddStoredBytes(const CanonicalId& account, int64_t delta) {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t& stored = stored_bytes_[account];
  if (delta < 0 && static_cast<uint64_t>(-delta) > stored) {
    stored = 0;
  } else {
    stored = static_cast<uint64_t>(static_cast<int64_t>(stored) + delta);
  }
}

uint64_t CostMeter::StoredBytes(const CanonicalId& account) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = stored_bytes_.find(account);
  return it == stored_bytes_.end() ? 0 : it->second;
}

double CostMeter::StorageCostPerDay(const CanonicalId& account) const {
  return static_cast<double>(StoredBytes(account)) / kGb *
         prices_.storage_per_gb_month / 30.0;
}

UsageTotals CostMeter::Totals(const CanonicalId& account) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = usage_.find(account);
  return it == usage_.end() ? UsageTotals{} : it->second;
}

UsageTotals CostMeter::GrandTotals() const {
  std::lock_guard<std::mutex> lock(mu_);
  UsageTotals out;
  for (const auto& [account, u] : usage_) {
    out.outbound_cost += u.outbound_cost;
    out.inbound_cost += u.inbound_cost;
    out.request_cost += u.request_cost;
    out.bytes_out += u.bytes_out;
    out.bytes_in += u.bytes_in;
    out.puts += u.puts;
    out.gets += u.gets;
    out.lists += u.lists;
    out.deletes += u.deletes;
  }
  return out;
}

void CostMeter::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  usage_.clear();
}

}  // namespace scfs
