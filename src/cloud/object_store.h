// The cloud storage abstraction SCFS is allowed to assume (paper §2.1,
// service-agnosticism): on-demand object PUT/GET/DELETE/LIST plus basic ACLs.
// Nothing else — no server-side code, no notifications, no transactions.

#ifndef SCFS_CLOUD_OBJECT_STORE_H_
#define SCFS_CLOUD_OBJECT_STORE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/cloud/acl.h"
#include "src/common/bytes.h"
#include "src/common/future.h"
#include "src/common/status.h"
#include "src/sim/time.h"

namespace scfs {

struct ObjectInfo {
  std::string key;
  uint64_t size = 0;
  CanonicalId owner;
  VirtualTime created = 0;  // creation time (S3 LIST exposes LastModified)
};

class ObjectStore {
 public:
  virtual ~ObjectStore() = default;

  // Creates or overwrites `key`. Overwrites of eventually-consistent stores
  // become visible to readers only after the provider's consistency window.
  //
  // The store shares ownership of the payload instead of taking a private
  // copy, so one encoded buffer can back several attempts (robust-call
  // retries, quorum fallback waves) and then become the stored version with
  // zero further copies. Callers must never mutate the buffer after handoff.
  virtual Status Put(const CloudCredentials& creds, const std::string& key,
                     std::shared_ptr<const Bytes> data) = 0;
  Status Put(const CloudCredentials& creds, const std::string& key,
             Bytes data) {
    return Put(creds, key, std::make_shared<const Bytes>(std::move(data)));
  }

  // Returns the latest *visible* version, which may lag the latest write.
  virtual Result<Bytes> Get(const CloudCredentials& creds,
                            const std::string& key) = 0;

  virtual Status Delete(const CloudCredentials& creds,
                        const std::string& key) = 0;

  virtual Result<std::vector<ObjectInfo>> List(const CloudCredentials& creds,
                                               const std::string& prefix) = 0;

  // ACL manipulation; only the object owner may change grants.
  virtual Status SetAcl(const CloudCredentials& creds, const std::string& key,
                        const CanonicalId& grantee,
                        ObjectPermissions permissions) = 0;
  virtual Result<ObjectAcl> GetAcl(const CloudCredentials& creds,
                                   const std::string& key) = 0;

  virtual const std::string& provider_name() const = 0;

  // -- Asynchronous variants ------------------------------------------------
  //
  // The default adapters run the blocking virtual inline and return a ready
  // future with zero charge (the caller was already charged by the inline
  // call), so every existing implementation keeps working unchanged.
  // Implementations that are safe to call from multiple threads
  // (SimulatedCloud) override these to dispatch on the shared executor: the
  // call returns immediately, the returned future carries the producer's
  // modelled charge, and several requests genuinely overlap — the substrate
  // of DepSky's quorum fan-out and the non-blocking close pipeline.

  virtual Future<Status> PutAsync(const CloudCredentials& creds,
                                  const std::string& key,
                                  std::shared_ptr<const Bytes> data);
  Future<Status> PutAsync(const CloudCredentials& creds, const std::string& key,
                          Bytes data) {
    return PutAsync(creds, key,
                    std::make_shared<const Bytes>(std::move(data)));
  }
  virtual Future<Result<Bytes>> GetAsync(const CloudCredentials& creds,
                                         const std::string& key);
  virtual Future<Status> DeleteAsync(const CloudCredentials& creds,
                                     const std::string& key);
  virtual Future<Result<std::vector<ObjectInfo>>> ListAsync(
      const CloudCredentials& creds, const std::string& prefix);
  virtual Future<Status> SetAclAsync(const CloudCredentials& creds,
                                     const std::string& key,
                                     const CanonicalId& grantee,
                                     ObjectPermissions permissions);
};

}  // namespace scfs

#endif  // SCFS_CLOUD_OBJECT_STORE_H_
