// Provider profiles calibrated to the paper's testbed (clients in Portugal;
// Table 3, Figures 8-9 latencies): Amazon S3 and Google Cloud Storage in the
// US, Rackspace Cloud Files and Windows Azure in the UK/Europe, plus the VM
// providers used for the coordination service (EC2 Ireland, Rackspace UK,
// Azure Europe, Elastichosts UK).

#ifndef SCFS_CLOUD_PROVIDERS_H_
#define SCFS_CLOUD_PROVIDERS_H_

#include <memory>
#include <string>
#include <vector>

#include "src/cloud/simulated_cloud.h"

namespace scfs {

enum class ProviderId {
  kAmazonS3,        // US
  kGoogleStorage,   // US
  kAzureBlob,       // UK/Europe
  kRackspaceFiles,  // UK
};

// Storage profile for one provider, as observed from the paper's cluster.
CloudProfile ProviderProfile(ProviderId id);

// All four storage providers of the CoC backend, in DepSky order
// {S3, GCS, Azure, Rackspace}.
std::vector<CloudProfile> CocStorageProfiles();

// Creates a simulated cloud for the given provider.
std::unique_ptr<SimulatedCloud> MakeCloud(ProviderId id, Environment* env,
                                          uint64_t seed);

// Round-trip latency from the client cluster to the coordination-service
// replica hosted at each computing cloud (EC2 Ireland, Rackspace UK, Azure
// Europe, Elastichosts UK). The paper reports 60-100 ms per coordination
// access.
LatencyModel CoordinationLinkLatency(unsigned replica_index);

// Daily VM price for a coordination replica at `replica_index`
// (Figure 11a: Rackspace and Elastichosts charge ~2x EC2/Azure).
double CoordinationVmPricePerDay(unsigned replica_index, bool extra_large);

// DepSpace memory capacity in 1KB metadata tuples (Figure 11a).
uint64_t CoordinationCapacityTuples(bool extra_large);

}  // namespace scfs

#endif  // SCFS_CLOUD_PROVIDERS_H_
