// Cloud-side access control.
//
// Each user has a separate account per provider with a canonical identifier
// (paper §2.6). Objects carry an owner and per-principal grants; the provider
// (not the SCFS agent) enforces them — a malicious agent cannot bypass the
// checks because they run inside the simulated service.

#ifndef SCFS_CLOUD_ACL_H_
#define SCFS_CLOUD_ACL_H_

#include <map>
#include <string>

namespace scfs {

// Canonical identifier of an account at one provider ("s3:alice").
using CanonicalId = std::string;

struct CloudCredentials {
  CanonicalId canonical_id;
};

struct ObjectPermissions {
  bool read = false;
  bool write = false;

  static ObjectPermissions ReadOnly() { return {true, false}; }
  static ObjectPermissions ReadWrite() { return {true, true}; }
  static ObjectPermissions None() { return {false, false}; }
};

struct ObjectAcl {
  CanonicalId owner;
  std::map<CanonicalId, ObjectPermissions> grants;

  bool AllowsRead(const CanonicalId& who) const {
    if (who == owner) {
      return true;
    }
    auto it = grants.find(who);
    return it != grants.end() && it->second.read;
  }

  bool AllowsWrite(const CanonicalId& who) const {
    if (who == owner) {
      return true;
    }
    auto it = grants.find(who);
    return it != grants.end() && it->second.write;
  }
};

}  // namespace scfs

#endif  // SCFS_CLOUD_ACL_H_
