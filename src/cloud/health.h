// CloudHealthTracker: per-cloud failure accounting, EWMA latency, and a
// circuit breaker that demotes flapping clouds in the cost-ordered
// preference list and probes them back in.
//
// The breaker is deliberately simple and fully clock-explicit (every method
// takes `now`) so tests drive it with fake clocks:
//
//   closed     normal service; `failure_threshold` consecutive failures
//              trip it open.
//   open       the cloud is demoted to the back of every preference order
//              for `open_duration`.
//   half-open  once `open_duration` elapses the cloud re-enters the order
//              (at the back), so the next operation that reaches it is the
//              probe: a success closes the breaker, a failure re-opens it
//              for another `open_duration`.
//
// The tracker also owns the adaptive hedge delay: the DepSky read path
// launches its (f+2)-th request once the median healthy-cloud EWMA latency
// times `hedge_multiplier` has elapsed without k valid shards.

#ifndef SCFS_CLOUD_HEALTH_H_
#define SCFS_CLOUD_HEALTH_H_

#include <cstdint>
#include <mutex>
#include <vector>

#include "src/sim/time.h"

namespace scfs {

struct HealthOptions {
  // Consecutive failures that trip the breaker open.
  int failure_threshold = 3;
  // How long a tripped cloud stays demoted before the next probe.
  VirtualDuration open_duration = FromMillis(3000);
  // Weight of the newest sample in the per-cloud latency EWMA.
  double ewma_alpha = 0.2;
  // Hedge delay = max(hedge_floor, hedge_multiplier * median healthy EWMA).
  VirtualDuration hedge_floor = FromMillis(50);
  double hedge_multiplier = 2.0;
};

enum class BreakerState { kClosed, kOpen, kHalfOpen };

struct CloudHealthSnapshot {
  BreakerState state = BreakerState::kClosed;
  int consecutive_failures = 0;
  VirtualDuration ewma_latency = 0;
  uint64_t successes = 0;
  uint64_t failures = 0;
  uint64_t breaker_trips = 0;
};

class CloudHealthTracker {
 public:
  explicit CloudHealthTracker(unsigned clouds, HealthOptions options = {});

  void RecordSuccess(unsigned cloud, VirtualTime now, VirtualDuration latency);
  void RecordFailure(unsigned cloud, VirtualTime now);

  // True while the breaker holds the cloud out of the preference order
  // (open and the probe cooldown has not yet elapsed).
  bool Demoted(unsigned cloud, VirtualTime now) const;

  // Stable-partitions `base` (a cost-ordered cloud preference list) into
  // non-demoted clouds followed by demoted ones. Cost order is preserved
  // within each class.
  std::vector<unsigned> Reorder(const std::vector<unsigned>& base,
                                VirtualTime now) const;

  // Adaptive delay before hedging a read to one more cloud.
  VirtualDuration HedgeDelay() const;

  CloudHealthSnapshot snapshot(unsigned cloud, VirtualTime now) const;
  // Total breaker trips across all clouds (closed/half-open -> open edges).
  uint64_t breaker_trips() const;

  const HealthOptions& options() const { return options_; }

 private:
  struct CloudState {
    int consecutive_failures = 0;
    bool open = false;
    VirtualTime opened_at = 0;
    double ewma_latency = 0;  // 0 = no samples yet
    uint64_t successes = 0;
    uint64_t failures = 0;
    uint64_t trips = 0;
  };

  bool DemotedLocked(const CloudState& state, VirtualTime now) const;

  HealthOptions options_;
  mutable std::mutex mu_;
  std::vector<CloudState> clouds_;
};

}  // namespace scfs

#endif  // SCFS_CLOUD_HEALTH_H_
