#include "src/cloud/object_store.h"

namespace scfs {

// Default adapters: run the blocking call inline. The ready future carries
// zero charge because the calling thread was already charged by the call
// itself — a Get() on it must not charge twice.

Future<Status> ObjectStore::PutAsync(const CloudCredentials& creds,
                                     const std::string& key,
                                     std::shared_ptr<const Bytes> data) {
  return Future<Status>::Ready(Put(creds, key, std::move(data)));
}

Future<Result<Bytes>> ObjectStore::GetAsync(const CloudCredentials& creds,
                                            const std::string& key) {
  return Future<Result<Bytes>>::Ready(Get(creds, key));
}

Future<Status> ObjectStore::DeleteAsync(const CloudCredentials& creds,
                                        const std::string& key) {
  return Future<Status>::Ready(Delete(creds, key));
}

Future<Result<std::vector<ObjectInfo>>> ObjectStore::ListAsync(
    const CloudCredentials& creds, const std::string& prefix) {
  return Future<Result<std::vector<ObjectInfo>>>::Ready(List(creds, prefix));
}

Future<Status> ObjectStore::SetAclAsync(const CloudCredentials& creds,
                                        const std::string& key,
                                        const CanonicalId& grantee,
                                        ObjectPermissions permissions) {
  return Future<Status>::Ready(SetAcl(creds, key, grantee, permissions));
}

}  // namespace scfs
