#include "src/cloud/simulated_cloud.h"

#include <algorithm>

namespace scfs {

SimulatedCloud::SimulatedCloud(CloudProfile profile, Environment* env,
                               uint64_t seed)
    : profile_(std::move(profile)),
      env_(env),
      rng_(seed),
      faults_(seed ^ 0x9e3779b9ULL),
      costs_(profile_.prices) {}

SimulatedCloud::~SimulatedCloud() { async_ops_.AwaitIdle(); }

Future<Status> SimulatedCloud::PutAsync(const CloudCredentials& creds,
                                        const std::string& key,
                                        std::shared_ptr<const Bytes> data) {
  return SubmitTracked(&async_ops_,
                       [this, creds, key, data = std::move(data)]() mutable {
                         return Put(creds, key, std::move(data));
                       });
}

Future<Result<Bytes>> SimulatedCloud::GetAsync(const CloudCredentials& creds,
                                               const std::string& key) {
  return SubmitTracked(&async_ops_,
                       [this, creds, key] { return Get(creds, key); });
}

Future<Status> SimulatedCloud::DeleteAsync(const CloudCredentials& creds,
                                           const std::string& key) {
  return SubmitTracked(&async_ops_,
                       [this, creds, key] { return Delete(creds, key); });
}

Future<Result<std::vector<ObjectInfo>>> SimulatedCloud::ListAsync(
    const CloudCredentials& creds, const std::string& prefix) {
  return SubmitTracked(&async_ops_,
                       [this, creds, prefix] { return List(creds, prefix); });
}

Future<Status> SimulatedCloud::SetAclAsync(const CloudCredentials& creds,
                                           const std::string& key,
                                           const CanonicalId& grantee,
                                           ObjectPermissions permissions) {
  return SubmitTracked(&async_ops_, [this, creds, key, grantee, permissions] {
    return SetAcl(creds, key, grantee, permissions);
  });
}

void SimulatedCloud::SleepFor(const LatencyModel& model, size_t bytes) {
  VirtualDuration d;
  {
    std::lock_guard<std::mutex> lock(rng_mu_);
    d = model.Sample(rng_, bytes);
  }
  env_->Sleep(d);
}

Status SimulatedCloud::CheckAvailable() {
  // A degraded provider answers slowly before it answers at all; the extra
  // delay applies even to operations that then fail.
  VirtualDuration extra = faults_.latency_degradation();
  if (extra > 0) {
    env_->Sleep(extra);
  }
  if (faults_.ShouldFailOperation()) {
    return UnavailableError(profile_.name + " unavailable");
  }
  return OkStatus();
}

const SimulatedCloud::Version* SimulatedCloud::VisibleVersion(
    const Object& object, VirtualTime now) const {
  const Version* best = nullptr;
  for (const auto& version : object.versions) {
    if (version.visible_at <= now) {
      best = &version;
    }
  }
  if (faults_.byzantine() && !object.versions.empty()) {
    // A byzantine provider may serve an arbitrarily old version.
    return &object.versions.front();
  }
  return best;
}

Status SimulatedCloud::Put(const CloudCredentials& creds,
                           const std::string& key,
                           std::shared_ptr<const Bytes> data) {
  SleepFor(profile_.write_latency, data->size());
  RETURN_IF_ERROR(CheckAvailable());

  VirtualDuration window = profile_.consistency_window_base;
  {
    std::lock_guard<std::mutex> lock(rng_mu_);
    if (profile_.consistency_window_jitter > 0) {
      window += static_cast<VirtualDuration>(rng_.UniformU64(
          static_cast<uint64_t>(profile_.consistency_window_jitter) + 1));
    }
  }

  std::lock_guard<std::mutex> lock(mu_);
  auto it = objects_.find(key);
  if (it == objects_.end()) {
    Object object;
    object.created = static_cast<VirtualTime>(++create_seq_);
    object.acl.owner = creds.canonical_id;
    // New objects are immediately visible (matching S3's read-after-write
    // consistency for new keys); only overwrites are eventually consistent.
    costs_.RecordPut(creds.canonical_id, data->size());
    costs_.AddStoredBytes(creds.canonical_id,
                          static_cast<int64_t>(data->size()));
    object.versions.push_back(Version{std::move(data), env_->Now()});
    objects_.emplace(key, std::move(object));
    return OkStatus();
  }

  Object& object = it->second;
  if (!object.acl.AllowsWrite(creds.canonical_id)) {
    return PermissionDeniedError("no write permission on " + key);
  }
  costs_.RecordPut(creds.canonical_id, data->size());
  int64_t delta = static_cast<int64_t>(data->size()) -
                  static_cast<int64_t>(object.versions.back().data->size());
  costs_.AddStoredBytes(object.acl.owner, delta);
  object.versions.push_back(Version{std::move(data), env_->Now() + window});
  // Prune versions that can never be served again: keep everything from the
  // newest already-visible version onwards.
  VirtualTime now = env_->Now();
  while (object.versions.size() > 1 && object.versions[1].visible_at <= now) {
    object.versions.pop_front();
  }
  return OkStatus();
}

Result<Bytes> SimulatedCloud::Get(const CloudCredentials& creds,
                                  const std::string& key) {
  // RTT happens before we know the size; transfer charged on actual bytes.
  SleepFor(LatencyModel::Fixed(profile_.read_latency.base +
                               profile_.read_latency.jitter / 2),
           0);
  RETURN_IF_ERROR(CheckAvailable());

  std::shared_ptr<const Bytes> stored;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = objects_.find(key);
    if (it == objects_.end()) {
      return NotFoundError(key);
    }
    if (!it->second.acl.AllowsRead(creds.canonical_id)) {
      return PermissionDeniedError("no read permission on " + key);
    }
    const Version* version = VisibleVersion(it->second, env_->Now());
    if (version == nullptr) {
      return NotFoundError(key + " (not yet visible)");
    }
    stored = version->data;
    costs_.RecordGet(creds.canonical_id, stored->size());
  }
  // The response copy happens outside the lock: readers share the stored
  // buffer, so a large GET no longer serializes every other request.
  Bytes data = *stored;
  // Transfer time for the payload.
  LatencyModel transfer;
  transfer.bytes_per_second = profile_.read_latency.bytes_per_second;
  SleepFor(transfer, data.size());

  if (faults_.ShouldCorruptRead()) {
    faults_.CorruptPayload(ByteSpan(data));
  }
  return data;
}

Status SimulatedCloud::Delete(const CloudCredentials& creds,
                              const std::string& key) {
  SleepFor(profile_.control_latency, 0);
  RETURN_IF_ERROR(CheckAvailable());

  std::lock_guard<std::mutex> lock(mu_);
  auto it = objects_.find(key);
  if (it == objects_.end()) {
    return NotFoundError(key);
  }
  if (!it->second.acl.AllowsWrite(creds.canonical_id)) {
    return PermissionDeniedError("no write permission on " + key);
  }
  costs_.RecordDelete(creds.canonical_id);
  costs_.AddStoredBytes(
      it->second.acl.owner,
      -static_cast<int64_t>(it->second.versions.back().data->size()));
  objects_.erase(it);
  return OkStatus();
}

Result<std::vector<ObjectInfo>> SimulatedCloud::List(
    const CloudCredentials& creds, const std::string& prefix) {
  SleepFor(profile_.control_latency, 0);
  RETURN_IF_ERROR(CheckAvailable());

  std::lock_guard<std::mutex> lock(mu_);
  costs_.RecordList(creds.canonical_id);
  std::vector<ObjectInfo> out;
  for (auto it = objects_.lower_bound(prefix); it != objects_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) {
      break;
    }
    if (!it->second.acl.AllowsRead(creds.canonical_id)) {
      continue;
    }
    ObjectInfo info;
    info.key = it->first;
    info.size = it->second.versions.back().data->size();
    info.owner = it->second.acl.owner;
    info.created = it->second.created;
    out.push_back(std::move(info));
  }
  return out;
}

Status SimulatedCloud::SetAcl(const CloudCredentials& creds,
                              const std::string& key,
                              const CanonicalId& grantee,
                              ObjectPermissions permissions) {
  SleepFor(profile_.control_latency, 0);
  RETURN_IF_ERROR(CheckAvailable());

  std::lock_guard<std::mutex> lock(mu_);
  auto it = objects_.find(key);
  if (it == objects_.end()) {
    return NotFoundError(key);
  }
  if (creds.canonical_id != it->second.acl.owner) {
    return PermissionDeniedError("only the owner may change ACLs");
  }
  if (!permissions.read && !permissions.write) {
    it->second.acl.grants.erase(grantee);
  } else {
    it->second.acl.grants[grantee] = permissions;
  }
  return OkStatus();
}

Result<ObjectAcl> SimulatedCloud::GetAcl(const CloudCredentials& creds,
                                         const std::string& key) {
  SleepFor(profile_.control_latency, 0);
  RETURN_IF_ERROR(CheckAvailable());

  std::lock_guard<std::mutex> lock(mu_);
  auto it = objects_.find(key);
  if (it == objects_.end()) {
    return NotFoundError(key);
  }
  if (!it->second.acl.AllowsRead(creds.canonical_id)) {
    return PermissionDeniedError("no read permission on " + key);
  }
  return it->second.acl;
}

Result<Bytes> SimulatedCloud::PeekLatest(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = objects_.find(key);
  if (it == objects_.end()) {
    return NotFoundError(key);
  }
  return *it->second.versions.back().data;
}

}  // namespace scfs
