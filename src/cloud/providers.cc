#include "src/cloud/providers.h"

namespace scfs {

CloudProfile ProviderProfile(ProviderId id) {
  CloudProfile p;
  switch (id) {
    case ProviderId::kAmazonS3:
      p.name = "amazon-s3";
      // Portugal -> us-east: high RTT, decent throughput.
      p.read_latency = LatencyModel::WideArea(FromMillis(220), FromMillis(120), 2.5);
      p.write_latency = LatencyModel::WideArea(FromMillis(260), FromMillis(140), 1.8);
      p.control_latency = LatencyModel::WideArea(FromMillis(200), FromMillis(80), 0);
      p.consistency_window_base = FromMillis(150);
      p.consistency_window_jitter = FromMillis(1200);
      p.prices = PriceBook::AmazonS3();
      break;
    case ProviderId::kGoogleStorage:
      p.name = "google-storage";
      p.read_latency = LatencyModel::WideArea(FromMillis(240), FromMillis(130), 2.2);
      p.write_latency = LatencyModel::WideArea(FromMillis(280), FromMillis(150), 1.6);
      p.control_latency = LatencyModel::WideArea(FromMillis(210), FromMillis(90), 0);
      p.consistency_window_base = FromMillis(120);
      p.consistency_window_jitter = FromMillis(900);
      p.prices = PriceBook::GoogleStorage();
      break;
    case ProviderId::kAzureBlob:
      p.name = "azure-blob";
      // Portugal -> Europe: lower RTT, better throughput.
      p.read_latency = LatencyModel::WideArea(FromMillis(120), FromMillis(60), 3.5);
      p.write_latency = LatencyModel::WideArea(FromMillis(150), FromMillis(70), 2.6);
      p.control_latency = LatencyModel::WideArea(FromMillis(110), FromMillis(50), 0);
      p.consistency_window_base = FromMillis(80);
      p.consistency_window_jitter = FromMillis(600);
      p.prices = PriceBook::AzureBlob();
      break;
    case ProviderId::kRackspaceFiles:
      p.name = "rackspace-files";
      p.read_latency = LatencyModel::WideArea(FromMillis(140), FromMillis(70), 3.0);
      p.write_latency = LatencyModel::WideArea(FromMillis(170), FromMillis(90), 2.2);
      p.control_latency = LatencyModel::WideArea(FromMillis(130), FromMillis(60), 0);
      p.consistency_window_base = FromMillis(100);
      p.consistency_window_jitter = FromMillis(800);
      p.prices = PriceBook::RackspaceFiles();
      break;
  }
  return p;
}

std::vector<CloudProfile> CocStorageProfiles() {
  return {ProviderProfile(ProviderId::kAmazonS3),
          ProviderProfile(ProviderId::kGoogleStorage),
          ProviderProfile(ProviderId::kAzureBlob),
          ProviderProfile(ProviderId::kRackspaceFiles)};
}

std::unique_ptr<SimulatedCloud> MakeCloud(ProviderId id, Environment* env,
                                          uint64_t seed) {
  return std::make_unique<SimulatedCloud>(ProviderProfile(id), env, seed);
}

LatencyModel CoordinationLinkLatency(unsigned replica_index) {
  // {EC2 Ireland, Rackspace UK, Azure Europe, Elastichosts UK}.
  switch (replica_index % 4) {
    case 0:
      return LatencyModel::WideArea(FromMillis(34), FromMillis(14), 8.0);
    case 1:
      return LatencyModel::WideArea(FromMillis(28), FromMillis(12), 8.0);
    case 2:
      return LatencyModel::WideArea(FromMillis(30), FromMillis(12), 8.0);
    default:
      return LatencyModel::WideArea(FromMillis(36), FromMillis(16), 8.0);
  }
}

double CoordinationVmPricePerDay(unsigned replica_index, bool extra_large) {
  // Figure 11a: one EC2 Large is $6.24/day ($12.96 XL); the 4-provider CoC
  // setup totals $39.60/day Large and $77.04/day XL, with Rackspace and
  // Elastichosts charging almost 100% more than EC2/Azure.
  static constexpr double kLarge[4] = {6.24, 13.20, 6.48, 13.68};
  static constexpr double kExtraLarge[4] = {12.96, 25.20, 13.20, 25.68};
  return extra_large ? kExtraLarge[replica_index % 4]
                     : kLarge[replica_index % 4];
}

uint64_t CoordinationCapacityTuples(bool extra_large) {
  // Figure 11a: ~7M 1KB tuples on a Large instance, ~15M on an Extra Large.
  return extra_large ? 15ULL * 1000 * 1000 : 7ULL * 1000 * 1000;
}

}  // namespace scfs
