// Cloud pricing and cost accounting.
//
// The paper's economics (Figure 11, and the always-write/avoid-reading design
// principle) rest on the 2013/2014 cloud price book: inbound transfer free,
// outbound ~$0.12/GB, storage ~$0.09/GB-month, per-request micro-charges and
// flat daily VM prices. The meter records every charged event per account so
// experiments can report cost-per-operation in microdollars, exactly like
// Figure 11(b).

#ifndef SCFS_CLOUD_COST_METER_H_
#define SCFS_CLOUD_COST_METER_H_

#include <map>
#include <mutex>
#include <string>

#include "src/cloud/acl.h"

namespace scfs {

struct PriceBook {
  double outbound_per_gb = 0.12;      // USD per GB downloaded
  double inbound_per_gb = 0.0;        // uploads are free (the paper's insight)
  double storage_per_gb_month = 0.09;  // USD per GB stored per month
  double put_per_10k = 0.05;          // USD per 10k PUT/LIST requests (S3-like)
  double get_per_10k = 0.004;         // USD per 10k GET requests
  double delete_per_10k = 0.0;        // deletes are free on all four clouds

  static PriceBook AmazonS3();
  static PriceBook GoogleStorage();
  static PriceBook AzureBlob();
  static PriceBook RackspaceFiles();
};

// Flat daily VM prices for the coordination service (Figure 11a), per
// provider and instance size, in USD/day.
struct VmPricing {
  double large_per_day = 6.24;
  double extra_large_per_day = 12.96;
};

struct UsageTotals {
  double outbound_cost = 0.0;
  double inbound_cost = 0.0;
  double request_cost = 0.0;
  uint64_t bytes_out = 0;
  uint64_t bytes_in = 0;
  uint64_t puts = 0;
  uint64_t gets = 0;
  uint64_t lists = 0;
  uint64_t deletes = 0;

  double TotalCost() const {
    return outbound_cost + inbound_cost + request_cost;
  }
};

class CostMeter {
 public:
  explicit CostMeter(PriceBook prices) : prices_(prices) {}

  void RecordPut(const CanonicalId& account, uint64_t bytes);
  void RecordGet(const CanonicalId& account, uint64_t bytes);
  void RecordList(const CanonicalId& account);
  void RecordDelete(const CanonicalId& account);

  // Current stored footprint, maintained by the object store.
  void AddStoredBytes(const CanonicalId& account, int64_t delta);
  uint64_t StoredBytes(const CanonicalId& account) const;

  // USD/day to keep the account's current bytes stored.
  double StorageCostPerDay(const CanonicalId& account) const;

  UsageTotals Totals(const CanonicalId& account) const;
  UsageTotals GrandTotals() const;
  const PriceBook& prices() const { return prices_; }

  void Reset();

 private:
  PriceBook prices_;
  mutable std::mutex mu_;
  std::map<CanonicalId, UsageTotals> usage_;
  std::map<CanonicalId, uint64_t> stored_bytes_;
};

// One million microdollars per dollar; Figure 11(b) reports microdollars.
inline double ToMicrodollars(double usd) { return usd * 1e6; }

}  // namespace scfs

#endif  // SCFS_CLOUD_COST_METER_H_
