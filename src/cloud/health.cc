#include "src/cloud/health.h"

#include <algorithm>

namespace scfs {

CloudHealthTracker::CloudHealthTracker(unsigned clouds, HealthOptions options)
    : options_(options), clouds_(clouds) {}

void CloudHealthTracker::RecordSuccess(unsigned cloud, VirtualTime now,
                                       VirtualDuration latency) {
  (void)now;
  std::lock_guard<std::mutex> lock(mu_);
  CloudState& state = clouds_[cloud];
  state.successes++;
  state.consecutive_failures = 0;
  state.open = false;
  if (latency > 0) {
    double sample = static_cast<double>(latency);
    state.ewma_latency = state.ewma_latency == 0
                             ? sample
                             : options_.ewma_alpha * sample +
                                   (1 - options_.ewma_alpha) *
                                       state.ewma_latency;
  }
}

void CloudHealthTracker::RecordFailure(unsigned cloud, VirtualTime now) {
  std::lock_guard<std::mutex> lock(mu_);
  CloudState& state = clouds_[cloud];
  state.failures++;
  state.consecutive_failures++;
  if (!state.open) {
    if (state.consecutive_failures >= options_.failure_threshold) {
      state.open = true;
      state.opened_at = now;
      state.trips++;
    }
  } else if (now >= state.opened_at + options_.open_duration) {
    // A failed half-open probe re-opens the breaker for a fresh cooldown.
    state.opened_at = now;
    state.trips++;
  }
  // Failures inside the open window leave opened_at alone: stragglers from
  // requests issued before the trip should not push the probe out forever.
}

bool CloudHealthTracker::DemotedLocked(const CloudState& state,
                                       VirtualTime now) const {
  return state.open && now < state.opened_at + options_.open_duration;
}

bool CloudHealthTracker::Demoted(unsigned cloud, VirtualTime now) const {
  std::lock_guard<std::mutex> lock(mu_);
  return DemotedLocked(clouds_[cloud], now);
}

std::vector<unsigned> CloudHealthTracker::Reorder(
    const std::vector<unsigned>& base, VirtualTime now) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<unsigned> ordered;
  ordered.reserve(base.size());
  for (unsigned cloud : base) {
    if (cloud >= clouds_.size() || !DemotedLocked(clouds_[cloud], now)) {
      ordered.push_back(cloud);
    }
  }
  for (unsigned cloud : base) {
    if (cloud < clouds_.size() && DemotedLocked(clouds_[cloud], now)) {
      ordered.push_back(cloud);
    }
  }
  return ordered;
}

VirtualDuration CloudHealthTracker::HedgeDelay() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<double> healthy;
  healthy.reserve(clouds_.size());
  for (const CloudState& state : clouds_) {
    if (!state.open && state.ewma_latency > 0) {
      healthy.push_back(state.ewma_latency);
    }
  }
  if (healthy.empty()) {
    return options_.hedge_floor;
  }
  size_t mid = healthy.size() / 2;
  std::nth_element(healthy.begin(), healthy.begin() + mid, healthy.end());
  VirtualDuration adaptive = static_cast<VirtualDuration>(
      healthy[mid] * options_.hedge_multiplier);
  return std::max(options_.hedge_floor, adaptive);
}

CloudHealthSnapshot CloudHealthTracker::snapshot(unsigned cloud,
                                                 VirtualTime now) const {
  std::lock_guard<std::mutex> lock(mu_);
  const CloudState& state = clouds_[cloud];
  CloudHealthSnapshot snap;
  if (!state.open) {
    snap.state = BreakerState::kClosed;
  } else if (DemotedLocked(state, now)) {
    snap.state = BreakerState::kOpen;
  } else {
    snap.state = BreakerState::kHalfOpen;
  }
  snap.consecutive_failures = state.consecutive_failures;
  snap.ewma_latency = static_cast<VirtualDuration>(state.ewma_latency);
  snap.successes = state.successes;
  snap.failures = state.failures;
  snap.breaker_trips = state.trips;
  return snap;
}

uint64_t CloudHealthTracker::breaker_trips() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const CloudState& state : clouds_) {
    total += state.trips;
  }
  return total;
}

}  // namespace scfs
