// SimulatedCloud: an in-process object store that behaves like a 2013-era
// public storage cloud — wide-area latency, limited transfer bandwidth,
// *eventual consistency* on overwrites, per-object ACLs, request pricing and
// injectable faults (outage / corruption / byzantine stale answers).

#ifndef SCFS_CLOUD_SIMULATED_CLOUD_H_
#define SCFS_CLOUD_SIMULATED_CLOUD_H_

#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "src/cloud/cost_meter.h"
#include "src/cloud/object_store.h"
#include "src/common/executor.h"
#include "src/common/rng.h"
#include "src/sim/environment.h"
#include "src/sim/fault.h"
#include "src/sim/latency.h"

namespace scfs {

struct CloudProfile {
  std::string name = "cloud";
  LatencyModel read_latency;
  LatencyModel write_latency;
  LatencyModel control_latency;     // DELETE/LIST/ACL round trips
  VirtualDuration consistency_window_base = 0;   // visibility delay after PUT
  VirtualDuration consistency_window_jitter = 0;
  PriceBook prices;
  VmPricing vm_prices;
};

class SimulatedCloud : public ObjectStore {
 public:
  SimulatedCloud(CloudProfile profile, Environment* env, uint64_t seed);
  // Waits for every in-flight asynchronous request (quorum fan-outs may
  // return to the caller while a straggler request is still modelled).
  ~SimulatedCloud() override;

  // The Bytes convenience overloads live on the base; re-expose them beside
  // the shared-buffer overrides (C++ name hiding would otherwise swallow
  // them for callers holding a SimulatedCloud*).
  using ObjectStore::Put;
  using ObjectStore::PutAsync;

  Status Put(const CloudCredentials& creds, const std::string& key,
             std::shared_ptr<const Bytes> data) override;
  Result<Bytes> Get(const CloudCredentials& creds,
                    const std::string& key) override;
  Status Delete(const CloudCredentials& creds,
                const std::string& key) override;
  Result<std::vector<ObjectInfo>> List(const CloudCredentials& creds,
                                       const std::string& prefix) override;
  Status SetAcl(const CloudCredentials& creds, const std::string& key,
                const CanonicalId& grantee,
                ObjectPermissions permissions) override;
  Result<ObjectAcl> GetAcl(const CloudCredentials& creds,
                           const std::string& key) override;

  const std::string& provider_name() const override { return profile_.name; }

  // True-overlap async API: requests dispatch on the shared executor and the
  // returned future carries the request's modelled charge. All state is
  // internally locked, so any number of requests may be in flight at once.
  Future<Status> PutAsync(const CloudCredentials& creds, const std::string& key,
                          std::shared_ptr<const Bytes> data) override;
  Future<Result<Bytes>> GetAsync(const CloudCredentials& creds,
                                 const std::string& key) override;
  Future<Status> DeleteAsync(const CloudCredentials& creds,
                             const std::string& key) override;
  Future<Result<std::vector<ObjectInfo>>> ListAsync(
      const CloudCredentials& creds, const std::string& prefix) override;
  Future<Status> SetAclAsync(const CloudCredentials& creds,
                             const std::string& key, const CanonicalId& grantee,
                             ObjectPermissions permissions) override;

  FaultInjector& faults() { return faults_; }
  CostMeter& costs() { return costs_; }
  const CloudProfile& profile() const { return profile_; }

  // Waits for every in-flight asynchronous request to settle. Benchmarks and
  // tests call this before sampling costs()/List(): a quorum fan-out returns
  // to the caller while a straggler PUT may still be modelled, so an
  // unquiesced readout races with it.
  void Quiesce() { async_ops_.AwaitIdle(); }

  // Test/inspection hook: the latest stored version regardless of visibility.
  Result<Bytes> PeekLatest(const std::string& key);

 private:
  struct Version {
    // Shared with the writer that produced it (see ObjectStore::Put): the
    // stored version IS the caller's encoded buffer, no ingest copy.
    std::shared_ptr<const Bytes> data;
    VirtualTime visible_at = 0;
  };
  struct Object {
    std::deque<Version> versions;  // oldest first; pruned as they supersede
    ObjectAcl acl;
    VirtualTime created = 0;
  };

  // Returns the newest version visible at `now`, or nullptr.
  const Version* VisibleVersion(const Object& object, VirtualTime now) const;
  void SleepFor(const LatencyModel& model, size_t bytes);
  Status CheckAvailable();

  CloudProfile profile_;
  Environment* env_;
  std::mutex mu_;       // protects objects_
  std::mutex rng_mu_;   // protects rng_
  Rng rng_;
  FaultInjector faults_;
  CostMeter costs_;
  std::map<std::string, Object> objects_;
  uint64_t create_seq_ = 0;  // monotonic creation stamp for LIST ordering

  InFlightTracker async_ops_;
};

}  // namespace scfs

#endif  // SCFS_CLOUD_SIMULATED_CLOUD_H_
