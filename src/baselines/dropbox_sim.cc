#include "src/baselines/dropbox_sim.h"

namespace scfs {

namespace {
VirtualDuration TransferTime(size_t size, double mb_per_s) {
  return static_cast<VirtualDuration>(
      static_cast<double>(size) / (mb_per_s * 1024.0 * 1024.0) * kSecond);
}
}  // namespace

VirtualDuration DropboxSim::ShareFile(size_t size) {
  VirtualTime start = env_->Now();
  // 1. The monitor notices the change (inotify batching).
  env_->Sleep(static_cast<VirtualDuration>(
      rng_.UniformInt(options_.monitor_delay_min, options_.monitor_delay_max)));
  // 2. Upload through the shaped client link.
  env_->Sleep(TransferTime(size, options_.upload_mb_per_s));
  // 3. Server-side processing/commit.
  env_->Sleep(options_.server_processing);
  // 4. The peer's next poll discovers the change...
  env_->Sleep(static_cast<VirtualDuration>(
      rng_.UniformInt(options_.poll_period_min, options_.poll_period_max)));
  // 5. ...and downloads the file.
  env_->Sleep(TransferTime(size, options_.download_mb_per_s));
  return env_->Now() - start;
}

}  // namespace scfs
