// The two open-source S3-backed baselines of Table 3 (paper §5):
//
//   S3fsLike  — S3FS: blocking, no main-memory cache of opened files. Every
//               create/open/close talks to S3; reads of open files go through
//               the local temp copy on disk (its documented weakness).
//   S3qlLike  — S3QL: full write-back design. Everything is served from the
//               local cache; dirty data is pushed to a single cloud in the
//               background. No sharing, no multi-client coordination. Its
//               documented weakness is slow small chunk writes through FUSE.

#ifndef SCFS_BASELINES_S3_BASELINES_H_
#define SCFS_BASELINES_S3_BASELINES_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "src/cloud/object_store.h"
#include "src/fsapi/file_system.h"
#include "src/scfs/background.h"
#include "src/sim/environment.h"

namespace scfs {

struct S3fsOptions {
  // Extra per-read cost: no memory cache => reads go through the disk file.
  VirtualDuration per_read_penalty = FromMillis(0.02);
  VirtualDuration disk_latency = FromMillis(3);
};

class S3fsLike : public FileSystem {
 public:
  S3fsLike(Environment* env, ObjectStore* store, CloudCredentials creds,
           S3fsOptions options = {})
      : env_(env), store_(store), creds_(std::move(creds)), options_(options) {}

  Result<FileHandle> Open(const std::string& path, uint32_t flags) override;
  Result<Bytes> Read(FileHandle handle, uint64_t offset, size_t size) override;
  Status Write(FileHandle handle, uint64_t offset, const Bytes& data) override;
  Status Truncate(FileHandle handle, uint64_t size) override;
  Status Fsync(FileHandle handle) override;
  Status Close(FileHandle handle) override;
  Status Mkdir(const std::string& path) override;
  Status Rmdir(const std::string& path) override;
  Status Unlink(const std::string& path) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Result<FileStat> Stat(const std::string& path) override;
  Result<std::vector<DirEntry>> ReadDir(const std::string& path) override;
  Status SetFacl(const std::string& path, const std::string& user, bool read,
                 bool write) override;
  Result<std::vector<AclEntry>> GetFacl(const std::string& path) override;

 private:
  struct Handle {
    std::string path;
    Bytes data;  // local temp copy (on disk, hence the read penalty)
    bool write_mode = false;
    bool dirty = false;
  };

  static std::string Key(const std::string& path) { return "s3fs:" + path; }

  Environment* env_;
  ObjectStore* store_;
  CloudCredentials creds_;
  S3fsOptions options_;
  std::mutex mu_;
  std::map<FileHandle, Handle> handles_;
  FileHandle next_handle_ = 1;
};

struct S3qlOptions {
  // The known issue (paper [8]): small chunk writes through FUSE are slow.
  VirtualDuration per_write_penalty = FromMillis(0.45);
  VirtualDuration disk_flush_latency = FromMillis(3);
  VirtualDuration create_latency = FromMillis(2);
};

class S3qlLike : public FileSystem {
 public:
  S3qlLike(Environment* env, ObjectStore* store, CloudCredentials creds,
           S3qlOptions options = {});
  ~S3qlLike() override;

  Result<FileHandle> Open(const std::string& path, uint32_t flags) override;
  Result<Bytes> Read(FileHandle handle, uint64_t offset, size_t size) override;
  Status Write(FileHandle handle, uint64_t offset, const Bytes& data) override;
  Status Truncate(FileHandle handle, uint64_t size) override;
  Status Fsync(FileHandle handle) override;
  Status Close(FileHandle handle) override;
  Status Mkdir(const std::string& path) override;
  Status Rmdir(const std::string& path) override;
  Status Unlink(const std::string& path) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Result<FileStat> Stat(const std::string& path) override;
  Result<std::vector<DirEntry>> ReadDir(const std::string& path) override;
  Status SetFacl(const std::string& path, const std::string& user, bool read,
                 bool write) override;
  Result<std::vector<AclEntry>> GetFacl(const std::string& path) override;

  void DrainBackground() { uploader_.Drain(); }
  // S3QL's write-back queue is its upload pipeline: the barrier waits for it.
  Status SyncBarrier() override {
    uploader_.Drain();
    return OkStatus();
  }

 private:
  struct Node {
    FileType type = FileType::kFile;
    Bytes data;
    VirtualTime mtime = 0;
    VirtualTime ctime = 0;
  };
  struct Handle {
    std::string path;
    bool write_mode = false;
    bool dirty = false;
  };

  static std::string Key(const std::string& path) { return "s3ql:" + path; }

  Environment* env_;
  ObjectStore* store_;
  CloudCredentials creds_;
  S3qlOptions options_;
  std::mutex mu_;
  std::map<std::string, Node> nodes_;
  std::map<FileHandle, Handle> handles_;
  FileHandle next_handle_ = 1;
  BackgroundUploader uploader_;
};

}  // namespace scfs

#endif  // SCFS_BASELINES_S3_BASELINES_H_
