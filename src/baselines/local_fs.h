// LocalFs: the LocalFS baseline of Table 3 — a FUSE-J-style local file system
// with no cloud backend at all. Data lives in memory; closes and fsyncs pay a
// modelled local-disk flush.

#ifndef SCFS_BASELINES_LOCAL_FS_H_
#define SCFS_BASELINES_LOCAL_FS_H_

#include <map>
#include <mutex>
#include <string>

#include "src/fsapi/file_system.h"
#include "src/sim/environment.h"

namespace scfs {

struct LocalFsOptions {
  // 15K RPM SCSI-ish flush cost for a dirty close/fsync.
  VirtualDuration disk_flush_latency = FromMillis(3);
  VirtualDuration create_latency = FromMillis(2);
};

class LocalFs : public FileSystem {
 public:
  explicit LocalFs(Environment* env, LocalFsOptions options = {})
      : env_(env), options_(options) {}

  Result<FileHandle> Open(const std::string& path, uint32_t flags) override;
  Result<Bytes> Read(FileHandle handle, uint64_t offset, size_t size) override;
  Status Write(FileHandle handle, uint64_t offset, const Bytes& data) override;
  Status Truncate(FileHandle handle, uint64_t size) override;
  Status Fsync(FileHandle handle) override;
  Status Close(FileHandle handle) override;
  Status Mkdir(const std::string& path) override;
  Status Rmdir(const std::string& path) override;
  Status Unlink(const std::string& path) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Result<FileStat> Stat(const std::string& path) override;
  Result<std::vector<DirEntry>> ReadDir(const std::string& path) override;
  Status SetFacl(const std::string& path, const std::string& user, bool read,
                 bool write) override;
  Result<std::vector<AclEntry>> GetFacl(const std::string& path) override;

 private:
  struct Node {
    FileType type = FileType::kFile;
    Bytes data;
    VirtualTime mtime = 0;
    VirtualTime ctime = 0;
  };
  struct Handle {
    std::string path;
    bool write_mode = false;
    bool dirty = false;
  };

  Environment* env_;
  LocalFsOptions options_;
  std::mutex mu_;
  std::map<std::string, Node> nodes_;
  std::map<FileHandle, Handle> handles_;
  FileHandle next_handle_ = 1;
};

}  // namespace scfs

#endif  // SCFS_BASELINES_LOCAL_FS_H_
