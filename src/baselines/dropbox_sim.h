// DropboxSim: a personal file-synchronization service model for the sharing
// experiment (paper Figure 9, compared against SCFS-*-{NB,B}).
//
// The structural reasons Dropbox-style sharing is slow are modelled, not its
// implementation: an inotify-style monitor that batches local changes, a
// client-capped upload, server-side processing, and the peer discovering the
// update only on its next polling cycle. (Deduplication is not modelled —
// the paper's experiment defeats it with random file contents.)

#ifndef SCFS_BASELINES_DROPBOX_SIM_H_
#define SCFS_BASELINES_DROPBOX_SIM_H_

#include "src/common/rng.h"
#include "src/sim/environment.h"

namespace scfs {

struct DropboxOptions {
  // Delay before the monitoring client notices and batches the new file.
  VirtualDuration monitor_delay_min = FromSecondsD(1.0);
  VirtualDuration monitor_delay_max = FromSecondsD(6.0);
  // Client upload bandwidth (shaped well below the raw link).
  double upload_mb_per_s = 0.9;
  // Server-side commit/processing.
  VirtualDuration server_processing = FromSecondsD(1.5);
  // Peer polling cycle: the reader learns about changes on its next poll.
  VirtualDuration poll_period_min = FromSecondsD(4.0);
  VirtualDuration poll_period_max = FromSecondsD(18.0);
  // Peer download bandwidth.
  double download_mb_per_s = 2.0;
};

class DropboxSim {
 public:
  DropboxSim(Environment* env, DropboxOptions options = {}, uint64_t seed = 3)
      : env_(env), options_(options), rng_(seed) {}

  // Simulates: writer saves `size` bytes into a shared folder; returns the
  // virtual latency until the peer has the file (the Figure 9 measurement).
  VirtualDuration ShareFile(size_t size);

 private:
  Environment* env_;
  DropboxOptions options_;
  Rng rng_;
};

}  // namespace scfs

#endif  // SCFS_BASELINES_DROPBOX_SIM_H_
