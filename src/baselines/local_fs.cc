#include "src/baselines/local_fs.h"

#include <algorithm>

#include "src/common/path.h"

namespace scfs {

Result<FileHandle> LocalFs::Open(const std::string& path, uint32_t flags) {
  const std::string normalized = NormalizePath(path);
  if (normalized.empty() || normalized == "/") {
    return InvalidArgumentError("bad path");
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = nodes_.find(normalized);
  if (it == nodes_.end()) {
    if ((flags & kOpenCreate) == 0) {
      return NotFoundError(normalized);
    }
    const std::string parent = ParentPath(normalized);
    if (parent != "/" && (nodes_.count(parent) == 0 ||
                          nodes_[parent].type != FileType::kDirectory)) {
      return NotFoundError(parent);
    }
    env_->Sleep(options_.create_latency);
    Node node;
    node.ctime = env_->Now();
    node.mtime = node.ctime;
    it = nodes_.emplace(normalized, std::move(node)).first;
  }
  if (it->second.type == FileType::kDirectory) {
    return IsDirectoryError(normalized);
  }
  if ((flags & kOpenTruncate) != 0) {
    it->second.data.clear();
  }
  FileHandle handle = next_handle_++;
  handles_[handle] = Handle{normalized, (flags & kOpenWrite) != 0, false};
  return handle;
}

Result<Bytes> LocalFs::Read(FileHandle handle, uint64_t offset, size_t size) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = handles_.find(handle);
  if (it == handles_.end()) {
    return InvalidArgumentError("bad handle");
  }
  const Bytes& data = nodes_[it->second.path].data;
  if (offset >= data.size()) {
    return Bytes{};
  }
  size_t n = std::min<size_t>(size, data.size() - offset);
  return Bytes(data.begin() + static_cast<ptrdiff_t>(offset),
               data.begin() + static_cast<ptrdiff_t>(offset + n));
}

Status LocalFs::Write(FileHandle handle, uint64_t offset, const Bytes& data) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = handles_.find(handle);
  if (it == handles_.end()) {
    return InvalidArgumentError("bad handle");
  }
  if (!it->second.write_mode) {
    return PermissionDeniedError("not open for writing");
  }
  Node& node = nodes_[it->second.path];
  if (offset + data.size() > node.data.size()) {
    node.data.resize(offset + data.size(), 0);
  }
  std::copy(data.begin(), data.end(),
            node.data.begin() + static_cast<ptrdiff_t>(offset));
  node.mtime = env_->Now();
  it->second.dirty = true;
  return OkStatus();
}

Status LocalFs::Truncate(FileHandle handle, uint64_t size) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = handles_.find(handle);
  if (it == handles_.end()) {
    return InvalidArgumentError("bad handle");
  }
  nodes_[it->second.path].data.resize(size, 0);
  it->second.dirty = true;
  return OkStatus();
}

Status LocalFs::Fsync(FileHandle handle) {
  bool dirty = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = handles_.find(handle);
    if (it == handles_.end()) {
      return InvalidArgumentError("bad handle");
    }
    dirty = it->second.dirty;
  }
  if (dirty) {
    env_->Sleep(options_.disk_flush_latency);
  }
  return OkStatus();
}

Status LocalFs::Close(FileHandle handle) {
  bool dirty = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = handles_.find(handle);
    if (it == handles_.end()) {
      return InvalidArgumentError("bad handle");
    }
    dirty = it->second.dirty;
    handles_.erase(it);
  }
  if (dirty) {
    env_->Sleep(options_.disk_flush_latency);
  }
  return OkStatus();
}

Status LocalFs::Mkdir(const std::string& path) {
  const std::string normalized = NormalizePath(path);
  std::lock_guard<std::mutex> lock(mu_);
  if (nodes_.count(normalized) > 0) {
    return AlreadyExistsError(normalized);
  }
  Node node;
  node.type = FileType::kDirectory;
  node.ctime = env_->Now();
  nodes_[normalized] = std::move(node);
  return OkStatus();
}

Status LocalFs::Rmdir(const std::string& path) {
  const std::string normalized = NormalizePath(path);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = nodes_.find(normalized);
  if (it == nodes_.end()) {
    return NotFoundError(normalized);
  }
  if (it->second.type != FileType::kDirectory) {
    return NotDirectoryError(normalized);
  }
  for (const auto& [node_path, node] : nodes_) {
    if (node_path != normalized && PathIsWithin(node_path, normalized)) {
      return NotEmptyError(normalized);
    }
  }
  nodes_.erase(it);
  return OkStatus();
}

Status LocalFs::Unlink(const std::string& path) {
  const std::string normalized = NormalizePath(path);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = nodes_.find(normalized);
  if (it == nodes_.end()) {
    return NotFoundError(normalized);
  }
  if (it->second.type == FileType::kDirectory) {
    return IsDirectoryError(normalized);
  }
  nodes_.erase(it);
  return OkStatus();
}

Status LocalFs::Rename(const std::string& from, const std::string& to) {
  const std::string src = NormalizePath(from);
  const std::string dst = NormalizePath(to);
  std::lock_guard<std::mutex> lock(mu_);
  if (nodes_.count(src) == 0) {
    return NotFoundError(src);
  }
  if (nodes_.count(dst) > 0) {
    return AlreadyExistsError(dst);
  }
  std::vector<std::pair<std::string, Node>> moved;
  for (auto it = nodes_.begin(); it != nodes_.end();) {
    if (PathIsWithin(it->first, src)) {
      moved.emplace_back(dst + it->first.substr(src.size()),
                         std::move(it->second));
      it = nodes_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto& [path, node] : moved) {
    nodes_[path] = std::move(node);
  }
  return OkStatus();
}

Result<FileStat> LocalFs::Stat(const std::string& path) {
  const std::string normalized = NormalizePath(path);
  std::lock_guard<std::mutex> lock(mu_);
  if (normalized == "/") {
    FileStat stat;
    stat.type = FileType::kDirectory;
    return stat;
  }
  auto it = nodes_.find(normalized);
  if (it == nodes_.end()) {
    return NotFoundError(normalized);
  }
  FileStat stat;
  stat.type = it->second.type;
  stat.size = it->second.data.size();
  stat.mtime = it->second.mtime;
  stat.ctime = it->second.ctime;
  return stat;
}

Result<std::vector<DirEntry>> LocalFs::ReadDir(const std::string& path) {
  const std::string normalized = NormalizePath(path);
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<DirEntry> out;
  for (const auto& [node_path, node] : nodes_) {
    if (ParentPath(node_path) == normalized) {
      out.push_back(DirEntry{Basename(node_path), node.type});
    }
  }
  return out;
}

Status LocalFs::SetFacl(const std::string&, const std::string&, bool, bool) {
  return NotSupportedError("LocalFS has no ACLs");
}

Result<std::vector<AclEntry>> LocalFs::GetFacl(const std::string&) {
  return NotSupportedError("LocalFS has no ACLs");
}

}  // namespace scfs
