#include "src/baselines/s3_baselines.h"

#include <algorithm>

#include "src/common/path.h"

namespace scfs {

// ---------------------------------------------------------------------------
// S3fsLike
// ---------------------------------------------------------------------------

Result<FileHandle> S3fsLike::Open(const std::string& path, uint32_t flags) {
  const std::string normalized = NormalizePath(path);
  if (normalized.empty() || normalized == "/") {
    return InvalidArgumentError("bad path");
  }
  Handle handle_state;
  handle_state.path = normalized;
  handle_state.write_mode = (flags & kOpenWrite) != 0;

  // Every open fetches the object from S3 (no cache, no validation shortcut).
  auto data = store_->Get(creds_, Key(normalized));
  if (!data.ok()) {
    if (data.status().code() != ErrorCode::kNotFound ||
        (flags & kOpenCreate) == 0) {
      return data.status();
    }
    // Create: S3FS eagerly creates the empty object.
    RETURN_IF_ERROR(store_->Put(creds_, Key(normalized), Bytes{}));
  } else if ((flags & kOpenTruncate) == 0) {
    handle_state.data = std::move(*data);
  }

  std::lock_guard<std::mutex> lock(mu_);
  FileHandle handle = next_handle_++;
  handles_[handle] = std::move(handle_state);
  return handle;
}

Result<Bytes> S3fsLike::Read(FileHandle handle, uint64_t offset, size_t size) {
  env_->Sleep(options_.per_read_penalty);  // reads go through the disk file
  std::lock_guard<std::mutex> lock(mu_);
  auto it = handles_.find(handle);
  if (it == handles_.end()) {
    return InvalidArgumentError("bad handle");
  }
  const Bytes& data = it->second.data;
  if (offset >= data.size()) {
    return Bytes{};
  }
  size_t n = std::min<size_t>(size, data.size() - offset);
  return Bytes(data.begin() + static_cast<ptrdiff_t>(offset),
               data.begin() + static_cast<ptrdiff_t>(offset + n));
}

Status S3fsLike::Write(FileHandle handle, uint64_t offset, const Bytes& data) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = handles_.find(handle);
  if (it == handles_.end()) {
    return InvalidArgumentError("bad handle");
  }
  if (!it->second.write_mode) {
    return PermissionDeniedError("not open for writing");
  }
  Bytes& file = it->second.data;
  if (offset + data.size() > file.size()) {
    file.resize(offset + data.size(), 0);
  }
  std::copy(data.begin(), data.end(),
            file.begin() + static_cast<ptrdiff_t>(offset));
  it->second.dirty = true;
  return OkStatus();
}

Status S3fsLike::Truncate(FileHandle handle, uint64_t size) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = handles_.find(handle);
  if (it == handles_.end()) {
    return InvalidArgumentError("bad handle");
  }
  it->second.data.resize(size, 0);
  it->second.dirty = true;
  return OkStatus();
}

Status S3fsLike::Fsync(FileHandle handle) {
  env_->Sleep(options_.disk_latency);
  std::lock_guard<std::mutex> lock(mu_);
  return handles_.count(handle) > 0 ? OkStatus()
                                    : InvalidArgumentError("bad handle");
}

Status S3fsLike::Close(FileHandle handle) {
  Handle state;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = handles_.find(handle);
    if (it == handles_.end()) {
      return InvalidArgumentError("bad handle");
    }
    state = std::move(it->second);
    handles_.erase(it);
  }
  if (state.dirty) {
    // Blocking: the update only returns once the file is written to S3 —
    // followed by s3fs's attribute read-back (it refreshes its stat cache
    // with an extra request after every flush).
    RETURN_IF_ERROR(store_->Put(creds_, Key(state.path), std::move(state.data)));
    (void)store_->List(creds_, Key(state.path));
    return OkStatus();
  }
  return OkStatus();
}

Status S3fsLike::Mkdir(const std::string& path) {
  return store_->Put(creds_, Key(NormalizePath(path)) + "/.dir", Bytes{});
}

Status S3fsLike::Rmdir(const std::string& path) {
  return store_->Delete(creds_, Key(NormalizePath(path)) + "/.dir");
}

Status S3fsLike::Unlink(const std::string& path) {
  return store_->Delete(creds_, Key(NormalizePath(path)));
}

Status S3fsLike::Rename(const std::string& from, const std::string& to) {
  // S3 has no rename: copy + delete.
  ASSIGN_OR_RETURN(Bytes data, store_->Get(creds_, Key(NormalizePath(from))));
  RETURN_IF_ERROR(store_->Put(creds_, Key(NormalizePath(to)), std::move(data)));
  return store_->Delete(creds_, Key(NormalizePath(from)));
}

Result<FileStat> S3fsLike::Stat(const std::string& path) {
  const std::string normalized = NormalizePath(path);
  if (normalized == "/") {
    FileStat stat;
    stat.type = FileType::kDirectory;
    return stat;
  }
  ASSIGN_OR_RETURN(Bytes data, store_->Get(creds_, Key(normalized)));
  FileStat stat;
  stat.size = data.size();
  return stat;
}

Result<std::vector<DirEntry>> S3fsLike::ReadDir(const std::string& path) {
  ASSIGN_OR_RETURN(std::vector<ObjectInfo> objects,
                   store_->List(creds_, Key(NormalizePath(path))));
  std::vector<DirEntry> out;
  for (const auto& object : objects) {
    out.push_back(DirEntry{Basename(object.key), FileType::kFile});
  }
  return out;
}

Status S3fsLike::SetFacl(const std::string&, const std::string&, bool, bool) {
  return NotSupportedError("S3FS has no ACL sharing");
}

Result<std::vector<AclEntry>> S3fsLike::GetFacl(const std::string&) {
  return NotSupportedError("S3FS has no ACL sharing");
}

// ---------------------------------------------------------------------------
// S3qlLike
// ---------------------------------------------------------------------------

S3qlLike::S3qlLike(Environment* env, ObjectStore* store,
                   CloudCredentials creds, S3qlOptions options)
    : env_(env),
      store_(store),
      creds_(std::move(creds)),
      options_(options),
      // S3QL's write-back queue is FIFO: a close's PUT must reach the cloud
      // before a later unlink's DELETE of the same key.
      uploader_(BackgroundUploaderOptions{/*max_depth=*/256,
                                          /*serialize=*/true}) {}

S3qlLike::~S3qlLike() { uploader_.Drain(); }

Result<FileHandle> S3qlLike::Open(const std::string& path, uint32_t flags) {
  const std::string normalized = NormalizePath(path);
  if (normalized.empty() || normalized == "/") {
    return InvalidArgumentError("bad path");
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = nodes_.find(normalized);
  if (it == nodes_.end()) {
    if ((flags & kOpenCreate) == 0) {
      return NotFoundError(normalized);
    }
    env_->Sleep(options_.create_latency);
    Node node;
    node.ctime = env_->Now();
    it = nodes_.emplace(normalized, std::move(node)).first;
  }
  if (it->second.type == FileType::kDirectory) {
    return IsDirectoryError(normalized);
  }
  if ((flags & kOpenTruncate) != 0) {
    it->second.data.clear();
  }
  FileHandle handle = next_handle_++;
  handles_[handle] = Handle{normalized, (flags & kOpenWrite) != 0, false};
  return handle;
}

Result<Bytes> S3qlLike::Read(FileHandle handle, uint64_t offset, size_t size) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = handles_.find(handle);
  if (it == handles_.end()) {
    return InvalidArgumentError("bad handle");
  }
  const Bytes& data = nodes_[it->second.path].data;
  if (offset >= data.size()) {
    return Bytes{};
  }
  size_t n = std::min<size_t>(size, data.size() - offset);
  return Bytes(data.begin() + static_cast<ptrdiff_t>(offset),
               data.begin() + static_cast<ptrdiff_t>(offset + n));
}

Status S3qlLike::Write(FileHandle handle, uint64_t offset, const Bytes& data) {
  env_->Sleep(options_.per_write_penalty);  // the known small-write issue
  std::lock_guard<std::mutex> lock(mu_);
  auto it = handles_.find(handle);
  if (it == handles_.end()) {
    return InvalidArgumentError("bad handle");
  }
  if (!it->second.write_mode) {
    return PermissionDeniedError("not open for writing");
  }
  Node& node = nodes_[it->second.path];
  if (offset + data.size() > node.data.size()) {
    node.data.resize(offset + data.size(), 0);
  }
  std::copy(data.begin(), data.end(),
            node.data.begin() + static_cast<ptrdiff_t>(offset));
  node.mtime = env_->Now();
  it->second.dirty = true;
  return OkStatus();
}

Status S3qlLike::Truncate(FileHandle handle, uint64_t size) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = handles_.find(handle);
  if (it == handles_.end()) {
    return InvalidArgumentError("bad handle");
  }
  nodes_[it->second.path].data.resize(size, 0);
  it->second.dirty = true;
  return OkStatus();
}

Status S3qlLike::Fsync(FileHandle handle) {
  env_->Sleep(options_.disk_flush_latency);
  std::lock_guard<std::mutex> lock(mu_);
  return handles_.count(handle) > 0 ? OkStatus()
                                    : InvalidArgumentError("bad handle");
}

Status S3qlLike::Close(FileHandle handle) {
  std::string path;
  Bytes data;
  bool dirty = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = handles_.find(handle);
    if (it == handles_.end()) {
      return InvalidArgumentError("bad handle");
    }
    path = it->second.path;
    dirty = it->second.dirty;
    if (dirty) {
      data = nodes_[path].data;
    }
    handles_.erase(it);
  }
  if (!dirty) {
    return OkStatus();
  }
  env_->Sleep(options_.disk_flush_latency);
  // Write-back: the data is pushed to the cloud later, in background.
  uploader_.Enqueue([this, path, data = std::move(data)] {
    return store_->Put(creds_, Key(path), data);
  });
  return OkStatus();
}

Status S3qlLike::Mkdir(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string normalized = NormalizePath(path);
  if (nodes_.count(normalized) > 0) {
    return AlreadyExistsError(normalized);
  }
  Node node;
  node.type = FileType::kDirectory;
  nodes_[normalized] = std::move(node);
  return OkStatus();
}

Status S3qlLike::Rmdir(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  return nodes_.erase(NormalizePath(path)) > 0 ? OkStatus()
                                               : NotFoundError(path);
}

Status S3qlLike::Unlink(const std::string& path) {
  const std::string normalized = NormalizePath(path);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (nodes_.erase(normalized) == 0) {
      return NotFoundError(normalized);
    }
  }
  uploader_.Enqueue([this, normalized] {
    return store_->Delete(creds_, Key(normalized));
  });
  return OkStatus();
}

Status S3qlLike::Rename(const std::string& from, const std::string& to) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = nodes_.find(NormalizePath(from));
  if (it == nodes_.end()) {
    return NotFoundError(from);
  }
  nodes_[NormalizePath(to)] = std::move(it->second);
  nodes_.erase(it);
  return OkStatus();
}

Result<FileStat> S3qlLike::Stat(const std::string& path) {
  const std::string normalized = NormalizePath(path);
  std::lock_guard<std::mutex> lock(mu_);
  if (normalized == "/") {
    FileStat stat;
    stat.type = FileType::kDirectory;
    return stat;
  }
  auto it = nodes_.find(normalized);
  if (it == nodes_.end()) {
    return NotFoundError(normalized);
  }
  FileStat stat;
  stat.type = it->second.type;
  stat.size = it->second.data.size();
  stat.mtime = it->second.mtime;
  return stat;
}

Result<std::vector<DirEntry>> S3qlLike::ReadDir(const std::string& path) {
  const std::string normalized = NormalizePath(path);
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<DirEntry> out;
  for (const auto& [node_path, node] : nodes_) {
    if (ParentPath(node_path) == normalized) {
      out.push_back(DirEntry{Basename(node_path), node.type});
    }
  }
  return out;
}

Status S3qlLike::SetFacl(const std::string&, const std::string&, bool, bool) {
  return NotSupportedError("S3QL is single-user");
}

Result<std::vector<AclEntry>> S3qlLike::GetFacl(const std::string&) {
  return NotSupportedError("S3QL is single-user");
}

}  // namespace scfs
