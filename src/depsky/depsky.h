// DepSkyClient: the cloud-of-clouds storage protocols (paper §3.2, Figure 6,
// and [15]), extended with SCFS's read-by-hash operation for consistency
// anchoring.
//
// A data unit is a versioned object spread over n = 3f+1 clouds. A write:
//   1. generates a fresh random key K, encrypts the file with it,
//   2. erasure-codes the ciphertext into n shards (any k = f+1 recover it),
//   3. secret-shares K so each cloud gets one share (f+1 shares recover K),
//   4. stores shard_i + share_i in cloud i — with preferred quorums only the
//      cheapest n-f clouds are used unless one fails,
//   5. appends the version to the authenticated metadata object replicated in
//      every cloud.
// A read fetches the metadata from all clouds, keeps the highest
// authenticated version, then fetches any k valid shards (hash-checked, so
// corrupted or byzantine clouds are detected and skipped).
//
// No single cloud ever holds the plaintext or the whole key: confidentiality,
// integrity and availability survive f arbitrary cloud faults.

#ifndef SCFS_DEPSKY_DEPSKY_H_
#define SCFS_DEPSKY_DEPSKY_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/cloud/object_store.h"
#include "src/codec/reed_solomon.h"
#include "src/common/executor.h"
#include "src/common/future.h"
#include "src/common/rng.h"
#include "src/depsky/metadata.h"
#include "src/sim/environment.h"

namespace scfs {

struct DepSkyCloud {
  ObjectStore* store = nullptr;
  CloudCredentials creds;  // this client's account at that provider
};

struct DepSkyConfig {
  unsigned f = 1;
  DepSkyMode mode = DepSkyMode::kSecretSharing;
  bool preferred_quorums = true;  // write shards to n-f clouds only
  Bytes auth_key;                 // metadata HMAC key (deployment secret)

  unsigned n() const { return 3 * f + 1; }
  unsigned k() const { return f + 1; }
  unsigned quorum() const { return n() - f; }
};

class DepSkyClient {
 public:
  DepSkyClient(Environment* env, std::vector<DepSkyCloud> clouds,
               DepSkyConfig config, uint64_t seed = 99);
  // Waits for ACL continuations still riding behind straggler PUTs.
  ~DepSkyClient();

  // Stores a new version. `content_hash` is the hex consistency-anchor hash
  // of `data` (computed by the caller; verified on read). Returns the new
  // version number. If `merge_grants` is non-null, those grants are folded
  // into the unit metadata in the same metadata push (no extra round trip).
  //
  // `data` is a borrowed view: the payload is encrypted straight into the
  // erasure-coding arena (secret-sharing mode) or serialized straight into
  // the per-cloud wire objects (replication mode) — the client never makes
  // its own copy of the plaintext.
  Result<uint64_t> WriteVersion(
      const std::string& unit, const std::string& content_hash,
      ConstByteSpan data,
      const std::vector<DepSkyGrant>* merge_grants = nullptr);

  // Reads the version with the given content hash; NOT_FOUND if no (visible)
  // metadata lists it — the consistency-anchor read loop retries.
  Result<Bytes> ReadByHash(const std::string& unit,
                           const std::string& content_hash);

  // Reads the highest authenticated version.
  Result<Bytes> ReadLatest(const std::string& unit);

  // Quorum-read of the data unit's metadata.
  Result<DepSkyMetadata> ReadMetadata(const std::string& unit);

  // Garbage collection: drops one version (objects + metadata entry), or the
  // whole unit.
  Status DeleteVersion(const std::string& unit, uint64_t version);
  Status DeleteUnit(const std::string& unit);

  // Sharing: grants `grant.cloud_ids[i]` access at cloud i to all current and
  // future objects of the unit, and records the grant in the metadata so
  // future writers re-apply it. Empty read+write revokes.
  Status SetGrant(const std::string& unit, const DepSkyGrant& grant);

  unsigned cloud_count() const { return static_cast<unsigned>(clouds_.size()); }
  const DepSkyConfig& config() const { return config_; }

 private:
  static std::string MetadataKey(const std::string& unit);
  static std::string ValueKey(const std::string& unit, uint64_t version);

  // Writes the given metadata to every cloud through the async ObjectStore
  // API, returning as soon as a write quorum (n-f) has acknowledged; the
  // stragglers keep running inside their stores.
  Status PushMetadata(const std::string& unit, const DepSkyMetadata& md);

  // Fetches and reassembles one version.
  Result<Bytes> FetchVersion(const std::string& unit,
                             const DepSkyMetadata& md,
                             const DepSkyVersion& version);

  // Applies all grants (+ owner) to one object at one cloud, waiting for
  // the ACL round trips.
  void ApplyAclsToObject(const DepSkyMetadata& md, unsigned cloud,
                         const std::string& key);
  // Same, but queues the ACL round trips through the async API and appends
  // their futures to `out` — post-quorum call sites fan ACLs out across
  // clouds and pay max-of-clouds, not the sum.
  void CollectAclFutures(const DepSkyMetadata& md, unsigned cloud,
                         const std::string& key,
                         std::vector<Future<Status>>* out);
  // Applies the ACLs once `put` completes successfully — attached to PUTs
  // still in flight past a quorum trigger, so a consistently slow (but
  // correct) cloud still converges to the granted state instead of
  // permanently consuming the fault margin.
  void ApplyAclsWhenWritten(Future<Status> put, unsigned cloud,
                            std::shared_ptr<const DepSkyMetadata> md,
                            const std::string& key);

  Bytes RandomBytesLocked(size_t size);

  Environment* env_;
  std::vector<DepSkyCloud> clouds_;
  DepSkyConfig config_;
  std::mutex rng_mu_;
  Rng rng_;
  InFlightTracker async_ops_;
};

}  // namespace scfs

#endif  // SCFS_DEPSKY_DEPSKY_H_
