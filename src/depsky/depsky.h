// DepSkyClient: the cloud-of-clouds storage protocols (paper §3.2, Figure 6,
// and [15]), extended with SCFS's read-by-hash operation for consistency
// anchoring.
//
// A data unit is a versioned object spread over n = 3f+1 clouds. A write:
//   1. generates a fresh random key K, encrypts the file with it,
//   2. erasure-codes the ciphertext into n shards (any k = f+1 recover it),
//   3. secret-shares K so each cloud gets one share (f+1 shares recover K),
//   4. stores shard_i + share_i in cloud i — with preferred quorums only the
//      cheapest n-f clouds are used unless one fails,
//   5. appends the version to the authenticated metadata object replicated in
//      every cloud.
// A read fetches the metadata from all clouds, keeps the highest
// authenticated version, then fetches any k valid shards (hash-checked, so
// corrupted or byzantine clouds are detected and skipped).
//
// No single cloud ever holds the plaintext or the whole key: confidentiality,
// integrity and availability survive f arbitrary cloud faults.

#ifndef SCFS_DEPSKY_DEPSKY_H_
#define SCFS_DEPSKY_DEPSKY_H_

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "src/cloud/health.h"
#include "src/cloud/object_store.h"
#include "src/codec/reed_solomon.h"
#include "src/common/backoff.h"
#include "src/common/executor.h"
#include "src/common/future.h"
#include "src/common/rng.h"
#include "src/common/timer_queue.h"
#include "src/crypto/secret_sharing.h"
#include "src/depsky/metadata.h"
#include "src/sim/environment.h"

namespace scfs {

struct DepSkyCloud {
  ObjectStore* store = nullptr;
  CloudCredentials creds;  // this client's account at that provider
};

struct DepSkyConfig {
  unsigned f = 1;
  DepSkyMode mode = DepSkyMode::kSecretSharing;
  bool preferred_quorums = true;  // write shards to n-f clouds only
  Bytes auth_key;                 // metadata HMAC key (deployment secret)

  // --- Degraded-mode behavior (see DESIGN.md "Failure model") ---
  // Per-attempt deadline on every cloud request; a request that has not
  // answered by then is counted as a failure (and possibly retried) while
  // the straggler keeps running in its store. 0 disables. Deadlines and
  // hedges are timer-driven and therefore inert in instant environments.
  VirtualDuration request_deadline = FromSecondsD(5);
  // Attempts per cloud request (1 = no retry). Retries back off with
  // `retry_backoff` between attempts.
  int max_attempts = 2;
  BackoffPolicy retry_backoff{FromMillis(50), FromMillis(1000), 2.0, 0.5};
  // Shard reads launch one extra holder after an adaptive delay (the
  // (f+2)-th cloud) instead of waiting out a straggler.
  bool hedged_reads = true;
  // Circuit-breaker / EWMA configuration for the per-cloud health tracker.
  HealthOptions health;

  // --- Striped large-file data plane (DESIGN.md "Striped data plane") ---
  // Secret-sharing writes strictly larger than stripe_threshold bytes are cut
  // into stripe_unit() sized units, each its own independent
  // encrypt→erasure-encode→quorum-PUT, fanned out with bounded depth. One
  // version number, one metadata record and one key/nonce cover all units.
  // 0 disables striping (everything takes the monolithic path).
  size_t stripe_threshold = 4 * 1024 * 1024;
  size_t stripe_unit_size = 4 * 1024 * 1024;
  // Units in flight per write/read: peak client memory for a striped
  // transfer is O(stripe_window() × stripe_unit()), not O(file). 0 = auto:
  // match the host's core count (capped at 8) — depth beyond the cores only
  // buys context switches when the pipeline is CPU-bound, while a
  // single-core host degrades to the optimal serial loop.
  unsigned stripe_inflight = 0;

  unsigned n() const { return 3 * f + 1; }
  unsigned k() const { return f + 1; }
  unsigned quorum() const { return n() - f; }
  // Unit size rounded up to the cipher block (64 bytes) so each unit's
  // keystream counter offset (unit byte offset / 64) addresses the same
  // file-wide stream a monolithic encryption would produce.
  size_t stripe_unit() const {
    const size_t base =
        stripe_unit_size == 0 ? 4 * 1024 * 1024 : stripe_unit_size;
    return (base + 63) / 64 * 64;
  }
  // Effective in-flight window (resolves the auto default).
  unsigned stripe_window() const {
    if (stripe_inflight > 0) {
      return stripe_inflight;
    }
    unsigned cores = std::thread::hardware_concurrency();
    return cores == 0 ? 2 : std::min(cores, 8u);
  }
};

// Outcome of one scrub pass over a data unit (see ScrubUnit): how many stored
// objects were probed, found missing/corrupt, rebuilt in place, moved to a
// substitute cloud, or left unrepaired.
struct DepSkyScrubReport {
  uint64_t versions_checked = 0;
  uint64_t objects_checked = 0;
  uint64_t objects_missing = 0;
  uint64_t objects_repaired = 0;
  uint64_t objects_relocated = 0;
  uint64_t repair_failures = 0;
  // True when every recorded holder ended the pass with a hash-valid object.
  bool fully_redundant = true;
};

class DepSkyClient {
 public:
  DepSkyClient(Environment* env, std::vector<DepSkyCloud> clouds,
               DepSkyConfig config, uint64_t seed = 99);
  // Waits for ACL continuations still riding behind straggler PUTs.
  ~DepSkyClient();

  // Stores a new version. `content_hash` is the hex consistency-anchor hash
  // of `data` (computed by the caller; verified on read). Returns the new
  // version number. If `merge_grants` is non-null, those grants are folded
  // into the unit metadata in the same metadata push (no extra round trip).
  //
  // `data` is a borrowed view: the payload is encrypted straight into the
  // erasure-coding arena (secret-sharing mode) or serialized straight into
  // the per-cloud wire objects (replication mode) — the client never makes
  // its own copy of the plaintext.
  Result<uint64_t> WriteVersion(
      const std::string& unit, const std::string& content_hash,
      ConstByteSpan data,
      const std::vector<DepSkyGrant>* merge_grants = nullptr);

  // Reads the version with the given content hash; NOT_FOUND if no (visible)
  // metadata lists it — the consistency-anchor read loop retries.
  Result<Bytes> ReadByHash(const std::string& unit,
                           const std::string& content_hash);

  // Reads the highest authenticated version.
  Result<Bytes> ReadLatest(const std::string& unit);

  // Range read of the version with the given content hash: for a striped
  // version only the stripe units overlapping [offset, offset+length) are
  // fetched (each verified against its recorded plaintext hash); monolithic
  // versions fall back to a full fetch and slice. Reads past EOF are clamped.
  Result<Bytes> ReadAt(const std::string& unit, const std::string& content_hash,
                       uint64_t offset, size_t length);

  // Scrub & repair: probes every recorded holder of every version (stripe
  // units included), and rebuilds missing or corrupt stored objects from k
  // surviving shards — re-deriving parity with the erasure code and the lost
  // key share by Lagrange interpolation, so the repaired object is
  // byte-identical to the original (same recorded hash, no metadata change).
  // If a holder stays unreachable, the shard is relocated to a cloud that
  // holds none of this object's shards and the metadata map is updated.
  // Client reads keep working throughout — repair touches only clouds,
  // never the read path.
  Result<DepSkyScrubReport> ScrubUnit(const std::string& unit);

  // Quorum-read of the data unit's metadata.
  Result<DepSkyMetadata> ReadMetadata(const std::string& unit);

  // Garbage collection: drops one version (objects + metadata entry), or the
  // whole unit.
  Status DeleteVersion(const std::string& unit, uint64_t version);
  Status DeleteUnit(const std::string& unit);

  // Sharing: grants `grant.cloud_ids[i]` access at cloud i to all current and
  // future objects of the unit, and records the grant in the metadata so
  // future writers re-apply it. Empty read+write revokes.
  Status SetGrant(const std::string& unit, const DepSkyGrant& grant);

  unsigned cloud_count() const { return static_cast<unsigned>(clouds_.size()); }
  const DepSkyConfig& config() const { return config_; }

  // Self-healing telemetry: the per-cloud breaker/EWMA state and the
  // counters the fault benches report.
  const CloudHealthTracker& health() const { return health_; }
  uint64_t retries() const { return retries_.load(); }
  uint64_t deadline_expiries() const { return deadline_expiries_.load(); }
  uint64_t hedged_reads() const { return hedged_reads_.load(); }
  // Arena recycling across stripe units and sequential writes.
  uint64_t arena_pool_hits() const { return arena_pool_.hits(); }
  uint64_t arena_pool_misses() const { return arena_pool_.misses(); }

  // Deterministic cloud key naming for a unit's metadata and value objects
  // (exposed so tests and inspection tooling can address stored objects).
  static std::string MetadataKey(const std::string& unit);
  static std::string ValueKey(const std::string& unit, uint64_t version);
  static std::string StripeValueKey(const std::string& unit, uint64_t version,
                                    uint64_t stripe_index);

 private:
  struct ShardFetchState;

  // Shards + key shares collected by one quorum shard fetch.
  struct FetchedShards {
    std::vector<std::optional<Bytes>> shards;  // by shard index
    std::vector<SecretShare> shares;
  };

  // Writes the given metadata to every cloud through the async ObjectStore
  // API, returning as soon as a write quorum (n-f) has acknowledged; the
  // stragglers keep running inside their stores.
  Status PushMetadata(const std::string& unit, const DepSkyMetadata& md);

  // Fetches and reassembles one version.
  Result<Bytes> FetchVersion(const std::string& unit,
                             const DepSkyMetadata& md,
                             const DepSkyVersion& version);

  // Places one object set (shard i + share i per cloud) under `value_key`:
  // health-ordered preferred wave fanned out to the write quorum, ACLs on the
  // acknowledged copies, then a fallback wave routing failed shards to spare
  // clouds (re-encoding via `encode_object`). Returns the cloud→shard map,
  // or UNAVAILABLE if no write quorum was reached.
  Result<std::vector<int32_t>> PlaceObjects(
      const DepSkyMetadata& md, const std::string& value_key,
      std::vector<Bytes> objects,
      const std::function<Bytes(unsigned)>& encode_object);

  // Quorum-fetches k hash-valid stored objects of one value key (monolithic
  // version or single stripe unit) through the hedged/breaker read path.
  Result<FetchedShards> FetchShards(const std::string& unit,
                                    const std::string& value_key, unsigned k,
                                    const std::vector<int32_t>& cloud_shard,
                                    const std::vector<Bytes>& shard_hashes);

  // Striped write: cuts `data` into stripe units and pipelines their
  // independent encode+PUT through the executor with at most
  // config_.stripe_inflight units in flight. `version` arrives with
  // version/content_hash/size filled in; publishes the stripe manifest.
  Result<uint64_t> WriteStripedVersion(const std::string& unit,
                                       DepSkyMetadata md,
                                       DepSkyVersion version,
                                       ConstByteSpan data);
  // One unit of a striped write: pooled arena, encrypt at the unit's
  // keystream offset, parity, hash, place.
  Result<DepSkyStripeUnit> WriteStripeUnit(const DepSkyMetadata& md,
                                           const std::string& value_key,
                                           ConstByteSpan plaintext,
                                           const Bytes& key,
                                           const Bytes& nonce,
                                           const std::vector<SecretShare>& shares,
                                           uint32_t counter);

  // Striped read: pipelines unit fetch+decode+decrypt into one buffer.
  Result<Bytes> FetchStripedVersion(const std::string& unit,
                                    const DepSkyMetadata& md,
                                    const DepSkyVersion& version);
  // Fetches one stripe unit's plaintext into `out` (sized to the unit).
  // When `verify_unit_hash` is set the decrypted unit is checked against the
  // manifest's per-unit SHA-256 (range reads can't rely on the whole-file
  // consistency-anchor hash).
  Status FetchStripeUnit(const std::string& unit, const DepSkyMetadata& md,
                         const DepSkyVersion& version, size_t stripe_index,
                         ByteSpan out, bool verify_unit_hash);

  // Scrub of one object set: probes recorded holders, rebuilds lost or
  // corrupt objects byte-identically (erasure re-encode + Lagrange share
  // recovery), re-uploads in place or relocates to an unused cloud (flips
  // *metadata_dirty so the caller pushes the updated map once).
  void ScrubObjectSet(const DepSkyMetadata& md, const std::string& value_key,
                      const std::vector<Bytes>& shard_hashes,
                      std::vector<int32_t>* cloud_shard,
                      DepSkyScrubReport* report, bool* metadata_dirty);

  // Applies all grants (+ owner) to one object at one cloud, waiting for
  // the ACL round trips.
  void ApplyAclsToObject(const DepSkyMetadata& md, unsigned cloud,
                         const std::string& key);
  // Same, but queues the ACL round trips through the async API and appends
  // their futures to `out` — post-quorum call sites fan ACLs out across
  // clouds and pay max-of-clouds, not the sum.
  void CollectAclFutures(const DepSkyMetadata& md, unsigned cloud,
                         const std::string& key,
                         std::vector<Future<Status>>* out);
  // Applies the ACLs once `put` completes successfully — attached to PUTs
  // still in flight past a quorum trigger, so a consistently slow (but
  // correct) cloud still converges to the granted state instead of
  // permanently consuming the fault margin.
  void ApplyAclsWhenWritten(Future<Status> put, unsigned cloud,
                            std::shared_ptr<const DepSkyMetadata> md,
                            const std::string& key);

  Bytes RandomBytesLocked(size_t size);

  // Wraps one cloud request with the robustness envelope: a per-attempt
  // deadline, capped-backoff retries, and health accounting. `issue` starts
  // (or restarts) the underlying async request; `responsive` decides
  // whether a completed value counts as the cloud answering (NOT_FOUND is a
  // perfectly healthy answer); `timeout_value` synthesizes the value for a
  // deadline expiry. Defined in depsky.cc.
  Future<Status> RobustPut(unsigned cloud, const std::string& key,
                           std::shared_ptr<const Bytes> data);
  Future<Result<Bytes>> RobustGet(unsigned cloud, const std::string& key);

  // Launches the next unlaunched holder of a shard fetch (failure-triggered
  // or hedged), and arms the hedge timer chain.
  void LaunchShardGet(const std::shared_ptr<ShardFetchState>& state);
  void ArmHedgeTimer(const std::shared_ptr<ShardFetchState>& state);

  Environment* env_;
  std::vector<DepSkyCloud> clouds_;
  DepSkyConfig config_;
  std::mutex rng_mu_;
  Rng rng_;
  CloudHealthTracker health_;
  VirtualTimerQueue timers_;
  std::atomic<uint64_t> retries_{0};
  std::atomic<uint64_t> deadline_expiries_{0};
  std::atomic<uint64_t> hedged_reads_{0};
  // Recycled across stripe units and sequential writes; sized to keep a full
  // stripe window's arenas warm.
  ArenaPool arena_pool_;
  InFlightTracker async_ops_;
};

}  // namespace scfs

#endif  // SCFS_DEPSKY_DEPSKY_H_
