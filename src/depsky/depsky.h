// DepSkyClient: the cloud-of-clouds storage protocols (paper §3.2, Figure 6,
// and [15]), extended with SCFS's read-by-hash operation for consistency
// anchoring.
//
// A data unit is a versioned object spread over n = 3f+1 clouds. A write:
//   1. generates a fresh random key K, encrypts the file with it,
//   2. erasure-codes the ciphertext into n shards (any k = f+1 recover it),
//   3. secret-shares K so each cloud gets one share (f+1 shares recover K),
//   4. stores shard_i + share_i in cloud i — with preferred quorums only the
//      cheapest n-f clouds are used unless one fails,
//   5. appends the version to the authenticated metadata object replicated in
//      every cloud.
// A read fetches the metadata from all clouds, keeps the highest
// authenticated version, then fetches any k valid shards (hash-checked, so
// corrupted or byzantine clouds are detected and skipped).
//
// No single cloud ever holds the plaintext or the whole key: confidentiality,
// integrity and availability survive f arbitrary cloud faults.

#ifndef SCFS_DEPSKY_DEPSKY_H_
#define SCFS_DEPSKY_DEPSKY_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/cloud/health.h"
#include "src/cloud/object_store.h"
#include "src/codec/reed_solomon.h"
#include "src/common/backoff.h"
#include "src/common/executor.h"
#include "src/common/future.h"
#include "src/common/rng.h"
#include "src/common/timer_queue.h"
#include "src/depsky/metadata.h"
#include "src/sim/environment.h"

namespace scfs {

struct DepSkyCloud {
  ObjectStore* store = nullptr;
  CloudCredentials creds;  // this client's account at that provider
};

struct DepSkyConfig {
  unsigned f = 1;
  DepSkyMode mode = DepSkyMode::kSecretSharing;
  bool preferred_quorums = true;  // write shards to n-f clouds only
  Bytes auth_key;                 // metadata HMAC key (deployment secret)

  // --- Degraded-mode behavior (see DESIGN.md "Failure model") ---
  // Per-attempt deadline on every cloud request; a request that has not
  // answered by then is counted as a failure (and possibly retried) while
  // the straggler keeps running in its store. 0 disables. Deadlines and
  // hedges are timer-driven and therefore inert in instant environments.
  VirtualDuration request_deadline = FromSecondsD(5);
  // Attempts per cloud request (1 = no retry). Retries back off with
  // `retry_backoff` between attempts.
  int max_attempts = 2;
  BackoffPolicy retry_backoff{FromMillis(50), FromMillis(1000), 2.0, 0.5};
  // Shard reads launch one extra holder after an adaptive delay (the
  // (f+2)-th cloud) instead of waiting out a straggler.
  bool hedged_reads = true;
  // Circuit-breaker / EWMA configuration for the per-cloud health tracker.
  HealthOptions health;

  unsigned n() const { return 3 * f + 1; }
  unsigned k() const { return f + 1; }
  unsigned quorum() const { return n() - f; }
};

class DepSkyClient {
 public:
  DepSkyClient(Environment* env, std::vector<DepSkyCloud> clouds,
               DepSkyConfig config, uint64_t seed = 99);
  // Waits for ACL continuations still riding behind straggler PUTs.
  ~DepSkyClient();

  // Stores a new version. `content_hash` is the hex consistency-anchor hash
  // of `data` (computed by the caller; verified on read). Returns the new
  // version number. If `merge_grants` is non-null, those grants are folded
  // into the unit metadata in the same metadata push (no extra round trip).
  //
  // `data` is a borrowed view: the payload is encrypted straight into the
  // erasure-coding arena (secret-sharing mode) or serialized straight into
  // the per-cloud wire objects (replication mode) — the client never makes
  // its own copy of the plaintext.
  Result<uint64_t> WriteVersion(
      const std::string& unit, const std::string& content_hash,
      ConstByteSpan data,
      const std::vector<DepSkyGrant>* merge_grants = nullptr);

  // Reads the version with the given content hash; NOT_FOUND if no (visible)
  // metadata lists it — the consistency-anchor read loop retries.
  Result<Bytes> ReadByHash(const std::string& unit,
                           const std::string& content_hash);

  // Reads the highest authenticated version.
  Result<Bytes> ReadLatest(const std::string& unit);

  // Quorum-read of the data unit's metadata.
  Result<DepSkyMetadata> ReadMetadata(const std::string& unit);

  // Garbage collection: drops one version (objects + metadata entry), or the
  // whole unit.
  Status DeleteVersion(const std::string& unit, uint64_t version);
  Status DeleteUnit(const std::string& unit);

  // Sharing: grants `grant.cloud_ids[i]` access at cloud i to all current and
  // future objects of the unit, and records the grant in the metadata so
  // future writers re-apply it. Empty read+write revokes.
  Status SetGrant(const std::string& unit, const DepSkyGrant& grant);

  unsigned cloud_count() const { return static_cast<unsigned>(clouds_.size()); }
  const DepSkyConfig& config() const { return config_; }

  // Self-healing telemetry: the per-cloud breaker/EWMA state and the
  // counters the fault benches report.
  const CloudHealthTracker& health() const { return health_; }
  uint64_t retries() const { return retries_.load(); }
  uint64_t deadline_expiries() const { return deadline_expiries_.load(); }
  uint64_t hedged_reads() const { return hedged_reads_.load(); }

  // Deterministic cloud key naming for a unit's metadata and value objects
  // (exposed so tests and inspection tooling can address stored objects).
  static std::string MetadataKey(const std::string& unit);
  static std::string ValueKey(const std::string& unit, uint64_t version);

 private:
  struct ShardFetchState;

  // Writes the given metadata to every cloud through the async ObjectStore
  // API, returning as soon as a write quorum (n-f) has acknowledged; the
  // stragglers keep running inside their stores.
  Status PushMetadata(const std::string& unit, const DepSkyMetadata& md);

  // Fetches and reassembles one version.
  Result<Bytes> FetchVersion(const std::string& unit,
                             const DepSkyMetadata& md,
                             const DepSkyVersion& version);

  // Applies all grants (+ owner) to one object at one cloud, waiting for
  // the ACL round trips.
  void ApplyAclsToObject(const DepSkyMetadata& md, unsigned cloud,
                         const std::string& key);
  // Same, but queues the ACL round trips through the async API and appends
  // their futures to `out` — post-quorum call sites fan ACLs out across
  // clouds and pay max-of-clouds, not the sum.
  void CollectAclFutures(const DepSkyMetadata& md, unsigned cloud,
                         const std::string& key,
                         std::vector<Future<Status>>* out);
  // Applies the ACLs once `put` completes successfully — attached to PUTs
  // still in flight past a quorum trigger, so a consistently slow (but
  // correct) cloud still converges to the granted state instead of
  // permanently consuming the fault margin.
  void ApplyAclsWhenWritten(Future<Status> put, unsigned cloud,
                            std::shared_ptr<const DepSkyMetadata> md,
                            const std::string& key);

  Bytes RandomBytesLocked(size_t size);

  // Wraps one cloud request with the robustness envelope: a per-attempt
  // deadline, capped-backoff retries, and health accounting. `issue` starts
  // (or restarts) the underlying async request; `responsive` decides
  // whether a completed value counts as the cloud answering (NOT_FOUND is a
  // perfectly healthy answer); `timeout_value` synthesizes the value for a
  // deadline expiry. Defined in depsky.cc.
  Future<Status> RobustPut(unsigned cloud, const std::string& key, Bytes data);
  Future<Result<Bytes>> RobustGet(unsigned cloud, const std::string& key);

  // Launches the next unlaunched holder of a shard fetch (failure-triggered
  // or hedged), and arms the hedge timer chain.
  void LaunchShardGet(const std::shared_ptr<ShardFetchState>& state);
  void ArmHedgeTimer(const std::shared_ptr<ShardFetchState>& state);

  Environment* env_;
  std::vector<DepSkyCloud> clouds_;
  DepSkyConfig config_;
  std::mutex rng_mu_;
  Rng rng_;
  CloudHealthTracker health_;
  VirtualTimerQueue timers_;
  std::atomic<uint64_t> retries_{0};
  std::atomic<uint64_t> deadline_expiries_{0};
  std::atomic<uint64_t> hedged_reads_{0};
  InFlightTracker async_ops_;
};

}  // namespace scfs

#endif  // SCFS_DEPSKY_DEPSKY_H_
