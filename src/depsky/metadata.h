// DepSky data-unit metadata (paper §3.2, [15]).
//
// Each data unit (one SCFS file) has a metadata object replicated in every
// cloud. It records the version history — for each version: the SCFS content
// hash (the consistency-anchor hash), the cipher nonce, the per-shard SHA-256
// hashes used to detect corrupted clouds, and which cloud holds which erasure
// shard (preferred quorums leave one cloud empty). The whole record carries
// an HMAC-SHA256 authenticator so a byzantine cloud cannot forge versions
// (substitution for DepSky's RSA signatures; same verify-on-read path).

#ifndef SCFS_DEPSKY_METADATA_H_
#define SCFS_DEPSKY_METADATA_H_

#include <string>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/status.h"

namespace scfs {

enum class DepSkyMode : uint8_t {
  kReplication = 0,    // DepSky-A: full replicas, no confidentiality
  kSecretSharing = 1,  // DepSky-CA: encrypt + erasure-code + secret-share key
};

// One unit of a striped version (see DESIGN.md "Striped data plane"): the
// file is cut into fixed-size units, each independently erasure-coded and
// quorum-written, all sharing the version's key, nonce and key shares. The
// unit records what a monolithic version records per object — per-shard
// object hashes and the cloud→shard map — plus the SHA-256 of the unit's
// plaintext so range reads verify without the whole file.
struct DepSkyStripeUnit {
  Bytes content_hash;                // SHA-256 of the unit's plaintext
  std::vector<Bytes> shard_hashes;   // per shard index, same coverage as below
  std::vector<int32_t> cloud_shard;  // cloud i holds shard cloud_shard[i]
};

struct DepSkyVersion {
  uint64_t version = 0;
  std::string content_hash;          // hex SHA-1 of the plaintext (CA hash)
  uint64_t size = 0;                 // plaintext size
  Bytes nonce;                       // cipher nonce (CA mode)
  // SHA-256 of the complete stored object (shard + key share + framing) per
  // shard index — covers the share, so a faulty cloud cannot poison key
  // reconstruction while leaving the shard bytes intact.
  std::vector<Bytes> shard_hashes;
  std::vector<int32_t> cloud_shard;  // cloud i holds shard cloud_shard[i], -1 if none

  // Stripe manifest: 0 / empty for a monolithic version (shard_hashes +
  // cloud_shard above describe the single object). For a striped version the
  // per-object records live in stripe_units and the two vectors above stay
  // empty. One version number and one metadata record cover all units, so
  // locking and consistency-anchor semantics are unchanged.
  uint64_t stripe_unit_size = 0;
  std::vector<DepSkyStripeUnit> stripe_units;

  bool striped() const { return stripe_unit_size != 0; }
};

struct DepSkyGrant {
  // Canonical id of the grantee at each cloud, in cloud order.
  std::vector<std::string> cloud_ids;
  bool read = false;
  bool write = false;
};

struct DepSkyMetadata {
  uint32_t n = 4;
  uint32_t k = 2;
  DepSkyMode mode = DepSkyMode::kSecretSharing;
  // Canonical id of the data-unit owner at each cloud; writers grant the
  // owner access to every object they create so shared writes stay readable.
  std::vector<std::string> owner_ids;
  std::vector<DepSkyVersion> versions;  // ascending version order
  std::vector<DepSkyGrant> grants;

  // Serializes and appends the HMAC authenticator.
  Bytes Encode(const Bytes& auth_key) const;
  // Decodes and verifies the authenticator; CORRUPTION on any mismatch.
  static Result<DepSkyMetadata> Decode(const Bytes& data,
                                       const Bytes& auth_key);

  const DepSkyVersion* Latest() const {
    return versions.empty() ? nullptr : &versions.back();
  }
  const DepSkyVersion* FindByHash(const std::string& content_hash) const;
  uint64_t NextVersionNumber() const {
    return versions.empty() ? 1 : versions.back().version + 1;
  }
};

// The per-cloud value object: one erasure shard (or full replica) plus this
// cloud's Shamir share of the file key (CA mode).
struct DepSkyValueObject {
  Bytes shard;
  uint8_t share_index = 0;  // 0 = no share (replication mode)
  Bytes share_data;

  Bytes Encode() const;
  // Serializes without materializing a DepSkyValueObject: the shard (an arena
  // view on the write path) is copied exactly once, into the wire buffer.
  static Bytes EncodeParts(ConstByteSpan shard, uint8_t share_index,
                           ConstByteSpan share_data);
  static Result<DepSkyValueObject> Decode(const Bytes& data);
};

}  // namespace scfs

#endif  // SCFS_DEPSKY_METADATA_H_
