#include "src/depsky/depsky.h"

#include <algorithm>
#include <deque>
#include <numeric>

#include "src/crypto/chacha20.h"
#include "src/crypto/secret_sharing.h"
#include "src/crypto/sha1.h"
#include "src/crypto/sha256.h"

namespace scfs {

namespace {

// Everything one robust cloud request needs from its DepSkyClient, borrowed
// for the call's lifetime (the client's destructor awaits async_ops_, which
// the call holds until it settles).
struct RobustContext {
  Environment* env = nullptr;
  VirtualTimerQueue* timers = nullptr;
  CloudHealthTracker* health = nullptr;
  const DepSkyConfig* config = nullptr;
  std::mutex* rng_mu = nullptr;
  Rng* rng = nullptr;
  InFlightTracker* tracker = nullptr;
  std::atomic<uint64_t>* retries = nullptr;
  std::atomic<uint64_t>* deadline_expiries = nullptr;
};

// One cloud request wrapped in the robustness envelope: a per-attempt
// deadline (enforced by the shared timer queue, so no watchdog thread per
// request), capped-backoff-with-jitter retries, and success/failure
// accounting into the health tracker. The modelled request itself is never
// aborted — a deadline expiry counts the attempt as failed and moves on
// while the straggler finishes inside its store, exactly like an HTTP
// client timing out a slow provider.
template <typename T>
class RobustCall : public std::enable_shared_from_this<RobustCall<T>> {
 public:
  RobustCall(RobustContext ctx, unsigned cloud,
             std::function<Future<T>()> issue,
             std::function<bool(const T&)> responsive,
             std::function<T()> timeout_value)
      : ctx_(ctx),
        cloud_(cloud),
        issue_(std::move(issue)),
        responsive_(std::move(responsive)),
        timeout_value_(std::move(timeout_value)) {}

  Future<T> Start() {
    first_start_ = ctx_.env->Now();
    ctx_.tracker->Add();
    Attempt(0);
    return promise_.future();
  }

 private:
  void Attempt(int attempt) {
    auto self = this->shared_from_this();
    VirtualTime start = ctx_.env->Now();
    // The deadline timer and the completion callback race to claim the
    // attempt; exactly one settles it.
    auto claimed = std::make_shared<std::atomic<bool>>(false);
    auto timer_id = std::make_shared<uint64_t>(0);
    if (ctx_.config->request_deadline > 0) {
      *timer_id = ctx_.timers->Schedule(
          start + ctx_.config->request_deadline,
          [self, attempt, start, claimed] {
            if (!claimed->exchange(true)) {
              self->ctx_.deadline_expiries->fetch_add(1);
              self->Settle(attempt, self->timeout_value_(), false);
            }
          });
    }
    Future<T> inner = issue_();
    inner.OnReady(
        [self, attempt, start, claimed, timer_id](const T& value,
                                                  VirtualDuration) {
          if (claimed->exchange(true)) {
            return;  // the deadline already declared this attempt dead
          }
          self->ctx_.timers->Cancel(*timer_id);
          self->Settle(attempt, value, self->responsive_(value),
                       self->ctx_.env->Now() - start);
        });
  }

  void Settle(int attempt, T value, bool responsive,
              VirtualDuration latency = 0) {
    VirtualTime now = ctx_.env->Now();
    if (responsive) {
      ctx_.health->RecordSuccess(cloud_, now, latency);
      Finish(std::move(value), now);
      return;
    }
    ctx_.health->RecordFailure(cloud_, now);
    int max_attempts = std::max(1, ctx_.config->max_attempts);
    if (attempt + 1 < max_attempts) {
      ctx_.retries->fetch_add(1);
      VirtualDuration delay;
      {
        std::lock_guard<std::mutex> lock(*ctx_.rng_mu);
        delay = ctx_.config->retry_backoff.Delay(attempt, *ctx_.rng);
      }
      auto self = this->shared_from_this();
      if (delay > 0) {
        uint64_t id = ctx_.timers->Schedule(
            now + delay, [self, attempt] { self->Attempt(attempt + 1); });
        if (id != 0) {
          return;  // retry armed on the timer thread
        }
      }
      Attempt(attempt + 1);  // instant environment: retry inline, no delay
      return;
    }
    Finish(std::move(value), now);
  }

  void Finish(T value, VirtualTime now) {
    promise_.Set(std::move(value), now - first_start_);
    ctx_.tracker->Done();
  }

  RobustContext ctx_;
  unsigned cloud_;
  std::function<Future<T>()> issue_;
  std::function<bool(const T&)> responsive_;
  std::function<T()> timeout_value_;
  VirtualTime first_start_ = 0;
  Promise<T> promise_;
};

// A cloud that answers — even with NOT_FOUND or PERMISSION_DENIED — is
// healthy; only unreachability (and deadline expiry) counts against it.
bool ResponsiveStatus(const Status& s) {
  return s.ok() || s.code() == ErrorCode::kNotFound ||
         s.code() == ErrorCode::kPermissionDenied ||
         s.code() == ErrorCode::kAlreadyExists;
}

}  // namespace

DepSkyClient::DepSkyClient(Environment* env, std::vector<DepSkyCloud> clouds,
                           DepSkyConfig config, uint64_t seed)
    : env_(env),
      clouds_(std::move(clouds)),
      config_(config),
      rng_(seed),
      health_(static_cast<unsigned>(clouds_.size()), config.health),
      timers_(env) {}

DepSkyClient::~DepSkyClient() {
  // Every RobustCall holds a tracker slot until it settles, and pending
  // retries live on the timer queue — await them before the members (the
  // timer queue among them) are torn down.
  async_ops_.AwaitIdle();
}

Future<Status> DepSkyClient::RobustPut(unsigned cloud, const std::string& key,
                                       std::shared_ptr<const Bytes> data) {
  RobustContext ctx{env_,     &timers_, &health_,  &config_,           &rng_mu_,
                    &rng_,    &async_ops_, &retries_, &deadline_expiries_};
  // Every attempt shares the one encoded buffer — the store takes a
  // reference, not a copy, so a retry costs a request, not a payload copy.
  auto call = std::make_shared<RobustCall<Status>>(
      ctx, cloud,
      [this, cloud, key, data = std::move(data)]() {
        return clouds_[cloud].store->PutAsync(clouds_[cloud].creds, key, data);
      },
      [](const Status& s) { return ResponsiveStatus(s); },
      [key]() { return TimeoutError("deadline expired: PUT " + key); });
  return call->Start();
}

Future<Result<Bytes>> DepSkyClient::RobustGet(unsigned cloud,
                                              const std::string& key) {
  RobustContext ctx{env_,     &timers_, &health_,  &config_,           &rng_mu_,
                    &rng_,    &async_ops_, &retries_, &deadline_expiries_};
  auto call = std::make_shared<RobustCall<Result<Bytes>>>(
      ctx, cloud,
      [this, cloud, key]() {
        return clouds_[cloud].store->GetAsync(clouds_[cloud].creds, key);
      },
      [](const Result<Bytes>& r) { return ResponsiveStatus(r.status()) || r.ok(); },
      [key]() -> Result<Bytes> {
        return TimeoutError("deadline expired: GET " + key);
      });
  return call->Start();
}

void DepSkyClient::ApplyAclsWhenWritten(
    Future<Status> put, unsigned cloud,
    std::shared_ptr<const DepSkyMetadata> md, const std::string& key) {
  async_ops_.Add();
  put.OnReady([this, cloud, md, key](const Status& status, VirtualDuration) {
    if (status.ok()) {
      std::vector<Future<Status>> acl;
      CollectAclFutures(*md, cloud, key, &acl);
      // The ACL requests' own completion is tracked by their store.
    }
    async_ops_.Done();
  });
}

std::string DepSkyClient::MetadataKey(const std::string& unit) {
  return "du/" + unit + "/md";
}

std::string DepSkyClient::ValueKey(const std::string& unit, uint64_t version) {
  return "du/" + unit + "/v" + std::to_string(version);
}

std::string DepSkyClient::StripeValueKey(const std::string& unit,
                                         uint64_t version,
                                         uint64_t stripe_index) {
  return "du/" + unit + "/v" + std::to_string(version) + "/u" +
         std::to_string(stripe_index);
}

Bytes DepSkyClient::RandomBytesLocked(size_t size) {
  std::lock_guard<std::mutex> lock(rng_mu_);
  return rng_.RandomBytes(size);
}

Result<DepSkyMetadata> DepSkyClient::ReadMetadata(const std::string& unit) {
  const std::string key = MetadataKey(unit);
  // Fan the GET out to every cloud through the async API, but return as soon
  // as a quorum (n-f) of authenticated copies answered — the protocol only
  // needs n-f replies, and waiting for the slowest cloud is exactly the
  // latency the paper's quorum design avoids.
  std::vector<Future<Result<Bytes>>> futures;
  futures.reserve(clouds_.size());
  for (unsigned i = 0; i < clouds_.size(); ++i) {
    futures.push_back(RobustGet(i, key));
  }
  // The predicate authenticates each reply once and keeps the decoded copy
  // (it runs serialized under the combinator's lock and never after the
  // trigger, so the shared vector needs no further synchronization).
  struct Decoded {
    std::vector<std::optional<DepSkyMetadata>> entries;
  };
  auto decoded = std::make_shared<Decoded>();
  decoded->entries.resize(clouds_.size());
  const Bytes auth_key = config_.auth_key;
  (void)WhenQuorum<Result<Bytes>>(
      std::move(futures), config_.quorum(),
      [decoded, auth_key](size_t i, const Result<Bytes>& raw) {
        if (!raw.ok()) {
          return false;
        }
        auto md = DepSkyMetadata::Decode(*raw, auth_key);
        if (!md.ok()) {
          return false;  // corrupted/forged copy: skip
        }
        decoded->entries[i] = std::move(*md);
        return true;
      })
      .Join();

  // Keep the highest *authenticated* version view among the replies.
  // Byzantine clouds cannot forge the HMAC; at worst they serve an old copy,
  // which loses the max-version vote as long as one honest fresh copy is in
  // the quorum.
  Result<DepSkyMetadata> best = NotFoundError("no metadata for " + unit);
  uint64_t best_version = 0;
  bool found = false;
  for (auto& entry : decoded->entries) {
    if (!entry.has_value()) {
      continue;
    }
    uint64_t version =
        entry->versions.empty() ? 0 : entry->versions.back().version;
    if (!found || version > best_version) {
      best = std::move(*entry);
      best_version = version;
      found = true;
    }
  }
  return best;
}

Status DepSkyClient::PushMetadata(const std::string& unit,
                                  const DepSkyMetadata& md) {
  const std::string key = MetadataKey(unit);
  auto encoded = std::make_shared<const Bytes>(md.Encode(config_.auth_key));
  std::vector<Future<Status>> futures;
  futures.reserve(clouds_.size());
  for (unsigned i = 0; i < clouds_.size(); ++i) {
    futures.push_back(RobustPut(i, key, encoded));
  }
  // Return at the write quorum; stragglers finish inside their stores. ACLs
  // for the acknowledged copies are applied (in parallel) before returning;
  // a straggler's ACLs ride behind its PUT as a continuation so the slow
  // cloud still converges to the granted state.
  QuorumResult<Status> acks =
      WhenQuorum<Status>(futures, config_.quorum(),
                         [](size_t, const Status& s) { return s.ok(); })
          .Get();
  std::shared_ptr<const DepSkyMetadata> md_shared;
  std::vector<Future<Status>> acl_futures;
  for (unsigned i = 0; i < clouds_.size(); ++i) {
    if (!acks.results[i].has_value()) {
      if (!md_shared) {
        md_shared = std::make_shared<const DepSkyMetadata>(md);
      }
      ApplyAclsWhenWritten(futures[i], i, md_shared, key);
    } else if (acks.results[i]->ok()) {
      CollectAclFutures(md, i, key, &acl_futures);
    }
  }
  WhenAll<Status>(std::move(acl_futures)).Join();  // max-of-clouds
  if (!acks.quorum_reached) {
    return UnavailableError("metadata write quorum not reached for " + unit);
  }
  return OkStatus();
}

void DepSkyClient::CollectAclFutures(const DepSkyMetadata& md, unsigned cloud,
                                     const std::string& key,
                                     std::vector<Future<Status>>* out) {
  // Owner of the data unit always gets read+write on objects we create.
  if (cloud < md.owner_ids.size() && !md.owner_ids[cloud].empty() &&
      md.owner_ids[cloud] != clouds_[cloud].creds.canonical_id) {
    out->push_back(clouds_[cloud].store->SetAclAsync(
        clouds_[cloud].creds, key, md.owner_ids[cloud],
        ObjectPermissions::ReadWrite()));
  }
  for (const auto& grant : md.grants) {
    if (cloud >= grant.cloud_ids.size() || grant.cloud_ids[cloud].empty()) {
      continue;
    }
    if (grant.cloud_ids[cloud] == clouds_[cloud].creds.canonical_id) {
      continue;
    }
    ObjectPermissions perms;
    perms.read = grant.read;
    perms.write = grant.write;
    out->push_back(clouds_[cloud].store->SetAclAsync(
        clouds_[cloud].creds, key, grant.cloud_ids[cloud], perms));
  }
}

void DepSkyClient::ApplyAclsToObject(const DepSkyMetadata& md, unsigned cloud,
                                     const std::string& key) {
  std::vector<Future<Status>> futures;
  CollectAclFutures(md, cloud, key, &futures);
  WhenAll<Status>(std::move(futures)).Join();  // best effort, charge the wait
}

Result<uint64_t> DepSkyClient::WriteVersion(
    const std::string& unit, const std::string& content_hash,
    ConstByteSpan data, const std::vector<DepSkyGrant>* merge_grants) {
  // Step 0: learn the current version history (creates it on first write).
  DepSkyMetadata md;
  auto existing = ReadMetadata(unit);
  if (existing.ok()) {
    md = std::move(*existing);
  } else if (existing.status().code() == ErrorCode::kNotFound) {
    md.n = config_.n();
    md.k = config_.k();
    md.mode = config_.mode;
    md.owner_ids.resize(clouds_.size());
    for (unsigned i = 0; i < clouds_.size(); ++i) {
      md.owner_ids[i] = clouds_[i].creds.canonical_id;
    }
  } else {
    return existing.status();
  }
  if (merge_grants != nullptr) {
    for (const auto& grant : *merge_grants) {
      auto it = std::find_if(md.grants.begin(), md.grants.end(),
                             [&](const DepSkyGrant& g) {
                               return g.cloud_ids == grant.cloud_ids;
                             });
      if (it != md.grants.end()) {
        *it = grant;
      } else if (grant.read || grant.write) {
        md.grants.push_back(grant);
      }
    }
  }

  DepSkyVersion version;
  version.version = md.NextVersionNumber();
  version.content_hash = content_hash;
  version.size = data.size();

  // Large secret-sharing writes take the striped data plane: independent
  // per-unit pipelines instead of one file-sized arena and quorum round.
  if (config_.mode == DepSkyMode::kSecretSharing &&
      config_.stripe_threshold > 0 &&
      data.size() > config_.stripe_threshold) {
    return WriteStripedVersion(unit, std::move(md), std::move(version), data);
  }

  // Steps 1-3 (Figure 6): key generation, encryption, erasure coding and
  // secret sharing. The whole stage is zero-copy: the plaintext is encrypted
  // straight into the arena's framed data region (the systematic shards alias
  // that frame), parity is derived in place, and every later consumer —
  // shard hashing and wire-object serialization — reads arena views. In
  // replication mode the "shards" are views of the caller's plaintext.
  std::optional<ShardArena> arena;
  std::vector<SecretShare> shares;
  const unsigned shard_count = static_cast<unsigned>(clouds_.size());
  if (config_.mode == DepSkyMode::kSecretSharing) {
    Bytes key = RandomBytesLocked(ChaCha20::kKeySize);
    version.nonce = RandomBytesLocked(ChaCha20::kNonceSize);
    ErasureCodec codec(config_.n(), config_.k());
    arena = codec.PrepareArena(data.size(), &arena_pool_);
    ChaCha20::CryptInto(key, version.nonce, 0, data, arena->payload());
    codec.ComputeParity(&*arena);
    Result<std::vector<SecretShare>> split = [&]() {
      std::lock_guard<std::mutex> lock(rng_mu_);
      return SecretSharing::Split(key, config_.n(), config_.k(), rng_);
    }();
    RETURN_IF_ERROR(split.status());
    shares = std::move(*split);
  }
  auto shard_view = [&](unsigned i) -> ConstByteSpan {
    return arena ? arena->shard(i) : data;  // full replicas without the arena
  };

  auto encode_object = [&](unsigned shard_index) -> Bytes {
    // The shard bytes move from the arena (or the caller's plaintext) to the
    // wire buffer in this one serialization copy.
    if (config_.mode == DepSkyMode::kSecretSharing) {
      return DepSkyValueObject::EncodeParts(shard_view(shard_index),
                                            shares[shard_index].index,
                                            shares[shard_index].data);
    }
    return DepSkyValueObject::EncodeParts(shard_view(shard_index), 0, {});
  };

  // The metadata authenticates the complete stored object — shard AND key
  // share AND framing — not just the shard bytes. A faulty cloud must not be
  // able to slip a poisoned key share past the hash check by leaving the
  // shard untouched (a corrupted share silently wrecks key reconstruction,
  // which only surfaces as a content-hash mismatch after decrypt). The
  // object for shard i is deterministic — share i always rides with shard i,
  // fallback writes included — so the per-shard-index hash is well-defined.
  std::vector<Bytes> objects(shard_count);
  version.shard_hashes.resize(shard_count);
  for (unsigned i = 0; i < shard_count; ++i) {
    objects[i] = encode_object(i);
    version.shard_hashes[i] = Sha256::Hash(objects[i]);
  }

  // Step 4: store shard_i + share_i at cloud i (preferred wave + fallback).
  auto placed = PlaceObjects(md, ValueKey(unit, version.version),
                             std::move(objects), encode_object);
  if (arena) {
    arena_pool_.Release(std::move(*arena));
  }
  if (!placed.ok()) {
    return UnavailableError("depsky write quorum not reached for " + unit);
  }
  version.cloud_shard = *std::move(placed);

  // Step 5: publish the version in the metadata object.
  md.versions.push_back(std::move(version));
  RETURN_IF_ERROR(PushMetadata(unit, md));
  return md.versions.back().version;
}

Result<std::vector<int32_t>> DepSkyClient::PlaceObjects(
    const DepSkyMetadata& md, const std::string& value_key,
    std::vector<Bytes> objects,
    const std::function<Bytes(unsigned)>& encode_object) {
  // Preferred quorums: use the first n-f *healthy* clouds — the cost-ordered
  // list with breaker-demoted clouds moved to the back, so a flapping
  // provider drops out of the preferred set and only re-enters once its
  // breaker half-opens.
  const unsigned quorum = config_.quorum();
  std::vector<unsigned> cost_order(clouds_.size());
  std::iota(cost_order.begin(), cost_order.end(), 0u);
  std::vector<unsigned> ordered = health_.Reorder(cost_order, env_->Now());
  std::vector<unsigned> preferred;
  std::vector<unsigned> spares;
  for (unsigned cloud : ordered) {
    if (config_.preferred_quorums && preferred.size() >= quorum) {
      spares.push_back(cloud);
    } else {
      preferred.push_back(cloud);
    }
  }

  std::vector<int32_t> cloud_shard(clouds_.size(), -1);

  // First wave: shard i -> preferred cloud i, fanned out through the async
  // ObjectStore API and awaited at the write quorum. (With preferred quorums
  // the wave is exactly quorum-sized, so this waits for all of it; without
  // them, the n-f fastest clouds complete the write.)
  std::vector<Future<Status>> futures;
  futures.reserve(preferred.size());
  for (unsigned cloud : preferred) {
    futures.push_back(RobustPut(
        cloud, value_key,
        std::make_shared<const Bytes>(std::move(objects[cloud]))));
  }
  QuorumResult<Status> acks =
      WhenQuorum<Status>(futures, quorum,
                         [](size_t, const Status& s) { return s.ok(); })
          .Get();
  unsigned successes = 0;
  std::vector<unsigned> failed_shards;
  std::shared_ptr<const DepSkyMetadata> md_shared;
  std::vector<Future<Status>> acl_futures;
  for (size_t i = 0; i < preferred.size(); ++i) {
    unsigned cloud = preferred[i];
    if (!acks.results[i].has_value()) {
      // Still in flight past the quorum: not recorded as a holder, but its
      // object (if the PUT lands) still gets the grants.
      if (!md_shared) {
        md_shared = std::make_shared<const DepSkyMetadata>(md);
      }
      ApplyAclsWhenWritten(futures[i], cloud, md_shared, value_key);
      continue;
    }
    if (acks.results[i]->ok()) {
      cloud_shard[cloud] = static_cast<int32_t>(cloud);
      CollectAclFutures(md, cloud, value_key, &acl_futures);
      ++successes;
    } else {
      failed_shards.push_back(cloud);
    }
  }
  WhenAll<Status>(std::move(acl_futures)).Join();  // max-of-clouds
  // Fallback wave: route failed shards to spare clouds.
  for (unsigned spare : spares) {
    if (successes >= quorum || failed_shards.empty()) {
      break;
    }
    unsigned shard = failed_shards.back();
    Status s = RobustPut(spare, value_key,
                         std::make_shared<const Bytes>(encode_object(shard)))
                   .Get();
    if (s.ok()) {
      ApplyAclsToObject(md, spare, value_key);
      cloud_shard[spare] = static_cast<int32_t>(shard);
      failed_shards.pop_back();
      ++successes;
    }
  }
  if (successes < quorum) {
    return UnavailableError("write quorum not reached for " + value_key);
  }
  return cloud_shard;
}

Result<DepSkyStripeUnit> DepSkyClient::WriteStripeUnit(
    const DepSkyMetadata& md, const std::string& value_key,
    ConstByteSpan plaintext, const Bytes& key, const Bytes& nonce,
    const std::vector<SecretShare>& shares, uint32_t counter) {
  // Same zero-copy pipeline as a monolithic write, at unit granularity: the
  // pooled arena keeps a stripe window's buffers cache-warm instead of
  // faulting in a fresh file-sized allocation.
  ErasureCodec codec(config_.n(), config_.k());
  ShardArena arena = codec.PrepareArena(plaintext.size(), &arena_pool_);
  ChaCha20::CryptInto(key, nonce, counter, plaintext, arena.payload());
  codec.ComputeParity(&arena);

  DepSkyStripeUnit stripe;
  stripe.content_hash = Sha256::Hash(plaintext);
  const unsigned shard_count = static_cast<unsigned>(clouds_.size());
  auto encode_object = [&](unsigned shard_index) -> Bytes {
    return DepSkyValueObject::EncodeParts(arena.shard(shard_index),
                                          shares[shard_index].index,
                                          shares[shard_index].data);
  };
  std::vector<Bytes> objects(shard_count);
  stripe.shard_hashes.resize(shard_count);
  for (unsigned i = 0; i < shard_count; ++i) {
    objects[i] = encode_object(i);
    stripe.shard_hashes[i] = Sha256::Hash(objects[i]);
  }
  auto placed = PlaceObjects(md, value_key, std::move(objects), encode_object);
  arena_pool_.Release(std::move(arena));
  RETURN_IF_ERROR(placed.status());
  stripe.cloud_shard = *std::move(placed);
  return stripe;
}

Result<uint64_t> DepSkyClient::WriteStripedVersion(const std::string& unit,
                                                   DepSkyMetadata md,
                                                   DepSkyVersion version,
                                                   ConstByteSpan data) {
  const size_t unit_size = config_.stripe_unit();
  const size_t unit_count = (data.size() + unit_size - 1) / unit_size;
  version.stripe_unit_size = unit_size;
  version.stripe_units.resize(unit_count);

  // One key, nonce and secret-sharing split for the whole file: share i rides
  // every unit's shard i, and each unit encrypts at its byte offset in the
  // file-wide keystream — the ciphertext equals a monolithic encryption.
  Bytes key = RandomBytesLocked(ChaCha20::kKeySize);
  version.nonce = RandomBytesLocked(ChaCha20::kNonceSize);
  Result<std::vector<SecretShare>> split = [&]() {
    std::lock_guard<std::mutex> lock(rng_mu_);
    return SecretSharing::Split(key, config_.n(), config_.k(), rng_);
  }();
  RETURN_IF_ERROR(split.status());
  const std::vector<SecretShare> shares = std::move(*split);

  // Bounded fan-out: a FIFO window of stripe_window() unit pipelines on the
  // executor (a window of one runs inline — a serial pipeline gains nothing
  // from an executor hop). Every launched task is drained before returning
  // (error paths included), so the by-reference captures below stay valid.
  const unsigned depth = config_.stripe_window();
  Status first_error = OkStatus();
  std::deque<std::pair<size_t, Future<Result<DepSkyStripeUnit>>>> window;
  auto drain_front = [&]() {
    auto [index, future] = std::move(window.front());
    window.pop_front();
    Result<DepSkyStripeUnit> placed = future.Get();
    if (placed.ok()) {
      version.stripe_units[index] = *std::move(placed);
    } else if (first_error.ok()) {
      first_error = placed.status();
    }
  };
  for (size_t u = 0; u < unit_count && first_error.ok(); ++u) {
    while (window.size() >= depth) {
      drain_front();
    }
    const size_t begin = u * unit_size;
    const size_t length = std::min(unit_size, data.size() - begin);
    const ConstByteSpan slice(data.data() + begin, length);
    const uint32_t counter = static_cast<uint32_t>(begin / 64);
    std::string value_key = StripeValueKey(unit, version.version, u);
    if (depth <= 1) {
      Result<DepSkyStripeUnit> placed = WriteStripeUnit(
          md, value_key, slice, key, version.nonce, shares, counter);
      if (placed.ok()) {
        version.stripe_units[u] = *std::move(placed);
      } else {
        first_error = placed.status();
      }
      continue;
    }
    window.emplace_back(
        u, SubmitTracked(&async_ops_, [this, &md, &key, &version, &shares,
                                       slice, counter,
                                       value_key = std::move(value_key)]() {
          return WriteStripeUnit(md, value_key, slice, key, version.nonce,
                                 shares, counter);
        }));
  }
  while (!window.empty()) {
    drain_front();
  }
  RETURN_IF_ERROR(first_error);

  md.versions.push_back(std::move(version));
  RETURN_IF_ERROR(PushMetadata(unit, md));
  return md.versions.back().version;
}

// Shared state of one in-flight shard fetch. Collectors (completion
// callbacks of the per-holder robust GETs) and the hedge timer all
// coordinate through `mu`; `done_promise` settles exactly once.
struct DepSkyClient::ShardFetchState {
  std::string unit;
  std::string value_key;
  unsigned k = 0;
  std::vector<unsigned> holders;     // health-ordered launch sequence
  std::vector<int32_t> cloud_shard;  // copy: outlives the caller's metadata
  std::vector<Bytes> shard_hashes;
  VirtualTime started = 0;

  std::mutex mu;
  size_t next = 0;           // next holders[] entry to launch
  unsigned outstanding = 0;  // launched, not yet completed
  unsigned valid = 0;
  bool done = false;
  std::vector<std::optional<Bytes>> shards;  // by shard index
  std::vector<SecretShare> shares;
  Promise<Status> done_promise;
};

void DepSkyClient::LaunchShardGet(
    const std::shared_ptr<ShardFetchState>& state) {
  unsigned cloud = 0;
  {
    std::lock_guard<std::mutex> lock(state->mu);
    if (state->done || state->next >= state->holders.size()) {
      return;
    }
    cloud = state->holders[state->next++];
    state->outstanding++;
  }
  RobustGet(cloud, state->value_key)
      .OnReady([this, state, cloud](const Result<Bytes>& raw,
                                    VirtualDuration) {
        bool fetch_more = false;
        std::optional<Status> completion;
        {
          std::lock_guard<std::mutex> lock(state->mu);
          state->outstanding--;
          if (state->done) {
            return;  // straggler past the trigger
          }
          bool valid_shard = false;
          if (raw.ok()) {
            auto object = DepSkyValueObject::Decode(*raw);
            if (object.ok() && cloud < state->cloud_shard.size() &&
                state->cloud_shard[cloud] >= 0) {
              unsigned shard_index =
                  static_cast<unsigned>(state->cloud_shard[cloud]);
              if (shard_index < state->shard_hashes.size() &&
                  Sha256::Hash(*raw) == state->shard_hashes[shard_index]) {
                // Hash-valid over the full stored object: corrupted shards,
                // poisoned key shares and byzantine swaps never get here.
                if (!state->shards[shard_index].has_value()) {
                  state->shards[shard_index] = std::move(object->shard);
                  if (object->share_index != 0) {
                    state->shares.push_back(SecretShare{
                        object->share_index, object->share_data});
                  }
                  state->valid++;
                }
                valid_shard = true;
              }
            }
          }
          if (state->valid >= state->k) {
            state->done = true;
            completion = OkStatus();
          } else if (state->outstanding == 0 &&
                     state->next >= state->holders.size()) {
            state->done = true;
            completion = UnavailableError(
                "could not fetch enough valid shards for " + state->unit);
          } else if (!valid_shard || state->outstanding == 0) {
            fetch_more = true;  // failure-triggered: try the next holder now
          }
        }
        if (completion.has_value()) {
          state->done_promise.Set(*completion,
                                  env_->Now() - state->started);
        } else if (fetch_more) {
          LaunchShardGet(state);
        }
      });
}

void DepSkyClient::ArmHedgeTimer(
    const std::shared_ptr<ShardFetchState>& state) {
  if (!config_.hedged_reads) {
    return;
  }
  {
    std::lock_guard<std::mutex> lock(state->mu);
    if (state->done || state->next >= state->holders.size()) {
      return;
    }
  }
  // Weak capture: the timer must not keep the fetch alive past completion,
  // and a fire after completion degrades to a no-op.
  std::weak_ptr<ShardFetchState> weak = state;
  timers_.Schedule(env_->Now() + health_.HedgeDelay(), [this, weak] {
    auto alive = weak.lock();
    if (!alive) {
      return;
    }
    {
      std::lock_guard<std::mutex> lock(alive->mu);
      if (alive->done || alive->next >= alive->holders.size()) {
        return;
      }
    }
    hedged_reads_.fetch_add(1);
    LaunchShardGet(alive);
    ArmHedgeTimer(alive);  // chain: hedge again if still short of k
  });
}

Result<DepSkyClient::FetchedShards> DepSkyClient::FetchShards(
    const std::string& unit, const std::string& value_key, unsigned k,
    const std::vector<int32_t>& cloud_shard,
    const std::vector<Bytes>& shard_hashes) {
  // Clouds that hold a shard of this object, in preference order.
  std::vector<unsigned> holders;
  for (unsigned i = 0; i < clouds_.size(); ++i) {
    if (i < cloud_shard.size() && cloud_shard[i] >= 0) {
      holders.push_back(i);
    }
  }
  if (holders.size() < k) {
    return UnavailableError("not enough shard holders recorded");
  }

  auto state = std::make_shared<ShardFetchState>();
  state->unit = unit;
  state->value_key = value_key;
  state->k = k;
  // Breaker-demoted holders sort to the back: a broken cloud is only asked
  // once the healthy ones cannot supply k valid shards.
  state->holders = health_.Reorder(holders, env_->Now());
  // Copies, not references: a straggler's collector may run after this
  // frame (and the caller's metadata) are gone.
  state->cloud_shard = cloud_shard;
  state->shard_hashes = shard_hashes;
  state->started = env_->Now();
  state->shards.resize(clouds_.size());

  // First wave: k health-ordered holders in parallel. Each unhelpful reply
  // (unreachable, timed out, corrupted, byzantine) triggers the next
  // unlaunched holder immediately; the hedge timer additionally launches
  // the (f+2)-th holder after an adaptive delay, so one quietly slow cloud
  // does not put its full straggler latency on the read path.
  for (unsigned i = 0; i < k; ++i) {
    LaunchShardGet(state);
  }
  ArmHedgeTimer(state);

  Status fetched = state->done_promise.future().Get();
  RETURN_IF_ERROR(fetched);

  FetchedShards out;
  {
    // Stragglers may still briefly hold the lock; they observe done and
    // leave the collected state alone.
    std::lock_guard<std::mutex> lock(state->mu);
    out.shards = std::move(state->shards);
    out.shares = std::move(state->shares);
  }
  return out;
}

Result<Bytes> DepSkyClient::FetchVersion(const std::string& unit,
                                         const DepSkyMetadata& md,
                                         const DepSkyVersion& version) {
  if (version.striped() && md.mode == DepSkyMode::kSecretSharing) {
    return FetchStripedVersion(unit, md, version);
  }
  const unsigned k = (md.mode == DepSkyMode::kSecretSharing) ? md.k : 1;
  ASSIGN_OR_RETURN(FetchedShards fetched,
                   FetchShards(unit, ValueKey(unit, version.version), k,
                               version.cloud_shard, version.shard_hashes));

  Bytes plaintext;
  if (md.mode == DepSkyMode::kSecretSharing) {
    // Reassemble into one buffer, then decrypt it in place: the ciphertext
    // buffer becomes the plaintext without a second allocation or pass.
    ErasureCodec codec(md.n, md.k);
    ASSIGN_OR_RETURN(plaintext, codec.Decode(fetched.shards));
    ASSIGN_OR_RETURN(Bytes key, SecretSharing::Combine(fetched.shares, md.k));
    ChaCha20::CryptInPlace(key, version.nonce, 0, ByteSpan(plaintext));
  } else {
    for (auto& shard : fetched.shards) {
      if (shard.has_value()) {
        plaintext = std::move(*shard);
        break;
      }
    }
  }

  // Final integrity check: the consistency-anchor hash must match.
  if (HexEncode(Sha1::Hash(plaintext)) != version.content_hash) {
    return CorruptionError("content hash mismatch for " + unit);
  }
  return plaintext;
}

Status DepSkyClient::FetchStripeUnit(const std::string& unit,
                                     const DepSkyMetadata& md,
                                     const DepSkyVersion& version,
                                     size_t stripe_index, ByteSpan out,
                                     bool verify_unit_hash) {
  const DepSkyStripeUnit& stripe = version.stripe_units[stripe_index];
  auto fetched_or = FetchShards(
      unit, StripeValueKey(unit, version.version, stripe_index), md.k,
      stripe.cloud_shard, stripe.shard_hashes);
  RETURN_IF_ERROR(fetched_or.status());
  FetchedShards& fetched = *fetched_or;

  // Decode into a pooled arena frame, then decrypt straight into the
  // caller's slice — the decrypt pass is also the move out of the arena.
  ErasureCodec codec(md.n, md.k);
  const size_t shard_size = codec.ShardSize(out.size());
  std::vector<std::optional<ConstByteSpan>> views(fetched.shards.size());
  for (size_t i = 0; i < fetched.shards.size(); ++i) {
    if (fetched.shards[i].has_value()) {
      views[i] = ConstByteSpan(*fetched.shards[i]);
    }
  }
  ShardArena arena = arena_pool_.Acquire(md.n, md.k, shard_size, out.size());
  ReedSolomon rs(md.n, md.k);
  Status decoded = rs.DecodeInto(views, shard_size,
                                 arena.mutable_data_region());
  if (!decoded.ok()) {
    arena_pool_.Release(std::move(arena));
    return decoded;
  }
  // The frame header must restate the unit length (hash-valid shards
  // guarantee it; a mismatch means the manifest and objects disagree).
  ByteReader header(arena.data_region());
  uint64_t framed_size = 0;
  if (!header.ReadU64(&framed_size) || framed_size != out.size()) {
    arena_pool_.Release(std::move(arena));
    return CorruptionError("stripe unit frame mismatch for " + unit);
  }

  auto key = SecretSharing::Combine(fetched.shares, md.k);
  if (!key.ok()) {
    arena_pool_.Release(std::move(arena));
    return key.status();
  }
  const uint32_t counter = static_cast<uint32_t>(
      stripe_index * version.stripe_unit_size / 64);
  ChaCha20::CryptInto(*key, version.nonce, counter,
                      ConstByteSpan(arena.payload()), out);
  arena_pool_.Release(std::move(arena));

  if (verify_unit_hash && Sha256::Hash(out) != stripe.content_hash) {
    return CorruptionError("stripe unit hash mismatch for " + unit);
  }
  return OkStatus();
}

Result<Bytes> DepSkyClient::FetchStripedVersion(const std::string& unit,
                                                const DepSkyMetadata& md,
                                                const DepSkyVersion& version) {
  const size_t unit_size = version.stripe_unit_size;
  const size_t unit_count = version.stripe_units.size();
  if (unit_count * unit_size < version.size) {
    return CorruptionError("stripe manifest shorter than version size");
  }
  Bytes plaintext(version.size);

  // Pipelined unit fetch+decode+decrypt: each unit writes its disjoint slice
  // of the output, at most stripe_window() units in flight (a window of one
  // runs inline). All launched tasks are drained before returning, so the
  // reference captures are safe.
  const unsigned depth = config_.stripe_window();
  Status first_error = OkStatus();
  std::deque<Future<Status>> window;
  auto drain_front = [&]() {
    Status s = window.front().Get();
    window.pop_front();
    if (!s.ok() && first_error.ok()) {
      first_error = s;
    }
  };
  for (size_t u = 0; u < unit_count && first_error.ok(); ++u) {
    while (window.size() >= depth) {
      drain_front();
    }
    const size_t begin = u * unit_size;
    const size_t length = std::min(unit_size, plaintext.size() - begin);
    const ByteSpan slice(plaintext.data() + begin, length);
    // The whole-file consistency-anchor hash is checked below; per-unit
    // hashes are for range reads that never see the whole file.
    if (depth <= 1) {
      Status s = FetchStripeUnit(unit, md, version, u, slice,
                                 /*verify_unit_hash=*/false);
      if (!s.ok()) {
        first_error = s;
      }
      continue;
    }
    window.push_back(
        SubmitTracked(&async_ops_, [this, &unit, &md, &version, u, slice]() {
          return FetchStripeUnit(unit, md, version, u, slice,
                                 /*verify_unit_hash=*/false);
        }));
  }
  while (!window.empty()) {
    drain_front();
  }
  RETURN_IF_ERROR(first_error);

  if (HexEncode(Sha1::Hash(plaintext)) != version.content_hash) {
    return CorruptionError("content hash mismatch for " + unit);
  }
  return plaintext;
}

Result<Bytes> DepSkyClient::ReadAt(const std::string& unit,
                                   const std::string& content_hash,
                                   uint64_t offset, size_t length) {
  ASSIGN_OR_RETURN(DepSkyMetadata md, ReadMetadata(unit));
  const DepSkyVersion* version = md.FindByHash(content_hash);
  if (version == nullptr) {
    return NotFoundError("version " + content_hash + " not visible yet");
  }
  if (offset >= version->size || length == 0) {
    return Bytes{};
  }
  length = std::min<uint64_t>(length, version->size - offset);

  if (!version->striped() || md.mode != DepSkyMode::kSecretSharing) {
    ASSIGN_OR_RETURN(Bytes all, FetchVersion(unit, md, *version));
    return Bytes(all.begin() + offset, all.begin() + offset + length);
  }

  // Fetch only the stripe units overlapping [offset, offset+length). Each
  // unit is decoded and decrypted in full (its recorded plaintext hash
  // covers the whole unit), then the overlap is copied out.
  const size_t unit_size = version->stripe_unit_size;
  const size_t first_unit = offset / unit_size;
  const size_t last_unit = (offset + length - 1) / unit_size;
  Bytes out(length);

  const unsigned depth = config_.stripe_window();
  Status first_error = OkStatus();
  std::deque<Future<Status>> window;
  auto drain_front = [&]() {
    Status s = window.front().Get();
    window.pop_front();
    if (!s.ok() && first_error.ok()) {
      first_error = s;
    }
  };
  auto fetch_unit = [this, &unit, &md, version, unit_size, offset, length,
                     &out](size_t u) -> Status {
    const size_t begin = u * unit_size;
    const size_t unit_length =
        std::min<size_t>(unit_size, version->size - begin);
    Bytes buffer(unit_length);
    RETURN_IF_ERROR(FetchStripeUnit(unit, md, *version, u, ByteSpan(buffer),
                                    /*verify_unit_hash=*/true));
    // Copy the overlap into the caller's range (disjoint per unit).
    const size_t copy_begin = std::max<size_t>(offset, begin);
    const size_t copy_end =
        std::min<size_t>(offset + length, begin + unit_length);
    std::copy(buffer.begin() + (copy_begin - begin),
              buffer.begin() + (copy_end - begin),
              out.begin() + (copy_begin - offset));
    return OkStatus();
  };
  for (size_t u = first_unit; u <= last_unit && first_error.ok(); ++u) {
    while (window.size() >= depth) {
      drain_front();
    }
    if (depth <= 1) {
      Status s = fetch_unit(u);
      if (!s.ok()) {
        first_error = s;
      }
      continue;
    }
    window.push_back(
        SubmitTracked(&async_ops_, [fetch_unit, u]() { return fetch_unit(u); }));
  }
  while (!window.empty()) {
    drain_front();
  }
  RETURN_IF_ERROR(first_error);
  return out;
}

Result<Bytes> DepSkyClient::ReadByHash(const std::string& unit,
                                       const std::string& content_hash) {
  ASSIGN_OR_RETURN(DepSkyMetadata md, ReadMetadata(unit));
  const DepSkyVersion* version = md.FindByHash(content_hash);
  if (version == nullptr) {
    return NotFoundError("version " + content_hash + " not visible yet");
  }
  return FetchVersion(unit, md, *version);
}

Result<Bytes> DepSkyClient::ReadLatest(const std::string& unit) {
  ASSIGN_OR_RETURN(DepSkyMetadata md, ReadMetadata(unit));
  const DepSkyVersion* version = md.Latest();
  if (version == nullptr) {
    return NotFoundError("no versions of " + unit);
  }
  return FetchVersion(unit, md, *version);
}

void DepSkyClient::ScrubObjectSet(const DepSkyMetadata& md,
                                  const std::string& value_key,
                                  const std::vector<Bytes>& shard_hashes,
                                  std::vector<int32_t>* cloud_shard,
                                  DepSkyScrubReport* report,
                                  bool* metadata_dirty) {
  // Probe every recorded holder in parallel through the robust GET path.
  std::vector<unsigned> holders;
  for (unsigned i = 0; i < clouds_.size(); ++i) {
    if (i < cloud_shard->size() && (*cloud_shard)[i] >= 0) {
      holders.push_back(i);
    }
  }
  std::vector<Future<Result<Bytes>>> probes;
  probes.reserve(holders.size());
  for (unsigned cloud : holders) {
    probes.push_back(RobustGet(cloud, value_key));
  }

  // Hash-check each reply exactly like the read path: the recorded hash
  // covers the complete stored object, so a poisoned key share or framing
  // swap reads as corrupt even when the shard bytes survive.
  std::vector<std::optional<DepSkyValueObject>> objects(clouds_.size());
  std::vector<unsigned> bad_holders;
  size_t shard_size = 0;
  for (size_t h = 0; h < holders.size(); ++h) {
    const unsigned cloud = holders[h];
    const unsigned shard = static_cast<unsigned>((*cloud_shard)[cloud]);
    report->objects_checked++;
    Result<Bytes> raw = probes[h].Get();
    bool valid = false;
    if (raw.ok() && shard < shard_hashes.size() &&
        Sha256::Hash(*raw) == shard_hashes[shard]) {
      auto object = DepSkyValueObject::Decode(*raw);
      if (object.ok()) {
        shard_size = object->shard.size();
        objects[cloud] = std::move(*object);
        valid = true;
      }
    }
    if (!valid) {
      report->objects_missing++;
      bad_holders.push_back(cloud);
    }
  }
  if (bad_holders.empty()) {
    return;
  }

  // Rebuild from the survivors. Any k hash-valid shards reproduce the whole
  // arena (data region + re-derived parity), and k key shares re-evaluate
  // the split polynomial at any lost share's x-coordinate — so the rebuilt
  // stored object is byte-identical to the original and must re-hash to the
  // recorded value before anything is uploaded.
  std::vector<std::optional<ConstByteSpan>> views(md.n);
  std::vector<SecretShare> shares;
  unsigned valid_count = 0;
  for (unsigned cloud = 0; cloud < clouds_.size(); ++cloud) {
    if (!objects[cloud].has_value()) {
      continue;
    }
    const unsigned shard = static_cast<unsigned>((*cloud_shard)[cloud]);
    if (shard < views.size()) {
      views[shard] = ConstByteSpan(objects[cloud]->shard);
    }
    if (objects[cloud]->share_index != 0) {
      shares.push_back(SecretShare{objects[cloud]->share_index,
                                   objects[cloud]->share_data});
    }
    ++valid_count;
  }
  if (valid_count < md.k || md.mode != DepSkyMode::kSecretSharing) {
    report->repair_failures += bad_holders.size();
    report->fully_redundant = false;
    return;
  }

  ShardArena arena = arena_pool_.Acquire(md.n, md.k, shard_size, 0);
  ReedSolomon rs(md.n, md.k);
  Status decoded =
      rs.DecodeInto(views, shard_size, arena.mutable_data_region());
  if (decoded.ok()) {
    rs.EncodeParity(arena.data_region(), shard_size, arena.parity_region());
  }

  for (unsigned cloud : bad_holders) {
    const unsigned shard = static_cast<unsigned>((*cloud_shard)[cloud]);
    if (!decoded.ok() || shard >= md.n || shard >= shard_hashes.size()) {
      report->repair_failures++;
      report->fully_redundant = false;
      continue;
    }
    // Share for shard s has x-coordinate s+1 (Split's convention).
    auto share =
        SecretSharing::RecoverShare(shares, md.k, static_cast<uint8_t>(shard + 1));
    if (!share.ok()) {
      report->repair_failures++;
      report->fully_redundant = false;
      continue;
    }
    auto object_bytes =
        std::make_shared<const Bytes>(DepSkyValueObject::EncodeParts(
            arena.shard(shard), share->index, share->data));
    if (Sha256::Hash(*object_bytes) != shard_hashes[shard]) {
      report->repair_failures++;
      report->fully_redundant = false;
      continue;
    }
    // In-place first: same holder, same key, no metadata change needed.
    Status put = RobustPut(cloud, value_key, object_bytes).Get();
    if (put.ok()) {
      ApplyAclsToObject(md, cloud, value_key);
      report->objects_repaired++;
      continue;
    }
    // Holder still down: relocate the shard to a cloud that holds nothing of
    // this object, and flip the map so the caller pushes it once.
    bool relocated = false;
    for (unsigned target = 0; target < clouds_.size(); ++target) {
      if (target < cloud_shard->size() && (*cloud_shard)[target] >= 0) {
        continue;
      }
      Status moved = RobustPut(target, value_key, object_bytes).Get();
      if (moved.ok()) {
        ApplyAclsToObject(md, target, value_key);
        (*cloud_shard)[cloud] = -1;
        (*cloud_shard)[target] = static_cast<int32_t>(shard);
        *metadata_dirty = true;
        report->objects_relocated++;
        relocated = true;
        break;
      }
    }
    if (!relocated) {
      report->repair_failures++;
      report->fully_redundant = false;
    }
  }
  arena_pool_.Release(std::move(arena));
}

Result<DepSkyScrubReport> DepSkyClient::ScrubUnit(const std::string& unit) {
  ASSIGN_OR_RETURN(DepSkyMetadata md, ReadMetadata(unit));
  DepSkyScrubReport report;
  bool metadata_dirty = false;
  for (auto& version : md.versions) {
    report.versions_checked++;
    if (version.striped()) {
      for (size_t u = 0; u < version.stripe_units.size(); ++u) {
        ScrubObjectSet(md, StripeValueKey(unit, version.version, u),
                       version.stripe_units[u].shard_hashes,
                       &version.stripe_units[u].cloud_shard, &report,
                       &metadata_dirty);
      }
    } else {
      ScrubObjectSet(md, ValueKey(unit, version.version),
                     version.shard_hashes, &version.cloud_shard, &report,
                     &metadata_dirty);
    }
  }
  if (metadata_dirty) {
    RETURN_IF_ERROR(PushMetadata(unit, md));
  }
  return report;
}

Status DepSkyClient::DeleteVersion(const std::string& unit, uint64_t version) {
  ASSIGN_OR_RETURN(DepSkyMetadata md, ReadMetadata(unit));
  auto it = std::find_if(md.versions.begin(), md.versions.end(),
                         [&](const DepSkyVersion& v) {
                           return v.version == version;
                         });
  if (it == md.versions.end()) {
    return NotFoundError("version not in metadata");
  }
  // Collect the value keys before erasing: a striped version owns one object
  // per stripe unit instead of a single monolithic object.
  std::vector<std::string> value_keys;
  if (it->striped()) {
    for (size_t u = 0; u < it->stripe_units.size(); ++u) {
      value_keys.push_back(StripeValueKey(unit, version, u));
    }
  } else {
    value_keys.push_back(ValueKey(unit, version));
  }
  md.versions.erase(it);
  RETURN_IF_ERROR(PushMetadata(unit, md));

  std::vector<Future<Status>> futures;
  futures.reserve(clouds_.size() * value_keys.size());
  for (const auto& value_key : value_keys) {
    for (unsigned i = 0; i < clouds_.size(); ++i) {
      futures.push_back(
          clouds_[i].store->DeleteAsync(clouds_[i].creds, value_key));
    }
  }
  WhenAll<Status>(std::move(futures)).Join();
  return OkStatus();  // best effort: missing replicas are fine
}

Status DepSkyClient::DeleteUnit(const std::string& unit) {
  auto md = ReadMetadata(unit);
  if (md.ok()) {
    // Delete value objects for every version first (one per stripe unit for
    // striped versions, one monolithic object otherwise).
    std::vector<std::string> value_keys;
    for (const auto& v : md->versions) {
      if (v.striped()) {
        for (size_t u = 0; u < v.stripe_units.size(); ++u) {
          value_keys.push_back(StripeValueKey(unit, v.version, u));
        }
      } else {
        value_keys.push_back(ValueKey(unit, v.version));
      }
    }
    for (const auto& value_key : value_keys) {
      for (unsigned i = 0; i < clouds_.size(); ++i) {
        (void)clouds_[i].store->Delete(clouds_[i].creds, value_key);
      }
    }
  }
  const std::string md_key = MetadataKey(unit);
  for (unsigned i = 0; i < clouds_.size(); ++i) {
    (void)clouds_[i].store->Delete(clouds_[i].creds, md_key);
  }
  return OkStatus();
}

Status DepSkyClient::SetGrant(const std::string& unit,
                              const DepSkyGrant& grant) {
  ASSIGN_OR_RETURN(DepSkyMetadata md, ReadMetadata(unit));
  // Replace an existing grant for the same principal ids, else append.
  auto it = std::find_if(md.grants.begin(), md.grants.end(),
                         [&](const DepSkyGrant& g) {
                           return g.cloud_ids == grant.cloud_ids;
                         });
  if (it != md.grants.end()) {
    if (!grant.read && !grant.write) {
      md.grants.erase(it);
    } else {
      *it = grant;
    }
  } else if (grant.read || grant.write) {
    md.grants.push_back(grant);
  }

  // Apply to the metadata object and to every existing version object.
  RETURN_IF_ERROR(PushMetadata(unit, md));
  ObjectPermissions perms;
  perms.read = grant.read;
  perms.write = grant.write;
  for (const auto& version : md.versions) {
    std::vector<std::string> value_keys;
    if (version.striped()) {
      for (size_t u = 0; u < version.stripe_units.size(); ++u) {
        value_keys.push_back(StripeValueKey(unit, version.version, u));
      }
    } else {
      value_keys.push_back(ValueKey(unit, version.version));
    }
    for (const auto& value_key : value_keys) {
      for (unsigned i = 0; i < clouds_.size(); ++i) {
        if (i < grant.cloud_ids.size() && !grant.cloud_ids[i].empty()) {
          (void)clouds_[i].store->SetAcl(clouds_[i].creds, value_key,
                                         grant.cloud_ids[i], perms);
        }
      }
    }
  }
  return OkStatus();
}

}  // namespace scfs
