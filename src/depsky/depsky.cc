#include "src/depsky/depsky.h"

#include <algorithm>

#include "src/crypto/chacha20.h"
#include "src/crypto/secret_sharing.h"
#include "src/crypto/sha1.h"
#include "src/crypto/sha256.h"

namespace scfs {

DepSkyClient::DepSkyClient(Environment* env, std::vector<DepSkyCloud> clouds,
                           DepSkyConfig config, uint64_t seed)
    : env_(env), clouds_(std::move(clouds)), config_(config), rng_(seed) {}

DepSkyClient::~DepSkyClient() { async_ops_.AwaitIdle(); }

void DepSkyClient::ApplyAclsWhenWritten(
    Future<Status> put, unsigned cloud,
    std::shared_ptr<const DepSkyMetadata> md, const std::string& key) {
  async_ops_.Add();
  put.OnReady([this, cloud, md, key](const Status& status, VirtualDuration) {
    if (status.ok()) {
      std::vector<Future<Status>> acl;
      CollectAclFutures(*md, cloud, key, &acl);
      // The ACL requests' own completion is tracked by their store.
    }
    async_ops_.Done();
  });
}

std::string DepSkyClient::MetadataKey(const std::string& unit) {
  return "du/" + unit + "/md";
}

std::string DepSkyClient::ValueKey(const std::string& unit, uint64_t version) {
  return "du/" + unit + "/v" + std::to_string(version);
}

Bytes DepSkyClient::RandomBytesLocked(size_t size) {
  std::lock_guard<std::mutex> lock(rng_mu_);
  return rng_.RandomBytes(size);
}

Result<DepSkyMetadata> DepSkyClient::ReadMetadata(const std::string& unit) {
  const std::string key = MetadataKey(unit);
  // Fan the GET out to every cloud through the async API, but return as soon
  // as a quorum (n-f) of authenticated copies answered — the protocol only
  // needs n-f replies, and waiting for the slowest cloud is exactly the
  // latency the paper's quorum design avoids.
  std::vector<Future<Result<Bytes>>> futures;
  futures.reserve(clouds_.size());
  for (unsigned i = 0; i < clouds_.size(); ++i) {
    futures.push_back(clouds_[i].store->GetAsync(clouds_[i].creds, key));
  }
  // The predicate authenticates each reply once and keeps the decoded copy
  // (it runs serialized under the combinator's lock and never after the
  // trigger, so the shared vector needs no further synchronization).
  struct Decoded {
    std::vector<std::optional<DepSkyMetadata>> entries;
  };
  auto decoded = std::make_shared<Decoded>();
  decoded->entries.resize(clouds_.size());
  const Bytes auth_key = config_.auth_key;
  (void)WhenQuorum<Result<Bytes>>(
      std::move(futures), config_.quorum(),
      [decoded, auth_key](size_t i, const Result<Bytes>& raw) {
        if (!raw.ok()) {
          return false;
        }
        auto md = DepSkyMetadata::Decode(*raw, auth_key);
        if (!md.ok()) {
          return false;  // corrupted/forged copy: skip
        }
        decoded->entries[i] = std::move(*md);
        return true;
      })
      .Join();

  // Keep the highest *authenticated* version view among the replies.
  // Byzantine clouds cannot forge the HMAC; at worst they serve an old copy,
  // which loses the max-version vote as long as one honest fresh copy is in
  // the quorum.
  Result<DepSkyMetadata> best = NotFoundError("no metadata for " + unit);
  uint64_t best_version = 0;
  bool found = false;
  for (auto& entry : decoded->entries) {
    if (!entry.has_value()) {
      continue;
    }
    uint64_t version =
        entry->versions.empty() ? 0 : entry->versions.back().version;
    if (!found || version > best_version) {
      best = std::move(*entry);
      best_version = version;
      found = true;
    }
  }
  return best;
}

Status DepSkyClient::PushMetadata(const std::string& unit,
                                  const DepSkyMetadata& md) {
  const std::string key = MetadataKey(unit);
  Bytes encoded = md.Encode(config_.auth_key);
  std::vector<Future<Status>> futures;
  futures.reserve(clouds_.size());
  for (unsigned i = 0; i < clouds_.size(); ++i) {
    futures.push_back(
        clouds_[i].store->PutAsync(clouds_[i].creds, key, encoded));
  }
  // Return at the write quorum; stragglers finish inside their stores. ACLs
  // for the acknowledged copies are applied (in parallel) before returning;
  // a straggler's ACLs ride behind its PUT as a continuation so the slow
  // cloud still converges to the granted state.
  QuorumResult<Status> acks =
      WhenQuorum<Status>(futures, config_.quorum(),
                         [](size_t, const Status& s) { return s.ok(); })
          .Get();
  std::shared_ptr<const DepSkyMetadata> md_shared;
  std::vector<Future<Status>> acl_futures;
  for (unsigned i = 0; i < clouds_.size(); ++i) {
    if (!acks.results[i].has_value()) {
      if (!md_shared) {
        md_shared = std::make_shared<const DepSkyMetadata>(md);
      }
      ApplyAclsWhenWritten(futures[i], i, md_shared, key);
    } else if (acks.results[i]->ok()) {
      CollectAclFutures(md, i, key, &acl_futures);
    }
  }
  WhenAll<Status>(std::move(acl_futures)).Join();  // max-of-clouds
  if (!acks.quorum_reached) {
    return UnavailableError("metadata write quorum not reached for " + unit);
  }
  return OkStatus();
}

void DepSkyClient::CollectAclFutures(const DepSkyMetadata& md, unsigned cloud,
                                     const std::string& key,
                                     std::vector<Future<Status>>* out) {
  // Owner of the data unit always gets read+write on objects we create.
  if (cloud < md.owner_ids.size() && !md.owner_ids[cloud].empty() &&
      md.owner_ids[cloud] != clouds_[cloud].creds.canonical_id) {
    out->push_back(clouds_[cloud].store->SetAclAsync(
        clouds_[cloud].creds, key, md.owner_ids[cloud],
        ObjectPermissions::ReadWrite()));
  }
  for (const auto& grant : md.grants) {
    if (cloud >= grant.cloud_ids.size() || grant.cloud_ids[cloud].empty()) {
      continue;
    }
    if (grant.cloud_ids[cloud] == clouds_[cloud].creds.canonical_id) {
      continue;
    }
    ObjectPermissions perms;
    perms.read = grant.read;
    perms.write = grant.write;
    out->push_back(clouds_[cloud].store->SetAclAsync(
        clouds_[cloud].creds, key, grant.cloud_ids[cloud], perms));
  }
}

void DepSkyClient::ApplyAclsToObject(const DepSkyMetadata& md, unsigned cloud,
                                     const std::string& key) {
  std::vector<Future<Status>> futures;
  CollectAclFutures(md, cloud, key, &futures);
  WhenAll<Status>(std::move(futures)).Join();  // best effort, charge the wait
}

Result<uint64_t> DepSkyClient::WriteVersion(
    const std::string& unit, const std::string& content_hash,
    ConstByteSpan data, const std::vector<DepSkyGrant>* merge_grants) {
  // Step 0: learn the current version history (creates it on first write).
  DepSkyMetadata md;
  auto existing = ReadMetadata(unit);
  if (existing.ok()) {
    md = std::move(*existing);
  } else if (existing.status().code() == ErrorCode::kNotFound) {
    md.n = config_.n();
    md.k = config_.k();
    md.mode = config_.mode;
    md.owner_ids.resize(clouds_.size());
    for (unsigned i = 0; i < clouds_.size(); ++i) {
      md.owner_ids[i] = clouds_[i].creds.canonical_id;
    }
  } else {
    return existing.status();
  }
  if (merge_grants != nullptr) {
    for (const auto& grant : *merge_grants) {
      auto it = std::find_if(md.grants.begin(), md.grants.end(),
                             [&](const DepSkyGrant& g) {
                               return g.cloud_ids == grant.cloud_ids;
                             });
      if (it != md.grants.end()) {
        *it = grant;
      } else if (grant.read || grant.write) {
        md.grants.push_back(grant);
      }
    }
  }

  DepSkyVersion version;
  version.version = md.NextVersionNumber();
  version.content_hash = content_hash;
  version.size = data.size();
  version.cloud_shard.assign(clouds_.size(), -1);

  // Steps 1-3 (Figure 6): key generation, encryption, erasure coding and
  // secret sharing. The whole stage is zero-copy: the plaintext is encrypted
  // straight into the arena's framed data region (the systematic shards alias
  // that frame), parity is derived in place, and every later consumer —
  // shard hashing and wire-object serialization — reads arena views. In
  // replication mode the "shards" are views of the caller's plaintext.
  std::optional<ShardArena> arena;
  std::vector<SecretShare> shares;
  const unsigned shard_count = static_cast<unsigned>(clouds_.size());
  if (config_.mode == DepSkyMode::kSecretSharing) {
    Bytes key = RandomBytesLocked(ChaCha20::kKeySize);
    version.nonce = RandomBytesLocked(ChaCha20::kNonceSize);
    ErasureCodec codec(config_.n(), config_.k());
    arena = codec.PrepareArena(data.size());
    ChaCha20::CryptInto(key, version.nonce, 0, data, arena->payload());
    codec.ComputeParity(&*arena);
    Result<std::vector<SecretShare>> split = [&]() {
      std::lock_guard<std::mutex> lock(rng_mu_);
      return SecretSharing::Split(key, config_.n(), config_.k(), rng_);
    }();
    RETURN_IF_ERROR(split.status());
    shares = std::move(*split);
  }
  auto shard_view = [&](unsigned i) -> ConstByteSpan {
    return arena ? arena->shard(i) : data;  // full replicas without the arena
  };
  version.shard_hashes.resize(shard_count);
  if (arena) {
    for (unsigned i = 0; i < shard_count; ++i) {
      version.shard_hashes[i] = Sha256::Hash(arena->shard(i));
    }
  } else {
    // Replicas are identical; hash the payload once, not once per cloud.
    Bytes replica_hash = Sha256::Hash(data);
    for (unsigned i = 0; i < shard_count; ++i) {
      version.shard_hashes[i] = replica_hash;
    }
  }

  // Step 4: store shard_i + share_i at cloud i. Preferred quorums: use the
  // first n-f clouds, falling back to spares only on failure.
  const std::string value_key = ValueKey(unit, version.version);
  const unsigned quorum = config_.quorum();
  std::vector<unsigned> preferred;
  std::vector<unsigned> spares;
  for (unsigned i = 0; i < clouds_.size(); ++i) {
    if (config_.preferred_quorums && preferred.size() >= quorum) {
      spares.push_back(i);
    } else {
      preferred.push_back(i);
    }
  }

  auto encode_object = [&](unsigned shard_index) -> Bytes {
    // The shard bytes move from the arena (or the caller's plaintext) to the
    // wire buffer in this one serialization copy.
    if (config_.mode == DepSkyMode::kSecretSharing) {
      return DepSkyValueObject::EncodeParts(shard_view(shard_index),
                                            shares[shard_index].index,
                                            shares[shard_index].data);
    }
    return DepSkyValueObject::EncodeParts(shard_view(shard_index), 0, {});
  };
  auto write_to_cloud = [&](unsigned cloud, unsigned shard_index) -> Status {
    Status s = clouds_[cloud].store->Put(clouds_[cloud].creds, value_key,
                                         encode_object(shard_index));
    if (s.ok()) {
      ApplyAclsToObject(md, cloud, value_key);
    }
    return s;
  };

  // First wave: shard i -> preferred cloud i, fanned out through the async
  // ObjectStore API and awaited at the write quorum. (With preferred quorums
  // the wave is exactly quorum-sized, so this waits for all of it; without
  // them, the n-f fastest clouds complete the write.)
  std::vector<Future<Status>> futures;
  futures.reserve(preferred.size());
  for (unsigned cloud : preferred) {
    futures.push_back(clouds_[cloud].store->PutAsync(
        clouds_[cloud].creds, value_key, encode_object(cloud)));
  }
  QuorumResult<Status> acks =
      WhenQuorum<Status>(futures, quorum,
                         [](size_t, const Status& s) { return s.ok(); })
          .Get();
  unsigned successes = 0;
  std::vector<unsigned> failed_shards;
  std::shared_ptr<const DepSkyMetadata> md_shared;
  std::vector<Future<Status>> acl_futures;
  for (size_t i = 0; i < preferred.size(); ++i) {
    unsigned cloud = preferred[i];
    if (!acks.results[i].has_value()) {
      // Still in flight past the quorum: not recorded as a holder, but its
      // object (if the PUT lands) still gets the grants.
      if (!md_shared) {
        md_shared = std::make_shared<const DepSkyMetadata>(md);
      }
      ApplyAclsWhenWritten(futures[i], cloud, md_shared, value_key);
      continue;
    }
    if (acks.results[i]->ok()) {
      version.cloud_shard[cloud] = static_cast<int32_t>(cloud);
      CollectAclFutures(md, cloud, value_key, &acl_futures);
      ++successes;
    } else {
      failed_shards.push_back(cloud);
    }
  }
  WhenAll<Status>(std::move(acl_futures)).Join();  // max-of-clouds
  // Fallback wave: route failed shards to spare clouds.
  for (unsigned spare : spares) {
    if (successes >= quorum || failed_shards.empty()) {
      break;
    }
    unsigned shard = failed_shards.back();
    if (write_to_cloud(spare, shard).ok()) {
      version.cloud_shard[spare] = static_cast<int32_t>(shard);
      failed_shards.pop_back();
      ++successes;
    }
  }
  if (successes < quorum) {
    return UnavailableError("depsky write quorum not reached for " + unit);
  }

  // Step 5: publish the version in the metadata object.
  md.versions.push_back(std::move(version));
  RETURN_IF_ERROR(PushMetadata(unit, md));
  return md.versions.back().version;
}

Result<Bytes> DepSkyClient::FetchVersion(const std::string& unit,
                                         const DepSkyMetadata& md,
                                         const DepSkyVersion& version) {
  const std::string value_key = ValueKey(unit, version.version);
  const unsigned k = (md.mode == DepSkyMode::kSecretSharing) ? md.k : 1;

  // Clouds that hold a shard of this version, in preference order.
  std::vector<unsigned> holders;
  for (unsigned i = 0; i < clouds_.size(); ++i) {
    if (i < version.cloud_shard.size() && version.cloud_shard[i] >= 0) {
      holders.push_back(i);
    }
  }
  if (holders.size() < k) {
    return UnavailableError("not enough shard holders recorded");
  }

  std::vector<std::optional<Bytes>> shards(clouds_.size());
  std::vector<SecretShare> shares;
  unsigned valid = 0;

  // Validates and collects one reply. Runs serialized: either under the
  // quorum combinator's lock (first wave) or on this thread (fallback), and
  // never after the combined future completes — the wave is quorum-sized, so
  // the trigger implies every wave member already finished.
  auto collect = [&](unsigned cloud, const Result<Bytes>& raw) -> bool {
    if (!raw.ok()) {
      return false;
    }
    auto object = DepSkyValueObject::Decode(*raw);
    if (!object.ok()) {
      return false;
    }
    unsigned shard_index = static_cast<unsigned>(version.cloud_shard[cloud]);
    if (shard_index >= version.shard_hashes.size() ||
        Sha256::Hash(object->shard) != version.shard_hashes[shard_index]) {
      return false;  // corrupted or byzantine shard: skip
    }
    if (!shards[shard_index].has_value()) {
      shards[shard_index] = std::move(object->shard);
      if (object->share_index != 0) {
        shares.push_back(SecretShare{object->share_index, object->share_data});
      }
      ++valid;
    }
    return true;
  };

  // Fetch the first k holders concurrently through the async API, then fall
  // back one by one to the remaining holders.
  std::vector<unsigned> first_wave(holders.begin(), holders.begin() + k);
  std::vector<Future<Result<Bytes>>> futures;
  futures.reserve(first_wave.size());
  for (unsigned cloud : first_wave) {
    futures.push_back(
        clouds_[cloud].store->GetAsync(clouds_[cloud].creds, value_key));
  }
  (void)WhenQuorum<Result<Bytes>>(
      std::move(futures), k,
      [&](size_t i, const Result<Bytes>& raw) {
        return collect(first_wave[i], raw);
      })
      .Join();
  size_t next_holder = k;
  while (valid < k && next_holder < holders.size()) {
    unsigned cloud = holders[next_holder++];
    collect(cloud, clouds_[cloud].store->Get(clouds_[cloud].creds, value_key));
  }
  if (valid < k) {
    return UnavailableError("could not fetch enough valid shards for " + unit);
  }

  Bytes plaintext;
  if (md.mode == DepSkyMode::kSecretSharing) {
    // Reassemble into one buffer, then decrypt it in place: the ciphertext
    // buffer becomes the plaintext without a second allocation or pass.
    ErasureCodec codec(md.n, md.k);
    ASSIGN_OR_RETURN(plaintext, codec.Decode(shards));
    ASSIGN_OR_RETURN(Bytes key, SecretSharing::Combine(shares, md.k));
    ChaCha20::CryptInPlace(key, version.nonce, 0, ByteSpan(plaintext));
  } else {
    for (auto& shard : shards) {
      if (shard.has_value()) {
        plaintext = std::move(*shard);
        break;
      }
    }
  }

  // Final integrity check: the consistency-anchor hash must match.
  if (HexEncode(Sha1::Hash(plaintext)) != version.content_hash) {
    return CorruptionError("content hash mismatch for " + unit);
  }
  return plaintext;
}

Result<Bytes> DepSkyClient::ReadByHash(const std::string& unit,
                                       const std::string& content_hash) {
  ASSIGN_OR_RETURN(DepSkyMetadata md, ReadMetadata(unit));
  const DepSkyVersion* version = md.FindByHash(content_hash);
  if (version == nullptr) {
    return NotFoundError("version " + content_hash + " not visible yet");
  }
  return FetchVersion(unit, md, *version);
}

Result<Bytes> DepSkyClient::ReadLatest(const std::string& unit) {
  ASSIGN_OR_RETURN(DepSkyMetadata md, ReadMetadata(unit));
  const DepSkyVersion* version = md.Latest();
  if (version == nullptr) {
    return NotFoundError("no versions of " + unit);
  }
  return FetchVersion(unit, md, *version);
}

Status DepSkyClient::DeleteVersion(const std::string& unit, uint64_t version) {
  ASSIGN_OR_RETURN(DepSkyMetadata md, ReadMetadata(unit));
  auto it = std::find_if(md.versions.begin(), md.versions.end(),
                         [&](const DepSkyVersion& v) {
                           return v.version == version;
                         });
  if (it == md.versions.end()) {
    return NotFoundError("version not in metadata");
  }
  md.versions.erase(it);
  RETURN_IF_ERROR(PushMetadata(unit, md));

  const std::string value_key = ValueKey(unit, version);
  std::vector<Future<Status>> futures;
  futures.reserve(clouds_.size());
  for (unsigned i = 0; i < clouds_.size(); ++i) {
    futures.push_back(
        clouds_[i].store->DeleteAsync(clouds_[i].creds, value_key));
  }
  WhenAll<Status>(std::move(futures)).Join();
  return OkStatus();  // best effort: missing replicas are fine
}

Status DepSkyClient::DeleteUnit(const std::string& unit) {
  auto md = ReadMetadata(unit);
  if (md.ok()) {
    // Delete value objects for every version first.
    std::vector<uint64_t> versions;
    for (const auto& v : md->versions) {
      versions.push_back(v.version);
    }
    for (uint64_t v : versions) {
      const std::string value_key = ValueKey(unit, v);
      for (unsigned i = 0; i < clouds_.size(); ++i) {
        (void)clouds_[i].store->Delete(clouds_[i].creds, value_key);
      }
    }
  }
  const std::string md_key = MetadataKey(unit);
  for (unsigned i = 0; i < clouds_.size(); ++i) {
    (void)clouds_[i].store->Delete(clouds_[i].creds, md_key);
  }
  return OkStatus();
}

Status DepSkyClient::SetGrant(const std::string& unit,
                              const DepSkyGrant& grant) {
  ASSIGN_OR_RETURN(DepSkyMetadata md, ReadMetadata(unit));
  // Replace an existing grant for the same principal ids, else append.
  auto it = std::find_if(md.grants.begin(), md.grants.end(),
                         [&](const DepSkyGrant& g) {
                           return g.cloud_ids == grant.cloud_ids;
                         });
  if (it != md.grants.end()) {
    if (!grant.read && !grant.write) {
      md.grants.erase(it);
    } else {
      *it = grant;
    }
  } else if (grant.read || grant.write) {
    md.grants.push_back(grant);
  }

  // Apply to the metadata object and to every existing version object.
  RETURN_IF_ERROR(PushMetadata(unit, md));
  ObjectPermissions perms;
  perms.read = grant.read;
  perms.write = grant.write;
  for (const auto& version : md.versions) {
    const std::string value_key = ValueKey(unit, version.version);
    for (unsigned i = 0; i < clouds_.size(); ++i) {
      if (i < grant.cloud_ids.size() && !grant.cloud_ids[i].empty()) {
        (void)clouds_[i].store->SetAcl(clouds_[i].creds, value_key,
                                       grant.cloud_ids[i], perms);
      }
    }
  }
  return OkStatus();
}

}  // namespace scfs
