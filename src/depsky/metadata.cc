#include "src/depsky/metadata.h"

#include "src/crypto/hmac.h"

namespace scfs {

namespace {

// Tag of the trailing stripe-manifest section. The section is appended only
// when some version is striped, so metadata without striped versions encodes
// (and authenticates) byte-identically to the pre-stripe format.
constexpr uint32_t kStripeSectionMagic = 0x53545250;  // "STRP"

Bytes EncodeBody(const DepSkyMetadata& md) {
  Bytes out;
  AppendU32(&out, md.n);
  AppendU32(&out, md.k);
  out.push_back(static_cast<uint8_t>(md.mode));
  AppendU32(&out, static_cast<uint32_t>(md.owner_ids.size()));
  for (const auto& id : md.owner_ids) {
    AppendString(&out, id);
  }
  AppendU32(&out, static_cast<uint32_t>(md.versions.size()));
  for (const auto& v : md.versions) {
    AppendU64(&out, v.version);
    AppendString(&out, v.content_hash);
    AppendU64(&out, v.size);
    AppendBytes(&out, v.nonce);
    AppendU32(&out, static_cast<uint32_t>(v.shard_hashes.size()));
    for (const auto& h : v.shard_hashes) {
      AppendBytes(&out, h);
    }
    AppendU32(&out, static_cast<uint32_t>(v.cloud_shard.size()));
    for (int32_t s : v.cloud_shard) {
      AppendU32(&out, static_cast<uint32_t>(s));
    }
  }
  AppendU32(&out, static_cast<uint32_t>(md.grants.size()));
  for (const auto& g : md.grants) {
    AppendU32(&out, static_cast<uint32_t>(g.cloud_ids.size()));
    for (const auto& id : g.cloud_ids) {
      AppendString(&out, id);
    }
    out.push_back(static_cast<uint8_t>((g.read ? 1 : 0) | (g.write ? 2 : 0)));
  }
  uint32_t striped_count = 0;
  for (const auto& v : md.versions) {
    if (v.striped()) {
      ++striped_count;
    }
  }
  if (striped_count > 0) {
    AppendU32(&out, kStripeSectionMagic);
    AppendU32(&out, striped_count);
    for (size_t i = 0; i < md.versions.size(); ++i) {
      const auto& v = md.versions[i];
      if (!v.striped()) {
        continue;
      }
      AppendU32(&out, static_cast<uint32_t>(i));
      AppendU64(&out, v.stripe_unit_size);
      AppendU32(&out, static_cast<uint32_t>(v.stripe_units.size()));
      for (const auto& u : v.stripe_units) {
        AppendBytes(&out, u.content_hash);
        AppendU32(&out, static_cast<uint32_t>(u.shard_hashes.size()));
        for (const auto& h : u.shard_hashes) {
          AppendBytes(&out, h);
        }
        AppendU32(&out, static_cast<uint32_t>(u.cloud_shard.size()));
        for (int32_t s : u.cloud_shard) {
          AppendU32(&out, static_cast<uint32_t>(s));
        }
      }
    }
  }
  return out;
}
}  // namespace

Bytes DepSkyMetadata::Encode(const Bytes& auth_key) const {
  Bytes body = EncodeBody(*this);
  Bytes mac = HmacSha256(auth_key, body);
  Bytes out;
  AppendBytes(&out, body);
  AppendBytes(&out, mac);
  return out;
}

Result<DepSkyMetadata> DepSkyMetadata::Decode(const Bytes& data,
                                              const Bytes& auth_key) {
  ByteReader outer(data);
  Bytes body;
  Bytes mac;
  if (!outer.ReadBytes(&body) || !outer.ReadBytes(&mac)) {
    return CorruptionError("truncated depsky metadata");
  }
  if (!HmacSha256Verify(auth_key, body, mac)) {
    return CorruptionError("depsky metadata authenticator mismatch");
  }

  DepSkyMetadata md;
  ByteReader reader(body);
  uint8_t mode = 0;
  uint32_t version_count = 0;
  uint32_t owner_count = 0;
  if (!reader.ReadU32(&md.n) || !reader.ReadU32(&md.k) ||
      !reader.ReadU8(&mode) || !reader.ReadU32(&owner_count)) {
    return CorruptionError("bad depsky metadata header");
  }
  md.mode = static_cast<DepSkyMode>(mode);
  md.owner_ids.resize(owner_count);
  for (auto& id : md.owner_ids) {
    if (!reader.ReadString(&id)) {
      return CorruptionError("bad depsky owner id");
    }
  }
  if (!reader.ReadU32(&version_count)) {
    return CorruptionError("bad depsky metadata header");
  }
  md.versions.resize(version_count);
  for (auto& v : md.versions) {
    uint32_t shard_count = 0;
    uint32_t cloud_count = 0;
    if (!reader.ReadU64(&v.version) || !reader.ReadString(&v.content_hash) ||
        !reader.ReadU64(&v.size) || !reader.ReadBytes(&v.nonce) ||
        !reader.ReadU32(&shard_count)) {
      return CorruptionError("bad depsky version record");
    }
    v.shard_hashes.resize(shard_count);
    for (auto& h : v.shard_hashes) {
      if (!reader.ReadBytes(&h)) {
        return CorruptionError("bad depsky shard hash");
      }
    }
    if (!reader.ReadU32(&cloud_count)) {
      return CorruptionError("bad depsky cloud map");
    }
    v.cloud_shard.resize(cloud_count);
    for (auto& s : v.cloud_shard) {
      uint32_t raw = 0;
      if (!reader.ReadU32(&raw)) {
        return CorruptionError("bad depsky cloud map entry");
      }
      s = static_cast<int32_t>(raw);
    }
  }
  uint32_t grant_count = 0;
  if (!reader.ReadU32(&grant_count)) {
    return CorruptionError("bad depsky grant count");
  }
  md.grants.resize(grant_count);
  for (auto& g : md.grants) {
    uint32_t id_count = 0;
    if (!reader.ReadU32(&id_count)) {
      return CorruptionError("bad depsky grant");
    }
    g.cloud_ids.resize(id_count);
    for (auto& id : g.cloud_ids) {
      if (!reader.ReadString(&id)) {
        return CorruptionError("bad depsky grant id");
      }
    }
    uint8_t perms = 0;
    if (!reader.ReadU8(&perms)) {
      return CorruptionError("bad depsky grant perms");
    }
    g.read = (perms & 1) != 0;
    g.write = (perms & 2) != 0;
  }
  // Trailing stripe-manifest section; absent in pre-stripe encodings and for
  // metadata whose versions are all monolithic.
  if (!reader.AtEnd()) {
    uint32_t magic = 0;
    uint32_t striped_count = 0;
    if (!reader.ReadU32(&magic) || magic != kStripeSectionMagic ||
        !reader.ReadU32(&striped_count)) {
      return CorruptionError("bad depsky stripe section");
    }
    for (uint32_t s = 0; s < striped_count; ++s) {
      uint32_t version_index = 0;
      if (!reader.ReadU32(&version_index) ||
          version_index >= md.versions.size()) {
        return CorruptionError("bad depsky stripe version index");
      }
      auto& v = md.versions[version_index];
      uint32_t unit_count = 0;
      if (!reader.ReadU64(&v.stripe_unit_size) || v.stripe_unit_size == 0 ||
          !reader.ReadU32(&unit_count)) {
        return CorruptionError("bad depsky stripe manifest");
      }
      v.stripe_units.resize(unit_count);
      for (auto& u : v.stripe_units) {
        uint32_t shard_count = 0;
        uint32_t cloud_count = 0;
        if (!reader.ReadBytes(&u.content_hash) ||
            !reader.ReadU32(&shard_count)) {
          return CorruptionError("bad depsky stripe unit");
        }
        u.shard_hashes.resize(shard_count);
        for (auto& h : u.shard_hashes) {
          if (!reader.ReadBytes(&h)) {
            return CorruptionError("bad depsky stripe shard hash");
          }
        }
        if (!reader.ReadU32(&cloud_count)) {
          return CorruptionError("bad depsky stripe cloud map");
        }
        u.cloud_shard.resize(cloud_count);
        for (auto& c : u.cloud_shard) {
          uint32_t raw = 0;
          if (!reader.ReadU32(&raw)) {
            return CorruptionError("bad depsky stripe cloud entry");
          }
          c = static_cast<int32_t>(raw);
        }
      }
    }
  }
  return md;
}

const DepSkyVersion* DepSkyMetadata::FindByHash(
    const std::string& content_hash) const {
  for (auto it = versions.rbegin(); it != versions.rend(); ++it) {
    if (it->content_hash == content_hash) {
      return &*it;
    }
  }
  return nullptr;
}

Bytes DepSkyValueObject::Encode() const {
  return EncodeParts(shard, share_index, share_data);
}

Bytes DepSkyValueObject::EncodeParts(ConstByteSpan shard, uint8_t share_index,
                                     ConstByteSpan share_data) {
  Bytes out;
  out.reserve(shard.size() + share_data.size() + 9);
  AppendBytes(&out, shard);
  out.push_back(share_index);
  AppendBytes(&out, share_data);
  return out;
}

Result<DepSkyValueObject> DepSkyValueObject::Decode(const Bytes& data) {
  DepSkyValueObject obj;
  ByteReader reader(data);
  if (!reader.ReadBytes(&obj.shard) || !reader.ReadU8(&obj.share_index) ||
      !reader.ReadBytes(&obj.share_data)) {
    return CorruptionError("bad depsky value object");
  }
  return obj;
}

}  // namespace scfs
