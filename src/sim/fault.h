// Fault injection for modelled services.
//
// Supports the fault classes the paper's cloud-of-clouds backend is built to
// survive (§3.2): provider unavailability (outages), data corruption and
// Byzantine behaviour (arbitrary wrong answers), plus probabilistic transient
// failures for retry-path testing and latency degradation (a brown-out: the
// provider answers, just much slower than its profile).

#ifndef SCFS_SIM_FAULT_H_
#define SCFS_SIM_FAULT_H_

#include <atomic>
#include <mutex>

#include "src/common/bytes.h"
#include "src/common/rng.h"
#include "src/sim/time.h"

namespace scfs {

class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed = 17) : rng_(seed) {}

  // Hard outage: every operation fails with UNAVAILABLE until cleared.
  void SetUnavailable(bool unavailable) { unavailable_.store(unavailable); }
  bool unavailable() const { return unavailable_.load(); }

  // Transient failures: each operation independently fails with probability p.
  void SetTransientFailureProbability(double p) {
    std::lock_guard<std::mutex> lock(mu_);
    transient_p_ = p;
  }

  // Latency degradation: every operation pays this much extra modelled time
  // on top of the provider's latency profile (applied even when the
  // operation then fails — the client still waited for the answer).
  void SetLatencyDegradation(VirtualDuration extra) {
    extra_latency_.store(extra);
  }
  VirtualDuration latency_degradation() const { return extra_latency_.load(); }

  // Corruption: reads return flipped bytes. Either the next `n` reads or all.
  void CorruptNextReads(int n) { corrupt_reads_.store(n); }
  void SetCorruptAllReads(bool corrupt) { corrupt_all_.store(corrupt); }

  // Byzantine: the service may return stale/fabricated data (consumers decide
  // what that means; this is just the switch).
  void SetByzantine(bool byzantine) { byzantine_.store(byzantine); }
  bool byzantine() const { return byzantine_.load(); }

  // Called by the service before each operation; true => fail UNAVAILABLE.
  bool ShouldFailOperation() {
    if (unavailable_.load()) {
      return true;
    }
    std::lock_guard<std::mutex> lock(mu_);
    return transient_p_ > 0.0 && rng_.Chance(transient_p_);
  }

  // Called by the service on each read; true => corrupt the payload.
  bool ShouldCorruptRead() {
    if (corrupt_all_.load()) {
      return true;
    }
    int n = corrupt_reads_.load();
    while (n > 0) {
      if (corrupt_reads_.compare_exchange_weak(n, n - 1)) {
        return true;
      }
    }
    return false;
  }

  // Corrupts `data` in place. Flip positions and values come from the
  // injector's seeded RNG, so a given (seed, read sequence) produces the
  // same corrupted bytes on every run — corrupted-read tests replay
  // bit-identically. The first flip XORs a non-zero value, so the payload is
  // guaranteed to differ from the original.
  void CorruptPayload(ByteSpan data) {
    if (data.empty()) {
      return;
    }
    std::lock_guard<std::mutex> lock(mu_);
    size_t anchor = static_cast<size_t>(rng_.UniformU64(data.size()));
    data[anchor] ^= static_cast<uint8_t>(1 + rng_.UniformU64(255));
    for (int i = 0; i < 2; ++i) {  // extra flips to spread the damage
      size_t pos = static_cast<size_t>(rng_.UniformU64(data.size()));
      if (pos != anchor) {
        data[pos] ^= static_cast<uint8_t>(1 + rng_.UniformU64(255));
      }
    }
  }

 private:
  std::atomic<bool> unavailable_{false};
  std::atomic<bool> corrupt_all_{false};
  std::atomic<bool> byzantine_{false};
  std::atomic<int> corrupt_reads_{0};
  std::atomic<VirtualDuration> extra_latency_{0};
  std::mutex mu_;
  double transient_p_ = 0.0;
  Rng rng_;
};

}  // namespace scfs

#endif  // SCFS_SIM_FAULT_H_
