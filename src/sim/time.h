// Virtual time vocabulary. All modelled delays in SCFS are expressed in
// virtual microseconds; the Environment maps virtual time onto (scaled) real
// time so the whole evaluation runs orders of magnitude faster than the
// paper's wall-clock testbed while preserving every latency ratio.

#ifndef SCFS_SIM_TIME_H_
#define SCFS_SIM_TIME_H_

#include <cstdint>

namespace scfs {

// Virtual timestamps/durations in microseconds.
using VirtualTime = int64_t;
using VirtualDuration = int64_t;

constexpr VirtualDuration kMicrosecond = 1;
constexpr VirtualDuration kMillisecond = 1000;
constexpr VirtualDuration kSecond = 1000 * 1000;

constexpr double ToSeconds(VirtualDuration d) {
  return static_cast<double>(d) / kSecond;
}

constexpr VirtualDuration FromMillis(double ms) {
  return static_cast<VirtualDuration>(ms * kMillisecond);
}

constexpr VirtualDuration FromSecondsD(double s) {
  return static_cast<VirtualDuration>(s * kSecond);
}

}  // namespace scfs

#endif  // SCFS_SIM_TIME_H_
