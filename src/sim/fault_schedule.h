// Declarative fault timelines for chaos campaigns.
//
// A FaultSchedule is a list of timed fault windows — cloud outages, latency
// degradation (brown-outs), transient-error bursts, read corruption,
// Byzantine stale answers, and SMR replica crash/restart — expressed in
// virtual time relative to a campaign origin. Schedules parse from key=value
// event lines in the same strict style as workload personalities
// (bench/scenario/personality.h):
//
//   # cloud 0 hard outage from t=4s to t=10s
//   kind=outage cloud=0 at=4s for=6s
//   kind=latency cloud=1 at=2s for=5s add=400ms
//   kind=transient cloud=2 at=0s for=8s p=0.3
//   kind=corrupt cloud=0 at=4s for=6s
//   kind=byzantine cloud=3 at=4s for=6s
//   kind=replica_restart replica=2 at=5s for=3s   # crash at 5s, restart at 8s
//   kind=lease_expiry at=5s for=3s                # leases suspended 5s-8s
//
// Everything downstream of a schedule is deterministic: the events carry no
// randomness themselves, and the per-cloud FaultInjector RNGs that realise
// transient failures and corruption byte flips are seeded — a campaign
// replays bit-identically. The ChaosRunner (src/chaos/campaign.h) walks the
// schedule against a live deployment.

#ifndef SCFS_SIM_FAULT_SCHEDULE_H_
#define SCFS_SIM_FAULT_SCHEDULE_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/sim/time.h"

namespace scfs {

enum class FaultKind {
  kOutage = 0,      // cloud fails every operation with UNAVAILABLE
  kLatency,         // cloud answers, but `extra_latency` slower
  kTransient,       // cloud fails each op independently with `probability`
  kCorrupt,         // cloud flips bytes in every read payload
  kByzantine,       // cloud serves arbitrarily stale versions
  kReplicaRestart,  // coordination replica crashes, restarts at window end
  kLeaseExpiry,     // metadata leases invalidated; grants suspended in window
};
constexpr size_t kFaultKindCount = 7;

const char* FaultKindName(FaultKind kind);

struct FaultEvent {
  FaultKind kind = FaultKind::kOutage;
  // Cloud index for cloud faults; replica index for kReplicaRestart.
  // Unused for kLeaseExpiry (it hits the whole deployment's lease plane).
  unsigned target = 0;
  VirtualTime at = 0;          // window start, relative to campaign origin
  VirtualDuration duration = 0;  // window length; faults clear at at+duration
  double probability = 0;      // kTransient only
  VirtualDuration extra_latency = 0;  // kLatency only

  VirtualTime end() const { return at + duration; }
};

struct FaultSchedule {
  std::string name = "custom";
  std::vector<FaultEvent> events;

  bool empty() const { return events.empty(); }
  // Latest window end across all events (0 for an empty schedule).
  VirtualTime horizon() const;
  // Union of all event windows relative to the origin, merged and sorted —
  // the spans where a client could observe degraded service.
  std::vector<std::pair<VirtualTime, VirtualTime>> MergedWindows() const;
};

// Parses one event line of space-separated key=value tokens (see file
// comment for the grammar). Keys: kind, cloud, replica, at, for, p, add.
// Durations take us/ms/s suffixes. Unknown keys, missing required keys and
// unparsable values are errors.
Result<FaultEvent> ParseFaultEvent(const std::string& line);

// Parses a whole schedule: one event per line; blank lines and lines
// starting with '#' are skipped.
Result<FaultSchedule> ParseFaultSchedule(const std::string& text);

// Built-in campaigns, sized for a ~16 s run on the default 4-cloud (f=1)
// deployment: outage, latency, flaky, corruption, byzantine, replica, mixed.
Result<FaultSchedule> BuiltinCampaign(const std::string& name);

// The spec text the named builtin campaign parses from (for --print and
// docs). Unknown names return an error.
Result<std::string> BuiltinCampaignText(const std::string& name);

}  // namespace scfs

#endif  // SCFS_SIM_FAULT_SCHEDULE_H_
