// Environment: the simulation kernel shared by all modelled services.
//
// time_scale is the number of real seconds spent per virtual second. The
// default benchmark configuration uses 1/1000 (one virtual second costs one
// real millisecond). Semantic tests use Environment::Instant(), where all
// modelled sleeps are skipped and virtual time is advanced by a logical
// counter instead, keeping "happens after the window" reasoning intact.

#ifndef SCFS_SIM_ENVIRONMENT_H_
#define SCFS_SIM_ENVIRONMENT_H_

#include <atomic>
#include <chrono>
#include <memory>

#include "src/sim/time.h"

namespace scfs {

class Environment {
 public:
  // Scaled mode: virtual durations are slept as d * time_scale real time.
  explicit Environment(double time_scale);

  // Instant mode: Sleep() does not block; it atomically advances a logical
  // virtual clock instead. Services that compare Now() against visibility
  // deadlines still behave correctly, just with zero real delay.
  static std::unique_ptr<Environment> Instant();
  // Standard benchmark environment (1 virtual second = 1 real millisecond).
  static std::unique_ptr<Environment> Scaled(double time_scale = 0.001);

  // Current virtual time (microseconds since environment creation).
  VirtualTime Now() const;

  // Blocks (scaled) for a virtual duration.
  void Sleep(VirtualDuration d);

  // Sum of virtual durations Slept by the *calling thread* since the last
  // ResetThreadCharged(). Benchmarks of purely local operations report this
  // instead of elapsed time, so modelled costs are measured exactly, without
  // real-compute noise scaled into virtual time.
  static VirtualDuration ThreadCharged();
  static void ResetThreadCharged();

  // Adds to the calling thread's charged time without sleeping. Used by
  // fan-out primitives to propagate the *maximum* child charge (parallel
  // cloud accesses) and by waits that block outside Sleep() (quorum reply
  // collection).
  static void AddThreadCharge(VirtualDuration d);

  // Maps a virtual deadline to a real steady_clock time point (scaled mode).
  std::chrono::steady_clock::time_point RealDeadline(VirtualTime t) const;

  bool instant() const { return instant_; }
  double time_scale() const { return time_scale_; }

 private:
  Environment();  // instant mode

  bool instant_;
  double time_scale_;
  std::chrono::steady_clock::time_point origin_;
  std::atomic<int64_t> logical_now_{0};  // instant mode only
};

}  // namespace scfs

#endif  // SCFS_SIM_ENVIRONMENT_H_
