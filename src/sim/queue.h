// DelayedQueue<T>: a mailbox with virtual-time delivery delays, used as the
// network transport between coordination-service replicas and clients.
//
// Push(msg, deliver_at) makes the message visible to Pop() only once the
// environment clock reaches deliver_at; the sender never blocks. Pop() blocks
// (in scaled real time) until a deliverable message exists or the queue is
// closed.

#ifndef SCFS_SIM_QUEUE_H_
#define SCFS_SIM_QUEUE_H_

#include <condition_variable>
#include <mutex>
#include <optional>
#include <queue>
#include <vector>

#include "src/sim/environment.h"

namespace scfs {

template <typename T>
class DelayedQueue {
 public:
  explicit DelayedQueue(Environment* env) : env_(env) {}

  void Push(T message, VirtualTime deliver_at) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) {
        return;
      }
      heap_.push(Item{deliver_at, seq_++, std::move(message)});
    }
    cv_.notify_all();
  }

  void PushNow(T message) { Push(std::move(message), env_->Now()); }

  // Blocks until a message is deliverable or the queue is closed.
  // Returns nullopt when closed and drained.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      if (!heap_.empty()) {
        VirtualTime due = heap_.top().deliver_at;
        if (due <= env_->Now()) {
          T out = std::move(const_cast<Item&>(heap_.top()).message);
          heap_.pop();
          return out;
        }
        if (env_->instant()) {
          // Logical clock: jump straight to the delivery time.
          T out = std::move(const_cast<Item&>(heap_.top()).message);
          heap_.pop();
          lock.unlock();
          env_->Sleep(due - env_->Now());
          return out;
        }
        cv_.wait_until(lock, env_->RealDeadline(due));
        continue;
      }
      if (closed_) {
        return std::nullopt;
      }
      cv_.wait(lock);
    }
  }

  // Blocks at most `max_wait` virtual time; nullopt on timeout/close. In
  // instant mode an empty queue advances the logical clock by max_wait (the
  // caller "waited" that long).
  std::optional<T> PopFor(VirtualDuration max_wait) {
    VirtualTime give_up = env_->Now() + max_wait;
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      if (!heap_.empty()) {
        VirtualTime due = heap_.top().deliver_at;
        if (due <= env_->Now()) {
          T out = std::move(const_cast<Item&>(heap_.top()).message);
          heap_.pop();
          return out;
        }
        if (env_->instant()) {
          if (due > give_up) {
            lock.unlock();
            env_->Sleep(give_up - env_->Now());
            return std::nullopt;
          }
          T out = std::move(const_cast<Item&>(heap_.top()).message);
          heap_.pop();
          lock.unlock();
          env_->Sleep(due - env_->Now());
          return out;
        }
        if (due > give_up) {
          cv_.wait_until(lock, env_->RealDeadline(give_up));
          if (env_->Now() >= give_up) {
            return std::nullopt;
          }
          continue;
        }
        cv_.wait_until(lock, env_->RealDeadline(due));
        continue;
      }
      if (closed_) {
        return std::nullopt;
      }
      if (env_->instant()) {
        lock.unlock();
        env_->Sleep(max_wait);
        return std::nullopt;
      }
      cv_.wait_until(lock, env_->RealDeadline(give_up));
      if (heap_.empty() && env_->Now() >= give_up) {
        return std::nullopt;
      }
    }
  }

  // Non-blocking variant; returns nullopt if nothing deliverable right now.
  std::optional<T> TryPop() {
    std::lock_guard<std::mutex> lock(mu_);
    if (heap_.empty() || heap_.top().deliver_at > env_->Now()) {
      return std::nullopt;
    }
    T out = std::move(const_cast<Item&>(heap_.top()).message);
    heap_.pop();
    return out;
  }

  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

 private:
  struct Item {
    VirtualTime deliver_at;
    uint64_t seq;  // FIFO tie-break for equal delivery times
    T message;

    bool operator>(const Item& other) const {
      if (deliver_at != other.deliver_at) {
        return deliver_at > other.deliver_at;
      }
      return seq > other.seq;
    }
  };

  Environment* env_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> heap_;
  uint64_t seq_ = 0;
  bool closed_ = false;
};

}  // namespace scfs

#endif  // SCFS_SIM_QUEUE_H_
