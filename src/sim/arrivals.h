// Open-loop arrival scheduling on the virtual clock.
//
// A closed-loop driver issues the next operation when the previous one
// completes, so a saturated system silently throttles its own load and the
// measured latency distribution hides queueing (coordinated omission). An
// open-loop driver instead fixes the *arrival* process: operation i is due
// at a timestamp that does not depend on how the system is doing, and its
// latency is measured from that scheduled arrival time. OpenLoopArrivals
// generates those timestamps for the scenario engine (bench/scenario).
//
// Arrival times accumulate in floating-point seconds from the start time
// before conversion to VirtualTime, so a million-arrival schedule carries no
// integer rounding drift (a fixed per-gap truncation would inflate the
// effective rate by up to 1 us per arrival).

#ifndef SCFS_SIM_ARRIVALS_H_
#define SCFS_SIM_ARRIVALS_H_

#include <cmath>

#include "src/common/rng.h"
#include "src/sim/time.h"

namespace scfs {

enum class ArrivalProcess {
  kDeterministic,  // fixed inter-arrival gap 1/rate
  kPoisson,        // exponential gaps (memoryless, the open-system default)
};

class OpenLoopArrivals {
 public:
  // `ops_per_second` is the aggregate offered rate in virtual time; must be
  // > 0. `start` is the virtual time of the schedule origin (the first
  // arrival lands one gap after it).
  OpenLoopArrivals(ArrivalProcess process, double ops_per_second,
                   VirtualTime start, uint64_t seed)
      : process_(process),
        rate_(ops_per_second),
        start_(start),
        rng_(Rng::ForStream(seed, 0x4a52525649ULL)) {}

  // Returns the next scheduled arrival time. Monotone non-decreasing.
  VirtualTime Next() {
    double gap_s;
    if (process_ == ArrivalProcess::kDeterministic) {
      gap_s = 1.0 / rate_;
    } else {
      // Inverse-CDF exponential; UniformDouble() is in [0, 1) so the log
      // argument 1-u is in (0, 1] and never 0.
      gap_s = -std::log(1.0 - rng_.UniformDouble()) / rate_;
    }
    elapsed_s_ += gap_s;
    return start_ + FromSecondsD(elapsed_s_);
  }

  double rate() const { return rate_; }

 private:
  ArrivalProcess process_;
  double rate_;
  VirtualTime start_;
  double elapsed_s_ = 0;  // schedule offset in seconds (drift-free)
  Rng rng_;
};

}  // namespace scfs

#endif  // SCFS_SIM_ARRIVALS_H_
