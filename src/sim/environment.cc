#include "src/sim/environment.h"

#include <thread>

namespace scfs {

Environment::Environment(double time_scale)
    : instant_(false),
      time_scale_(time_scale),
      origin_(std::chrono::steady_clock::now()) {}

Environment::Environment()
    : instant_(true),
      time_scale_(0.0),
      origin_(std::chrono::steady_clock::now()) {}

std::unique_ptr<Environment> Environment::Instant() {
  return std::unique_ptr<Environment>(new Environment());
}

std::unique_ptr<Environment> Environment::Scaled(double time_scale) {
  return std::make_unique<Environment>(time_scale);
}

VirtualTime Environment::Now() const {
  if (instant_) {
    return logical_now_.load(std::memory_order_relaxed);
  }
  auto real_elapsed = std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::steady_clock::now() - origin_)
                          .count();
  return static_cast<VirtualTime>(
      static_cast<double>(real_elapsed) / 1000.0 / time_scale_);
}

namespace {
thread_local VirtualDuration t_charged = 0;
}  // namespace

VirtualDuration Environment::ThreadCharged() { return t_charged; }
void Environment::ResetThreadCharged() { t_charged = 0; }
void Environment::AddThreadCharge(VirtualDuration d) {
  if (d > 0) {
    t_charged += d;
  }
}

void Environment::Sleep(VirtualDuration d) {
  if (d <= 0) {
    return;
  }
  t_charged += d;
  if (instant_) {
    logical_now_.fetch_add(d, std::memory_order_relaxed);
    return;
  }
  auto real_ns = static_cast<int64_t>(static_cast<double>(d) * 1000.0 *
                                      time_scale_);
  std::this_thread::sleep_for(std::chrono::nanoseconds(real_ns));
}

std::chrono::steady_clock::time_point Environment::RealDeadline(
    VirtualTime t) const {
  if (instant_) {
    return std::chrono::steady_clock::now();
  }
  auto real_ns =
      static_cast<int64_t>(static_cast<double>(t) * 1000.0 * time_scale_);
  return origin_ + std::chrono::nanoseconds(real_ns);
}

}  // namespace scfs
