// Latency models for cloud and coordination accesses.
//
// A modelled access costs: base + U[0, jitter] + bytes / bandwidth.
// This is the standard first-order model for wide-area object storage: a
// fixed round-trip component (TCP+TLS+HTTP on the paper's testbed, 60-100 ms
// to the coordination service, 100s of ms to storage clouds) plus a transfer
// component proportional to object size.

#ifndef SCFS_SIM_LATENCY_H_
#define SCFS_SIM_LATENCY_H_

#include <cstddef>

#include "src/common/rng.h"
#include "src/sim/time.h"

namespace scfs {

struct LatencyModel {
  VirtualDuration base = 0;       // fixed per-operation latency
  VirtualDuration jitter = 0;     // uniform additive jitter in [0, jitter]
  double bytes_per_second = 0.0;  // transfer bandwidth; 0 means infinite

  VirtualDuration Sample(Rng& rng, size_t bytes) const {
    VirtualDuration d = base;
    if (jitter > 0) {
      d += static_cast<VirtualDuration>(
          rng.UniformU64(static_cast<uint64_t>(jitter) + 1));
    }
    if (bytes_per_second > 0.0 && bytes > 0) {
      d += static_cast<VirtualDuration>(
          static_cast<double>(bytes) / bytes_per_second * kSecond);
    }
    return d;
  }

  static LatencyModel None() { return LatencyModel{}; }

  static LatencyModel Fixed(VirtualDuration base) {
    return LatencyModel{base, 0, 0.0};
  }

  static LatencyModel WideArea(VirtualDuration base, VirtualDuration jitter,
                               double megabytes_per_second) {
    return LatencyModel{base, jitter, megabytes_per_second * 1024.0 * 1024.0};
  }
};

}  // namespace scfs

#endif  // SCFS_SIM_LATENCY_H_
