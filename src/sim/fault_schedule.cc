#include "src/sim/fault_schedule.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>

namespace scfs {

namespace {

constexpr const char* kKindNames[kFaultKindCount] = {
    "outage", "latency", "transient", "corrupt", "byzantine",
    "replica_restart", "lease_expiry",
};

Result<FaultKind> ParseKind(const std::string& value) {
  for (size_t i = 0; i < kFaultKindCount; ++i) {
    if (value == kKindNames[i]) {
      return static_cast<FaultKind>(i);
    }
  }
  return InvalidArgumentError(
      "fault schedule: unknown kind '" + value +
      "' (expected outage|latency|transient|corrupt|byzantine|"
      "replica_restart|lease_expiry)");
}

Result<VirtualDuration> ParseDuration(const std::string& key,
                                      const std::string& value) {
  char* end = nullptr;
  double parsed = std::strtod(value.c_str(), &end);
  VirtualDuration unit = 0;
  if (end != value.c_str()) {
    if (std::string(end) == "us") {
      unit = kMicrosecond;
    } else if (std::string(end) == "ms") {
      unit = kMillisecond;
    } else if (std::string(end) == "s") {
      unit = kSecond;
    }
  }
  if (unit == 0 || parsed < 0) {
    return InvalidArgumentError("fault schedule: bad duration for " + key +
                                ": '" + value + "' (want e.g. 250ms, 4s)");
  }
  return static_cast<VirtualDuration>(parsed * static_cast<double>(unit));
}

Result<unsigned> ParseIndex(const std::string& key, const std::string& value) {
  char* end = nullptr;
  unsigned long parsed = std::strtoul(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0' || parsed > 1000) {
    return InvalidArgumentError("fault schedule: bad index for " + key +
                                ": '" + value + "'");
  }
  return static_cast<unsigned>(parsed);
}

Result<double> ParseProbability(const std::string& key,
                                const std::string& value) {
  char* end = nullptr;
  double parsed = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0' || parsed < 0 || parsed > 1) {
    return InvalidArgumentError("fault schedule: bad probability for " + key +
                                ": '" + value + "'");
  }
  return parsed;
}

struct BuiltinDef {
  const char* name;
  const char* text;
};

// Window timing assumes a >= 14 s campaign run: faults start once the run is
// warm (4 s), clear with enough tail left to watch recovery.
constexpr BuiltinDef kBuiltins[] = {
    {"outage",
     "# Single-cloud hard outage: the f=1 masking claim under load.\n"
     "kind=outage cloud=0 at=4s for=6s\n"},
    {"latency",
     "# Brown-out: one cloud answers 400 ms slower than its profile.\n"
     "kind=latency cloud=1 at=4s for=6s add=400ms\n"},
    {"flaky",
     "# Flapping provider: staggered transient-error bursts on two clouds.\n"
     "kind=transient cloud=2 at=3s for=4s p=0.5\n"
     "kind=transient cloud=0 at=8s for=4s p=0.5\n"},
    {"corruption",
     "# One cloud silently corrupts every read payload.\n"
     "kind=corrupt cloud=0 at=4s for=6s\n"},
    {"byzantine",
     "# One cloud serves arbitrarily stale versions.\n"
     "kind=byzantine cloud=3 at=4s for=6s\n"},
    {"replica",
     "# Coordination replica 2 crashes and rejoins 3 s later, while a cloud\n"
     "# outage and a lease-expiry window overlap the same span: clients with\n"
     "# active metadata leases lose them mid-epoch and must fall back to the\n"
     "# anchored path with a degraded coordination plane underneath.\n"
     "kind=replica_restart replica=2 at=4s for=3s\n"
     "kind=outage cloud=0 at=5s for=3s\n"
     "kind=lease_expiry at=5s for=3s\n"},
    {"mixed",
     "# Overlapping multi-cloud trouble, still within f=1 at any instant\n"
     "# for the outage; the brown-out and flaky windows add pressure.\n"
     "kind=outage cloud=0 at=3s for=4s\n"
     "kind=latency cloud=1 at=5s for=5s add=300ms\n"
     "kind=transient cloud=2 at=8s for=4s p=0.3\n"},
};

}  // namespace

const char* FaultKindName(FaultKind kind) {
  return kKindNames[static_cast<size_t>(kind)];
}

VirtualTime FaultSchedule::horizon() const {
  VirtualTime latest = 0;
  for (const auto& event : events) {
    latest = std::max(latest, event.end());
  }
  return latest;
}

std::vector<std::pair<VirtualTime, VirtualTime>> FaultSchedule::MergedWindows()
    const {
  std::vector<std::pair<VirtualTime, VirtualTime>> spans;
  spans.reserve(events.size());
  for (const auto& event : events) {
    spans.emplace_back(event.at, event.end());
  }
  std::sort(spans.begin(), spans.end());
  std::vector<std::pair<VirtualTime, VirtualTime>> merged;
  for (const auto& span : spans) {
    if (!merged.empty() && span.first <= merged.back().second) {
      merged.back().second = std::max(merged.back().second, span.second);
    } else {
      merged.push_back(span);
    }
  }
  return merged;
}

Result<FaultEvent> ParseFaultEvent(const std::string& line) {
  FaultEvent event;
  bool have_kind = false;
  bool have_target = false;
  bool target_is_replica = false;
  bool have_at = false;
  bool have_for = false;
  bool have_p = false;
  bool have_add = false;

  std::istringstream in(line);
  std::string token;
  while (in >> token) {
    const size_t eq = token.find('=');
    if (eq == std::string::npos) {
      return InvalidArgumentError("fault schedule: expected key=value, got '" +
                                  token + "'");
    }
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    if (key == "kind") {
      ASSIGN_OR_RETURN(event.kind, ParseKind(value));
      have_kind = true;
    } else if (key == "cloud") {
      ASSIGN_OR_RETURN(event.target, ParseIndex(key, value));
      have_target = true;
      target_is_replica = false;
    } else if (key == "replica") {
      ASSIGN_OR_RETURN(event.target, ParseIndex(key, value));
      have_target = true;
      target_is_replica = true;
    } else if (key == "at") {
      ASSIGN_OR_RETURN(event.at, ParseDuration(key, value));
      have_at = true;
    } else if (key == "for") {
      ASSIGN_OR_RETURN(event.duration, ParseDuration(key, value));
      have_for = true;
    } else if (key == "p") {
      ASSIGN_OR_RETURN(event.probability, ParseProbability(key, value));
      have_p = true;
    } else if (key == "add") {
      ASSIGN_OR_RETURN(event.extra_latency, ParseDuration(key, value));
      have_add = true;
    } else {
      return InvalidArgumentError("fault schedule: unknown key '" + key + "'");
    }
  }

  if (!have_kind) {
    return InvalidArgumentError("fault schedule: event needs kind=..: '" +
                                line + "'");
  }
  if (event.kind == FaultKind::kLeaseExpiry) {
    // Hits the whole deployment's lease plane: no per-target index.
    if (have_target) {
      return InvalidArgumentError(
          "fault schedule: lease_expiry takes no cloud= or replica=");
    }
  } else {
    const bool wants_replica = event.kind == FaultKind::kReplicaRestart;
    if (!have_target) {
      return InvalidArgumentError(
          std::string("fault schedule: ") + FaultKindName(event.kind) +
          " needs " + (wants_replica ? "replica" : "cloud") + "=..");
    }
    if (target_is_replica != wants_replica) {
      return InvalidArgumentError(
          std::string("fault schedule: ") + FaultKindName(event.kind) +
          " targets a " + (wants_replica ? "replica" : "cloud") + ", not a " +
          (wants_replica ? "cloud" : "replica"));
    }
  }
  if (!have_at || !have_for || event.duration <= 0) {
    return InvalidArgumentError("fault schedule: event needs at=.. and a "
                                "positive for=..: '" + line + "'");
  }
  if (event.kind == FaultKind::kTransient) {
    if (!have_p || event.probability <= 0) {
      return InvalidArgumentError(
          "fault schedule: transient needs p=.. in (0,1]: '" + line + "'");
    }
  } else if (have_p) {
    return InvalidArgumentError(std::string("fault schedule: p= only applies "
                                            "to transient, not ") +
                                FaultKindName(event.kind));
  }
  if (event.kind == FaultKind::kLatency) {
    if (!have_add || event.extra_latency <= 0) {
      return InvalidArgumentError(
          "fault schedule: latency needs a positive add=..: '" + line + "'");
    }
  } else if (have_add) {
    return InvalidArgumentError(std::string("fault schedule: add= only "
                                            "applies to latency, not ") +
                                FaultKindName(event.kind));
  }
  return event;
}

Result<FaultSchedule> ParseFaultSchedule(const std::string& text) {
  FaultSchedule schedule;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) {
      line.pop_back();
    }
    size_t start = line.find_first_not_of(' ');
    if (start == std::string::npos) {
      continue;
    }
    line = line.substr(start);
    if (line.empty() || line[0] == '#') {
      continue;
    }
    ASSIGN_OR_RETURN(FaultEvent event, ParseFaultEvent(line));
    schedule.events.push_back(event);
  }
  return schedule;
}

Result<std::string> BuiltinCampaignText(const std::string& name) {
  for (const auto& builtin : kBuiltins) {
    if (name == builtin.name) {
      return std::string(builtin.text);
    }
  }
  std::string known;
  for (const auto& builtin : kBuiltins) {
    known += known.empty() ? "" : "|";
    known += builtin.name;
  }
  return InvalidArgumentError("unknown campaign '" + name + "' (expected " +
                              known + ")");
}

Result<FaultSchedule> BuiltinCampaign(const std::string& name) {
  ASSIGN_OR_RETURN(std::string text, BuiltinCampaignText(name));
  ASSIGN_OR_RETURN(FaultSchedule schedule, ParseFaultSchedule(text));
  schedule.name = name;
  return schedule;
}

}  // namespace scfs
