// Future<T>/Promise<T>: the completion primitive behind SCFS's asynchronous
// storage pipeline (ObjectStore::*Async, BlobBackend::*Async,
// StorageService::PushAsync, BackgroundUploader, fsapi CloseAsync).
//
// The design integrates with Environment's thread-charge accounting: a
// producer records, together with the value, the modelled virtual time it
// charged while computing it. A consumer that blocks in Get() is charged that
// amount — so a thread that fans out to N clouds and waits on the combined
// future is charged the *maximum* of the children (it waited for the slowest
// reply), never the sum. WhenAll and WhenQuorum implement exactly that
// max-of-children rule; WhenQuorum additionally completes as soon as a quorum
// of children satisfies a validity predicate, which is what lets DepSky
// return after the fastest n-f clouds instead of all n.
//
// Futures are shared-state handles (copyable); Get() may be called by
// multiple threads, each being charged for its own wait. OnReady callbacks
// run on the fulfilling thread (or inline when the value is already there)
// and are invoked in registration order, exactly once.

#ifndef SCFS_COMMON_FUTURE_H_
#define SCFS_COMMON_FUTURE_H_

#include <algorithm>
#include <cassert>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/sim/environment.h"
#include "src/sim/time.h"

namespace scfs {

template <typename T>
class Promise;

namespace internal {

template <typename T>
struct FutureState {
  std::mutex mu;
  std::condition_variable cv;
  std::optional<T> value;
  VirtualDuration charge = 0;
  std::vector<std::function<void(const T&, VirtualDuration)>> callbacks;
};

}  // namespace internal

template <typename T>
class Future {
 public:
  Future() = default;  // invalid until assigned from a Promise or Ready()

  bool valid() const { return state_ != nullptr; }

  bool ready() const {
    assert(valid());
    std::lock_guard<std::mutex> lock(state_->mu);
    return state_->value.has_value();
  }

  // Blocks until the value is available. Does not charge the caller.
  void Wait() const {
    assert(valid());
    std::unique_lock<std::mutex> lock(state_->mu);
    state_->cv.wait(lock, [this] { return state_->value.has_value(); });
  }

  // Blocks until the value is available, charges the calling thread the
  // producer's recorded charge (the modelled time the caller waited for),
  // and returns a copy of the value.
  T Get() const {
    assert(valid());
    std::unique_lock<std::mutex> lock(state_->mu);
    state_->cv.wait(lock, [this] { return state_->value.has_value(); });
    Environment::AddThreadCharge(state_->charge);
    return *state_->value;
  }

  // Blocks and charges like Get(), without copying the value out — for
  // waits whose results were already collected elsewhere (e.g. a quorum
  // predicate) and would otherwise be copied only to be discarded.
  void Join() const {
    assert(valid());
    std::unique_lock<std::mutex> lock(state_->mu);
    state_->cv.wait(lock, [this] { return state_->value.has_value(); });
    Environment::AddThreadCharge(state_->charge);
  }

  // The producer's recorded charge; only meaningful once ready.
  VirtualDuration charge() const {
    assert(valid());
    std::lock_guard<std::mutex> lock(state_->mu);
    return state_->charge;
  }

  // Registers `cb` to run once the value is available — immediately on this
  // thread if it already is, otherwise on the fulfilling thread. Callbacks
  // fire in registration order. The value reference is only valid for the
  // duration of the call.
  void OnReady(std::function<void(const T&, VirtualDuration)> cb) const {
    assert(valid());
    {
      std::lock_guard<std::mutex> lock(state_->mu);
      if (!state_->value.has_value()) {
        state_->callbacks.push_back(std::move(cb));
        return;
      }
    }
    cb(*state_->value, state_->charge);
  }

  // An already-completed future. `charge` defaults to zero: the usual
  // producer of a ready future is a synchronous adapter whose caller was
  // already charged inline by the blocking call.
  static Future<T> Ready(T value, VirtualDuration charge = 0) {
    Promise<T> promise;
    promise.Set(std::move(value), charge);
    return promise.future();
  }

 private:
  friend class Promise<T>;
  explicit Future(std::shared_ptr<internal::FutureState<T>> state)
      : state_(std::move(state)) {}

  std::shared_ptr<internal::FutureState<T>> state_;
};

template <typename T>
class Promise {
 public:
  Promise() : state_(std::make_shared<internal::FutureState<T>>()) {}

  Future<T> future() const { return Future<T>(state_); }

  // Fulfills the promise with `value`, recording the modelled time the
  // producer charged while computing it. May be called exactly once.
  void Set(T value, VirtualDuration charge = 0) const {
    std::vector<std::function<void(const T&, VirtualDuration)>> callbacks;
    {
      std::lock_guard<std::mutex> lock(state_->mu);
      assert(!state_->value.has_value() && "promise fulfilled twice");
      state_->value = std::move(value);
      state_->charge = charge;
      callbacks.swap(state_->callbacks);
      state_->cv.notify_all();
    }
    for (auto& cb : callbacks) {
      cb(*state_->value, state_->charge);
    }
  }

 private:
  std::shared_ptr<internal::FutureState<T>> state_;
};

// ---------------------------------------------------------------------------
// Combinators
// ---------------------------------------------------------------------------

// Completes when every child has completed. The combined charge is the
// maximum of the children's charges: parallel cloud accesses cost the caller
// the slowest branch, not the sum.
template <typename T>
Future<std::vector<T>> WhenAll(std::vector<Future<T>> children) {
  if (children.empty()) {
    return Future<std::vector<T>>::Ready({});
  }
  struct State {
    std::mutex mu;
    std::vector<std::optional<T>> results;
    size_t remaining = 0;
    VirtualDuration max_charge = 0;
    Promise<std::vector<T>> promise;
  };
  auto state = std::make_shared<State>();
  state->results.resize(children.size());
  state->remaining = children.size();
  for (size_t i = 0; i < children.size(); ++i) {
    children[i].OnReady([state, i](const T& value, VirtualDuration charge) {
      bool done = false;
      {
        std::lock_guard<std::mutex> lock(state->mu);
        state->results[i] = value;
        state->max_charge = std::max(state->max_charge, charge);
        done = (--state->remaining == 0);
      }
      if (done) {
        std::vector<T> values;
        values.reserve(state->results.size());
        for (auto& result : state->results) {
          values.push_back(std::move(*result));
        }
        state->promise.Set(std::move(values), state->max_charge);
      }
    });
  }
  return state->promise.future();
}

// Erases a future's value type, keeping completion and charge: lets a
// combinator output act as a dependency gate for APIs expecting a
// Future<Status> (e.g. chaining a pipeline stage after a WhenAll).
template <typename T>
Future<Status> AsCompletion(Future<T> future) {
  Promise<Status> promise;
  future.OnReady([promise](const T&, VirtualDuration charge) {
    promise.Set(OkStatus(), charge);
  });
  return promise.future();
}

// Result of WhenQuorum: the children completed by trigger time (index-aligned
// with the input vector; children still in flight are nullopt).
template <typename T>
struct QuorumResult {
  std::vector<std::optional<T>> results;
  unsigned satisfied = 0;      // children for which the predicate held
  bool quorum_reached = false;
};

// Completes as soon as `quorum` children satisfy `ok` (all completions count
// when `ok` is null), or when every child has completed — whichever happens
// first. The charge is the maximum among the children completed at trigger
// time (≈ the arrival of the quorum-closing reply), so a caller waiting on a
// 3-of-4 fan-out is charged the third-fastest cloud, not the slowest.
//
// The predicate runs under the combinator's lock (serialized, never after
// completion), so it may safely collect side effects into shared state.
// Children that complete after the trigger are ignored; their producers keep
// running and must not reference caller-owned storage.
template <typename T>
Future<QuorumResult<T>> WhenQuorum(
    std::vector<Future<T>> children, unsigned quorum,
    std::function<bool(size_t, const T&)> ok = nullptr) {
  QuorumResult<T> immediate;
  immediate.results.resize(children.size());
  if (children.empty() || quorum == 0) {
    immediate.quorum_reached = (quorum == 0);
    return Future<QuorumResult<T>>::Ready(std::move(immediate));
  }
  struct State {
    std::mutex mu;
    QuorumResult<T> result;
    size_t completed = 0;
    size_t total = 0;
    unsigned quorum = 0;
    VirtualDuration max_charge = 0;
    bool done = false;
    std::function<bool(size_t, const T&)> ok;
    Promise<QuorumResult<T>> promise;
  };
  auto state = std::make_shared<State>();
  state->result = std::move(immediate);
  state->total = children.size();
  state->quorum = quorum;
  state->ok = std::move(ok);
  for (size_t i = 0; i < children.size(); ++i) {
    children[i].OnReady([state, i](const T& value, VirtualDuration charge) {
      QuorumResult<T> snapshot;
      VirtualDuration combined_charge = 0;
      {
        std::lock_guard<std::mutex> lock(state->mu);
        if (state->done) {
          return;  // straggler past the trigger
        }
        state->result.results[i] = value;
        state->max_charge = std::max(state->max_charge, charge);
        ++state->completed;
        if (!state->ok || state->ok(i, value)) {
          ++state->result.satisfied;
        }
        if (state->result.satisfied < state->quorum &&
            state->completed < state->total) {
          return;
        }
        state->done = true;
        state->result.quorum_reached = state->result.satisfied >= state->quorum;
        snapshot = std::move(state->result);
        combined_charge = state->max_charge;
      }
      state->promise.Set(std::move(snapshot), combined_charge);
    });
  }
  return state->promise.future();
}

}  // namespace scfs

#endif  // SCFS_COMMON_FUTURE_H_
