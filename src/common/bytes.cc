#include "src/common/bytes.h"

#include <cstring>

namespace scfs {

Bytes CopyToBytes(ConstByteSpan span) {
  return Bytes(span.begin(), span.end());
}

Bytes ToBytes(std::string_view text) {
  return Bytes(text.begin(), text.end());
}

std::string ToString(ConstByteSpan bytes) {
  return std::string(bytes.begin(), bytes.end());
}

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";

int HexValue(char c) {
  if (c >= '0' && c <= '9') {
    return c - '0';
  }
  if (c >= 'a' && c <= 'f') {
    return c - 'a' + 10;
  }
  if (c >= 'A' && c <= 'F') {
    return c - 'A' + 10;
  }
  return -1;
}
}  // namespace

std::string HexEncode(const uint8_t* data, size_t size) {
  std::string out;
  out.reserve(size * 2);
  for (size_t i = 0; i < size; ++i) {
    out.push_back(kHexDigits[data[i] >> 4]);
    out.push_back(kHexDigits[data[i] & 0x0f]);
  }
  return out;
}

std::string HexEncode(ConstByteSpan bytes) {
  return HexEncode(bytes.data(), bytes.size());
}

Bytes HexDecode(std::string_view hex) {
  if (hex.size() % 2 != 0) {
    return {};
  }
  Bytes out;
  out.reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    int hi = HexValue(hex[i]);
    int lo = HexValue(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      return {};
    }
    out.push_back(static_cast<uint8_t>((hi << 4) | lo));
  }
  return out;
}

bool ConstantTimeEquals(ConstByteSpan a, ConstByteSpan b) {
  if (a.size() != b.size()) {
    return false;
  }
  uint8_t acc = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    acc |= static_cast<uint8_t>(a[i] ^ b[i]);
  }
  return acc == 0;
}

void AppendU32(Bytes* out, uint32_t v) {
  for (int shift = 24; shift >= 0; shift -= 8) {
    out->push_back(static_cast<uint8_t>(v >> shift));
  }
}

void AppendU64(Bytes* out, uint64_t v) {
  for (int shift = 56; shift >= 0; shift -= 8) {
    out->push_back(static_cast<uint8_t>(v >> shift));
  }
}

void AppendBytes(Bytes* out, ConstByteSpan data) {
  AppendU32(out, static_cast<uint32_t>(data.size()));
  out->insert(out->end(), data.begin(), data.end());
}

void AppendString(Bytes* out, std::string_view text) {
  AppendU32(out, static_cast<uint32_t>(text.size()));
  out->insert(out->end(), text.begin(), text.end());
}

bool ByteReader::ReadU8(uint8_t* v) {
  if (remaining() < 1) {
    return false;
  }
  *v = data_[pos_++];
  return true;
}

bool ByteReader::Skip(size_t n) {
  if (remaining() < n) {
    return false;
  }
  pos_ += n;
  return true;
}

bool ByteReader::ReadU32(uint32_t* v) {
  if (remaining() < 4) {
    return false;
  }
  uint32_t out = 0;
  for (int i = 0; i < 4; ++i) {
    out = (out << 8) | data_[pos_++];
  }
  *v = out;
  return true;
}

bool ByteReader::ReadU64(uint64_t* v) {
  if (remaining() < 8) {
    return false;
  }
  uint64_t out = 0;
  for (int i = 0; i < 8; ++i) {
    out = (out << 8) | data_[pos_++];
  }
  *v = out;
  return true;
}

bool ByteReader::ReadBytesSpan(ConstByteSpan* out) {
  uint32_t len = 0;
  if (!ReadU32(&len) || remaining() < len) {
    return false;
  }
  *out = data_.subspan(pos_, len);
  pos_ += len;
  return true;
}

bool ByteReader::ReadBytes(Bytes* out) {
  ConstByteSpan span;
  if (!ReadBytesSpan(&span)) {
    return false;
  }
  out->assign(span.begin(), span.end());
  return true;
}

bool ByteReader::ReadString(std::string* out) {
  ConstByteSpan span;
  if (!ReadBytesSpan(&span)) {
    return false;
  }
  out->assign(span.begin(), span.end());
  return true;
}

}  // namespace scfs
