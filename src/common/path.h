// Hierarchical path manipulation for the file-system namespace.
//
// Paths are absolute, '/'-separated, normalized ("/a/b"). The root is "/".

#ifndef SCFS_COMMON_PATH_H_
#define SCFS_COMMON_PATH_H_

#include <string>
#include <string_view>
#include <vector>

namespace scfs {

// Collapses duplicate separators and trailing slashes; resolves "." segments.
// ".." segments are rejected (returns empty string) — the VFS layer does not
// support relative traversal, mirroring FUSE which hands us resolved paths.
std::string NormalizePath(std::string_view path);

// "/a/b/c" -> "/a/b"; parent of "/" is "/".
std::string ParentPath(std::string_view path);

// "/a/b/c" -> "c"; basename of "/" is "".
std::string Basename(std::string_view path);

// Join("/a", "b") -> "/a/b".
std::string JoinPath(std::string_view dir, std::string_view name);

// Path components: "/a/b" -> {"a", "b"}. Root -> {}.
std::vector<std::string> SplitPath(std::string_view path);

// True if `path` equals `ancestor` or lives under it.
bool PathIsWithin(std::string_view path, std::string_view ancestor);

// True for normalized absolute paths.
bool IsValidPath(std::string_view path);

}  // namespace scfs

#endif  // SCFS_COMMON_PATH_H_
