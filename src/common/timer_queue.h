// VirtualTimerQueue: fires callbacks at virtual-clock deadlines from one
// shared background thread. This is what gives the DepSky data plane
// request deadlines and hedge timers without a watchdog thread per request —
// hundreds of in-flight cloud requests share a single sleeper.
//
// In an *instant* environment there is no driver that advances real time to
// a deadline (Sleep() just bumps a logical counter), so timers never fire:
// Schedule() is a no-op returning 0 and the behaviors built on timers
// (deadlines, hedged reads) are inert. Semantic tests that need them run on
// a scaled environment.

#ifndef SCFS_COMMON_TIMER_QUEUE_H_
#define SCFS_COMMON_TIMER_QUEUE_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <thread>
#include <utility>

#include "src/sim/environment.h"

namespace scfs {

class VirtualTimerQueue {
 public:
  explicit VirtualTimerQueue(Environment* env) : env_(env) {
    if (!env_->instant()) {
      thread_ = std::thread([this] { RunLoop(); });
    }
  }

  ~VirtualTimerQueue() { Shutdown(); }

  // Runs `fn` on the timer thread once the virtual clock reaches `when`.
  // Returns a cancellation id (0 in instant mode: the timer will never
  // fire and needs no cancellation).
  uint64_t Schedule(VirtualTime when, std::function<void()> fn) {
    if (env_->instant()) {
      return 0;
    }
    std::lock_guard<std::mutex> lock(mu_);
    uint64_t id = ++next_id_;
    timers_.emplace(std::make_pair(when, id), std::move(fn));
    cv_.notify_one();
    return id;
  }

  // True if the timer was removed before firing. Safe to call with an id
  // that already fired, was already cancelled, or is 0.
  bool Cancel(uint64_t id) {
    if (id == 0) {
      return false;
    }
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = timers_.begin(); it != timers_.end(); ++it) {
      if (it->first.second == id) {
        timers_.erase(it);
        return true;
      }
    }
    return false;
  }

  // Stops the thread; pending timers are dropped without firing.
  void Shutdown() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (shutdown_) {
        return;
      }
      shutdown_ = true;
      cv_.notify_one();
    }
    if (thread_.joinable()) {
      thread_.join();
    }
  }

 private:
  void RunLoop() {
    std::unique_lock<std::mutex> lock(mu_);
    while (!shutdown_) {
      if (timers_.empty()) {
        cv_.wait(lock);
        continue;
      }
      auto it = timers_.begin();
      VirtualTime due = it->first.first;
      if (env_->Now() < due) {
        cv_.wait_until(lock, env_->RealDeadline(due));
        continue;  // re-evaluate: earlier timer, cancel, or shutdown
      }
      std::function<void()> fn = std::move(it->second);
      timers_.erase(it);
      lock.unlock();
      fn();
      lock.lock();
    }
  }

  Environment* env_;
  std::mutex mu_;
  std::condition_variable cv_;
  // Key (deadline, id) keeps deterministic fire order for equal deadlines.
  std::map<std::pair<VirtualTime, uint64_t>, std::function<void()>> timers_;
  uint64_t next_id_ = 0;
  bool shutdown_ = false;
  std::thread thread_;
};

}  // namespace scfs

#endif  // SCFS_COMMON_TIMER_QUEUE_H_
