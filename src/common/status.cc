#include "src/common/status.h"

namespace scfs {

std::string_view ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk:
      return "OK";
    case ErrorCode::kNotFound:
      return "NOT_FOUND";
    case ErrorCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case ErrorCode::kPermissionDenied:
      return "PERMISSION_DENIED";
    case ErrorCode::kUnavailable:
      return "UNAVAILABLE";
    case ErrorCode::kTimeout:
      return "TIMEOUT";
    case ErrorCode::kConflict:
      return "CONFLICT";
    case ErrorCode::kCorruption:
      return "CORRUPTION";
    case ErrorCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case ErrorCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case ErrorCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case ErrorCode::kIsDirectory:
      return "IS_DIRECTORY";
    case ErrorCode::kNotDirectory:
      return "NOT_DIRECTORY";
    case ErrorCode::kNotEmpty:
      return "NOT_EMPTY";
    case ErrorCode::kBusy:
      return "BUSY";
    case ErrorCode::kNotSupported:
      return "NOT_SUPPORTED";
    case ErrorCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  std::string out(ErrorCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

Status NotFoundError(std::string message) {
  return Status(ErrorCode::kNotFound, std::move(message));
}
Status AlreadyExistsError(std::string message) {
  return Status(ErrorCode::kAlreadyExists, std::move(message));
}
Status PermissionDeniedError(std::string message) {
  return Status(ErrorCode::kPermissionDenied, std::move(message));
}
Status UnavailableError(std::string message) {
  return Status(ErrorCode::kUnavailable, std::move(message));
}
Status TimeoutError(std::string message) {
  return Status(ErrorCode::kTimeout, std::move(message));
}
Status ConflictError(std::string message) {
  return Status(ErrorCode::kConflict, std::move(message));
}
Status CorruptionError(std::string message) {
  return Status(ErrorCode::kCorruption, std::move(message));
}
Status InvalidArgumentError(std::string message) {
  return Status(ErrorCode::kInvalidArgument, std::move(message));
}
Status FailedPreconditionError(std::string message) {
  return Status(ErrorCode::kFailedPrecondition, std::move(message));
}
Status ResourceExhaustedError(std::string message) {
  return Status(ErrorCode::kResourceExhausted, std::move(message));
}
Status IsDirectoryError(std::string message) {
  return Status(ErrorCode::kIsDirectory, std::move(message));
}
Status NotDirectoryError(std::string message) {
  return Status(ErrorCode::kNotDirectory, std::move(message));
}
Status NotEmptyError(std::string message) {
  return Status(ErrorCode::kNotEmpty, std::move(message));
}
Status BusyError(std::string message) {
  return Status(ErrorCode::kBusy, std::move(message));
}
Status NotSupportedError(std::string message) {
  return Status(ErrorCode::kNotSupported, std::move(message));
}
Status InternalError(std::string message) {
  return Status(ErrorCode::kInternal, std::move(message));
}

}  // namespace scfs
