// Deterministic pseudo-random number generation (xoshiro256** seeded via
// SplitMix64). All randomness in the tree goes through this so tests and
// benchmarks are reproducible.

#ifndef SCFS_COMMON_RNG_H_
#define SCFS_COMMON_RNG_H_

#include <cstdint>
#include <mutex>

#include "src/common/bytes.h"

namespace scfs {

// Derives a decorrelated child seed from a (seed, stream) pair. Both words
// pass through a SplitMix64-style avalanche, so adjacent stream ids (0, 1,
// 2, ...) yield statistically independent generators — the per-client RNG
// streams of the scenario engine are Rng::ForStream(run_seed, client_id).
uint64_t MixSeed(uint64_t seed, uint64_t stream);

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5cf5cf5cf5ULL);

  // Stream `stream` of the generator family rooted at `seed`: deterministic
  // (the same pair always yields the same sequence) and independent across
  // stream ids under a fixed seed.
  static Rng ForStream(uint64_t seed, uint64_t stream) {
    return Rng(MixSeed(seed, stream));
  }

  uint64_t NextU64();
  // Uniform in [0, bound). bound must be > 0.
  uint64_t UniformU64(uint64_t bound);
  // Uniform in [lo, hi].
  int64_t UniformInt(int64_t lo, int64_t hi);
  // Uniform in [0, 1).
  double UniformDouble();
  // Bernoulli trial.
  bool Chance(double probability);
  Bytes RandomBytes(size_t size);
  // Lower-case alphanumeric string, e.g. for file names.
  std::string RandomName(size_t size);

 private:
  uint64_t state_[4];
};

// Process-wide mutex-protected RNG for code paths without a local Rng.
class SharedRng {
 public:
  explicit SharedRng(uint64_t seed) : rng_(seed) {}

  uint64_t NextU64();
  Bytes RandomBytes(size_t size);

 private:
  std::mutex mu_;
  Rng rng_;
};

SharedRng& GlobalRng();

}  // namespace scfs

#endif  // SCFS_COMMON_RNG_H_
