#include "src/common/path.h"

namespace scfs {

std::string NormalizePath(std::string_view path) {
  if (path.empty() || path[0] != '/') {
    return "";
  }
  std::vector<std::string> parts;
  size_t i = 0;
  while (i < path.size()) {
    while (i < path.size() && path[i] == '/') {
      ++i;
    }
    size_t start = i;
    while (i < path.size() && path[i] != '/') {
      ++i;
    }
    if (i == start) {
      break;
    }
    std::string_view seg = path.substr(start, i - start);
    if (seg == ".") {
      continue;
    }
    if (seg == "..") {
      return "";
    }
    parts.emplace_back(seg);
  }
  if (parts.empty()) {
    return "/";
  }
  std::string out;
  for (const auto& p : parts) {
    out += '/';
    out += p;
  }
  return out;
}

std::string ParentPath(std::string_view path) {
  if (path == "/" || path.empty()) {
    return "/";
  }
  size_t pos = path.rfind('/');
  if (pos == 0) {
    return "/";
  }
  return std::string(path.substr(0, pos));
}

std::string Basename(std::string_view path) {
  if (path == "/" || path.empty()) {
    return "";
  }
  size_t pos = path.rfind('/');
  return std::string(path.substr(pos + 1));
}

std::string JoinPath(std::string_view dir, std::string_view name) {
  std::string out(dir);
  if (out.empty() || out.back() != '/') {
    out += '/';
  }
  out += name;
  return out;
}

std::vector<std::string> SplitPath(std::string_view path) {
  std::vector<std::string> parts;
  size_t i = 0;
  while (i < path.size()) {
    while (i < path.size() && path[i] == '/') {
      ++i;
    }
    size_t start = i;
    while (i < path.size() && path[i] != '/') {
      ++i;
    }
    if (i > start) {
      parts.emplace_back(path.substr(start, i - start));
    }
  }
  return parts;
}

bool PathIsWithin(std::string_view path, std::string_view ancestor) {
  if (ancestor == "/") {
    return !path.empty() && path[0] == '/';
  }
  if (path == ancestor) {
    return true;
  }
  return path.size() > ancestor.size() &&
         path.substr(0, ancestor.size()) == ancestor &&
         path[ancestor.size()] == '/';
}

bool IsValidPath(std::string_view path) {
  return !path.empty() && NormalizePath(path) == path;
}

}  // namespace scfs
