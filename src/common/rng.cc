#include "src/common/rng.h"

#include <cassert>

namespace scfs {

namespace {
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

uint64_t MixSeed(uint64_t seed, uint64_t stream) {
  // Feed both words through the SplitMix64 finalizer, offsetting the stream
  // by an odd constant so (s, 0) never collapses onto plain `s`.
  uint64_t state = seed;
  uint64_t a = SplitMix64(&state);
  state = stream * 0x9e3779b97f4a7c15ULL + 0x2545f4914f6cdd1dULL;
  uint64_t b = SplitMix64(&state);
  state = a ^ b;
  return SplitMix64(&state);
}

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) {
    s = SplitMix64(&sm);
  }
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::UniformU64(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = NextU64();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  return lo + static_cast<int64_t>(
                  UniformU64(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::UniformDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

bool Rng::Chance(double probability) {
  if (probability <= 0.0) {
    return false;
  }
  if (probability >= 1.0) {
    return true;
  }
  return UniformDouble() < probability;
}

Bytes Rng::RandomBytes(size_t size) {
  Bytes out(size);
  size_t i = 0;
  while (i + 8 <= size) {
    uint64_t v = NextU64();
    for (int b = 0; b < 8; ++b) {
      out[i++] = static_cast<uint8_t>(v >> (b * 8));
    }
  }
  if (i < size) {
    uint64_t v = NextU64();
    while (i < size) {
      out[i++] = static_cast<uint8_t>(v);
      v >>= 8;
    }
  }
  return out;
}

std::string Rng::RandomName(size_t size) {
  static constexpr char kAlphabet[] = "abcdefghijklmnopqrstuvwxyz0123456789";
  std::string out;
  out.reserve(size);
  for (size_t i = 0; i < size; ++i) {
    out.push_back(kAlphabet[UniformU64(sizeof(kAlphabet) - 1)]);
  }
  return out;
}

uint64_t SharedRng::NextU64() {
  std::lock_guard<std::mutex> lock(mu_);
  return rng_.NextU64();
}

Bytes SharedRng::RandomBytes(size_t size) {
  std::lock_guard<std::mutex> lock(mu_);
  return rng_.RandomBytes(size);
}

SharedRng& GlobalRng() {
  static SharedRng* rng = new SharedRng(0x5cf5u);
  return *rng;
}

}  // namespace scfs
