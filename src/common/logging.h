// Minimal leveled logger. Off by default above WARNING so tests and benches
// stay quiet; examples turn INFO on.

#ifndef SCFS_COMMON_LOGGING_H_
#define SCFS_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace scfs {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Internal: emits one formatted line to stderr (thread-safe).
void LogLine(LogLevel level, const char* file, int line,
             const std::string& message);

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogMessage() {
    if (level_ >= GetLogLevel()) {
      LogLine(level_, file_, line_, stream_.str());
    }
  }

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace scfs

#define SCFS_LOG(level)                                                   \
  ::scfs::LogMessage(::scfs::LogLevel::k##level, __FILE__, __LINE__).stream()

#endif  // SCFS_COMMON_LOGGING_H_
