// Byte-buffer vocabulary type and hex/string conversions.

#ifndef SCFS_COMMON_BYTES_H_
#define SCFS_COMMON_BYTES_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace scfs {

using Bytes = std::vector<uint8_t>;

// UTF-8/string <-> bytes.
Bytes ToBytes(std::string_view text);
std::string ToString(const Bytes& bytes);

// Lower-case hex encoding ("deadbeef"). Decode returns empty on malformed
// input of odd length or non-hex characters.
std::string HexEncode(const Bytes& bytes);
std::string HexEncode(const uint8_t* data, size_t size);
Bytes HexDecode(std::string_view hex);

// Constant-time comparison (used for authenticator checks).
bool ConstantTimeEquals(const Bytes& a, const Bytes& b);

// Append helpers for hand-rolled serialization.
void AppendU32(Bytes* out, uint32_t v);
void AppendU64(Bytes* out, uint64_t v);
void AppendBytes(Bytes* out, const Bytes& data);
void AppendString(Bytes* out, std::string_view text);

// Cursor-based reader for the serialization above. Returns false on
// truncation instead of throwing.
class ByteReader {
 public:
  explicit ByteReader(const Bytes& data) : data_(data) {}

  bool ReadU8(uint8_t* v);
  bool ReadU32(uint32_t* v);
  bool ReadU64(uint64_t* v);
  bool ReadBytes(Bytes* out);     // length-prefixed
  bool ReadString(std::string* out);
  bool Skip(size_t n);
  bool AtEnd() const { return pos_ == data_.size(); }
  size_t remaining() const { return data_.size() - pos_; }

 private:
  const Bytes& data_;
  size_t pos_ = 0;
};

}  // namespace scfs

#endif  // SCFS_COMMON_BYTES_H_
