// Byte-buffer vocabulary types and hex/string conversions.
//
// `Bytes` is the owning buffer; `ConstByteSpan`/`ByteSpan` are the non-owning
// views the data plane passes between pipeline stages so each payload byte is
// touched once per stage instead of being re-materialized at every API
// boundary. Spans convert implicitly from `Bytes`, never the other way
// around: materializing a copy is an explicit `CopyToBytes` call, which keeps
// every allocation on the write/read path visible at the call site.

#ifndef SCFS_COMMON_BYTES_H_
#define SCFS_COMMON_BYTES_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace scfs {

using Bytes = std::vector<uint8_t>;

// Non-owning read-only view over contiguous bytes (std::span<const uint8_t>
// stand-in for C++17). The viewed storage must outlive the span.
class ConstByteSpan {
 public:
  static constexpr size_t npos = static_cast<size_t>(-1);

  constexpr ConstByteSpan() noexcept : data_(nullptr), size_(0) {}
  constexpr ConstByteSpan(const uint8_t* data, size_t size) noexcept
      : data_(data), size_(size) {}
  ConstByteSpan(const Bytes& bytes) noexcept  // NOLINT: implicit by design
      : data_(bytes.data()), size_(bytes.size()) {}

  constexpr const uint8_t* data() const noexcept { return data_; }
  constexpr size_t size() const noexcept { return size_; }
  constexpr bool empty() const noexcept { return size_ == 0; }
  constexpr const uint8_t* begin() const noexcept { return data_; }
  constexpr const uint8_t* end() const noexcept { return data_ + size_; }
  constexpr uint8_t operator[](size_t i) const { return data_[i]; }

  // View of [offset, offset+count); both clamped to the span's bounds.
  constexpr ConstByteSpan subspan(size_t offset, size_t count = npos) const {
    if (offset > size_) {
      offset = size_;
    }
    size_t rest = size_ - offset;
    return ConstByteSpan(data_ + offset, count < rest ? count : rest);
  }
  constexpr ConstByteSpan first(size_t count) const {
    return ConstByteSpan(data_, count < size_ ? count : size_);
  }

 private:
  const uint8_t* data_;
  size_t size_;
};

// Mutable counterpart; converts implicitly to ConstByteSpan.
class ByteSpan {
 public:
  static constexpr size_t npos = static_cast<size_t>(-1);

  constexpr ByteSpan() noexcept : data_(nullptr), size_(0) {}
  constexpr ByteSpan(uint8_t* data, size_t size) noexcept
      : data_(data), size_(size) {}
  ByteSpan(Bytes& bytes) noexcept  // NOLINT: implicit by design
      : data_(bytes.data()), size_(bytes.size()) {}

  constexpr operator ConstByteSpan() const noexcept {  // NOLINT
    return ConstByteSpan(data_, size_);
  }

  constexpr uint8_t* data() const noexcept { return data_; }
  constexpr size_t size() const noexcept { return size_; }
  constexpr bool empty() const noexcept { return size_ == 0; }
  constexpr uint8_t* begin() const noexcept { return data_; }
  constexpr uint8_t* end() const noexcept { return data_ + size_; }
  constexpr uint8_t& operator[](size_t i) const { return data_[i]; }

  constexpr ByteSpan subspan(size_t offset, size_t count = npos) const {
    if (offset > size_) {
      offset = size_;
    }
    size_t rest = size_ - offset;
    return ByteSpan(data_ + offset, count < rest ? count : rest);
  }
  constexpr ByteSpan first(size_t count) const {
    return ByteSpan(data_, count < size_ ? count : size_);
  }

 private:
  uint8_t* data_;
  size_t size_;
};

// The one sanctioned way to materialize an owning copy of a span.
Bytes CopyToBytes(ConstByteSpan span);

// UTF-8/string <-> bytes.
Bytes ToBytes(std::string_view text);
std::string ToString(ConstByteSpan bytes);

// Lower-case hex encoding ("deadbeef"). Decode returns empty on malformed
// input of odd length or non-hex characters.
std::string HexEncode(ConstByteSpan bytes);
std::string HexEncode(const uint8_t* data, size_t size);
Bytes HexDecode(std::string_view hex);

// Constant-time comparison (used for authenticator checks).
bool ConstantTimeEquals(ConstByteSpan a, ConstByteSpan b);

// Append helpers for hand-rolled serialization.
void AppendU32(Bytes* out, uint32_t v);
void AppendU64(Bytes* out, uint64_t v);
void AppendBytes(Bytes* out, ConstByteSpan data);
void AppendString(Bytes* out, std::string_view text);

// Cursor-based reader for the serialization above. Returns false on
// truncation instead of throwing. Views the input; the storage behind the
// span must outlive the reader.
class ByteReader {
 public:
  explicit ByteReader(ConstByteSpan data) : data_(data) {}

  bool ReadU8(uint8_t* v);
  bool ReadU32(uint32_t* v);
  bool ReadU64(uint64_t* v);
  bool ReadBytes(Bytes* out);          // length-prefixed, copies out
  bool ReadBytesSpan(ConstByteSpan* out);  // length-prefixed, zero-copy view
  bool ReadString(std::string* out);
  bool Skip(size_t n);
  bool AtEnd() const { return pos_ == data_.size(); }
  size_t remaining() const { return data_.size() - pos_; }

 private:
  ConstByteSpan data_;
  size_t pos_ = 0;
};

}  // namespace scfs

#endif  // SCFS_COMMON_BYTES_H_
