// Byte-budgeted LRU cache.
//
// SCFS uses two of these (paper §2.5.1): a main-memory cache of open files
// (hundreds of MB) and a disk cache (GBs). The cache tracks a byte budget,
// evicting least-recently-used entries when inserting would exceed it. An
// eviction callback lets the memory cache spill evicted files to disk.

#ifndef SCFS_COMMON_LRU_CACHE_H_
#define SCFS_COMMON_LRU_CACHE_H_

#include <cstddef>
#include <functional>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>

namespace scfs {

template <typename K, typename V>
class LruCache {
 public:
  using SizeFn = std::function<size_t(const V&)>;
  using EvictFn = std::function<void(const K&, V&&)>;

  // size_fn computes the charged size of a value; defaults to 1 per entry
  // (i.e. the budget is an entry count).
  explicit LruCache(size_t byte_budget, SizeFn size_fn = nullptr,
                    EvictFn evict_fn = nullptr)
      : budget_(byte_budget),
        size_fn_(std::move(size_fn)),
        evict_fn_(std::move(evict_fn)) {}

  // Inserts or replaces. Returns false if the value alone exceeds the budget
  // (the value is not cached; the caller still owns the problem).
  bool Put(const K& key, V value) {
    size_t size = SizeOf(value);
    Erase(key);
    if (size > budget_) {
      return false;
    }
    order_.push_front(key);
    map_.emplace(key, Entry{std::move(value), size, order_.begin()});
    used_ += size;
    EvictUntilFits();
    return true;
  }

  // Returns the value and marks it most recently used.
  std::optional<V> Get(const K& key) {
    auto it = map_.find(key);
    if (it == map_.end()) {
      return std::nullopt;
    }
    Touch(it);
    return it->second.value;
  }

  // Get without a copy; pointer invalidated by the next mutation.
  V* GetRef(const K& key) {
    auto it = map_.find(key);
    if (it == map_.end()) {
      return nullptr;
    }
    Touch(it);
    return &it->second.value;
  }

  bool Contains(const K& key) const { return map_.count(key) > 0; }

  // Removes without invoking the eviction callback (explicit removal is not
  // an eviction).
  bool Erase(const K& key) {
    auto it = map_.find(key);
    if (it == map_.end()) {
      return false;
    }
    used_ -= it->second.size;
    order_.erase(it->second.order_it);
    map_.erase(it);
    return true;
  }

  // Re-charges an entry whose value was mutated in place via GetRef.
  void Recharge(const K& key) {
    auto it = map_.find(key);
    if (it == map_.end()) {
      return;
    }
    used_ -= it->second.size;
    it->second.size = SizeOf(it->second.value);
    used_ += it->second.size;
    EvictUntilFits();
  }

  void Clear() {
    map_.clear();
    order_.clear();
    used_ = 0;
  }

  size_t size() const { return map_.size(); }
  size_t used_bytes() const { return used_; }
  size_t budget() const { return budget_; }

 private:
  struct Entry {
    V value;
    size_t size;
    typename std::list<K>::iterator order_it;
  };

  size_t SizeOf(const V& value) const {
    return size_fn_ ? size_fn_(value) : 1;
  }

  void Touch(typename std::unordered_map<K, Entry>::iterator it) {
    order_.erase(it->second.order_it);
    order_.push_front(it->first);
    it->second.order_it = order_.begin();
  }

  void EvictUntilFits() {
    while (used_ > budget_ && !order_.empty()) {
      const K& victim_key = order_.back();
      auto it = map_.find(victim_key);
      used_ -= it->second.size;
      V victim = std::move(it->second.value);
      K key_copy = victim_key;
      order_.pop_back();
      map_.erase(it);
      if (evict_fn_) {
        evict_fn_(key_copy, std::move(victim));
      }
    }
  }

  size_t budget_;
  size_t used_ = 0;
  SizeFn size_fn_;
  EvictFn evict_fn_;
  std::list<K> order_;  // front = most recent
  std::unordered_map<K, Entry> map_;
};

}  // namespace scfs

#endif  // SCFS_COMMON_LRU_CACHE_H_
