#include "src/common/executor.h"

namespace scfs {

AsyncExecutor::~AsyncExecutor() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
    cv_.notify_all();
  }
  for (auto& worker : workers_) {
    if (worker.joinable()) {
      worker.join();
    }
  }
}

void AsyncExecutor::Post(std::function<void()> task) {
  std::lock_guard<std::mutex> lock(mu_);
  queue_.push_back(std::move(task));
  if (queue_.size() > idle_ && !shutdown_) {
    // More queued tasks than parked workers: grow the pool so a blocked task
    // can never starve the tasks it waits on. (idle_ only drops once a woken
    // worker re-acquires the lock, so this over- rather than under-spawns.)
    workers_.emplace_back([this] { WorkerLoop(); });
  } else {
    cv_.notify_one();
  }
}

size_t AsyncExecutor::thread_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return workers_.size();
}

void AsyncExecutor::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      ++idle_;
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      --idle_;
      if (queue_.empty()) {
        return;  // shutdown with a drained queue
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

AsyncExecutor& DefaultExecutor() {
  static AsyncExecutor executor;
  return executor;
}

}  // namespace scfs
