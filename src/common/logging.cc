#include "src/common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstring>
#include <mutex>

namespace scfs {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarning};
std::mutex g_log_mu;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

const char* BaseName(const char* file) {
  const char* slash = std::strrchr(file, '/');
  return slash ? slash + 1 : file;
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }
LogLevel GetLogLevel() { return g_level.load(); }

void LogLine(LogLevel level, const char* file, int line,
             const std::string& message) {
  std::lock_guard<std::mutex> lock(g_log_mu);
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), BaseName(file),
               line, message.c_str());
}

}  // namespace scfs
