// Status and Result<T>: error-handling vocabulary used across the whole tree.
//
// Every fallible operation in SCFS returns either a Status (no payload) or a
// Result<T> (payload or error). Error codes mirror the failure classes that a
// cloud-backed file system actually meets: not-found, permission, conflict,
// unavailability, corruption, timeouts.

#ifndef SCFS_COMMON_STATUS_H_
#define SCFS_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace scfs {

enum class ErrorCode {
  kOk = 0,
  kNotFound,
  kAlreadyExists,
  kPermissionDenied,
  kUnavailable,       // service/provider temporarily unreachable
  kTimeout,
  kConflict,          // lost a compare-and-swap / lock race
  kCorruption,        // integrity check (hash/authenticator) failed
  kInvalidArgument,
  kFailedPrecondition,
  kResourceExhausted,
  kIsDirectory,
  kNotDirectory,
  kNotEmpty,
  kBusy,              // file locked by another client
  kNotSupported,
  kInternal,
};

// Human-readable name of an error code ("NOT_FOUND", ...).
std::string_view ErrorCodeName(ErrorCode code);

class Status {
 public:
  Status() : code_(ErrorCode::kOk) {}
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == ErrorCode::kOk; }
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const;

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  ErrorCode code_;
  std::string message_;
};

inline Status OkStatus() { return Status::Ok(); }

// Convenience constructors, mirroring absl-style factories.
Status NotFoundError(std::string message);
Status AlreadyExistsError(std::string message);
Status PermissionDeniedError(std::string message);
Status UnavailableError(std::string message);
Status TimeoutError(std::string message);
Status ConflictError(std::string message);
Status CorruptionError(std::string message);
Status InvalidArgumentError(std::string message);
Status FailedPreconditionError(std::string message);
Status ResourceExhaustedError(std::string message);
Status IsDirectoryError(std::string message);
Status NotDirectoryError(std::string message);
Status NotEmptyError(std::string message);
Status BusyError(std::string message);
Status NotSupportedError(std::string message);
Status InternalError(std::string message);

// Result<T>: either a value or a non-OK Status.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ present
};

}  // namespace scfs

// Propagation helpers. SCFS_CONCAT is needed to build unique temp names.
#define SCFS_CONCAT_INNER(a, b) a##b
#define SCFS_CONCAT(a, b) SCFS_CONCAT_INNER(a, b)

#define RETURN_IF_ERROR(expr)                  \
  do {                                         \
    ::scfs::Status scfs_status_ = (expr);      \
    if (!scfs_status_.ok()) {                  \
      return scfs_status_;                     \
    }                                          \
  } while (0)

#define ASSIGN_OR_RETURN(lhs, expr)                          \
  auto SCFS_CONCAT(scfs_result_, __LINE__) = (expr);         \
  if (!SCFS_CONCAT(scfs_result_, __LINE__).ok()) {           \
    return SCFS_CONCAT(scfs_result_, __LINE__).status();     \
  }                                                          \
  lhs = std::move(SCFS_CONCAT(scfs_result_, __LINE__)).value()

#endif  // SCFS_COMMON_STATUS_H_
