// BackoffPolicy: capped exponential backoff with decorrelating jitter, on
// the virtual clock. Shared by the StorageService consistency-anchor read
// loop and the DepSky per-cloud retry path; deterministic given the caller's
// RNG, so retry timing replays bit-identically under a seeded campaign.

#ifndef SCFS_COMMON_BACKOFF_H_
#define SCFS_COMMON_BACKOFF_H_

#include <cstdint>

#include "src/common/rng.h"
#include "src/sim/time.h"

namespace scfs {

struct BackoffPolicy {
  VirtualDuration initial = FromMillis(25);
  VirtualDuration max = FromMillis(2000);
  double multiplier = 2.0;
  // Fraction of the exponential delay randomized away: the actual delay is
  // drawn uniformly from [d * (1 - jitter), d]. 0 = fully deterministic.
  double jitter = 0.5;

  static BackoffPolicy Fixed(VirtualDuration d) {
    return BackoffPolicy{d, d, 1.0, 0.0};
  }

  // Delay before retry number `attempt` (0-based: the delay after the first
  // failure is Delay(0, ...) ~ initial).
  VirtualDuration Delay(int attempt, Rng& rng) const {
    double d = static_cast<double>(initial);
    for (int i = 0; i < attempt && d < static_cast<double>(max); ++i) {
      d *= multiplier;
    }
    if (d > static_cast<double>(max)) {
      d = static_cast<double>(max);
    }
    VirtualDuration full = static_cast<VirtualDuration>(d);
    if (jitter <= 0 || full <= 0) {
      return full;
    }
    uint64_t spread = static_cast<uint64_t>(static_cast<double>(full) * jitter);
    if (spread == 0) {
      return full;
    }
    return full - static_cast<VirtualDuration>(rng.UniformU64(spread + 1));
  }
};

}  // namespace scfs

#endif  // SCFS_COMMON_BACKOFF_H_
