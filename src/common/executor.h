// AsyncExecutor: the thread supply behind the asynchronous storage pipeline.
//
// Tasks are queued and run on a pool of reusable workers. The pool grows on
// demand: whenever a task is posted and no worker is idle, a new worker is
// spawned. That rule makes the executor deadlock-free under nesting — a task
// that blocks on futures produced by other queued tasks (a DepSky write
// running inside a background upload fans out shard PUTs to the same
// executor) can never starve them, at the cost of the thread count tracking
// the high-water mark of concurrency (fine for a simulation; idle workers
// park and are reused).
//
// Submit() wraps the task with Environment thread-charge bookkeeping: the
// task's modelled charge is recorded on the returned future, so a waiter is
// charged for exactly the modelled time it waited on (see future.h).

#ifndef SCFS_COMMON_EXECUTOR_H_
#define SCFS_COMMON_EXECUTOR_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "src/common/future.h"
#include "src/sim/environment.h"

namespace scfs {

class AsyncExecutor {
 public:
  AsyncExecutor() = default;
  ~AsyncExecutor();

  AsyncExecutor(const AsyncExecutor&) = delete;
  AsyncExecutor& operator=(const AsyncExecutor&) = delete;

  // Queues a raw task. The caller handles its own completion signalling.
  void Post(std::function<void()> task);

  // Queues `fn` and returns a future for its result. The future's charge is
  // the modelled virtual time the task charged while running.
  template <typename Fn>
  auto Submit(Fn fn) -> Future<std::invoke_result_t<Fn>> {
    using T = std::invoke_result_t<Fn>;
    Promise<T> promise;
    Post([promise, fn = std::move(fn)]() mutable {
      Environment::ResetThreadCharged();
      T value = fn();
      promise.Set(std::move(value), Environment::ThreadCharged());
    });
    return promise.future();
  }

  // Workers ever spawned (high-water mark of concurrency); for tests.
  size_t thread_count() const;

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  size_t idle_ = 0;
  bool shutdown_ = false;
};

// The process-wide executor shared by SimulatedCloud's async overrides, the
// blob backends' async adapters and the BackgroundUploader pipeline.
AsyncExecutor& DefaultExecutor();

// Counts the asynchronous requests a component has in flight, so its
// destructor can wait for stragglers (a quorum fan-out returns to the caller
// while the slowest requests are still running). Destroying the tracker
// waits for the count to reach zero.
class InFlightTracker {
 public:
  ~InFlightTracker() { AwaitIdle(); }

  void Add() {
    std::lock_guard<std::mutex> lock(mu_);
    ++count_;
  }
  void Done() {
    std::lock_guard<std::mutex> lock(mu_);
    --count_;
    cv_.notify_all();
  }
  void AwaitIdle() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return count_ == 0; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  size_t count_ = 0;
};

// Dispatches `fn` on the default executor, holding `tracker`'s count for the
// task's duration. The tracker must outlive the task (its owner's destructor
// waits on it before releasing anything the task touches). The count is
// released only after the result future is fulfilled, so AwaitIdle()
// returning implies every value is published and every OnReady continuation
// (which may itself re-enter a tracker) has already run.
template <typename Fn>
auto SubmitTracked(InFlightTracker* tracker, Fn fn)
    -> Future<std::invoke_result_t<Fn>> {
  using T = std::invoke_result_t<Fn>;
  tracker->Add();
  Promise<T> promise;
  DefaultExecutor().Post([tracker, promise, fn = std::move(fn)]() mutable {
    Environment::ResetThreadCharged();
    T value = fn();
    promise.Set(std::move(value), Environment::ThreadCharged());
    tracker->Done();
  });
  return promise.future();
}

}  // namespace scfs

#endif  // SCFS_COMMON_EXECUTOR_H_
