#include "src/coord/smr.h"

#include <algorithm>
#include <cassert>

#include "src/common/logging.h"

namespace scfs {

namespace {

SmrViewChangeCert CertFromProposal(uint64_t seq, const SmrMessage& msg) {
  SmrViewChangeCert cert;
  cert.seq = seq;
  cert.view = msg.view;
  cert.order_time = msg.order_time;
  cert.batch = msg.batch;
  return cert;
}

// A below-frontier catch-up proposal retires once every replica re-accepted
// it, or after this many re-sends with an order-quorum of re-accepts — a
// live laggard has received one of them (delivery is reliable; only the
// transient view race drops proposals), while a crashed replica must not
// keep the entry re-broadcasting forever.
constexpr int kCatchUpResendLimit = 8;

}  // namespace

SmrCluster::SmrCluster(Environment* env, SmrConfig config, uint64_t seed)
    : env_(env), config_(config), client_rng_(seed ^ 0xc11e47ULL) {
  const unsigned n = config_.replica_count();
  replicas_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    auto replica = std::make_unique<Replica>(env_);
    replica->rng = Rng(seed + i * 1299721ULL);
    replicas_.push_back(std::move(replica));
  }
  for (unsigned i = 0; i < n; ++i) {
    replicas_[i]->thread = std::thread([this, i] { ReplicaLoop(i); });
  }
}

SmrCluster::~SmrCluster() { Shutdown(); }

void SmrCluster::Shutdown() {
  if (shutdown_.exchange(true)) {
    return;
  }
  for (auto& replica : replicas_) {
    replica->inbox.Close();
  }
  for (auto& replica : replicas_) {
    if (replica->thread.joinable()) {
      replica->thread.join();
    }
  }
  std::lock_guard<std::mutex> lock(clients_mu_);
  for (auto& [id, queue] : client_queues_) {
    queue->Close();
  }
}

void SmrCluster::CrashReplica(unsigned index) {
  replicas_[index]->crashed.store(true);
}

void SmrCluster::SetReplicaByzantine(unsigned index, bool byzantine) {
  replicas_[index]->byzantine.store(byzantine);
}

uint64_t SmrCluster::current_view() const {
  uint64_t view = 0;
  for (const auto& replica : replicas_) {
    std::lock_guard<std::mutex> lock(replica->mu);
    view = std::max(view, replica->view);
  }
  return view;
}

uint64_t SmrCluster::executed_count(unsigned replica) const {
  std::lock_guard<std::mutex> lock(replicas_[replica]->mu);
  return replicas_[replica]->executed_ops;
}

SmrCounters SmrCluster::counters() const {
  SmrCounters out;
  out.ordered_commands = ordered_commands_.load(std::memory_order_relaxed);
  out.proposed_instances = proposed_instances_.load(std::memory_order_relaxed);
  out.proposed_requests = proposed_requests_.load(std::memory_order_relaxed);
  out.fast_path_reads = fast_path_reads_.load(std::memory_order_relaxed);
  out.fast_path_fallbacks =
      fast_path_fallbacks_.load(std::memory_order_relaxed);
  return out;
}

void SmrCluster::SendToReplica(unsigned from_replica, unsigned to,
                               SmrMessage msg) {
  VirtualDuration delay = 0;
  if (from_replica != to) {
    std::lock_guard<std::mutex> lock(replicas_[from_replica]->mu);
    delay = config_.replica_link.Sample(replicas_[from_replica]->rng,
                                        msg.ByteSize());
  }
  replicas_[to]->inbox.Push(std::move(msg), env_->Now() + delay);
}

void SmrCluster::BroadcastFromReplica(unsigned from, const SmrMessage& msg) {
  for (unsigned i = 0; i < replicas_.size(); ++i) {
    SendToReplica(from, i, msg);
  }
}

void SmrCluster::SendReplyToClient(unsigned from_replica,
                                   const SmrMessage& reply) {
  std::shared_ptr<DelayedQueue<SmrMessage>> queue;
  {
    std::lock_guard<std::mutex> lock(clients_mu_);
    auto it = client_queues_.find(reply.request_id);
    if (it == client_queues_.end()) {
      return;  // client already satisfied and gone
    }
    queue = it->second;
  }
  const LatencyModel& link = ClientLink(from_replica);
  VirtualDuration delay;
  {
    std::lock_guard<std::mutex> lock(replicas_[from_replica]->mu);
    delay = link.Sample(replicas_[from_replica]->rng, reply.payload.size());
  }
  reply_bytes_out_.fetch_add(reply.payload.size(), std::memory_order_relaxed);
  queue->Push(reply, env_->Now() + delay);
}

std::optional<Bytes> SmrCluster::TryFastRead(const Bytes& encoded_command) {
  const uint64_t request_id = next_request_id_.fetch_add(1);
  auto queue = std::make_shared<DelayedQueue<SmrMessage>>(env_);
  {
    std::lock_guard<std::mutex> lock(clients_mu_);
    client_queues_[request_id] = queue;
  }
  auto cleanup = [&] {
    std::lock_guard<std::mutex> lock(clients_mu_);
    client_queues_.erase(request_id);
  };

  SmrMessage request;
  request.type = SmrMessage::Type::kReadRequest;
  request.from = -1;
  request.request_id = request_id;
  request.payload = encoded_command;
  for (unsigned i = 0; i < replicas_.size(); ++i) {
    VirtualDuration delay;
    {
      std::lock_guard<std::mutex> lock(rng_mu_);
      delay = ClientLink(i).Sample(client_rng_, request.payload.size());
    }
    replicas_[i]->inbox.Push(request, env_->Now() + delay);
  }

  const VirtualTime deadline = env_->Now() + config_.fast_read_timeout;
  std::map<int, Bytes> replies;  // replica -> reply payload
  for (;;) {
    VirtualTime now = env_->Now();
    if (now >= deadline) {
      break;  // timeout: a replica is slow or gone
    }
    auto msg = queue->PopFor(deadline - now);
    if (shutdown_.load()) {
      break;
    }
    if (!msg.has_value()) {
      break;  // timeout or closed
    }
    if (msg->type != SmrMessage::Type::kReply ||
        msg->request_id != request_id) {
      continue;
    }
    replies[msg->from] = msg->payload;
    unsigned votes = 0;
    for (const auto& [from, payload] : replies) {
      if (payload == msg->payload) {
        ++votes;
      }
    }
    if (votes >= config_.read_quorum()) {
      cleanup();
      queue->Close();
      // Charge the modelled round latency: request one-way + reply one-way
      // (the wait itself happens on the reply queue, outside Sleep).
      {
        std::lock_guard<std::mutex> lock(rng_mu_);
        const LatencyModel& link = ClientLink(0);
        Environment::AddThreadCharge(
            link.Sample(client_rng_, request.payload.size()) +
            link.Sample(client_rng_, msg->payload.size()));
      }
      fast_path_reads_.fetch_add(1, std::memory_order_relaxed);
      return msg->payload;
    }
    if (replies.size() >= replicas_.size()) {
      break;  // every replica replied and no quorum matches: divergence
    }
  }
  cleanup();
  queue->Close();
  // The failed round is not free: before falling back the caller waited for
  // the divergence to become evident (a full round trip to the slowest
  // replier), and the ordered round's charge comes on top. Charged as one
  // modelled request+reply round rather than the timeout value: at
  // aggressive bench time scales the virtual timeout also fires from real
  // scheduling noise, and charges must stay deterministic modelled costs
  // (see Environment::ThreadCharged), never host-scheduling artifacts.
  {
    std::lock_guard<std::mutex> lock(rng_mu_);
    const LatencyModel& link = ClientLink(0);
    Environment::AddThreadCharge(
        link.Sample(client_rng_, encoded_command.size()) +
        link.Sample(client_rng_, 64));
  }
  return std::nullopt;
}

Result<CoordReply> SmrCluster::Execute(const CoordCommand& command) {
  if (shutdown_.load()) {
    return UnavailableError("smr cluster shut down");
  }
  Bytes encoded = command.Encode();
  if (config_.enable_read_fast_path && command.is_read_only()) {
    auto fast = TryFastRead(encoded);
    if (shutdown_.load()) {
      return UnavailableError("smr cluster shut down");
    }
    if (fast.has_value()) {
      return CoordReply::Decode(*fast);
    }
    fast_path_fallbacks_.fetch_add(1, std::memory_order_relaxed);
  }

  const uint64_t request_id = next_request_id_.fetch_add(1);
  auto queue = std::make_shared<DelayedQueue<SmrMessage>>(env_);
  {
    std::lock_guard<std::mutex> lock(clients_mu_);
    client_queues_[request_id] = queue;
  }

  SmrMessage request;
  request.type = SmrMessage::Type::kRequest;
  request.from = -1;
  request.request_id = request_id;
  request.payload = std::move(encoded);

  auto broadcast_request = [&] {
    for (unsigned i = 0; i < replicas_.size(); ++i) {
      VirtualDuration delay;
      {
        std::lock_guard<std::mutex> lock(rng_mu_);
        delay = ClientLink(i).Sample(client_rng_, request.payload.size());
      }
      replicas_[i]->inbox.Push(request, env_->Now() + delay);
    }
  };
  broadcast_request();

  // With the read fast path enabled, a mutating command is acknowledged
  // only once an order-quorum of replicas replies with matching results —
  // the executed set of every acked write then intersects any fast-read
  // matching quorum in at least one correct replica, which is what makes
  // the fast path linearizable. Ordered *reads* (fast-path fallbacks, or
  // reads with the fast path disabled) keep the cheap reply quorum: they
  // create no state a later fast read must observe, and f+1 matching
  // replies already vouch for the linearized result.
  const unsigned needed_matching =
      (config_.enable_read_fast_path && !command.is_read_only())
          ? config_.order_quorum()
          : config_.reply_quorum();
  std::map<int, Bytes> replies;  // replica -> reply payload
  int retries = 0;
  for (;;) {
    auto msg = queue->PopFor(config_.client_timeout);
    if (shutdown_.load()) {
      return UnavailableError("smr cluster shut down");
    }
    if (!msg.has_value()) {
      if (++retries > config_.max_client_retries) {
        std::lock_guard<std::mutex> lock(clients_mu_);
        client_queues_.erase(request_id);
        return UnavailableError("coordination service not responding");
      }
      broadcast_request();
      continue;
    }
    if (msg->type != SmrMessage::Type::kReply ||
        msg->request_id != request_id) {
      continue;
    }
    replies[msg->from] = msg->payload;
    unsigned votes = 0;
    for (const auto& [from, payload] : replies) {
      if (payload == msg->payload) {
        ++votes;
      }
    }
    if (votes >= needed_matching) {
      {
        std::lock_guard<std::mutex> lock(clients_mu_);
        client_queues_.erase(request_id);
      }
      queue->Close();
      // Charge the modelled protocol latency of one coordination access:
      // request one-way + leader ordering (2 inter-replica one-ways) + reply
      // one-way. (The client's actual wait happens on the reply queue,
      // outside Environment::Sleep, so it is not charged automatically.)
      {
        std::lock_guard<std::mutex> lock(rng_mu_);
        const LatencyModel& link = ClientLink(0);
        VirtualDuration modeled =
            link.Sample(client_rng_, request.payload.size()) +
            config_.replica_link.Sample(client_rng_, request.payload.size()) +
            config_.replica_link.Sample(client_rng_, 64) +
            link.Sample(client_rng_, msg->payload.size());
        Environment::AddThreadCharge(modeled);
      }
      ordered_commands_.fetch_add(1, std::memory_order_relaxed);
      return CoordReply::Decode(msg->payload);
    }
  }
}

void SmrCluster::ReplicaLoop(unsigned index) {
  Replica& r = *replicas_[index];
  for (;;) {
    auto msg = r.inbox.PopFor(config_.order_timeout);
    if (shutdown_.load()) {
      return;
    }
    if (r.inbox.closed() && !msg.has_value()) {
      return;
    }
    if (r.crashed.load()) {
      continue;  // crashed replicas consume and drop everything
    }
    if (msg.has_value()) {
      HandleMessage(index, r, std::move(*msg));
      // Drain everything already deliverable before consulting the failure
      // detector: a replica that was briefly descheduled must not vote for a
      // view change while the leader's proposal sits in its inbox.
      while (auto more = r.inbox.TryPop()) {
        if (r.crashed.load()) {
          break;
        }
        HandleMessage(index, r, std::move(*more));
      }
    }
    CheckOrderingTimeout(index, r);
  }
}

SmrMessage SmrCluster::MakeReply(unsigned index, const Replica& r,
                                 uint64_t request_id, Bytes reply_bytes) const {
  SmrMessage reply;
  reply.type = SmrMessage::Type::kReply;
  reply.from = static_cast<int>(index);
  reply.request_id = request_id;
  reply.payload = std::move(reply_bytes);
  if (r.byzantine.load() && !reply.payload.empty()) {
    reply.payload[0] ^= 0xff;  // byzantine replica lies to clients
  }
  return reply;
}

void SmrCluster::HandleMessage(unsigned index, Replica& r, SmrMessage msg) {
  std::vector<SmrMessage> to_broadcast;
  std::vector<SmrMessage> to_client;
  {
    std::lock_guard<std::mutex> lock(r.mu);
    switch (msg.type) {
      case SmrMessage::Type::kRequest: {
        auto command = CoordCommand::Decode(msg.payload);
        // Retransmission of an executed request: resend the cached reply
        // from the per-client table (undecodable payloads execute under the
        // empty client).
        const std::string client =
            command.ok() ? command->client : std::string();
        auto client_it = r.client_replies.find(client);
        if (client_it != r.client_replies.end()) {
          auto reply_it = client_it->second.find(msg.request_id);
          if (reply_it != client_it->second.end()) {
            to_client.push_back(
                MakeReply(index, r, msg.request_id, reply_it->second));
            break;
          }
        }
        r.pending.emplace(
            msg.request_id,
            PendingRequest{msg.payload, client, env_->Now(), false});
        LeaderMaybePropose(index, r, &to_broadcast);
        break;
      }
      case SmrMessage::Type::kReadRequest: {
        // Read-only fast path: evaluate against the committed state, no
        // ordering, no side effects. Never touches pending/proposals.
        auto command = CoordCommand::Decode(msg.payload);
        if (!command.ok() || !command->is_read_only()) {
          break;
        }
        CoordReply reply = r.space.Query(*command);
        to_client.push_back(
            MakeReply(index, r, msg.request_id, reply.Encode()));
        break;
      }
      case SmrMessage::Type::kPropose: {
        if (msg.view != r.view ||
            msg.from != static_cast<int>(msg.view % replica_count())) {
          break;  // stale view or impostor leader
        }
        if (msg.seq < r.next_exec_seq) {
          // Below the execution frontier (a same-view re-propose raced us,
          // or a lagging new leader re-orders an already-executed seq). Vote
          // accept only when the proposal matches the batch this replica
          // executed at that seq — the vote helps slower replicas commit the
          // same order — and abstain on a conflict: endorsing a different
          // batch at an executed seq would help commit a divergent order.
          auto seq_it = r.executed_seqs.find(msg.seq);
          bool matches = seq_it != r.executed_seqs.end() &&
                         seq_it->second.size() == msg.batch.size();
          if (matches) {
            for (size_t i = 0; i < msg.batch.size(); ++i) {
              if (seq_it->second[i] != msg.batch[i].request_id) {
                matches = false;
                break;
              }
            }
          }
          if (matches) {
            SmrMessage accept;
            accept.type = SmrMessage::Type::kAccept;
            accept.from = static_cast<int>(index);
            accept.view = msg.view;
            accept.seq = msg.seq;
            to_broadcast.push_back(std::move(accept));
          }
          break;
        }
        // Store, or replace a proposal retained from an older view: the
        // current view's leader is authoritative for the seq, and an honest
        // leader adopting certificates never re-assigns a committed seq
        // (any vote quorum intersects the commit quorum in a replica that
        // still holds — or has executed — the committed batch).
        auto stored_it = r.proposals.find(msg.seq);
        if (stored_it == r.proposals.end()) {
          r.proposals.emplace(msg.seq, Replica::Proposal{msg, env_->Now()});
        } else if (stored_it->second.msg.view < msg.view) {
          stored_it->second = Replica::Proposal{msg, env_->Now()};
        }
        for (const auto& entry : msg.batch) {
          auto pending_it = r.pending.find(entry.request_id);
          if (pending_it != r.pending.end()) {
            pending_it->second.ordered = true;
          }
        }
        SmrMessage accept;
        accept.type = SmrMessage::Type::kAccept;
        accept.from = static_cast<int>(index);
        accept.view = msg.view;
        accept.seq = msg.seq;
        to_broadcast.push_back(std::move(accept));
        TryExecute(index, r, &to_client);
        LeaderMaybePropose(index, r, &to_broadcast);
        break;
      }
      case SmrMessage::Type::kAccept: {
        if (msg.view != r.view) {
          break;  // stale view
        }
        if (msg.seq < r.next_exec_seq) {
          // Already executed here. If this replica is the leader re-sending
          // a below-frontier catch-up proposal, count the (re-)accepts and
          // retire the entry once EVERY replica has re-accepted — an
          // order-quorum arrives instantly from the replicas that executed
          // it long ago, which says nothing about the laggard the catch-up
          // exists for. (With a permanently crashed replica full coverage
          // never arrives; the re-send loop retires the entry after
          // kCatchUpResendLimit paced re-sends instead.)
          auto catch_up = r.proposals.find(msg.seq);
          if (catch_up != r.proposals.end()) {
            auto& votes = r.accept_votes[msg.seq];
            votes.insert(msg.from);
            if (votes.size() >= replica_count()) {
              r.proposals.erase(catch_up);
              r.accept_votes.erase(msg.seq);
            }
          }
          break;
        }
        r.accept_votes[msg.seq].insert(msg.from);
        TryExecute(index, r, &to_client);
        // Committed instances free pipeline slots: batch up the backlog.
        LeaderMaybePropose(index, r, &to_broadcast);
        break;
      }
      case SmrMessage::Type::kViewChange: {
        if (msg.view <= r.view) {
          break;
        }
        r.view_votes[msg.view][msg.from] = std::move(msg.certs);
        if (r.view_votes[msg.view].size() >= config_.order_quorum()) {
          AdoptView(index, r, msg.view, &to_broadcast);
        }
        break;
      }
      case SmrMessage::Type::kReply:
        break;  // replicas never receive replies
    }
  }
  for (const auto& out : to_broadcast) {
    BroadcastFromReplica(index, out);
  }
  for (const auto& out : to_client) {
    SendReplyToClient(index, out);
  }
}

// Installs `view`, and — when this replica is its leader — adopts the
// highest-view accepted proposal per seq from the vote quorum's certificates
// (plus its own log) before re-proposing, so in-flight batches survive the
// view change without reordering. Caller holds r.mu.
void SmrCluster::AdoptView(unsigned index, Replica& r, uint64_t view,
                           std::vector<SmrMessage>* out) {
  // Merge certificates: the votes' accepted proposals and executed batches,
  // plus this replica's own log (the new leader may never have voted
  // itself). Certificates below this replica's own frontier are kept: the
  // leader has executed them, but a lagging voter may not have —
  // re-proposing them is the catch-up path for a replica that missed a
  // committed seq. Because accepted proposals are retained across view
  // changes and executed payloads are kept in the executed_batches window,
  // any committed seq within the window has a certificate in every vote
  // quorum (commit and vote quorums intersect in a holder), so the no-op
  // holes below only ever cover seqs that provably did not commit.
  std::map<uint64_t, SmrViewChangeCert> adopted;  // seq -> best cert
  auto consider = [&](const SmrViewChangeCert& cert) {
    auto it = adopted.find(cert.seq);
    if (it == adopted.end() || cert.view > it->second.view) {
      adopted[cert.seq] = cert;
    }
  };
  for (const auto& [voter, certs] : r.view_votes[view]) {
    for (const auto& cert : certs) {
      consider(cert);
    }
  }
  for (const auto& [seq, proposal] : r.proposals) {
    consider(CertFromProposal(seq, proposal.msg));
  }
  for (const auto& [seq, executed] : r.executed_batches) {
    consider(CertFromProposal(seq, executed));
  }

  r.view = view;
  // Accepted proposals are RETAINED (they are future certificates; the
  // current view's leader replaces them seq by seq) — only the vote
  // tallies reset with the view.
  r.accept_votes.clear();
  r.next_seq = r.next_exec_seq;
  for (auto& [id, pending] : r.pending) {
    pending.ordered = false;
    pending.first_seen = env_->Now();
  }
  r.view_votes.erase(r.view_votes.begin(),
                     r.view_votes.upper_bound(r.view));

  if (IsLeader(r, index)) {
    // Re-propose every adopted assignment under the new view (same seq,
    // batch and order_time, so replicas that already executed them stay
    // deterministic). Below the frontier these are catch-up proposals for
    // lagging replicas: stored so the failure-detector pass re-sends them
    // until every replica has re-accepted (a one-shot send could race a
    // laggard still gathering view votes and be dropped as stale-view).
    // Above-frontier holes get no-op batches so execution never wedges on
    // a seq nobody in the quorum accepted; holes are never filled below
    // the frontier — those seqs executed real batches here.
    uint64_t horizon = r.next_exec_seq;
    for (const auto& [seq, cert] : adopted) {
      horizon = std::max(horizon, seq + 1);
    }
    for (const auto& [seq, cert] : adopted) {
      if (seq >= r.next_exec_seq) {
        break;  // std::map: ordered; the loop below covers the rest
      }
      SmrMessage propose;
      propose.type = SmrMessage::Type::kPropose;
      propose.from = static_cast<int>(index);
      propose.view = r.view;
      propose.seq = seq;
      propose.order_time = cert.order_time;
      propose.batch = cert.batch;
      r.proposals[seq] = Replica::Proposal{propose, env_->Now()};
      out->push_back(std::move(propose));
    }
    for (uint64_t seq = r.next_exec_seq; seq < horizon; ++seq) {
      SmrMessage propose;
      propose.type = SmrMessage::Type::kPropose;
      propose.from = static_cast<int>(index);
      propose.view = r.view;
      propose.seq = seq;
      auto it = adopted.find(seq);
      if (it != adopted.end()) {
        propose.order_time = it->second.order_time;
        propose.batch = it->second.batch;
        for (const auto& entry : propose.batch) {
          auto pending_it = r.pending.find(entry.request_id);
          if (pending_it != r.pending.end()) {
            pending_it->second.ordered = true;
          }
        }
      } else {
        propose.order_time = env_->Now();  // hole: no-op batch
      }
      r.proposals[seq] = Replica::Proposal{propose, env_->Now()};
      out->push_back(std::move(propose));
    }
    r.next_seq = horizon;
    LeaderMaybePropose(index, r, out);
  }
}

// Leader: drain pending un-ordered requests into batched proposals, keeping
// at most max_inflight_instances consensus instances outstanding. Caller
// holds r.mu; the proposals are queued into `out` and broadcast by the
// caller post-unlock.
void SmrCluster::LeaderMaybePropose(unsigned index, Replica& r,
                                    std::vector<SmrMessage>* out) {
  if (!IsLeader(r, index)) {
    return;
  }
  const unsigned max_batch = config_.enable_batching
                                 ? std::max(1u, config_.max_batch)
                                 : 1u;
  const unsigned max_inflight = std::max(1u, config_.max_inflight_instances);
  auto it = r.pending.begin();
  for (;;) {
    const uint64_t inflight =
        r.next_seq > r.next_exec_seq ? r.next_seq - r.next_exec_seq : 0;
    if (inflight >= max_inflight) {
      return;  // pipeline full; committed instances re-trigger this
    }
    // Gather the next batch in request-id order.
    std::vector<SmrBatchEntry> batch;
    for (; it != r.pending.end() && batch.size() < max_batch; ++it) {
      if (it->second.ordered) {
        continue;
      }
      it->second.ordered = true;
      batch.push_back(SmrBatchEntry{it->first, it->second.payload});
    }
    if (batch.empty()) {
      return;
    }
    SmrMessage propose;
    propose.type = SmrMessage::Type::kPropose;
    propose.from = static_cast<int>(index);
    propose.view = r.view;
    propose.seq = r.next_seq++;
    propose.order_time = env_->Now();
    propose.batch = std::move(batch);
    proposed_instances_.fetch_add(1, std::memory_order_relaxed);
    proposed_requests_.fetch_add(propose.batch.size(),
                                 std::memory_order_relaxed);
    // Assignment, not emplace: a proposal retained from an older view may
    // occupy this seq (kept as a certificate); the current view's leader
    // assignment replaces it everywhere, including here.
    r.proposals[propose.seq] = Replica::Proposal{propose, env_->Now()};
    out->push_back(std::move(propose));
  }
}

// Executes committed batches in sequence order, one reply per request.
// Caller holds r.mu; replies are queued into `out`.
void SmrCluster::TryExecute(unsigned index, Replica& r,
                            std::vector<SmrMessage>* out) {
  for (;;) {
    auto proposal_it = r.proposals.find(r.next_exec_seq);
    if (proposal_it == r.proposals.end()) {
      break;
    }
    auto votes_it = r.accept_votes.find(r.next_exec_seq);
    if (votes_it == r.accept_votes.end() ||
        votes_it->second.size() < config_.order_quorum()) {
      break;
    }
    const SmrMessage& proposal = proposal_it->second.msg;
    std::vector<uint64_t> batch_ids;
    batch_ids.reserve(proposal.batch.size());
    for (const auto& entry : proposal.batch) {
      batch_ids.push_back(entry.request_id);
      auto command = CoordCommand::Decode(entry.payload);
      const std::string client = command.ok() ? command->client : std::string();
      auto& client_log = r.client_replies[client];
      Bytes reply_bytes;
      auto cached_it = client_log.find(entry.request_id);
      if (cached_it != client_log.end()) {
        reply_bytes = cached_it->second;  // duplicate ordering; cached reply
        // A retransmission may have re-queued the executed request (e.g. an
        // undecodable payload skips the kRequest cache lookup); drop it so
        // view changes never re-batch a dead entry.
        r.pending.erase(entry.request_id);
      } else {
        CoordReply reply;
        if (command.ok()) {
          reply = r.space.Apply(proposal.order_time, *command);
        } else {
          reply.code = ErrorCode::kCorruption;
        }
        reply_bytes = reply.Encode();
        client_log[entry.request_id] = reply_bytes;
        // Window the per-client table: a client only ever retransmits
        // requests it is still waiting on, which are at most its in-flight
        // set — far fewer than the window.
        while (client_log.size() > kClientReplyWindow) {
          client_log.erase(client_log.begin());
        }
        r.executed_ops++;
        r.pending.erase(entry.request_id);
      }
      out->push_back(MakeReply(index, r, entry.request_id,
                               std::move(reply_bytes)));
    }
    // Record the committed assignment (it validates below-frontier
    // re-proposes), then prune the vote/proposal state so the leader's
    // re-propose scan stays O(in-flight), not O(history). The commit log is
    // itself a sliding window: a below-frontier re-propose can only
    // reference a seq a lagging leader still holds pending, which is
    // bounded by the client retry lifetime — far less than the window.
    // (Proposals beyond the window are simply not endorsed.)
    r.executed_seqs[r.next_exec_seq] = std::move(batch_ids);
    if (r.next_exec_seq >= kExecutedSeqWindow) {
      r.executed_seqs.erase(r.executed_seqs.begin(),
                            r.executed_seqs.lower_bound(
                                r.next_exec_seq - kExecutedSeqWindow + 1));
    }
    // Retain the executed payloads on the shorter window: they are the
    // certificates that let a view change catch up a lagging replica.
    r.executed_batches[r.next_exec_seq] = proposal;
    if (r.next_exec_seq >= kExecutedBatchWindow) {
      r.executed_batches.erase(
          r.executed_batches.begin(),
          r.executed_batches.lower_bound(r.next_exec_seq -
                                         kExecutedBatchWindow + 1));
    }
    r.accept_votes.erase(r.next_exec_seq);
    r.proposals.erase(proposal_it);
    r.next_exec_seq++;
  }
}

// Failure detector: a pending request left unordered past order_timeout makes
// this replica vote for a view change (BFT-SMaRt's client-triggered
// synchronization, simplified). The vote carries this replica's accepted
// proposals as certificates for the new leader's adoption pass.
void SmrCluster::CheckOrderingTimeout(unsigned index, Replica& r) {
  SmrMessage vote;
  bool send = false;
  std::vector<SmrMessage> reproposals;
  {
    std::lock_guard<std::mutex> lock(r.mu);
    if (IsLeader(r, index)) {
      // Leader: re-broadcast proposals that failed to gather an accept
      // quorum in time. A proposal sent in the instant this replica won a
      // view change is dropped by followers still gathering view votes; the
      // exact original message is re-sent (same seq/order_time, so replicas
      // that already stored it stay deterministic) until it commits.
      // Below-frontier entries are catch-up proposals: re-sent until every
      // replica has re-accepted (an order-quorum alone proves nothing
      // about the laggard they exist for).
      VirtualTime now = env_->Now();
      for (auto it = r.proposals.begin(); it != r.proposals.end();) {
        auto& [seq, entry] = *it;
        if (entry.msg.view != r.view) {
          ++it;
          continue;  // retained from an older view: certificate only
        }
        auto votes_it = r.accept_votes.find(seq);
        unsigned votes =
            votes_it == r.accept_votes.end()
                ? 0
                : static_cast<unsigned>(votes_it->second.size());
        if (seq < r.next_exec_seq && votes >= config_.order_quorum() &&
            entry.resends >= kCatchUpResendLimit) {
          // Catch-up entry that will never reach full coverage (a replica
          // is gone): stop re-broadcasting it.
          r.accept_votes.erase(seq);
          it = r.proposals.erase(it);
          continue;
        }
        unsigned needed = seq < r.next_exec_seq ? replica_count()
                                                : config_.order_quorum();
        if (votes < needed && now - entry.last_sent > config_.order_timeout) {
          entry.last_sent = now;
          entry.resends++;
          reproposals.push_back(entry.msg);
        }
        ++it;
      }
    }
  }
  for (const auto& proposal : reproposals) {
    BroadcastFromReplica(index, proposal);
  }
  {
    std::lock_guard<std::mutex> lock(r.mu);
    if (IsLeader(r, index)) {
      return;
    }
    VirtualTime now = env_->Now();
    for (const auto& [request_id, pending] : r.pending) {
      if (!pending.ordered &&
          now - pending.first_seen > config_.order_timeout) {
        uint64_t proposed_view = r.view + 1;
        auto& votes = r.view_votes[proposed_view];
        if (votes.count(static_cast<int>(index)) > 0) {
          return;  // already voted
        }
        // Certificates: every accepted proposal plus the retained executed
        // batches — the new leader adopts the highest view per seq, and
        // below-frontier entries are its catch-up source for laggards.
        std::vector<SmrViewChangeCert> certs;
        for (const auto& [seq, proposal] : r.proposals) {
          certs.push_back(CertFromProposal(seq, proposal.msg));
        }
        for (const auto& [seq, executed] : r.executed_batches) {
          certs.push_back(CertFromProposal(seq, executed));
        }
        votes[static_cast<int>(index)] = certs;
        vote.type = SmrMessage::Type::kViewChange;
        vote.from = static_cast<int>(index);
        vote.view = proposed_view;
        vote.certs = std::move(certs);
        send = true;
        break;
      }
    }
  }
  if (send) {
    BroadcastFromReplica(index, vote);
  }
}

}  // namespace scfs
