#include "src/coord/smr.h"

#include <algorithm>
#include <cassert>

#include "src/common/logging.h"
#include "src/crypto/sha256.h"

namespace scfs {

namespace {

SmrViewChangeCert CertFromProposal(uint64_t seq, const SmrMessage& msg) {
  SmrViewChangeCert cert;
  cert.seq = seq;
  cert.view = msg.view;
  cert.order_time = msg.order_time;
  cert.batch = msg.batch;
  return cert;
}

// Canonical encoding of a certificate's committed content — the equality
// key for f+1 tail-certificate matching during state transfer. The accepted
// view is deliberately excluded: replicas may have committed the same batch
// at the same seq under different views (an original propose vs. a
// view-change re-propose), and both vouch for the same execution.
Bytes CertContentKey(const SmrViewChangeCert& cert) {
  Bytes out;
  AppendU64(&out, static_cast<uint64_t>(cert.order_time));
  AppendU32(&out, static_cast<uint32_t>(cert.batch.size()));
  for (const auto& entry : cert.batch) {
    AppendU64(&out, entry.request_id);
    AppendBytes(&out, entry.payload);
  }
  return out;
}

// The frontier a matching reply set vouches for: the q-th highest among the
// repliers' committed-frontier tags, q = the reply quorum (f+1 byzantine, 1
// crash). At least one correct replica sits at or beyond it, so a lying
// replica can inflate its own tag without dragging the watermark past what
// a correct replica actually committed.
uint64_t VouchedFrontier(std::vector<uint64_t> frontiers, unsigned quorum) {
  std::sort(frontiers.begin(), frontiers.end(), std::greater<uint64_t>());
  return frontiers[std::min<size_t>(frontiers.size(), quorum) - 1];
}

// A below-frontier catch-up proposal retires once every replica re-accepted
// it, or after this many re-sends with an order-quorum of re-accepts — a
// live laggard has received one of them (delivery is reliable; only the
// transient view race drops proposals), while a crashed replica must not
// keep the entry re-broadcasting forever.
constexpr int kCatchUpResendLimit = 8;

// Caps on the state-transfer collection buffers. The payload-vs-digest
// check catches a forged snapshot, but a self-consistent lie — garbage
// hashed honestly — can only be rejected by never reaching the vouch
// quorum, so such buckets must not accumulate without bound. When a map is
// full, a new bucket may evict one with strictly fewer voters (a genuine
// bucket gains its second voucher quickly and becomes unevictable; a
// single-voucher bucket is re-offerable on the next request round).
constexpr size_t kMaxSnapshotOffers = 8;
constexpr size_t kMaxTailOffers = 4096;

// Inserts into a capped offer map: returns the bucket for `key`, evicting
// the fewest-voter bucket when full, or nullptr when the newcomer loses.
template <typename Map>
typename Map::mapped_type* EmplaceCapped(Map* map,
                                         const typename Map::key_type& key,
                                         size_t cap) {
  auto it = map->find(key);
  if (it != map->end()) {
    return &it->second;
  }
  if (map->size() >= cap) {
    auto victim = map->end();
    for (auto candidate = map->begin(); candidate != map->end();
         ++candidate) {
      if (victim == map->end() ||
          candidate->second.voters.size() < victim->second.voters.size()) {
        victim = candidate;
      }
    }
    if (victim == map->end() || victim->second.voters.size() > 1) {
      return nullptr;  // every resident bucket is better-vouched
    }
    map->erase(victim);
  }
  return &(*map)[key];
}

}  // namespace

SmrCluster::SmrCluster(Environment* env, SmrConfig config, uint64_t seed)
    : env_(env), config_(config), client_rng_(seed ^ 0xc11e47ULL) {
  // Enforce the state-transfer soundness requirement (smr.h): every
  // servable checkpoint must leave a gap the retained executed batches can
  // cover, i.e. checkpoint_interval * kRetainedCheckpoints <=
  // executed_batch_window. A config that violates it silently reintroduces
  // the beyond-window wedge, so the interval is clamped down instead.
  if (config_.checkpoint_interval > 0) {
    const uint64_t max_interval = std::max<uint64_t>(
        1, config_.executed_batch_window / kRetainedCheckpoints);
    config_.checkpoint_interval =
        std::min(config_.checkpoint_interval, max_interval);
  }
  const unsigned n = config_.replica_count();
  replicas_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    auto replica = std::make_unique<Replica>(env_);
    replica->rng = Rng(seed + i * 1299721ULL);
    replicas_.push_back(std::move(replica));
  }
  for (unsigned i = 0; i < n; ++i) {
    replicas_[i]->thread = std::thread([this, i] { ReplicaLoop(i); });
  }
}

SmrCluster::~SmrCluster() { Shutdown(); }

void SmrCluster::Shutdown() {
  if (shutdown_.exchange(true)) {
    return;
  }
  for (auto& replica : replicas_) {
    replica->inbox.Close();
  }
  for (auto& replica : replicas_) {
    if (replica->thread.joinable()) {
      replica->thread.join();
    }
  }
  std::lock_guard<std::mutex> lock(clients_mu_);
  for (auto& [id, queue] : client_queues_) {
    queue->Close();
  }
}

void SmrCluster::CrashReplica(unsigned index) {
  replicas_[index]->crashed.store(true);
}

void SmrCluster::RestartReplica(unsigned index) {
  // Crash-recovery restart: the replica resumes from its state as of the
  // crash (it dropped everything delivered in between) and rejoins lagging.
  replicas_[index]->crashed.store(false);
}

void SmrCluster::SetReplicaByzantine(unsigned index, bool byzantine) {
  replicas_[index]->byzantine.store(byzantine);
}

uint64_t SmrCluster::current_view() const {
  uint64_t view = 0;
  for (const auto& replica : replicas_) {
    std::lock_guard<std::mutex> lock(replica->mu);
    view = std::max(view, replica->view);
  }
  return view;
}

uint64_t SmrCluster::executed_count(unsigned replica) const {
  std::lock_guard<std::mutex> lock(replicas_[replica]->mu);
  return replicas_[replica]->executed_ops;
}

uint64_t SmrCluster::exec_frontier(unsigned replica) const {
  std::lock_guard<std::mutex> lock(replicas_[replica]->mu);
  return replicas_[replica]->next_exec_seq;
}

Bytes SmrCluster::state_digest(unsigned replica) const {
  std::lock_guard<std::mutex> lock(replicas_[replica]->mu);
  return Sha256::Hash(EncodeReplicaSnapshot(*replicas_[replica]));
}

Bytes SmrCluster::quorum_state_digest() const {
  // Only a digest an order-quorum of replicas agrees on is the cluster's
  // fingerprint — a plurality could be a single (possibly faulty) replica.
  // Empty means "not converged right now": replicas are mid-execution at
  // different frontiers, or genuinely diverged.
  std::map<Bytes, unsigned> tally;
  for (unsigned i = 0; i < replicas_.size(); ++i) {
    tally[state_digest(i)]++;
  }
  for (const auto& [digest, count] : tally) {
    if (count >= config_.order_quorum()) {
      return digest;
    }
  }
  return {};
}

SmrCounters SmrCluster::counters() const {
  SmrCounters out;
  out.ordered_commands = ordered_commands_.load(std::memory_order_relaxed);
  out.proposed_instances = proposed_instances_.load(std::memory_order_relaxed);
  out.proposed_requests = proposed_requests_.load(std::memory_order_relaxed);
  out.fast_path_reads = fast_path_reads_.load(std::memory_order_relaxed);
  out.fast_path_fallbacks =
      fast_path_fallbacks_.load(std::memory_order_relaxed);
  out.fast_path_cooldown_bypasses =
      fast_path_cooldown_bypasses_.load(std::memory_order_relaxed);
  out.fast_path_stale_quorums =
      fast_path_stale_quorums_.load(std::memory_order_relaxed);
  out.checkpoints_taken = checkpoints_taken_.load(std::memory_order_relaxed);
  out.state_requests = state_requests_.load(std::memory_order_relaxed);
  out.snapshots_installed =
      snapshots_installed_.load(std::memory_order_relaxed);
  out.snapshot_payload_rejects =
      snapshot_payload_rejects_.load(std::memory_order_relaxed);
  out.client_request_msgs =
      client_request_msgs_.load(std::memory_order_relaxed);
  out.replica_msgs = replica_msgs_.load(std::memory_order_relaxed);
  out.client_reply_msgs = client_reply_msgs_.load(std::memory_order_relaxed);
  return out;
}

Bytes SmrCluster::EncodeReplicaSnapshot(const Replica& r) const {
  Bytes out;
  AppendBytes(&out, r.space.Snapshot());
  AppendU32(&out, static_cast<uint32_t>(r.client_replies.size()));
  for (const auto& [client, replies] : r.client_replies) {
    AppendString(&out, client);
    AppendU32(&out, static_cast<uint32_t>(replies.size()));
    for (const auto& [request_id, reply] : replies) {
      AppendU64(&out, request_id);
      AppendBytes(&out, reply);
    }
  }
  return out;
}

bool SmrCluster::DecodeReplicaSnapshot(
    ConstByteSpan payload, TupleSpace* space,
    std::map<std::string, std::map<uint64_t, Bytes>>* client_replies) {
  ByteReader reader(payload);
  Bytes space_bytes;
  uint32_t client_count = 0;
  if (!reader.ReadBytes(&space_bytes) || !space->Restore(space_bytes) ||
      !reader.ReadU32(&client_count)) {
    return false;
  }
  for (uint32_t c = 0; c < client_count; ++c) {
    std::string client;
    uint32_t reply_count = 0;
    if (!reader.ReadString(&client) || !reader.ReadU32(&reply_count)) {
      return false;
    }
    auto& table = (*client_replies)[client];
    for (uint32_t i = 0; i < reply_count; ++i) {
      uint64_t request_id = 0;
      Bytes reply;
      if (!reader.ReadU64(&request_id) || !reader.ReadBytes(&reply)) {
        return false;
      }
      table.emplace(request_id, std::move(reply));
    }
  }
  return reader.AtEnd();
}

void SmrCluster::SendToReplica(unsigned from_replica, unsigned to,
                               SmrMessage msg) {
  VirtualDuration delay = 0;
  if (from_replica != to) {
    std::lock_guard<std::mutex> lock(replicas_[from_replica]->mu);
    delay = config_.replica_link.Sample(replicas_[from_replica]->rng,
                                        msg.ByteSize());
    // Self-delivery stays a local enqueue; only cross-replica sends are
    // network messages.
    replica_msgs_.fetch_add(1, std::memory_order_relaxed);
  }
  replicas_[to]->inbox.Push(std::move(msg), env_->Now() + delay);
}

void SmrCluster::BroadcastFromReplica(unsigned from, const SmrMessage& msg) {
  for (unsigned i = 0; i < replicas_.size(); ++i) {
    SendToReplica(from, i, msg);
  }
}

void SmrCluster::SendReplyToClient(unsigned from_replica,
                                   const SmrMessage& reply) {
  std::shared_ptr<DelayedQueue<SmrMessage>> queue;
  {
    std::lock_guard<std::mutex> lock(clients_mu_);
    auto it = client_queues_.find(reply.request_id);
    if (it == client_queues_.end()) {
      return;  // client already satisfied and gone
    }
    queue = it->second;
  }
  const LatencyModel& link = ClientLink(from_replica);
  VirtualDuration delay;
  {
    std::lock_guard<std::mutex> lock(replicas_[from_replica]->mu);
    delay = link.Sample(replicas_[from_replica]->rng, reply.payload.size());
  }
  reply_bytes_out_.fetch_add(reply.payload.size(), std::memory_order_relaxed);
  client_reply_msgs_.fetch_add(1, std::memory_order_relaxed);
  queue->Push(reply, env_->Now() + delay);
}

std::optional<Bytes> SmrCluster::TryFastRead(const Bytes& encoded_command) {
  const uint64_t request_id = next_request_id_.fetch_add(1);
  auto queue = std::make_shared<DelayedQueue<SmrMessage>>(env_);
  {
    std::lock_guard<std::mutex> lock(clients_mu_);
    client_queues_[request_id] = queue;
  }
  auto cleanup = [&] {
    std::lock_guard<std::mutex> lock(clients_mu_);
    client_queues_.erase(request_id);
  };

  SmrMessage request;
  request.type = SmrMessage::Type::kReadRequest;
  request.from = -1;
  request.request_id = request_id;
  request.payload = encoded_command;
  client_request_msgs_.fetch_add(replicas_.size(),
                                 std::memory_order_relaxed);
  for (unsigned i = 0; i < replicas_.size(); ++i) {
    VirtualDuration delay;
    {
      std::lock_guard<std::mutex> lock(rng_mu_);
      delay = ClientLink(i).Sample(client_rng_, request.payload.size());
    }
    replicas_[i]->inbox.Push(request, env_->Now() + delay);
  }

  const VirtualTime deadline = env_->Now() + config_.fast_read_timeout;
  // replica -> (reply payload, committed-frontier tag)
  std::map<int, std::pair<Bytes, uint64_t>> replies;
  bool saw_stale_quorum = false;
  for (;;) {
    VirtualTime now = env_->Now();
    if (now >= deadline) {
      break;  // timeout: a replica is slow or gone
    }
    auto msg = queue->PopFor(deadline - now);
    if (shutdown_.load()) {
      break;
    }
    if (!msg.has_value()) {
      break;  // timeout or closed
    }
    if (msg->type != SmrMessage::Type::kReply ||
        msg->request_id != request_id) {
      continue;
    }
    replies[msg->from] = {msg->payload, msg->seq};
    unsigned votes = 0;
    std::vector<uint64_t> match_frontiers;
    for (const auto& [from, reply] : replies) {
      if (reply.first == msg->payload) {
        ++votes;
        match_frontiers.push_back(reply.second);
      }
    }
    // Frontier gate: besides the matching quorum, f+1 of the matching
    // replies must be at or beyond the client's watermark — otherwise the
    // quorum, though internally consistent, describes a state older than
    // one this stub already observed (the read-read inversion), and
    // accepting it would move reads backwards in time.
    const uint64_t observed =
        observed_frontier_.load(std::memory_order_relaxed);
    unsigned fresh = 0;
    for (uint64_t frontier : match_frontiers) {
      if (frontier >= observed) {
        ++fresh;
      }
    }
    if (votes >= config_.read_quorum() &&
        fresh < config_.reply_quorum()) {
      saw_stale_quorum = true;  // keep collecting; fresher replies may come
    }
    if (votes >= config_.read_quorum() &&
        fresh >= config_.reply_quorum()) {
      AdvanceObservedFrontier(
          VouchedFrontier(std::move(match_frontiers),
                          config_.reply_quorum()));
      cleanup();
      queue->Close();
      // Charge the modelled round latency: request one-way + reply one-way
      // (the wait itself happens on the reply queue, outside Sleep).
      {
        std::lock_guard<std::mutex> lock(rng_mu_);
        const LatencyModel& link = ClientLink(0);
        Environment::AddThreadCharge(
            link.Sample(client_rng_, request.payload.size()) +
            link.Sample(client_rng_, msg->payload.size()));
      }
      fast_path_reads_.fetch_add(1, std::memory_order_relaxed);
      return msg->payload;
    }
    if (replies.size() >= replicas_.size()) {
      break;  // every replica replied and no quorum matches: divergence
    }
  }
  cleanup();
  queue->Close();
  if (saw_stale_quorum) {
    fast_path_stale_quorums_.fetch_add(1, std::memory_order_relaxed);
  }
  // The failed round is not free: before falling back the caller waited for
  // the divergence to become evident (a full round trip to the slowest
  // replier), and the ordered round's charge comes on top. Charged as one
  // modelled request+reply round rather than the timeout value: at
  // aggressive bench time scales the virtual timeout also fires from real
  // scheduling noise, and charges must stay deterministic modelled costs
  // (see Environment::ThreadCharged), never host-scheduling artifacts.
  {
    std::lock_guard<std::mutex> lock(rng_mu_);
    const LatencyModel& link = ClientLink(0);
    Environment::AddThreadCharge(
        link.Sample(client_rng_, encoded_command.size()) +
        link.Sample(client_rng_, 64));
  }
  return std::nullopt;
}

void SmrCluster::AdvanceObservedFrontier(uint64_t vouched) {
  uint64_t current = observed_frontier_.load(std::memory_order_relaxed);
  while (vouched > current &&
         !observed_frontier_.compare_exchange_weak(
             current, vouched, std::memory_order_relaxed)) {
  }
}

Result<CoordReply> SmrCluster::Execute(const CoordCommand& command) {
  if (shutdown_.load()) {
    return UnavailableError("smr cluster shut down");
  }
  Bytes encoded = command.Encode();
  if (config_.enable_read_fast_path && command.is_read_only()) {
    // Fallback cooldown: a recent failed fast round means the fast path is
    // currently not assembling quorums (a fault is in progress, or the
    // replicas are transiently divergent); skipping the doomed round saves
    // the fast_read_timeout every read would otherwise pay.
    if (config_.fast_read_fallback_cooldown > 0 &&
        env_->Now() < fast_path_bypass_until_.load(
                          std::memory_order_relaxed)) {
      fast_path_cooldown_bypasses_.fetch_add(1, std::memory_order_relaxed);
      fast_path_fallbacks_.fetch_add(1, std::memory_order_relaxed);
    } else {
      auto fast = TryFastRead(encoded);
      if (shutdown_.load()) {
        return UnavailableError("smr cluster shut down");
      }
      if (fast.has_value()) {
        return CoordReply::Decode(*fast);
      }
      fast_path_fallbacks_.fetch_add(1, std::memory_order_relaxed);
      if (config_.fast_read_fallback_cooldown > 0) {
        fast_path_bypass_until_.store(
            env_->Now() + config_.fast_read_fallback_cooldown,
            std::memory_order_relaxed);
      }
    }
  }

  const uint64_t request_id = next_request_id_.fetch_add(1);
  auto queue = std::make_shared<DelayedQueue<SmrMessage>>(env_);
  {
    std::lock_guard<std::mutex> lock(clients_mu_);
    client_queues_[request_id] = queue;
  }

  SmrMessage request;
  request.type = SmrMessage::Type::kRequest;
  request.from = -1;
  request.request_id = request_id;
  request.payload = std::move(encoded);

  auto broadcast_request = [&] {
    client_request_msgs_.fetch_add(replicas_.size(),
                                   std::memory_order_relaxed);
    for (unsigned i = 0; i < replicas_.size(); ++i) {
      VirtualDuration delay;
      {
        std::lock_guard<std::mutex> lock(rng_mu_);
        delay = ClientLink(i).Sample(client_rng_, request.payload.size());
      }
      replicas_[i]->inbox.Push(request, env_->Now() + delay);
    }
  };
  broadcast_request();

  // With the read fast path enabled, a mutating command is acknowledged
  // only once an order-quorum of replicas replies with matching results —
  // the executed set of every acked write then intersects any fast-read
  // matching quorum in at least one correct replica, which is what makes
  // the fast path linearizable. Ordered *reads* (fast-path fallbacks, or
  // reads with the fast path disabled) keep the cheap reply quorum: they
  // create no state a later fast read must observe, and f+1 matching
  // replies already vouch for the linearized result.
  const unsigned needed_matching =
      (config_.enable_read_fast_path && !command.is_read_only())
          ? config_.order_quorum()
          : config_.reply_quorum();
  // replica -> (reply payload, committed-frontier tag)
  std::map<int, std::pair<Bytes, uint64_t>> replies;
  int retries = 0;
  for (;;) {
    auto msg = queue->PopFor(config_.client_timeout);
    if (shutdown_.load()) {
      return UnavailableError("smr cluster shut down");
    }
    if (!msg.has_value()) {
      if (++retries > config_.max_client_retries) {
        std::lock_guard<std::mutex> lock(clients_mu_);
        client_queues_.erase(request_id);
        return UnavailableError("coordination service not responding");
      }
      broadcast_request();
      continue;
    }
    if (msg->type != SmrMessage::Type::kReply ||
        msg->request_id != request_id) {
      continue;
    }
    replies[msg->from] = {msg->payload, msg->seq};
    unsigned votes = 0;
    std::vector<uint64_t> match_frontiers;
    for (const auto& [from, reply] : replies) {
      if (reply.first == msg->payload) {
        ++votes;
        match_frontiers.push_back(reply.second);
      }
    }
    if (votes >= needed_matching) {
      // Ordered acks advance the frontier watermark too, so a write (or
      // fallback read) that exposes new state raises the bar for every
      // subsequent fast read.
      AdvanceObservedFrontier(VouchedFrontier(std::move(match_frontiers),
                                              config_.reply_quorum()));
      {
        std::lock_guard<std::mutex> lock(clients_mu_);
        client_queues_.erase(request_id);
      }
      queue->Close();
      // Charge the modelled protocol latency of one coordination access:
      // request one-way + leader ordering (2 inter-replica one-ways) + reply
      // one-way. (The client's actual wait happens on the reply queue,
      // outside Environment::Sleep, so it is not charged automatically.)
      {
        std::lock_guard<std::mutex> lock(rng_mu_);
        const LatencyModel& link = ClientLink(0);
        VirtualDuration modeled =
            link.Sample(client_rng_, request.payload.size()) +
            config_.replica_link.Sample(client_rng_, request.payload.size()) +
            config_.replica_link.Sample(client_rng_, 64) +
            link.Sample(client_rng_, msg->payload.size());
        Environment::AddThreadCharge(modeled);
      }
      ordered_commands_.fetch_add(1, std::memory_order_relaxed);
      return CoordReply::Decode(msg->payload);
    }
  }
}

void SmrCluster::ReplicaLoop(unsigned index) {
  Replica& r = *replicas_[index];
  for (;;) {
    // The leader's wake-up must not overshoot a pending batch's
    // accumulation deadline, or a held partial batch would wait a full
    // order timeout instead of the configured delay.
    VirtualDuration wait = config_.order_timeout;
    if (config_.enable_batching && config_.batch_accumulation_delay > 0) {
      std::lock_guard<std::mutex> lock(r.mu);
      if (IsLeader(r, index)) {
        VirtualTime oldest = -1;
        for (const auto& [id, pending] : r.pending) {
          if (!pending.ordered &&
              (oldest < 0 || pending.first_seen < oldest)) {
            oldest = pending.first_seen;
          }
        }
        if (oldest >= 0) {
          VirtualTime due = oldest + config_.batch_accumulation_delay;
          wait = std::min<VirtualDuration>(
              wait, std::max<VirtualDuration>(due - env_->Now(),
                                              kMillisecond));
        }
      }
    }
    auto msg = r.inbox.PopFor(wait);
    if (shutdown_.load()) {
      return;
    }
    if (r.inbox.closed() && !msg.has_value()) {
      return;
    }
    if (r.crashed.load()) {
      continue;  // crashed replicas consume and drop everything
    }
    if (msg.has_value()) {
      HandleMessage(index, r, std::move(*msg));
      // Drain everything already deliverable before consulting the failure
      // detector: a replica that was briefly descheduled must not vote for a
      // view change while the leader's proposal sits in its inbox.
      while (auto more = r.inbox.TryPop()) {
        if (r.crashed.load()) {
          break;
        }
        HandleMessage(index, r, std::move(*more));
      }
    }
    CheckOrderingTimeout(index, r);
  }
}

SmrMessage SmrCluster::MakeReply(unsigned index, const Replica& r,
                                 uint64_t request_id, Bytes reply_bytes) const {
  SmrMessage reply;
  reply.type = SmrMessage::Type::kReply;
  reply.from = static_cast<int>(index);
  reply.request_id = request_id;
  // Frontier tag: the replica's committed frontier rides every reply so
  // clients can reject matching-but-stale fast-read quorums.
  reply.seq = r.next_exec_seq;
  reply.payload = std::move(reply_bytes);
  if (r.byzantine.load() && !reply.payload.empty()) {
    reply.payload[0] ^= 0xff;  // byzantine replica lies to clients
  }
  return reply;
}

void SmrCluster::HandleMessage(unsigned index, Replica& r, SmrMessage msg) {
  std::vector<SmrMessage> to_broadcast;
  std::vector<SmrMessage> to_client;
  std::vector<std::pair<unsigned, SmrMessage>> to_peer;
  {
    std::lock_guard<std::mutex> lock(r.mu);
    // Higher-view evidence: ordering traffic from views ahead of ours means
    // the cluster moved on (e.g. a view change completed while this replica
    // was down). One forged message must not drag us forward, but f+1
    // distinct senders claiming the SAME higher view include a correct
    // one, and a correct replica only operates in a view a vote quorum
    // adopted — so that view is safe to adopt. The count is strictly
    // per-view (unioning across views would let f forgers ride one
    // unrelated correct sender's traffic into a view no correct replica
    // vouched for), and each sender holds exactly one claim slot (its
    // latest), so a forger inventing views — many, ascending, whatever —
    // only ever occupies one entry. A live view always clears the
    // threshold: its leader proposes, a quorum of followers accepts, all
    // broadcast.
    if ((msg.type == SmrMessage::Type::kPropose ||
         msg.type == SmrMessage::Type::kAccept) &&
        msg.from >= 0 && msg.view > r.view) {
      r.view_claims[msg.from] = msg.view;
      const unsigned needed = config_.byzantine ? config_.f + 1 : 1;
      std::map<uint64_t, unsigned> claim_counts;
      for (const auto& [sender, view] : r.view_claims) {
        claim_counts[view]++;
      }
      uint64_t adopt = 0;
      for (const auto& [view, count] : claim_counts) {
        if (view > r.view && count >= needed) {
          adopt = std::max(adopt, view);
        }
      }
      if (adopt > r.view) {
        AdoptView(index, r, adopt, &to_broadcast);
      }
    }
    switch (msg.type) {
      case SmrMessage::Type::kRequest: {
        auto command = CoordCommand::Decode(msg.payload);
        // Retransmission of an executed request: resend the cached reply
        // from the per-client table (undecodable payloads execute under the
        // empty client).
        const std::string client =
            command.ok() ? command->client : std::string();
        auto client_it = r.client_replies.find(client);
        if (client_it != r.client_replies.end()) {
          auto reply_it = client_it->second.find(msg.request_id);
          if (reply_it != client_it->second.end()) {
            to_client.push_back(
                MakeReply(index, r, msg.request_id, reply_it->second));
            break;
          }
        }
        r.pending.emplace(
            msg.request_id,
            PendingRequest{msg.payload, client, env_->Now(), false});
        LeaderMaybePropose(index, r, &to_broadcast);
        break;
      }
      case SmrMessage::Type::kReadRequest: {
        // Read-only fast path: evaluate against the committed state, no
        // ordering, no side effects. Never touches pending/proposals.
        auto command = CoordCommand::Decode(msg.payload);
        if (!command.ok() || !command->is_read_only()) {
          break;
        }
        CoordReply reply = r.space.Query(*command);
        to_client.push_back(
            MakeReply(index, r, msg.request_id, reply.Encode()));
        break;
      }
      case SmrMessage::Type::kPropose: {
        if (msg.view != r.view ||
            msg.from != static_cast<int>(msg.view % replica_count())) {
          break;  // stale view or impostor leader
        }
        if (msg.seq < r.next_exec_seq) {
          // Below the execution frontier (a same-view re-propose raced us,
          // or a lagging new leader re-orders an already-executed seq). Vote
          // accept only when the proposal matches the batch this replica
          // executed at that seq — the vote helps slower replicas commit the
          // same order — and abstain on a conflict: endorsing a different
          // batch at an executed seq would help commit a divergent order.
          auto seq_it = r.executed_seqs.find(msg.seq);
          bool matches = seq_it != r.executed_seqs.end() &&
                         seq_it->second.size() == msg.batch.size();
          if (matches) {
            for (size_t i = 0; i < msg.batch.size(); ++i) {
              if (seq_it->second[i] != msg.batch[i].request_id) {
                matches = false;
                break;
              }
            }
          }
          if (matches) {
            SmrMessage accept;
            accept.type = SmrMessage::Type::kAccept;
            accept.from = static_cast<int>(index);
            accept.view = msg.view;
            accept.seq = msg.seq;
            to_broadcast.push_back(std::move(accept));
          }
          break;
        }
        // Store, or replace a proposal retained from an older view: the
        // current view's leader is authoritative for the seq, and an honest
        // leader adopting certificates never re-assigns a committed seq
        // (any vote quorum intersects the commit quorum in a replica that
        // still holds — or has executed — the committed batch).
        auto stored_it = r.proposals.find(msg.seq);
        if (stored_it == r.proposals.end()) {
          r.proposals.emplace(msg.seq, Replica::Proposal{msg, env_->Now()});
        } else if (stored_it->second.msg.view < msg.view) {
          stored_it->second = Replica::Proposal{msg, env_->Now()};
        }
        for (const auto& entry : msg.batch) {
          auto pending_it = r.pending.find(entry.request_id);
          if (pending_it != r.pending.end()) {
            pending_it->second.ordered = true;
          }
        }
        SmrMessage accept;
        accept.type = SmrMessage::Type::kAccept;
        accept.from = static_cast<int>(index);
        accept.view = msg.view;
        accept.seq = msg.seq;
        to_broadcast.push_back(std::move(accept));
        TryExecute(index, r, &to_client);
        LeaderMaybePropose(index, r, &to_broadcast);
        break;
      }
      case SmrMessage::Type::kAccept: {
        if (msg.view != r.view) {
          break;  // stale view
        }
        if (msg.seq < r.next_exec_seq) {
          // Already executed here. If this replica is the leader re-sending
          // a below-frontier catch-up proposal, count the (re-)accepts and
          // retire the entry once EVERY replica has re-accepted — an
          // order-quorum arrives instantly from the replicas that executed
          // it long ago, which says nothing about the laggard the catch-up
          // exists for. (With a permanently crashed replica full coverage
          // never arrives; the re-send loop retires the entry after
          // kCatchUpResendLimit paced re-sends instead.)
          auto catch_up = r.proposals.find(msg.seq);
          if (catch_up != r.proposals.end()) {
            auto& votes = r.accept_votes[msg.seq];
            votes.insert(msg.from);
            if (votes.size() >= replica_count()) {
              r.proposals.erase(catch_up);
              r.accept_votes.erase(msg.seq);
            }
          }
          break;
        }
        r.accept_votes[msg.seq].insert(msg.from);
        TryExecute(index, r, &to_client);
        // Committed instances free pipeline slots: batch up the backlog.
        LeaderMaybePropose(index, r, &to_broadcast);
        break;
      }
      case SmrMessage::Type::kViewChange: {
        if (msg.view <= r.view) {
          break;
        }
        Replica::ViewVote vote;
        vote.certs = std::move(msg.certs);
        vote.checkpoint_seq = msg.seq;
        vote.checkpoint_digest = std::move(msg.digest);
        r.view_votes[msg.view][msg.from] = std::move(vote);
        if (r.view_votes[msg.view].size() >= config_.order_quorum()) {
          AdoptView(index, r, msg.view, &to_broadcast);
        }
        break;
      }
      case SmrMessage::Type::kStateRequest: {
        if (msg.from < 0 || msg.from == static_cast<int>(index) ||
            config_.checkpoint_interval == 0) {
          break;
        }
        // Serve the OLDEST retained checkpoint beyond the requester's
        // frontier, plus the executed-batch tail above it (the committed
        // seqs between the checkpoint and this replica's frontier). Oldest,
        // not newest: during a checkpoint roll peers disagree on the
        // newest, but a peer that already rolled still retains the
        // previous one — offering it is what lets the requester assemble
        // f+1 matching vouchers in one round (the reason checkpoints are
        // retained at depth 2 at all). The longer tail is always covered:
        // the interval clamp keeps every retained checkpoint within the
        // executed-batch window of the frontier.
        const uint64_t requester_frontier = msg.seq;
        SmrMessage reply;
        reply.type = SmrMessage::Type::kStateReply;
        reply.from = static_cast<int>(index);
        for (const auto& cp : r.checkpoints) {
          if (cp.seq > requester_frontier) {
            reply.seq = cp.seq;
            reply.digest = cp.digest;
            reply.payload = cp.payload;
            break;
          }
        }
        const uint64_t tail_from = std::max(requester_frontier, reply.seq);
        for (auto it = r.executed_batches.lower_bound(tail_from);
             it != r.executed_batches.end(); ++it) {
          reply.certs.push_back(CertFromProposal(it->first, it->second));
        }
        if (reply.payload.empty() && reply.certs.empty()) {
          break;  // nothing to offer
        }
        if (r.byzantine.load()) {
          // A lying replica forges the snapshot (the payload no longer
          // hashes to the vouched digest) and skews its tail certificates
          // so they can never reach f+1 matching offers.
          if (!reply.payload.empty()) {
            reply.payload[0] ^= 0xff;
          }
          for (auto& cert : reply.certs) {
            cert.order_time += 1;
          }
        }
        to_peer.emplace_back(static_cast<unsigned>(msg.from),
                             std::move(reply));
        break;
      }
      case SmrMessage::Type::kStateReply: {
        if (msg.from < 0 || msg.from == static_cast<int>(index)) {
          break;
        }
        if (!msg.payload.empty()) {
          if (Sha256::Hash(msg.payload) != msg.digest) {
            // Proven forgery: the payload does not hash to the claimed
            // digest. Drop the whole reply — a peer caught lying about the
            // snapshot cannot be trusted for tail certificates either.
            snapshot_payload_rejects_.fetch_add(1, std::memory_order_relaxed);
            break;
          }
          if (msg.seq > r.next_exec_seq) {
            auto* offer = EmplaceCapped(&r.state_offers,
                                        std::make_pair(msg.seq, msg.digest),
                                        kMaxSnapshotOffers);
            if (offer != nullptr) {
              if (offer->payload.empty()) {
                offer->payload = std::move(msg.payload);
              }
              offer->voters.insert(msg.from);
              if (offer->voters.size() >= config_.vouch_quorum()) {
                InstallSnapshot(index, r, msg.seq, msg.digest,
                                offer->payload);
              }
            }
          }
        }
        for (auto& cert : msg.certs) {
          if (cert.seq < r.next_exec_seq) {
            continue;
          }
          auto* offer = EmplaceCapped(
              &r.tail_offers, std::make_pair(cert.seq, CertContentKey(cert)),
              kMaxTailOffers);
          if (offer == nullptr) {
            continue;
          }
          if (offer->voters.empty()) {
            offer->cert = std::move(cert);
          }
          offer->voters.insert(msg.from);
        }
        DrainStateTransfer(index, r, &to_client);
        break;
      }
      case SmrMessage::Type::kReply:
        break;  // replicas never receive replies
    }
  }
  for (const auto& out : to_broadcast) {
    BroadcastFromReplica(index, out);
  }
  for (const auto& out : to_client) {
    SendReplyToClient(index, out);
  }
  for (auto& [target, out] : to_peer) {
    SendToReplica(index, target, std::move(out));
  }
}

// Installs `view`, and — when this replica is its leader — adopts the
// highest-view accepted proposal per seq from the vote quorum's certificates
// (plus its own log) before re-proposing, so in-flight batches survive the
// view change without reordering. Caller holds r.mu.
void SmrCluster::AdoptView(unsigned index, Replica& r, uint64_t view,
                           std::vector<SmrMessage>* out) {
  // Merge certificates: the votes' accepted proposals and executed batches,
  // plus this replica's own log (the new leader may never have voted
  // itself). Certificates below this replica's own frontier are kept: the
  // leader has executed them, but a lagging voter may not have —
  // re-proposing them is the catch-up path for a replica that missed a
  // committed seq. Because accepted proposals are retained across view
  // changes and executed payloads are kept in the executed_batches window,
  // any committed seq within the window has a certificate in every vote
  // quorum (commit and vote quorums intersect in a holder), so the no-op
  // holes below only ever cover seqs that provably did not commit.
  std::map<uint64_t, SmrViewChangeCert> adopted;  // seq -> best cert
  auto consider = [&](const SmrViewChangeCert& cert) {
    auto it = adopted.find(cert.seq);
    if (it == adopted.end() || cert.view > it->second.view) {
      adopted[cert.seq] = cert;
    }
  };
  for (const auto& [voter, vote] : r.view_votes[view]) {
    for (const auto& cert : vote.certs) {
      consider(cert);
    }
  }
  for (const auto& [seq, proposal] : r.proposals) {
    consider(CertFromProposal(seq, proposal.msg));
  }
  for (const auto& [seq, executed] : r.executed_batches) {
    consider(CertFromProposal(seq, executed));
  }

  // The collective checkpoint: the highest (seq, digest) checkpoint pair
  // vouched by f+1 vote-quorum members (this replica's own retained
  // checkpoints included). A laggard below it recovers via snapshot state
  // transfer from those holders; re-proposing below it is useless at best
  // (replicas at or past it abstain) and the new leader never does.
  std::map<std::pair<uint64_t, Bytes>, std::set<int>> checkpoint_vouchers;
  for (const auto& [voter, vote] : r.view_votes[view]) {
    if (vote.checkpoint_seq > 0) {
      checkpoint_vouchers[{vote.checkpoint_seq, vote.checkpoint_digest}]
          .insert(voter);
    }
  }
  for (const auto& cp : r.checkpoints) {
    checkpoint_vouchers[{cp.seq, cp.digest}].insert(static_cast<int>(index));
  }
  uint64_t collective_checkpoint = 0;
  for (const auto& [pair, vouchers] : checkpoint_vouchers) {
    if (vouchers.size() >= config_.vouch_quorum()) {
      collective_checkpoint = std::max(collective_checkpoint, pair.first);
    }
  }

  r.view = view;
  // Accepted proposals are RETAINED (they are future certificates; the
  // current view's leader replaces them seq by seq) — only the vote
  // tallies reset with the view.
  r.accept_votes.clear();
  r.next_seq = r.next_exec_seq;
  for (auto& [id, pending] : r.pending) {
    pending.ordered = false;
    pending.first_seen = env_->Now();
  }
  r.view_votes.erase(r.view_votes.begin(),
                     r.view_votes.upper_bound(r.view));
  for (auto it = r.view_claims.begin(); it != r.view_claims.end();) {
    it = it->second <= r.view ? r.view_claims.erase(it) : std::next(it);
  }

  if (IsLeader(r, index)) {
    // Re-propose every adopted assignment under the new view (same seq,
    // batch and order_time, so replicas that already executed them stay
    // deterministic). Below the frontier these are catch-up proposals for
    // lagging replicas: stored so the failure-detector pass re-sends them
    // until every replica has re-accepted (a one-shot send could race a
    // laggard still gathering view votes and be dropped as stale-view).
    // Above-frontier holes get no-op batches so execution never wedges on
    // a seq nobody in the quorum accepted; holes are never filled below
    // the frontier — those seqs executed real batches here.
    uint64_t horizon = std::max(r.next_exec_seq, collective_checkpoint);
    for (const auto& [seq, cert] : adopted) {
      horizon = std::max(horizon, seq + 1);
    }
    for (const auto& [seq, cert] : adopted) {
      if (seq >= r.next_exec_seq) {
        break;  // std::map: ordered; the loop below covers the rest
      }
      if (seq < collective_checkpoint) {
        continue;  // superseded by the collective checkpoint: never
                   // re-proposed; that laggard snapshots instead
      }
      SmrMessage propose;
      propose.type = SmrMessage::Type::kPropose;
      propose.from = static_cast<int>(index);
      propose.view = r.view;
      propose.seq = seq;
      propose.order_time = cert.order_time;
      propose.batch = cert.batch;
      r.proposals[seq] = Replica::Proposal{propose, env_->Now()};
      out->push_back(std::move(propose));
    }
    // A leader elected below the collective checkpoint (it lagged, but its
    // vote landed in the quorum) must not invent no-op holes for seqs that
    // committed past it elsewhere: proposing starts at the checkpoint and
    // the leader recovers its own gap via snapshot state transfer.
    for (uint64_t seq = std::max(r.next_exec_seq, collective_checkpoint);
         seq < horizon; ++seq) {
      SmrMessage propose;
      propose.type = SmrMessage::Type::kPropose;
      propose.from = static_cast<int>(index);
      propose.view = r.view;
      propose.seq = seq;
      auto it = adopted.find(seq);
      if (it != adopted.end()) {
        propose.order_time = it->second.order_time;
        propose.batch = it->second.batch;
        for (const auto& entry : propose.batch) {
          auto pending_it = r.pending.find(entry.request_id);
          if (pending_it != r.pending.end()) {
            pending_it->second.ordered = true;
          }
        }
      } else {
        propose.order_time = env_->Now();  // hole: no-op batch
      }
      r.proposals[seq] = Replica::Proposal{propose, env_->Now()};
      out->push_back(std::move(propose));
    }
    r.next_seq = horizon;
    LeaderMaybePropose(index, r, out);
  }
}

// Leader: drain pending un-ordered requests into batched proposals, keeping
// at most max_inflight_instances consensus instances outstanding. Caller
// holds r.mu; the proposals are queued into `out` and broadcast by the
// caller post-unlock.
void SmrCluster::LeaderMaybePropose(unsigned index, Replica& r,
                                    std::vector<SmrMessage>* out) {
  if (!IsLeader(r, index)) {
    return;
  }
  const unsigned max_batch = config_.enable_batching
                                 ? std::max(1u, config_.max_batch)
                                 : 1u;
  const unsigned max_inflight = std::max(1u, config_.max_inflight_instances);
  const VirtualDuration accumulation =
      config_.enable_batching ? config_.batch_accumulation_delay : 0;
  const VirtualTime now = env_->Now();
  // One persistent scan position across batches: each pending entry is
  // visited once per call, not once per batch formed.
  auto scan = r.pending.begin();
  for (;;) {
    const uint64_t inflight =
        r.next_seq > r.next_exec_seq ? r.next_seq - r.next_exec_seq : 0;
    if (inflight >= max_inflight) {
      return;  // pipeline full; committed instances re-trigger this
    }
    // Gather the next batch in request-id order.
    std::vector<std::map<uint64_t, PendingRequest>::iterator> chosen;
    VirtualTime oldest = now;
    for (; scan != r.pending.end() && chosen.size() < max_batch; ++scan) {
      if (scan->second.ordered) {
        continue;
      }
      oldest = std::min(oldest, scan->second.first_seen);
      chosen.push_back(scan);
    }
    if (chosen.empty()) {
      return;
    }
    // Accumulation: hold a partial batch until its oldest request has
    // waited the configured delay, so requests arriving within the window
    // ride one instance. The replica loop's wake hint and the
    // failure-detector pass guarantee a timely flush once it falls due.
    if (accumulation > 0 && chosen.size() < max_batch &&
        now - oldest < accumulation) {
      return;
    }
    std::vector<SmrBatchEntry> batch;
    batch.reserve(chosen.size());
    for (auto it : chosen) {
      it->second.ordered = true;
      batch.push_back(SmrBatchEntry{it->first, it->second.payload});
    }
    SmrMessage propose;
    propose.type = SmrMessage::Type::kPropose;
    propose.from = static_cast<int>(index);
    propose.view = r.view;
    propose.seq = r.next_seq++;
    propose.order_time = env_->Now();
    propose.batch = std::move(batch);
    proposed_instances_.fetch_add(1, std::memory_order_relaxed);
    proposed_requests_.fetch_add(propose.batch.size(),
                                 std::memory_order_relaxed);
    // Assignment, not emplace: a proposal retained from an older view may
    // occupy this seq (kept as a certificate); the current view's leader
    // assignment replaces it everywhere, including here.
    r.proposals[propose.seq] = Replica::Proposal{propose, env_->Now()};
    out->push_back(std::move(propose));
  }
}

// Executes committed batches in sequence order, one reply per request.
// Caller holds r.mu; replies are queued into `out`.
void SmrCluster::TryExecute(unsigned index, Replica& r,
                            std::vector<SmrMessage>* out) {
  for (;;) {
    auto proposal_it = r.proposals.find(r.next_exec_seq);
    if (proposal_it == r.proposals.end()) {
      break;
    }
    auto votes_it = r.accept_votes.find(r.next_exec_seq);
    if (votes_it == r.accept_votes.end() ||
        votes_it->second.size() < config_.order_quorum()) {
      break;
    }
    // Prune the vote/proposal state before executing so the leader's
    // re-propose scan stays O(in-flight), not O(history).
    const uint64_t seq = r.next_exec_seq;
    SmrMessage proposal = std::move(proposal_it->second.msg);
    r.proposals.erase(proposal_it);
    r.accept_votes.erase(seq);
    ExecuteCommitted(index, r, proposal, out);
  }
}

void SmrCluster::ExecuteCommitted(unsigned index, Replica& r,
                                  const SmrMessage& proposal,
                                  std::vector<SmrMessage>* out) {
  std::vector<uint64_t> batch_ids;
  batch_ids.reserve(proposal.batch.size());
  for (const auto& entry : proposal.batch) {
    batch_ids.push_back(entry.request_id);
    auto command = CoordCommand::Decode(entry.payload);
    const std::string client = command.ok() ? command->client : std::string();
    auto& client_log = r.client_replies[client];
    Bytes reply_bytes;
    auto cached_it = client_log.find(entry.request_id);
    if (cached_it != client_log.end()) {
      reply_bytes = cached_it->second;  // duplicate ordering; cached reply
      // A retransmission may have re-queued the executed request (e.g. an
      // undecodable payload skips the kRequest cache lookup); drop it so
      // view changes never re-batch a dead entry.
      r.pending.erase(entry.request_id);
    } else {
      CoordReply reply;
      if (command.ok()) {
        reply = r.space.Apply(proposal.order_time, *command);
      } else {
        reply.code = ErrorCode::kCorruption;
      }
      reply_bytes = reply.Encode();
      client_log[entry.request_id] = reply_bytes;
      // Window the per-client table: a client only ever retransmits
      // requests it is still waiting on, which are at most its in-flight
      // set — far fewer than the window.
      while (client_log.size() > kClientReplyWindow) {
        client_log.erase(client_log.begin());
      }
      r.executed_ops++;
      r.pending.erase(entry.request_id);
    }
    out->push_back(MakeReply(index, r, entry.request_id,
                             std::move(reply_bytes)));
  }
  // Record the committed assignment (it validates below-frontier
  // re-proposes). The commit log is a sliding window: a below-frontier
  // re-propose can only reference a seq a lagging leader still holds
  // pending, which is bounded by the client retry lifetime — far less than
  // the window. (Proposals beyond the window are simply not endorsed.)
  r.executed_seqs[r.next_exec_seq] = std::move(batch_ids);
  if (r.next_exec_seq >= kExecutedSeqWindow) {
    r.executed_seqs.erase(r.executed_seqs.begin(),
                          r.executed_seqs.lower_bound(
                              r.next_exec_seq - kExecutedSeqWindow + 1));
  }
  // Retain the executed payloads on the shorter window: they are the
  // certificates that let a view change catch up a lagging replica, and
  // the tail certificates of snapshot state transfer.
  const uint64_t batch_window =
      std::max<uint64_t>(1, config_.executed_batch_window);
  r.executed_batches[r.next_exec_seq] = proposal;
  if (r.next_exec_seq >= batch_window) {
    r.executed_batches.erase(
        r.executed_batches.begin(),
        r.executed_batches.lower_bound(r.next_exec_seq - batch_window + 1));
  }
  r.next_exec_seq++;
  r.last_exec_advance = env_->Now();
  MaybeTakeCheckpoint(index, r);
}

void SmrCluster::MaybeTakeCheckpoint(unsigned index, Replica& r) {
  (void)index;
  if (config_.checkpoint_interval == 0 ||
      r.next_exec_seq % config_.checkpoint_interval != 0) {
    return;
  }
  if (!r.checkpoints.empty() && r.checkpoints.back().seq >= r.next_exec_seq) {
    return;  // an installed snapshot already covers this frontier
  }
  Replica::Checkpoint cp;
  cp.seq = r.next_exec_seq;
  cp.payload = EncodeReplicaSnapshot(r);
  cp.digest = Sha256::Hash(cp.payload);
  r.checkpoints.push_back(std::move(cp));
  while (r.checkpoints.size() > kRetainedCheckpoints) {
    r.checkpoints.pop_front();
  }
  checkpoints_taken_.fetch_add(1, std::memory_order_relaxed);
  // Log GC — the payoff of checkpointing: accepted proposals retained as
  // certificates below the checkpoint are superseded by the snapshot as a
  // catch-up source, so replica memory is bounded by the checkpoint
  // interval and the retained windows instead of growing with history.
  r.proposals.erase(r.proposals.begin(),
                    r.proposals.lower_bound(r.next_exec_seq));
  r.accept_votes.erase(r.accept_votes.begin(),
                       r.accept_votes.lower_bound(r.next_exec_seq));
}

void SmrCluster::InstallSnapshot(unsigned index, Replica& r, uint64_t frontier,
                                 const Bytes& digest, const Bytes& payload) {
  (void)index;
  TupleSpace space;
  std::map<std::string, std::map<uint64_t, Bytes>> client_replies;
  if (!DecodeReplicaSnapshot(payload, &space, &client_replies)) {
    // Digest-vouched payloads decode by construction (the encoder is ours);
    // treat a failure as a rejected offer rather than wedging on it.
    snapshot_payload_rejects_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  r.space = std::move(space);
  r.client_replies = std::move(client_replies);
  r.next_exec_seq = frontier;
  r.next_seq = std::max(r.next_seq, frontier);
  r.last_exec_advance = env_->Now();
  // Truncate the below-frontier proposal/commit logs: everything below the
  // installed checkpoint is superseded by it.
  r.proposals.erase(r.proposals.begin(), r.proposals.lower_bound(frontier));
  r.accept_votes.erase(r.accept_votes.begin(),
                       r.accept_votes.lower_bound(frontier));
  r.executed_seqs.erase(r.executed_seqs.begin(),
                        r.executed_seqs.lower_bound(frontier));
  r.executed_batches.erase(r.executed_batches.begin(),
                           r.executed_batches.lower_bound(frontier));
  // The installed snapshot becomes this replica's own checkpoint: it can
  // vouch for it and serve it onward, and its view-change votes carry it.
  if (r.checkpoints.empty() || r.checkpoints.back().seq < frontier) {
    r.checkpoints.push_back(Replica::Checkpoint{frontier, digest, payload});
    while (r.checkpoints.size() > kRetainedCheckpoints) {
      r.checkpoints.pop_front();
    }
  }
  snapshots_installed_.fetch_add(1, std::memory_order_relaxed);
}

void SmrCluster::DrainStateTransfer(unsigned index, Replica& r,
                                    std::vector<SmrMessage>* out) {
  for (;;) {
    // Replay a tail certificate at the frontier once f+1 repliers agree on
    // its content — at least one of them is correct and executed exactly
    // this batch at this seq, so it is committed.
    bool advanced = false;
    for (auto it = r.tail_offers.lower_bound({r.next_exec_seq, Bytes()});
         it != r.tail_offers.end() && it->first.first == r.next_exec_seq;
         ++it) {
      if (it->second.voters.size() < config_.vouch_quorum()) {
        continue;
      }
      SmrMessage proposal;
      proposal.type = SmrMessage::Type::kPropose;
      proposal.view = r.view;
      proposal.seq = it->second.cert.seq;
      proposal.order_time = it->second.cert.order_time;
      proposal.batch = it->second.cert.batch;
      const uint64_t seq = r.next_exec_seq;
      r.proposals.erase(seq);
      r.accept_votes.erase(seq);
      ExecuteCommitted(index, r, proposal, out);
      advanced = true;
      break;  // maps mutated; restart the scan at the new frontier
    }
    // The ordered path may now connect: live proposals stored while we
    // lagged execute as soon as the frontier reaches them.
    TryExecute(index, r, out);
    PruneTransferState(r);
    if (!advanced) {
      break;
    }
  }
}

void SmrCluster::PruneTransferState(Replica& r) {
  for (auto it = r.state_offers.begin();
       it != r.state_offers.end() && it->first.first <= r.next_exec_seq;) {
    it = r.state_offers.erase(it);
  }
  for (auto it = r.tail_offers.begin();
       it != r.tail_offers.end() && it->first.first < r.next_exec_seq;) {
    it = r.tail_offers.erase(it);
  }
}

// Failure detector: a pending request left unordered past order_timeout makes
// this replica vote for a view change (BFT-SMaRt's client-triggered
// synchronization, simplified). The vote carries this replica's accepted
// proposals as certificates for the new leader's adoption pass.
void SmrCluster::CheckOrderingTimeout(unsigned index, Replica& r) {
  SmrMessage vote;
  bool send = false;
  std::vector<SmrMessage> reproposals;
  {
    std::lock_guard<std::mutex> lock(r.mu);
    if (IsLeader(r, index)) {
      // Leader: re-broadcast proposals that failed to gather an accept
      // quorum in time. A proposal sent in the instant this replica won a
      // view change is dropped by followers still gathering view votes; the
      // exact original message is re-sent (same seq/order_time, so replicas
      // that already stored it stay deterministic) until it commits.
      // Below-frontier entries are catch-up proposals: re-sent until every
      // replica has re-accepted (an order-quorum alone proves nothing
      // about the laggard they exist for).
      VirtualTime now = env_->Now();
      for (auto it = r.proposals.begin(); it != r.proposals.end();) {
        auto& [seq, entry] = *it;
        if (entry.msg.view != r.view) {
          ++it;
          continue;  // retained from an older view: certificate only
        }
        auto votes_it = r.accept_votes.find(seq);
        unsigned votes =
            votes_it == r.accept_votes.end()
                ? 0
                : static_cast<unsigned>(votes_it->second.size());
        if (seq < r.next_exec_seq && votes >= config_.order_quorum() &&
            entry.resends >= kCatchUpResendLimit) {
          // Catch-up entry that will never reach full coverage (a replica
          // is gone): stop re-broadcasting it.
          r.accept_votes.erase(seq);
          it = r.proposals.erase(it);
          continue;
        }
        unsigned needed = seq < r.next_exec_seq ? replica_count()
                                                : config_.order_quorum();
        if (votes < needed && now - entry.last_sent > config_.order_timeout) {
          entry.last_sent = now;
          entry.resends++;
          reproposals.push_back(entry.msg);
        }
        ++it;
      }
      // Flush accumulation-due batches: with a batch_accumulation_delay a
      // partial batch may have been held at arrival time; this pass (and
      // the replica loop's wake hint) proposes it once the delay elapses.
      LeaderMaybePropose(index, r, &reproposals);
    }
  }
  for (const auto& proposal : reproposals) {
    BroadcastFromReplica(index, proposal);
  }
  // Wedge detection: evidence of ordering activity at or above our frontier
  // with no execution progress for an order timeout. The ordered path can
  // no longer supply what is missing (proposals below the live window are
  // not re-sent to us), so ask the peers for a checkpoint and tail.
  SmrMessage state_request;
  bool request_state = false;
  if (config_.checkpoint_interval > 0) {
    std::lock_guard<std::mutex> lock(r.mu);
    VirtualTime now = env_->Now();
    // Drop transfer state the ordered path caught up past (DrainStateTransfer
    // prunes too, but only runs on state replies — a replica unwedged by
    // view-change re-proposes would otherwise hold stale offers forever and
    // keep re-requesting on their evidence).
    PruneTransferState(r);
    const bool evidence =
        (!r.proposals.empty() &&
         r.proposals.rbegin()->first >= r.next_exec_seq) ||
        (!r.accept_votes.empty() &&
         r.accept_votes.rbegin()->first >= r.next_exec_seq) ||
        !r.state_offers.empty() || !r.tail_offers.empty();
    if (evidence && now - r.last_exec_advance > config_.order_timeout &&
        now - r.last_state_request > config_.order_timeout) {
      r.last_state_request = now;
      state_request.type = SmrMessage::Type::kStateRequest;
      state_request.from = static_cast<int>(index);
      state_request.seq = r.next_exec_seq;
      request_state = true;
    }
  }
  if (request_state) {
    state_requests_.fetch_add(1, std::memory_order_relaxed);
    BroadcastFromReplica(index, state_request);
  }
  {
    std::lock_guard<std::mutex> lock(r.mu);
    if (IsLeader(r, index)) {
      return;
    }
    VirtualTime now = env_->Now();
    for (const auto& [request_id, pending] : r.pending) {
      if (!pending.ordered &&
          now - pending.first_seen > config_.order_timeout) {
        uint64_t proposed_view = r.view + 1;
        auto& votes = r.view_votes[proposed_view];
        if (votes.count(static_cast<int>(index)) > 0) {
          return;  // already voted
        }
        // Certificates: every accepted proposal plus the retained executed
        // batches — the new leader adopts the highest view per seq, and
        // below-frontier entries are its catch-up source for laggards. The
        // vote also carries this replica's latest checkpoint, from which
        // the new leader derives the collective checkpoint it must never
        // re-propose below.
        Replica::ViewVote my_vote;
        for (const auto& [seq, proposal] : r.proposals) {
          my_vote.certs.push_back(CertFromProposal(seq, proposal.msg));
        }
        for (const auto& [seq, executed] : r.executed_batches) {
          my_vote.certs.push_back(CertFromProposal(seq, executed));
        }
        if (!r.checkpoints.empty()) {
          my_vote.checkpoint_seq = r.checkpoints.back().seq;
          my_vote.checkpoint_digest = r.checkpoints.back().digest;
        }
        vote.type = SmrMessage::Type::kViewChange;
        vote.from = static_cast<int>(index);
        vote.view = proposed_view;
        vote.seq = my_vote.checkpoint_seq;
        vote.digest = my_vote.checkpoint_digest;
        vote.certs = my_vote.certs;
        votes[static_cast<int>(index)] = std::move(my_vote);
        send = true;
        break;
      }
    }
  }
  if (send) {
    BroadcastFromReplica(index, vote);
  }
}

}  // namespace scfs
