#include "src/coord/smr.h"

#include <cassert>

#include "src/common/logging.h"

namespace scfs {

SmrCluster::SmrCluster(Environment* env, SmrConfig config, uint64_t seed)
    : env_(env), config_(config), client_rng_(seed ^ 0xc11e47ULL) {
  const unsigned n = config_.replica_count();
  replicas_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    auto replica = std::make_unique<Replica>(env_);
    replica->rng = Rng(seed + i * 1299721ULL);
    replicas_.push_back(std::move(replica));
  }
  for (unsigned i = 0; i < n; ++i) {
    replicas_[i]->thread = std::thread([this, i] { ReplicaLoop(i); });
  }
}

SmrCluster::~SmrCluster() { Shutdown(); }

void SmrCluster::Shutdown() {
  if (shutdown_.exchange(true)) {
    return;
  }
  for (auto& replica : replicas_) {
    replica->inbox.Close();
  }
  for (auto& replica : replicas_) {
    if (replica->thread.joinable()) {
      replica->thread.join();
    }
  }
  std::lock_guard<std::mutex> lock(clients_mu_);
  for (auto& [id, queue] : client_queues_) {
    queue->Close();
  }
}

void SmrCluster::CrashReplica(unsigned index) {
  replicas_[index]->crashed.store(true);
}

void SmrCluster::SetReplicaByzantine(unsigned index, bool byzantine) {
  replicas_[index]->byzantine.store(byzantine);
}

uint64_t SmrCluster::current_view() const {
  uint64_t view = 0;
  for (const auto& replica : replicas_) {
    std::lock_guard<std::mutex> lock(replica->mu);
    view = std::max(view, replica->view);
  }
  return view;
}

uint64_t SmrCluster::executed_count(unsigned replica) const {
  std::lock_guard<std::mutex> lock(replicas_[replica]->mu);
  return replicas_[replica]->executed_ops;
}

void SmrCluster::SendToReplica(unsigned from_replica, unsigned to,
                               SmrMessage msg) {
  VirtualDuration delay = 0;
  if (from_replica != to) {
    std::lock_guard<std::mutex> lock(replicas_[from_replica]->mu);
    delay = config_.replica_link.Sample(replicas_[from_replica]->rng,
                                        msg.payload.size());
  }
  replicas_[to]->inbox.Push(std::move(msg), env_->Now() + delay);
}

void SmrCluster::BroadcastFromReplica(unsigned from, const SmrMessage& msg) {
  for (unsigned i = 0; i < replicas_.size(); ++i) {
    SendToReplica(from, i, msg);
  }
}

void SmrCluster::SendReplyToClient(unsigned from_replica,
                                   const SmrMessage& reply) {
  std::shared_ptr<DelayedQueue<SmrMessage>> queue;
  {
    std::lock_guard<std::mutex> lock(clients_mu_);
    auto it = client_queues_.find(reply.request_id);
    if (it == client_queues_.end()) {
      return;  // client already satisfied and gone
    }
    queue = it->second;
  }
  const LatencyModel& link =
      config_.client_links.empty()
          ? config_.client_link
          : config_.client_links[from_replica % config_.client_links.size()];
  VirtualDuration delay;
  {
    std::lock_guard<std::mutex> lock(replicas_[from_replica]->mu);
    delay = link.Sample(replicas_[from_replica]->rng, reply.payload.size());
  }
  reply_bytes_out_.fetch_add(reply.payload.size(), std::memory_order_relaxed);
  queue->Push(reply, env_->Now() + delay);
}

Result<CoordReply> SmrCluster::Execute(const CoordCommand& command) {
  if (shutdown_.load()) {
    return UnavailableError("smr cluster shut down");
  }
  const uint64_t request_id = next_request_id_.fetch_add(1);
  auto queue = std::make_shared<DelayedQueue<SmrMessage>>(env_);
  {
    std::lock_guard<std::mutex> lock(clients_mu_);
    client_queues_[request_id] = queue;
  }

  SmrMessage request;
  request.type = SmrMessage::Type::kRequest;
  request.from = -1;
  request.request_id = request_id;
  request.payload = command.Encode();

  auto broadcast_request = [&] {
    for (unsigned i = 0; i < replicas_.size(); ++i) {
      const LatencyModel& link =
          config_.client_links.empty()
              ? config_.client_link
              : config_.client_links[i % config_.client_links.size()];
      VirtualDuration delay;
      {
        std::lock_guard<std::mutex> lock(rng_mu_);
        delay = link.Sample(client_rng_, request.payload.size());
      }
      replicas_[i]->inbox.Push(request, env_->Now() + delay);
    }
  };
  broadcast_request();

  std::map<int, Bytes> replies;  // replica -> reply payload
  int retries = 0;
  for (;;) {
    auto msg = queue->PopFor(config_.client_timeout);
    if (shutdown_.load()) {
      return UnavailableError("smr cluster shut down");
    }
    if (!msg.has_value()) {
      if (++retries > config_.max_client_retries) {
        std::lock_guard<std::mutex> lock(clients_mu_);
        client_queues_.erase(request_id);
        return UnavailableError("coordination service not responding");
      }
      broadcast_request();
      continue;
    }
    if (msg->type != SmrMessage::Type::kReply ||
        msg->request_id != request_id) {
      continue;
    }
    replies[msg->from] = msg->payload;
    unsigned votes = 0;
    for (const auto& [from, payload] : replies) {
      if (payload == msg->payload) {
        ++votes;
      }
    }
    if (votes >= config_.reply_quorum()) {
      {
        std::lock_guard<std::mutex> lock(clients_mu_);
        client_queues_.erase(request_id);
      }
      queue->Close();
      // Charge the modelled protocol latency of one coordination access:
      // request one-way + leader ordering (2 inter-replica one-ways) + reply
      // one-way. (The client's actual wait happens on the reply queue,
      // outside Environment::Sleep, so it is not charged automatically.)
      {
        std::lock_guard<std::mutex> lock(rng_mu_);
        const LatencyModel& link = config_.client_links.empty()
                                       ? config_.client_link
                                       : config_.client_links[0];
        VirtualDuration modeled =
            link.Sample(client_rng_, request.payload.size()) +
            config_.replica_link.Sample(client_rng_, request.payload.size()) +
            config_.replica_link.Sample(client_rng_, 64) +
            link.Sample(client_rng_, msg->payload.size());
        Environment::AddThreadCharge(modeled);
      }
      return CoordReply::Decode(msg->payload);
    }
  }
}

void SmrCluster::ReplicaLoop(unsigned index) {
  Replica& r = *replicas_[index];
  for (;;) {
    auto msg = r.inbox.PopFor(config_.order_timeout);
    if (shutdown_.load()) {
      return;
    }
    if (r.inbox.closed() && !msg.has_value()) {
      return;
    }
    if (r.crashed.load()) {
      continue;  // crashed replicas consume and drop everything
    }
    if (msg.has_value()) {
      HandleMessage(index, r, std::move(*msg));
      // Drain everything already deliverable before consulting the failure
      // detector: a replica that was briefly descheduled must not vote for a
      // view change while the leader's proposal sits in its inbox.
      while (auto more = r.inbox.TryPop()) {
        if (r.crashed.load()) {
          break;
        }
        HandleMessage(index, r, std::move(*more));
      }
    }
    CheckOrderingTimeout(index, r);
  }
}

void SmrCluster::HandleMessage(unsigned index, Replica& r, SmrMessage msg) {
  std::vector<SmrMessage> to_broadcast;
  std::vector<SmrMessage> to_client;
  {
    std::lock_guard<std::mutex> lock(r.mu);
    switch (msg.type) {
      case SmrMessage::Type::kRequest: {
        auto executed_it = r.executed.find(msg.request_id);
        if (executed_it != r.executed.end()) {
          // Retransmission of an executed request: resend the cached reply.
          SmrMessage reply;
          reply.type = SmrMessage::Type::kReply;
          reply.from = static_cast<int>(index);
          reply.request_id = msg.request_id;
          reply.payload = executed_it->second;
          if (r.byzantine.load() && !reply.payload.empty()) {
            reply.payload[0] ^= 0xff;
          }
          to_client.push_back(std::move(reply));
          break;
        }
        r.pending.emplace(msg.request_id,
                          PendingRequest{msg.payload, env_->Now(), false});
        LeaderMaybePropose(index, r, &to_broadcast);
        break;
      }
      case SmrMessage::Type::kPropose: {
        if (msg.view != r.view ||
            msg.from != static_cast<int>(msg.view % replica_count())) {
          break;  // stale view or impostor leader
        }
        if (msg.seq < r.next_exec_seq) {
          // Below the execution frontier (a same-view re-propose raced us,
          // or a lagging new leader re-orders an already-executed seq). Vote
          // accept only when the proposal matches the request this replica
          // executed at that seq — the vote helps slower replicas commit the
          // same order — and abstain on a conflict: endorsing a different
          // request at an executed seq would help commit a divergent order.
          // (A quorum of replicas that all lost the original assignment in
          // the view change can still commit a conflicting one without this
          // replica's vote — closing that window needs a view-change
          // certificate protocol, a known simplification of this SMR; the
          // conflicting request stays pending here, so the failure detector
          // keeps rotating leaders until a compatible assignment appears.)
          auto seq_it = r.executed_seqs.find(msg.seq);
          if (seq_it != r.executed_seqs.end() &&
              seq_it->second == msg.request_id) {
            SmrMessage accept;
            accept.type = SmrMessage::Type::kAccept;
            accept.from = static_cast<int>(index);
            accept.view = msg.view;
            accept.seq = msg.seq;
            accept.request_id = msg.request_id;
            to_broadcast.push_back(std::move(accept));
          }
          break;
        }
        if (r.proposals.count(msg.seq) == 0) {
          r.proposals.emplace(msg.seq, Replica::Proposal{msg, env_->Now()});
        }
        auto pending_it = r.pending.find(msg.request_id);
        if (pending_it != r.pending.end()) {
          pending_it->second.ordered = true;
        }
        SmrMessage accept;
        accept.type = SmrMessage::Type::kAccept;
        accept.from = static_cast<int>(index);
        accept.view = msg.view;
        accept.seq = msg.seq;
        accept.request_id = msg.request_id;
        to_broadcast.push_back(std::move(accept));
        TryExecute(index, r, &to_client);
        break;
      }
      case SmrMessage::Type::kAccept: {
        if (msg.view != r.view || msg.seq < r.next_exec_seq) {
          break;  // stale view, or accept for an already-executed seq
        }
        r.accept_votes[msg.seq].insert(msg.from);
        TryExecute(index, r, &to_client);
        break;
      }
      case SmrMessage::Type::kViewChange: {
        if (msg.view <= r.view) {
          break;
        }
        r.view_votes[msg.view].insert(msg.from);
        if (r.view_votes[msg.view].size() >= config_.order_quorum()) {
          r.view = msg.view;
          r.proposals.clear();
          r.accept_votes.clear();
          r.next_seq = r.next_exec_seq;
          for (auto& [id, pending] : r.pending) {
            pending.ordered = false;
            pending.first_seen = env_->Now();
          }
          LeaderMaybePropose(index, r, &to_broadcast);
        }
        break;
      }
      case SmrMessage::Type::kReply:
        break;  // replicas never receive replies
    }
  }
  for (const auto& out : to_broadcast) {
    BroadcastFromReplica(index, out);
  }
  for (const auto& out : to_client) {
    SendReplyToClient(index, out);
  }
}

// Leader: order every pending un-ordered request. Caller holds r.mu; the
// proposals are queued into `out` and broadcast by the caller post-unlock.
void SmrCluster::LeaderMaybePropose(unsigned index, Replica& r,
                                    std::vector<SmrMessage>* out) {
  if (!IsLeader(r, index)) {
    return;
  }
  for (auto& [request_id, pending] : r.pending) {
    if (pending.ordered || r.executed.count(request_id) > 0) {
      continue;
    }
    pending.ordered = true;
    SmrMessage propose;
    propose.type = SmrMessage::Type::kPropose;
    propose.from = static_cast<int>(index);
    propose.view = r.view;
    propose.seq = r.next_seq++;
    propose.request_id = request_id;
    propose.order_time = env_->Now();
    propose.payload = pending.payload;
    out->push_back(std::move(propose));
  }
}

// Executes committed commands in sequence order. Caller holds r.mu; replies
// are queued into `out`.
void SmrCluster::TryExecute(unsigned index, Replica& r,
                            std::vector<SmrMessage>* out) {
  for (;;) {
    auto proposal_it = r.proposals.find(r.next_exec_seq);
    if (proposal_it == r.proposals.end()) {
      break;
    }
    auto votes_it = r.accept_votes.find(r.next_exec_seq);
    if (votes_it == r.accept_votes.end() ||
        votes_it->second.size() < config_.order_quorum()) {
      break;
    }
    const SmrMessage& proposal = proposal_it->second.msg;
    Bytes reply_bytes;
    auto executed_it = r.executed.find(proposal.request_id);
    if (executed_it != r.executed.end()) {
      reply_bytes = executed_it->second;  // duplicate ordering; cached reply
    } else {
      auto command = CoordCommand::Decode(proposal.payload);
      CoordReply reply;
      if (command.ok()) {
        reply = r.space.Apply(proposal.order_time, *command);
      } else {
        reply.code = ErrorCode::kCorruption;
      }
      reply_bytes = reply.Encode();
      r.executed[proposal.request_id] = reply_bytes;
      r.executed_ops++;
      r.pending.erase(proposal.request_id);
    }
    SmrMessage reply;
    reply.type = SmrMessage::Type::kReply;
    reply.from = static_cast<int>(index);
    reply.request_id = proposal.request_id;
    reply.payload = reply_bytes;
    if (r.byzantine.load() && !reply.payload.empty()) {
      reply.payload[0] ^= 0xff;  // byzantine replica lies to clients
    }
    out->push_back(std::move(reply));
    // Record the committed assignment (it validates below-frontier
    // re-proposes), then prune the vote/proposal state so the leader's
    // re-propose scan stays O(in-flight), not O(history). The commit log is
    // itself a sliding window: a below-frontier re-propose can only
    // reference a seq a lagging leader still holds pending, which is
    // bounded by the client retry lifetime — far less than the window.
    // (Proposals beyond the window are simply not endorsed.)
    constexpr uint64_t kExecutedSeqWindow = 4096;
    r.executed_seqs[r.next_exec_seq] = proposal.request_id;
    if (r.next_exec_seq >= kExecutedSeqWindow) {
      r.executed_seqs.erase(r.executed_seqs.begin(),
                            r.executed_seqs.lower_bound(
                                r.next_exec_seq - kExecutedSeqWindow + 1));
    }
    r.accept_votes.erase(r.next_exec_seq);
    r.proposals.erase(proposal_it);
    r.next_exec_seq++;
  }
}

// Failure detector: a pending request left unordered past order_timeout makes
// this replica vote for a view change (BFT-SMaRt's client-triggered
// synchronization, simplified).
void SmrCluster::CheckOrderingTimeout(unsigned index, Replica& r) {
  SmrMessage vote;
  bool send = false;
  std::vector<SmrMessage> reproposals;
  {
    std::lock_guard<std::mutex> lock(r.mu);
    if (IsLeader(r, index)) {
      // Leader: re-broadcast proposals that failed to gather an accept
      // quorum in time. A proposal sent in the instant this replica won a
      // view change is dropped by followers still gathering view votes; the
      // exact original message is re-sent (same seq/order_time, so replicas
      // that already stored it stay deterministic) until it commits.
      VirtualTime now = env_->Now();
      for (auto it = r.proposals.lower_bound(r.next_exec_seq);
           it != r.proposals.end(); ++it) {
        auto& [seq, entry] = *it;
        auto votes_it = r.accept_votes.find(seq);
        unsigned votes =
            votes_it == r.accept_votes.end()
                ? 0
                : static_cast<unsigned>(votes_it->second.size());
        if (votes < config_.order_quorum() &&
            now - entry.last_sent > config_.order_timeout) {
          entry.last_sent = now;
          reproposals.push_back(entry.msg);
        }
      }
    }
  }
  for (const auto& proposal : reproposals) {
    BroadcastFromReplica(index, proposal);
  }
  {
    std::lock_guard<std::mutex> lock(r.mu);
    if (IsLeader(r, index)) {
      return;
    }
    VirtualTime now = env_->Now();
    for (const auto& [request_id, pending] : r.pending) {
      if (!pending.ordered &&
          now - pending.first_seen > config_.order_timeout) {
        uint64_t proposed_view = r.view + 1;
        if (r.view_votes[proposed_view].count(static_cast<int>(index)) > 0) {
          return;  // already voted
        }
        r.view_votes[proposed_view].insert(static_cast<int>(index));
        vote.type = SmrMessage::Type::kViewChange;
        vote.from = static_cast<int>(index);
        vote.view = proposed_view;
        send = true;
        break;
      }
    }
  }
  if (send) {
    BroadcastFromReplica(index, vote);
  }
}

}  // namespace scfs
