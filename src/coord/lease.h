// Lease-delegated metadata caching (DESIGN.md "Lease-delegated caching",
// ROADMAP item 3; credit-delegation in the style of cortx-motr's resource
// manager: revocable, time-bounded rights handed to clients so the common
// case needs no coordination round).
//
// Two pieces live here:
//
//  - LeaseManager: a deployment-wide registry connecting the coordination
//    stub to the lease holders (metadata caches, lingering lock owners).
//    When a mutation's reply reports revoked leases, the manager notifies
//    every registered holder BEFORE the mutation is acknowledged to its
//    submitter — the no-stale-read-after-ack rule. It also brokers lock
//    linger (a holder keeps a lock "lingering" after its last release; a
//    contender asks the manager to have it released for real) and carries
//    the chaos hook that suspends granting during lease-expiry fault
//    windows.
//
//  - LeasedCoordination: a decorator around the real CoordinationService
//    that feeds every reply's revocation notices through the manager. The
//    ordered path already serializes grants with mutations; the decorator's
//    only job is delivering the notices synchronously on the ack path.
//
// Holder callbacks are plain std::functions so src/coord stays free of any
// dependency on src/scfs.

#ifndef SCFS_COORD_LEASE_H_
#define SCFS_COORD_LEASE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/coord/coordination_service.h"

namespace scfs {

struct LeaseCounters {
  uint64_t grants = 0;           // ordered kLeaseAcquire commands that succeeded
  uint64_t revocations = 0;      // lease records revoked by mutations
  uint64_t notifications = 0;    // holder callbacks invoked (invalidations)
  uint64_t local_hits = 0;       // metadata reads served from a live lease
  uint64_t linger_handoffs = 0;  // lingering locks released on a contender's ask
};

class LeaseManager {
 public:
  using RevokeFn = std::function<void(const std::string& prefix)>;
  // Returns true if the lingering lock was released (or already gone).
  using ReleaseFn = std::function<bool()>;

  // -- Holder registry ------------------------------------------------------

  // Registers a revocation sink; every revoked prefix is fanned out to all
  // registered holders (holders ignore prefixes they don't cache). Returns
  // an id for Unregister.
  uint64_t RegisterHolder(RevokeFn on_revoke);
  void UnregisterHolder(uint64_t id);

  // Called by the coordination stub with the revocations a mutation's reply
  // carried, before that reply reaches the submitter. Callbacks run outside
  // the registry lock (a holder may re-enter the manager).
  void NotifyRevocations(const std::vector<LeaseRevocation>& revoked);

  // Invalidates every holder's entire lease state (prefix "" covers all).
  void InvalidateAll();

  // -- Lock-linger brokering ------------------------------------------------

  // A lock holder that keeps its lock past the last local release registers
  // the lingering lock here so contenders can claim it without waiting out
  // the server-side lease.
  void RegisterLingering(const std::string& lock_key, ReleaseFn release);
  void UnregisterLingering(const std::string& lock_key);

  // A contender that got kBusy asks the lingering holder (if any, and if
  // it's in this deployment) to release for real. Returns true if a
  // lingering lock was released and the contender should retry.
  bool RequestLockRelease(const std::string& lock_key);

  // -- Chaos hook (FaultKind::kLeaseExpiry) ---------------------------------

  // While suspended, holders must not install new grants (AllowsGrants()
  // gates acquisition) and all current leases are invalidated — clients
  // fall back to the anchored coordination path for the window's duration.
  void SetGrantsSuspended(bool suspended);
  bool AllowsGrants() const { return !grants_suspended_.load(); }

  // -- Counters -------------------------------------------------------------

  void RecordGrant() { grants_.fetch_add(1); }
  void RecordLocalHit() { local_hits_.fetch_add(1); }
  LeaseCounters counters() const;

 private:
  mutable std::mutex mu_;
  std::map<uint64_t, RevokeFn> holders_;
  std::map<std::string, ReleaseFn> lingering_;
  uint64_t next_holder_id_ = 1;
  std::atomic<bool> grants_suspended_{false};
  std::atomic<uint64_t> grants_{0};
  std::atomic<uint64_t> revocations_{0};
  std::atomic<uint64_t> notifications_{0};
  std::atomic<uint64_t> local_hits_{0};
  std::atomic<uint64_t> linger_handoffs_{0};
};

// Decorator: forwards everything to the wrapped service and delivers each
// reply's revocation notices through the LeaseManager synchronously, before
// the reply reaches the submitter.
class LeasedCoordination : public CoordinationService {
 public:
  LeasedCoordination(std::unique_ptr<CoordinationService> inner,
                     LeaseManager* manager)
      : inner_(std::move(inner)), manager_(manager) {}

  Result<CoordReply> Submit(const CoordCommand& command) override;
  Future<Result<CoordReply>> SubmitAsync(const CoordCommand& command) override;
  Bytes StateDigest() override { return inner_->StateDigest(); }
  unsigned partition_count() const override {
    return inner_->partition_count();
  }
  unsigned PartitionOf(const std::string& key) const override {
    return inner_->PartitionOf(key);
  }

  CoordinationService* inner() { return inner_.get(); }

 private:
  std::unique_ptr<CoordinationService> inner_;
  LeaseManager* manager_;
};

}  // namespace scfs

#endif  // SCFS_COORD_LEASE_H_
