// CoordinationService: the abstraction SCFS's metadata and lock services are
// written against (paper §2.3 "modular coordination"). Implementations:
// LocalCoordination (one DepSpace server on a single VM — the AWS backend)
// and ReplicatedCoordination (DepSpace over BFT-SMaRt-style SMR across four
// computing clouds — the CoC backend).

#ifndef SCFS_COORD_COORDINATION_SERVICE_H_
#define SCFS_COORD_COORDINATION_SERVICE_H_

#include <string>
#include <vector>

#include "src/common/future.h"
#include "src/coord/command.h"
#include "src/sim/time.h"

namespace scfs {

struct CoordEntry {
  Bytes value;
  uint64_t version = 0;
};

struct CoordLock {
  uint64_t token = 0;
};

// The result of an ordered lease grant (see DESIGN.md "Lease-delegated
// caching"): the holder may serve `entries` — a snapshot of everything under
// the leased prefix it is allowed to read — locally until `expires_at`
// (virtual time, compared against the same clock the state machine expires
// with) or until a revocation notice arrives, whichever is first.
struct LeaseGrant {
  uint64_t epoch = 0;
  VirtualTime expires_at = 0;
  std::vector<CoordEntryView> entries;
};

class CoordinationService {
 public:
  virtual ~CoordinationService() = default;

  // Submits one totally-ordered command and waits for its reply.
  virtual Result<CoordReply> Submit(const CoordCommand& command) = 0;

  // Asynchronous submission: returns a future for the reply so callers can
  // overlap coordination rounds with storage work. The default adapter runs
  // Submit inline — the caller is charged by the blocking call itself, so
  // the ready future carries zero charge (never double-counted). Replicated
  // implementations override this with a real executor dispatch whose future
  // carries the round's modelled latency.
  virtual Future<Result<CoordReply>> SubmitAsync(const CoordCommand& command) {
    return Future<Result<CoordReply>>::Ready(Submit(command));
  }

  // Operations surface: a SHA-256 fingerprint of the coordination state
  // (deterministic snapshot serialization), comparable across replicas and
  // restarts of the same deployment kind. Empty when the implementation
  // has no snapshot support, or (replicated) while no digest has quorum
  // backing. The partitioned implementation combines per-partition quorum
  // digests deterministically (sorted by partition index).
  virtual Bytes StateDigest() { return {}; }

  // Partition topology. A single-server or single-cluster service is one
  // partition holding every key; PartitionedCoordination overrides these
  // with its routing map. Callers that perform multi-key operations (the
  // metadata service's subtree rename) consult partition_count() to decide
  // between the atomic single-partition path and the cross-partition
  // intent-record protocol.
  virtual unsigned partition_count() const { return 1; }
  virtual unsigned PartitionOf(const std::string& key) const {
    (void)key;
    return 0;
  }

  // -- Typed wrappers ------------------------------------------------------

  Status Write(const std::string& client, const std::string& key,
               const Bytes& value);
  Status ConditionalCreate(const std::string& client, const std::string& key,
                           const Bytes& value);
  // Returns the new version on success; kConflict if `expected_version`
  // does not match.
  Result<uint64_t> CompareAndSwap(const std::string& client,
                                  const std::string& key, const Bytes& value,
                                  uint64_t expected_version);
  Result<CoordEntry> Read(const std::string& client, const std::string& key);
  Result<std::vector<CoordEntryView>> ReadPrefix(const std::string& client,
                                                 const std::string& prefix);
  Status Remove(const std::string& client, const std::string& key);
  // Ephemeral lock with a lease; kBusy if held by another client.
  Result<CoordLock> TryLock(const std::string& client, const std::string& name,
                            VirtualDuration lease);
  Status RenewLock(const std::string& client, const std::string& name,
                   uint64_t token, VirtualDuration lease);
  Status Unlock(const std::string& client, const std::string& name,
                uint64_t token);
  Status RenamePrefix(const std::string& client, const std::string& old_prefix,
                      const std::string& new_prefix);
  Status GrantEntryAccess(const std::string& owner, const std::string& key,
                          const std::string& grantee, bool read, bool write);
  // Cross-partition move primitives (see src/coord/partitioned_coordination.h
  // and the metadata service's intent-record rename). Export returns, for
  // every entry under `prefix`, an opaque payload preserving value, version
  // and ACL; Import installs such a payload under a new key, idempotently.
  // Both are always totally ordered.
  Result<std::vector<CoordEntryView>> ExportPrefix(const std::string& client,
                                                   const std::string& prefix);
  Status ImportEntry(const std::string& client, const std::string& key,
                     const Bytes& payload);
  // Lease-delegated caching: acquire (or renew — extend-only) a read lease
  // on a key prefix for `session`, returning the grant snapshot. Both ride
  // the ordered path so grants serialize with mutations.
  Result<LeaseGrant> AcquireLease(const std::string& client,
                                  const std::string& session,
                                  const std::string& prefix,
                                  VirtualDuration ttl);
  Status ReleaseLease(const std::string& client, const std::string& session,
                      const std::string& prefix);

  // -- Asynchronous typed wrappers -----------------------------------------
  // Futures over SubmitAsync; the charge semantics follow the future
  // contract (a waiter is charged the producer's modelled round latency).
  // Only pairs of commands that commute may be issued concurrently — the
  // replication layer gives no cross-command ordering guarantee for
  // in-flight submissions.

  Future<Status> WriteAsync(const std::string& client, const std::string& key,
                            const Bytes& value);
  Future<Result<CoordEntry>> ReadAsync(const std::string& client,
                                       const std::string& key);
  Future<Status> RemoveAsync(const std::string& client, const std::string& key);
  Future<Status> RenewLockAsync(const std::string& client,
                                const std::string& name, uint64_t token,
                                VirtualDuration lease);
  Future<Status> UnlockAsync(const std::string& client, const std::string& name,
                             uint64_t token);
  Future<Status> ImportEntryAsync(const std::string& client,
                                  const std::string& key,
                                  const Bytes& payload);
};

// The key a partitioned router hashes to place `key`. Keys carrying a
// co-location prefix — "ri:" (rename intent) or "rc:" (rename commit) —
// route as if the prefix were absent, so an auxiliary record lands on the
// partition of the key range it describes: the intent record shares the
// source subtree's partition ("prepare on the source partition"), the
// commit marker the destination's.
std::string PartitionRoutingKey(const std::string& key);

}  // namespace scfs

#endif  // SCFS_COORD_COORDINATION_SERVICE_H_
