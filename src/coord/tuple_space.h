// TupleSpace: the deterministic state machine at the heart of the
// coordination service (paper §2.3, §3.2 — DepSpace with the trigger
// extension for rename).
//
// It stores versioned, access-controlled entries (SCFS metadata tuples) and
// ephemeral locks whose leases expire at command-execution time, so a crashed
// client's locks vanish automatically (§2.5.1, locking service requirement).
// All mutation goes through Apply(now, command); replicas that execute the
// same command sequence with the same timestamps reach identical states.
//
// Snapshot()/Restore() serialize that replicated state deterministically
// (std::map iteration order is the serialization order), so two replicas at
// the same execution frontier produce byte-identical snapshots and therefore
// identical SHA-256 state digests — the property the SMR snapshot state
// transfer's f+1 digest-vouching rule rests on (see DESIGN.md, "State
// transfer & checkpoints").
//
// Read leases (DESIGN.md "Lease-delegated caching"): kLeaseAcquire records a
// time-bounded lease on a key prefix and returns a snapshot of the entries
// under it; every entry mutation revokes the leases covering its key IN ITS
// OWN ORDERED SLOT and reports them in its reply (CoordReply::revoked), so
// the submitting stub can invalidate local holders before the mutation is
// acknowledged. Leases expire at command-execution time like locks, are part
// of Snapshot()/Restore(), and therefore ride checkpoints, state transfer
// and view changes unchanged.

#ifndef SCFS_COORD_TUPLE_SPACE_H_
#define SCFS_COORD_TUPLE_SPACE_H_

#include <map>
#include <set>
#include <string>

#include "src/coord/command.h"
#include "src/sim/time.h"

namespace scfs {

class TupleSpace {
 public:
  CoordReply Apply(VirtualTime now, const CoordCommand& command);

  // Evaluates a read-only command against the current committed state
  // WITHOUT any side effect (in particular, no lock-lease expiry — expiring
  // at a non-ordered local time would make replica states diverge). This is
  // what replicas run for the read-only fast path; non-read-only commands
  // get kInvalidArgument.
  CoordReply Query(const CoordCommand& command) const;

  // Deterministic serialization of the full replicated state (entries with
  // ACLs and versions, locks with leases, the token counter). Replicas at
  // the same execution frontier produce byte-identical snapshots.
  Bytes Snapshot() const;

  // Replaces the current state with a previously serialized snapshot.
  // Returns false (leaving the state untouched) on a malformed payload.
  bool Restore(ConstByteSpan snapshot);

  // SHA-256 over Snapshot(): the state digest replicas vouch with during
  // snapshot-based state transfer.
  Bytes StateDigest() const;

  // Introspection for tests and capacity accounting (Figure 11a).
  size_t entry_count() const { return entries_.size(); }
  size_t lock_count() const { return locks_.size(); }
  size_t lease_count() const { return leases_.size(); }
  uint64_t stored_bytes() const { return stored_bytes_; }

 private:
  struct EntryAcl {
    std::string owner;
    std::set<std::string> readers;
    std::set<std::string> writers;

    // "*" grants everyone (used for world-readable registry tuples). The
    // coordination admin principal (the elastic repartitioning controller)
    // passes every check: a range migration moves entries owned by
    // arbitrary users.
    bool AllowsRead(const std::string& who) const {
      return who == owner || who == kCoordAdminPrincipal ||
             readers.count(who) > 0 || readers.count("*") > 0;
    }
    bool AllowsWrite(const std::string& who) const {
      return who == owner || who == kCoordAdminPrincipal ||
             writers.count(who) > 0 || writers.count("*") > 0;
    }
  };

  struct Entry {
    Bytes value;
    uint64_t version = 0;
    EntryAcl acl;
  };

  struct Lock {
    std::string owner;
    uint64_t token = 0;
    VirtualTime expires_at = 0;
  };

  // A read lease on a key prefix. Multiple holders share one lease record
  // (read leases never conflict with each other — only with mutations); the
  // epoch rises monotonically across grants so a holder can tell a re-grant
  // from the lease it was revoked out of.
  struct Lease {
    uint64_t epoch = 0;
    VirtualTime expires_at = 0;
    std::set<std::string> holders;
  };

  void ExpireLocks(VirtualTime now);
  void ExpireLeases(VirtualTime now);

  // Erases every active lease whose prefix covers `key` and records it in
  // reply->revoked. Called by every entry mutation before it acks.
  void RevokeCoveringLeases(const std::string& key, CoordReply* reply);
  // RenamePrefix variant: revokes leases overlapping either subtree.
  void RevokeOverlappingLeases(const std::string& prefix, CoordReply* reply);

  CoordReply Write(const CoordCommand& cmd);
  CoordReply ConditionalCreate(const CoordCommand& cmd);
  CoordReply CompareAndSwap(const CoordCommand& cmd);
  CoordReply Read(const CoordCommand& cmd) const;
  CoordReply ReadPrefix(const CoordCommand& cmd) const;
  CoordReply Remove(const CoordCommand& cmd);
  CoordReply TryLock(VirtualTime now, const CoordCommand& cmd);
  CoordReply RenewLock(VirtualTime now, const CoordCommand& cmd);
  CoordReply Unlock(const CoordCommand& cmd);
  CoordReply RenamePrefix(const CoordCommand& cmd);
  CoordReply SetEntryAcl(const CoordCommand& cmd);
  CoordReply ExportPrefix(const CoordCommand& cmd) const;
  CoordReply ImportEntry(const CoordCommand& cmd);
  CoordReply LeaseAcquire(VirtualTime now, const CoordCommand& cmd);
  CoordReply LeaseRelease(const CoordCommand& cmd);

  // Entry payload carried between ExportPrefix and ImportEntry: the value,
  // tuple version and full ACL, so a cross-partition move preserves grants
  // exactly like the single-partition rename trigger does.
  static Bytes EncodeEntryPayload(const Entry& entry);
  static bool DecodeEntryPayload(ConstByteSpan payload, Entry* out);

  std::map<std::string, Entry> entries_;
  std::map<std::string, Lock> locks_;
  std::map<std::string, Lease> leases_;
  uint64_t next_token_ = 1;
  uint64_t next_lease_epoch_ = 1;
  uint64_t stored_bytes_ = 0;
};

}  // namespace scfs

#endif  // SCFS_COORD_TUPLE_SPACE_H_
