#include "src/coord/coordination_service.h"

namespace scfs {

Status CoordinationService::Write(const std::string& client,
                                  const std::string& key, const Bytes& value) {
  CoordCommand cmd;
  cmd.op = CoordOp::kWrite;
  cmd.client = client;
  cmd.key = key;
  cmd.value = value;
  ASSIGN_OR_RETURN(CoordReply reply, Submit(cmd));
  return reply.ToStatus("coord write " + key);
}

Status CoordinationService::ConditionalCreate(const std::string& client,
                                              const std::string& key,
                                              const Bytes& value) {
  CoordCommand cmd;
  cmd.op = CoordOp::kConditionalCreate;
  cmd.client = client;
  cmd.key = key;
  cmd.value = value;
  ASSIGN_OR_RETURN(CoordReply reply, Submit(cmd));
  return reply.ToStatus("coord create " + key);
}

Result<uint64_t> CoordinationService::CompareAndSwap(
    const std::string& client, const std::string& key, const Bytes& value,
    uint64_t expected_version) {
  CoordCommand cmd;
  cmd.op = CoordOp::kCompareAndSwap;
  cmd.client = client;
  cmd.key = key;
  cmd.value = value;
  cmd.a = expected_version;
  ASSIGN_OR_RETURN(CoordReply reply, Submit(cmd));
  RETURN_IF_ERROR(reply.ToStatus("coord cas " + key));
  return reply.a;
}

Result<CoordEntry> CoordinationService::Read(const std::string& client,
                                             const std::string& key) {
  CoordCommand cmd;
  cmd.op = CoordOp::kRead;
  cmd.client = client;
  cmd.key = key;
  ASSIGN_OR_RETURN(CoordReply reply, Submit(cmd));
  RETURN_IF_ERROR(reply.ToStatus("coord read " + key));
  return CoordEntry{reply.value, reply.a};
}

Result<std::vector<CoordEntryView>> CoordinationService::ReadPrefix(
    const std::string& client, const std::string& prefix) {
  CoordCommand cmd;
  cmd.op = CoordOp::kReadPrefix;
  cmd.client = client;
  cmd.key = prefix;
  ASSIGN_OR_RETURN(CoordReply reply, Submit(cmd));
  RETURN_IF_ERROR(reply.ToStatus("coord read prefix " + prefix));
  return reply.entries;
}

Status CoordinationService::Remove(const std::string& client,
                                   const std::string& key) {
  CoordCommand cmd;
  cmd.op = CoordOp::kRemove;
  cmd.client = client;
  cmd.key = key;
  ASSIGN_OR_RETURN(CoordReply reply, Submit(cmd));
  return reply.ToStatus("coord remove " + key);
}

Result<CoordLock> CoordinationService::TryLock(const std::string& client,
                                               const std::string& name,
                                               VirtualDuration lease) {
  CoordCommand cmd;
  cmd.op = CoordOp::kTryLock;
  cmd.client = client;
  cmd.key = name;
  cmd.a = static_cast<uint64_t>(lease);
  ASSIGN_OR_RETURN(CoordReply reply, Submit(cmd));
  RETURN_IF_ERROR(reply.ToStatus("coord lock " + name));
  return CoordLock{reply.a};
}

Status CoordinationService::RenewLock(const std::string& client,
                                      const std::string& name, uint64_t token,
                                      VirtualDuration lease) {
  CoordCommand cmd;
  cmd.op = CoordOp::kRenewLock;
  cmd.client = client;
  cmd.key = name;
  cmd.a = static_cast<uint64_t>(lease);
  cmd.b = token;
  ASSIGN_OR_RETURN(CoordReply reply, Submit(cmd));
  return reply.ToStatus("coord renew " + name);
}

Status CoordinationService::Unlock(const std::string& client,
                                   const std::string& name, uint64_t token) {
  CoordCommand cmd;
  cmd.op = CoordOp::kUnlock;
  cmd.client = client;
  cmd.key = name;
  cmd.b = token;
  ASSIGN_OR_RETURN(CoordReply reply, Submit(cmd));
  return reply.ToStatus("coord unlock " + name);
}

Status CoordinationService::RenamePrefix(const std::string& client,
                                         const std::string& old_prefix,
                                         const std::string& new_prefix) {
  CoordCommand cmd;
  cmd.op = CoordOp::kRenamePrefix;
  cmd.client = client;
  cmd.key = old_prefix;
  cmd.aux = new_prefix;
  ASSIGN_OR_RETURN(CoordReply reply, Submit(cmd));
  return reply.ToStatus("coord rename " + old_prefix);
}

Result<std::vector<CoordEntryView>> CoordinationService::ExportPrefix(
    const std::string& client, const std::string& prefix) {
  CoordCommand cmd;
  cmd.op = CoordOp::kExportPrefix;
  cmd.client = client;
  cmd.key = prefix;
  ASSIGN_OR_RETURN(CoordReply reply, Submit(cmd));
  RETURN_IF_ERROR(reply.ToStatus("coord export prefix " + prefix));
  return reply.entries;
}

Status CoordinationService::ImportEntry(const std::string& client,
                                        const std::string& key,
                                        const Bytes& payload) {
  CoordCommand cmd;
  cmd.op = CoordOp::kImportEntry;
  cmd.client = client;
  cmd.key = key;
  cmd.value = payload;
  ASSIGN_OR_RETURN(CoordReply reply, Submit(cmd));
  return reply.ToStatus("coord import " + key);
}

Result<LeaseGrant> CoordinationService::AcquireLease(const std::string& client,
                                                     const std::string& session,
                                                     const std::string& prefix,
                                                     VirtualDuration ttl) {
  CoordCommand cmd;
  cmd.op = CoordOp::kLeaseAcquire;
  cmd.client = client;
  cmd.key = prefix;
  cmd.aux = session;
  cmd.a = static_cast<uint64_t>(ttl);
  ASSIGN_OR_RETURN(CoordReply reply, Submit(cmd));
  RETURN_IF_ERROR(reply.ToStatus("coord lease acquire " + prefix));
  LeaseGrant grant;
  grant.expires_at = static_cast<VirtualTime>(reply.a);
  grant.entries = std::move(reply.entries);
  ByteReader reader(reply.value);
  reader.ReadU64(&grant.epoch);  // empty for scattered multi-partition grants
  return grant;
}

Status CoordinationService::ReleaseLease(const std::string& client,
                                         const std::string& session,
                                         const std::string& prefix) {
  CoordCommand cmd;
  cmd.op = CoordOp::kLeaseRelease;
  cmd.client = client;
  cmd.key = prefix;
  cmd.aux = session;
  ASSIGN_OR_RETURN(CoordReply reply, Submit(cmd));
  return reply.ToStatus("coord lease release " + prefix);
}

Status CoordinationService::GrantEntryAccess(const std::string& owner,
                                             const std::string& key,
                                             const std::string& grantee,
                                             bool read, bool write) {
  CoordCommand cmd;
  cmd.op = CoordOp::kSetEntryAcl;
  cmd.client = owner;
  cmd.key = key;
  cmd.aux = grantee;
  cmd.a = (read ? kCoordPermRead : 0) | (write ? kCoordPermWrite : 0);
  ASSIGN_OR_RETURN(CoordReply reply, Submit(cmd));
  return reply.ToStatus("coord set acl " + key);
}

namespace {

// Maps a SubmitAsync future to a status future, preserving the charge.
Future<Status> AsStatus(Future<Result<CoordReply>> submitted,
                        std::string context) {
  Promise<Status> promise;
  submitted.OnReady([promise, context = std::move(context)](
                        const Result<CoordReply>& reply,
                        VirtualDuration charge) {
    promise.Set(reply.ok() ? reply->ToStatus(context) : reply.status(),
                charge);
  });
  return promise.future();
}

}  // namespace

Future<Status> CoordinationService::WriteAsync(const std::string& client,
                                               const std::string& key,
                                               const Bytes& value) {
  CoordCommand cmd;
  cmd.op = CoordOp::kWrite;
  cmd.client = client;
  cmd.key = key;
  cmd.value = value;
  return AsStatus(SubmitAsync(cmd), "coord write " + key);
}

Future<Result<CoordEntry>> CoordinationService::ReadAsync(
    const std::string& client, const std::string& key) {
  CoordCommand cmd;
  cmd.op = CoordOp::kRead;
  cmd.client = client;
  cmd.key = key;
  Promise<Result<CoordEntry>> promise;
  SubmitAsync(cmd).OnReady([promise, key](const Result<CoordReply>& reply,
                                          VirtualDuration charge) {
    if (!reply.ok()) {
      promise.Set(reply.status(), charge);
      return;
    }
    Status status = reply->ToStatus("coord read " + key);
    if (!status.ok()) {
      promise.Set(status, charge);
      return;
    }
    promise.Set(CoordEntry{reply->value, reply->a}, charge);
  });
  return promise.future();
}

Future<Status> CoordinationService::RemoveAsync(const std::string& client,
                                                const std::string& key) {
  CoordCommand cmd;
  cmd.op = CoordOp::kRemove;
  cmd.client = client;
  cmd.key = key;
  return AsStatus(SubmitAsync(cmd), "coord remove " + key);
}

Future<Status> CoordinationService::RenewLockAsync(const std::string& client,
                                                   const std::string& name,
                                                   uint64_t token,
                                                   VirtualDuration lease) {
  CoordCommand cmd;
  cmd.op = CoordOp::kRenewLock;
  cmd.client = client;
  cmd.key = name;
  cmd.a = static_cast<uint64_t>(lease);
  cmd.b = token;
  return AsStatus(SubmitAsync(cmd), "coord renew " + name);
}

Future<Status> CoordinationService::UnlockAsync(const std::string& client,
                                                const std::string& name,
                                                uint64_t token) {
  CoordCommand cmd;
  cmd.op = CoordOp::kUnlock;
  cmd.client = client;
  cmd.key = name;
  cmd.b = token;
  return AsStatus(SubmitAsync(cmd), "coord unlock " + name);
}

Future<Status> CoordinationService::ImportEntryAsync(const std::string& client,
                                                     const std::string& key,
                                                     const Bytes& payload) {
  CoordCommand cmd;
  cmd.op = CoordOp::kImportEntry;
  cmd.client = client;
  cmd.key = key;
  cmd.value = payload;
  return AsStatus(SubmitAsync(cmd), "coord import " + key);
}

std::string PartitionRoutingKey(const std::string& key) {
  for (const char* prefix : {"ri:", "rc:"}) {
    if (key.compare(0, 3, prefix) == 0) {
      return key.substr(3);
    }
  }
  return key;
}

}  // namespace scfs
