// SmrCluster: state machine replication in the style of BFT-SMaRt (paper
// §3.2). Replicas host TupleSpace state machines; a leader totally orders
// client requests (PROPOSE), replicas vote (ACCEPT) and execute committed
// commands in sequence, replying directly to the client, which accepts a
// result once enough matching replies arrive:
//
//   - Byzantine mode: n = 3f+1 replicas, ordering quorum 2f+1, client needs
//     f+1 matching replies (DepSpace's configuration).
//   - Crash mode:     n = 2f+1 replicas, ordering quorum f+1, client needs 1
//     reply (Zookeeper-like configuration).
//
// Leader failure is handled by a client-timeout-driven view change (as in
// BFT-SMaRt's synchronization phase, simplified): replicas that see requests
// lingering unordered vote for view v+1; once a quorum agrees, the new leader
// (v mod n) re-proposes pending requests. Exactly-once execution is enforced
// with a per-client last-request table.

#ifndef SCFS_COORD_SMR_H_
#define SCFS_COORD_SMR_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/coord/coordination_service.h"
#include "src/coord/tuple_space.h"
#include "src/sim/environment.h"
#include "src/sim/latency.h"
#include "src/sim/queue.h"

namespace scfs {

struct SmrConfig {
  unsigned f = 1;
  bool byzantine = true;  // false => crash-only (2f+1)
  LatencyModel client_link;    // one-way client <-> replica (default for all)
  std::vector<LatencyModel> client_links;  // optional per-replica override
  LatencyModel replica_link;   // one-way replica <-> replica
  VirtualDuration client_timeout = FromMillis(1500);
  VirtualDuration order_timeout = FromMillis(800);  // failure detector
  int max_client_retries = 8;

  unsigned replica_count() const { return byzantine ? 3 * f + 1 : 2 * f + 1; }
  unsigned order_quorum() const { return byzantine ? 2 * f + 1 : f + 1; }
  unsigned reply_quorum() const { return byzantine ? f + 1 : 1; }
};

struct SmrMessage {
  enum class Type : uint8_t {
    kRequest,
    kPropose,
    kAccept,
    kReply,
    kViewChange,
  };
  Type type = Type::kRequest;
  int from = -1;  // replica index, or -1 for a client
  uint64_t request_id = 0;
  uint64_t view = 0;
  uint64_t seq = 0;
  VirtualTime order_time = 0;
  Bytes payload;  // command bytes (request/propose) or reply bytes (reply)
};

class SmrCluster {
 public:
  SmrCluster(Environment* env, SmrConfig config, uint64_t seed = 29);
  ~SmrCluster();

  SmrCluster(const SmrCluster&) = delete;
  SmrCluster& operator=(const SmrCluster&) = delete;

  // Submits a command and blocks until enough matching replies arrive.
  Result<CoordReply> Execute(const CoordCommand& command);

  unsigned replica_count() const { return config_.replica_count(); }

  // Fault injection.
  void CrashReplica(unsigned index);
  void SetReplicaByzantine(unsigned index, bool byzantine);

  // Introspection for tests.
  uint64_t current_view() const;
  uint64_t executed_count(unsigned replica) const;
  uint64_t reply_bytes_out() const {
    return reply_bytes_out_.load(std::memory_order_relaxed);
  }

  void Shutdown();

 private:
  struct PendingRequest {
    Bytes payload;
    VirtualTime first_seen = 0;
    bool ordered = false;
  };

  struct Replica {
    explicit Replica(Environment* env) : inbox(env) {}

    DelayedQueue<SmrMessage> inbox;
    std::thread thread;
    std::atomic<bool> crashed{false};
    std::atomic<bool> byzantine{false};

    // Everything below is owned by the replica thread; guarded by `mu` only
    // for test introspection.
    mutable std::mutex mu;
    TupleSpace space;
    uint64_t view = 0;
    uint64_t next_seq = 0;       // leader only
    uint64_t next_exec_seq = 0;  // execution frontier
    std::map<uint64_t, PendingRequest> pending;  // request_id -> payload
    struct Proposal {
      SmrMessage msg;
      VirtualTime last_sent = 0;  // leader re-propose pacing
    };
    std::map<uint64_t, Proposal> proposals;  // seq -> stored proposal
    std::map<uint64_t, std::set<int>> accept_votes;             // seq -> voters
    std::map<uint64_t, Bytes> executed;       // request_id -> reply bytes
    std::map<uint64_t, uint64_t> executed_seqs;  // seq -> request_id commit log
    std::map<uint64_t, std::set<int>> view_votes;  // proposed view -> voters
    uint64_t executed_ops = 0;
    Rng rng{0};
  };

  void ReplicaLoop(unsigned index);
  void HandleMessage(unsigned index, Replica& r, SmrMessage msg);
  void LeaderMaybePropose(unsigned index, Replica& r,
                          std::vector<SmrMessage>* out);
  void TryExecute(unsigned index, Replica& r, std::vector<SmrMessage>* out);
  void CheckOrderingTimeout(unsigned index, Replica& r);
  void BroadcastFromReplica(unsigned from, const SmrMessage& msg);
  void SendToReplica(unsigned from_replica, unsigned to, SmrMessage msg);
  void SendReplyToClient(unsigned from_replica, const SmrMessage& reply);
  bool IsLeader(const Replica& r, unsigned index) const {
    return r.view % replica_count() == index;
  }

  Environment* env_;
  SmrConfig config_;
  std::vector<std::unique_ptr<Replica>> replicas_;

  std::mutex clients_mu_;
  std::map<uint64_t, std::shared_ptr<DelayedQueue<SmrMessage>>> client_queues_;
  std::atomic<uint64_t> next_request_id_{1};
  std::atomic<uint64_t> reply_bytes_out_{0};

  std::mutex rng_mu_;
  Rng client_rng_;
  std::atomic<bool> shutdown_{false};
};

// CoordinationService adapter over an SmrCluster — the CoC backend's
// DepSpace-over-BFT-SMaRt deployment.
class ReplicatedCoordination : public CoordinationService {
 public:
  ReplicatedCoordination(Environment* env, SmrConfig config, uint64_t seed = 29)
      : cluster_(env, config, seed) {}

  Result<CoordReply> Submit(const CoordCommand& command) override {
    return cluster_.Execute(command);
  }

  SmrCluster& cluster() { return cluster_; }

 private:
  SmrCluster cluster_;
};

}  // namespace scfs

#endif  // SCFS_COORD_SMR_H_
