// SmrCluster: state machine replication in the style of BFT-SMaRt (paper
// §3.2). Replicas host TupleSpace state machines; a leader totally orders
// client requests (PROPOSE), replicas vote (ACCEPT) and execute committed
// commands in sequence, replying directly to the client, which accepts a
// result once enough matching replies arrive:
//
//   - Byzantine mode: n = 3f+1 replicas, ordering quorum 2f+1, client needs
//     f+1 matching replies (DepSpace's configuration).
//   - Crash mode:     n = 2f+1 replicas, ordering quorum f+1, client needs 1
//     reply (Zookeeper-like configuration).
//
// The ordering pipeline is built for throughput:
//
//   * Leader batching — the leader drains its pending queue into one
//     multi-command PROPOSE: one ACCEPT quorum orders up to `max_batch`
//     requests, replicas execute the batch in sequence and reply
//     per-request, so N concurrent clients cost ~N/max_batch consensus
//     instances instead of N.
//   * Pipelining — up to `max_inflight_instances` consensus instances may be
//     outstanding (proposed but not yet executed) at once; committed
//     instances free slots for the next batch without waiting for the
//     previous one to finish its quorum.
//   * Read-only fast path — read-only commands (CoordCommand::is_read_only)
//     bypass ordering entirely: the client broadcasts a READ directly to the
//     replicas, which evaluate it against their committed state
//     (TupleSpace::Query — no side effects) and reply; the client accepts
//     2f+1 matching replies (f+1 in crash mode) and falls back to the
//     ordered path on divergence or timeout. Linearizability needs one more
//     rule: with the fast path enabled, *mutating* commands are acknowledged
//     only at an order-quorum of matching replies, so the executed set of
//     every acked write intersects any fast-read matching quorum in at
//     least one correct replica (ordered reads keep the cheap f+1 reply
//     quorum — they create no state a later fast read must observe).
//
// Leader failure is handled by a client-timeout-driven view change (as in
// BFT-SMaRt's synchronization phase, simplified). View-change votes carry
// the voter's accepted proposals as certificates; the new leader adopts the
// highest-view accepted proposal per sequence number from its vote quorum
// (plus its own log) before re-proposing, so batched proposals survive view
// changes without reordering. Exactly-once execution is enforced with
// per-client last-reply tables, windowed like the seq->batch commit log.

#ifndef SCFS_COORD_SMR_H_
#define SCFS_COORD_SMR_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/common/executor.h"
#include "src/common/future.h"
#include "src/common/rng.h"
#include "src/coord/coordination_service.h"
#include "src/coord/tuple_space.h"
#include "src/sim/environment.h"
#include "src/sim/latency.h"
#include "src/sim/queue.h"

namespace scfs {

struct SmrConfig {
  unsigned f = 1;
  bool byzantine = true;  // false => crash-only (2f+1)
  LatencyModel client_link;    // one-way client <-> replica (default for all)
  std::vector<LatencyModel> client_links;  // optional per-replica override
  LatencyModel replica_link;   // one-way replica <-> replica
  VirtualDuration client_timeout = FromMillis(1500);
  VirtualDuration order_timeout = FromMillis(800);  // failure detector
  int max_client_retries = 8;

  // Throughput features; disabling all three restores the seed's
  // one-command-per-instance lock-step ordering (the benchmark baseline).
  bool enable_batching = true;
  unsigned max_batch = 64;               // requests per PROPOSE
  unsigned max_inflight_instances = 8;   // pipelined consensus instances
  bool enable_read_fast_path = true;
  // How long a fast-path read waits for a matching-reply quorum before
  // falling back to the ordered path.
  VirtualDuration fast_read_timeout = FromMillis(600);

  unsigned replica_count() const { return byzantine ? 3 * f + 1 : 2 * f + 1; }
  unsigned order_quorum() const { return byzantine ? 2 * f + 1 : f + 1; }
  unsigned reply_quorum() const { return byzantine ? f + 1 : 1; }
  // Matching replies needed by the read-only fast path. Stronger than
  // reply_quorum: the value must be vouched for by enough replicas to
  // intersect any committed write.
  unsigned read_quorum() const { return byzantine ? 2 * f + 1 : f + 1; }
};

// One client request inside a batched proposal.
struct SmrBatchEntry {
  uint64_t request_id = 0;
  Bytes payload;  // encoded CoordCommand
};

// A voter's record of an accepted proposal, carried by view-change votes so
// the new leader can adopt in-flight assignments instead of re-deriving them.
struct SmrViewChangeCert {
  uint64_t seq = 0;
  uint64_t view = 0;  // view the proposal was accepted in
  VirtualTime order_time = 0;
  std::vector<SmrBatchEntry> batch;
};

struct SmrMessage {
  enum class Type : uint8_t {
    kRequest,
    kReadRequest,  // read-only fast path, bypasses ordering
    kPropose,
    kAccept,
    kReply,
    kViewChange,
  };
  Type type = Type::kRequest;
  int from = -1;  // replica index, or -1 for a client
  uint64_t request_id = 0;
  uint64_t view = 0;
  uint64_t seq = 0;
  VirtualTime order_time = 0;
  Bytes payload;  // command bytes (request) or reply bytes (reply)
  std::vector<SmrBatchEntry> batch;        // kPropose: the ordered batch
  std::vector<SmrViewChangeCert> certs;    // kViewChange: accepted proposals

  // Wire size for latency sampling.
  size_t ByteSize() const {
    size_t total = payload.size();
    for (const auto& entry : batch) {
      total += entry.payload.size();
    }
    for (const auto& cert : certs) {
      for (const auto& entry : cert.batch) {
        total += entry.payload.size();
      }
    }
    return total;
  }
};

// Aggregate protocol counters, exposed for benchmarks and tests. Request
// counts are tracked client-side (one per Execute), instance counts
// leader-side (one per first PROPOSE broadcast), so neither is inflated by
// the replica fan-out.
struct SmrCounters {
  uint64_t ordered_commands = 0;     // client completions via ordered path
  uint64_t proposed_instances = 0;   // consensus instances proposed
  uint64_t proposed_requests = 0;    // requests across those instances
  uint64_t fast_path_reads = 0;      // reads served without ordering
  uint64_t fast_path_fallbacks = 0;  // reads that fell back to ordering

  SmrCounters& operator+=(const SmrCounters& other) {
    ordered_commands += other.ordered_commands;
    proposed_instances += other.proposed_instances;
    proposed_requests += other.proposed_requests;
    fast_path_reads += other.fast_path_reads;
    fast_path_fallbacks += other.fast_path_fallbacks;
    return *this;
  }
};

class SmrCluster {
 public:
  SmrCluster(Environment* env, SmrConfig config, uint64_t seed = 29);
  ~SmrCluster();

  SmrCluster(const SmrCluster&) = delete;
  SmrCluster& operator=(const SmrCluster&) = delete;

  // Submits a command and blocks until enough matching replies arrive.
  // Read-only commands try the fast path first when enabled.
  Result<CoordReply> Execute(const CoordCommand& command);

  unsigned replica_count() const { return config_.replica_count(); }

  // Fault injection.
  void CrashReplica(unsigned index);
  void SetReplicaByzantine(unsigned index, bool byzantine);

  // Introspection for tests.
  uint64_t current_view() const;
  uint64_t executed_count(unsigned replica) const;
  uint64_t reply_bytes_out() const {
    return reply_bytes_out_.load(std::memory_order_relaxed);
  }
  SmrCounters counters() const;

  void Shutdown();

 private:
  struct PendingRequest {
    Bytes payload;
    std::string client;  // decoded principal, for the per-client reply table
    VirtualTime first_seen = 0;
    bool ordered = false;
  };

  struct Replica {
    explicit Replica(Environment* env) : inbox(env) {}

    DelayedQueue<SmrMessage> inbox;
    std::thread thread;
    std::atomic<bool> crashed{false};
    std::atomic<bool> byzantine{false};

    // Everything below is owned by the replica thread; guarded by `mu` only
    // for test introspection.
    mutable std::mutex mu;
    TupleSpace space;
    uint64_t view = 0;
    uint64_t next_seq = 0;       // leader only
    uint64_t next_exec_seq = 0;  // execution frontier
    std::map<uint64_t, PendingRequest> pending;  // request_id -> payload
    struct Proposal {
      SmrMessage msg;
      VirtualTime last_sent = 0;  // leader re-propose pacing
      int resends = 0;            // catch-up retirement bound
    };
    std::map<uint64_t, Proposal> proposals;  // seq -> stored proposal
    std::map<uint64_t, std::set<int>> accept_votes;  // seq -> voters
    // Per-client last-reply tables (exactly-once): request_id -> reply
    // bytes, windowed to the most recent kClientReplyWindow requests per
    // client so replica memory stays bounded by live clients, not history.
    std::map<std::string, std::map<uint64_t, Bytes>> client_replies;
    // seq -> batch request ids: the windowed commit log that validates
    // below-frontier re-proposes.
    std::map<uint64_t, std::vector<uint64_t>> executed_seqs;
    // seq -> the executed proposal itself (payloads included), on a shorter
    // window. Together with retaining accepted proposals across view
    // changes, this guarantees that any committed seq within the window
    // has a re-sendable certificate in every view-change vote quorum: a
    // commit quorum intersects any vote quorum in a replica that either
    // still holds the accepted proposal or has it here.
    std::map<uint64_t, SmrMessage> executed_batches;
    // proposed view -> (voter -> the voter's accepted-proposal certificates)
    std::map<uint64_t, std::map<int, std::vector<SmrViewChangeCert>>>
        view_votes;
    uint64_t executed_ops = 0;
    Rng rng{0};
  };

  // Must exceed any single client's realistic in-flight set (the close
  // pipeline holds up to max_depth=256 chains, each with one async lease
  // renewal under the agent's client name; the GC bounds its tombstone
  // fan-out below this).
  static constexpr size_t kClientReplyWindow = 1024;
  static constexpr uint64_t kExecutedSeqWindow = 4096;
  // Executed payload retention (certificates for lagging-replica catch-up).
  // A replica lagging more than this many committed seqs behind a view
  // change can no longer be caught up and wedges — the documented residual
  // state-transfer gap.
  static constexpr uint64_t kExecutedBatchWindow = 256;

  void ReplicaLoop(unsigned index);
  void HandleMessage(unsigned index, Replica& r, SmrMessage msg);
  void LeaderMaybePropose(unsigned index, Replica& r,
                          std::vector<SmrMessage>* out);
  void AdoptView(unsigned index, Replica& r, uint64_t view,
                 std::vector<SmrMessage>* out);
  void TryExecute(unsigned index, Replica& r, std::vector<SmrMessage>* out);
  void CheckOrderingTimeout(unsigned index, Replica& r);
  void BroadcastFromReplica(unsigned from, const SmrMessage& msg);
  void SendToReplica(unsigned from_replica, unsigned to, SmrMessage msg);
  void SendReplyToClient(unsigned from_replica, const SmrMessage& reply);
  bool IsLeader(const Replica& r, unsigned index) const {
    return r.view % replica_count() == index;
  }
  // Builds the kReply for one executed (or cached) batch entry.
  SmrMessage MakeReply(unsigned index, const Replica& r, uint64_t request_id,
                       Bytes reply_bytes) const;
  // Fast path: broadcast, collect matching replies against the committed
  // state of the replicas. Returns the winning reply bytes, or nullopt when
  // the caller must fall back to the ordered path.
  std::optional<Bytes> TryFastRead(const Bytes& encoded_command);
  const LatencyModel& ClientLink(unsigned replica) const {
    return config_.client_links.empty()
               ? config_.client_link
               : config_.client_links[replica % config_.client_links.size()];
  }

  Environment* env_;
  SmrConfig config_;
  std::vector<std::unique_ptr<Replica>> replicas_;

  std::mutex clients_mu_;
  std::map<uint64_t, std::shared_ptr<DelayedQueue<SmrMessage>>> client_queues_;
  std::atomic<uint64_t> next_request_id_{1};
  std::atomic<uint64_t> reply_bytes_out_{0};

  std::atomic<uint64_t> ordered_commands_{0};
  std::atomic<uint64_t> proposed_instances_{0};
  std::atomic<uint64_t> proposed_requests_{0};
  std::atomic<uint64_t> fast_path_reads_{0};
  std::atomic<uint64_t> fast_path_fallbacks_{0};

  std::mutex rng_mu_;
  Rng client_rng_;
  std::atomic<bool> shutdown_{false};
};

// CoordinationService adapter over an SmrCluster — the CoC backend's
// DepSpace-over-BFT-SMaRt deployment.
class ReplicatedCoordination : public CoordinationService {
 public:
  ReplicatedCoordination(Environment* env, SmrConfig config, uint64_t seed = 29)
      : cluster_(env, config, seed) {}

  Result<CoordReply> Submit(const CoordCommand& command) override {
    return cluster_.Execute(command);
  }

  // Real asynchrony: the protocol round runs on the shared executor, so the
  // caller can overlap coordination accesses with storage work. The future's
  // charge is the round's modelled latency (recorded by Execute), delivered
  // to whoever waits on it — never double-counted against the submitter.
  Future<Result<CoordReply>> SubmitAsync(const CoordCommand& command) override {
    return SubmitTracked(&inflight_, [this, command] {
      return cluster_.Execute(command);
    });
  }

  SmrCluster& cluster() { return cluster_; }

 private:
  SmrCluster cluster_;
  // Declared after cluster_: destroyed first, so the destructor waits for
  // in-flight async submissions before the cluster shuts down.
  InFlightTracker inflight_;
};

}  // namespace scfs

#endif  // SCFS_COORD_SMR_H_
