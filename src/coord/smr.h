// SmrCluster: state machine replication in the style of BFT-SMaRt (paper
// §3.2). Replicas host TupleSpace state machines; a leader totally orders
// client requests (PROPOSE), replicas vote (ACCEPT) and execute committed
// commands in sequence, replying directly to the client, which accepts a
// result once enough matching replies arrive:
//
//   - Byzantine mode: n = 3f+1 replicas, ordering quorum 2f+1, client needs
//     f+1 matching replies (DepSpace's configuration).
//   - Crash mode:     n = 2f+1 replicas, ordering quorum f+1, client needs 1
//     reply (Zookeeper-like configuration).
//
// The ordering pipeline is built for throughput:
//
//   * Leader batching — the leader drains its pending queue into one
//     multi-command PROPOSE: one ACCEPT quorum orders up to `max_batch`
//     requests, replicas execute the batch in sequence and reply
//     per-request, so N concurrent clients cost ~N/max_batch consensus
//     instances instead of N.
//   * Pipelining — up to `max_inflight_instances` consensus instances may be
//     outstanding (proposed but not yet executed) at once; committed
//     instances free slots for the next batch without waiting for the
//     previous one to finish its quorum.
//   * Read-only fast path — read-only commands (CoordCommand::is_read_only)
//     bypass ordering entirely: the client broadcasts a READ directly to the
//     replicas, which evaluate it against their committed state
//     (TupleSpace::Query — no side effects) and reply; the client accepts
//     2f+1 matching replies (f+1 in crash mode) and falls back to the
//     ordered path on divergence or timeout. Linearizability needs one more
//     rule: with the fast path enabled, *mutating* commands are acknowledged
//     only at an order-quorum of matching replies, so the executed set of
//     every acked write intersects any fast-read matching quorum in at
//     least one correct replica (ordered reads keep the cheap f+1 reply
//     quorum — they create no state a later fast read must observe).
//   * Frontier-tagged replies — every reply carries the replica's committed
//     frontier. The client keeps a monotone watermark of the frontier
//     vouched by its accepted reply sets (the (f+1)-th highest among the
//     matching replies, so at least one correct replica backs it) and
//     accepts a fast quorum only when f+1 of its matching replies are at or
//     beyond the watermark — a matching-but-stale quorum (the read-read
//     inversion of the PBFT read-only optimization) is rejected and the
//     read retried through the ordered path instead of silently going
//     backwards in time.
//   * Fallback cooldown — a failed fast round (divergence, stale quorum or
//     timeout) optionally suppresses the fast path for
//     `fast_read_fallback_cooldown`, so a persistent silent+lying replica
//     pair costs one fast_read_timeout per window instead of per read.
//
// Leader failure is handled by a client-timeout-driven view change (as in
// BFT-SMaRt's synchronization phase, simplified). View-change votes carry
// the voter's accepted proposals as certificates; the new leader adopts the
// highest-view accepted proposal per sequence number from its vote quorum
// (plus its own log) before re-proposing, so batched proposals survive view
// changes without reordering. Exactly-once execution is enforced with
// per-client last-reply tables, windowed like the seq->batch commit log.
//
// Snapshot-based state transfer removes the bounded catch-up window's wedge
// (see DESIGN.md "State transfer & checkpoints"): replicas checkpoint the
// replicated state (TupleSpace + per-client reply tables) every
// `checkpoint_interval` committed seqs with a SHA-256 digest. A replica
// whose execution frontier stalls while evidence of higher committed seqs
// accumulates broadcasts a STATE_REQUEST; peers answer with their latest
// checkpoint beyond the requester's frontier plus "tail certificates" (the
// executed batches they retain above it). The requester installs a snapshot
// only once f+1 peers vouch for the same (frontier, digest) pair — so at
// least one voucher is correct — verifies each offered payload against the
// vouched digest, truncates its below-frontier proposal/commit logs, and
// replays tail certificates that f+1 peers agree on until it reconnects
// with the live proposal stream. Checkpoints also bound replica memory:
// accepted proposals below a replica's own latest checkpoint are GC'd (the
// snapshot supersedes them as a catch-up source), and a new leader never
// re-proposes below the vote quorum's collective checkpoint.

#ifndef SCFS_COORD_SMR_H_
#define SCFS_COORD_SMR_H_

#include <atomic>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/common/executor.h"
#include "src/common/future.h"
#include "src/common/rng.h"
#include "src/coord/coordination_service.h"
#include "src/coord/tuple_space.h"
#include "src/sim/environment.h"
#include "src/sim/latency.h"
#include "src/sim/queue.h"

namespace scfs {

struct SmrConfig {
  unsigned f = 1;
  bool byzantine = true;  // false => crash-only (2f+1)
  LatencyModel client_link;    // one-way client <-> replica (default for all)
  std::vector<LatencyModel> client_links;  // optional per-replica override
  LatencyModel replica_link;   // one-way replica <-> replica
  VirtualDuration client_timeout = FromMillis(1500);
  VirtualDuration order_timeout = FromMillis(800);  // failure detector
  int max_client_retries = 8;

  // Throughput features; disabling all three restores the seed's
  // one-command-per-instance lock-step ordering (the benchmark baseline).
  bool enable_batching = true;
  unsigned max_batch = 64;               // requests per PROPOSE
  unsigned max_inflight_instances = 8;   // pipelined consensus instances
  bool enable_read_fast_path = true;
  // How long a fast-path read waits for a matching-reply quorum before
  // falling back to the ordered path.
  VirtualDuration fast_read_timeout = FromMillis(600);
  // Fallback cooldown: after a failed fast-read round (divergence, stale
  // quorum or timeout), bypass the fast path entirely for this window and
  // go straight to the ordered path. While a fault persists (the classic
  // one-silent-plus-one-lying replica pair), reads then cost one
  // fast_read_timeout per window instead of one per read. 0 (default)
  // disables the cooldown; the CoC deployment enables it. Bypasses are
  // counted in SmrCounters::fast_path_cooldown_bypasses (and as
  // fallbacks, since the read is served by the ordered path).
  VirtualDuration fast_read_fallback_cooldown = 0;
  // Accumulation delay for leader batching: a batch smaller than max_batch
  // is held until its oldest request has waited this long, trading a bounded
  // latency increase for a higher batch factor at moderate load. 0 (default)
  // proposes immediately from whatever is queued (the time-less policy).
  VirtualDuration batch_accumulation_delay = 0;

  // Executed-payload retention (the certificates that catch up a lagging
  // replica without a snapshot). A replica lagging further than this behind
  // the quorum recovers via snapshot state transfer instead.
  uint64_t executed_batch_window = 256;
  // Checkpoint cadence for snapshot state transfer: every this many
  // committed seqs a replica snapshots TupleSpace + reply tables and hashes
  // it. Soundness requires interval * kRetainedCheckpoints <=
  // executed_batch_window (the post-install tail must be within the
  // retained-batch range); SmrCluster clamps the interval down to enforce
  // it. 0 disables checkpoints (and with them snapshot state transfer —
  // the pre-snapshot wedge behavior).
  uint64_t checkpoint_interval = 64;

  unsigned replica_count() const { return byzantine ? 3 * f + 1 : 2 * f + 1; }
  unsigned order_quorum() const { return byzantine ? 2 * f + 1 : f + 1; }
  unsigned reply_quorum() const { return byzantine ? f + 1 : 1; }
  // Vouchers needed before trusting state-transfer material (a snapshot's
  // (frontier, digest) pair, a tail certificate's batch): f+1 matching
  // offers include at least one correct replica.
  unsigned vouch_quorum() const { return reply_quorum(); }
  // Matching replies needed by the read-only fast path. Stronger than
  // reply_quorum: the value must be vouched for by enough replicas to
  // intersect any committed write.
  unsigned read_quorum() const { return byzantine ? 2 * f + 1 : f + 1; }
};

// One client request inside a batched proposal.
struct SmrBatchEntry {
  uint64_t request_id = 0;
  Bytes payload;  // encoded CoordCommand
};

// A voter's record of an accepted proposal, carried by view-change votes so
// the new leader can adopt in-flight assignments instead of re-deriving them.
struct SmrViewChangeCert {
  uint64_t seq = 0;
  uint64_t view = 0;  // view the proposal was accepted in
  VirtualTime order_time = 0;
  std::vector<SmrBatchEntry> batch;
};

struct SmrMessage {
  enum class Type : uint8_t {
    kRequest,
    kReadRequest,  // read-only fast path, bypasses ordering
    kPropose,
    kAccept,
    kReply,
    kViewChange,
    kStateRequest,  // lagging replica asks peers for checkpoint + tail
    kStateReply,    // checkpoint (seq, digest, payload) + tail certificates
  };
  Type type = Type::kRequest;
  int from = -1;  // replica index, or -1 for a client
  uint64_t request_id = 0;
  uint64_t view = 0;
  // kPropose/kAccept: instance seq. kViewChange: the voter's latest
  // checkpoint seq. kStateRequest: the requester's execution frontier.
  // kStateReply: the offered checkpoint's frontier. kReply: the replying
  // replica's committed frontier (the fast-read staleness tag).
  uint64_t seq = 0;
  VirtualTime order_time = 0;
  Bytes payload;  // command/reply bytes, or the kStateReply snapshot
  Bytes digest;   // kStateReply/kViewChange: SHA-256 of the checkpoint
  std::vector<SmrBatchEntry> batch;        // kPropose: the ordered batch
  // kViewChange: accepted proposals; kStateReply: executed-batch tail.
  std::vector<SmrViewChangeCert> certs;

  // Wire size for latency sampling.
  size_t ByteSize() const {
    size_t total = payload.size() + digest.size();
    for (const auto& entry : batch) {
      total += entry.payload.size();
    }
    for (const auto& cert : certs) {
      for (const auto& entry : cert.batch) {
        total += entry.payload.size();
      }
    }
    return total;
  }
};

// Aggregate protocol counters, exposed for benchmarks and tests. Request
// counts are tracked client-side (one per Execute), instance counts
// leader-side (one per first PROPOSE broadcast), so neither is inflated by
// the replica fan-out.
struct SmrCounters {
  uint64_t ordered_commands = 0;     // client completions via ordered path
  uint64_t proposed_instances = 0;   // consensus instances proposed
  uint64_t proposed_requests = 0;    // requests across those instances
  uint64_t fast_path_reads = 0;      // reads served without ordering
  uint64_t fast_path_fallbacks = 0;  // reads that fell back to ordering
  // Reads that skipped the fast round because a recent failure put the
  // fast path in its fallback cooldown (each also counts as a fallback).
  uint64_t fast_path_cooldown_bypasses = 0;
  // Fast rounds where a value assembled a matching quorum whose committed
  // frontiers were stale relative to the client's previously observed
  // frontier — rejected instead of silently inverting reads.
  uint64_t fast_path_stale_quorums = 0;
  uint64_t checkpoints_taken = 0;    // periodic snapshots across replicas
  uint64_t state_requests = 0;       // STATE_REQUEST broadcasts (wedges)
  uint64_t snapshots_installed = 0;  // f+1-vouched snapshot installs
  // State replies whose snapshot payload did not hash to the claimed
  // digest (a Byzantine peer's forged snapshot), dropped at receipt.
  uint64_t snapshot_payload_rejects = 0;
  // Modelled network messages, for per-operation message accounting (the
  // lease-caching target of ROADMAP item 4 is judged against these):
  // client -> replica request sends (ordered broadcasts including retries,
  // plus fast-read broadcasts), replica <-> replica protocol sends
  // (PROPOSE/ACCEPT/view-change/state transfer; self-delivery is free), and
  // replica -> client replies actually delivered to a live client.
  uint64_t client_request_msgs = 0;
  uint64_t replica_msgs = 0;
  uint64_t client_reply_msgs = 0;

  uint64_t total_messages() const {
    return client_request_msgs + replica_msgs + client_reply_msgs;
  }

  SmrCounters& operator+=(const SmrCounters& other) {
    ordered_commands += other.ordered_commands;
    proposed_instances += other.proposed_instances;
    proposed_requests += other.proposed_requests;
    fast_path_reads += other.fast_path_reads;
    fast_path_fallbacks += other.fast_path_fallbacks;
    fast_path_cooldown_bypasses += other.fast_path_cooldown_bypasses;
    fast_path_stale_quorums += other.fast_path_stale_quorums;
    checkpoints_taken += other.checkpoints_taken;
    state_requests += other.state_requests;
    snapshots_installed += other.snapshots_installed;
    snapshot_payload_rejects += other.snapshot_payload_rejects;
    client_request_msgs += other.client_request_msgs;
    replica_msgs += other.replica_msgs;
    client_reply_msgs += other.client_reply_msgs;
    return *this;
  }

  // Field-wise difference, for windowed rates (`after -= before` leaves the
  // counts accumulated inside the window). Only meaningful when `other` is
  // an earlier snapshot of the same counter set.
  SmrCounters& operator-=(const SmrCounters& other) {
    ordered_commands -= other.ordered_commands;
    proposed_instances -= other.proposed_instances;
    proposed_requests -= other.proposed_requests;
    fast_path_reads -= other.fast_path_reads;
    fast_path_fallbacks -= other.fast_path_fallbacks;
    fast_path_cooldown_bypasses -= other.fast_path_cooldown_bypasses;
    fast_path_stale_quorums -= other.fast_path_stale_quorums;
    checkpoints_taken -= other.checkpoints_taken;
    state_requests -= other.state_requests;
    snapshots_installed -= other.snapshots_installed;
    snapshot_payload_rejects -= other.snapshot_payload_rejects;
    client_request_msgs -= other.client_request_msgs;
    replica_msgs -= other.replica_msgs;
    client_reply_msgs -= other.client_reply_msgs;
    return *this;
  }
};

class SmrCluster {
 public:
  SmrCluster(Environment* env, SmrConfig config, uint64_t seed = 29);
  ~SmrCluster();

  SmrCluster(const SmrCluster&) = delete;
  SmrCluster& operator=(const SmrCluster&) = delete;

  // Submits a command and blocks until enough matching replies arrive.
  // Read-only commands try the fast path first when enabled.
  Result<CoordReply> Execute(const CoordCommand& command);

  unsigned replica_count() const { return config_.replica_count(); }

  // Fault injection. A crashed replica consumes and drops every message;
  // RestartReplica models a crash-recovery restart with the replica's
  // durable state as of the crash — it rejoins lagging and catches up via
  // the certificate window or, beyond it, snapshot state transfer.
  void CrashReplica(unsigned index);
  void RestartReplica(unsigned index);
  void SetReplicaByzantine(unsigned index, bool byzantine);

  // Introspection for tests.
  uint64_t current_view() const;
  uint64_t executed_count(unsigned replica) const;
  // The replica's execution frontier (next seq to execute).
  uint64_t exec_frontier(unsigned replica) const;
  // SHA-256 digest of the replica's replicated state (TupleSpace + reply
  // tables). Converged replicas report identical digests. Costs one full
  // state serialization under the replica's mutex — an operations poll /
  // test probe, not a hot path.
  Bytes state_digest(unsigned replica) const;
  // The digest an order-quorum of replicas agrees on, or empty when no
  // digest has quorum backing (replicas mid-execution at different
  // frontiers, or diverged) — the operations surface for "is the cluster
  // state-converged and what is its fingerprint".
  Bytes quorum_state_digest() const;
  uint64_t reply_bytes_out() const {
    return reply_bytes_out_.load(std::memory_order_relaxed);
  }
  SmrCounters counters() const;

  // The highest committed frontier this client stub has observed vouched by
  // enough matching replies (the read-read-inversion guard's watermark);
  // the setter is a test hook for forcing the stale-quorum path.
  uint64_t client_observed_frontier() const {
    return observed_frontier_.load(std::memory_order_relaxed);
  }
  void set_client_observed_frontier(uint64_t frontier) {
    observed_frontier_.store(frontier, std::memory_order_relaxed);
  }

  void Shutdown();

 private:
  struct PendingRequest {
    Bytes payload;
    std::string client;  // decoded principal, for the per-client reply table
    VirtualTime first_seen = 0;
    bool ordered = false;
  };

  struct Replica {
    explicit Replica(Environment* env) : inbox(env) {}

    DelayedQueue<SmrMessage> inbox;
    std::thread thread;
    std::atomic<bool> crashed{false};
    std::atomic<bool> byzantine{false};

    // Everything below is owned by the replica thread; guarded by `mu` only
    // for test introspection.
    mutable std::mutex mu;
    TupleSpace space;
    uint64_t view = 0;
    uint64_t next_seq = 0;       // leader only
    uint64_t next_exec_seq = 0;  // execution frontier
    std::map<uint64_t, PendingRequest> pending;  // request_id -> payload
    struct Proposal {
      SmrMessage msg;
      VirtualTime last_sent = 0;  // leader re-propose pacing
      int resends = 0;            // catch-up retirement bound
    };
    std::map<uint64_t, Proposal> proposals;  // seq -> stored proposal
    std::map<uint64_t, std::set<int>> accept_votes;  // seq -> voters
    // Per-client last-reply tables (exactly-once): request_id -> reply
    // bytes, windowed to the most recent kClientReplyWindow requests per
    // client so replica memory stays bounded by live clients, not history.
    std::map<std::string, std::map<uint64_t, Bytes>> client_replies;
    // seq -> batch request ids: the windowed commit log that validates
    // below-frontier re-proposes.
    std::map<uint64_t, std::vector<uint64_t>> executed_seqs;
    // seq -> the executed proposal itself (payloads included), on a shorter
    // window (SmrConfig::executed_batch_window). Together with retaining
    // accepted proposals across view changes, this guarantees that any
    // committed seq within the window has a re-sendable certificate in
    // every view-change vote quorum: a commit quorum intersects any vote
    // quorum in a replica that either still holds the accepted proposal or
    // has it here. It also serves the tail certificates of STATE replies.
    std::map<uint64_t, SmrMessage> executed_batches;
    // One view-change vote: the voter's accepted-proposal certificates plus
    // its latest checkpoint, from which the new leader derives the
    // collective checkpoint it must never re-propose below.
    struct ViewVote {
      std::vector<SmrViewChangeCert> certs;
      uint64_t checkpoint_seq = 0;
      Bytes checkpoint_digest;
    };
    // proposed view -> (voter -> vote)
    std::map<uint64_t, std::map<int, ViewVote>> view_votes;
    // Per-sender view claims: the view each peer was last observed sending
    // ordering traffic in, kept only while above ours. A restarted replica
    // stranded in an old view adopts a higher view once f+1 distinct peers
    // (one correct) claim the SAME view. One slot per sender — a forger
    // can occupy exactly one entry no matter how many views it invents, so
    // the map is bounded by the replica count with no eviction policy.
    std::map<int, uint64_t> view_claims;

    // Periodic checkpoint: the serialized replicated state at `seq` and its
    // SHA-256. Recent ones are retained so peers at slightly different
    // frontiers can still assemble f+1 vouchers for a common pair.
    struct Checkpoint {
      uint64_t seq = 0;
      Bytes digest;
      Bytes payload;
    };
    std::deque<Checkpoint> checkpoints;

    // State-transfer collection (requester side): snapshot offers bucketed
    // by the vouched (frontier, digest) pair, and tail-certificate offers
    // bucketed by (seq, canonical batch encoding). Payload equality inside
    // a snapshot bucket is implied — every stored payload already hashed to
    // the bucket's digest at receipt.
    struct StateOffer {
      Bytes payload;
      std::set<int> voters;
    };
    std::map<std::pair<uint64_t, Bytes>, StateOffer> state_offers;
    struct TailOffer {
      SmrViewChangeCert cert;
      std::set<int> voters;
    };
    std::map<std::pair<uint64_t, Bytes>, TailOffer> tail_offers;
    VirtualTime last_exec_advance = 0;  // wedge detection
    VirtualTime last_state_request = 0;

    uint64_t executed_ops = 0;
    Rng rng{0};
  };

  // Must exceed any single client's realistic in-flight set (the close
  // pipeline holds up to max_depth=256 chains, each with one async lease
  // renewal under the agent's client name; the GC bounds its tombstone
  // fan-out below this).
  static constexpr size_t kClientReplyWindow = 1024;
  static constexpr uint64_t kExecutedSeqWindow = 4096;
  // Checkpoints retained per replica: two, so a peer that just rolled its
  // checkpoint forward can still vouch for the previous one while slower
  // replicas reach it.
  static constexpr size_t kRetainedCheckpoints = 2;

  void ReplicaLoop(unsigned index);
  void HandleMessage(unsigned index, Replica& r, SmrMessage msg);
  void LeaderMaybePropose(unsigned index, Replica& r,
                          std::vector<SmrMessage>* out);
  void AdoptView(unsigned index, Replica& r, uint64_t view,
                 std::vector<SmrMessage>* out);
  void TryExecute(unsigned index, Replica& r, std::vector<SmrMessage>* out);
  // Applies one committed batch at the execution frontier: executes (or
  // replays cached replies), records the commit logs, advances the
  // frontier, and takes the periodic checkpoint. Shared by the ordered
  // path (TryExecute) and the state-transfer tail replay.
  void ExecuteCommitted(unsigned index, Replica& r, const SmrMessage& proposal,
                        std::vector<SmrMessage>* out);
  // Replays f+1-vouched tail certificates at the frontier, then lets the
  // ordered path drain whatever stored proposals now connect.
  void DrainStateTransfer(unsigned index, Replica& r,
                          std::vector<SmrMessage>* out);
  // Drops snapshot/tail offers the execution frontier has passed (an offer
  // AT the frontier is useless for snapshots but is the next tail replay).
  static void PruneTransferState(Replica& r);
  // Installs an f+1-vouched snapshot: restores the replicated state, moves
  // the frontier, truncates below-frontier logs, and records the snapshot
  // as this replica's own checkpoint.
  void InstallSnapshot(unsigned index, Replica& r, uint64_t frontier,
                       const Bytes& digest, const Bytes& payload);
  void MaybeTakeCheckpoint(unsigned index, Replica& r);
  // The replicated state a checkpoint captures: the TupleSpace plus the
  // per-client reply tables (so exactly-once survives a snapshot install).
  // Both are deterministic functions of the executed command sequence, so
  // replicas at the same frontier encode byte-identical snapshots.
  Bytes EncodeReplicaSnapshot(const Replica& r) const;
  static bool DecodeReplicaSnapshot(
      ConstByteSpan payload, TupleSpace* space,
      std::map<std::string, std::map<uint64_t, Bytes>>* client_replies);
  void CheckOrderingTimeout(unsigned index, Replica& r);
  void BroadcastFromReplica(unsigned from, const SmrMessage& msg);
  void SendToReplica(unsigned from_replica, unsigned to, SmrMessage msg);
  void SendReplyToClient(unsigned from_replica, const SmrMessage& reply);
  bool IsLeader(const Replica& r, unsigned index) const {
    return r.view % replica_count() == index;
  }
  // Builds the kReply for one executed (or cached) batch entry.
  SmrMessage MakeReply(unsigned index, const Replica& r, uint64_t request_id,
                       Bytes reply_bytes) const;
  // Fast path: broadcast, collect matching replies against the committed
  // state of the replicas. Returns the winning reply bytes, or nullopt when
  // the caller must fall back to the ordered path.
  std::optional<Bytes> TryFastRead(const Bytes& encoded_command);
  // Monotone CAS-max on the client frontier watermark.
  void AdvanceObservedFrontier(uint64_t vouched);
  const LatencyModel& ClientLink(unsigned replica) const {
    return config_.client_links.empty()
               ? config_.client_link
               : config_.client_links[replica % config_.client_links.size()];
  }

  Environment* env_;
  SmrConfig config_;
  std::vector<std::unique_ptr<Replica>> replicas_;

  std::mutex clients_mu_;
  std::map<uint64_t, std::shared_ptr<DelayedQueue<SmrMessage>>> client_queues_;
  std::atomic<uint64_t> next_request_id_{1};
  std::atomic<uint64_t> reply_bytes_out_{0};

  std::atomic<uint64_t> ordered_commands_{0};
  std::atomic<uint64_t> proposed_instances_{0};
  std::atomic<uint64_t> proposed_requests_{0};
  std::atomic<uint64_t> fast_path_reads_{0};
  std::atomic<uint64_t> fast_path_fallbacks_{0};
  std::atomic<uint64_t> fast_path_cooldown_bypasses_{0};
  std::atomic<uint64_t> fast_path_stale_quorums_{0};
  // Fallback cooldown: until this virtual time, read-only commands skip the
  // fast round and go straight to ordering.
  std::atomic<VirtualTime> fast_path_bypass_until_{0};
  // Frontier watermark shared by this stub's clients: the committed
  // frontier vouched by at least a reply quorum of a previously accepted
  // matching set. Monotone; coarser than per-client tracking (any client's
  // observation guards every other's reads), which only errs toward more
  // fallbacks, never toward inversion.
  std::atomic<uint64_t> observed_frontier_{0};
  std::atomic<uint64_t> checkpoints_taken_{0};
  std::atomic<uint64_t> state_requests_{0};
  std::atomic<uint64_t> snapshots_installed_{0};
  std::atomic<uint64_t> snapshot_payload_rejects_{0};
  std::atomic<uint64_t> client_request_msgs_{0};
  std::atomic<uint64_t> replica_msgs_{0};
  std::atomic<uint64_t> client_reply_msgs_{0};

  std::mutex rng_mu_;
  Rng client_rng_;
  std::atomic<bool> shutdown_{false};
};

// CoordinationService adapter over an SmrCluster — the CoC backend's
// DepSpace-over-BFT-SMaRt deployment.
class ReplicatedCoordination : public CoordinationService {
 public:
  ReplicatedCoordination(Environment* env, SmrConfig config, uint64_t seed = 29)
      : cluster_(env, config, seed) {}

  Result<CoordReply> Submit(const CoordCommand& command) override {
    return cluster_.Execute(command);
  }

  // Real asynchrony: the protocol round runs on the shared executor, so the
  // caller can overlap coordination accesses with storage work. The future's
  // charge is the round's modelled latency (recorded by Execute), delivered
  // to whoever waits on it — never double-counted against the submitter.
  Future<Result<CoordReply>> SubmitAsync(const CoordCommand& command) override {
    return SubmitTracked(&inflight_, [this, command] {
      return cluster_.Execute(command);
    });
  }

  // The order-quorum-vouched digest across replicas (empty while not
  // converged) — the fingerprint an operator compares against other
  // deployments or across restarts.
  Bytes StateDigest() override { return cluster_.quorum_state_digest(); }

  SmrCluster& cluster() { return cluster_; }

 private:
  SmrCluster cluster_;
  // Declared after cluster_: destroyed first, so the destructor waits for
  // in-flight async submissions before the cluster shuts down.
  InFlightTracker inflight_;
};

}  // namespace scfs

#endif  // SCFS_COORD_SMR_H_
