#include "src/coord/partitioned_coordination.h"

#include <algorithm>

#include "src/crypto/sha256.h"

namespace scfs {

namespace {

// FNV-1a 64-bit: stable across platforms and processes, so a key's
// partition is a pure function of the key and the partition count —
// clients, replayed intents and restarted deployments all agree on it.
//
// Raw FNV-1a needs the avalanche finalizer below: its low k bits are an
// affine function (over GF(2)) of the input bits — the xor is linear and
// the prime multiply is carry-free mod small 2^k — so for key families
// sharing a suffix, like "m:<path>/" vs "lk:<path>" of the same path,
// hash agreement mod a power-of-two partition count is *constant* across
// all paths (always or never co-located) instead of 1/N. The SplitMix64
// finalizer mixes high bits into low, restoring per-key independence.
uint64_t Fnv1a64(const std::string& key) {
  uint64_t hash = 1469598103934665603ull;
  for (unsigned char c : key) {
    hash ^= c;
    hash *= 1099511628211ull;
  }
  hash ^= hash >> 30;
  hash *= 0xbf58476d1ce4e5b9ull;
  hash ^= hash >> 27;
  hash *= 0x94d049bb133111ebull;
  hash ^= hash >> 31;
  return hash;
}

}  // namespace

PartitionedCoordination::PartitionedCoordination(
    Environment* env, PartitionedCoordinationConfig config, uint64_t seed)
    : env_(env), config_(config) {
  const unsigned n = std::max(1u, config_.partitions);
  partitions_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    // Distinct seeds per partition: independent leaders, link jitter and
    // client rngs, as physically separate clusters would have.
    partitions_.push_back(std::make_unique<SmrCluster>(
        env_, config_.smr, seed + i * 7776151ull));
  }
}

unsigned PartitionedCoordination::PartitionOf(const std::string& key) const {
  return static_cast<unsigned>(Fnv1a64(PartitionRoutingKey(key)) %
                               partitions_.size());
}

Result<CoordReply> PartitionedCoordination::Submit(
    const CoordCommand& command) {
  switch (command.op) {
    case CoordOp::kReadPrefix:
    case CoordOp::kExportPrefix:
    // A prefix lease must cover the prefix's keys on every partition (they
    // hash across all of them), so the grant scatters like a prefix read;
    // the merged expiry is the most conservative (minimum) per-partition
    // expiry, and a mutation on any partition revokes its slice and
    // notifies — invalidation is by prefix, so one notice suffices.
    case CoordOp::kLeaseAcquire:
    case CoordOp::kLeaseRelease:
      return ScatterGather(command);
    case CoordOp::kRenamePrefix:
      if (partitions_.size() > 1) {
        // A prefix's keys hash across partitions; an in-place rename cannot
        // be atomic. Callers use the intent-record protocol built on
        // ExportPrefix/ImportEntry (MetadataService::RenameSubtree).
        return NotSupportedError(
            "kRenamePrefix spans partitions; use the intent-record rename");
      }
      break;
    default:
      break;
  }
  return partitions_[PartitionOf(command.key)]->Execute(command);
}

Result<CoordReply> PartitionedCoordination::ScatterGather(
    const CoordCommand& command) {
  if (partitions_.size() == 1) {
    return partitions_[0]->Execute(command);
  }
  // Concurrent fan-out on the shared executor; the WhenAll join charges the
  // caller the slowest partition's round, not the sum — the scatter is one
  // parallel round, exactly like a DepSky cloud fan-out.
  std::vector<Future<Result<CoordReply>>> rounds;
  rounds.reserve(partitions_.size());
  for (auto& partition : partitions_) {
    SmrCluster* cluster = partition.get();
    rounds.push_back(SubmitTracked(
        &inflight_, [cluster, command] { return cluster->Execute(command); }));
  }
  std::vector<Result<CoordReply>> results = WhenAll(std::move(rounds)).Get();

  CoordReply merged;
  uint64_t min_expiry = UINT64_MAX;
  for (auto& result : results) {
    if (!result.ok()) {
      return result.status();  // transport-level failure of one partition
    }
    if (!result->ok()) {
      if (command.op == CoordOp::kLeaseRelease &&
          result->code == ErrorCode::kNotFound) {
        // A partition whose lease slice already expired has nothing to
        // release; the holder's intent is satisfied either way.
        continue;
      }
      // A state-machine error (e.g. kPermissionDenied from an export)
      // poisons the whole scatter: the caller must not see a partial view.
      return *result;
    }
    min_expiry = std::min(min_expiry, result->a);
    merged.entries.insert(merged.entries.end(),
                          std::make_move_iterator(result->entries.begin()),
                          std::make_move_iterator(result->entries.end()));
  }
  // Partitions return their slices sorted (TupleSpace iterates an ordered
  // map); the merged view restores the global order a single cluster would
  // have returned.
  std::sort(merged.entries.begin(), merged.entries.end(),
            [](const CoordEntryView& a, const CoordEntryView& b) {
              return a.key < b.key;
            });
  if (command.op == CoordOp::kLeaseAcquire) {
    // The holder may serve only as long as EVERY partition's slice is live.
    merged.a = min_expiry == UINT64_MAX ? 0 : min_expiry;
  } else {
    merged.a = merged.entries.size();
  }
  return merged;
}

Future<Result<CoordReply>> PartitionedCoordination::SubmitAsync(
    const CoordCommand& command) {
  return SubmitTracked(&inflight_,
                       [this, command] { return Submit(command); });
}

Bytes PartitionedCoordination::StateDigest() {
  // Deterministic combination, sorted by partition index: hash the
  // concatenation of (index, per-partition order-quorum digest). Two
  // deployments (or one across a restart) that executed the same per-key
  // command history report the same combined fingerprint; any partition
  // without quorum backing makes the whole digest empty ("not converged").
  Bytes combined;
  for (unsigned i = 0; i < partitions_.size(); ++i) {
    Bytes digest = partitions_[i]->quorum_state_digest();
    if (digest.empty()) {
      return {};
    }
    AppendU32(&combined, i);
    AppendBytes(&combined, digest);
  }
  return Sha256::Hash(combined);
}

SmrCounters PartitionedCoordination::counters() const {
  SmrCounters out;
  for (const auto& partition : partitions_) {
    out += partition->counters();
  }
  return out;
}

SmrCounters PartitionedCoordination::partition_counters(
    unsigned partition) const {
  return partitions_[partition]->counters();
}

PartitionLoadSnapshot PartitionedCoordination::LoadSnapshot() const {
  PartitionLoadSnapshot out;
  out.at = env_->Now();
  out.per_partition.reserve(partitions_.size());
  for (const auto& partition : partitions_) {
    out.per_partition.push_back(partition->counters());
  }
  return out;
}

std::vector<double> PartitionOpsPerSecond(const PartitionLoadSnapshot& before,
                                          const PartitionLoadSnapshot& after) {
  if (before.per_partition.size() != after.per_partition.size() ||
      after.at <= before.at) {
    return {};
  }
  const double seconds = ToSeconds(after.at - before.at);
  std::vector<double> out;
  out.reserve(after.per_partition.size());
  for (size_t p = 0; p < after.per_partition.size(); ++p) {
    SmrCounters delta = after.per_partition[p];
    delta -= before.per_partition[p];
    out.push_back(
        static_cast<double>(delta.ordered_commands + delta.fast_path_reads) /
        seconds);
  }
  return out;
}

uint64_t PartitionedCoordination::reply_bytes_out() const {
  uint64_t out = 0;
  for (const auto& partition : partitions_) {
    out += partition->reply_bytes_out();
  }
  return out;
}

}  // namespace scfs
