#include "src/coord/partitioned_coordination.h"

#include <algorithm>
#include <utility>

#include "src/crypto/sha256.h"

namespace scfs {

namespace {

// FNV-1a 64-bit: stable across platforms and processes, so a key's
// partition is a pure function of the key and the route map — clients,
// replayed intents and restarted deployments all agree on it.
//
// Raw FNV-1a needs the avalanche finalizer below: its low k bits are an
// affine function (over GF(2)) of the input bits — the xor is linear and
// the prime multiply is carry-free mod small 2^k — so for key families
// sharing a suffix, like "m:<path>/" vs "lk:<path>" of the same path,
// hash agreement mod a power-of-two partition count is *constant* across
// all paths (always or never co-located) instead of 1/N. The SplitMix64
// finalizer mixes high bits into low, restoring per-key independence. The
// elastic plane routes by contiguous hash *ranges* rather than mod-N, so
// the finalizer additionally guarantees keys spread uniformly over the
// whole 64-bit space (range boundaries are quantiles of a uniform hash).
uint64_t Fnv1a64(const std::string& key) {
  uint64_t hash = 1469598103934665603ull;
  for (unsigned char c : key) {
    hash ^= c;
    hash *= 1099511628211ull;
  }
  hash ^= hash >> 30;
  hash *= 0xbf58476d1ce4e5b9ull;
  hash ^= hash >> 27;
  hash *= 0x94d049bb133111ebull;
  hash ^= hash >> 31;
  return hash;
}

// Internal migration-record keyspace. Entries under it are owned by the
// coordination admin principal, so user ReadPrefix sweeps skip them (ACL
// filtering) and user traffic can never collide with them.
constexpr const char kElasticPrefix[] = "__elastic:";
constexpr const char kIntentPrefix[] = "__elastic:intent:";
constexpr const char kCommitPrefix[] = "__elastic:commit:";

std::string Hex64(uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<size_t>(i)] = digits[v & 0xf];
    v >>= 4;
  }
  return out;
}

bool StartsWith(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

// How many times a single-key command re-routes on a stale-map rejection
// before giving up. Each committed migration bumps the epoch by one, and at
// most one migration is in flight, so one retry normally suffices; the
// budget only guards against a pathological storm of back-to-back splits.
constexpr int kMaxRouteRetries = 8;

}  // namespace

uint64_t PartitionRoutingHash(const std::string& key) {
  return Fnv1a64(PartitionRoutingKey(key));
}

unsigned RouteMap::PartitionForHash(uint64_t hash) const {
  // Entry i covers [ranges[i].start, ranges[i+1].start): the owner is the
  // last range whose start is <= hash.
  auto it = std::upper_bound(ranges.begin(), ranges.end(), hash,
                             [](uint64_t h, const RouteRange& r) {
                               return h < r.start;
                             });
  return std::prev(it)->partition;
}

RouteMap RouteMap::Uniform(unsigned active) {
  RouteMap map;
  map.epoch = 1;
  map.ranges.reserve(active);
  for (unsigned i = 0; i < active; ++i) {
    // Exact quantiles of the 64-bit hash space: (i << 64) / active.
    const uint64_t start = static_cast<uint64_t>(
        (static_cast<unsigned __int128>(i) << 64) / active);
    map.ranges.push_back(RouteRange{start, i});
  }
  return map;
}

std::vector<double> PartitionOpsPerSecond(const PartitionLoadSnapshot& before,
                                          const PartitionLoadSnapshot& after) {
  if (before.per_partition.size() != after.per_partition.size() ||
      after.at <= before.at) {
    return {};
  }
  const double seconds = ToSeconds(after.at - before.at);
  std::vector<double> out;
  out.reserve(after.per_partition.size());
  for (size_t p = 0; p < after.per_partition.size(); ++p) {
    SmrCounters delta = after.per_partition[p];
    delta -= before.per_partition[p];
    out.push_back(
        static_cast<double>(delta.ordered_commands + delta.fast_path_reads) /
        seconds);
  }
  return out;
}

double PartitionHotShare(const PartitionLoadSnapshot& before,
                         const PartitionLoadSnapshot& after) {
  const std::vector<double> rates = PartitionOpsPerSecond(before, after);
  double total = 0;
  double top = 0;
  for (double rate : rates) {
    total += rate;
    top = std::max(top, rate);
  }
  return total > 0 ? top / total : 0.0;
}

PartitionedCoordination::PartitionedCoordination(
    Environment* env, PartitionedCoordinationConfig config, uint64_t seed)
    : env_(env), config_(std::move(config)) {
  const unsigned active = std::max(1u, config_.partitions);
  const unsigned n = active + config_.spare_partitions;
  partitions_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    // Distinct seeds per partition: independent leaders, link jitter and
    // client rngs, as physically separate clusters would have.
    partitions_.push_back(std::make_unique<SmrCluster>(
        env_, config_.smr, seed + i * 7776151ull));
  }
  map_ = std::make_shared<const RouteMap>(RouteMap::Uniform(active));
  if (config_.auto_split) {
    controller_ = std::thread([this] { ControllerLoop(); });
  }
}

PartitionedCoordination::~PartitionedCoordination() {
  controller_stop_.store(true);
  if (controller_.joinable()) {
    controller_.join();
  }
}

unsigned PartitionedCoordination::PartitionOf(const std::string& key) const {
  const uint64_t hash = PartitionRoutingHash(key);
  std::lock_guard<std::mutex> lock(route_mu_);
  return map_->PartitionForHash(hash);
}

RouteMap PartitionedCoordination::route_map() const {
  std::lock_guard<std::mutex> lock(route_mu_);
  return *map_;
}

uint64_t PartitionedCoordination::route_epoch() const {
  std::lock_guard<std::mutex> lock(route_mu_);
  return map_->epoch;
}

unsigned PartitionedCoordination::active_partition_count() const {
  std::lock_guard<std::mutex> lock(route_mu_);
  std::vector<bool> owns(partitions_.size(), false);
  for (const RouteRange& range : map_->ranges) {
    owns[range.partition] = true;
  }
  return static_cast<unsigned>(std::count(owns.begin(), owns.end(), true));
}

ElasticCounters PartitionedCoordination::elastic_counters() const {
  std::lock_guard<std::mutex> lock(route_mu_);
  return elastic_;
}

std::vector<double> PartitionedCoordination::WindowedOpsPerSecond() const {
  std::lock_guard<std::mutex> lock(route_mu_);
  return windowed_ops_s_;
}

double PartitionedCoordination::WindowedHotShare() const {
  std::lock_guard<std::mutex> lock(route_mu_);
  double total = 0;
  double top = 0;
  for (double rate : windowed_ops_s_) {
    total += rate;
    top = std::max(top, rate);
  }
  return total > 0 ? top / total : 0.0;
}

std::shared_ptr<const RouteMap> PartitionedCoordination::ClientRouteMap(
    const std::string& client) {
  std::lock_guard<std::mutex> lock(route_mu_);
  auto it = client_maps_.find(client);
  if (it != client_maps_.end()) {
    return it->second;
  }
  // A client first seen now starts from the current map (it would fetch it
  // at mount); laziness only shows across subsequent route changes.
  client_maps_.emplace(client, map_);
  return map_;
}

Result<CoordReply> PartitionedCoordination::Submit(
    const CoordCommand& command) {
  switch (command.op) {
    case CoordOp::kReadPrefix:
    case CoordOp::kExportPrefix:
    // A prefix lease must cover the prefix's keys on every partition (they
    // hash across all of them), so the grant scatters like a prefix read;
    // the merged expiry is the most conservative (minimum) per-partition
    // expiry, and a mutation on any partition revokes its slice and
    // notifies — invalidation is by prefix, so one notice suffices.
    case CoordOp::kLeaseAcquire:
    case CoordOp::kLeaseRelease:
      return ScatterGather(command);
    case CoordOp::kRenamePrefix:
      if (partitions_.size() > 1) {
        // A prefix's keys hash across partitions; an in-place rename cannot
        // be atomic. Callers use the intent-record protocol built on
        // ExportPrefix/ImportEntry (MetadataService::RenameSubtree).
        return NotSupportedError(
            "kRenamePrefix spans partitions; use the intent-record rename");
      }
      break;
    default:
      break;
  }
  return RoutedExecute(command);
}

Result<CoordReply> PartitionedCoordination::RoutedExecute(
    const CoordCommand& command) {
  const uint64_t hash = PartitionRoutingHash(command.key);
  CoordCommand cmd = command;
  bool counted_stall = false;
  VirtualTime stall_deadline = -1;
  int retries = 0;
  while (true) {
    // Client side: route with the submitter's cached map and tag the
    // command with that map's epoch (the wire-visible half of the lazy
    // distribution protocol).
    std::shared_ptr<const RouteMap> client_map = ClientRouteMap(cmd.client);
    const unsigned target = client_map->PartitionForHash(hash);
    cmd.route_epoch = client_map->epoch;

    // Server side: the partition boundary enforces the authoritative map
    // strictly. A mutation aimed into a mid-migration (write-frozen) range
    // stalls; a command routed to a partition that no longer owns its key
    // is rejected together with the current map.
    bool frozen = false;
    bool rejected = false;
    {
      std::lock_guard<std::mutex> lock(route_mu_);
      frozen = migrating_.has_value() && !cmd.is_read_only() &&
               HashInRange(hash, *migrating_);
      if (frozen && !counted_stall) {
        counted_stall = true;
        ++elastic_.migration_stalls;
      }
      if (!frozen && target != map_->PartitionForHash(hash)) {
        // "Misrouted, here is the current map": the client installs it and
        // retries transparently.
        rejected = true;
        ++elastic_.route_epoch_retries;
        client_maps_[cmd.client] = map_;
      }
    }
    if (frozen) {
      if (stall_deadline < 0) {
        stall_deadline = env_->Now() + config_.migration_stall_timeout;
      }
      if (env_->Now() >= stall_deadline) {
        return UnavailableError("mutation stalled behind a wedged migration");
      }
      env_->Sleep(config_.migration_stall_poll);
      continue;
    }
    if (rejected) {
      if (++retries > kMaxRouteRetries) {
        return UnavailableError("route retries exhausted");
      }
      continue;
    }
    return partitions_[target]->Execute(cmd);
  }
}

Result<CoordReply> PartitionedCoordination::ScatterGather(
    const CoordCommand& command) {
  if (partitions_.size() == 1) {
    return partitions_[0]->Execute(command);
  }
  // Concurrent fan-out on the shared executor; the WhenAll join charges the
  // caller the slowest partition's round, not the sum — the scatter is one
  // parallel round, exactly like a DepSky cloud fan-out.
  std::vector<Future<Result<CoordReply>>> rounds;
  rounds.reserve(partitions_.size());
  for (auto& partition : partitions_) {
    SmrCluster* cluster = partition.get();
    rounds.push_back(SubmitTracked(
        &inflight_, [cluster, command] { return cluster->Execute(command); }));
  }
  std::vector<Result<CoordReply>> results = WhenAll(std::move(rounds)).Get();

  // Merge tagged with the source partition: mid-migration an entry
  // legitimately exists on both the source (until retirement) and the
  // destination (after import), and the merge must count it once — the
  // copy on the range's current owner wins.
  std::vector<std::pair<unsigned, CoordEntryView>> tagged;
  CoordReply merged;
  uint64_t min_expiry = UINT64_MAX;
  for (unsigned p = 0; p < results.size(); ++p) {
    auto& result = results[p];
    if (!result.ok()) {
      return result.status();  // transport-level failure of one partition
    }
    if (!result->ok()) {
      if (command.op == CoordOp::kLeaseRelease &&
          result->code == ErrorCode::kNotFound) {
        // A partition whose lease slice already expired has nothing to
        // release; the holder's intent is satisfied either way.
        continue;
      }
      // A state-machine error (e.g. kPermissionDenied from an export)
      // poisons the whole scatter: the caller must not see a partial view.
      return *result;
    }
    min_expiry = std::min(min_expiry, result->a);
    for (auto& entry : result->entries) {
      tagged.emplace_back(p, std::move(entry));
    }
  }
  std::shared_ptr<const RouteMap> owner_map;
  {
    std::lock_guard<std::mutex> lock(route_mu_);
    owner_map = map_;
  }
  // Partitions return their slices sorted (TupleSpace iterates an ordered
  // map); the merged view restores the global order a single cluster would
  // have returned. Within one key, the current owner's copy sorts first and
  // the duplicate is dropped.
  std::sort(tagged.begin(), tagged.end(),
            [&](const std::pair<unsigned, CoordEntryView>& a,
                const std::pair<unsigned, CoordEntryView>& b) {
              if (a.second.key != b.second.key) {
                return a.second.key < b.second.key;
              }
              const uint64_t hash = PartitionRoutingHash(a.second.key);
              const unsigned owner = owner_map->PartitionForHash(hash);
              return (a.first == owner) > (b.first == owner);
            });
  merged.entries.reserve(tagged.size());
  for (auto& item : tagged) {
    if (!merged.entries.empty() &&
        merged.entries.back().key == item.second.key) {
      continue;  // duplicate from a non-owner partition (mid-migration)
    }
    merged.entries.push_back(std::move(item.second));
  }
  if (command.op == CoordOp::kLeaseAcquire) {
    // The holder may serve only as long as EVERY partition's slice is live.
    merged.a = min_expiry == UINT64_MAX ? 0 : min_expiry;
  } else {
    merged.a = merged.entries.size();
  }
  return merged;
}

Future<Result<CoordReply>> PartitionedCoordination::SubmitAsync(
    const CoordCommand& command) {
  return SubmitTracked(&inflight_,
                       [this, command] { return Submit(command); });
}

Bytes PartitionedCoordination::StateDigest() {
  // Deterministic combination, sorted by partition index: hash the
  // concatenation of (index, per-partition order-quorum digest). Two
  // deployments (or one across a restart) that executed the same per-key
  // command history report the same combined fingerprint; any partition
  // without quorum backing makes the whole digest empty ("not converged").
  Bytes combined;
  for (unsigned i = 0; i < partitions_.size(); ++i) {
    Bytes digest = partitions_[i]->quorum_state_digest();
    if (digest.empty()) {
      return {};
    }
    AppendU32(&combined, i);
    AppendBytes(&combined, digest);
  }
  return Sha256::Hash(combined);
}

SmrCounters PartitionedCoordination::counters() const {
  SmrCounters out;
  for (const auto& partition : partitions_) {
    out += partition->counters();
  }
  return out;
}

SmrCounters PartitionedCoordination::partition_counters(
    unsigned partition) const {
  return partitions_[partition]->counters();
}

PartitionLoadSnapshot PartitionedCoordination::LoadSnapshot() const {
  PartitionLoadSnapshot out;
  out.at = env_->Now();
  out.per_partition.reserve(partitions_.size());
  for (const auto& partition : partitions_) {
    out.per_partition.push_back(partition->counters());
  }
  return out;
}

uint64_t PartitionedCoordination::reply_bytes_out() const {
  uint64_t out = 0;
  for (const auto& partition : partitions_) {
    out += partition->reply_bytes_out();
  }
  return out;
}

// -- Elastic repartitioning -------------------------------------------------

std::string PartitionedCoordination::IntentKey(const MigrationSpec& spec) {
  return kIntentPrefix + Hex64(spec.begin);
}

std::string PartitionedCoordination::CommitKey(const MigrationSpec& spec) {
  return kCommitPrefix + Hex64(spec.begin);
}

Bytes PartitionedCoordination::EncodeSpec(const MigrationSpec& spec) {
  Bytes out;
  AppendU64(&out, spec.begin);
  AppendU64(&out, spec.end);
  AppendU64(&out, spec.src);
  AppendU64(&out, spec.dst);
  AppendU64(&out, spec.merge ? 1 : 0);
  return out;
}

bool PartitionedCoordination::DecodeSpec(ConstByteSpan payload,
                                         MigrationSpec* spec) {
  ByteReader reader(payload);
  uint64_t src = 0;
  uint64_t dst = 0;
  uint64_t merge = 0;
  if (!reader.ReadU64(&spec->begin) || !reader.ReadU64(&spec->end) ||
      !reader.ReadU64(&src) || !reader.ReadU64(&dst) ||
      !reader.ReadU64(&merge)) {
    return false;
  }
  spec->src = static_cast<unsigned>(src);
  spec->dst = static_cast<unsigned>(dst);
  spec->merge = merge != 0;
  return true;
}

bool PartitionedCoordination::HashInRange(uint64_t hash,
                                          const MigrationSpec& spec) {
  if (spec.end == 0) {
    return hash >= spec.begin;  // range reaches the top of the hash space
  }
  return hash >= spec.begin && hash < spec.end;
}

Result<CoordReply> PartitionedCoordination::AdminExecute(
    unsigned partition, CoordOp op, const std::string& key, Bytes value) {
  // Migration commands bypass the router on purpose: they address a
  // specific partition (the source or destination of a move), not "the
  // owner of key" — mid-migration those disagree by construction.
  CoordCommand cmd;
  cmd.op = op;
  cmd.client = kCoordAdminPrincipal;
  cmd.key = key;
  cmd.value = std::move(value);
  return partitions_[partition]->Execute(cmd);
}

Status PartitionedCoordination::BeginMigration(const MigrationSpec& spec) {
  std::lock_guard<std::mutex> lock(route_mu_);
  if (migrating_.has_value()) {
    return BusyError("a range migration is already in flight");
  }
  migrating_ = spec;  // write-freezes the range
  return OkStatus();
}

Result<std::vector<CoordEntryView>> PartitionedCoordination::ExportRange(
    const MigrationSpec& spec) {
  // One ordered export of the source's full slice, filtered to the moving
  // range. The range is write-frozen, so this snapshot cannot go stale
  // between export and commit.
  auto exported = AdminExecute(spec.src, CoordOp::kExportPrefix, "");
  if (!exported.ok()) {
    return exported.status();
  }
  if (!(*exported).ok()) {
    return (*exported).ToStatus("migration export");
  }
  std::vector<CoordEntryView> moved;
  for (auto& entry : (*exported).entries) {
    if (StartsWith(entry.key, kElasticPrefix)) {
      continue;  // migration records themselves never migrate
    }
    if (!HashInRange(PartitionRoutingHash(entry.key), spec)) {
      continue;
    }
    moved.push_back(std::move(entry));
  }
  return moved;
}

void PartitionedCoordination::CommitRouteChange(
    const MigrationSpec& spec, const std::vector<CoordEntryView>& moved) {
  {
    std::lock_guard<std::mutex> lock(route_mu_);
    if (map_->PartitionForHash(spec.begin) != spec.dst) {
      // Rewrite the authoritative map: carve [begin, end) out of whatever
      // ranges cover it, hand it to dst, coalesce, bump the epoch by one.
      RouteMap next;
      next.epoch = map_->epoch + 1;
      auto emit = [&next](uint64_t start, unsigned partition) {
        if (!next.ranges.empty() &&
            next.ranges.back().partition == partition) {
          return;  // coalesce adjacent ranges of one partition
        }
        if (!next.ranges.empty() && next.ranges.back().start == start) {
          next.ranges.back().partition = partition;  // replace empty slice
          return;
        }
        next.ranges.push_back(RouteRange{start, partition});
      };
      for (size_t i = 0; i < map_->ranges.size(); ++i) {
        const RouteRange& range = map_->ranges[i];
        const uint64_t range_end = i + 1 < map_->ranges.size()
                                       ? map_->ranges[i + 1].start
                                       : 0;  // 0 = top of the hash space
        // Split this range at the migration boundaries and re-emit each
        // piece with its (possibly new) owner. A piece is inside the
        // migrating slice iff its start is.
        std::vector<uint64_t> cuts = {range.start};
        if (spec.begin > range.start &&
            (range_end == 0 || spec.begin < range_end)) {
          cuts.push_back(spec.begin);
        }
        if (spec.end != 0 && spec.end > range.start &&
            (range_end == 0 || spec.end < range_end)) {
          cuts.push_back(spec.end);
        }
        std::sort(cuts.begin(), cuts.end());
        for (uint64_t cut : cuts) {
          emit(cut, HashInRange(cut, spec) ? spec.dst : range.partition);
        }
      }
      map_ = std::make_shared<const RouteMap>(std::move(next));
    }
  }
  // Revoke delegated caches covering the moved keys BEFORE lifting the
  // write freeze: the controller runs below the LeasedCoordination
  // decorator, so the piggybacked revocation plumbing never saw the
  // migration — this hook is its replacement. Holders must drop before any
  // post-commit mutation (which would revoke only on the NEW owner, whose
  // lease slice the old grant does not live on) can be acknowledged.
  if (config_.on_migration_commit && !moved.empty()) {
    std::vector<LeaseRevocation> revoked;
    revoked.reserve(moved.size());
    for (const auto& entry : moved) {
      revoked.push_back(LeaseRevocation{entry.key, 0});
    }
    config_.on_migration_commit(revoked);
  }
  std::lock_guard<std::mutex> lock(route_mu_);
  migrating_.reset();  // lift the write freeze; stalled mutations re-route
}

Status PartitionedCoordination::RunMigration(const MigrationSpec& spec,
                                             bool crash_injection,
                                             bool intent_exists) {
  auto crash_at = [&](MigrationCrashPoint point) {
    if (!crash_injection) {
      return false;
    }
    MigrationCrashPoint expected = point;
    return crash_point_.compare_exchange_strong(expected,
                                                MigrationCrashPoint::kNone);
  };
  const VirtualTime started = env_->Now();

  // Phase 1 — prepare: a durable intent on the source partition. From here
  // the migration is replayable; the range stays write-frozen until commit.
  if (!intent_exists) {
    auto intent = AdminExecute(spec.src, CoordOp::kWrite, IntentKey(spec),
                               EncodeSpec(spec));
    if (!intent.ok()) {
      return intent.status();
    }
    if (!(*intent).ok()) {
      return (*intent).ToStatus("migration intent");
    }
  }
  if (crash_at(MigrationCrashPoint::kAfterIntent)) {
    return InternalError("injected crash after intent");
  }

  // A replay may land after the commit marker was written: then the data
  // already moved and only the map install + retirement remain.
  bool committed = false;
  {
    auto marker = AdminExecute(spec.dst, CoordOp::kRead, CommitKey(spec));
    if (!marker.ok()) {
      return marker.status();
    }
    committed = (*marker).ok();
  }

  auto moved = ExportRange(spec);
  if (!moved.ok()) {
    return moved.status();
  }

  if (!committed) {
    // Phase 2 — copy: import every entry of the frozen range into the
    // destination. Imports are idempotent (the new version derives from the
    // payload), so a replay that re-imports lands on identical state.
    const size_t import_count =
        crash_at(MigrationCrashPoint::kMidImport)
            ? moved->size() / 2  // model a controller dying mid-copy
            : moved->size();
    std::vector<Future<Result<CoordReply>>> imports;
    imports.reserve(import_count);
    for (size_t i = 0; i < import_count; ++i) {
      const CoordEntryView& entry = (*moved)[i];
      imports.push_back(SubmitTracked(&inflight_, [this, &spec, &entry] {
        return AdminExecute(spec.dst, CoordOp::kImportEntry, entry.key,
                            entry.value);
      }));
    }
    for (auto& result : WhenAll(std::move(imports)).Get()) {
      if (!result.ok()) {
        return result.status();
      }
      if (!result->ok()) {
        return result->ToStatus("migration import");
      }
    }
    if (import_count < moved->size()) {
      return InternalError("injected crash mid-import");
    }

    // Phase 3 — commit marker on the destination: the migration's point of
    // no return. Before it a replay re-copies; after it the move is a fact
    // and only the route change and retirement remain.
    auto marker = AdminExecute(spec.dst, CoordOp::kWrite, CommitKey(spec),
                               EncodeSpec(spec));
    if (!marker.ok()) {
      return marker.status();
    }
    if (!(*marker).ok()) {
      return (*marker).ToStatus("migration commit");
    }
    if (crash_at(MigrationCrashPoint::kAfterCommit)) {
      return InternalError("injected crash after commit");
    }
  }

  // Phase 4 — install the post-migration map (epoch + 1), revoke leases on
  // the moved keys, lift the write freeze.
  CommitRouteChange(spec, *moved);

  // Phase 5 — retire: drop the moved entries from the source, then the
  // commit marker, then (last) the intent. The intent is the replay
  // trigger, so any crash inside retirement leaves a replayable state; a
  // re-retire tolerates records a previous attempt already removed.
  for (const auto& entry : *moved) {
    auto removed = AdminExecute(spec.src, CoordOp::kRemove, entry.key);
    if (!removed.ok()) {
      return removed.status();
    }
    if (!(*removed).ok() && (*removed).code != ErrorCode::kNotFound) {
      return (*removed).ToStatus("migration retire");
    }
  }
  const std::pair<unsigned, std::string> records[] = {
      {spec.dst, CommitKey(spec)}, {spec.src, IntentKey(spec)}};
  for (const auto& [partition, key] : records) {
    auto removed = AdminExecute(partition, CoordOp::kRemove, key);
    if (!removed.ok()) {
      return removed.status();
    }
    if (!(*removed).ok() && (*removed).code != ErrorCode::kNotFound) {
      return (*removed).ToStatus("migration retire");
    }
  }

  {
    std::lock_guard<std::mutex> lock(route_mu_);
    if (spec.merge) {
      ++elastic_.merges;
    } else {
      ++elastic_.splits;
    }
    elastic_.keys_migrated += moved->size();
    elastic_.last_migration_us = static_cast<uint64_t>(env_->Now() - started);
    // The load landscape just changed shape; stale EWMAs would re-trigger
    // the controller on history.
    windowed_ops_s_.clear();
  }
  return OkStatus();
}

Status PartitionedCoordination::MigrateRange(const MigrationSpec& spec) {
  Status begun = BeginMigration(spec);
  if (!begun.ok()) {
    return begun;
  }
  // On an injected crash the freeze and the durable records stay in place
  // for ReplayMigrations — exactly what a dead controller leaves behind.
  return RunMigration(spec, /*crash_injection=*/true, /*intent_exists=*/false);
}

Status PartitionedCoordination::SplitPartition(unsigned src) {
  if (src >= partitions_.size()) {
    return InvalidArgumentError("no such partition");
  }
  MigrationSpec spec;
  {
    std::lock_guard<std::mutex> lock(route_mu_);
    if (migrating_.has_value()) {
      return BusyError("a range migration is already in flight");
    }
    // The spare: a partition owning no ranges.
    std::vector<bool> owns(partitions_.size(), false);
    for (const RouteRange& range : map_->ranges) {
      owns[range.partition] = true;
    }
    unsigned spare = static_cast<unsigned>(partitions_.size());
    for (unsigned p = 0; p < partitions_.size(); ++p) {
      if (!owns[p]) {
        spare = p;
        break;
      }
    }
    if (spare == partitions_.size()) {
      return UnavailableError("no spare partition to split onto");
    }
    // Split src's widest range at its hash midpoint: the top half moves.
    uint64_t best_start = 0;
    uint64_t best_width = 0;  // mod 2^64: 0 encodes the full space
    bool found = false;
    for (size_t i = 0; i < map_->ranges.size(); ++i) {
      if (map_->ranges[i].partition != src) {
        continue;
      }
      const uint64_t start = map_->ranges[i].start;
      const uint64_t end =
          i + 1 < map_->ranges.size() ? map_->ranges[i + 1].start : 0;
      const uint64_t width = end - start;  // mod 2^64
      const bool wider =
          !found || width == 0 || (best_width != 0 && width > best_width);
      if (wider) {
        found = true;
        best_start = start;
        best_width = width;
      }
    }
    if (!found) {
      return FailedPreconditionError("partition owns no range to split");
    }
    const uint64_t half = best_width == 0 ? (1ull << 63) : best_width / 2;
    if (half == 0) {
      return FailedPreconditionError("range too narrow to split");
    }
    spec.begin = best_start + half;
    spec.end = best_start + best_width;  // mod 2^64: 0 when at the top
    spec.src = src;
    spec.dst = spare;
    spec.merge = false;
  }
  return MigrateRange(spec);
}

Status PartitionedCoordination::MergePartitions(unsigned src, unsigned dst) {
  if (src >= partitions_.size() || dst >= partitions_.size() || src == dst) {
    return InvalidArgumentError("bad merge pair");
  }
  // Move src's ranges onto dst one migration at a time (each is its own
  // intent/commit cycle); when the last lands, src is a spare again.
  while (true) {
    MigrationSpec spec;
    {
      std::lock_guard<std::mutex> lock(route_mu_);
      if (migrating_.has_value()) {
        return BusyError("a range migration is already in flight");
      }
      bool found = false;
      for (size_t i = 0; i < map_->ranges.size(); ++i) {
        if (map_->ranges[i].partition != src) {
          continue;
        }
        spec.begin = map_->ranges[i].start;
        spec.end = i + 1 < map_->ranges.size() ? map_->ranges[i + 1].start : 0;
        spec.src = src;
        spec.dst = dst;
        spec.merge = true;
        found = true;
        break;
      }
      if (!found) {
        return OkStatus();  // src owns nothing (anymore)
      }
    }
    Status moved = MigrateRange(spec);
    if (!moved.ok()) {
      return moved;
    }
  }
}

Status PartitionedCoordination::ReplayMigrations() {
  // The coordination plane's Mount analog: scan every partition for
  // outstanding intents and roll each forward. At most one migration is
  // ever in flight, so at most one intent exists; the scan is still
  // exhaustive for robustness.
  for (unsigned p = 0; p < partitions_.size(); ++p) {
    auto intents = AdminExecute(p, CoordOp::kReadPrefix, kIntentPrefix);
    if (!intents.ok()) {
      return intents.status();
    }
    if (!(*intents).ok()) {
      return (*intents).ToStatus("migration replay scan");
    }
    for (const auto& record : (*intents).entries) {
      MigrationSpec spec;
      if (!DecodeSpec(record.value, &spec)) {
        return CorruptionError("undecodable migration intent");
      }
      {
        // Re-freeze the range (a crashed controller's freeze may or may not
        // have survived — after a process restart it would not have).
        std::lock_guard<std::mutex> lock(route_mu_);
        migrating_ = spec;
      }
      Status replayed = RunMigration(spec, /*crash_injection=*/false,
                                     /*intent_exists=*/true);
      if (!replayed.ok()) {
        return replayed;
      }
    }
  }
  return OkStatus();
}

void PartitionedCoordination::ControllerLoop() {
  // The load-aware split controller: one extra concurrent actor per
  // deployment, folding windowed counter deltas — never cumulative
  // counters, which blend current load with all history since mount — into
  // per-partition ops/s EWMAs, and migrating ranges when the landscape
  // stays skewed. Requires a scaled environment (in instant mode the
  // window sleeps would race the virtual clock forward).
  PartitionLoadSnapshot prev = LoadSnapshot();
  while (!controller_stop_.load()) {
    VirtualDuration remaining = config_.split_window;
    while (remaining > 0 && !controller_stop_.load()) {
      const VirtualDuration chunk =
          std::min<VirtualDuration>(remaining, 50 * kMillisecond);
      env_->Sleep(chunk);
      remaining -= chunk;
    }
    if (controller_stop_.load()) {
      break;
    }
    PartitionLoadSnapshot snap = LoadSnapshot();
    const std::vector<double> rates = PartitionOpsPerSecond(prev, snap);
    prev = snap;
    if (rates.empty()) {
      continue;
    }
    double total = 0;
    unsigned hot = 0;
    unsigned cold = 0;
    bool busy = false;
    {
      std::lock_guard<std::mutex> lock(route_mu_);
      if (windowed_ops_s_.size() != rates.size()) {
        windowed_ops_s_ = rates;
      } else {
        for (size_t i = 0; i < rates.size(); ++i) {
          windowed_ops_s_[i] = 0.5 * windowed_ops_s_[i] + 0.5 * rates[i];
        }
      }
      std::vector<bool> owns(partitions_.size(), false);
      for (const RouteRange& range : map_->ranges) {
        owns[range.partition] = true;
      }
      cold = static_cast<unsigned>(windowed_ops_s_.size());
      for (unsigned i = 0; i < windowed_ops_s_.size(); ++i) {
        total += windowed_ops_s_[i];
        if (windowed_ops_s_[i] > windowed_ops_s_[hot]) {
          hot = i;
        }
        if (owns[i] && (cold == windowed_ops_s_.size() ||
                        windowed_ops_s_[i] < windowed_ops_s_[cold])) {
          cold = i;
        }
      }
      busy = migrating_.has_value();
    }
    if (busy || total < config_.split_min_total_ops_s) {
      continue;
    }
    const double hot_share = WindowedHotShare();
    if (hot_share > config_.split_hot_share) {
      SplitPartition(hot);  // kUnavailable without a spare; benign
      continue;
    }
    if (config_.merge_cold_share > 0 &&
        active_partition_count() > std::max(1u, config_.partitions)) {
      const std::vector<double> windowed = WindowedOpsPerSecond();
      if (cold < windowed.size() && total > 0 &&
          windowed[cold] / total < config_.merge_cold_share) {
        // Fold the cooled partition into the least-loaded *other* active
        // partition.
        unsigned dst = cold;
        for (unsigned i = 0; i < windowed.size(); ++i) {
          if (i != cold && (dst == cold || windowed[i] < windowed[dst])) {
            dst = i;
          }
        }
        if (dst != cold) {
          MergePartitions(cold, dst);
        }
      }
    }
  }
}

}  // namespace scfs
