#include "src/coord/local_coordination.h"

namespace scfs {

Result<CoordReply> LocalCoordination::Submit(const CoordCommand& command) {
  Bytes request = command.Encode();
  VirtualDuration request_delay;
  VirtualDuration reply_delay;
  CoordReply reply;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (faults_.ShouldFailOperation()) {
      return UnavailableError("coordination service unavailable");
    }
    request_delay = link_.Sample(rng_, request.size());
    reply = space_.Apply(env_->Now() + request_delay, command);
    reply_delay = link_.Sample(rng_, reply.Encode().size());
    reply_bytes_out_ += reply.Encode().size();
  }
  env_->Sleep(request_delay + reply_delay);
  return reply;
}

Bytes LocalCoordination::StateDigest() {
  std::lock_guard<std::mutex> lock(mu_);
  return space_.StateDigest();
}

}  // namespace scfs
