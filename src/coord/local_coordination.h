// LocalCoordination: a single coordination server reached over a wide-area
// link — the SCFS-AWS backend (one EC2 VM in Ireland running DepSpace). Also
// the fast deterministic implementation used by most unit tests.

#ifndef SCFS_COORD_LOCAL_COORDINATION_H_
#define SCFS_COORD_LOCAL_COORDINATION_H_

#include <mutex>

#include "src/common/executor.h"
#include "src/common/rng.h"
#include "src/coord/coordination_service.h"
#include "src/coord/tuple_space.h"
#include "src/sim/environment.h"
#include "src/sim/fault.h"
#include "src/sim/latency.h"

namespace scfs {

class LocalCoordination : public CoordinationService {
 public:
  // `link` is the ONE-WAY client<->server delay; an operation costs two
  // samples (request + reply), matching the paper's 60-100 ms per access.
  LocalCoordination(Environment* env, LatencyModel link, uint64_t seed = 7)
      : env_(env), link_(link), rng_(seed) {}

  Result<CoordReply> Submit(const CoordCommand& command) override;

  // The wide-area round runs on the shared executor so callers overlap it
  // with storage work; the future's charge is the modelled link latency.
  Future<Result<CoordReply>> SubmitAsync(const CoordCommand& command) override {
    return SubmitTracked(&inflight_, [this, command] {
      return Submit(command);
    });
  }

  // Digest of the single server's tuple space, comparable across local
  // deployments and restarts. NOTE: the replicated deployment's digest
  // additionally covers its per-client reply tables (exactly-once state a
  // single server does not keep), so local-vs-replicated comparison tracks
  // digest *changes*, not byte equality.
  Bytes StateDigest() override;

  FaultInjector& faults() { return faults_; }
  TupleSpace& space() { return space_; }

  // Total bytes shipped from server to clients; drives the coordination
  // component of the cost model (Figure 11b: getMetadata = 11.32 u$).
  uint64_t reply_bytes_out() const { return reply_bytes_out_; }

 private:
  Environment* env_;
  LatencyModel link_;
  std::mutex mu_;
  Rng rng_;
  TupleSpace space_;
  FaultInjector faults_;
  uint64_t reply_bytes_out_ = 0;
  // Last member: destroyed first, waiting out in-flight async submissions.
  InFlightTracker inflight_;
};

}  // namespace scfs

#endif  // SCFS_COORD_LOCAL_COORDINATION_H_
