#include "src/coord/lease.h"

namespace scfs {

uint64_t LeaseManager::RegisterHolder(RevokeFn on_revoke) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t id = next_holder_id_++;
  holders_.emplace(id, std::move(on_revoke));
  return id;
}

void LeaseManager::UnregisterHolder(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  holders_.erase(id);
}

void LeaseManager::NotifyRevocations(
    const std::vector<LeaseRevocation>& revoked) {
  if (revoked.empty()) {
    return;
  }
  revocations_.fetch_add(revoked.size());
  // Snapshot the holder list, then invoke callbacks outside the lock: a
  // holder's invalidation path may re-enter the manager (e.g. to record a
  // counter) or take its own locks.
  std::vector<RevokeFn> sinks;
  {
    std::lock_guard<std::mutex> lock(mu_);
    sinks.reserve(holders_.size());
    for (const auto& [id, fn] : holders_) {
      sinks.push_back(fn);
    }
  }
  for (const auto& revocation : revoked) {
    for (const auto& sink : sinks) {
      notifications_.fetch_add(1);
      sink(revocation.prefix);
    }
  }
}

void LeaseManager::InvalidateAll() {
  // The empty prefix covers every key, so holders drop everything.
  NotifyRevocations({LeaseRevocation{std::string(), 0}});
}

void LeaseManager::RegisterLingering(const std::string& lock_key,
                                     ReleaseFn release) {
  std::lock_guard<std::mutex> lock(mu_);
  lingering_[lock_key] = std::move(release);
}

void LeaseManager::UnregisterLingering(const std::string& lock_key) {
  std::lock_guard<std::mutex> lock(mu_);
  lingering_.erase(lock_key);
}

bool LeaseManager::RequestLockRelease(const std::string& lock_key) {
  ReleaseFn release;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = lingering_.find(lock_key);
    if (it == lingering_.end()) {
      return false;
    }
    release = it->second;
    lingering_.erase(it);
  }
  // Outside the registry lock: the holder's release path takes its own
  // mutex and submits an ordered unlock.
  if (!release()) {
    return false;
  }
  linger_handoffs_.fetch_add(1);
  return true;
}

void LeaseManager::SetGrantsSuspended(bool suspended) {
  grants_suspended_.store(suspended);
  if (suspended) {
    // The fault window forces everyone back onto the anchored path: drop
    // every delegated right so no read is served from a cache the window is
    // meant to bypass.
    InvalidateAll();
  }
}

LeaseCounters LeaseManager::counters() const {
  LeaseCounters out;
  out.grants = grants_.load();
  out.revocations = revocations_.load();
  out.notifications = notifications_.load();
  out.local_hits = local_hits_.load();
  out.linger_handoffs = linger_handoffs_.load();
  return out;
}

Result<CoordReply> LeasedCoordination::Submit(const CoordCommand& command) {
  Result<CoordReply> result = inner_->Submit(command);
  if (result.ok() && !result->revoked.empty()) {
    // Synchronous, before the reply reaches the submitter: once a mutation
    // acks, no lease holder may serve the pre-mutation snapshot.
    manager_->NotifyRevocations(result->revoked);
  }
  return result;
}

Future<Result<CoordReply>> LeasedCoordination::SubmitAsync(
    const CoordCommand& command) {
  Promise<Result<CoordReply>> promise;
  LeaseManager* manager = manager_;
  inner_->SubmitAsync(command).OnReady(
      [promise, manager](const Result<CoordReply>& reply,
                         VirtualDuration charge) {
        if (reply.ok() && !reply->revoked.empty()) {
          manager->NotifyRevocations(reply->revoked);
        }
        promise.Set(reply, charge);
      });
  return promise.future();
}

}  // namespace scfs
