#include "src/coord/command.h"

namespace scfs {

Bytes CoordCommand::Encode() const {
  Bytes out;
  out.push_back(static_cast<uint8_t>(op));
  AppendString(&out, client);
  AppendString(&out, key);
  AppendBytes(&out, value);
  AppendString(&out, aux);
  AppendU64(&out, a);
  AppendU64(&out, b);
  AppendU64(&out, route_epoch);
  return out;
}

Result<CoordCommand> CoordCommand::Decode(const Bytes& data) {
  if (data.empty()) {
    return CorruptionError("empty command");
  }
  CoordCommand cmd;
  cmd.op = static_cast<CoordOp>(data[0]);
  Bytes rest(data.begin() + 1, data.end());
  ByteReader reader(rest);
  if (!reader.ReadString(&cmd.client) || !reader.ReadString(&cmd.key) ||
      !reader.ReadBytes(&cmd.value) || !reader.ReadString(&cmd.aux) ||
      !reader.ReadU64(&cmd.a) || !reader.ReadU64(&cmd.b) ||
      !reader.ReadU64(&cmd.route_epoch)) {
    return CorruptionError("truncated command");
  }
  return cmd;
}

Bytes CoordReply::Encode() const {
  Bytes out;
  out.push_back(static_cast<uint8_t>(code));
  AppendBytes(&out, value);
  AppendU64(&out, a);
  AppendU32(&out, static_cast<uint32_t>(entries.size()));
  for (const auto& entry : entries) {
    AppendString(&out, entry.key);
    AppendBytes(&out, entry.value);
    AppendU64(&out, entry.version);
  }
  AppendU32(&out, static_cast<uint32_t>(revoked.size()));
  for (const auto& revocation : revoked) {
    AppendString(&out, revocation.prefix);
    AppendU64(&out, revocation.epoch);
  }
  return out;
}

Result<CoordReply> CoordReply::Decode(const Bytes& data) {
  if (data.empty()) {
    return CorruptionError("empty reply");
  }
  CoordReply reply;
  reply.code = static_cast<ErrorCode>(data[0]);
  Bytes rest(data.begin() + 1, data.end());
  ByteReader reader(rest);
  uint32_t count = 0;
  if (!reader.ReadBytes(&reply.value) || !reader.ReadU64(&reply.a) ||
      !reader.ReadU32(&count)) {
    return CorruptionError("truncated reply");
  }
  reply.entries.resize(count);
  for (uint32_t i = 0; i < count; ++i) {
    if (!reader.ReadString(&reply.entries[i].key) ||
        !reader.ReadBytes(&reply.entries[i].value) ||
        !reader.ReadU64(&reply.entries[i].version)) {
      return CorruptionError("truncated reply entries");
    }
  }
  uint32_t revoked_count = 0;
  if (!reader.ReadU32(&revoked_count)) {
    return CorruptionError("truncated reply revocations");
  }
  reply.revoked.resize(revoked_count);
  for (uint32_t i = 0; i < revoked_count; ++i) {
    if (!reader.ReadString(&reply.revoked[i].prefix) ||
        !reader.ReadU64(&reply.revoked[i].epoch)) {
      return CorruptionError("truncated reply revocations");
    }
  }
  return reply;
}

}  // namespace scfs
