#include "src/coord/tuple_space.h"

#include <vector>

namespace scfs {

namespace {
CoordReply ErrorReply(ErrorCode code) {
  CoordReply reply;
  reply.code = code;
  return reply;
}
}  // namespace

CoordReply TupleSpace::Apply(VirtualTime now, const CoordCommand& command) {
  ExpireLocks(now);
  switch (command.op) {
    case CoordOp::kWrite:
      return Write(command);
    case CoordOp::kConditionalCreate:
      return ConditionalCreate(command);
    case CoordOp::kCompareAndSwap:
      return CompareAndSwap(command);
    case CoordOp::kRead:
      return Read(command);
    case CoordOp::kReadPrefix:
      return ReadPrefix(command);
    case CoordOp::kRemove:
      return Remove(command);
    case CoordOp::kTryLock:
      return TryLock(now, command);
    case CoordOp::kRenewLock:
      return RenewLock(now, command);
    case CoordOp::kUnlock:
      return Unlock(command);
    case CoordOp::kRenamePrefix:
      return RenamePrefix(command);
    case CoordOp::kSetEntryAcl:
      return SetEntryAcl(command);
    case CoordOp::kNoop:
      return CoordReply{};
  }
  return ErrorReply(ErrorCode::kInvalidArgument);
}

CoordReply TupleSpace::Query(const CoordCommand& command) const {
  switch (command.op) {
    case CoordOp::kRead:
      return Read(command);
    case CoordOp::kReadPrefix:
      return ReadPrefix(command);
    default:
      return ErrorReply(ErrorCode::kInvalidArgument);
  }
}

void TupleSpace::ExpireLocks(VirtualTime now) {
  for (auto it = locks_.begin(); it != locks_.end();) {
    if (it->second.expires_at <= now) {
      it = locks_.erase(it);
    } else {
      ++it;
    }
  }
}

CoordReply TupleSpace::Write(const CoordCommand& cmd) {
  auto it = entries_.find(cmd.key);
  if (it == entries_.end()) {
    Entry entry;
    entry.value = cmd.value;
    entry.version = 1;
    entry.acl.owner = cmd.client;
    stored_bytes_ += cmd.key.size() + cmd.value.size();
    entries_.emplace(cmd.key, std::move(entry));
    CoordReply reply;
    reply.a = 1;
    return reply;
  }
  Entry& entry = it->second;
  if (!entry.acl.AllowsWrite(cmd.client)) {
    return ErrorReply(ErrorCode::kPermissionDenied);
  }
  stored_bytes_ += cmd.value.size();
  stored_bytes_ -= entry.value.size();
  entry.value = cmd.value;
  entry.version++;
  CoordReply reply;
  reply.a = entry.version;
  return reply;
}

CoordReply TupleSpace::ConditionalCreate(const CoordCommand& cmd) {
  if (entries_.count(cmd.key) > 0) {
    return ErrorReply(ErrorCode::kAlreadyExists);
  }
  return Write(cmd);
}

CoordReply TupleSpace::CompareAndSwap(const CoordCommand& cmd) {
  auto it = entries_.find(cmd.key);
  if (it == entries_.end()) {
    return ErrorReply(ErrorCode::kNotFound);
  }
  Entry& entry = it->second;
  if (!entry.acl.AllowsWrite(cmd.client)) {
    return ErrorReply(ErrorCode::kPermissionDenied);
  }
  if (entry.version != cmd.a) {
    return ErrorReply(ErrorCode::kConflict);
  }
  stored_bytes_ += cmd.value.size();
  stored_bytes_ -= entry.value.size();
  entry.value = cmd.value;
  entry.version++;
  CoordReply reply;
  reply.a = entry.version;
  return reply;
}

CoordReply TupleSpace::Read(const CoordCommand& cmd) const {
  auto it = entries_.find(cmd.key);
  if (it == entries_.end()) {
    return ErrorReply(ErrorCode::kNotFound);
  }
  const Entry& entry = it->second;
  if (!entry.acl.AllowsRead(cmd.client)) {
    return ErrorReply(ErrorCode::kPermissionDenied);
  }
  CoordReply reply;
  reply.value = entry.value;
  reply.a = entry.version;
  return reply;
}

CoordReply TupleSpace::ReadPrefix(const CoordCommand& cmd) const {
  CoordReply reply;
  for (auto it = entries_.lower_bound(cmd.key); it != entries_.end(); ++it) {
    if (it->first.compare(0, cmd.key.size(), cmd.key) != 0) {
      break;
    }
    if (!it->second.acl.AllowsRead(cmd.client)) {
      continue;
    }
    reply.entries.push_back(
        CoordEntryView{it->first, it->second.value, it->second.version});
  }
  return reply;
}

CoordReply TupleSpace::Remove(const CoordCommand& cmd) {
  auto it = entries_.find(cmd.key);
  if (it == entries_.end()) {
    return ErrorReply(ErrorCode::kNotFound);
  }
  if (!it->second.acl.AllowsWrite(cmd.client)) {
    return ErrorReply(ErrorCode::kPermissionDenied);
  }
  stored_bytes_ -= it->first.size() + it->second.value.size();
  entries_.erase(it);
  return CoordReply{};
}

CoordReply TupleSpace::TryLock(VirtualTime now, const CoordCommand& cmd) {
  auto it = locks_.find(cmd.key);
  if (it != locks_.end()) {
    if (it->second.owner == cmd.client) {
      // Re-entrant: refresh the lease, return the same token.
      it->second.expires_at = now + static_cast<VirtualDuration>(cmd.a);
      CoordReply reply;
      reply.a = it->second.token;
      return reply;
    }
    return ErrorReply(ErrorCode::kBusy);
  }
  Lock lock;
  lock.owner = cmd.client;
  lock.token = next_token_++;
  lock.expires_at = now + static_cast<VirtualDuration>(cmd.a);
  locks_.emplace(cmd.key, lock);
  CoordReply reply;
  reply.a = lock.token;
  return reply;
}

CoordReply TupleSpace::RenewLock(VirtualTime now, const CoordCommand& cmd) {
  auto it = locks_.find(cmd.key);
  if (it == locks_.end() || it->second.token != cmd.b) {
    return ErrorReply(ErrorCode::kNotFound);
  }
  it->second.expires_at = now + static_cast<VirtualDuration>(cmd.a);
  return CoordReply{};
}

CoordReply TupleSpace::Unlock(const CoordCommand& cmd) {
  auto it = locks_.find(cmd.key);
  if (it == locks_.end() || it->second.token != cmd.b) {
    return ErrorReply(ErrorCode::kNotFound);
  }
  locks_.erase(it);
  return CoordReply{};
}

CoordReply TupleSpace::RenamePrefix(const CoordCommand& cmd) {
  // DepSpace lacks hierarchical structures; the paper extended it with
  // triggers so rename is one atomic server-side operation instead of a
  // client-side read-rewrite of every descendant tuple.
  const std::string& old_prefix = cmd.key;
  const std::string& new_prefix = cmd.aux;
  std::vector<std::pair<std::string, Entry>> moved;
  auto it = entries_.lower_bound(old_prefix);
  while (it != entries_.end() &&
         it->first.compare(0, old_prefix.size(), old_prefix) == 0) {
    if (!it->second.acl.AllowsWrite(cmd.client)) {
      return ErrorReply(ErrorCode::kPermissionDenied);
    }
    std::string new_key = new_prefix + it->first.substr(old_prefix.size());
    moved.emplace_back(std::move(new_key), std::move(it->second));
    it = entries_.erase(it);
  }
  if (moved.empty()) {
    return ErrorReply(ErrorCode::kNotFound);
  }
  CoordReply reply;
  reply.a = moved.size();
  for (auto& [key, entry] : moved) {
    stored_bytes_ += key.size();
    stored_bytes_ -= old_prefix.size() +
                     (key.size() - new_prefix.size());  // old key size
    entry.version++;
    entries_[key] = std::move(entry);
  }
  return reply;
}

CoordReply TupleSpace::SetEntryAcl(const CoordCommand& cmd) {
  auto it = entries_.find(cmd.key);
  if (it == entries_.end()) {
    return ErrorReply(ErrorCode::kNotFound);
  }
  Entry& entry = it->second;
  if (cmd.client != entry.acl.owner) {
    return ErrorReply(ErrorCode::kPermissionDenied);
  }
  const bool read = (cmd.a & kCoordPermRead) != 0;
  const bool write = (cmd.a & kCoordPermWrite) != 0;
  if (read) {
    entry.acl.readers.insert(cmd.aux);
  } else {
    entry.acl.readers.erase(cmd.aux);
  }
  if (write) {
    entry.acl.writers.insert(cmd.aux);
  } else {
    entry.acl.writers.erase(cmd.aux);
  }
  return CoordReply{};
}

}  // namespace scfs
