#include "src/coord/tuple_space.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "src/crypto/sha256.h"

namespace scfs {

namespace {
CoordReply ErrorReply(ErrorCode code) {
  CoordReply reply;
  reply.code = code;
  return reply;
}

void AppendStringSet(Bytes* out, const std::set<std::string>& strings) {
  AppendU32(out, static_cast<uint32_t>(strings.size()));
  for (const std::string& s : strings) {
    AppendString(out, s);
  }
}

bool ReadStringSet(ByteReader* reader, std::set<std::string>* out) {
  uint32_t count = 0;
  if (!reader->ReadU32(&count)) {
    return false;
  }
  for (uint32_t i = 0; i < count; ++i) {
    std::string s;
    if (!reader->ReadString(&s)) {
      return false;
    }
    out->insert(std::move(s));
  }
  return true;
}
}  // namespace

Bytes TupleSpace::Snapshot() const {
  Bytes out;
  AppendU64(&out, next_token_);
  AppendU64(&out, stored_bytes_);
  AppendU32(&out, static_cast<uint32_t>(entries_.size()));
  for (const auto& [key, entry] : entries_) {
    AppendString(&out, key);
    AppendBytes(&out, entry.value);
    AppendU64(&out, entry.version);
    AppendString(&out, entry.acl.owner);
    AppendStringSet(&out, entry.acl.readers);
    AppendStringSet(&out, entry.acl.writers);
  }
  AppendU32(&out, static_cast<uint32_t>(locks_.size()));
  for (const auto& [key, lock] : locks_) {
    AppendString(&out, key);
    AppendString(&out, lock.owner);
    AppendU64(&out, lock.token);
    AppendU64(&out, static_cast<uint64_t>(lock.expires_at));
  }
  AppendU64(&out, next_lease_epoch_);
  AppendU32(&out, static_cast<uint32_t>(leases_.size()));
  for (const auto& [prefix, lease] : leases_) {
    AppendString(&out, prefix);
    AppendU64(&out, lease.epoch);
    AppendU64(&out, static_cast<uint64_t>(lease.expires_at));
    AppendStringSet(&out, lease.holders);
  }
  return out;
}

bool TupleSpace::Restore(ConstByteSpan snapshot) {
  ByteReader reader(snapshot);
  uint64_t next_token = 0;
  uint64_t stored_bytes = 0;
  uint32_t entry_count = 0;
  if (!reader.ReadU64(&next_token) || !reader.ReadU64(&stored_bytes) ||
      !reader.ReadU32(&entry_count)) {
    return false;
  }
  std::map<std::string, Entry> entries;
  for (uint32_t i = 0; i < entry_count; ++i) {
    std::string key;
    Entry entry;
    if (!reader.ReadString(&key) || !reader.ReadBytes(&entry.value) ||
        !reader.ReadU64(&entry.version) ||
        !reader.ReadString(&entry.acl.owner) ||
        !ReadStringSet(&reader, &entry.acl.readers) ||
        !ReadStringSet(&reader, &entry.acl.writers)) {
      return false;
    }
    entries.emplace(std::move(key), std::move(entry));
  }
  uint32_t lock_count = 0;
  if (!reader.ReadU32(&lock_count)) {
    return false;
  }
  std::map<std::string, Lock> locks;
  for (uint32_t i = 0; i < lock_count; ++i) {
    std::string key;
    Lock lock;
    uint64_t expires_at = 0;
    if (!reader.ReadString(&key) || !reader.ReadString(&lock.owner) ||
        !reader.ReadU64(&lock.token) || !reader.ReadU64(&expires_at)) {
      return false;
    }
    lock.expires_at = static_cast<VirtualTime>(expires_at);
    locks.emplace(std::move(key), lock);
  }
  uint64_t next_lease_epoch = 0;
  uint32_t lease_count = 0;
  if (!reader.ReadU64(&next_lease_epoch) || !reader.ReadU32(&lease_count)) {
    return false;
  }
  std::map<std::string, Lease> leases;
  for (uint32_t i = 0; i < lease_count; ++i) {
    std::string prefix;
    Lease lease;
    uint64_t expires_at = 0;
    if (!reader.ReadString(&prefix) || !reader.ReadU64(&lease.epoch) ||
        !reader.ReadU64(&expires_at) ||
        !ReadStringSet(&reader, &lease.holders)) {
      return false;
    }
    lease.expires_at = static_cast<VirtualTime>(expires_at);
    leases.emplace(std::move(prefix), std::move(lease));
  }
  if (!reader.AtEnd()) {
    return false;
  }
  entries_ = std::move(entries);
  locks_ = std::move(locks);
  leases_ = std::move(leases);
  next_token_ = next_token;
  next_lease_epoch_ = next_lease_epoch;
  stored_bytes_ = stored_bytes;
  return true;
}

Bytes TupleSpace::StateDigest() const { return Sha256::Hash(Snapshot()); }

CoordReply TupleSpace::Apply(VirtualTime now, const CoordCommand& command) {
  ExpireLocks(now);
  ExpireLeases(now);
  // Entry mutations revoke the leases covering their key in their own
  // ordered slot, after the mutation succeeded: a failed mutation leaves the
  // state (and thus every lease snapshot) untouched. Lock operations touch a
  // disjoint table and revoke nothing.
  switch (command.op) {
    case CoordOp::kWrite: {
      CoordReply reply = Write(command);
      if (reply.ok()) RevokeCoveringLeases(command.key, &reply);
      return reply;
    }
    case CoordOp::kConditionalCreate: {
      CoordReply reply = ConditionalCreate(command);
      if (reply.ok()) RevokeCoveringLeases(command.key, &reply);
      return reply;
    }
    case CoordOp::kCompareAndSwap: {
      CoordReply reply = CompareAndSwap(command);
      if (reply.ok()) RevokeCoveringLeases(command.key, &reply);
      return reply;
    }
    case CoordOp::kRead:
      return Read(command);
    case CoordOp::kReadPrefix:
      return ReadPrefix(command);
    case CoordOp::kRemove: {
      CoordReply reply = Remove(command);
      if (reply.ok()) RevokeCoveringLeases(command.key, &reply);
      return reply;
    }
    case CoordOp::kTryLock:
      return TryLock(now, command);
    case CoordOp::kRenewLock:
      return RenewLock(now, command);
    case CoordOp::kUnlock:
      return Unlock(command);
    case CoordOp::kRenamePrefix: {
      CoordReply reply = RenamePrefix(command);
      if (reply.ok()) {
        // A rename moves a whole subtree: leases anywhere under the source
        // or destination prefix — including leases on broader prefixes that
        // merely cover them — hold snapshots the move invalidates.
        RevokeOverlappingLeases(command.key, &reply);
        RevokeOverlappingLeases(command.aux, &reply);
      }
      return reply;
    }
    case CoordOp::kSetEntryAcl: {
      // An ACL change alters who may read an entry, which a lease snapshot
      // has already baked in — revoke so holders re-read under the new ACL.
      CoordReply reply = SetEntryAcl(command);
      if (reply.ok()) RevokeCoveringLeases(command.key, &reply);
      return reply;
    }
    case CoordOp::kExportPrefix:
      return ExportPrefix(command);
    case CoordOp::kImportEntry: {
      CoordReply reply = ImportEntry(command);
      if (reply.ok()) RevokeCoveringLeases(command.key, &reply);
      return reply;
    }
    case CoordOp::kLeaseAcquire:
      return LeaseAcquire(now, command);
    case CoordOp::kLeaseRelease:
      return LeaseRelease(command);
    case CoordOp::kNoop:
      return CoordReply{};
  }
  return ErrorReply(ErrorCode::kInvalidArgument);
}

CoordReply TupleSpace::Query(const CoordCommand& command) const {
  switch (command.op) {
    case CoordOp::kRead:
      return Read(command);
    case CoordOp::kReadPrefix:
      return ReadPrefix(command);
    default:
      return ErrorReply(ErrorCode::kInvalidArgument);
  }
}

void TupleSpace::ExpireLocks(VirtualTime now) {
  for (auto it = locks_.begin(); it != locks_.end();) {
    if (it->second.expires_at <= now) {
      it = locks_.erase(it);
    } else {
      ++it;
    }
  }
}

void TupleSpace::ExpireLeases(VirtualTime now) {
  // Like locks, leases expire at ordered command-execution time, never at a
  // replica-local clock — expiry is part of the deterministic state machine.
  // A client stops serving from an expired lease on its own (it compares
  // against the same virtual clock), so no revocation notice is needed here.
  for (auto it = leases_.begin(); it != leases_.end();) {
    if (it->second.expires_at <= now) {
      it = leases_.erase(it);
    } else {
      ++it;
    }
  }
}

void TupleSpace::RevokeCoveringLeases(const std::string& key,
                                      CoordReply* reply) {
  // A lease on prefix P covers key K iff P is a prefix of K. Leases are few
  // (bounded per client by lease_max_prefixes), so a linear scan is fine.
  for (auto it = leases_.begin(); it != leases_.end();) {
    const std::string& prefix = it->first;
    if (key.compare(0, prefix.size(), prefix) == 0) {
      reply->revoked.push_back(LeaseRevocation{prefix, it->second.epoch});
      it = leases_.erase(it);
    } else {
      ++it;
    }
  }
}

void TupleSpace::RevokeOverlappingLeases(const std::string& prefix,
                                         CoordReply* reply) {
  // Overlap in either direction: a lease on "m:/a/" overlaps a rename of
  // "m:/a/b/" (the lease covers moved keys) and a lease on "m:/a/b/c/"
  // overlaps it too (every leased key is inside the moved subtree).
  for (auto it = leases_.begin(); it != leases_.end();) {
    const std::string& leased = it->first;
    const size_t n = std::min(leased.size(), prefix.size());
    if (leased.compare(0, n, prefix, 0, n) == 0) {
      reply->revoked.push_back(LeaseRevocation{leased, it->second.epoch});
      it = leases_.erase(it);
    } else {
      ++it;
    }
  }
}

CoordReply TupleSpace::LeaseAcquire(VirtualTime now, const CoordCommand& cmd) {
  if (cmd.key.empty() || cmd.a == 0) {
    return ErrorReply(ErrorCode::kInvalidArgument);
  }
  auto it = leases_.find(cmd.key);
  if (it == leases_.end()) {
    Lease lease;
    lease.epoch = next_lease_epoch_++;
    it = leases_.emplace(cmd.key, std::move(lease)).first;
  }
  Lease& lease = it->second;
  lease.holders.insert(cmd.aux.empty() ? cmd.client : cmd.aux);
  // Extend-only: a renewal by one holder must not shorten what another
  // holder was already promised.
  const VirtualTime proposed = now + static_cast<VirtualDuration>(cmd.a);
  if (proposed > lease.expires_at) {
    lease.expires_at = proposed;
  }
  // The grant doubles as the snapshot read: the holder installs these
  // entries and serves them locally until expiry or revocation. ACL
  // filtering matches ReadPrefix, so delegation never widens visibility.
  CoordReply reply = ReadPrefix(cmd);
  reply.a = static_cast<uint64_t>(lease.expires_at);
  reply.value.clear();
  AppendU64(&reply.value, lease.epoch);
  return reply;
}

CoordReply TupleSpace::LeaseRelease(const CoordCommand& cmd) {
  auto it = leases_.find(cmd.key);
  if (it == leases_.end()) {
    return ErrorReply(ErrorCode::kNotFound);
  }
  it->second.holders.erase(cmd.aux.empty() ? cmd.client : cmd.aux);
  if (it->second.holders.empty()) {
    leases_.erase(it);
  }
  return CoordReply{};
}

CoordReply TupleSpace::Write(const CoordCommand& cmd) {
  auto it = entries_.find(cmd.key);
  if (it == entries_.end()) {
    Entry entry;
    entry.value = cmd.value;
    entry.version = 1;
    entry.acl.owner = cmd.client;
    stored_bytes_ += cmd.key.size() + cmd.value.size();
    entries_.emplace(cmd.key, std::move(entry));
    CoordReply reply;
    reply.a = 1;
    return reply;
  }
  Entry& entry = it->second;
  if (!entry.acl.AllowsWrite(cmd.client)) {
    return ErrorReply(ErrorCode::kPermissionDenied);
  }
  stored_bytes_ += cmd.value.size();
  stored_bytes_ -= entry.value.size();
  entry.value = cmd.value;
  entry.version++;
  CoordReply reply;
  reply.a = entry.version;
  return reply;
}

CoordReply TupleSpace::ConditionalCreate(const CoordCommand& cmd) {
  if (entries_.count(cmd.key) > 0) {
    return ErrorReply(ErrorCode::kAlreadyExists);
  }
  return Write(cmd);
}

CoordReply TupleSpace::CompareAndSwap(const CoordCommand& cmd) {
  auto it = entries_.find(cmd.key);
  if (it == entries_.end()) {
    return ErrorReply(ErrorCode::kNotFound);
  }
  Entry& entry = it->second;
  if (!entry.acl.AllowsWrite(cmd.client)) {
    return ErrorReply(ErrorCode::kPermissionDenied);
  }
  if (entry.version != cmd.a) {
    return ErrorReply(ErrorCode::kConflict);
  }
  stored_bytes_ += cmd.value.size();
  stored_bytes_ -= entry.value.size();
  entry.value = cmd.value;
  entry.version++;
  CoordReply reply;
  reply.a = entry.version;
  return reply;
}

CoordReply TupleSpace::Read(const CoordCommand& cmd) const {
  auto it = entries_.find(cmd.key);
  if (it == entries_.end()) {
    return ErrorReply(ErrorCode::kNotFound);
  }
  const Entry& entry = it->second;
  if (!entry.acl.AllowsRead(cmd.client)) {
    return ErrorReply(ErrorCode::kPermissionDenied);
  }
  CoordReply reply;
  reply.value = entry.value;
  reply.a = entry.version;
  return reply;
}

CoordReply TupleSpace::ReadPrefix(const CoordCommand& cmd) const {
  CoordReply reply;
  for (auto it = entries_.lower_bound(cmd.key); it != entries_.end(); ++it) {
    if (it->first.compare(0, cmd.key.size(), cmd.key) != 0) {
      break;
    }
    if (!it->second.acl.AllowsRead(cmd.client)) {
      continue;
    }
    reply.entries.push_back(
        CoordEntryView{it->first, it->second.value, it->second.version});
  }
  return reply;
}

CoordReply TupleSpace::Remove(const CoordCommand& cmd) {
  auto it = entries_.find(cmd.key);
  if (it == entries_.end()) {
    return ErrorReply(ErrorCode::kNotFound);
  }
  if (!it->second.acl.AllowsWrite(cmd.client)) {
    return ErrorReply(ErrorCode::kPermissionDenied);
  }
  stored_bytes_ -= it->first.size() + it->second.value.size();
  entries_.erase(it);
  return CoordReply{};
}

CoordReply TupleSpace::TryLock(VirtualTime now, const CoordCommand& cmd) {
  auto it = locks_.find(cmd.key);
  if (it != locks_.end()) {
    if (it->second.owner == cmd.client) {
      // Re-entrant: refresh the lease, return the same token.
      it->second.expires_at = now + static_cast<VirtualDuration>(cmd.a);
      CoordReply reply;
      reply.a = it->second.token;
      return reply;
    }
    return ErrorReply(ErrorCode::kBusy);
  }
  Lock lock;
  lock.owner = cmd.client;
  lock.token = next_token_++;
  lock.expires_at = now + static_cast<VirtualDuration>(cmd.a);
  locks_.emplace(cmd.key, lock);
  CoordReply reply;
  reply.a = lock.token;
  return reply;
}

CoordReply TupleSpace::RenewLock(VirtualTime now, const CoordCommand& cmd) {
  auto it = locks_.find(cmd.key);
  if (it == locks_.end() || it->second.token != cmd.b) {
    return ErrorReply(ErrorCode::kNotFound);
  }
  it->second.expires_at = now + static_cast<VirtualDuration>(cmd.a);
  return CoordReply{};
}

CoordReply TupleSpace::Unlock(const CoordCommand& cmd) {
  auto it = locks_.find(cmd.key);
  if (it == locks_.end() || it->second.token != cmd.b) {
    return ErrorReply(ErrorCode::kNotFound);
  }
  locks_.erase(it);
  return CoordReply{};
}

CoordReply TupleSpace::RenamePrefix(const CoordCommand& cmd) {
  // DepSpace lacks hierarchical structures; the paper extended it with
  // triggers so rename is one atomic server-side operation instead of a
  // client-side read-rewrite of every descendant tuple.
  const std::string& old_prefix = cmd.key;
  const std::string& new_prefix = cmd.aux;
  std::vector<std::pair<std::string, Entry>> moved;
  auto it = entries_.lower_bound(old_prefix);
  while (it != entries_.end() &&
         it->first.compare(0, old_prefix.size(), old_prefix) == 0) {
    if (!it->second.acl.AllowsWrite(cmd.client)) {
      return ErrorReply(ErrorCode::kPermissionDenied);
    }
    std::string new_key = new_prefix + it->first.substr(old_prefix.size());
    moved.emplace_back(std::move(new_key), std::move(it->second));
    it = entries_.erase(it);
  }
  if (moved.empty()) {
    return ErrorReply(ErrorCode::kNotFound);
  }
  CoordReply reply;
  reply.a = moved.size();
  for (auto& [key, entry] : moved) {
    stored_bytes_ += key.size();
    stored_bytes_ -= old_prefix.size() +
                     (key.size() - new_prefix.size());  // old key size
    entry.version++;
    entries_[key] = std::move(entry);
  }
  return reply;
}

Bytes TupleSpace::EncodeEntryPayload(const Entry& entry) {
  Bytes out;
  AppendBytes(&out, entry.value);
  AppendU64(&out, entry.version);
  AppendString(&out, entry.acl.owner);
  AppendStringSet(&out, entry.acl.readers);
  AppendStringSet(&out, entry.acl.writers);
  return out;
}

bool TupleSpace::DecodeEntryPayload(ConstByteSpan payload, Entry* out) {
  ByteReader reader(payload);
  return reader.ReadBytes(&out->value) && reader.ReadU64(&out->version) &&
         reader.ReadString(&out->acl.owner) &&
         ReadStringSet(&reader, &out->acl.readers) &&
         ReadStringSet(&reader, &out->acl.writers) && reader.AtEnd();
}

CoordReply TupleSpace::ExportPrefix(const CoordCommand& cmd) const {
  // The read half of a cross-partition move. Like RenamePrefix it demands
  // write access on every matching entry (a move rewrites them all); unlike
  // ReadPrefix an empty result is not an error — with the key space hashed
  // across partitions, most partitions legitimately hold no piece of a
  // given subtree, and the router's caller decides what "nothing anywhere"
  // means. Always ordered (never the read fast path): the export is the
  // linearization point the intent-record protocol builds on.
  CoordReply reply;
  for (auto it = entries_.lower_bound(cmd.key); it != entries_.end(); ++it) {
    if (it->first.compare(0, cmd.key.size(), cmd.key) != 0) {
      break;
    }
    if (!it->second.acl.AllowsWrite(cmd.client)) {
      return ErrorReply(ErrorCode::kPermissionDenied);
    }
    reply.entries.push_back(CoordEntryView{
        it->first, EncodeEntryPayload(it->second), it->second.version});
  }
  reply.a = reply.entries.size();
  return reply;
}

CoordReply TupleSpace::ImportEntry(const CoordCommand& cmd) {
  // The write half of a cross-partition move: installs an exported entry —
  // value, ACL and all — under a new key, bumping the tuple version exactly
  // like the rename trigger does. Deliberately idempotent: the new version
  // is derived from the payload, not the current entry, so a crash-recovery
  // replay that re-imports lands on the identical state. The importing
  // client must hold write permission under the imported ACL itself (the
  // same trust RenamePrefix extends to writers), and overwriting an
  // existing entry additionally requires write access to it.
  Entry imported;
  if (!DecodeEntryPayload(cmd.value, &imported)) {
    return ErrorReply(ErrorCode::kInvalidArgument);
  }
  if (!imported.acl.AllowsWrite(cmd.client)) {
    return ErrorReply(ErrorCode::kPermissionDenied);
  }
  imported.version++;
  const uint64_t new_version = imported.version;
  auto it = entries_.find(cmd.key);
  if (it != entries_.end()) {
    if (!it->second.acl.AllowsWrite(cmd.client)) {
      return ErrorReply(ErrorCode::kPermissionDenied);
    }
    stored_bytes_ -= it->second.value.size();
    stored_bytes_ += imported.value.size();
    it->second = std::move(imported);
  } else {
    stored_bytes_ += cmd.key.size() + imported.value.size();
    entries_.emplace(cmd.key, std::move(imported));
  }
  CoordReply reply;
  reply.a = new_version;
  return reply;
}

CoordReply TupleSpace::SetEntryAcl(const CoordCommand& cmd) {
  auto it = entries_.find(cmd.key);
  if (it == entries_.end()) {
    return ErrorReply(ErrorCode::kNotFound);
  }
  Entry& entry = it->second;
  if (cmd.client != entry.acl.owner) {
    return ErrorReply(ErrorCode::kPermissionDenied);
  }
  const bool read = (cmd.a & kCoordPermRead) != 0;
  const bool write = (cmd.a & kCoordPermWrite) != 0;
  if (read) {
    entry.acl.readers.insert(cmd.aux);
  } else {
    entry.acl.readers.erase(cmd.aux);
  }
  if (write) {
    entry.acl.writers.insert(cmd.aux);
  } else {
    entry.acl.writers.erase(cmd.aux);
  }
  return CoordReply{};
}

}  // namespace scfs
