// Wire format for coordination-service commands and replies.
//
// Every operation on the coordination service is serialized into a Command,
// totally ordered by the replication layer and executed deterministically by
// the TupleSpace state machine on every replica. Replies are serialized back
// so byzantine-reply voting can compare them bytewise.

#ifndef SCFS_COORD_COMMAND_H_
#define SCFS_COORD_COMMAND_H_

#include <string>
#include <utility>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/status.h"

namespace scfs {

enum class CoordOp : uint8_t {
  kWrite = 1,            // upsert key (creates with caller as owner)
  kConditionalCreate,    // fails with ALREADY_EXISTS
  kCompareAndSwap,       // write iff version matches `a`
  kRead,                 // value + version
  kReadPrefix,           // all entries with key prefix
  kRemove,
  kTryLock,              // key=lock name, a=lease duration (virtual us)
  kRenewLock,            // a=new lease duration, b=token
  kUnlock,               // b=token
  kRenamePrefix,         // key=old prefix, aux=new prefix (trigger extension)
  kSetEntryAcl,          // aux=grantee, a=permission bits
  kNoop,                 // used by view changes / heartbeats
  // Cross-partition move primitives (the partitioned coordination plane's
  // rename building blocks — see src/coord/partitioned_coordination.h).
  // Both are always totally ordered, never fast-path reads: an export is a
  // linearization point of a multi-key move, and an import mutates.
  kExportPrefix,         // entries under key prefix, full ACL+version payload
  kImportEntry,          // key=new key, value=an exported entry payload
  // Lease-delegated metadata caching (see src/coord/lease.h and DESIGN.md
  // "Lease-delegated caching"). Both are always totally ordered: a grant is
  // the linearization point after which the holder may serve the returned
  // prefix snapshot locally, so it must serialize with every mutation.
  kLeaseAcquire,         // key=prefix, aux=holder session, a=TTL (virtual us)
  kLeaseRelease,         // key=prefix, aux=holder session
};

// A lease revoked as a side effect of executing a mutation, reported in the
// mutation's own reply so the submitter can invalidate local holders BEFORE
// the mutation is acknowledged (the no-stale-read-after-ack rule).
struct LeaseRevocation {
  std::string prefix;
  uint64_t epoch = 0;
};

struct CoordCommand {
  CoordOp op = CoordOp::kNoop;
  std::string client;  // principal for access control
  std::string key;
  Bytes value;
  std::string aux;
  uint64_t a = 0;
  uint64_t b = 0;
  // The epoch of the RouteMap the submitting client routed this command
  // with (see src/coord/partitioned_coordination.h "Elastic routing"). A
  // partitioned plane's servers enforce the map strictly: a command routed
  // with a stale map to a partition that no longer owns its key is rejected
  // together with the current map, and the client retries transparently.
  // 0 on unpartitioned deployments (no router in the path).
  uint64_t route_epoch = 0;

  // True for commands that never mutate coordination state (kRead,
  // kReadPrefix). The replication layer serves these from a replica's
  // committed state without a consensus instance (the read-only fast path);
  // everything else must be totally ordered.
  bool is_read_only() const {
    return op == CoordOp::kRead || op == CoordOp::kReadPrefix;
  }

  Bytes Encode() const;
  static Result<CoordCommand> Decode(const Bytes& data);
};

struct CoordEntryView {
  std::string key;
  Bytes value;
  uint64_t version = 0;
};

struct CoordReply {
  ErrorCode code = ErrorCode::kOk;
  Bytes value;
  uint64_t a = 0;  // version / lock token / lease expiry (virtual us)
  std::vector<CoordEntryView> entries;
  // Leases this command revoked while executing (mutations only; empty for
  // reads and for the fast path, which cannot mutate). Deterministic across
  // replicas, so bytewise reply voting still converges.
  std::vector<LeaseRevocation> revoked;

  bool ok() const { return code == ErrorCode::kOk; }
  Status ToStatus(const std::string& context) const {
    if (ok()) {
      return OkStatus();
    }
    return Status(code, context);
  }

  Bytes Encode() const;
  static Result<CoordReply> Decode(const Bytes& data);
};

// Permission bits for kSetEntryAcl.
constexpr uint64_t kCoordPermRead = 1;
constexpr uint64_t kCoordPermWrite = 2;

// The coordination plane's administrative principal: the identity the
// elastic repartitioning controller (a deployment-internal actor, not a
// user) migrates ranges with. The TupleSpace grants it read and write on
// every entry — a range migration must export, import and retire entries
// owned by arbitrary users, exactly like DepSpace's administrative
// credential can. User-facing paths never run under this principal.
inline constexpr const char kCoordAdminPrincipal[] = "__coord-admin";

}  // namespace scfs

#endif  // SCFS_COORD_COMMAND_H_
