// PartitionedCoordination: the sharded, *elastic* coordination plane. N
// independent SmrCluster partitions — each a full BFT-SMaRt-style pipeline
// with its own leader, batching, read fast path, checkpoints and state
// transfer — behind a versioned router that places every tuple key on
// exactly one partition by a stable hash. Ordered throughput then scales
// with the number of partitions instead of capping out at one consensus
// pipeline, while every single-key operation keeps exactly the semantics of
// the unsharded cluster:
//
//   * Elastic routing — an epoch-numbered RouteMap assigns contiguous
//     64-bit hash ranges to partitions (initially uniform over the active
//     partitions; spares own nothing). Clients learn the map lazily: every
//     command carries the epoch of the map its submitter routed with, and a
//     partition that no longer owns the command's key rejects it together
//     with the current map, so the client re-routes and retries
//     transparently (counted in ElasticCounters::route_epoch_retries).
//   * Per-key linearizability — a key lives on exactly one partition, so
//     single-key commands (metadata writes, consistency-anchor publishes,
//     the whole lock recipe) inherit the partition's total order unchanged.
//     There is NO cross-partition total order: commands on different keys
//     routed to different partitions are concurrent, exactly like the
//     commuting-commands contract SubmitAsync already imposes.
//   * Scatter-gather prefix operations — kReadPrefix, kExportPrefix and the
//     lease commands fan out to every partition concurrently (max-of-
//     children charge, like a DepSky quorum fan-out) and merge the
//     per-partition results sorted by key, deduplicated by key with the
//     range's current owner winning — mid-migration an entry legitimately
//     exists on both the source (until retirement) and the destination
//     (after import), and the merge must not double-count it.
//   * Live splitting (DESIGN.md "Elastic partitioning") — a load-aware
//     controller watches windowed per-partition ops/s EWMAs and, past a
//     configurable hot-share threshold, splits the hot partition's range
//     onto a spare cluster by migrating the range through a
//     crash-recoverable intent-record protocol (prepare-intent →
//     kExportPrefix/kImportEntry → commit-marker → retire), the same shape
//     as the cross-partition rename. Mutations aimed into the migrating
//     range stall until the commit flips the map; leases covering migrated
//     keys are revoked at commit through the on_migration_commit hook so no
//     client serves stale delegated state. Cooled partitions merge back
//     (manually or automatically), returning the spare.
//   * Cross-partition writes — kRenamePrefix cannot be atomic across
//     partitions and is rejected with kNotSupported when N > 1; the
//     metadata service layers a crash-recoverable intent-record protocol
//     over ExportPrefix/ImportEntry instead (see DESIGN.md "Partitioned
//     coordination").
//   * Operations surface — StateDigest() combines the per-partition
//     order-quorum digests deterministically, sorted by partition index, so
//     operators can compare partitioned deployments across restarts exactly
//     like single-cluster ones; empty while any partition lacks quorum
//     backing.
//
// With N = 1 the router degenerates to a pass-through around one SmrCluster
// and behaves identically to ReplicatedCoordination (Deployment constructs
// ReplicatedCoordination directly in that case, keeping the single-cluster
// code path byte-identical to the unpartitioned deployment).

#ifndef SCFS_COORD_PARTITIONED_COORDINATION_H_
#define SCFS_COORD_PARTITIONED_COORDINATION_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "src/common/executor.h"
#include "src/coord/smr.h"

namespace scfs {

// The stable routing hash: FNV-1a64 of PartitionRoutingKey(key) with a
// SplitMix64 avalanche finalizer (see the .cc for why raw FNV-1a is not
// enough). Pure function of the key — clients, replayed intents, restarted
// deployments and benchmark key generators all agree on it.
uint64_t PartitionRoutingHash(const std::string& key);

// One contiguous hash-range assignment: entry i of RouteMap::ranges covers
// [ranges[i].start, ranges[i+1].start), the last entry up to 2^64.
struct RouteRange {
  uint64_t start = 0;
  unsigned partition = 0;
};

// The epoch-numbered routing table. Epochs rise by exactly one per
// committed migration; clients cache a map snapshot and are corrected
// lazily (see "Elastic routing" above).
struct RouteMap {
  uint64_t epoch = 1;
  std::vector<RouteRange> ranges;  // sorted by start; ranges[0].start == 0

  unsigned PartitionForHash(uint64_t hash) const;
  // Uniform assignment of the hash space over partitions [0, active).
  static RouteMap Uniform(unsigned active);
};

struct PartitionedCoordinationConfig {
  unsigned partitions = 2;  // initially active (each owns a hash range)
  // Extra SmrClusters constructed with no assigned range: the split
  // controller's migration targets. A deployment with zero spares can still
  // merge, but never split.
  unsigned spare_partitions = 0;
  // Per-partition SMR geometry; every partition is configured identically.
  SmrConfig smr;

  // -- Load-aware split controller (DESIGN.md "Elastic partitioning") -----
  // Off by default: splits then happen only through SplitPartition().
  bool auto_split = false;
  // Sampling window for the controller's per-partition ops/s EWMAs. Load is
  // always judged on windowed deltas of SmrCounters — never on cumulative
  // counters, which would blend current load with all history since mount.
  VirtualDuration split_window = 2 * kSecond;
  // Split when the busiest partition's EWMA share of total ops/s exceeds
  // this and a spare partition is available.
  double split_hot_share = 0.5;
  // ...but only while the plane is doing real work: below this aggregate
  // ops/s the controller stays idle (an idle plane's share is noise).
  double split_min_total_ops_s = 1.0;
  // Auto-merge: when > 0 and more partitions are active than the initial
  // count, a partition whose EWMA share cooled below this is merged into
  // the next-coldest active partition, returning the spare. 0 disables
  // automatic merging (MergePartitions stays available).
  double merge_cold_share = 0.0;

  // Mutations aimed into a range that is mid-migration stall (the range is
  // write-frozen between prepare and commit); past this budget they fail
  // kUnavailable instead of waiting forever behind a wedged migration.
  VirtualDuration migration_stall_timeout = 120 * kSecond;
  VirtualDuration migration_stall_poll = 10 * kMillisecond;

  // Invoked at migration commit, before the route change is visible, with
  // one revocation per migrated key: the deployment wires this to
  // LeaseManager::NotifyRevocations so holders of leases covering migrated
  // prefixes drop them before any client can read the moved entries from
  // the new owner (the no-stale-delegated-read rule). The controller
  // executes migration commands directly on the clusters — below the
  // LeasedCoordination decorator — so the piggybacked revocation plumbing
  // does not fire for it; this hook is the replacement.
  std::function<void(const std::vector<LeaseRevocation>&)> on_migration_commit;
};

// A timestamped per-partition counter snapshot: the introspection unit the
// load-aware split controller and the scenario engine's hot-partition
// accounting consume. Two snapshots of the same deployment bracket a
// window; PartitionOpsPerSecond turns the pair into per-partition service
// rates. Hot-share style judgements must always be made on such windowed
// deltas — a single (cumulative-since-mount) snapshot sees history, not
// current load.
struct PartitionLoadSnapshot {
  VirtualTime at = 0;
  std::vector<SmrCounters> per_partition;
};

// Per-partition completed operations per second (ordered commands plus
// fast-path reads) between two snapshots of the same deployment. Empty if
// the snapshots disagree on partition count or the window is empty.
std::vector<double> PartitionOpsPerSecond(const PartitionLoadSnapshot& before,
                                          const PartitionLoadSnapshot& after);

// The busiest partition's share of total ops in the window bracketed by the
// two snapshots (0 when the window saw no ops). The one true hot-share
// computation — windowed, never cumulative.
double PartitionHotShare(const PartitionLoadSnapshot& before,
                         const PartitionLoadSnapshot& after);

// Elastic-plane counters (all monotone except last_split_duration).
struct ElasticCounters {
  // Commands a partition rejected because the submitter routed them with a
  // stale map — each is one transparent client re-route + retry, the lazy
  // map distribution's visible cost.
  uint64_t route_epoch_retries = 0;
  // Mutations that stalled at least once against a write-frozen migrating
  // range (counted once per command, not per poll).
  uint64_t migration_stalls = 0;
  uint64_t splits = 0;          // committed range splits
  uint64_t merges = 0;          // committed range merges
  uint64_t keys_migrated = 0;   // entries moved across partitions
  // Wall (virtual) duration of the most recent committed migration,
  // prepare through retire, in microseconds of virtual time.
  uint64_t last_migration_us = 0;
};

class PartitionedCoordination : public CoordinationService {
 public:
  PartitionedCoordination(Environment* env,
                          PartitionedCoordinationConfig config,
                          uint64_t seed = 29);
  ~PartitionedCoordination();

  Result<CoordReply> Submit(const CoordCommand& command) override;
  Future<Result<CoordReply>> SubmitAsync(const CoordCommand& command) override;
  Bytes StateDigest() override;

  unsigned partition_count() const override {
    return static_cast<unsigned>(partitions_.size());
  }
  unsigned PartitionOf(const std::string& key) const override;

  // -- Elastic repartitioning ---------------------------------------------

  // Splits `src`'s largest owned hash range at its midpoint onto a spare
  // partition (one owning no ranges), migrating the entries through the
  // intent-record protocol. kBusy while another migration is in flight;
  // kUnavailable with no spare.
  Status SplitPartition(unsigned src);
  // Migrates every range owned by `src` onto `dst`, leaving `src` a spare.
  Status MergePartitions(unsigned src, unsigned dst);
  // Crash-recovery replay (the coordination plane's Mount analog): scans
  // every partition for outstanding migration intents and rolls each
  // forward — re-import before the commit marker (imports are idempotent),
  // retire-only after it — to a consistent map with exactly-once entry
  // migration.
  Status ReplayMigrations();

  // Authoritative map snapshot / epoch (operations surface).
  RouteMap route_map() const;
  uint64_t route_epoch() const;
  // Partitions currently owning at least one range.
  unsigned active_partition_count() const;
  ElasticCounters elastic_counters() const;

  // The controller's current per-partition ops/s EWMAs and the busiest
  // partition's share of their total — windowed load, not history. Empty /
  // zero until the controller (auto_split) has completed a window.
  std::vector<double> WindowedOpsPerSecond() const;
  double WindowedHotShare() const;

  // Test hook: abort the next manually-triggered migration at a phase
  // boundary, modeling a controller crash. The aborted migration leaves its
  // durable records (and the write freeze) in place for ReplayMigrations.
  enum class MigrationCrashPoint { kNone, kAfterIntent, kMidImport,
                                   kAfterCommit };
  void set_migration_crash_point(MigrationCrashPoint point) {
    crash_point_ = point;
  }

  // Per-partition introspection and fault injection for tests/benchmarks.
  SmrCluster& cluster(unsigned partition) { return *partitions_[partition]; }
  // Aggregate protocol counters across all partitions.
  SmrCounters counters() const;
  // One partition's counters (ops and per-op message accounting).
  SmrCounters partition_counters(unsigned partition) const;
  // Timestamped per-partition counter snapshot; see PartitionLoadSnapshot.
  PartitionLoadSnapshot LoadSnapshot() const;
  uint64_t reply_bytes_out() const;

 private:
  // A migration in flight: the half-open hash range moving src -> dst. The
  // merge flag rides the durable intent record so a replay attributes the
  // recovered migration to the right counter.
  struct MigrationSpec {
    uint64_t begin = 0;
    uint64_t end = 0;  // exclusive; 0 means "up to 2^64"
    unsigned src = 0;
    unsigned dst = 0;
    bool merge = false;
  };

  // Single-key commands: route with the submitter's cached map, enforce the
  // authoritative map at the partition boundary, retry on rejection.
  Result<CoordReply> RoutedExecute(const CoordCommand& command);
  // Fan a prefix command out to every partition, merge entries by key
  // (current owner wins on duplicates).
  Result<CoordReply> ScatterGather(const CoordCommand& command);
  // The lazily-updated per-principal map cache ("the client's copy").
  std::shared_ptr<const RouteMap> ClientRouteMap(const std::string& client);

  // Executes one command directly on a partition under the admin principal.
  Result<CoordReply> AdminExecute(unsigned partition, CoordOp op,
                                  const std::string& key, Bytes value = {});
  // Claims the migration slot and freezes the range. kBusy if taken.
  Status BeginMigration(const MigrationSpec& spec);
  // Phases prepare → retire; shared by the live path and replay.
  // `crash_injection` honors crash_point_ (live path only).
  Status RunMigration(const MigrationSpec& spec, bool crash_injection,
                      bool intent_exists);
  // The keys currently on `spec.src` whose hashes fall in the migrating
  // range (internal records excluded) together with their export payloads.
  Result<std::vector<CoordEntryView>> ExportRange(const MigrationSpec& spec);
  // Installs the post-migration map (epoch + 1), clears the freeze and
  // fires the lease-revocation hook. Idempotent: skipped if the range
  // already routes to dst (a replay after a crash mid-retire).
  void CommitRouteChange(const MigrationSpec& spec,
                         const std::vector<CoordEntryView>& moved);
  Status MigrateRange(const MigrationSpec& spec);

  void ControllerLoop();

  static std::string IntentKey(const MigrationSpec& spec);
  static std::string CommitKey(const MigrationSpec& spec);
  static Bytes EncodeSpec(const MigrationSpec& spec);
  static bool DecodeSpec(ConstByteSpan payload, MigrationSpec* spec);
  static bool HashInRange(uint64_t hash, const MigrationSpec& spec);

  Environment* env_;
  PartitionedCoordinationConfig config_;
  std::vector<std::unique_ptr<SmrCluster>> partitions_;

  mutable std::mutex route_mu_;
  std::shared_ptr<const RouteMap> map_;  // authoritative (the servers' map)
  // Per-principal cached snapshots — the lazily-updated "client copies".
  std::map<std::string, std::shared_ptr<const RouteMap>> client_maps_;
  std::optional<MigrationSpec> migrating_;  // also the write freeze
  std::vector<double> windowed_ops_s_;      // controller EWMAs, by partition
  ElasticCounters elastic_;

  std::atomic<MigrationCrashPoint> crash_point_{MigrationCrashPoint::kNone};
  std::atomic<bool> controller_stop_{false};
  std::thread controller_;

  // Declared after partitions_: destroyed first, so in-flight async
  // submissions drain before any partition shuts down.
  InFlightTracker inflight_;
};

}  // namespace scfs

#endif  // SCFS_COORD_PARTITIONED_COORDINATION_H_
