// PartitionedCoordination: the sharded coordination plane. N independent
// SmrCluster partitions — each a full BFT-SMaRt-style pipeline with its own
// leader, batching, read fast path, checkpoints and state transfer — behind
// a router that places every tuple key on exactly one partition by a stable
// hash. Ordered throughput then scales with the number of partitions
// instead of capping out at one consensus pipeline, while every single-key
// operation keeps exactly the semantics of the unsharded cluster:
//
//   * Routing — partition = FNV-1a(PartitionRoutingKey(key)) mod N. The
//     routing key is the tuple key itself, except for the "ri:"/"rc:"
//     co-location prefixes (see coordination_service.h), which route by
//     their suffix so rename intent/commit records land on the partition of
//     the key range they describe.
//   * Per-key linearizability — a key lives on exactly one partition, so
//     single-key commands (metadata writes, consistency-anchor publishes,
//     the whole lock recipe) inherit the partition's total order unchanged.
//     There is NO cross-partition total order: commands on different keys
//     routed to different partitions are concurrent, exactly like the
//     commuting-commands contract SubmitAsync already imposes.
//   * Scatter-gather prefix operations — kReadPrefix and kExportPrefix fan
//     out to every partition concurrently (max-of-children charge, like a
//     DepSky quorum fan-out) and merge the per-partition results sorted by
//     key. A prefix read is therefore not a cross-partition snapshot; each
//     partition's slice is individually linearizable.
//   * Cross-partition writes — kRenamePrefix cannot be atomic across
//     partitions and is rejected with kNotSupported when N > 1; the
//     metadata service layers a crash-recoverable intent-record protocol
//     over ExportPrefix/ImportEntry instead (see DESIGN.md "Partitioned
//     coordination").
//   * Operations surface — StateDigest() combines the per-partition
//     order-quorum digests deterministically, sorted by partition index, so
//     operators can compare partitioned deployments across restarts exactly
//     like single-cluster ones; empty while any partition lacks quorum
//     backing.
//
// With N = 1 the router degenerates to a pass-through around one SmrCluster
// and behaves identically to ReplicatedCoordination (Deployment constructs
// ReplicatedCoordination directly in that case, keeping the single-cluster
// code path byte-identical to the unpartitioned deployment).

#ifndef SCFS_COORD_PARTITIONED_COORDINATION_H_
#define SCFS_COORD_PARTITIONED_COORDINATION_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/executor.h"
#include "src/coord/smr.h"

namespace scfs {

struct PartitionedCoordinationConfig {
  unsigned partitions = 2;
  // Per-partition SMR geometry; every partition is configured identically.
  SmrConfig smr;
};

// A timestamped per-partition counter snapshot: the introspection unit a
// load-aware router (ROADMAP item 2) and the scenario engine's hot-partition
// accounting consume. Two snapshots of the same deployment bracket a window;
// PartitionOpsPerSecond turns the pair into per-partition service rates.
struct PartitionLoadSnapshot {
  VirtualTime at = 0;
  std::vector<SmrCounters> per_partition;
};

// Per-partition completed operations per second (ordered commands plus
// fast-path reads) between two snapshots of the same deployment. Empty if
// the snapshots disagree on partition count or the window is empty.
std::vector<double> PartitionOpsPerSecond(const PartitionLoadSnapshot& before,
                                          const PartitionLoadSnapshot& after);

class PartitionedCoordination : public CoordinationService {
 public:
  PartitionedCoordination(Environment* env,
                          PartitionedCoordinationConfig config,
                          uint64_t seed = 29);

  Result<CoordReply> Submit(const CoordCommand& command) override;
  Future<Result<CoordReply>> SubmitAsync(const CoordCommand& command) override;
  Bytes StateDigest() override;

  unsigned partition_count() const override {
    return static_cast<unsigned>(partitions_.size());
  }
  unsigned PartitionOf(const std::string& key) const override;

  // Per-partition introspection and fault injection for tests/benchmarks.
  SmrCluster& cluster(unsigned partition) { return *partitions_[partition]; }
  // Aggregate protocol counters across all partitions.
  SmrCounters counters() const;
  // One partition's counters (ops and per-op message accounting).
  SmrCounters partition_counters(unsigned partition) const;
  // Timestamped per-partition counter snapshot; see PartitionLoadSnapshot.
  PartitionLoadSnapshot LoadSnapshot() const;
  uint64_t reply_bytes_out() const;

 private:
  // Fan a prefix command out to every partition, merge entries by key.
  Result<CoordReply> ScatterGather(const CoordCommand& command);

  Environment* env_;
  PartitionedCoordinationConfig config_;
  std::vector<std::unique_ptr<SmrCluster>> partitions_;
  // Declared after partitions_: destroyed first, so in-flight async
  // submissions drain before any partition shuts down.
  InFlightTracker inflight_;
};

}  // namespace scfs

#endif  // SCFS_COORD_PARTITIONED_COORDINATION_H_
