// Shamir secret sharing over GF(2^8) (byte-wise), as used by DepSky-CA to
// protect the file-encryption key: each cloud stores one share; any
// `threshold` shares recover the key; fewer reveal nothing.

#ifndef SCFS_CRYPTO_SECRET_SHARING_H_
#define SCFS_CRYPTO_SECRET_SHARING_H_

#include <cstdint>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/rng.h"
#include "src/common/status.h"

namespace scfs {

struct SecretShare {
  uint8_t index = 0;  // share x-coordinate, 1-based; 0 is invalid
  Bytes data;         // same length as the secret
};

class SecretSharing {
 public:
  // Splits `secret` into `share_count` shares with reconstruction threshold
  // `threshold` (1 <= threshold <= share_count <= 255).
  static Result<std::vector<SecretShare>> Split(const Bytes& secret,
                                                unsigned share_count,
                                                unsigned threshold, Rng& rng);

  // Recovers the secret from at least `threshold` distinct shares.
  static Result<Bytes> Combine(const std::vector<SecretShare>& shares,
                               unsigned threshold);

  // Reconstructs the share at x-coordinate `index` from `threshold` distinct
  // shares: the split polynomial has degree threshold-1, so threshold points
  // determine it completely and any other point can be re-evaluated by
  // Lagrange interpolation. This is how scrub repair regenerates a lost
  // cloud's key share byte-identically — re-splitting would produce shares
  // inconsistent with the survivors (and with the recorded object hashes).
  static Result<SecretShare> RecoverShare(
      const std::vector<SecretShare>& shares, unsigned threshold,
      uint8_t index);
};

}  // namespace scfs

#endif  // SCFS_CRYPTO_SECRET_SHARING_H_
