#include "src/crypto/sha256.h"

#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#define SCFS_SHA256_X86 1
#include <immintrin.h>
#endif

namespace scfs {

namespace {
inline uint32_t Rotr32(uint32_t x, int n) {
  return (x >> n) | (x << (32 - n));
}

constexpr uint32_t kK[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

void ProcessBlocksPortable(uint32_t state[8], const uint8_t* data,
                           size_t count) {
  while (count-- > 0) {
    const uint8_t* block = data;
    data += Sha256::kBlockSize;
    uint32_t w[64];
    for (int i = 0; i < 16; ++i) {
      w[i] = (static_cast<uint32_t>(block[i * 4]) << 24) |
             (static_cast<uint32_t>(block[i * 4 + 1]) << 16) |
             (static_cast<uint32_t>(block[i * 4 + 2]) << 8) |
             static_cast<uint32_t>(block[i * 4 + 3]);
    }
    for (int i = 16; i < 64; ++i) {
      uint32_t s0 =
          Rotr32(w[i - 15], 7) ^ Rotr32(w[i - 15], 18) ^ (w[i - 15] >> 3);
      uint32_t s1 =
          Rotr32(w[i - 2], 17) ^ Rotr32(w[i - 2], 19) ^ (w[i - 2] >> 10);
      w[i] = w[i - 16] + s0 + w[i - 7] + s1;
    }

    uint32_t a = state[0];
    uint32_t b = state[1];
    uint32_t c = state[2];
    uint32_t d = state[3];
    uint32_t e = state[4];
    uint32_t f = state[5];
    uint32_t g = state[6];
    uint32_t h = state[7];

    for (int i = 0; i < 64; ++i) {
      uint32_t s1 = Rotr32(e, 6) ^ Rotr32(e, 11) ^ Rotr32(e, 25);
      uint32_t ch = (e & f) ^ ((~e) & g);
      uint32_t temp1 = h + s1 + ch + kK[i] + w[i];
      uint32_t s0 = Rotr32(a, 2) ^ Rotr32(a, 13) ^ Rotr32(a, 22);
      uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
      uint32_t temp2 = s0 + maj;
      h = g;
      g = f;
      f = e;
      e = d + temp1;
      d = c;
      c = b;
      b = a;
      a = temp1 + temp2;
    }

    state[0] += a;
    state[1] += b;
    state[2] += c;
    state[3] += d;
    state[4] += e;
    state[5] += f;
    state[6] += g;
    state[7] += h;
  }
}

#ifdef SCFS_SHA256_X86

// SHA-NI block compression (the standard ABEF/CDGH lane packing; see the
// Intel SHA extensions programming guide). Requires SHA + SSSE3 + SSE4.1.
__attribute__((target("sha,ssse3,sse4.1"))) void ProcessBlocksShaNi(
    uint32_t state[8], const uint8_t* data, size_t count) {
  const __m128i kByteSwap =
      _mm_set_epi64x(0x0c0d0e0f08090a0bULL, 0x0405060700010203ULL);

  __m128i abcd =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[0]));
  __m128i efgh =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[4]));
  __m128i tmp = _mm_shuffle_epi32(abcd, 0xB1);    // b,a,d,c
  efgh = _mm_shuffle_epi32(efgh, 0x1B);           // h,g,f,e
  __m128i abef = _mm_alignr_epi8(tmp, efgh, 8);   // f,e,b,a
  __m128i cdgh = _mm_blend_epi16(efgh, tmp, 0xF0);  // h,g,d,c

  while (count-- > 0) {
    const __m128i abef_save = abef;
    const __m128i cdgh_save = cdgh;

    __m128i w[4];  // rolling window of four 4-word message groups
    for (int g = 0; g < 16; ++g) {
      __m128i msg;
      if (g < 4) {
        msg = _mm_shuffle_epi8(
            _mm_loadu_si128(
                reinterpret_cast<const __m128i*>(data + 16 * g)),
            kByteSwap);
      } else {
        // W[g] = msg2(msg1(W[g-4], W[g-3]) + alignr(W[g-1], W[g-2], 4),
        //             W[g-1])
        msg = _mm_sha256msg1_epu32(w[g & 3], w[(g + 1) & 3]);
        msg = _mm_add_epi32(msg,
                            _mm_alignr_epi8(w[(g + 3) & 3], w[(g + 2) & 3], 4));
        msg = _mm_sha256msg2_epu32(msg, w[(g + 3) & 3]);
      }
      w[g & 3] = msg;
      __m128i wk = _mm_add_epi32(
          msg, _mm_loadu_si128(reinterpret_cast<const __m128i*>(&kK[4 * g])));
      cdgh = _mm_sha256rnds2_epu32(cdgh, abef, wk);
      abef = _mm_sha256rnds2_epu32(abef, cdgh, _mm_shuffle_epi32(wk, 0x0E));
    }

    abef = _mm_add_epi32(abef, abef_save);
    cdgh = _mm_add_epi32(cdgh, cdgh_save);
    data += Sha256::kBlockSize;
  }

  tmp = _mm_shuffle_epi32(abef, 0x1B);            // a,b,e,f
  cdgh = _mm_shuffle_epi32(cdgh, 0xB1);           // g,h,c,d
  abcd = _mm_blend_epi16(tmp, cdgh, 0xF0);        // a,b,c,d
  efgh = _mm_alignr_epi8(cdgh, tmp, 8);           // e,f,g,h
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[0]), abcd);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[4]), efgh);
}

#endif  // SCFS_SHA256_X86

using BlockFn = void (*)(uint32_t*, const uint8_t*, size_t);

BlockFn PickBlockFn() {
#ifdef SCFS_SHA256_X86
  if (__builtin_cpu_supports("sha") && __builtin_cpu_supports("ssse3") &&
      __builtin_cpu_supports("sse4.1")) {
    return ProcessBlocksShaNi;
  }
#endif
  return ProcessBlocksPortable;
}

bool g_force_portable = false;

BlockFn CurrentBlockFn() {
  if (g_force_portable) {
    return ProcessBlocksPortable;
  }
  static const BlockFn fn = PickBlockFn();
  return fn;
}

}  // namespace

void Sha256::ForcePortableForTesting(bool force) { g_force_portable = force; }

Sha256::Sha256() : total_bytes_(0), buffered_(0) {
  state_[0] = 0x6a09e667;
  state_[1] = 0xbb67ae85;
  state_[2] = 0x3c6ef372;
  state_[3] = 0xa54ff53a;
  state_[4] = 0x510e527f;
  state_[5] = 0x9b05688c;
  state_[6] = 0x1f83d9ab;
  state_[7] = 0x5be0cd19;
}

void Sha256::ProcessBlocks(const uint8_t* blocks, size_t count) {
  CurrentBlockFn()(state_, blocks, count);
}

void Sha256::Update(const uint8_t* data, size_t size) {
  total_bytes_ += size;
  // Top up a partially filled block buffer first.
  if (buffered_ > 0) {
    size_t take = kBlockSize - buffered_;
    if (take > size) {
      take = size;
    }
    std::memcpy(buffer_ + buffered_, data, take);
    buffered_ += take;
    data += take;
    size -= take;
    if (buffered_ == kBlockSize) {
      ProcessBlocks(buffer_, 1);
      buffered_ = 0;
    }
  }
  // Bulk: compress whole blocks straight from the caller's buffer.
  const size_t whole = size / kBlockSize;
  if (whole > 0) {
    ProcessBlocks(data, whole);
    data += whole * kBlockSize;
    size -= whole * kBlockSize;
  }
  if (size > 0) {
    std::memcpy(buffer_, data, size);
    buffered_ = size;
  }
}

std::array<uint8_t, Sha256::kDigestSize> Sha256::Finish() {
  uint64_t bit_length = total_bytes_ * 8;
  uint8_t pad = 0x80;
  Update(&pad, 1);
  uint8_t zero = 0;
  while (buffered_ != 56) {
    Update(&zero, 1);
  }
  uint8_t length_bytes[8];
  for (int i = 0; i < 8; ++i) {
    length_bytes[i] = static_cast<uint8_t>(bit_length >> (56 - i * 8));
  }
  total_bytes_ -= 8;
  Update(length_bytes, 8);

  std::array<uint8_t, kDigestSize> digest;
  for (int i = 0; i < 8; ++i) {
    digest[i * 4] = static_cast<uint8_t>(state_[i] >> 24);
    digest[i * 4 + 1] = static_cast<uint8_t>(state_[i] >> 16);
    digest[i * 4 + 2] = static_cast<uint8_t>(state_[i] >> 8);
    digest[i * 4 + 3] = static_cast<uint8_t>(state_[i]);
  }
  return digest;
}

Bytes Sha256::Hash(ConstByteSpan data) {
  Sha256 h;
  h.Update(data);
  auto d = h.Finish();
  return Bytes(d.begin(), d.end());
}

Bytes Sha256::Hash(std::string_view data) {
  Sha256 h;
  h.Update(reinterpret_cast<const uint8_t*>(data.data()), data.size());
  auto d = h.Finish();
  return Bytes(d.begin(), d.end());
}

}  // namespace scfs
