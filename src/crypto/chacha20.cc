#include "src/crypto/chacha20.h"

#include <cassert>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#define SCFS_CHACHA_X86 1
#include <immintrin.h>
#endif

namespace scfs {

namespace {
inline uint32_t Rotl32(uint32_t x, int n) {
  return (x << n) | (x >> (32 - n));
}

inline void QuarterRound(uint32_t* s, int a, int b, int c, int d) {
  s[a] += s[b];
  s[d] = Rotl32(s[d] ^ s[a], 16);
  s[c] += s[d];
  s[b] = Rotl32(s[b] ^ s[c], 12);
  s[a] += s[b];
  s[d] = Rotl32(s[d] ^ s[a], 8);
  s[c] += s[d];
  s[b] = Rotl32(s[b] ^ s[c], 7);
}

inline uint32_t LoadLe32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

void InitState(uint32_t state[16], ConstByteSpan key, ConstByteSpan nonce,
               uint32_t counter) {
  assert(key.size() == ChaCha20::kKeySize);
  assert(nonce.size() == ChaCha20::kNonceSize);
  state[0] = 0x61707865;
  state[1] = 0x3320646e;
  state[2] = 0x79622d32;
  state[3] = 0x6b206574;
  for (int i = 0; i < 8; ++i) {
    state[4 + i] = LoadLe32(key.data() + i * 4);
  }
  state[12] = counter;
  for (int i = 0; i < 3; ++i) {
    state[13 + i] = LoadLe32(nonce.data() + i * 4);
  }
}

// One block of keystream as 16 little-endian words: 10 double-rounds over a
// working copy, then the feed-forward add.
void KeystreamWords(const uint32_t state[16], uint32_t out[16]) {
  std::memcpy(out, state, 16 * sizeof(uint32_t));
  for (int round = 0; round < 10; ++round) {
    QuarterRound(out, 0, 4, 8, 12);
    QuarterRound(out, 1, 5, 9, 13);
    QuarterRound(out, 2, 6, 10, 14);
    QuarterRound(out, 3, 7, 11, 15);
    QuarterRound(out, 0, 5, 10, 15);
    QuarterRound(out, 1, 6, 11, 12);
    QuarterRound(out, 2, 7, 8, 13);
    QuarterRound(out, 3, 4, 9, 14);
  }
  for (int i = 0; i < 16; ++i) {
    out[i] += state[i];
  }
}

void SerializeKeystream(const uint32_t words[16], uint8_t bytes[64]) {
  for (int i = 0; i < 16; ++i) {
    bytes[i * 4] = static_cast<uint8_t>(words[i]);
    bytes[i * 4 + 1] = static_cast<uint8_t>(words[i] >> 8);
    bytes[i * 4 + 2] = static_cast<uint8_t>(words[i] >> 16);
    bytes[i * 4 + 3] = static_cast<uint8_t>(words[i] >> 24);
  }
}

#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
constexpr bool kLittleEndianHost = true;
#else
constexpr bool kLittleEndianHost = false;
#endif

// Single-block scalar loop; handles any length and serves as the tail path
// behind the multi-block kernels. Advances state[12] past the consumed blocks.
void CryptScalar(uint32_t state[16], const uint8_t* in, uint8_t* out,
                 size_t remaining) {
  uint32_t words[16];
  while (remaining > 0) {
    KeystreamWords(state, words);
    ++state[12];
    const size_t n = remaining < 64 ? remaining : 64;
    if (kLittleEndianHost && n == 64) {
      // Word-wide XOR: on a little-endian host the keystream words are the
      // keystream bytes, so XOR 8 bytes per stride straight from them.
      const uint8_t* ks = reinterpret_cast<const uint8_t*>(words);
      for (int w = 0; w < 8; ++w) {
        uint64_t x;
        uint64_t k;
        std::memcpy(&x, in + w * 8, 8);
        std::memcpy(&k, ks + w * 8, 8);
        x ^= k;
        std::memcpy(out + w * 8, &x, 8);
      }
    } else {
      uint8_t ks[64];
      SerializeKeystream(words, ks);
      for (size_t i = 0; i < n; ++i) {
        out[i] = in[i] ^ ks[i];
      }
    }
    in += n;
    out += n;
    remaining -= n;
  }
}

// Four independent blocks per iteration: the four working states share no
// data, so the compiler can overlap their dependency chains even without
// vector units. Consumes a multiple of 256 bytes.
void Crypt4BlocksPortable(uint32_t state[16], const uint8_t* in, uint8_t* out,
                          size_t groups) {
  uint32_t w0[16];
  uint32_t w1[16];
  uint32_t w2[16];
  uint32_t w3[16];
  for (size_t g = 0; g < groups; ++g) {
    std::memcpy(w0, state, sizeof(w0));
    std::memcpy(w1, state, sizeof(w1));
    std::memcpy(w2, state, sizeof(w2));
    std::memcpy(w3, state, sizeof(w3));
    w1[12] += 1;
    w2[12] += 2;
    w3[12] += 3;
    const uint32_t c0 = w0[12];
    const uint32_t c1 = w1[12];
    const uint32_t c2 = w2[12];
    const uint32_t c3 = w3[12];
    for (int round = 0; round < 10; ++round) {
      QuarterRound(w0, 0, 4, 8, 12);
      QuarterRound(w1, 0, 4, 8, 12);
      QuarterRound(w2, 0, 4, 8, 12);
      QuarterRound(w3, 0, 4, 8, 12);
      QuarterRound(w0, 1, 5, 9, 13);
      QuarterRound(w1, 1, 5, 9, 13);
      QuarterRound(w2, 1, 5, 9, 13);
      QuarterRound(w3, 1, 5, 9, 13);
      QuarterRound(w0, 2, 6, 10, 14);
      QuarterRound(w1, 2, 6, 10, 14);
      QuarterRound(w2, 2, 6, 10, 14);
      QuarterRound(w3, 2, 6, 10, 14);
      QuarterRound(w0, 3, 7, 11, 15);
      QuarterRound(w1, 3, 7, 11, 15);
      QuarterRound(w2, 3, 7, 11, 15);
      QuarterRound(w3, 3, 7, 11, 15);
      QuarterRound(w0, 0, 5, 10, 15);
      QuarterRound(w1, 0, 5, 10, 15);
      QuarterRound(w2, 0, 5, 10, 15);
      QuarterRound(w3, 0, 5, 10, 15);
      QuarterRound(w0, 1, 6, 11, 12);
      QuarterRound(w1, 1, 6, 11, 12);
      QuarterRound(w2, 1, 6, 11, 12);
      QuarterRound(w3, 1, 6, 11, 12);
      QuarterRound(w0, 2, 7, 8, 13);
      QuarterRound(w1, 2, 7, 8, 13);
      QuarterRound(w2, 2, 7, 8, 13);
      QuarterRound(w3, 2, 7, 8, 13);
      QuarterRound(w0, 3, 4, 9, 14);
      QuarterRound(w1, 3, 4, 9, 14);
      QuarterRound(w2, 3, 4, 9, 14);
      QuarterRound(w3, 3, 4, 9, 14);
    }
    for (int i = 0; i < 16; ++i) {
      w0[i] += state[i];
      w1[i] += state[i];
      w2[i] += state[i];
      w3[i] += state[i];
    }
    w1[12] += c1 - c0;
    w2[12] += c2 - c0;
    w3[12] += c3 - c0;
    state[12] += 4;
    if (kLittleEndianHost) {
      const uint32_t* ks[4] = {w0, w1, w2, w3};
      for (int blk = 0; blk < 4; ++blk) {
        const uint8_t* k8 = reinterpret_cast<const uint8_t*>(ks[blk]);
        for (int w = 0; w < 8; ++w) {
          uint64_t x;
          uint64_t k;
          std::memcpy(&x, in + blk * 64 + w * 8, 8);
          std::memcpy(&k, k8 + w * 8, 8);
          x ^= k;
          std::memcpy(out + blk * 64 + w * 8, &x, 8);
        }
      }
    } else {
      const uint32_t* ks[4] = {w0, w1, w2, w3};
      for (int blk = 0; blk < 4; ++blk) {
        uint8_t bytes[64];
        SerializeKeystream(ks[blk], bytes);
        for (int i = 0; i < 64; ++i) {
          out[blk * 64 + i] = in[blk * 64 + i] ^ bytes[i];
        }
      }
    }
    in += 256;
    out += 256;
  }
}

#ifdef SCFS_CHACHA_X86

// Eight blocks per iteration, one block per 32-bit lane of a __m256i: the 16
// state words become 16 vectors, the rounds run on all eight blocks at once,
// and the counter word carries lane offsets 0..7. The 16/8-bit rotates use
// vpshufb byte shuffles; the 12/7-bit rotates use shift+or. Consumes a
// multiple of 512 bytes.
__attribute__((target("avx2"))) void Crypt8BlocksAvx2(uint32_t state[16],
                                                      const uint8_t* in,
                                                      uint8_t* out,
                                                      size_t groups) {
  const __m256i rot16 = _mm256_set_epi8(
      13, 12, 15, 14, 9, 8, 11, 10, 5, 4, 7, 6, 1, 0, 3, 2, 13, 12, 15, 14, 9,
      8, 11, 10, 5, 4, 7, 6, 1, 0, 3, 2);
  const __m256i rot8 = _mm256_set_epi8(
      14, 13, 12, 15, 10, 9, 8, 11, 6, 5, 4, 7, 2, 1, 0, 3, 14, 13, 12, 15, 10,
      9, 8, 11, 6, 5, 4, 7, 2, 1, 0, 3);
  const __m256i lane_ids = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);

  for (size_t g = 0; g < groups; ++g) {
    __m256i v[16];
    for (int i = 0; i < 16; ++i) {
      v[i] = _mm256_set1_epi32(static_cast<int>(state[i]));
    }
    const __m256i counter0 = _mm256_add_epi32(v[12], lane_ids);
    v[12] = counter0;

#define SCFS_CHACHA_QR(a, b, c, d)                                      \
  v[a] = _mm256_add_epi32(v[a], v[b]);                                  \
  v[d] = _mm256_shuffle_epi8(_mm256_xor_si256(v[d], v[a]), rot16);      \
  v[c] = _mm256_add_epi32(v[c], v[d]);                                  \
  v[b] = _mm256_xor_si256(v[b], v[c]);                                  \
  v[b] = _mm256_or_si256(_mm256_slli_epi32(v[b], 12),                   \
                         _mm256_srli_epi32(v[b], 20));                  \
  v[a] = _mm256_add_epi32(v[a], v[b]);                                  \
  v[d] = _mm256_shuffle_epi8(_mm256_xor_si256(v[d], v[a]), rot8);       \
  v[c] = _mm256_add_epi32(v[c], v[d]);                                  \
  v[b] = _mm256_xor_si256(v[b], v[c]);                                  \
  v[b] = _mm256_or_si256(_mm256_slli_epi32(v[b], 7),                    \
                         _mm256_srli_epi32(v[b], 25))

    for (int round = 0; round < 10; ++round) {
      SCFS_CHACHA_QR(0, 4, 8, 12);
      SCFS_CHACHA_QR(1, 5, 9, 13);
      SCFS_CHACHA_QR(2, 6, 10, 14);
      SCFS_CHACHA_QR(3, 7, 11, 15);
      SCFS_CHACHA_QR(0, 5, 10, 15);
      SCFS_CHACHA_QR(1, 6, 11, 12);
      SCFS_CHACHA_QR(2, 7, 8, 13);
      SCFS_CHACHA_QR(3, 4, 9, 14);
    }
#undef SCFS_CHACHA_QR

    for (int i = 0; i < 16; ++i) {
      if (i == 12) {
        v[i] = _mm256_add_epi32(v[i], counter0);
      } else {
        v[i] = _mm256_add_epi32(
            v[i], _mm256_set1_epi32(static_cast<int>(state[i])));
      }
    }
    state[12] += 8;

    // Transpose lanes back to contiguous 64-byte blocks: spill the 16 word
    // vectors, then gather each lane's 16 words into two row vectors and XOR
    // with the input.
    alignas(32) uint32_t ws[16][8];
    for (int i = 0; i < 16; ++i) {
      _mm256_store_si256(reinterpret_cast<__m256i*>(ws[i]), v[i]);
    }
    for (int lane = 0; lane < 8; ++lane) {
      const __m256i k0 = _mm256_setr_epi32(
          static_cast<int>(ws[0][lane]), static_cast<int>(ws[1][lane]),
          static_cast<int>(ws[2][lane]), static_cast<int>(ws[3][lane]),
          static_cast<int>(ws[4][lane]), static_cast<int>(ws[5][lane]),
          static_cast<int>(ws[6][lane]), static_cast<int>(ws[7][lane]));
      const __m256i k1 = _mm256_setr_epi32(
          static_cast<int>(ws[8][lane]), static_cast<int>(ws[9][lane]),
          static_cast<int>(ws[10][lane]), static_cast<int>(ws[11][lane]),
          static_cast<int>(ws[12][lane]), static_cast<int>(ws[13][lane]),
          static_cast<int>(ws[14][lane]), static_cast<int>(ws[15][lane]));
      const uint8_t* src = in + lane * 64;
      uint8_t* dst = out + lane * 64;
      const __m256i x0 =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src));
      const __m256i x1 =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + 32));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst),
                          _mm256_xor_si256(x0, k0));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + 32),
                          _mm256_xor_si256(x1, k1));
    }
    in += 512;
    out += 512;
  }
}

#endif  // SCFS_CHACHA_X86

// Bulk kernel: consumes some prefix of whole 64-byte blocks (a multiple of
// its group size), advances state[12] accordingly, and returns the byte count
// consumed. CryptScalar finishes whatever remains.
using BulkKernel = size_t (*)(uint32_t state[16], const uint8_t* in,
                              uint8_t* out, size_t len);

size_t BulkPortable(uint32_t state[16], const uint8_t* in, uint8_t* out,
                    size_t len) {
  const size_t groups = len / 256;
  Crypt4BlocksPortable(state, in, out, groups);
  return groups * 256;
}

#ifdef SCFS_CHACHA_X86
size_t BulkAvx2(uint32_t state[16], const uint8_t* in, uint8_t* out,
                size_t len) {
  const size_t groups = len / 512;
  Crypt8BlocksAvx2(state, in, out, groups);
  return groups * 512;
}
#endif

BulkKernel PickBulkKernel() {
#ifdef SCFS_CHACHA_X86
  if (__builtin_cpu_supports("avx2")) {
    return BulkAvx2;
  }
#endif
  return BulkPortable;
}

BulkKernel CurrentBulkKernel() {
  static const BulkKernel kernel = PickBulkKernel();
  return kernel;
}

}  // namespace

std::array<uint8_t, 64> ChaCha20::Block(ConstByteSpan key, ConstByteSpan nonce,
                                        uint32_t counter) {
  uint32_t state[16];
  InitState(state, key, nonce, counter);
  uint32_t words[16];
  KeystreamWords(state, words);
  std::array<uint8_t, 64> out;
  SerializeKeystream(words, out.data());
  return out;
}

void ChaCha20::CryptInto(ConstByteSpan key, ConstByteSpan nonce,
                         uint32_t counter, ConstByteSpan input,
                         ByteSpan output) {
  assert(output.size() == input.size());
  uint32_t state[16];
  InitState(state, key, nonce, counter);

  const uint8_t* in = input.data();
  uint8_t* out = output.data();
  size_t remaining = input.size();
  const size_t consumed = CurrentBulkKernel()(state, in, out, remaining);
  CryptScalar(state, in + consumed, out + consumed, remaining - consumed);
}

void ChaCha20::CryptInPlace(ConstByteSpan key, ConstByteSpan nonce,
                            uint32_t counter, ByteSpan data) {
  CryptInto(key, nonce, counter, data, data);
}

Bytes ChaCha20::Crypt(ConstByteSpan key, ConstByteSpan nonce, uint32_t counter,
                      ConstByteSpan input) {
  Bytes out(input.size());
  CryptInto(key, nonce, counter, input, ByteSpan(out));
  return out;
}

}  // namespace scfs
