#include "src/crypto/chacha20.h"

#include <cassert>
#include <cstring>

namespace scfs {

namespace {
inline uint32_t Rotl32(uint32_t x, int n) {
  return (x << n) | (x >> (32 - n));
}

inline void QuarterRound(uint32_t* s, int a, int b, int c, int d) {
  s[a] += s[b];
  s[d] = Rotl32(s[d] ^ s[a], 16);
  s[c] += s[d];
  s[b] = Rotl32(s[b] ^ s[c], 12);
  s[a] += s[b];
  s[d] = Rotl32(s[d] ^ s[a], 8);
  s[c] += s[d];
  s[b] = Rotl32(s[b] ^ s[c], 7);
}

inline uint32_t LoadLe32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

void InitState(uint32_t state[16], ConstByteSpan key, ConstByteSpan nonce,
               uint32_t counter) {
  assert(key.size() == ChaCha20::kKeySize);
  assert(nonce.size() == ChaCha20::kNonceSize);
  state[0] = 0x61707865;
  state[1] = 0x3320646e;
  state[2] = 0x79622d32;
  state[3] = 0x6b206574;
  for (int i = 0; i < 8; ++i) {
    state[4 + i] = LoadLe32(key.data() + i * 4);
  }
  state[12] = counter;
  for (int i = 0; i < 3; ++i) {
    state[13 + i] = LoadLe32(nonce.data() + i * 4);
  }
}

// One block of keystream as 16 little-endian words: 10 double-rounds over a
// working copy, then the feed-forward add.
void KeystreamWords(const uint32_t state[16], uint32_t out[16]) {
  std::memcpy(out, state, 16 * sizeof(uint32_t));
  for (int round = 0; round < 10; ++round) {
    QuarterRound(out, 0, 4, 8, 12);
    QuarterRound(out, 1, 5, 9, 13);
    QuarterRound(out, 2, 6, 10, 14);
    QuarterRound(out, 3, 7, 11, 15);
    QuarterRound(out, 0, 5, 10, 15);
    QuarterRound(out, 1, 6, 11, 12);
    QuarterRound(out, 2, 7, 8, 13);
    QuarterRound(out, 3, 4, 9, 14);
  }
  for (int i = 0; i < 16; ++i) {
    out[i] += state[i];
  }
}

void SerializeKeystream(const uint32_t words[16], uint8_t bytes[64]) {
  for (int i = 0; i < 16; ++i) {
    bytes[i * 4] = static_cast<uint8_t>(words[i]);
    bytes[i * 4 + 1] = static_cast<uint8_t>(words[i] >> 8);
    bytes[i * 4 + 2] = static_cast<uint8_t>(words[i] >> 16);
    bytes[i * 4 + 3] = static_cast<uint8_t>(words[i] >> 24);
  }
}

#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
constexpr bool kLittleEndianHost = true;
#else
constexpr bool kLittleEndianHost = false;
#endif

}  // namespace

std::array<uint8_t, 64> ChaCha20::Block(ConstByteSpan key, ConstByteSpan nonce,
                                        uint32_t counter) {
  uint32_t state[16];
  InitState(state, key, nonce, counter);
  uint32_t words[16];
  KeystreamWords(state, words);
  std::array<uint8_t, 64> out;
  SerializeKeystream(words, out.data());
  return out;
}

void ChaCha20::CryptInto(ConstByteSpan key, ConstByteSpan nonce,
                         uint32_t counter, ConstByteSpan input,
                         ByteSpan output) {
  assert(output.size() == input.size());
  uint32_t state[16];
  InitState(state, key, nonce, counter);

  const uint8_t* in = input.data();
  uint8_t* out = output.data();
  size_t remaining = input.size();
  uint32_t words[16];
  while (remaining > 0) {
    KeystreamWords(state, words);
    ++state[12];
    const size_t n = remaining < 64 ? remaining : 64;
    if (kLittleEndianHost && n == 64) {
      // Word-wide XOR: on a little-endian host the keystream words are the
      // keystream bytes, so XOR 8 bytes per stride straight from them.
      const uint8_t* ks = reinterpret_cast<const uint8_t*>(words);
      for (int w = 0; w < 8; ++w) {
        uint64_t x;
        uint64_t k;
        std::memcpy(&x, in + w * 8, 8);
        std::memcpy(&k, ks + w * 8, 8);
        x ^= k;
        std::memcpy(out + w * 8, &x, 8);
      }
    } else {
      uint8_t ks[64];
      SerializeKeystream(words, ks);
      for (size_t i = 0; i < n; ++i) {
        out[i] = in[i] ^ ks[i];
      }
    }
    in += n;
    out += n;
    remaining -= n;
  }
}

void ChaCha20::CryptInPlace(ConstByteSpan key, ConstByteSpan nonce,
                            uint32_t counter, ByteSpan data) {
  CryptInto(key, nonce, counter, data, data);
}

Bytes ChaCha20::Crypt(ConstByteSpan key, ConstByteSpan nonce, uint32_t counter,
                      ConstByteSpan input) {
  Bytes out(input.size());
  CryptInto(key, nonce, counter, input, ByteSpan(out));
  return out;
}

}  // namespace scfs
