#include "src/crypto/chacha20.h"

#include <cassert>
#include <cstring>

namespace scfs {

namespace {
inline uint32_t Rotl32(uint32_t x, int n) {
  return (x << n) | (x >> (32 - n));
}

inline void QuarterRound(uint32_t* s, int a, int b, int c, int d) {
  s[a] += s[b];
  s[d] = Rotl32(s[d] ^ s[a], 16);
  s[c] += s[d];
  s[b] = Rotl32(s[b] ^ s[c], 12);
  s[a] += s[b];
  s[d] = Rotl32(s[d] ^ s[a], 8);
  s[c] += s[d];
  s[b] = Rotl32(s[b] ^ s[c], 7);
}

inline uint32_t LoadLe32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}
}  // namespace

std::array<uint8_t, 64> ChaCha20::Block(const Bytes& key, const Bytes& nonce,
                                        uint32_t counter) {
  assert(key.size() == kKeySize);
  assert(nonce.size() == kNonceSize);

  uint32_t state[16];
  state[0] = 0x61707865;
  state[1] = 0x3320646e;
  state[2] = 0x79622d32;
  state[3] = 0x6b206574;
  for (int i = 0; i < 8; ++i) {
    state[4 + i] = LoadLe32(&key[i * 4]);
  }
  state[12] = counter;
  for (int i = 0; i < 3; ++i) {
    state[13 + i] = LoadLe32(&nonce[i * 4]);
  }

  uint32_t working[16];
  std::memcpy(working, state, sizeof(state));
  for (int round = 0; round < 10; ++round) {
    QuarterRound(working, 0, 4, 8, 12);
    QuarterRound(working, 1, 5, 9, 13);
    QuarterRound(working, 2, 6, 10, 14);
    QuarterRound(working, 3, 7, 11, 15);
    QuarterRound(working, 0, 5, 10, 15);
    QuarterRound(working, 1, 6, 11, 12);
    QuarterRound(working, 2, 7, 8, 13);
    QuarterRound(working, 3, 4, 9, 14);
  }

  std::array<uint8_t, 64> out;
  for (int i = 0; i < 16; ++i) {
    uint32_t v = working[i] + state[i];
    out[i * 4] = static_cast<uint8_t>(v);
    out[i * 4 + 1] = static_cast<uint8_t>(v >> 8);
    out[i * 4 + 2] = static_cast<uint8_t>(v >> 16);
    out[i * 4 + 3] = static_cast<uint8_t>(v >> 24);
  }
  return out;
}

Bytes ChaCha20::Crypt(const Bytes& key, const Bytes& nonce, uint32_t counter,
                      const Bytes& input) {
  Bytes out(input.size());
  size_t offset = 0;
  uint32_t block_counter = counter;
  while (offset < input.size()) {
    auto keystream = Block(key, nonce, block_counter++);
    size_t n = input.size() - offset;
    if (n > 64) {
      n = 64;
    }
    for (size_t i = 0; i < n; ++i) {
      out[offset + i] = input[offset + i] ^ keystream[i];
    }
    offset += n;
  }
  return out;
}

}  // namespace scfs
