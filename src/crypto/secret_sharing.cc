#include "src/crypto/secret_sharing.h"

#include <set>

#include "src/math/gf256.h"

namespace scfs {

Result<std::vector<SecretShare>> SecretSharing::Split(const Bytes& secret,
                                                      unsigned share_count,
                                                      unsigned threshold,
                                                      Rng& rng) {
  if (threshold == 0 || threshold > share_count || share_count > 255) {
    return InvalidArgumentError("bad secret sharing parameters");
  }
  // One random polynomial of degree threshold-1 per secret byte; the secret
  // byte is the constant term.
  std::vector<SecretShare> shares(share_count);
  for (unsigned s = 0; s < share_count; ++s) {
    shares[s].index = static_cast<uint8_t>(s + 1);
    shares[s].data.resize(secret.size());
  }
  std::vector<uint8_t> coefficients(threshold);
  for (size_t byte = 0; byte < secret.size(); ++byte) {
    coefficients[0] = secret[byte];
    for (unsigned c = 1; c < threshold; ++c) {
      coefficients[c] = static_cast<uint8_t>(rng.NextU64());
    }
    for (unsigned s = 0; s < share_count; ++s) {
      uint8_t x = shares[s].index;
      // Horner evaluation.
      uint8_t y = coefficients[threshold - 1];
      for (int c = static_cast<int>(threshold) - 2; c >= 0; --c) {
        y = Gf256::Add(Gf256::Mul(y, x), coefficients[c]);
      }
      shares[s].data[byte] = y;
    }
  }
  return shares;
}

namespace {

// Lagrange interpolation of the split polynomial at x=`at` from `threshold`
// distinct shares: value = sum_i y_i * prod_{j!=i} (at-x_j)/(x_i-x_j).
// at=0 yields the secret (Combine); at=index re-evaluates a share
// (RecoverShare).
Result<Bytes> InterpolateAt(const std::vector<SecretShare>& shares,
                            unsigned threshold, uint8_t at) {
  if (shares.size() < threshold || threshold == 0) {
    return InvalidArgumentError("not enough shares");
  }
  std::set<uint8_t> seen;
  std::vector<const SecretShare*> use;
  for (const auto& share : shares) {
    if (share.index == 0) {
      return InvalidArgumentError("share index 0 is invalid");
    }
    if (seen.insert(share.index).second) {
      use.push_back(&share);
      if (use.size() == threshold) {
        break;
      }
    }
  }
  if (use.size() < threshold) {
    return InvalidArgumentError("not enough distinct shares");
  }
  const size_t secret_size = use[0]->data.size();
  for (const auto* share : use) {
    if (share->data.size() != secret_size) {
      return InvalidArgumentError("share length mismatch");
    }
  }

  std::vector<uint8_t> lagrange(threshold);
  for (unsigned i = 0; i < threshold; ++i) {
    uint8_t numerator = 1;
    uint8_t denominator = 1;
    for (unsigned j = 0; j < threshold; ++j) {
      if (j == i) {
        continue;
      }
      numerator = Gf256::Mul(numerator, Gf256::Sub(at, use[j]->index));
      denominator = Gf256::Mul(
          denominator, Gf256::Sub(use[j]->index, use[i]->index));
    }
    lagrange[i] = Gf256::Div(numerator, denominator);
  }

  Bytes value(secret_size, 0);
  for (unsigned i = 0; i < threshold; ++i) {
    Gf256::MulAddRow(value.data(), use[i]->data.data(), lagrange[i],
                     static_cast<unsigned>(secret_size));
  }
  return value;
}

}  // namespace

Result<Bytes> SecretSharing::Combine(const std::vector<SecretShare>& shares,
                                     unsigned threshold) {
  return InterpolateAt(shares, threshold, 0);
}

Result<SecretShare> SecretSharing::RecoverShare(
    const std::vector<SecretShare>& shares, unsigned threshold,
    uint8_t index) {
  if (index == 0) {
    return InvalidArgumentError("share index 0 is invalid");
  }
  auto data = InterpolateAt(shares, threshold, index);
  RETURN_IF_ERROR(data.status());
  SecretShare share;
  share.index = index;
  share.data = *std::move(data);
  return share;
}

}  // namespace scfs
