// SHA-1 (FIPS 180-4). SCFS uses SHA-1 as the collision-resistant hash of file
// contents stored in the consistency anchor (paper §2.5.1). Kept alongside
// SHA-256, which this reproduction prefers for new integrity checks.

#ifndef SCFS_CRYPTO_SHA1_H_
#define SCFS_CRYPTO_SHA1_H_

#include <array>
#include <cstdint>

#include "src/common/bytes.h"

namespace scfs {

class Sha1 {
 public:
  static constexpr size_t kDigestSize = 20;
  static constexpr size_t kBlockSize = 64;

  Sha1();

  void Update(const uint8_t* data, size_t size);
  void Update(ConstByteSpan data) { Update(data.data(), data.size()); }
  std::array<uint8_t, kDigestSize> Finish();

  static Bytes Hash(ConstByteSpan data);
  static Bytes Hash(std::string_view data);

 private:
  void ProcessBlock(const uint8_t* block);

  uint32_t state_[5];
  uint64_t total_bytes_;
  uint8_t buffer_[kBlockSize];
  size_t buffered_;
};

}  // namespace scfs

#endif  // SCFS_CRYPTO_SHA1_H_
