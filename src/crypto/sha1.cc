#include "src/crypto/sha1.h"

#include <cstring>

namespace scfs {

namespace {
inline uint32_t Rotl32(uint32_t x, int n) {
  return (x << n) | (x >> (32 - n));
}
}  // namespace

Sha1::Sha1() : total_bytes_(0), buffered_(0) {
  state_[0] = 0x67452301;
  state_[1] = 0xefcdab89;
  state_[2] = 0x98badcfe;
  state_[3] = 0x10325476;
  state_[4] = 0xc3d2e1f0;
}

void Sha1::ProcessBlock(const uint8_t* block) {
  uint32_t w[80];
  for (int i = 0; i < 16; ++i) {
    w[i] = (static_cast<uint32_t>(block[i * 4]) << 24) |
           (static_cast<uint32_t>(block[i * 4 + 1]) << 16) |
           (static_cast<uint32_t>(block[i * 4 + 2]) << 8) |
           static_cast<uint32_t>(block[i * 4 + 3]);
  }
  for (int i = 16; i < 80; ++i) {
    w[i] = Rotl32(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
  }

  uint32_t a = state_[0];
  uint32_t b = state_[1];
  uint32_t c = state_[2];
  uint32_t d = state_[3];
  uint32_t e = state_[4];

  for (int i = 0; i < 80; ++i) {
    uint32_t f;
    uint32_t k;
    if (i < 20) {
      f = (b & c) | ((~b) & d);
      k = 0x5a827999;
    } else if (i < 40) {
      f = b ^ c ^ d;
      k = 0x6ed9eba1;
    } else if (i < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8f1bbcdc;
    } else {
      f = b ^ c ^ d;
      k = 0xca62c1d6;
    }
    uint32_t temp = Rotl32(a, 5) + f + e + k + w[i];
    e = d;
    d = c;
    c = Rotl32(b, 30);
    b = a;
    a = temp;
  }

  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
}

void Sha1::Update(const uint8_t* data, size_t size) {
  total_bytes_ += size;
  while (size > 0) {
    size_t take = kBlockSize - buffered_;
    if (take > size) {
      take = size;
    }
    std::memcpy(buffer_ + buffered_, data, take);
    buffered_ += take;
    data += take;
    size -= take;
    if (buffered_ == kBlockSize) {
      ProcessBlock(buffer_);
      buffered_ = 0;
    }
  }
}

std::array<uint8_t, Sha1::kDigestSize> Sha1::Finish() {
  uint64_t bit_length = total_bytes_ * 8;
  uint8_t pad = 0x80;
  Update(&pad, 1);
  uint8_t zero = 0;
  while (buffered_ != 56) {
    Update(&zero, 1);
  }
  uint8_t length_bytes[8];
  for (int i = 0; i < 8; ++i) {
    length_bytes[i] = static_cast<uint8_t>(bit_length >> (56 - i * 8));
  }
  // Bypass the length bookkeeping for the final 8 bytes.
  total_bytes_ -= 8;
  Update(length_bytes, 8);

  std::array<uint8_t, kDigestSize> digest;
  for (int i = 0; i < 5; ++i) {
    digest[i * 4] = static_cast<uint8_t>(state_[i] >> 24);
    digest[i * 4 + 1] = static_cast<uint8_t>(state_[i] >> 16);
    digest[i * 4 + 2] = static_cast<uint8_t>(state_[i] >> 8);
    digest[i * 4 + 3] = static_cast<uint8_t>(state_[i]);
  }
  return digest;
}

Bytes Sha1::Hash(ConstByteSpan data) {
  Sha1 h;
  h.Update(data);
  auto d = h.Finish();
  return Bytes(d.begin(), d.end());
}

Bytes Sha1::Hash(std::string_view data) {
  Sha1 h;
  h.Update(reinterpret_cast<const uint8_t*>(data.data()), data.size());
  auto d = h.Finish();
  return Bytes(d.begin(), d.end());
}

}  // namespace scfs
