// HMAC-SHA256 (RFC 2104). DepSky metadata in this reproduction carries HMAC
// authenticators instead of RSA signatures (documented substitution: the
// simulated deployment has a shared writer key instead of a PKI; the
// verify-on-read code path is identical).

#ifndef SCFS_CRYPTO_HMAC_H_
#define SCFS_CRYPTO_HMAC_H_

#include "src/common/bytes.h"

namespace scfs {

Bytes HmacSha256(ConstByteSpan key, ConstByteSpan message);

// Constant-time verification.
bool HmacSha256Verify(ConstByteSpan key, ConstByteSpan message,
                      ConstByteSpan expected_mac);

}  // namespace scfs

#endif  // SCFS_CRYPTO_HMAC_H_
