#include "src/crypto/hmac.h"

#include "src/crypto/sha256.h"

namespace scfs {

Bytes HmacSha256(ConstByteSpan key, ConstByteSpan message) {
  Bytes k = CopyToBytes(key);
  if (k.size() > Sha256::kBlockSize) {
    k = Sha256::Hash(k);
  }
  k.resize(Sha256::kBlockSize, 0);

  Bytes ipad(Sha256::kBlockSize);
  Bytes opad(Sha256::kBlockSize);
  for (size_t i = 0; i < Sha256::kBlockSize; ++i) {
    ipad[i] = k[i] ^ 0x36;
    opad[i] = k[i] ^ 0x5c;
  }

  Sha256 inner;
  inner.Update(ipad);
  inner.Update(message);
  auto inner_digest = inner.Finish();

  Sha256 outer;
  outer.Update(opad);
  outer.Update(inner_digest.data(), inner_digest.size());
  auto digest = outer.Finish();
  return Bytes(digest.begin(), digest.end());
}

bool HmacSha256Verify(ConstByteSpan key, ConstByteSpan message,
                      ConstByteSpan expected_mac) {
  return ConstantTimeEquals(HmacSha256(key, message), expected_mac);
}

}  // namespace scfs
