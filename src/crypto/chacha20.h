// ChaCha20 stream cipher (RFC 8439). This is the symmetric cipher DepSky-CA
// uses here to encrypt file contents before erasure coding (the paper used a
// random AES key; ChaCha20 plays the identical role — a fresh random key per
// write, protected by secret sharing).

#ifndef SCFS_CRYPTO_CHACHA20_H_
#define SCFS_CRYPTO_CHACHA20_H_

#include <array>
#include <cstdint>

#include "src/common/bytes.h"

namespace scfs {

class ChaCha20 {
 public:
  static constexpr size_t kKeySize = 32;
  static constexpr size_t kNonceSize = 12;

  // Encryption == decryption (XOR stream). counter is the initial 32-bit
  // block counter (RFC 8439 test vectors use 1 for encryption).
  static Bytes Crypt(const Bytes& key, const Bytes& nonce, uint32_t counter,
                     const Bytes& input);

  // One 64-byte keystream block; exposed for test vectors.
  static std::array<uint8_t, 64> Block(const Bytes& key, const Bytes& nonce,
                                       uint32_t counter);
};

}  // namespace scfs

#endif  // SCFS_CRYPTO_CHACHA20_H_
