// ChaCha20 stream cipher (RFC 8439). This is the symmetric cipher DepSky-CA
// uses here to encrypt file contents before erasure coding (the paper used a
// random AES key; ChaCha20 plays the identical role — a fresh random key per
// write, protected by secret sharing).
//
// The span variants let the DepSky write path encrypt straight into the
// erasure-coding arena (no ciphertext staging buffer) and the read path
// decrypt the reassembled ciphertext in place. Bulk data runs through a
// multi-block kernel — eight blocks per iteration in 32-bit AVX2 lanes when
// the CPU has it (runtime-dispatched, like GF(256) row ops), four independent
// interleaved blocks otherwise — with a scalar single-block loop for the
// tail, all producing the identical RFC 8439 stream.

#ifndef SCFS_CRYPTO_CHACHA20_H_
#define SCFS_CRYPTO_CHACHA20_H_

#include <array>
#include <cstdint>

#include "src/common/bytes.h"

namespace scfs {

class ChaCha20 {
 public:
  static constexpr size_t kKeySize = 32;
  static constexpr size_t kNonceSize = 12;

  // Encryption == decryption (XOR stream). counter is the initial 32-bit
  // block counter (RFC 8439 test vectors use 1 for encryption).
  //
  // output.size() must equal input.size(); output may be the same region as
  // input (in-place) or disjoint from it, but must not partially overlap.
  static void CryptInto(ConstByteSpan key, ConstByteSpan nonce,
                        uint32_t counter, ConstByteSpan input,
                        ByteSpan output);
  static void CryptInPlace(ConstByteSpan key, ConstByteSpan nonce,
                           uint32_t counter, ByteSpan data);

  // Owning convenience wrapper around CryptInto.
  static Bytes Crypt(ConstByteSpan key, ConstByteSpan nonce, uint32_t counter,
                     ConstByteSpan input);

  // One 64-byte keystream block; exposed for test vectors.
  static std::array<uint8_t, 64> Block(ConstByteSpan key, ConstByteSpan nonce,
                                       uint32_t counter);
};

}  // namespace scfs

#endif  // SCFS_CRYPTO_CHACHA20_H_
