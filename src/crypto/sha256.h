// SHA-256 (FIPS 180-4). Used for DepSky block hashes and as the PRF behind
// the HMAC authenticators.

#ifndef SCFS_CRYPTO_SHA256_H_
#define SCFS_CRYPTO_SHA256_H_

#include <array>
#include <cstdint>

#include "src/common/bytes.h"

namespace scfs {

class Sha256 {
 public:
  static constexpr size_t kDigestSize = 32;
  static constexpr size_t kBlockSize = 64;

  Sha256();

  void Update(const uint8_t* data, size_t size);
  void Update(const Bytes& data) { Update(data.data(), data.size()); }
  std::array<uint8_t, kDigestSize> Finish();

  static Bytes Hash(const Bytes& data);
  static Bytes Hash(std::string_view data);

 private:
  void ProcessBlock(const uint8_t* block);

  uint32_t state_[8];
  uint64_t total_bytes_;
  uint8_t buffer_[kBlockSize];
  size_t buffered_;
};

}  // namespace scfs

#endif  // SCFS_CRYPTO_SHA256_H_
