// SHA-256 (FIPS 180-4). Used for DepSky block hashes and as the PRF behind
// the HMAC authenticators.
//
// Bulk input is compressed in multi-block runs straight from the caller's
// buffer (no staging through the 64-byte block buffer); on x86 CPUs with the
// SHA extensions the block compression runs on the SHA-NI instructions,
// selected once at startup with a portable fallback. Shard hashing is a large
// share of the DepSky PUT pipeline's CPU time, so this kernel matters as much
// as the GF(2^8) one.

#ifndef SCFS_CRYPTO_SHA256_H_
#define SCFS_CRYPTO_SHA256_H_

#include <array>
#include <cstdint>

#include "src/common/bytes.h"

namespace scfs {

class Sha256 {
 public:
  static constexpr size_t kDigestSize = 32;
  static constexpr size_t kBlockSize = 64;

  Sha256();

  void Update(const uint8_t* data, size_t size);
  void Update(ConstByteSpan data) { Update(data.data(), data.size()); }
  std::array<uint8_t, kDigestSize> Finish();

  static Bytes Hash(ConstByteSpan data);
  static Bytes Hash(std::string_view data);

  // Pins the portable block function (disables SHA-NI) so benchmarks can
  // measure the hardware path against the seed kernel in one binary. Not
  // thread-safe; call before hashing starts.
  static void ForcePortableForTesting(bool force);

 private:
  void ProcessBlocks(const uint8_t* blocks, size_t count);

  uint32_t state_[8];
  uint64_t total_bytes_;
  uint8_t buffer_[kBlockSize];
  size_t buffered_;
};

}  // namespace scfs

#endif  // SCFS_CRYPTO_SHA256_H_
