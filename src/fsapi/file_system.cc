#include "src/fsapi/file_system.h"

namespace scfs {

Status FileSystem::WriteFile(const std::string& path, const Bytes& data) {
  ASSIGN_OR_RETURN(FileHandle handle,
                   Open(path, kOpenWrite | kOpenCreate | kOpenTruncate));
  Status write_status = Write(handle, 0, data);
  Status close_status = Close(handle);
  if (!write_status.ok()) {
    return write_status;
  }
  return close_status;
}

Result<Bytes> FileSystem::ReadFile(const std::string& path) {
  ASSIGN_OR_RETURN(FileHandle handle, Open(path, kOpenRead));
  ASSIGN_OR_RETURN(FileStat stat, Stat(path));
  auto data = Read(handle, 0, stat.size);
  Status close_status = Close(handle);
  if (!data.ok()) {
    return data.status();
  }
  if (!close_status.ok()) {
    return close_status;
  }
  return std::move(*data);
}

}  // namespace scfs
