#include "src/fsapi/file_system.h"

namespace scfs {

Future<Status> FileSystem::CloseAsync(FileHandle handle) {
  // Synchronous adapter: the caller was charged inline by Close itself.
  return Future<Status>::Ready(Close(handle));
}

Status FileSystem::SyncBarrier() { return OkStatus(); }

Status FileSystem::WriteFile(const std::string& path, const Bytes& data) {
  ASSIGN_OR_RETURN(FileHandle handle,
                   Open(path, kOpenWrite | kOpenCreate | kOpenTruncate));
  Status write_status = Write(handle, 0, data);
  // Close runs even when the write failed: it retires the handle and, in
  // implementations with per-file locks, releases the lock — a failed write
  // must never leave the file locked.
  Status close_status = Close(handle);
  if (!write_status.ok()) {
    return write_status;
  }
  return close_status;
}

Result<Bytes> FileSystem::ReadFile(const std::string& path) {
  ASSIGN_OR_RETURN(FileHandle handle, Open(path, kOpenRead));
  auto stat = Stat(path);
  if (!stat.ok()) {
    // Don't leak the open handle when the stat races a concurrent remove.
    (void)Close(handle);
    return stat.status();
  }
  auto data = Read(handle, 0, stat->size);
  Status close_status = Close(handle);
  if (!data.ok()) {
    return data.status();
  }
  if (!close_status.ok()) {
    return close_status;
  }
  return std::move(*data);
}

}  // namespace scfs
