// fsapi::FileSystem — the POSIX-like virtual file system interface.
//
// This is the call surface FUSE would forward to (the paper mounts the SCFS
// Agent through FUSE-J; this container cannot mount FUSE, so the interface is
// consumed in-process — see DESIGN.md substitution table). SCFS and every
// baseline (LocalFS, S3FS-like, S3QL-like) implement it, which is what lets
// the benchmark harness run identical workloads over all nine systems of
// Table 3.

#ifndef SCFS_FSAPI_FILE_SYSTEM_H_
#define SCFS_FSAPI_FILE_SYSTEM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/future.h"
#include "src/common/status.h"
#include "src/sim/time.h"

namespace scfs {

enum OpenFlags : uint32_t {
  kOpenRead = 1u << 0,
  kOpenWrite = 1u << 1,
  kOpenCreate = 1u << 2,
  kOpenTruncate = 1u << 3,
};

using FileHandle = uint64_t;

enum class FileType : uint8_t { kFile = 0, kDirectory = 1 };

struct FileStat {
  FileType type = FileType::kFile;
  uint64_t size = 0;
  VirtualTime mtime = 0;
  VirtualTime ctime = 0;
  std::string owner;
  uint64_t version = 0;  // bumps on every completed (closed) update
};

struct DirEntry {
  std::string name;
  FileType type = FileType::kFile;
};

// Per-user access rights, managed with setfacl/getfacl (paper §2.6 uses ACLs
// instead of Unix modes).
struct AclEntry {
  std::string user;
  bool read = false;
  bool write = false;
};

class FileSystem {
 public:
  virtual ~FileSystem() = default;

  // -- File lifecycle ------------------------------------------------------

  // Opens (optionally creating) a file. Opening for write takes the file
  // lock; a concurrent writer gets BUSY. Consistency-on-close: the returned
  // snapshot reflects all updates of previously *closed* writes.
  virtual Result<FileHandle> Open(const std::string& path,
                                  uint32_t flags) = 0;

  // Reads up to `size` bytes at `offset` from the open file.
  virtual Result<Bytes> Read(FileHandle handle, uint64_t offset,
                             size_t size) = 0;

  // Writes into the open file at `offset` (durability level 0 — memory).
  virtual Status Write(FileHandle handle, uint64_t offset,
                       const Bytes& data) = 0;

  // Truncates the open file to `size` bytes.
  virtual Status Truncate(FileHandle handle, uint64_t size) = 0;

  // Flushes the open file to the local disk (durability level 1).
  virtual Status Fsync(FileHandle handle) = 0;

  // Closes the file; a modified file is synchronized with the backend
  // (durability level 2/3) per the file system's mode.
  virtual Status Close(FileHandle handle) = 0;

  // Asynchronous close: the handle is retired immediately and the returned
  // future completes when the close reaches the file system's first
  // durability point — level 1 (local disk) for SCFS's non-blocking mode,
  // whose upload -> metadata -> unlock chain then proceeds in background in
  // that order (paper §3.1); level 2/3 for blocking implementations. The
  // default adapter runs the blocking Close inline and returns a ready
  // future.
  virtual Future<Status> CloseAsync(FileHandle handle);

  // Flush point for the asynchronous pipeline: blocks until every close
  // issued so far is fully synchronized with the backend (durability 2/3,
  // metadata published, locks released). Default: no-op for fully
  // synchronous implementations.
  virtual Status SyncBarrier();

  // -- Namespace -----------------------------------------------------------

  virtual Status Mkdir(const std::string& path) = 0;
  virtual Status Rmdir(const std::string& path) = 0;
  virtual Status Unlink(const std::string& path) = 0;
  virtual Status Rename(const std::string& from, const std::string& to) = 0;
  virtual Result<FileStat> Stat(const std::string& path) = 0;
  virtual Result<std::vector<DirEntry>> ReadDir(const std::string& path) = 0;

  // -- Access control ------------------------------------------------------

  virtual Status SetFacl(const std::string& path, const std::string& user,
                         bool read, bool write) = 0;
  virtual Result<std::vector<AclEntry>> GetFacl(const std::string& path) = 0;

  // -- Convenience (non-virtual) -------------------------------------------

  // Creates/overwrites a whole file: open(create|write|trunc) + write + close.
  Status WriteFile(const std::string& path, const Bytes& data);
  // Opens, reads everything, closes.
  Result<Bytes> ReadFile(const std::string& path);
};

}  // namespace scfs

#endif  // SCFS_FSAPI_FILE_SYSTEM_H_
