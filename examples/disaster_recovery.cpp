// Disaster recovery: the paper's "automatic disaster recovery" use case.
// Files written through SCFS-CoC survive not only the loss of the local
// machine but arbitrary faults of f = 1 out of 4 cloud providers: a full
// outage, silent data corruption, even byzantine (stale-serving) behaviour.
//
//   $ ./examples/disaster_recovery

#include <cstdio>

#include "src/scfs/deployment.h"

using namespace scfs;

int main() {
  auto env = Environment::Scaled(1e-3);
  auto deployment = Deployment::Create(env.get(), DeploymentOptions{});

  Bytes payroll = ToBytes("Q2 payroll: everyone gets a raise");
  {
    auto fs = *deployment->Mount("corp", ScfsOptions{});
    fs->Mkdir("/backup");
    fs->WriteFile("/backup/payroll.db", payroll);
    fs->Unmount();
    // The machine that wrote the data is gone, along with all its caches.
  }

  struct Disaster {
    const char* name;
    std::function<void(SimulatedCloud*)> strike;
    std::function<void(SimulatedCloud*)> recover;
  };
  const Disaster disasters[] = {
      {"provider outage",
       [](SimulatedCloud* c) { c->faults().SetUnavailable(true); },
       [](SimulatedCloud* c) { c->faults().SetUnavailable(false); }},
      {"silent data corruption",
       [](SimulatedCloud* c) { c->faults().SetCorruptAllReads(true); },
       [](SimulatedCloud* c) { c->faults().SetCorruptAllReads(false); }},
      {"byzantine rollback",
       [](SimulatedCloud* c) { c->faults().SetByzantine(true); },
       [](SimulatedCloud* c) { c->faults().SetByzantine(false); }},
  };

  bool all_ok = true;
  for (const auto& disaster : disasters) {
    for (unsigned victim = 0; victim < deployment->cloud_count(); ++victim) {
      disaster.strike(deployment->cloud(victim));
      // A fresh machine, zero local state: everything must come back from
      // the remaining clouds.
      auto fs = *deployment->Mount("corp", ScfsOptions{});
      auto restored = fs->ReadFile("/backup/payroll.db");
      bool ok = restored.ok() && *restored == payroll;
      all_ok = all_ok && ok;
      std::printf("%-26s at %-16s -> %s\n", disaster.name,
                  deployment->cloud(victim)->provider_name().c_str(),
                  ok ? "recovered" : "LOST");
      fs->Unmount();
      disaster.recover(deployment->cloud(victim));
    }
  }

  // Confidentiality: even a full provider compromise leaks nothing — each
  // cloud holds an encrypted erasure shard plus one key share (f+1 needed).
  std::string needle = "payroll";
  bool leaked = false;
  for (unsigned i = 0; i < deployment->cloud_count(); ++i) {
    auto* cloud = deployment->cloud(i);
    auto objects = cloud->List({cloud->provider_name() + ":corp"}, "");
    for (const auto& object : *objects) {
      auto blob = cloud->PeekLatest(object.key);
      std::string haystack(blob->begin(), blob->end());
      if (haystack.find(needle) != std::string::npos) {
        leaked = true;
      }
    }
  }
  std::printf("plaintext visible to any single provider: %s\n",
              leaked ? "?! CONFIDENTIALITY BUG" : "no");

  std::printf(all_ok && !leaked ? "disaster recovery OK\n"
                                : "disaster recovery FAILED\n");
  return all_ok && !leaked ? 0 : 1;
}
