// Collaboration: the paper's "collaboration infrastructure" use case —
// dependable data-based collaboration without running any code in the cloud,
// purely through the POSIX-like API, ACL sharing and consistency-on-close.
//
// Alice shares a document with Bob; they take turns editing under the
// write-write lock; Eve (no grant) is rejected by the providers themselves.
//
//   $ ./examples/collaboration

#include <cstdio>

#include "src/scfs/deployment.h"

using namespace scfs;

int main() {
  auto env = Environment::Scaled(1e-3);
  auto deployment = Deployment::Create(env.get(), DeploymentOptions{});

  auto alice = *deployment->Mount("alice", ScfsOptions{});
  auto bob = *deployment->Mount("bob", ScfsOptions{});
  auto eve = *deployment->Mount("eve", ScfsOptions{});

  // Alice writes the first draft and grants Bob read-write access: the agent
  // updates the ACLs of the data objects at every cloud provider AND the
  // metadata tuple in the coordination service (paper section 2.6).
  alice->WriteFile("/paper.tex", ToBytes("\\title{SCFS}\n% alice's draft\n"));
  alice->SetFacl("/paper.tex", "bob", /*read=*/true, /*write=*/true);
  env->Sleep(kSecond);  // let alice's metadata cache TTL lapse

  // Eve was never granted anything: both the coordination service and the
  // storage clouds reject her (the agent is not trusted to enforce this).
  auto eve_read = eve->ReadFile("/paper.tex");
  std::printf("eve reads: %s\n", eve_read.ok()
                                     ? "?! SECURITY BUG"
                                     : eve_read.status().ToString().c_str());

  // Bob opens for writing (takes the lock), edits, closes (publishes).
  auto bob_handle = *bob->Open("/paper.tex", kOpenRead | kOpenWrite);

  // While Bob holds it, Alice's write-open gets BUSY (write-write conflicts
  // are prevented by the lock service; reads are never blocked).
  auto alice_attempt = alice->Open("/paper.tex", kOpenWrite);
  std::printf("alice opens for write while bob edits: %s\n",
              alice_attempt.ok() ? "?! LOCK BUG"
                                 : alice_attempt.status().ToString().c_str());
  auto alice_reader = alice->Open("/paper.tex", kOpenRead);
  std::printf("alice opens for read while bob edits: %s\n",
              alice_reader.ok() ? "OK" : "?! read should not block");
  alice->Close(*alice_reader);

  Bytes draft = *bob->Read(bob_handle, 0, 1 << 20);
  Bytes edited = draft;
  Bytes addition = ToBytes("% bob's related work section\n");
  edited.insert(edited.end(), addition.begin(), addition.end());
  bob->Truncate(bob_handle, 0);
  bob->Write(bob_handle, 0, edited);
  bob->Close(bob_handle);  // consistency-on-close: now visible to alice

  env->Sleep(kSecond);
  auto merged = alice->ReadFile("/paper.tex");
  std::printf("alice now sees %zu bytes:\n%s", merged->size(),
              ToString(*merged).c_str());

  // Revocation: bob loses access everywhere at once.
  alice->SetFacl("/paper.tex", "bob", false, false);
  env->Sleep(kSecond);
  auto bob_after = bob->ReadFile("/paper.tex");
  std::printf("bob after revocation: %s\n",
              bob_after.ok() ? "?! REVOCATION BUG"
                             : bob_after.status().ToString().c_str());

  alice->Unmount();
  bob->Unmount();
  eve->Unmount();
  std::printf("collaboration OK\n");
  return 0;
}
