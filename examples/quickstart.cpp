// Quickstart: mount an SCFS agent on the cloud-of-clouds backend, create a
// directory tree, write and read files, inspect versions, and watch the
// garbage collector reclaim old ones.
//
//   $ ./examples/quickstart

#include <cstdio>

#include "src/scfs/deployment.h"

using namespace scfs;

int main() {
  // A complete installation: four simulated storage clouds behind DepSky and
  // a DepSpace coordination service replicated over four computing clouds.
  auto env = Environment::Scaled(1e-3);  // 1 virtual second = 1 real ms
  auto deployment = Deployment::Create(env.get(), DeploymentOptions{});

  // Mount an agent for user "alice" in blocking mode: close() returns only
  // once data is stored in a quorum of clouds (durability level 3).
  ScfsOptions options;
  options.mode = ScfsMode::kBlocking;
  options.gc.enabled = false;  // run it manually below
  auto mounted = deployment->Mount("alice", options);
  if (!mounted.ok()) {
    std::printf("mount failed: %s\n", mounted.status().ToString().c_str());
    return 1;
  }
  auto& fs = *mounted;

  // POSIX-like calls, exactly what a FUSE layer would forward.
  fs->Mkdir("/docs");
  fs->WriteFile("/docs/plan.txt", ToBytes("v1: world domination"));
  fs->WriteFile("/docs/plan.txt", ToBytes("v2: incremental world domination"));
  fs->WriteFile("/docs/plan.txt", ToBytes("v3: domination via documentation"));
  fs->WriteFile("/docs/plan.txt", ToBytes("v4: ship the reproduction"));

  auto content = fs->ReadFile("/docs/plan.txt");
  std::printf("plan.txt: %s\n", ToString(*content).c_str());
  (void)env;

  auto stat = fs->Stat("/docs/plan.txt");
  std::printf("size=%llu bytes, version=%llu, owner=%s\n",
              static_cast<unsigned long long>(stat->size),
              static_cast<unsigned long long>(stat->version),
              stat->owner.c_str());

  auto root_entries = fs->ReadDir("/");
  for (const auto& entry : *root_entries) {
    std::printf("/ contains: %s%s\n", entry.name.c_str(),
                entry.type == FileType::kDirectory ? "/" : "");
  }

  // Multi-versioning: both versions are still in the clouds (error recovery),
  // until the garbage collector trims them.
  auto md = fs->metadata_service().Get("/docs/plan.txt");
  auto versions = fs->storage_service().backend().ListVersions(md->object_id);
  std::printf("versions in the cloud-of-clouds before GC: %zu\n",
              versions->size());
  fs->RunGarbageCollection();
  versions = fs->storage_service().backend().ListVersions(md->object_id);
  std::printf("versions after GC (keep last %u): %zu\n",
              fs->options().gc.versions_to_keep, versions->size());

  // What did this cost? (Paper Figure 11 economics, measured.)
  UsageTotals usage = deployment->CloudUsage("alice");
  std::printf("cloud usage: %llu PUTs, %llu GETs, %.2f microdollars total\n",
              static_cast<unsigned long long>(usage.puts),
              static_cast<unsigned long long>(usage.gets),
              ToMicrodollars(usage.TotalCost()));

  fs->Unmount();
  std::printf("quickstart OK\n");
  return 0;
}
