// Personal file synchronization: the paper's "secure personal file system"
// use case — a Dropbox-like personal store in non-sharing mode (SCFS-*-NS):
// no coordination service at all, metadata in a Private Name Space object,
// background uploads, and the whole state recoverable on a new machine.
//
//   $ ./examples/personal_sync

#include <cstdio>

#include "src/scfs/deployment.h"

using namespace scfs;

int main() {
  auto env = Environment::Scaled(1e-3);
  auto deployment = Deployment::Create(env.get(), DeploymentOptions{});

  ScfsOptions options;
  options.mode = ScfsMode::kNonSharing;  // S3QL-like, but on a cloud-of-clouds

  // Laptop session: work normally; closes return at local-disk speed while
  // uploads stream in the background.
  {
    auto laptop = *deployment->Mount("dana", options);
    laptop->Mkdir("/photos");
    laptop->Mkdir("/notes");
    for (int i = 0; i < 5; ++i) {
      laptop->WriteFile("/photos/img" + std::to_string(i) + ".raw",
                        Bytes(256 * 1024, static_cast<uint8_t>(i)));
    }
    laptop->WriteFile("/notes/todo.md", ToBytes("- reproduce SCFS\n"));
    laptop->Rename("/notes/todo.md", "/notes/done.md");
    Environment::ResetThreadCharged();
    laptop->WriteFile("/notes/diary.md", ToBytes("dear diary, clouds are ok"));
    std::printf("foreground cost of a save in NS mode: %.0f virtual ms\n",
                ToSeconds(Environment::ThreadCharged()) * 1000);
    laptop->Unmount();  // drains uploads, persists the PNS object
  }

  // The laptop is stolen. A new machine mounts with the same accounts: the
  // PNS object and every file come back from the clouds.
  auto desktop = *deployment->Mount("dana", options);
  auto entries = desktop->ReadDir("/photos");
  std::printf("recovered %zu photos on the new machine\n", entries->size());
  auto diary = desktop->ReadFile("/notes/diary.md");
  std::printf("diary: %s\n", ToString(*diary).c_str());
  auto renamed = desktop->Stat("/notes/done.md");
  std::printf("renamed note survived: %s\n", renamed.ok() ? "yes" : "no");

  // Privacy: nothing in any provider mentions the plaintext.
  auto* cloud = deployment->cloud(0);
  auto objects = cloud->List({cloud->provider_name() + ":dana"}, "");
  std::printf("objects at %s: %zu (all encrypted shards)\n",
              cloud->provider_name().c_str(), objects->size());

  bool ok = entries->size() == 5 && diary.ok() && renamed.ok();
  desktop->Unmount();
  std::printf(ok ? "personal sync OK\n" : "personal sync FAILED\n");
  return ok ? 0 : 1;
}
