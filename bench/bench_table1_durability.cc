// Table 1 reproduction: SCFS durability levels — where data lives after each
// call, its latency and what faults it survives.
//
//   level 0  write   -> main memory        (microseconds, no durability)
//   level 1  fsync   -> local disk         (milliseconds, survives crash)
//   level 2  close   -> single cloud       (seconds, survives disk loss)
//   level 3  close   -> cloud-of-clouds    (seconds, survives f cloud faults)

#include "bench/harness.h"
#include "src/scfs/deployment.h"

namespace scfs {
namespace {

constexpr size_t kFileSize = 1024 * 1024;  // 1 MB

double MeasureLevels(Environment* env, ScfsBackendKind backend, double* write_s,
                     double* fsync_s) {
  DeploymentOptions options;
  options.backend = backend;
  auto deployment = Deployment::Create(env, options);
  ScfsOptions fs_options;
  fs_options.mode = ScfsMode::kBlocking;
  auto fs = deployment->Mount("u", fs_options);
  if (!fs.ok()) {
    return -1;
  }

  auto handle = (*fs)->Open("/f", kOpenWrite | kOpenCreate);
  if (!handle.ok()) {
    return -1;
  }
  Bytes data(kFileSize, 1);

  Environment::ResetThreadCharged();
  (void)(*fs)->Write(*handle, 0, data);
  *write_s = ToSeconds(Environment::ThreadCharged());

  Environment::ResetThreadCharged();
  (void)(*fs)->Fsync(*handle);
  *fsync_s = ToSeconds(Environment::ThreadCharged());

  Environment::ResetThreadCharged();
  (void)(*fs)->Close(*handle);
  double close_s = ToSeconds(Environment::ThreadCharged());
  (void)(*fs)->Unmount();
  return close_s;
}

void Run() {
  auto env = Environment::Scaled(BenchTimeScale());
  double write_s = 0;
  double fsync_s = 0;
  double close_single = MeasureLevels(env.get(), ScfsBackendKind::kAws,
                                      &write_s, &fsync_s);
  double write2 = 0;
  double fsync2 = 0;
  double close_coc = MeasureLevels(env.get(), ScfsBackendKind::kCoc, &write2,
                                   &fsync2);

  PrintHeader("Table 1: durability levels (1 MB file, virtual seconds)");
  std::vector<int> widths = {7, 18, 14, 22, 10};
  PrintRow({"level", "location", "latency(s)", "fault tolerance", "syscall"},
           widths);
  PrintRow({"0", "main memory", FormatSeconds(write_s), "none", "write"},
           widths);
  PrintRow({"1", "local disk", FormatSeconds(fsync_s), "crash", "fsync"},
           widths);
  PrintRow({"2", "cloud", FormatSeconds(close_single), "local disk", "close"},
           widths);
  PrintRow({"3", "cloud-of-clouds", FormatSeconds(close_coc), "f clouds",
            "close"},
           widths);
  std::printf(
      "\nPaper shape check: microseconds -> milliseconds -> seconds, with the\n"
      "cloud-of-clouds close comparable to the single cloud (parallel quorum\n"
      "writes of half-size erasure shards).\n");
}

}  // namespace
}  // namespace scfs

int main() {
  scfs::Run();
  return 0;
}
