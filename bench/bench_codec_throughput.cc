// Data-plane CPU throughput: GF(2^8) row kernels, Reed-Solomon encode/decode,
// ChaCha20, SHA-256, and the end-to-end DepSky PUT/GET payload processing
// pipelines — each measured against a faithful replica of the seed
// implementation (byte-at-a-time exp/log GF kernel, per-block cipher state
// setup, copy-heavy framing) so the speedup is computed inside one binary.
//
// Usage: bench_codec_throughput [--quick] [--json PATH]
// Emits BENCH_codec.json (override with --json) for the perf trajectory.

#include <chrono>
#include <cstring>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "src/cloud/simulated_cloud.h"
#include "src/codec/reed_solomon.h"
#include "src/common/rng.h"
#include "src/crypto/chacha20.h"
#include "src/crypto/secret_sharing.h"
#include "src/crypto/sha1.h"
#include "src/crypto/sha256.h"
#include "src/depsky/depsky.h"
#include "src/math/gf256.h"

namespace scfs {
namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Times a single run of fn; returns MB/s of `bytes`. Used for the large-file
// end-to-end transfers, where one iteration runs long enough to be stable and
// repeating it would accumulate hundreds of MB of stored versions.
template <typename Fn>
double TimeOnceMbps(size_t bytes, Fn fn) {
  const double start = NowSeconds();
  fn();
  const double elapsed = NowSeconds() - start;
  return static_cast<double>(bytes) / elapsed / (1024.0 * 1024.0);
}

// Runs fn repeatedly until ~min_seconds elapsed; returns MB/s of
// bytes_per_iteration.
template <typename Fn>
double MeasureMbps(size_t bytes_per_iteration, double min_seconds, Fn fn) {
  // Warm-up iteration (first-touch faults, table construction).
  fn();
  int iterations = 0;
  const double start = NowSeconds();
  double elapsed = 0;
  do {
    fn();
    ++iterations;
    elapsed = NowSeconds() - start;
  } while (elapsed < min_seconds);
  const double bytes =
      static_cast<double>(bytes_per_iteration) * iterations;
  return bytes / elapsed / (1024.0 * 1024.0);
}

// ---------------------------------------------------------------------------
// Seed replicas: the copy/branch behavior of the pre-span implementation,
// reproduced so "vs seed" is measured in-binary and not against git history.
// ---------------------------------------------------------------------------

// Seed ErasureCodec::Encode: frame copy, per-shard slicing, systematic
// copies, byte-at-a-time parity kernel.
std::vector<Bytes> SeedErasureEncode(unsigned n, unsigned k,
                                     const GfMatrix& matrix,
                                     const Bytes& data) {
  Bytes framed;
  framed.reserve(data.size() + 8);
  AppendU64(&framed, data.size());
  framed.insert(framed.end(), data.begin(), data.end());
  const size_t per_shard = (data.size() + 8 + k - 1) / k;
  framed.resize(per_shard * k, 0);

  std::vector<Bytes> data_shards(k);
  for (unsigned i = 0; i < k; ++i) {
    data_shards[i].assign(framed.begin() + i * per_shard,
                          framed.begin() + (i + 1) * per_shard);
  }
  std::vector<Bytes> out(n);
  for (unsigned row = 0; row < n; ++row) {
    if (row < k) {
      out[row] = data_shards[row];
      continue;
    }
    out[row].assign(per_shard, 0);
    for (unsigned col = 0; col < k; ++col) {
      Gf256::MulAddRowReference(out[row].data(), data_shards[col].data(),
                                matrix.At(row, col), per_shard);
    }
  }
  return out;
}

// Seed ErasureCodec::Decode: per-shard staging copies, concat, final slice.
Bytes SeedErasureDecode(unsigned n, unsigned k, const GfMatrix& matrix,
                        const std::vector<std::optional<Bytes>>& shards) {
  std::vector<unsigned> present;
  size_t shard_size = 0;
  for (unsigned i = 0; i < n && present.size() < k; ++i) {
    if (shards[i].has_value()) {
      shard_size = shards[i]->size();
      present.push_back(i);
    }
  }
  std::vector<Bytes> data(k);
  bool all_data = true;
  for (unsigned i = 0; i < k; ++i) {
    if (present[i] != i) {
      all_data = false;
    }
  }
  if (all_data) {
    for (unsigned i = 0; i < k; ++i) {
      data[i] = *shards[i];
    }
  } else {
    GfMatrix sub = matrix.SelectRows(present);
    GfMatrix inverse(k, k);
    if (!sub.Invert(&inverse)) {
      return {};
    }
    for (unsigned row = 0; row < k; ++row) {
      data[row].assign(shard_size, 0);
      for (unsigned col = 0; col < k; ++col) {
        Gf256::MulAddRowReference(data[row].data(),
                                  shards[present[col]]->data(),
                                  inverse.At(row, col), shard_size);
      }
    }
  }
  Bytes framed;
  for (const auto& shard : data) {
    framed.insert(framed.end(), shard.begin(), shard.end());
  }
  uint64_t size = 0;
  for (int i = 0; i < 8; ++i) {
    size = (size << 8) | framed[i];
  }
  return Bytes(framed.begin() + 8, framed.begin() + 8 + size);
}

// Seed ChaCha20::Crypt: full state setup per 64-byte block, byte-wise XOR,
// output into a fresh buffer.
Bytes SeedChaChaCrypt(const Bytes& key, const Bytes& nonce, uint32_t counter,
                      const Bytes& input) {
  Bytes out(input.size());
  size_t offset = 0;
  uint32_t block_counter = counter;
  while (offset < input.size()) {
    auto keystream = ChaCha20::Block(key, nonce, block_counter++);
    size_t n = input.size() - offset;
    if (n > 64) {
      n = 64;
    }
    for (size_t i = 0; i < n; ++i) {
      out[offset + i] = input[offset + i] ^ keystream[i];
    }
    offset += n;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Pipelines: the CPU-side payload processing of one DepSky-CA write (encrypt
// -> erasure-encode -> shard hash -> wire framing) and read (decode ->
// decrypt). Cloud I/O and metadata round trips excluded — this is the part
// the zero-copy refactor changed.
// ---------------------------------------------------------------------------

struct PipelineConfig {
  unsigned n;
  unsigned k;
  Bytes key;
  Bytes nonce;
  GfMatrix matrix;  // for the seed replica
};

std::vector<Bytes> SeedPutPipeline(const PipelineConfig& cfg,
                                   const Bytes& data) {
  Sha256::ForcePortableForTesting(true);
  Bytes ciphertext = SeedChaChaCrypt(cfg.key, cfg.nonce, 0, data);
  std::vector<Bytes> shards =
      SeedErasureEncode(cfg.n, cfg.k, cfg.matrix, ciphertext);
  std::vector<Bytes> wire(shards.size());
  for (size_t i = 0; i < shards.size(); ++i) {
    Bytes hash = Sha256::Hash(shards[i]);
    // Seed wire framing: DepSkyValueObject materialization copied the shard,
    // then Encode() copied it again into the wire buffer.
    Bytes object_shard = shards[i];
    Bytes out;
    AppendBytes(&out, object_shard);
    out.push_back(static_cast<uint8_t>(i + 1));
    AppendBytes(&out, hash);  // stand-in for the key share, same size class
    wire[i] = std::move(out);
  }
  Sha256::ForcePortableForTesting(false);
  return wire;
}

std::vector<Bytes> SpanPutPipeline(const PipelineConfig& cfg,
                                   const Bytes& data) {
  ErasureCodec codec(cfg.n, cfg.k);
  ShardArena arena = codec.PrepareArena(data.size());
  ChaCha20::CryptInto(cfg.key, cfg.nonce, 0, data, arena.payload());
  codec.ComputeParity(&arena);
  std::vector<Bytes> wire(cfg.n);
  for (unsigned i = 0; i < cfg.n; ++i) {
    Bytes hash = Sha256::Hash(arena.shard(i));
    Bytes out;
    out.reserve(arena.shard_size() + hash.size() + 9);
    AppendBytes(&out, arena.shard(i));
    out.push_back(static_cast<uint8_t>(i + 1));
    AppendBytes(&out, hash);
    wire[i] = std::move(out);
  }
  return wire;
}

Bytes SeedGetPipeline(const PipelineConfig& cfg,
                      const std::vector<std::optional<Bytes>>& shards,
                      const Bytes& /*unused*/) {
  Bytes ciphertext = SeedErasureDecode(cfg.n, cfg.k, cfg.matrix, shards);
  return SeedChaChaCrypt(cfg.key, cfg.nonce, 0, ciphertext);
}

Bytes SpanGetPipeline(const PipelineConfig& cfg,
                      const std::vector<std::optional<Bytes>>& shards) {
  ErasureCodec codec(cfg.n, cfg.k);
  auto plaintext = codec.Decode(shards);
  if (!plaintext.ok()) {
    std::fprintf(stderr, "decode failed: %s\n",
                 plaintext.status().ToString().c_str());
    std::abort();  // the bench must stay a trustworthy oracle
  }
  ChaCha20::CryptInPlace(cfg.key, cfg.nonce, 0, ByteSpan(*plaintext));
  return std::move(*plaintext);
}

struct Options {
  bool quick = false;
  std::string json_path = "BENCH_codec.json";
};

void Run(const Options& options) {
  const size_t payload_size =
      options.quick ? (1u << 20) : (4u << 20);  // 1 MiB / 4 MiB
  const double min_s = options.quick ? 0.05 : 0.25;
  Rng rng(42);
  Bytes payload = rng.RandomBytes(payload_size);
  BenchJsonWriter json;

  PrintHeader("GF(256) MulAddRow kernel (1 MiB row, scalar 0x57)");
  {
    Bytes in = rng.RandomBytes(1 << 20);
    Bytes out(1 << 20, 0);
    double ref = MeasureMbps(in.size(), min_s, [&] {
      Gf256::MulAddRowReference(out.data(), in.data(), 0x57, in.size());
    });
    double table = MeasureMbps(in.size(), min_s, [&] {
      Gf256::MulAddRow(out.data(), in.data(), 0x57, in.size());
    });
    std::printf("seed %8.0f MB/s   table %8.0f MB/s   speedup %.1fx\n", ref,
                table, table / ref);
    json.Add("gf_muladd_row_seed", ref, "MB/s");
    json.Add("gf_muladd_row_table", table, "MB/s");
    json.Add("gf_muladd_row_speedup", table / ref, "x");
  }

  PrintHeader("Reed-Solomon encode (payload MB/s)");
  for (auto [n, k] : std::vector<std::pair<unsigned, unsigned>>{
           {4, 2}, {7, 3}, {10, 4}}) {
    GfMatrix matrix = GfMatrix::SystematicVandermonde(n, k);
    ErasureCodec codec(n, k);
    double seed = MeasureMbps(payload.size(), min_s, [&] {
      auto shards = SeedErasureEncode(n, k, matrix, payload);
      (void)shards;
    });
    double arena = MeasureMbps(payload.size(), min_s, [&] {
      ShardArena a = codec.EncodeToArena(payload);
      (void)a;
    });
    const std::string label =
        "RS(" + std::to_string(n) + "," + std::to_string(k) + ")";
    std::printf("%-10s seed %8.0f MB/s   arena %8.0f MB/s   speedup %.1fx\n",
                label.c_str(), seed, arena, arena / seed);
    json.Add("rs_encode_" + std::to_string(n) + "_" + std::to_string(k) +
                 "_seed",
             seed, "MB/s");
    json.Add("rs_encode_" + std::to_string(n) + "_" + std::to_string(k) +
                 "_arena",
             arena, "MB/s");
    json.Add("rs_encode_" + std::to_string(n) + "_" + std::to_string(k) +
                 "_speedup",
             arena / seed, "x");
  }

  PrintHeader("Reed-Solomon decode, worst case: all data shards lost");
  {
    const unsigned n = 4, k = 2;
    GfMatrix matrix = GfMatrix::SystematicVandermonde(n, k);
    ErasureCodec codec(n, k);
    ShardArena arena = codec.EncodeToArena(payload);
    std::vector<std::optional<Bytes>> shards(n);
    shards[2] = CopyToBytes(arena.shard(2));  // parity only
    shards[3] = CopyToBytes(arena.shard(3));
    double seed = MeasureMbps(payload.size(), min_s, [&] {
      Bytes out = SeedErasureDecode(n, k, matrix, shards);
      (void)out;
    });
    double span = MeasureMbps(payload.size(), min_s, [&] {
      auto out = codec.Decode(shards);
      (void)out;
    });
    std::printf("RS(4,2)    seed %8.0f MB/s   span  %8.0f MB/s   speedup %.1fx\n",
                seed, span, span / seed);
    json.Add("rs_decode_4_2_seed", seed, "MB/s");
    json.Add("rs_decode_4_2_span", span, "MB/s");
    json.Add("rs_decode_4_2_speedup", span / seed, "x");
  }

  PrintHeader("ChaCha20 (payload MB/s)");
  {
    Bytes key = rng.RandomBytes(ChaCha20::kKeySize);
    Bytes nonce = rng.RandomBytes(ChaCha20::kNonceSize);
    Bytes scratch = payload;
    double seed = MeasureMbps(payload.size(), min_s, [&] {
      Bytes out = SeedChaChaCrypt(key, nonce, 0, payload);
      (void)out;
    });
    double span = MeasureMbps(payload.size(), min_s, [&] {
      ChaCha20::CryptInPlace(key, nonce, 0, ByteSpan(scratch));
    });
    std::printf("seed %8.0f MB/s   in-place %8.0f MB/s   speedup %.1fx\n",
                seed, span, span / seed);
    json.Add("chacha20_seed", seed, "MB/s");
    json.Add("chacha20_inplace", span, "MB/s");
    json.Add("chacha20_speedup", span / seed, "x");
  }

  PrintHeader("SHA-256 (MB/s)");
  {
    Sha256::ForcePortableForTesting(true);
    double portable = MeasureMbps(payload.size(), min_s, [&] {
      Bytes h = Sha256::Hash(payload);
      (void)h;
    });
    Sha256::ForcePortableForTesting(false);
    double best = MeasureMbps(payload.size(), min_s, [&] {
      Bytes h = Sha256::Hash(payload);
      (void)h;
    });
    std::printf("portable %8.0f MB/s   dispatched %8.0f MB/s   speedup %.1fx\n",
                portable, best, best / portable);
    json.Add("sha256_portable", portable, "MB/s");
    json.Add("sha256_dispatched", best, "MB/s");
    json.Add("sha256_speedup", best / portable, "x");
  }

  PrintHeader("DepSky-CA PUT payload processing (f=1: RS(4,2), MB/s)");
  PipelineConfig cfg{4, 2, rng.RandomBytes(ChaCha20::kKeySize),
                     rng.RandomBytes(ChaCha20::kNonceSize),
                     GfMatrix::SystematicVandermonde(4, 2)};
  {
    double seed = MeasureMbps(payload.size(), min_s, [&] {
      auto wire = SeedPutPipeline(cfg, payload);
      (void)wire;
    });
    double span = MeasureMbps(payload.size(), min_s, [&] {
      auto wire = SpanPutPipeline(cfg, payload);
      (void)wire;
    });
    std::printf("seed %8.0f MB/s   zero-copy %8.0f MB/s   speedup %.1fx\n",
                seed, span, span / seed);
    json.Add("depsky_put_seed", seed, "MB/s");
    json.Add("depsky_put_zero_copy", span, "MB/s");
    json.Add("depsky_put_speedup", span / seed, "x");
  }

  PrintHeader("DepSky-CA GET payload processing (one data shard lost, MB/s)");
  {
    ErasureCodec codec(cfg.n, cfg.k);
    ShardArena arena = codec.PrepareArena(payload.size());
    ChaCha20::CryptInto(cfg.key, cfg.nonce, 0, payload, arena.payload());
    codec.ComputeParity(&arena);
    std::vector<std::optional<Bytes>> shards(cfg.n);
    shards[0] = CopyToBytes(arena.shard(0));
    shards[2] = CopyToBytes(arena.shard(2));  // shard 1 lost: rebuild needed
    double seed = MeasureMbps(payload.size(), min_s, [&] {
      Bytes out = SeedGetPipeline(cfg, shards, payload);
      (void)out;
    });
    double span = MeasureMbps(payload.size(), min_s, [&] {
      Bytes out = SpanGetPipeline(cfg, shards);
      (void)out;
    });
    std::printf("seed %8.0f MB/s   zero-copy %8.0f MB/s   speedup %.1fx\n",
                seed, span, span / seed);
    json.Add("depsky_get_seed", seed, "MB/s");
    json.Add("depsky_get_zero_copy", span, "MB/s");
    json.Add("depsky_get_speedup", span / seed, "x");
  }

  PrintHeader("DepSky large-file PUT/GET, full client over in-memory clouds");
  {
    // End-to-end through the real DepSkyClient (robust calls, quorums, ACLs,
    // metadata) against zero-latency in-memory clouds, so the measurement is
    // the data plane's CPU work: monolithic single-object path vs the striped
    // parallel-unit pipeline on the same file.
    const size_t large_size = options.quick ? (32u << 20) : (256u << 20);
    auto env = Environment::Instant();
    std::vector<std::unique_ptr<SimulatedCloud>> clouds;
    for (unsigned i = 0; i < 4; ++i) {
      CloudProfile profile;
      profile.name = "cloud" + std::to_string(i);
      clouds.push_back(
          std::make_unique<SimulatedCloud>(profile, env.get(), 70 + i));
    }
    auto make_client = [&](size_t threshold) {
      DepSkyConfig config;
      config.f = 1;
      config.auth_key = ToBytes("bench-auth-key");
      config.stripe_threshold = threshold;  // 0 disables striping
      config.stripe_unit_size = 4u << 20;
      config.stripe_inflight = 0;  // auto: window = host core count
      std::vector<DepSkyCloud> set;
      for (auto& cloud : clouds) {
        set.push_back(DepSkyCloud{cloud.get(),
                                  {cloud->provider_name() + ":bench"}});
      }
      return std::make_unique<DepSkyClient>(env.get(), std::move(set), config,
                                            4242);
    };
    auto check = [](const Status& status) {
      if (!status.ok()) {
        std::fprintf(stderr, "depsky large-file bench failed: %s\n",
                     status.ToString().c_str());
        std::abort();  // the bench must stay a trustworthy oracle
      }
    };

    Bytes data = rng.RandomBytes(large_size);
    const std::string hash = HexEncode(Sha1::Hash(data));

    double put_mono = 0, get_mono = 0;
    {
      auto mono = make_client(0);
      put_mono = TimeOnceMbps(large_size, [&] {
        check(mono->WriteVersion("mono", hash, data).status());
      });
      get_mono = TimeOnceMbps(large_size, [&] {
        auto read = mono->ReadByHash("mono", hash);
        check(read.status());
        if (read->size() != data.size()) {
          std::abort();
        }
      });
      check(mono->DeleteUnit("mono"));
      for (auto& cloud : clouds) {
        cloud->Quiesce();
      }
    }

    auto striped = make_client(4u << 20);
    double put_striped = TimeOnceMbps(large_size, [&] {
      check(striped->WriteVersion("striped", hash, data).status());
    });
    double get_striped = TimeOnceMbps(large_size, [&] {
      auto read = striped->ReadByHash("striped", hash);
      check(read.status());
      if (read->size() != data.size()) {
        std::abort();
      }
    });
    const uint64_t pool_hits = striped->arena_pool_hits();
    const uint64_t pool_misses = striped->arena_pool_misses();
    check(striped->DeleteUnit("striped"));

    std::printf("PUT  mono %8.0f MB/s   striped %8.0f MB/s   speedup %.2fx\n",
                put_mono, put_striped, put_striped / put_mono);
    std::printf("GET  mono %8.0f MB/s   striped %8.0f MB/s   speedup %.2fx\n",
                get_mono, get_striped, get_striped / get_mono);
    std::printf("arena pool: %llu hits / %llu misses\n",
                static_cast<unsigned long long>(pool_hits),
                static_cast<unsigned long long>(pool_misses));
    json.Add("depsky_put_mono_large", put_mono, "MB/s");
    json.Add("depsky_put_striped", put_striped, "MB/s");
    json.Add("depsky_put_striped_speedup", put_striped / put_mono, "x");
    json.Add("depsky_get_mono_large", get_mono, "MB/s");
    json.Add("depsky_get_striped", get_striped, "MB/s");
    json.Add("depsky_get_striped_speedup", get_striped / get_mono, "x");
    json.Add("arena_pool_hits", static_cast<double>(pool_hits), "count");
    json.Add("arena_pool_misses", static_cast<double>(pool_misses), "count");
  }

  json.WriteFile(options.json_path);
}

}  // namespace
}  // namespace scfs

int main(int argc, char** argv) {
  scfs::Options options;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--quick") {
      options.quick = true;
    } else if (arg == "--json" && i + 1 < argc) {
      options.json_path = argv[++i];
    }
  }
  scfs::Run(options);
  return 0;
}
