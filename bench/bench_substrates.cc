// Google-benchmark microbenchmarks for the from-scratch substrates: hashes,
// the stream cipher, erasure coding, secret sharing and the tuple-space state
// machine. These are not paper figures; they establish that the substrate
// performance is far from being the bottleneck in any simulated experiment.

#include <benchmark/benchmark.h>

#include "src/codec/reed_solomon.h"
#include "src/common/rng.h"
#include "src/coord/tuple_space.h"
#include "src/crypto/chacha20.h"
#include "src/crypto/secret_sharing.h"
#include "src/crypto/sha1.h"
#include "src/crypto/sha256.h"

namespace scfs {
namespace {

void BM_Sha1(benchmark::State& state) {
  Rng rng(1);
  Bytes data = rng.RandomBytes(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha1::Hash(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha1)->Arg(4096)->Arg(1 << 20);

void BM_Sha256(benchmark::State& state) {
  Rng rng(2);
  Bytes data = rng.RandomBytes(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::Hash(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(4096)->Arg(1 << 20);

void BM_ChaCha20(benchmark::State& state) {
  Rng rng(3);
  Bytes key = rng.RandomBytes(32);
  Bytes nonce = rng.RandomBytes(12);
  Bytes data = rng.RandomBytes(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ChaCha20::Crypt(key, nonce, 0, data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_ChaCha20)->Arg(4096)->Arg(1 << 20);

void BM_ReedSolomonEncode(benchmark::State& state) {
  Rng rng(4);
  ErasureCodec codec(4, 2);
  Bytes data = rng.RandomBytes(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.Encode(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_ReedSolomonEncode)->Arg(1 << 20)->Arg(4 << 20);

void BM_ReedSolomonDecodeWithErasure(benchmark::State& state) {
  Rng rng(5);
  ErasureCodec codec(4, 2);
  Bytes data = rng.RandomBytes(static_cast<size_t>(state.range(0)));
  auto shards = codec.Encode(data);
  std::vector<std::optional<Bytes>> have(4);
  have[1] = (*shards)[1];
  have[3] = (*shards)[3];  // parity path (worst case)
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.Decode(have));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_ReedSolomonDecodeWithErasure)->Arg(1 << 20)->Arg(4 << 20);

void BM_SecretSharingSplit(benchmark::State& state) {
  Rng rng(6);
  Bytes secret = rng.RandomBytes(32);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SecretSharing::Split(secret, 4, 2, rng));
  }
}
BENCHMARK(BM_SecretSharingSplit);

void BM_TupleSpaceWriteRead(benchmark::State& state) {
  TupleSpace space;
  CoordCommand write;
  write.op = CoordOp::kWrite;
  write.client = "u";
  write.value = Bytes(1024, 1);  // the paper's 1KB metadata tuple
  CoordCommand read;
  read.op = CoordOp::kRead;
  read.client = "u";
  uint64_t i = 0;
  for (auto _ : state) {
    write.key = "k" + std::to_string(i % 1000);
    read.key = write.key;
    benchmark::DoNotOptimize(space.Apply(0, write));
    benchmark::DoNotOptimize(space.Apply(0, read));
    ++i;
  }
}
BENCHMARK(BM_TupleSpaceWriteRead);

}  // namespace
}  // namespace scfs

BENCHMARK_MAIN();
