// Figure 8 reproduction: the file-synchronization benchmark (the OpenOffice
// open/save/close trace of Figure 7) on a 1.2 MB document.
//
//   (a) non-blocking class: SCFS-AWS-NB, SCFS-CoC-NB, SCFS-CoC-NS, S3QL
//   (b) blocking class:     SCFS-AWS-B, SCFS-CoC-B, S3FS
//
// Each system also runs an "(L)" variant where the application's lock files
// live on the local file system instead of the cloud-backed one.

#include "bench/harness.h"
#include "src/baselines/local_fs.h"
#include "src/baselines/s3_baselines.h"
#include "src/scfs/deployment.h"

namespace scfs {
namespace {

constexpr size_t kDocumentSize = 1228800;  // 1.2 MB
constexpr int kIterations = 3;

struct Entry {
  std::string name;
  FileSyncResult plain;
  FileSyncResult local_locks;
};

Entry RunScfs(Environment* env, const std::string& name,
              ScfsBackendKind backend, ScfsMode mode) {
  Entry entry;
  entry.name = name;
  for (bool local_locks : {false, true}) {
    DeploymentOptions options;
    options.backend = backend;
    auto deployment = Deployment::Create(env, options);
    ScfsOptions fs_options;
    fs_options.mode = mode;
    auto fs = deployment->Mount("u", fs_options);
    if (!fs.ok()) {
      continue;
    }
    FuseSim fuse(env, fs->get());
    LocalFs local(env);
    FuseSim local_fuse(env, &local);
    auto result = RunFileSyncBenchmark(env, &fuse,
                                       local_locks
                                           ? static_cast<FileSystem*>(&local_fuse)
                                           : static_cast<FileSystem*>(&fuse),
                                       kDocumentSize, kIterations);
    (local_locks ? entry.local_locks : entry.plain) = result;
    (*fs)->DrainBackground();
    (void)(*fs)->Unmount();
  }
  return entry;
}

template <typename MakeFs>
Entry RunBaseline(Environment* env, const std::string& name, MakeFs make_fs) {
  Entry entry;
  entry.name = name;
  for (bool local_locks : {false, true}) {
    auto fs_holder = make_fs();
    FuseSim fuse(env, fs_holder.get());
    LocalFs local(env);
    FuseSim local_fuse(env, &local);
    auto result = RunFileSyncBenchmark(env, &fuse,
                                       local_locks
                                           ? static_cast<FileSystem*>(&local_fuse)
                                           : static_cast<FileSystem*>(&fuse),
                                       kDocumentSize, kIterations);
    (local_locks ? entry.local_locks : entry.plain) = result;
  }
  return entry;
}

void PrintEntries(const std::string& title, const std::vector<Entry>& entries) {
  PrintHeader(title);
  std::vector<int> widths = {16, 10, 10, 10};
  PrintRow({"system", "open(s)", "save(s)", "close(s)"}, widths);
  for (const auto& entry : entries) {
    PrintRow({entry.name, FormatSeconds(entry.plain.open_s),
              FormatSeconds(entry.plain.save_s),
              FormatSeconds(entry.plain.close_s)},
             widths);
    PrintRow({entry.name + "(L)", FormatSeconds(entry.local_locks.open_s),
              FormatSeconds(entry.local_locks.save_s),
              FormatSeconds(entry.local_locks.close_s)},
             widths);
  }
}

void Run() {
  auto env = Environment::Scaled(BenchTimeScale());

  std::vector<Entry> non_blocking;
  non_blocking.push_back(RunScfs(env.get(), "AWS-NB", ScfsBackendKind::kAws,
                                 ScfsMode::kNonBlocking));
  non_blocking.push_back(RunScfs(env.get(), "CoC-NB", ScfsBackendKind::kCoc,
                                 ScfsMode::kNonBlocking));
  non_blocking.push_back(RunScfs(env.get(), "CoC-NS", ScfsBackendKind::kCoc,
                                 ScfsMode::kNonSharing));
  {
    auto cloud = MakeCloud(ProviderId::kAmazonS3, env.get(), 71);
    non_blocking.push_back(RunBaseline(env.get(), "S3QL", [&] {
      return std::make_unique<S3qlLike>(env.get(), cloud.get(),
                                        CloudCredentials{"amazon-s3:u"});
    }));
  }
  PrintEntries("Figure 8(a): file synchronization latency, non-blocking class",
               non_blocking);

  std::vector<Entry> blocking;
  blocking.push_back(RunScfs(env.get(), "AWS-B", ScfsBackendKind::kAws,
                             ScfsMode::kBlocking));
  blocking.push_back(RunScfs(env.get(), "CoC-B", ScfsBackendKind::kCoc,
                             ScfsMode::kBlocking));
  {
    auto cloud = MakeCloud(ProviderId::kAmazonS3, env.get(), 72);
    blocking.push_back(RunBaseline(env.get(), "S3FS", [&] {
      return std::make_unique<S3fsLike>(env.get(), cloud.get(),
                                        CloudCredentials{"amazon-s3:u"});
    }));
  }
  PrintEntries("Figure 8(b): file synchronization latency, blocking class",
               blocking);

  std::printf(
      "\nPaper shape check: CoC-NS ~ S3QL ~ local; NB saves ~1s dominated by\n"
      "coordination accesses for lock files; B saves tens of seconds because\n"
      "lock-file creation blocks on cloud writes; the (L) variants collapse\n"
      "most of the blocking cost.\n");
}

}  // namespace
}  // namespace scfs

int main() {
  scfs::Run();
  return 0;
}
