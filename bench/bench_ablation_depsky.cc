// Ablations A2/A3: DepSky design choices (DESIGN.md).
//
//   A2: erasure coding + secret sharing (DepSky-CA) vs full replication
//       (DepSky-A) — storage blow-up and write latency.
//   A3: preferred quorums on/off — how many clouds a write touches and what
//       the version costs to store.

#include "bench/harness.h"
#include "src/cloud/providers.h"
#include "src/crypto/sha1.h"
#include "src/depsky/depsky.h"

namespace scfs {
namespace {

constexpr size_t kFileSize = 4 * 1024 * 1024;

struct Variant {
  std::string name;
  DepSkyMode mode;
  bool preferred;
};

void Run() {
  auto env = Environment::Scaled(BenchTimeScale());

  PrintHeader("Ablation A2/A3: DepSky modes on a 4 MB write (f=1, 4 clouds)");
  std::vector<int> widths = {26, 14, 14, 14, 14};
  PrintRow({"variant", "stored(xF)", "clouds used", "write(s)", "$/GB-day(u$)"},
           widths);

  const std::vector<Variant> variants = {
      {"CA + preferred quorums", DepSkyMode::kSecretSharing, true},
      {"CA, all clouds", DepSkyMode::kSecretSharing, false},
      {"replication + preferred", DepSkyMode::kReplication, true},
      {"replication, all clouds", DepSkyMode::kReplication, false},
  };

  for (const auto& variant : variants) {
    // Fresh clouds per variant so footprints do not mix.
    auto profiles = CocStorageProfiles();
    std::vector<std::unique_ptr<SimulatedCloud>> clouds;
    std::vector<DepSkyCloud> set;
    for (unsigned i = 0; i < profiles.size(); ++i) {
      clouds.push_back(
          std::make_unique<SimulatedCloud>(profiles[i], env.get(), 600 + i));
      set.push_back(DepSkyCloud{clouds.back().get(),
                                {profiles[i].name + ":u"}});
    }
    DepSkyConfig config;
    config.mode = variant.mode;
    config.preferred_quorums = variant.preferred;
    config.auth_key = ToBytes("ablation");
    DepSkyClient client(env.get(), std::move(set), config, 99);

    Bytes data(kFileSize, 3);
    const std::string hash = HexEncode(Sha1::Hash(data));
    Environment::ResetThreadCharged();
    auto write = client.WriteVersion("f", hash, data);
    double write_s = ToSeconds(Environment::ThreadCharged());
    if (!write.ok()) {
      PrintRow({variant.name, "FAIL", "", "", ""}, widths);
      continue;
    }

    uint64_t stored = 0;
    unsigned clouds_used = 0;
    double storage_cost_day = 0;
    for (auto& cloud : clouds) {
      // A write returns at the quorum; let the straggler PUT land so the
      // storage readout is deterministic.
      cloud->Quiesce();
    }
    for (auto& cloud : clouds) {
      uint64_t bytes =
          cloud->costs().StoredBytes(cloud->provider_name() + ":u");
      stored += bytes;
      // Count clouds holding a value object (not just metadata).
      auto listed = cloud->List({cloud->provider_name() + ":u"}, "du/f/v");
      if (listed.ok() && !listed->empty()) {
        ++clouds_used;
      }
      storage_cost_day +=
          cloud->costs().StorageCostPerDay(cloud->provider_name() + ":u");
    }
    char c1[16], c2[16], c3[16], c4[16];
    std::snprintf(c1, sizeof(c1), "%.2f",
                  static_cast<double>(stored) / kFileSize);
    std::snprintf(c2, sizeof(c2), "%u/4", clouds_used);
    std::snprintf(c3, sizeof(c3), "%.2f", write_s);
    std::snprintf(c4, sizeof(c4), "%.1f", ToMicrodollars(storage_cost_day));
    PrintRow({variant.name, c1, c2, c3, c4}, widths);
  }
  std::printf(
      "\nExpected: CA+preferred stores ~1.5x the file on 3 clouds (the paper's\n"
      "configuration); disabling preferred quorums pushes it to ~2x on 4\n"
      "clouds; replication costs ~3-4x; CA write latency is similar to\n"
      "replication (shards are half-size, uploads run in parallel).\n");
}

}  // namespace
}  // namespace scfs

int main() {
  scfs::Run();
  return 0;
}
