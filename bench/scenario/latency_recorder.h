// LatencyRecorder: HDR-histogram-style log-bucketed latency accounting.
//
// An open-loop sweep records millions of samples per rate point; sorting
// them for percentiles (bench/harness.h Summarize) would cost O(n log n)
// time and O(n) memory per op class per worker. The recorder instead keeps
// a fixed ~30 KB bucket array with bounded relative error:
//
//   - values below 2^7 = 128 land in 128 exact one-microsecond buckets;
//   - each octave above is split into 64 sub-buckets, so the bucket width
//     is always <= value/64 — relative error <= 1/64 ~ 1.6%.
//
// Percentiles report the bucket's *upper* edge (pessimistic, never
// understates a tail). Recorders merge by bucket-wise addition, which is
// what lets each fleet worker record contention-free into its own recorder
// and the fleet fold them at the end.

#ifndef SCFS_BENCH_SCENARIO_LATENCY_RECORDER_H_
#define SCFS_BENCH_SCENARIO_LATENCY_RECORDER_H_

#include <array>
#include <cstddef>
#include <cstdint>

namespace scfs {

class LatencyRecorder {
 public:
  // Exact buckets cover [0, 2^kExactBits); octaves above get kSubBuckets
  // sub-buckets each.
  static constexpr int kExactBits = 7;
  static constexpr size_t kExactBuckets = 1u << kExactBits;        // 128
  static constexpr size_t kSubBuckets = 1u << (kExactBits - 1);    // 64
  // Octaves [2^7, 2^8) .. [2^63, 2^64): 64 - 7 = 57 of them.
  static constexpr size_t kBucketCount =
      kExactBuckets + (64 - kExactBits) * kSubBuckets;

  void Record(uint64_t value_us);
  void Merge(const LatencyRecorder& other);

  uint64_t count() const { return count_; }
  uint64_t max_us() const { return max_us_; }
  // Exact mean (sum and count are kept exactly; only percentiles are
  // bucketed). 0 on an empty recorder.
  double MeanUs() const;
  // p in [0, 100]. Returns the upper edge of the bucket holding the
  // ceil(p/100 * count)-th smallest sample (exact max for p = 100 via the
  // tracked maximum); 0 on an empty recorder.
  uint64_t PercentileUs(double p) const;
  double PercentileMs(double p) const { return PercentileUs(p) / 1e3; }
  double MeanMs() const { return MeanUs() / 1e3; }

  // Exposed for the accuracy tests.
  static size_t BucketIndex(uint64_t value_us);
  static uint64_t BucketUpperEdge(size_t index);

 private:
  std::array<uint64_t, kBucketCount> buckets_{};
  uint64_t count_ = 0;
  uint64_t sum_us_ = 0;
  uint64_t max_us_ = 0;
};

}  // namespace scfs

#endif  // SCFS_BENCH_SCENARIO_LATENCY_RECORDER_H_
