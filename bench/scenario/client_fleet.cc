#include "bench/scenario/client_fleet.h"

#include <algorithm>
#include <thread>
#include <unordered_map>

#include "bench/harness.h"
#include "src/scfs/deployment.h"
#include "src/scfs/metadata.h"

namespace scfs {

namespace {

// Distinct stream ids for the fleet's internal RNG families, so the arrival
// process, the client-id draw and the per-client op streams never share
// state.
constexpr uint64_t kArrivalStream = 0x6172726976616cULL;   // "arrival"
constexpr uint64_t kClientPickStream = 0x636c69656e74ULL;  // "client"

Bytes PatternBytes(size_t size, uint8_t salt) {
  Bytes data(size);
  for (size_t i = 0; i < size; ++i) {
    data[i] = static_cast<uint8_t>((i * 131 + salt) & 0xff);
  }
  return data;
}

}  // namespace

ClientFleet::ClientFleet(Environment* env, PersonalitySpec spec,
                         std::vector<FileSystem*> mounts,
                         Deployment* deployment)
    : env_(env),
      spec_(std::move(spec)),
      mounts_(std::move(mounts)),
      deployment_(deployment) {
  double cumulative = 0;
  for (size_t i = 0; i < kScenarioOpCount; ++i) {
    cumulative += spec_.mix[i];
    mix_cdf_[i] = cumulative;
  }
  file_data_ = PatternBytes(spec_.file_size, 1);
  io_data_ = PatternBytes(spec_.io_size, 2);
  append_data_ = PatternBytes(spec_.append_size, 3);
}

Status ClientFleet::Setup() {
  if (mounts_.empty()) {
    return InvalidArgumentError("fleet: no mounts");
  }
  if (spec_.mix_total() <= 0) {
    return InvalidArgumentError("fleet: personality '" + spec_.name +
                                "' has an empty op mix");
  }
  for (const char* dir : {"/scn", "/scn/files", "/scn/logs", "/scn/tmp"}) {
    Status status = mounts_[0]->Mkdir(dir);
    if (!status.ok() && status.code() != ErrorCode::kAlreadyExists) {
      return status;
    }
  }
  RETURN_IF_ERROR(SetupFileset());

  if (spec_.partition_skew) {
    file_sampler_ = std::make_unique<ZipfSampler>(group_start_.size() - 1,
                                                  spec_.zipf_theta);
  } else {
    file_sampler_ =
        std::make_unique<ZipfSampler>(fileset_.size(), spec_.zipf_theta);
  }
  return OkStatus();
}

Status ClientFleet::SetupFileset() {
  fileset_.clear();
  group_start_.clear();
  if (spec_.partition_skew) {
    RETURN_IF_ERROR(SetupPartitionSkewFileset());
  } else {
    fileset_.reserve(spec_.fileset_files);
    for (uint64_t i = 0; i < spec_.fileset_files; ++i) {
      fileset_.push_back("/scn/files/f" + std::to_string(i));
    }
  }

  // Parallel creation, one thread per mount, work-stealing over the set.
  std::atomic<size_t> next{0};
  std::vector<Status> statuses(mounts_.size(), OkStatus());
  std::vector<std::thread> threads;
  threads.reserve(mounts_.size());
  for (size_t m = 0; m < mounts_.size(); ++m) {
    threads.emplace_back([this, m, &next, &statuses] {
      size_t i;
      while ((i = next.fetch_add(1)) < fileset_.size()) {
        Status status = mounts_[m]->WriteFile(fileset_[i], file_data_);
        if (!status.ok() && statuses[m].ok()) {
          statuses[m] = status;
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  for (const Status& status : statuses) {
    RETURN_IF_ERROR(status);
  }
  for (FileSystem* mount : mounts_) {
    RETURN_IF_ERROR(mount->SyncBarrier());
  }
  return OkStatus();
}

Status ClientFleet::SetupPartitionSkewFileset() {
  PartitionedCoordination* coord =
      deployment_ != nullptr ? deployment_->partitioned_coord() : nullptr;
  if (coord == nullptr) {
    return FailedPreconditionError(
        "fleet: partition_skew needs a partitioned kCoc deployment");
  }
  const unsigned partitions = coord->partition_count();
  std::vector<size_t> quota(partitions, spec_.fileset_files / partitions);
  for (unsigned p = 0; p < spec_.fileset_files % partitions; ++p) {
    ++quota[p];
  }
  // Generate candidate names until every partition group is full, keeping
  // only names whose metadata key AND lock key land on the same partition —
  // the open-for-write lock round and the publish round of an append then
  // hit one partition, making "hot partition" load attribution exact.
  std::vector<std::vector<std::string>> groups(partitions);
  uint64_t candidate = 0;
  // Acceptance rate is 1/partitions per candidate; this cap is ~1000x the
  // expected need, so hitting it means the router is broken, not unlucky.
  const uint64_t cap = (spec_.fileset_files + 64) * partitions * 1000;
  size_t filled = 0;
  while (filled < spec_.fileset_files && candidate < cap) {
    std::string name = "/scn/files/s" + std::to_string(candidate++);
    const unsigned meta_part = coord->PartitionOf(MetadataKey(name));
    if (coord->PartitionOf(LockKey(name)) != meta_part) {
      continue;
    }
    if (groups[meta_part].size() >= quota[meta_part]) {
      continue;
    }
    groups[meta_part].push_back(std::move(name));
    ++filled;
  }
  if (filled < spec_.fileset_files) {
    return InternalError("fleet: could not co-locate fileset keys");
  }
  // Group-major layout: Zipf rank r = partition r, so partition 0 is the
  // hot one under skew.
  group_start_.push_back(0);
  for (unsigned p = 0; p < partitions; ++p) {
    fileset_.insert(fileset_.end(), groups[p].begin(), groups[p].end());
    group_start_.push_back(fileset_.size());
  }
  return OkStatus();
}

ClientFleet::PendingOp ClientFleet::MakeOp(VirtualTime scheduled, Rng* rng) {
  PendingOp op;
  op.scheduled = scheduled;
  const double r = rng->UniformDouble() * mix_cdf_[kScenarioOpCount - 1];
  size_t pick = 0;
  while (pick + 1 < kScenarioOpCount && r >= mix_cdf_[pick]) {
    ++pick;
  }
  op.op = static_cast<ScenarioOp>(pick);

  auto pick_file = [&]() -> uint32_t {
    if (spec_.partition_skew) {
      const uint64_t group = file_sampler_->Sample(rng);
      const size_t begin = group_start_[group];
      const size_t size = group_start_[group + 1] - begin;
      return static_cast<uint32_t>(
          begin + (size > 0 ? rng->UniformU64(size) : 0));
    }
    return static_cast<uint32_t>(file_sampler_->Sample(rng));
  };

  switch (op.op) {
    case ScenarioOp::kWholeFileRead:
    case ScenarioOp::kStat:
      op.file = pick_file();
      break;
    case ScenarioOp::kBlockRead:
    case ScenarioOp::kBlockWrite: {
      op.file = pick_file();
      const uint64_t blocks =
          spec_.file_size > spec_.io_size ? spec_.file_size / spec_.io_size : 1;
      op.offset = rng->UniformU64(blocks) * spec_.io_size;
      break;
    }
    case ScenarioOp::kAppend:
      op.file = spec_.appends_to_fileset ? pick_file() : kNoFile;
      break;
    case ScenarioOp::kCreate:
      op.file = kNoFile;
      op.unique = create_seq_.fetch_add(1);
      break;
    case ScenarioOp::kDelete:
      op.file = kNoFile;
      break;
  }
  return op;
}

Status ClientFleet::DoAppend(FileSystem* fs, const std::string& path) {
  // Published size; a lost race with a concurrent appender overwrites its
  // tail, which is the usual shared-log approximation in a bench driver.
  uint64_t size = 0;
  auto stat = fs->Stat(path);
  if (stat.ok()) {
    size = stat->size;
  }
  ASSIGN_OR_RETURN(FileHandle handle,
                   fs->Open(path, kOpenWrite | kOpenCreate));
  Status write = fs->Write(handle, size, append_data_);
  Status close = fs->Close(handle);
  return write.ok() ? close : write;
}

Status ClientFleet::ExecuteOp(FileSystem* fs, unsigned worker,
                              const PendingOp& op) {
  switch (op.op) {
    case ScenarioOp::kWholeFileRead:
      return fs->ReadFile(fileset_[op.file]).status();
    case ScenarioOp::kBlockRead: {
      ASSIGN_OR_RETURN(FileHandle handle,
                       fs->Open(fileset_[op.file], kOpenRead));
      auto read = fs->Read(handle, op.offset, spec_.io_size);
      Status close = fs->Close(handle);
      return read.ok() ? close : read.status();
    }
    case ScenarioOp::kBlockWrite: {
      ASSIGN_OR_RETURN(FileHandle handle,
                       fs->Open(fileset_[op.file], kOpenWrite));
      Status write = fs->Write(handle, op.offset, io_data_);
      Status close = fs->Close(handle);
      return write.ok() ? close : write;
    }
    case ScenarioOp::kAppend: {
      const std::string path = op.file == kNoFile
                                   ? "/scn/logs/w" + std::to_string(worker)
                                   : fileset_[op.file];
      return DoAppend(fs, path);
    }
    case ScenarioOp::kCreate: {
      const std::string path = "/scn/tmp/c" + std::to_string(op.unique);
      RETURN_IF_ERROR(fs->WriteFile(path, file_data_));
      std::lock_guard<std::mutex> lock(pool_mu_);
      deletable_.push_back(path);
      return OkStatus();
    }
    case ScenarioOp::kDelete: {
      std::string path;
      {
        std::lock_guard<std::mutex> lock(pool_mu_);
        if (!deletable_.empty()) {
          path = std::move(deletable_.back());
          deletable_.pop_back();
        }
      }
      if (path.empty()) {
        // Nothing deletable yet: create-then-delete a scratch file so the
        // op still exercises the namespace path.
        path = "/scn/tmp/d" + std::to_string(create_seq_.fetch_add(1));
        RETURN_IF_ERROR(fs->WriteFile(path, append_data_));
      }
      return fs->Unlink(path);
    }
    case ScenarioOp::kStat:
      return fs->Stat(fileset_[op.file]).status();
  }
  return InternalError("fleet: unknown op");
}

void ClientFleet::WorkerLoop(unsigned worker, WorkerStats* stats) {
  FileSystem* fs = mounts_[worker % mounts_.size()];
  while (true) {
    PendingOp op;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] { return done_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (done_) {
          return;
        }
        continue;
      }
      op = queue_.front();
      queue_.pop_front();
      if (queue_.empty()) {
        queue_cv_.notify_all();  // wake the drain waiter
      }
    }
    const Status status = ExecuteOp(fs, worker, op);
    const VirtualTime now = env_->Now();
    const uint64_t latency_us =
        now > op.scheduled ? static_cast<uint64_t>(now - op.scheduled) : 0;
    const size_t idx = static_cast<size_t>(op.op);
    stats->latency.Record(latency_us);
    stats->per_op_latency[idx].Record(latency_us);
    ++stats->executed;
    if (!status.ok()) {
      ++stats->errors;
      ++stats->per_op_errors[idx];
    }
    if (timeline_bucket_ > 0 && op.scheduled >= run_start_) {
      const size_t bucket =
          static_cast<size_t>((op.scheduled - run_start_) / timeline_bucket_);
      std::lock_guard<std::mutex> lock(timeline_mu_);
      while (timeline_.size() <= bucket) {
        FleetTimelineBucket next;
        next.start =
            static_cast<VirtualDuration>(timeline_.size()) * timeline_bucket_;
        timeline_.push_back(std::move(next));
      }
      FleetTimelineBucket& slot = timeline_[bucket];
      ++slot.executed;
      if (!status.ok()) {
        ++slot.errors;
      }
      slot.latency.Record(latency_us);
    }
  }
}

FleetResult ClientFleet::Run(const FleetConfig& config) {
  FleetResult out;
  out.offered_ops_per_s = config.offered_ops_per_s;

  // Warmup, outside the measured *message* window (SMR counter baselines
  // are captured below): precreate the per-worker append logs so the first
  // append's create + lock acquisition doesn't land mid-run, and prime each
  // mount's metadata cache/lease state with a few fileset reads. The lease
  // counters' baseline is captured BEFORE the warmup — the grants that set
  // up the run's steady state are attributable to it (and prove the lease
  // plane engaged) even though their message cost is amortized out.
  LeaseCounters lease_before;
  if (deployment_ != nullptr) {
    lease_before = deployment_->lease_manager()->counters();
  }
  if (config.warmup_reads_per_mount > 0) {
    const double append_share =
        spec_.mix[static_cast<size_t>(ScenarioOp::kAppend)];
    if (append_share > 0 && !spec_.appends_to_fileset) {
      for (unsigned w = 0; w < config.workers; ++w) {
        (void)mounts_[w % mounts_.size()]->WriteFile(
            "/scn/logs/w" + std::to_string(w), append_data_);
      }
    }
    if (!fileset_.empty()) {
      for (FileSystem* mount : mounts_) {
        for (unsigned i = 0; i < config.warmup_reads_per_mount; ++i) {
          (void)mount->Stat(fileset_[i % fileset_.size()]);
        }
      }
    }
    for (FileSystem* mount : mounts_) {
      (void)mount->SyncBarrier();
    }
  }

  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    queue_.clear();
    done_ = false;
    max_backlog_ = 0;
  }
  {
    std::lock_guard<std::mutex> lock(timeline_mu_);
    timeline_.clear();
    timeline_bucket_ = config.timeline_bucket;
    run_start_ = env_->Now();
  }

  SmrCounters coord_before;
  PartitionLoadSnapshot snap_before;
  PartitionedCoordination* partitioned =
      deployment_ != nullptr ? deployment_->partitioned_coord() : nullptr;
  if (deployment_ != nullptr) {
    AccumulateCoordCounters(deployment_, &coord_before);
  }
  ElasticCounters elastic_before;
  if (partitioned != nullptr) {
    snap_before = partitioned->LoadSnapshot();
    elastic_before = partitioned->elastic_counters();
  }

  std::vector<WorkerStats> stats(config.workers);
  std::vector<std::thread> workers;
  workers.reserve(config.workers);
  for (unsigned w = 0; w < config.workers; ++w) {
    workers.emplace_back([this, w, &stats] { WorkerLoop(w, &stats[w]); });
  }

  const VirtualTime start = env_->Now();
  const VirtualTime arrivals_end = start + config.duration;
  OpenLoopArrivals arrivals(spec_.arrival, config.offered_ops_per_s, start,
                            MixSeed(config.seed, kArrivalStream));
  Rng client_pick = Rng::ForStream(config.seed, kClientPickStream);
  std::unordered_map<uint64_t, uint64_t> client_op_counter;

  while (true) {
    const VirtualTime due = arrivals.Next();
    if (due >= arrivals_end) {
      break;
    }
    const VirtualTime now = env_->Now();
    if (due > now) {
      env_->Sleep(due - now);
    }
    const uint64_t client = client_pick.UniformU64(config.clients);
    uint64_t& counter = client_op_counter[client];
    Rng op_rng(MixSeed(MixSeed(config.seed, client), counter++));
    const PendingOp op = MakeOp(due, &op_rng);
    ++out.issued;
    ++out.per_op_issued[static_cast<size_t>(op.op)];
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      queue_.push_back(op);
      max_backlog_ = std::max(max_backlog_, queue_.size());
    }
    queue_cv_.notify_one();
  }

  // Drain: give the backlog a bounded grace window, then drop the rest. In
  // instant mode virtual deadlines pass in zero real time, so wait for the
  // queue to empty instead (arrivals have stopped; the backlog is finite).
  if (env_->instant()) {
    std::unique_lock<std::mutex> lock(queue_mu_);
    queue_cv_.wait(lock, [this] { return queue_.empty(); });
  } else {
    const VirtualTime deadline = arrivals_end + config.drain_grace;
    while (env_->Now() < deadline) {
      {
        std::lock_guard<std::mutex> lock(queue_mu_);
        if (queue_.empty()) {
          break;
        }
      }
      env_->Sleep(FromMillis(20));
    }
  }
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    out.dropped = queue_.size();
    queue_.clear();
    done_ = true;
  }
  queue_cv_.notify_all();
  for (auto& worker : workers) {
    worker.join();
  }

  out.duration_s = ToSeconds(env_->Now() - start);
  out.max_backlog = max_backlog_;
  out.touched_clients = client_op_counter.size();
  for (const WorkerStats& ws : stats) {
    out.latency.Merge(ws.latency);
    out.executed += ws.executed;
    out.errors += ws.errors;
    for (size_t i = 0; i < kScenarioOpCount; ++i) {
      out.per_op_latency[i].Merge(ws.per_op_latency[i]);
      out.per_op_errors[i] += ws.per_op_errors[i];
    }
  }
  const uint64_t successes = out.executed - out.errors;
  out.achieved_ops_per_s =
      out.duration_s > 0 ? static_cast<double>(successes) / out.duration_s : 0;
  {
    std::lock_guard<std::mutex> lock(timeline_mu_);
    out.run_start = run_start_;
    out.timeline_bucket = timeline_bucket_;
    out.timeline = std::move(timeline_);
    timeline_.clear();
  }

  if (deployment_ != nullptr) {
    SmrCounters coord_after;
    AccumulateCoordCounters(deployment_, &coord_after);
    coord_after -= coord_before;
    out.coord = coord_after;
    if (successes > 0) {
      out.coord_msgs_per_op =
          static_cast<double>(out.coord.total_messages()) / successes;
      out.coord_ordered_per_op =
          static_cast<double>(out.coord.ordered_commands) / successes;
      out.coord_fast_reads_per_op =
          static_cast<double>(out.coord.fast_path_reads) / successes;
    }
    const LeaseCounters lease_after = deployment_->lease_manager()->counters();
    out.lease.grants = lease_after.grants - lease_before.grants;
    out.lease.revocations = lease_after.revocations - lease_before.revocations;
    out.lease.notifications =
        lease_after.notifications - lease_before.notifications;
    out.lease.local_hits = lease_after.local_hits - lease_before.local_hits;
    out.lease.linger_handoffs =
        lease_after.linger_handoffs - lease_before.linger_handoffs;
    if (successes > 0) {
      out.lease_hit_share =
          static_cast<double>(out.lease.local_hits) / successes;
    }
  }
  if (partitioned != nullptr) {
    // Windowed deltas bracketing exactly this run (snap_before is taken
    // after warmup): the shared helper keeps the hot-share definition here
    // and in the split controller identical, and never lets cumulative
    // since-mount counters masquerade as current load.
    const PartitionLoadSnapshot snap_after = partitioned->LoadSnapshot();
    out.partition_ops_per_s = PartitionOpsPerSecond(snap_before, snap_after);
    out.hot_partition_share = PartitionHotShare(snap_before, snap_after);
    out.route_epoch_retries =
        partitioned->elastic_counters().route_epoch_retries -
        elastic_before.route_epoch_retries;
  }
  return out;
}

RateSweepResult RunRateSweep(ClientFleet* fleet, FleetConfig base,
                             const std::vector<double>& rates) {
  RateSweepResult out;
  for (double rate : rates) {
    FleetConfig config = base;
    config.offered_ops_per_s = rate;
    // Decorrelate runs: each rate point gets its own stream family.
    config.seed = MixSeed(base.seed, static_cast<uint64_t>(rate * 1000));
    FleetResult result = fleet->Run(config);
    // "Served" means the arrival queue stayed bounded: nothing dropped and
    // the backlog never exceeded a couple of service rounds. (A rate ratio
    // like achieved >= 0.9*offered would be distorted on a loaded host,
    // where real compute stretches the measured virtual window.)
    if (result.dropped == 0 &&
        result.max_backlog <= 2 * static_cast<size_t>(config.workers)) {
      out.knee_offered_ops_s = std::max(out.knee_offered_ops_s, rate);
    }
    out.saturation_ops_s =
        std::max(out.saturation_ops_s, result.achieved_ops_per_s);
    out.points.push_back(std::move(result));
  }
  return out;
}

}  // namespace scfs
