#include "bench/scenario/samplers.h"

#include <algorithm>
#include <cmath>

namespace scfs {

ZipfSampler::ZipfSampler(uint64_t n, double theta)
    : n_(n > 0 ? n : 1), theta_(theta > 0 ? theta : 0) {
  if (theta_ == 0) {
    return;  // uniform: no tables needed
  }
  if (n_ <= kExactLimit) {
    cdf_.resize(static_cast<size_t>(n_));
    double sum = 0;
    for (uint64_t k = 0; k < n_; ++k) {
      sum += std::pow(static_cast<double>(k + 1), -theta_);
      cdf_[static_cast<size_t>(k)] = sum;
    }
    for (double& c : cdf_) {
      c /= sum;
    }
    return;
  }
  // Gray-path closed form needs theta < 1.
  if (theta_ >= 1.0) {
    theta_ = 0.99;
  }
  for (uint64_t k = 1; k <= n_; ++k) {
    zetan_ += std::pow(static_cast<double>(k), -theta_);
  }
  zeta2_ = 1.0 + std::pow(2.0, -theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
         (1.0 - zeta2_ / zetan_);
}

uint64_t ZipfSampler::Sample(Rng* rng) const {
  if (theta_ == 0) {
    return rng->UniformU64(n_);
  }
  const double u = rng->UniformDouble();
  if (!cdf_.empty()) {
    auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    if (it == cdf_.end()) {
      return n_ - 1;
    }
    return static_cast<uint64_t>(it - cdf_.begin());
  }
  const double uz = u * zetan_;
  if (uz < 1.0) {
    return 0;
  }
  if (uz < zeta2_) {
    return 1;
  }
  uint64_t rank = static_cast<uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return rank < n_ ? rank : n_ - 1;
}

}  // namespace scfs
