// Workload personalities: declarative specs in the style of filebench's
// personality files, describing *what* a population of clients does —
// operation mix, fileset shape, I/O sizes, popularity skew — while the
// ClientFleet decides *how* it is executed (arrival process, client
// multiplexing, latency accounting).
//
// The five classic filebench personalities are built in; any field can be
// overridden with "key=value" lines, either from a spec file
// (ApplyPersonalityText) or from --set flags (ApplyPersonalityOverride), so
// a sweep can say `--personality webserver --set files=200 --set
// skew.theta=1.2` without recompiling.

#ifndef SCFS_BENCH_SCENARIO_PERSONALITY_H_
#define SCFS_BENCH_SCENARIO_PERSONALITY_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

#include "src/common/status.h"
#include "src/sim/arrivals.h"

namespace scfs {

enum class ScenarioOp {
  kWholeFileRead = 0,  // open + read whole file + close
  kBlockRead,          // open + one io_size read at a random offset + close
  kBlockWrite,         // open(write) + one io_size write + close
  kAppend,             // open(write) + append append_size + close
  kCreate,             // create a new file of file_size bytes
  kDelete,             // unlink a previously created file
  kStat,               // getattr
};
constexpr size_t kScenarioOpCount = 7;

const char* ScenarioOpName(ScenarioOp op);

struct PersonalitySpec {
  std::string name;
  // Relative weights per ScenarioOp (need not sum to 1; zero weight = op
  // not issued).
  std::array<double, kScenarioOpCount> mix{};

  // Fileset: `fileset_files` files of `file_size` bytes, created at setup.
  uint64_t fileset_files = 1000;
  uint64_t file_size = 16 * 1024;
  // Block read/write transfer size.
  uint64_t io_size = 4 * 1024;
  // Bytes appended per kAppend.
  uint64_t append_size = 8 * 1024;

  // Popularity skew across the fileset (0 = uniform).
  double zipf_theta = 0;
  // When true, the Zipfian choice ranks coordination *partitions* instead
  // of files (uniform within a partition's files), and setup generates
  // fileset names whose metadata and lock keys co-locate per partition —
  // the hot-partition experiment. Requires a partitioned deployment.
  bool partition_skew = false;
  // kAppend targets: false appends to a per-worker log file (webserver's
  // access log); true appends to the Zipf-chosen fileset file (varmail
  // mailboxes) — shared-file append contention included.
  bool appends_to_fileset = false;

  ArrivalProcess arrival = ArrivalProcess::kPoisson;

  double mix_weight(ScenarioOp op) const {
    return mix[static_cast<size_t>(op)];
  }
  double mix_total() const {
    double total = 0;
    for (double w : mix) {
      total += w;
    }
    return total;
  }
};

// One of: webserver, varmail, fileserver, oltp, videoserver.
Result<PersonalitySpec> BuiltinPersonality(const std::string& name);

// Applies one "key=value" override. Keys: name, arrival (poisson |
// deterministic), files, file.size, io.size, append.size, skew.theta,
// skew.partition (0|1), append.to_fileset (0|1), mix.<op> where <op> is a
// ScenarioOpName (wholeread, blockread, blockwrite, append, create, delete,
// stat). Unknown keys and unparsable values are errors.
Status ApplyPersonalityOverride(PersonalitySpec* spec, const std::string& line);

// Applies a whole spec text: one key=value per line; blank lines and lines
// starting with '#' are skipped.
Status ApplyPersonalityText(PersonalitySpec* spec, const std::string& text);

}  // namespace scfs

#endif  // SCFS_BENCH_SCENARIO_PERSONALITY_H_
