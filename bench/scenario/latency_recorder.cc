#include "bench/scenario/latency_recorder.h"

#include <cmath>

namespace scfs {

size_t LatencyRecorder::BucketIndex(uint64_t value_us) {
  if (value_us < kExactBuckets) {
    return static_cast<size_t>(value_us);
  }
  // Highest set bit position; value >= 128 so msb >= kExactBits.
  const int msb = 63 - __builtin_clzll(value_us);
  // Octave [2^msb, 2^msb+1) has kSubBuckets buckets of width 2^(msb-6):
  // the sub-bucket is the 6 bits below the leading one.
  const int shift = msb - (kExactBits - 1);
  const size_t sub = static_cast<size_t>(value_us >> shift) - kSubBuckets;
  return kExactBuckets + static_cast<size_t>(msb - kExactBits) * kSubBuckets +
         sub;
}

uint64_t LatencyRecorder::BucketUpperEdge(size_t index) {
  if (index < kExactBuckets) {
    return index;  // exact bucket: holds exactly this value
  }
  const size_t octave = (index - kExactBuckets) / kSubBuckets;
  const size_t sub = (index - kExactBuckets) % kSubBuckets;
  const int msb = static_cast<int>(octave) + kExactBits;
  const int shift = msb - (kExactBits - 1);
  const uint64_t lower = (kSubBuckets + sub) << shift;
  const uint64_t width = 1ull << shift;
  return lower + width - 1;
}

void LatencyRecorder::Record(uint64_t value_us) {
  ++buckets_[BucketIndex(value_us)];
  ++count_;
  sum_us_ += value_us;
  if (value_us > max_us_) {
    max_us_ = value_us;
  }
}

void LatencyRecorder::Merge(const LatencyRecorder& other) {
  for (size_t i = 0; i < kBucketCount; ++i) {
    buckets_[i] += other.buckets_[i];
  }
  count_ += other.count_;
  sum_us_ += other.sum_us_;
  if (other.max_us_ > max_us_) {
    max_us_ = other.max_us_;
  }
}

double LatencyRecorder::MeanUs() const {
  return count_ > 0 ? static_cast<double>(sum_us_) / count_ : 0.0;
}

uint64_t LatencyRecorder::PercentileUs(double p) const {
  if (count_ == 0) {
    return 0;
  }
  if (p >= 100.0) {
    return max_us_;
  }
  uint64_t rank =
      static_cast<uint64_t>(std::ceil(p / 100.0 * static_cast<double>(count_)));
  if (rank < 1) {
    rank = 1;
  }
  uint64_t seen = 0;
  for (size_t i = 0; i < kBucketCount; ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      return BucketUpperEdge(i);
    }
  }
  return max_us_;  // unreachable: counts sum to count_
}

}  // namespace scfs
