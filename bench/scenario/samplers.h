// ZipfSampler: ranked Zipfian selection over [0, n) — rank 0 is the most
// popular item. P(rank = k) is proportional to 1/(k+1)^theta; theta = 0
// degenerates to uniform.
//
// Two implementations behind one interface:
//   - n <= kExactLimit: an exact CDF table + binary search. Works for any
//     theta >= 0 (including theta > 1, which the skew demo uses to
//     concentrate load on one partition).
//   - larger n: the Gray et al. ("Quickly generating billion-record
//     synthetic databases", SIGMOD '94) closed-form inverse, O(1) per
//     sample after an O(n) harmonic-sum precomputation. Valid only for
//     theta in [0, 1); a larger theta is clamped to 0.99 (the YCSB
//     convention) — fileset sizes that need heavier skew fit the exact
//     path comfortably.
//
// The sampler holds no RNG: callers pass their own per-client/per-op Rng so
// sampling stays deterministic per stream.

#ifndef SCFS_BENCH_SCENARIO_SAMPLERS_H_
#define SCFS_BENCH_SCENARIO_SAMPLERS_H_

#include <cstdint>
#include <vector>

#include "src/common/rng.h"

namespace scfs {

class ZipfSampler {
 public:
  static constexpr uint64_t kExactLimit = 16384;

  ZipfSampler(uint64_t n, double theta);

  // Rank in [0, n).
  uint64_t Sample(Rng* rng) const;

  uint64_t n() const { return n_; }
  // The theta actually in effect (after any Gray-path clamp).
  double theta() const { return theta_; }

 private:
  uint64_t n_;
  double theta_;
  std::vector<double> cdf_;  // exact path only; cdf_[k] = P(rank <= k)
  // Gray-path constants.
  double zetan_ = 0;
  double alpha_ = 0;
  double eta_ = 0;
  double zeta2_ = 0;
};

}  // namespace scfs

#endif  // SCFS_BENCH_SCENARIO_SAMPLERS_H_
