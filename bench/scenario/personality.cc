#include "bench/scenario/personality.h"

#include <cstdlib>
#include <sstream>

namespace scfs {

namespace {

constexpr const char* kOpNames[kScenarioOpCount] = {
    "wholeread", "blockread", "blockwrite", "append",
    "create",    "delete",    "stat",
};

void SetMix(PersonalitySpec* spec, ScenarioOp op, double weight) {
  spec->mix[static_cast<size_t>(op)] = weight;
}

Result<double> ParseDouble(const std::string& key, const std::string& value) {
  char* end = nullptr;
  double parsed = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0') {
    return InvalidArgumentError("personality: bad number for " + key + ": '" +
                                value + "'");
  }
  return parsed;
}

Result<uint64_t> ParseSize(const std::string& key, const std::string& value) {
  // Plain integers plus K/M suffixes (file.size=64K, io.size=1M).
  char* end = nullptr;
  unsigned long long parsed = std::strtoull(value.c_str(), &end, 10);
  uint64_t multiplier = 1;
  if (*end == 'K' || *end == 'k') {
    multiplier = 1024;
    ++end;
  } else if (*end == 'M' || *end == 'm') {
    multiplier = 1024 * 1024;
    ++end;
  }
  if (end == value.c_str() || *end != '\0') {
    return InvalidArgumentError("personality: bad size for " + key + ": '" +
                                value + "'");
  }
  return static_cast<uint64_t>(parsed) * multiplier;
}

}  // namespace

const char* ScenarioOpName(ScenarioOp op) {
  return kOpNames[static_cast<size_t>(op)];
}

Result<PersonalitySpec> BuiltinPersonality(const std::string& name) {
  PersonalitySpec spec;
  spec.name = name;
  if (name == "webserver") {
    // Serve popular static pages, append to the shared access log.
    SetMix(&spec, ScenarioOp::kWholeFileRead, 0.91);
    SetMix(&spec, ScenarioOp::kAppend, 0.09);
    spec.fileset_files = 1000;
    spec.file_size = 16 * 1024;
    spec.append_size = 8 * 1024;
    spec.zipf_theta = 0.99;
  } else if (name == "varmail") {
    // Mail spool: message create/delete churn plus mailbox reads/appends.
    SetMix(&spec, ScenarioOp::kCreate, 0.25);
    SetMix(&spec, ScenarioOp::kDelete, 0.25);
    SetMix(&spec, ScenarioOp::kWholeFileRead, 0.25);
    SetMix(&spec, ScenarioOp::kAppend, 0.25);
    spec.fileset_files = 1000;
    spec.file_size = 16 * 1024;
    spec.append_size = 8 * 1024;
    spec.appends_to_fileset = true;
  } else if (name == "fileserver") {
    // Home-directory server: mixed namespace + data traffic.
    SetMix(&spec, ScenarioOp::kWholeFileRead, 0.33);
    SetMix(&spec, ScenarioOp::kAppend, 0.20);
    SetMix(&spec, ScenarioOp::kCreate, 0.12);
    SetMix(&spec, ScenarioOp::kDelete, 0.10);
    SetMix(&spec, ScenarioOp::kStat, 0.25);
    spec.fileset_files = 512;
    spec.file_size = 64 * 1024;
    spec.append_size = 16 * 1024;
  } else if (name == "oltp") {
    // Database-style small random reads/writes in large files.
    SetMix(&spec, ScenarioOp::kBlockRead, 0.70);
    SetMix(&spec, ScenarioOp::kBlockWrite, 0.26);
    SetMix(&spec, ScenarioOp::kStat, 0.04);
    spec.fileset_files = 64;
    spec.file_size = 64 * 1024;
    spec.io_size = 4 * 1024;
    spec.zipf_theta = 0.8;
  } else if (name == "videoserver") {
    // Few large hot objects, streamed whole; occasional new uploads.
    SetMix(&spec, ScenarioOp::kWholeFileRead, 0.96);
    SetMix(&spec, ScenarioOp::kCreate, 0.04);
    spec.fileset_files = 64;
    spec.file_size = 256 * 1024;
    spec.zipf_theta = 0.99;
  } else {
    return InvalidArgumentError(
        "unknown personality '" + name +
        "' (expected webserver|varmail|fileserver|oltp|videoserver)");
  }
  return spec;
}

Status ApplyPersonalityOverride(PersonalitySpec* spec,
                                const std::string& line) {
  const size_t eq = line.find('=');
  if (eq == std::string::npos) {
    return InvalidArgumentError("personality: expected key=value, got '" +
                                line + "'");
  }
  const std::string key = line.substr(0, eq);
  const std::string value = line.substr(eq + 1);

  if (key == "name") {
    spec->name = value;
    return OkStatus();
  }
  if (key == "arrival") {
    if (value == "poisson") {
      spec->arrival = ArrivalProcess::kPoisson;
    } else if (value == "deterministic") {
      spec->arrival = ArrivalProcess::kDeterministic;
    } else {
      return InvalidArgumentError(
          "personality: arrival must be poisson|deterministic, got '" + value +
          "'");
    }
    return OkStatus();
  }
  if (key == "files") {
    ASSIGN_OR_RETURN(spec->fileset_files, ParseSize(key, value));
    return OkStatus();
  }
  if (key == "file.size") {
    ASSIGN_OR_RETURN(spec->file_size, ParseSize(key, value));
    return OkStatus();
  }
  if (key == "io.size") {
    ASSIGN_OR_RETURN(spec->io_size, ParseSize(key, value));
    return OkStatus();
  }
  if (key == "append.size") {
    ASSIGN_OR_RETURN(spec->append_size, ParseSize(key, value));
    return OkStatus();
  }
  if (key == "skew.theta") {
    ASSIGN_OR_RETURN(spec->zipf_theta, ParseDouble(key, value));
    return OkStatus();
  }
  if (key == "skew.partition") {
    spec->partition_skew = value != "0";
    return OkStatus();
  }
  if (key == "append.to_fileset") {
    spec->appends_to_fileset = value != "0";
    return OkStatus();
  }
  if (key.rfind("mix.", 0) == 0) {
    const std::string op_name = key.substr(4);
    for (size_t i = 0; i < kScenarioOpCount; ++i) {
      if (op_name == kOpNames[i]) {
        ASSIGN_OR_RETURN(spec->mix[i], ParseDouble(key, value));
        return OkStatus();
      }
    }
    return InvalidArgumentError("personality: unknown op in '" + key + "'");
  }
  return InvalidArgumentError("personality: unknown key '" + key + "'");
}

Status ApplyPersonalityText(PersonalitySpec* spec, const std::string& text) {
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    // Trim trailing CR and surrounding spaces.
    while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) {
      line.pop_back();
    }
    size_t start = line.find_first_not_of(' ');
    if (start == std::string::npos) {
      continue;
    }
    line = line.substr(start);
    if (line.empty() || line[0] == '#') {
      continue;
    }
    RETURN_IF_ERROR(ApplyPersonalityOverride(spec, line));
  }
  return OkStatus();
}

}  // namespace scfs
